(* SplitMix64 (Steele, Lea, Flood 2014).  64-bit state; each draw adds the
   golden-gamma constant and scrambles. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

(* Above this bound the bias of [v mod bound] over 62 random bits stops
   being negligible (worst case ~2^-31), so we switch to rejection
   sampling.  Every bound the pipeline uses today is far below the
   threshold, so existing seeded streams are unchanged. *)
let mod_bias_threshold = 1 lsl 31

let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= mod_bias_threshold then
    (* Keep 62 random bits so the value fits OCaml's 63-bit native int
       without wrapping negative; modulo bias is < 2^-31 here. *)
    bits62 t mod bound
  else begin
    (* Rejection sampling: draw until the value falls below the largest
       multiple of [bound] no greater than [max_int] (= 2^62 - 1, the
       range of [bits62]), so every residue is equally likely.  Each draw
       succeeds with probability > 1/2, and the number of draws depends
       only on the stream, keeping results deterministic per seed. *)
    let limit = max_int / bound * bound in
    let rec draw () =
      let v = bits62 t in
      if v >= limit then draw () else v mod bound
    in
    draw ()
  end

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let sample_cdf t cdf =
  let n = Array.length cdf in
  if n = 0 then invalid_arg "Rng.sample_cdf: empty cdf";
  let total = cdf.(n - 1) in
  if not (total > 0.0) then
    invalid_arg "Rng.sample_cdf: cdf total mass must be positive";
  (* Scale the draw by the actual accumulated mass instead of assuming it
     is exactly 1.0: float accumulation routinely leaves the final entry
     at 1 ± a few ulps, and clamping the binary search to the last index
     silently over- (or under-) weighted the final bucket.  When the CDF
     does end at exactly 1.0 this draws the same value as before, so
     well-formed streams are unchanged. *)
  let u = float t total in
  (* Binary search for the smallest index with cdf.(i) >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
