(* SplitMix64 (Steele, Lea, Flood 2014).  64-bit state; each draw adds the
   golden-gamma constant and scrambles. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 random bits so the value fits OCaml's 63-bit native int
     without wrapping negative; modulo bias is negligible for bounds far
     below 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let sample_cdf t cdf =
  let n = Array.length cdf in
  if n = 0 then invalid_arg "Rng.sample_cdf: empty cdf";
  let u = float t 1.0 in
  (* Binary search for the smallest index with cdf.(i) >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
