type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

(* Recursive-descent parser over the raw string; [pos] is the cursor. *)
type state = { src : string; mutable pos : int }

let fail st msg = raise (Fail (st.pos, msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail st "bad \\u escape"
          in
          (* Escaped control characters are ASCII in our schemas; wider
             code points are emitted raw by the writers, never escaped. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else fail st "non-ASCII \\u escape unsupported"
        | _ -> fail st "bad escape");
        loop ())
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char b c;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos = String.length src then Ok v
    else Error (Printf.sprintf "trailing input at byte %d" st.pos)
  | exception Fail (pos, msg) ->
    Error (Printf.sprintf "parse error at byte %d: %s" pos msg)

let parse_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse contents

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  (* [is_integer] is true of infinities, whose [int_of_float] is
     undefined: require finiteness before converting. *)
  | Num f when Float.is_finite f && Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
