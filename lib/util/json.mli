(** A minimal JSON parser for the repo's own artefact schemas
    ([pc-obs/1], [pc-bench/1], [pc-sample/1]).  No external
    dependencies; numbers are floats, objects keep field order and
    duplicate keys (first one wins in {!member}). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries the byte
    offset of the failure. *)

val parse_file : string -> (t, string) result
(** {!parse} the contents of a file; [Error] also covers I/O failure. *)

(** {1 Accessors} — total functions returning options. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing fields and non-objects. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_int : t -> int option
(** [Num] fields only, and for {!to_int} only finite integral values
    (infinities — reachable via e.g. [1e999] — are rejected, not
    truncated to an arbitrary int). *)

val to_string : t -> string option
