(** Deterministic pseudo-random number generation.

    All randomness in the performance-cloning pipeline flows through this
    module so that profiles, clones and experiments are exactly
    reproducible from a seed.  The generator is SplitMix64, which has a
    64-bit state, passes BigCrush, and is trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive.
    Bounds up to [2^31] consume exactly one draw from the stream; larger
    bounds use rejection sampling (unbiased, but the number of draws
    consumed then depends on the stream), so raising a bound across the
    threshold changes every subsequent value for a given seed. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val sample_cdf : t -> float array -> int
(** [sample_cdf t cdf] draws an index from a cumulative distribution.
    [cdf] must be non-decreasing; the draw is scaled by the final entry,
    so a CDF whose accumulated mass lands at [1 ± ulps] (or any positive
    total) still samples every bucket in proportion.  Returns the
    smallest [i] with [u <= cdf.(i)].  Raises [Invalid_argument] when the
    CDF is empty or its total mass is not positive (an all-zero CDF is a
    caller bug, not a silent index 0). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
