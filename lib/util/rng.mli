(** Deterministic pseudo-random number generation.

    All randomness in the performance-cloning pipeline flows through this
    module so that profiles, clones and experiments are exactly
    reproducible from a seed.  The generator is SplitMix64, which has a
    64-bit state, passes BigCrush, and is trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val sample_cdf : t -> float array -> int
(** [sample_cdf t cdf] draws an index from a cumulative distribution.
    [cdf] must be non-decreasing with [cdf.(Array.length cdf - 1)]
    approximately 1.  Returns the smallest [i] with [u <= cdf.(i)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
