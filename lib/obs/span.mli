(** Nestable wall-clock spans: a tree of per-stage durations.

    [with_ "profile:sha" f] times [f] and records the span under the
    span currently open on this domain (or as a root).  Recording is
    gated on {!Metrics.enabled} — when observability is off, [with_]
    runs [f] directly with no allocation, so hot paths can stay
    instrumented unconditionally.

    Spans cross {!Pc_exec.Pool} fan-out: the pool captures the calling
    domain's open span with {!current_ctx} and runs every task under it
    with {!with_ctx}, so per-task spans attribute to the pipeline stage
    that spawned them regardless of which domain executed the task.
    Children appear in completion order, which under a parallel pool is
    nondeterministic — only the durations and the parent/child shape are
    meaningful, never the sibling order. *)

type t
(** A completed span. *)

val name : t -> string
val duration_s : t -> float
val children : t -> t list
(** In completion order. *)

val with_ : ?args:(string * Event.arg) list -> string -> (unit -> 'a) -> 'a
(** Time [f] and record the span (when {!Metrics.enabled}); the span is
    recorded even if [f] raises.  Safe from any domain.  When event
    collection is on ({!Event.set_collecting}), also emits an
    {!Event.Begin}/{!Event.End} pair on the calling domain's track —
    [args] ride on the [Begin] event and appear in exported trace
    timelines; the span tree itself never stores them. *)

type ctx
(** A handle on a domain's currently-open span (possibly none), used to
    re-parent work that migrates to another domain. *)

val current_ctx : unit -> ctx
val with_ctx : ctx -> (unit -> 'a) -> 'a
(** Run [f] with [ctx] as the adoptive parent: spans opened inside
    attach to it.  The pool wraps worker-domain task loops in this. *)

val now_s : unit -> float
(** The wall clock the spans use (seconds; [Unix.gettimeofday]). *)

val roots : unit -> t list
(** Completed root spans, in completion order. *)

val reset : unit -> unit
(** Drop all completed root spans.  Spans still open are unaffected (they
    will record on close as usual). *)
