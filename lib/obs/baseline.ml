module Json = Pc_util.Json

let check_schema ~expected doc issues =
  match Option.bind (Json.member "schema" doc) Json.to_string with
  | Some s when s = expected -> issues
  | Some s ->
    Printf.sprintf "schema mismatch: expected %s, found %s" expected s :: issues
  | None -> Printf.sprintf "schema field missing (expected %s)" expected :: issues

(* The [counters] and [gauges] fields are flat {name: int} objects. *)
let int_fields key doc =
  match Json.member key doc with
  | Some (Json.Obj fields) ->
    List.filter_map
      (fun (name, v) -> Option.map (fun i -> (name, i)) (Json.to_int v))
      fields
  | _ -> []

let compare_exact ~kind ~baseline ~current =
  let issues = ref [] in
  let report fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name current with
      | Some c when c = b -> ()
      | Some c -> report "%s %s: baseline %d, current %d" kind name b c
      | None -> report "%s %s: missing from current run (baseline %d)" kind name b)
    baseline;
  List.iter
    (fun (name, c) ->
      if List.assoc_opt name baseline = None then
        report "%s %s: not in baseline (current %d); regenerate baselines" kind
          name c)
    current;
  List.rev !issues

let check_metrics ~baseline ~current =
  let issues =
    check_schema ~expected:"pc-obs/1" baseline []
    |> check_schema ~expected:"pc-obs/1" current
  in
  List.rev issues
  @ compare_exact ~kind:"counter"
      ~baseline:(int_fields "counters" baseline)
      ~current:(int_fields "counters" current)
  @ compare_exact ~kind:"gauge"
      ~baseline:(int_fields "gauges" baseline)
      ~current:(int_fields "gauges" current)

(* --- one-pass cache-sweep comparison --- *)

(* The pc-cachesweep/1 report carries both the timing ratio and the
   result-agreement fields the bench harness measured; the committed
   pc-cachesweep-thresholds/1 file says how much of each CI accepts.
   Agreement is behaviour, not timing, so [max_mismatches] should stay
   0; the speedup bound is the one machine-dependent number. *)
let check_cachesweep ~thresholds ~report =
  let issues =
    check_schema ~expected:"pc-cachesweep-thresholds/1" thresholds []
    |> check_schema ~expected:"pc-cachesweep/1" report
    |> List.rev
  in
  let num doc key = Option.bind (Json.member key doc) Json.to_float in
  let required label doc key k =
    match num doc key with
    | Some v when Float.is_finite v -> k v
    | Some _ -> [ Printf.sprintf "cachesweep: non-finite %s in %s" key label ]
    | None -> [ Printf.sprintf "cachesweep: %s missing from %s" key label ]
  in
  issues
  @ required "thresholds" thresholds "min_speedup" (fun min_speedup ->
        required "report" report "speedup" (fun speedup ->
            if speedup < min_speedup then
              [
                Printf.sprintf
                  "cachesweep: one-pass speedup %.2fx below the %.2fx gate"
                  speedup min_speedup;
              ]
            else []))
  @ required "thresholds" thresholds "max_mismatches" (fun max_mismatches ->
        required "report" report "mismatches" (fun mismatches ->
            if mismatches > max_mismatches then
              [
                Printf.sprintf
                  "cachesweep: %.0f config(s) disagree with the simulated \
                   sweep (max %.0f); max |mpi| diff %s"
                  mismatches max_mismatches
                  (match num report "max_abs_mpi_diff" with
                  | Some d -> Printf.sprintf "%.9f" d
                  | None -> "unknown");
              ]
            else []))

(* --- bench timings --- *)

let bench_rows doc =
  match Option.bind (Json.member "results" doc) Json.to_list with
  | None -> []
  | Some rows ->
    List.filter_map
      (fun row ->
        match Option.bind (Json.member "name" row) Json.to_string with
        | None -> None
        | Some name ->
          Some (name, Option.bind (Json.member "ms_per_run" row) Json.to_float))
      rows

let median values =
  match List.sort compare values with
  | [] -> None
  | sorted ->
    let n = List.length sorted in
    let nth i = List.nth sorted i in
    Some
      (if n mod 2 = 1 then nth (n / 2)
       else 0.5 *. (nth ((n / 2) - 1) +. nth (n / 2)))

let check_bench ?(floor_ms = 0.001) ~tolerance ~baseline ~current () =
  let issues =
    check_schema ~expected:"pc-bench/1" baseline []
    |> check_schema ~expected:"pc-bench/1" current
    |> List.rev
  in
  (* A NaN/infinite timing (reachable through the JSON parser, e.g.
     [1e999]) would poison the median and make every [>] comparison
     silently false, masking real drift: report it and demote the row to
     "no estimate" before any arithmetic sees it. *)
  let sanitize label rows =
    let bad =
      List.filter_map
        (fun (name, ms) ->
          match ms with
          | Some v when not (Float.is_finite v) ->
            Some
              (Printf.sprintf "bench %s: non-finite ms_per_run in %s report"
                 name label)
          | _ -> None)
        rows
    in
    let rows =
      List.map
        (fun (name, ms) ->
          (name, Option.bind ms (fun v -> if Float.is_finite v then Some v else None)))
        rows
    in
    (bad, rows)
  in
  let b_bad, b_rows = sanitize "baseline" (bench_rows baseline) in
  let c_bad, c_rows = sanitize "current" (bench_rows current) in
  let issues = issues @ b_bad @ c_bad in
  let timings rows = List.filter_map snd rows in
  match (median (timings b_rows), median (timings c_rows)) with
  | None, _ | _, None ->
    issues @ [ "bench report without any ms_per_run estimates" ]
  | Some b_med, Some c_med when b_med < 0.0 || c_med < 0.0 ->
    issues @ [ "bench report with negative median ms/run" ]
  | Some b_med, Some c_med ->
    (* Absolute floor: a 0 ms median (sub-resolution timings, a stubbed
       runner, a trimmed report) would otherwise make the normalising
       division blow up into inf/NaN and either mask every regression or
       flag all of them.  Timings are clamped to [floor_ms] before
       normalising, and rows where both sides sit at or below the floor
       carry no signal and are skipped. *)
    let b_med = Float.max b_med floor_ms and c_med = Float.max c_med floor_ms in
    let drifts = ref [] in
    let report fmt = Printf.ksprintf (fun s -> drifts := s :: !drifts) fmt in
    List.iter
      (fun (name, b_ms) ->
        match (b_ms, List.assoc_opt name c_rows) with
        | None, _ -> ()
        | Some b_ms, Some (Some c_ms) when b_ms <= floor_ms && c_ms <= floor_ms
          ->
          ()
        | Some b_ms, Some (Some c_ms) ->
          let b_norm = Float.max b_ms floor_ms /. b_med
          and c_norm = Float.max c_ms floor_ms /. c_med in
          if c_norm > b_norm *. (1.0 +. tolerance) then
            report
              "bench %s: %.1f%% slower than baseline (median-normalised %.4f \
               vs %.4f)"
              name
              (100.0 *. ((c_norm /. b_norm) -. 1.0))
              c_norm b_norm
        | Some _, Some None | Some _, None ->
          report "bench %s: missing from current run" name)
      b_rows;
    issues @ List.rev !drifts
