let lock = Mutex.create ()

(* Everything to stderr, serialised across domains: pool workers log
   per-benchmark progress concurrently. *)
let reporter =
  let report src level ~over k msgf =
    msgf (fun ?header:_ ?tags:_ fmt ->
        Mutex.protect lock (fun () ->
            Format.kfprintf
              (fun ppf ->
                Format.pp_print_flush ppf ();
                over ();
                k ())
              Format.err_formatter
              ("%s: [%s] @[" ^^ fmt ^^ "@]@.")
              (Logs.Src.name src)
              (Logs.level_to_string (Some level))))
  in
  { Logs.report }

let setup ?(quiet = false) ?(verbosity = 0) () =
  let level =
    if quiet then Some Logs.Error
    else if verbosity >= 1 then Some Logs.Debug
    else Some Logs.Info
  in
  Logs.set_level level;
  Logs.set_reporter reporter
