(** Regression gating against checked-in baseline artefacts.

    CI archives two JSON artefacts per run: the [pc-obs/1] metrics
    report and the [pc-bench/1] timing report.  This module compares a
    current artefact against a committed baseline and reports
    human-readable discrepancies; an empty list means the gate passes.

    Metric counters and gauges are workload counts (instructions
    retired, cache refs, store hits...), deterministic for a fixed
    seed at [-j 1], so they are compared exactly: any drift means the
    pipeline's behaviour changed and either a bug crept in or the
    baseline must be regenerated deliberately.  Duration histograms
    and spans are timing, not behaviour, and are ignored.

    Bench timings are machine-dependent, so each report is first
    normalised by its own median ms/run; a test regresses when its
    normalised cost exceeds the baseline's by more than [tolerance]
    (default 20%). *)

val check_metrics :
  baseline:Pc_util.Json.t -> current:Pc_util.Json.t -> string list
(** Exact comparison of the [counters] and [gauges] objects of two
    [pc-obs/1] documents: value drift, instruments missing from the
    current run, and new instruments absent from the baseline are all
    reported (the latter so baselines cannot silently go stale). *)

val check_cachesweep :
  thresholds:Pc_util.Json.t -> report:Pc_util.Json.t -> string list
(** Gate a [pc-cachesweep/1] report (the bench harness's simulated vs
    one-pass 28-configuration sweep comparison) against committed
    [pc-cachesweep-thresholds/1] bounds: the one-pass [speedup] must
    reach [min_speedup], and [mismatches] — configurations where the two
    paths disagree on misses, accesses or MPI — may not exceed
    [max_mismatches] (0 in CI: agreement is behaviour, not timing).
    Missing or non-finite fields are reported rather than assumed. *)

val check_bench :
  ?floor_ms:float ->
  tolerance:float ->
  baseline:Pc_util.Json.t ->
  current:Pc_util.Json.t ->
  unit ->
  string list
(** Median-normalised comparison of two [pc-bench/1] documents;
    [tolerance] is the allowed relative slowdown per entry (the CI
    gate uses 0.20).  Entries with a null [ms_per_run] on either side
    are skipped; entries missing from the current run are reported;
    faster-than-baseline entries never fail.

    [floor_ms] (default 0.001) is an absolute floor applied to medians
    and per-entry timings before normalising, so a report whose median
    is 0 ms (sub-resolution timings or a trimmed run) degrades into a
    floor-relative comparison instead of dividing by zero; entries at or
    below the floor on both sides are skipped as noise. *)
