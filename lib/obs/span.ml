type t = { name : string; duration_s : float; children : t list }

let name t = t.name
let duration_s t = t.duration_s
let children t = t.children

(* An open span accumulates completed children (reversed).  The lock
   protects every child/root append and read: pool workers sharing one
   parent append concurrently, but spans open and close at stage/task
   granularity, so contention is negligible. *)
type open_t = { oname : string; start : float; mutable kids_rev : t list }
type ctx = open_t option

let lock = Mutex.create ()
let root_spans = ref ([] : t list)
let current : open_t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let now_s () = Unix.gettimeofday ()

let finish parent o =
  Event.emit Event.End o.oname [];
  let stop = now_s () in
  Mutex.protect lock (fun () ->
      let t =
        { name = o.oname; duration_s = stop -. o.start; children = List.rev o.kids_rev }
      in
      match parent with
      | Some p -> p.kids_rev <- t :: p.kids_rev
      | None -> root_spans := t :: !root_spans)

let with_ ?(args = []) name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let parent = Domain.DLS.get current in
    Event.emit Event.Begin name args;
    let o = { oname = name; start = now_s (); kids_rev = [] } in
    Domain.DLS.set current (Some o);
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set current parent;
        finish parent o)
      f
  end

let current_ctx () = Domain.DLS.get current

let with_ctx ctx f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

let roots () = Mutex.protect lock (fun () -> List.rev !root_spans)
let reset () = Mutex.protect lock (fun () -> root_spans := [])
