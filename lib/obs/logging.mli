(** Logs wiring shared by the CLI tools.

    Installs a domain-safe (mutex-serialised) reporter that writes every
    message to stderr — never stdout, so enabling progress output cannot
    perturb experiment output.  Levels: [--quiet] shows errors only, the
    default shows per-benchmark progress ([Info]), and [-v] adds
    [Debug]. *)

val setup : ?quiet:bool -> ?verbosity:int -> unit -> unit
(** [setup ~quiet ~verbosity ()] sets the global {!Logs} level and
    reporter.  [verbosity] counts [-v] occurrences: [0] → [Info]
    (default), [>= 1] → [Debug].  [quiet] wins over [verbosity]. *)
