(** Reporters for a metrics snapshot plus a span tree.

    Three sinks, per the observability contract:

    - {!pp_console}: a human-readable report.  The CLI points it at
      stderr (behind [PC_OBS=1] / [--metrics]) so experiment stdout is
      never touched.
    - {!json}/{!write_json}: a stable-schema machine-readable report
      ([--metrics-out FILE]).  Schema ["pc-obs/1"]:

    {v
    { "schema": "pc-obs/1",
      "counters":   { "<name>": <int>, ... },
      "gauges":     { "<name>": <int>, ... },
      "histograms": { "<name>": { "count": <int>, "sum": <float>,
                                  "buckets": [ { "le": <float|"inf">,
                                                 "count": <int> }, ... ] } },
      "spans": [ { "name": <string>, "duration_s": <float>,
                   "children": [ <span>, ... ] }, ... ] }
    v}

      Counter/gauge/histogram keys are sorted by name; spans are in
      completion order.
    - {!null}: does nothing — the disabled path. *)

val pp_console : Format.formatter -> Metrics.snapshot -> Span.t list -> unit

val json : Metrics.snapshot -> Span.t list -> string

val write_json : string -> Metrics.snapshot -> Span.t list -> unit
(** [write_json path snap spans] writes {!json} to [path] (truncating),
    with a trailing newline. *)

val null : Metrics.snapshot -> Span.t list -> unit
