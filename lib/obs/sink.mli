(** Reporters for a metrics snapshot plus a span tree.

    Three sinks, per the observability contract:

    - {!pp_console}: a human-readable report.  The CLI points it at
      stderr (behind [PC_OBS=1] / [--metrics]) so experiment stdout is
      never touched.
    - {!json}/{!write_json}: a stable-schema machine-readable report
      ([--metrics-out FILE]).  Schema ["pc-obs/1"]:

    {v
    { "schema": "pc-obs/1",
      "counters":   { "<name>": <int>, ... },
      "gauges":     { "<name>": <int>, ... },
      "histograms": { "<name>": { "count": <int>, "sum": <float>,
                                  "p50": <float>, "p95": <float>,
                                  "p99": <float>,
                                  "buckets": [ { "le": <float|"inf">,
                                                 "count": <int> }, ... ] } },
      "spans": [ { "name": <string>, "duration_s": <float>,
                   "self_s": <float>,
                   "children": [ <span>, ... ] }, ... ] }
    v}

      Counter/gauge/histogram keys are sorted by name; spans are in
      completion order; [self_s] is the span's exclusive time
      ({!self_s}); [p50]/[p95]/[p99] are bucket-interpolated
      quantile estimates ({!Metrics.hist_quantile}).  Non-finite floats
      serialise as [null] — JSON has no NaN/Infinity.
    - {!null}: does nothing — the disabled path. *)

val json_string : string -> string
(** The JSON string literal (quotes included) for [s], escaping
    quotes, backslashes and control characters.  Shared by every
    exporter that writes metric, span or event names into JSON. *)

val self_s : Span.t -> float
(** Exclusive time of a span: its duration minus the sum of its
    children's durations, clamped at 0.  Both report sinks surface it so
    hot stages are readable without loading the timeline in Perfetto. *)

val pp_console : Format.formatter -> Metrics.snapshot -> Span.t list -> unit

val json : Metrics.snapshot -> Span.t list -> string

val write_json : string -> Metrics.snapshot -> Span.t list -> unit
(** [write_json path snap spans] writes {!json} to [path] (truncating),
    with a trailing newline. *)

val null : Metrics.snapshot -> Span.t list -> unit
