(** Metrics registry: named, domain-safe counters, gauges and histograms
    with O(1) hot-path updates and a snapshot/diff API.

    Instruments are registered globally by name (dotted lowercase, e.g.
    ["uarch.cycles"]); requesting an existing name returns the existing
    instrument, so call sites in different modules can share one series.
    Counter and gauge updates are single atomic operations, safe from any
    {!Pc_exec.Pool} worker domain; histogram observations take a
    per-histogram lock and belong on per-task or per-run paths, not
    per-instruction ones.

    Instruments always count — recording a few atomic adds costs
    nanoseconds and keeps the registry meaningful for programmatic use.
    What {!enabled} gates is everything with visible cost or output:
    span recording ({!Span}) and the sinks ({!Sink}).  Nothing in this
    module ever writes to stdout, so enabling observability cannot
    perturb experiment output — the invariant the test suite checks
    byte-for-byte. *)

val enabled : unit -> bool
(** Master observability switch.  Initialised from the [PC_OBS]
    environment variable (["1"], ["true"], ["yes"], ["on"] enable);
    flipped programmatically by [--metrics]/[--metrics-out]. *)

val set_enabled : bool -> unit

val env_enabled : bool
(** What [PC_OBS] alone said at startup (before any [set_enabled]);
    the CLI uses this to decide whether to print the console report. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find or create the counter registered under this name.  Raises
    [Invalid_argument] if the name is already registered as a different
    instrument kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges}

    A gauge holds one integer.  [set] stores; [record_max] keeps the
    maximum ever recorded — the idiom for high-water marks (ROB/LSQ
    occupancy, pages touched). *)

type gauge

val gauge : string -> gauge
val set : gauge -> int -> unit
val record_max : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} *)

type histogram

val default_buckets : float array
(** Duration-oriented bucket upper bounds in seconds, from 100 µs to
    30 s. *)

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit
    overflow bucket catches everything above the last bound.  The
    bucket layout is fixed by whichever call registers the name
    first. *)

val observe : histogram -> float -> unit
(** Record one observation: bumps the first bucket whose bound is
    [>=] the value (or the overflow bucket) and the running
    count/sum. *)

(** {1 Snapshots} *)

type hist_view = {
  le : float array;  (** bucket upper bounds, as registered *)
  bucket_counts : int array;  (** per-bucket counts; last = overflow *)
  count : int;
  sum : float;
}

val hist_quantile : hist_view -> float -> float
(** [hist_quantile v q] estimates the [q]-quantile ([0..1], clamped) of
    the observations from the bucket counts, Prometheus-style: linear
    interpolation inside the bucket containing the [q]-th observation.
    Ranks landing in the unbounded overflow bucket clamp to the last
    finite bound; an empty histogram reports 0.  The sinks report p50/
    p95/p99 through this. *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  histograms : (string * hist_view) list;
}

val snapshot : unit -> snapshot
(** Consistent-enough view of every registered instrument (each value is
    read atomically; the set is read under the registry lock). *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter and histogram values of [after] minus [before]; gauges keep
    their [after] value.  Instruments missing from [before] — created
    mid-run, e.g. by a lazily-built store — count from zero, so their
    [after] value is reported unchanged.  A histogram whose bucket
    layout differs between the snapshots is likewise reported with its
    [after] value rather than a meaningless cross-layout subtraction.
    Instruments only present in [before] are dropped. *)

val reset : unit -> unit
(** Zero every registered instrument (registrations survive).  For
    tests and for separating phases of one process. *)
