let env_enabled =
  match Sys.getenv_opt "PC_OBS" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let enabled_flag = Atomic.make env_enabled
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type counter = { c_value : int Atomic.t }
type gauge = { g_value : int Atomic.t }

type histogram = {
  h_le : float array;
  h_counts : int Atomic.t array;  (* length = Array.length h_le + 1 *)
  h_count : int Atomic.t;
  h_lock : Mutex.t;  (* guards h_sum only *)
  mutable h_sum : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Find-or-create under the registry lock; the caller's [select]
   projects the wanted kind and its [make] builds a fresh instrument. *)
let intern name make select =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> (
        match select i with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Pc_obs.Metrics: %S is registered as a %s" name
               (kind_name i)))
      | None ->
        let i = make () in
        Hashtbl.add registry name i;
        (match select i with Some v -> v | None -> assert false))

let counter name =
  intern name
    (fun () -> Counter { c_value = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value

let gauge name =
  intern name
    (fun () -> Gauge { g_value = Atomic.make 0 })
    (function Gauge g -> Some g | _ -> None)

let set g v = Atomic.set g.g_value v

let rec record_max g v =
  let cur = Atomic.get g.g_value in
  if v > cur && not (Atomic.compare_and_set g.g_value cur v) then record_max g v

let gauge_value g = Atomic.get g.g_value

let default_buckets = [| 1e-4; 1e-3; 1e-2; 0.1; 0.5; 1.0; 5.0; 30.0 |]

let histogram ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Pc_obs.Metrics.histogram: buckets must be strictly increasing")
    buckets;
  intern name
    (fun () ->
      Histogram
        {
          h_le = Array.copy buckets;
          h_counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_lock = Mutex.create ();
          h_sum = 0.0;
        })
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  let n = Array.length h.h_le in
  let rec bucket i = if i < n && v > h.h_le.(i) then bucket (i + 1) else i in
  ignore (Atomic.fetch_and_add h.h_counts.(bucket 0) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  Mutex.protect h.h_lock (fun () -> h.h_sum <- h.h_sum +. v)

type hist_view = {
  le : float array;
  bucket_counts : int array;
  count : int;
  sum : float;
}

(* Prometheus-style bucket quantile: find the bucket holding the q-th
   observation and interpolate linearly inside it.  The overflow bucket
   has no upper bound, so ranks landing there clamp to the last finite
   bound — an underestimate, which is the conservative direction for
   duration data. *)
let hist_quantile v q =
  let n_bounds = Array.length v.le in
  if v.count = 0 || n_bounds = 0 then 0.0
  else
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int v.count in
    let rec go i cum =
      if i >= n_bounds then v.le.(n_bounds - 1)
      else
        let here = v.bucket_counts.(i) in
        let cum' = cum + here in
        if float_of_int cum' >= rank && here > 0 then
          let lo = if i = 0 then 0.0 else v.le.(i - 1) in
          let hi = v.le.(i) in
          lo +. ((hi -. lo) *. ((rank -. float_of_int cum) /. float_of_int here))
        else go (i + 1) cum'
    in
    go 0 0

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_view) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun name i ->
          match i with
          | Counter c -> counters := (name, Atomic.get c.c_value) :: !counters
          | Gauge g -> gauges := (name, Atomic.get g.g_value) :: !gauges
          | Histogram h ->
            let view =
              {
                le = Array.copy h.h_le;
                bucket_counts = Array.map Atomic.get h.h_counts;
                count = Atomic.get h.h_count;
                sum = Mutex.protect h.h_lock (fun () -> h.h_sum);
              }
            in
            histograms := (name, view) :: !histograms)
        registry);
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let diff ~before ~after =
  (* Every instrument of [after] appears in the result.  An instrument
     created between the snapshots (e.g. by a lazily-built store) has no
     [before] entry and counts from zero — its [after] value IS the
     window value.  A histogram whose bucket layout changed between
     snapshots (re-registered after a registry wipe) is treated the same
     way: subtracting across incompatible layouts would raise or
     silently misattribute counts. *)
  let base assoc name = Option.value ~default:0 (List.assoc_opt name assoc) in
  {
    counters =
      List.map
        (fun (name, v) -> (name, v - base before.counters name))
        after.counters;
    gauges = after.gauges;
    histograms =
      List.map
        (fun (name, (h : hist_view)) ->
          match List.assoc_opt name before.histograms with
          | None -> (name, h)
          | Some b when b.le <> h.le -> (name, h)
          | Some b ->
            ( name,
              {
                h with
                bucket_counts =
                  Array.mapi (fun i c -> c - b.bucket_counts.(i)) h.bucket_counts;
                count = h.count - b.count;
                sum = h.sum -. b.sum;
              } ))
        after.histograms;
  }

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0
          | Histogram h ->
            Array.iter (fun a -> Atomic.set a 0) h.h_counts;
            Atomic.set h.h_count 0;
            Mutex.protect h.h_lock (fun () -> h.h_sum <- 0.0))
        registry)
