(* --- JSON --- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  escape b s;
  Buffer.contents b

(* JSON has no NaN/Infinity literals; a non-finite value (e.g. a
   histogram fed an infinite observation) must degrade to null, not
   corrupt the document. *)
let number b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.9g" f)

let obj b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (key, emit) ->
      if i > 0 then Buffer.add_char b ',';
      escape b key;
      Buffer.add_char b ':';
      emit ())
    fields;
  Buffer.add_char b '}'

let int_map b entries =
  obj b
    (List.map
       (fun (name, v) -> (name, fun () -> Buffer.add_string b (string_of_int v)))
       entries)

let hist b (h : Metrics.hist_view) =
  obj b
    [
      ("count", fun () -> Buffer.add_string b (string_of_int h.Metrics.count));
      ("sum", fun () -> number b h.Metrics.sum);
      ("p50", fun () -> number b (Metrics.hist_quantile h 0.50));
      ("p95", fun () -> number b (Metrics.hist_quantile h 0.95));
      ("p99", fun () -> number b (Metrics.hist_quantile h 0.99));
      ( "buckets",
        fun () ->
          Buffer.add_char b '[';
          Array.iteri
            (fun i c ->
              if i > 0 then Buffer.add_char b ',';
              obj b
                [
                  ( "le",
                    fun () ->
                      if i < Array.length h.Metrics.le then number b h.Metrics.le.(i)
                      else escape b "inf" );
                  ("count", fun () -> Buffer.add_string b (string_of_int c));
                ])
            h.Metrics.bucket_counts;
          Buffer.add_char b ']' );
    ]

(* Exclusive (self) time: the span's duration minus its children's,
   clamped at 0 (clock skew between a parent's stop and a late child's
   can push the raw difference fractionally negative). *)
let self_s s =
  Float.max 0.0
    (Span.duration_s s
    -. List.fold_left (fun acc c -> acc +. Span.duration_s c) 0.0 (Span.children s))

let rec span b s =
  obj b
    [
      ("name", fun () -> escape b (Span.name s));
      ("duration_s", fun () -> number b (Span.duration_s s));
      ("self_s", fun () -> number b (self_s s));
      ( "children",
        fun () ->
          Buffer.add_char b '[';
          List.iteri
            (fun i c ->
              if i > 0 then Buffer.add_char b ',';
              span b c)
            (Span.children s);
          Buffer.add_char b ']' );
    ]

let json (snap : Metrics.snapshot) spans =
  let b = Buffer.create 4096 in
  obj b
    [
      ("schema", fun () -> escape b "pc-obs/1");
      ("counters", fun () -> int_map b snap.Metrics.counters);
      ("gauges", fun () -> int_map b snap.Metrics.gauges);
      ( "histograms",
        fun () ->
          obj b
            (List.map
               (fun (name, h) -> (name, fun () -> hist b h))
               snap.Metrics.histograms) );
      ( "spans",
        fun () ->
          Buffer.add_char b '[';
          List.iteri
            (fun i s ->
              if i > 0 then Buffer.add_char b ',';
              span b s)
            spans;
          Buffer.add_char b ']' );
    ];
  Buffer.contents b

let write_json path snap spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json snap spans);
      output_char oc '\n')

(* --- console --- *)

let pp_console ppf (snap : Metrics.snapshot) spans =
  Format.fprintf ppf "== pc_obs metrics ==@.";
  if snap.Metrics.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %12d@." name v)
      snap.Metrics.counters
  end;
  if snap.Metrics.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %12d@." name v)
      snap.Metrics.gauges
  end;
  if snap.Metrics.histograms <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (name, (h : Metrics.hist_view)) ->
        let mean =
          if h.Metrics.count = 0 then 0.0
          else h.Metrics.sum /. float_of_int h.Metrics.count
        in
        Format.fprintf ppf
          "  %-40s count %8d  sum %10.4f  mean %8.4f  p50 %8.4f  p95 %8.4f  \
           p99 %8.4f@."
          name h.Metrics.count h.Metrics.sum mean
          (Metrics.hist_quantile h 0.50)
          (Metrics.hist_quantile h 0.95)
          (Metrics.hist_quantile h 0.99))
      snap.Metrics.histograms
  end;
  if spans <> [] then begin
    Format.fprintf ppf "spans:%43s@." "total      self";
    let rec pp_span indent s =
      Format.fprintf ppf "  %s%-*s %9.4f %9.4f s@." indent
        (max 1 (40 - String.length indent))
        (Span.name s) (Span.duration_s s) (self_s s);
      List.iter (pp_span (indent ^ "  ")) (Span.children s)
    in
    List.iter (pp_span "") spans
  end

let null _snap _spans = ()
