(** Typed trace events: the timeline companion to {!Span}'s duration
    tree.

    An event is a timestamped [Begin]/[End]/[Instant] record with a
    name, an argument list, and a track id.  {!Span.with_} emits a
    [Begin]/[End] pair around every span when collection is on, and
    instrumented code adds [Instant] markers; {!Pc_trace.Chrome} turns
    the drained stream into Chrome [trace_event] JSON.

    Collection is gated separately from {!Metrics.enabled} by
    {!set_collecting} (flipped by the tracer, never by [--metrics]), so
    ordinary metric runs allocate nothing here.

    Concurrency contract: each domain appends to a domain-local buffer
    with no lock.  Buffers survive into the shared stream only via
    {!flush_local}, which every domain that emitted events must call
    before it terminates — {!Pc_exec.Pool} flushes its workers at every
    batch join, and {!drain} flushes the calling domain itself.  Events
    therefore merge into one coherent timeline at pool joins regardless
    of which domain executed the work. *)

type arg = Int of int | Float of float | Str of string

type phase =
  | Begin
  | End
  | Instant
  | Flow_start  (** Chrome flow phase [s]: an async arrow leaves here *)
  | Flow_step  (** Chrome flow phase [t]: the arrow passes through here *)
  | Flow_end  (** Chrome flow phase [f]: the arrow terminates here *)

type t = {
  ts : float;  (** wall-clock seconds ({!Span.now_s} clock) *)
  track : int;  (** timeline track: 0 = main domain, [i] = pool worker [i] *)
  phase : phase;
  name : string;
  args : (string * arg) list;
  flow_id : int;  (** binds the [Flow_*] events of one arrow; 0 otherwise *)
}

val collecting : unit -> bool
val set_collecting : bool -> unit
(** Master event-collection switch, off by default.  While off, {!emit}
    is a single atomic load. *)

val set_track : int -> unit
(** Assign the calling domain's track id (domain-local).  The pool gives
    worker [i] track [i]; the spawning domain keeps track 0. *)

val track : unit -> int

val emit : phase -> string -> (string * arg) list -> unit
(** Append one event to the calling domain's buffer (when
    {!collecting}).  Lock-free; safe from any domain. *)

val instant : string -> (string * arg) list -> unit
(** [emit Instant] — a point-in-time marker. *)

val flow_id_of_key : 'a -> int
(** Fold any structural value (a memo-store key, a [(batch, task)] pair)
    into a stable non-negative flow id.  Deterministic across runs and
    pool widths for the same value; collisions merely merge arrows. *)

val flow : phase -> string -> int -> unit
(** [flow phase name id] appends one flow event (when {!collecting}).
    The events of one arrow share [name] and [id]: one [Flow_start]
    where the value is produced, then [Flow_step]/[Flow_end] at each
    consumer.  Renderers draw them as async arrows tying the enclosing
    spans together across tracks. *)

val flush_local : unit -> unit
(** Move the calling domain's buffered events into the shared stream.
    Must run on a domain before it terminates or its events are lost;
    cheap no-op when the buffer is empty. *)

val drain : unit -> t list
(** Flush the calling domain, then return and clear the shared stream in
    flush order.  Call after worker domains have joined — only then is
    the stream complete. *)

val reset : unit -> unit
(** Drop the calling domain's buffer and the shared stream. *)
