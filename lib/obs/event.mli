(** Typed trace events: the timeline companion to {!Span}'s duration
    tree.

    An event is a timestamped [Begin]/[End]/[Instant] record with a
    name, an argument list, and a track id.  {!Span.with_} emits a
    [Begin]/[End] pair around every span when collection is on, and
    instrumented code adds [Instant] markers; {!Pc_trace.Chrome} turns
    the drained stream into Chrome [trace_event] JSON.

    Collection is gated separately from {!Metrics.enabled} by
    {!set_collecting} (flipped by the tracer, never by [--metrics]), so
    ordinary metric runs allocate nothing here.

    Concurrency contract: each domain appends to a domain-local buffer
    with no lock.  Buffers survive into the shared stream only via
    {!flush_local}, which every domain that emitted events must call
    before it terminates — {!Pc_exec.Pool} flushes its workers at every
    batch join, and {!drain} flushes the calling domain itself.  Events
    therefore merge into one coherent timeline at pool joins regardless
    of which domain executed the work. *)

type arg = Int of int | Float of float | Str of string
type phase = Begin | End | Instant

type t = {
  ts : float;  (** wall-clock seconds ({!Span.now_s} clock) *)
  track : int;  (** timeline track: 0 = main domain, [i] = pool worker [i] *)
  phase : phase;
  name : string;
  args : (string * arg) list;
}

val collecting : unit -> bool
val set_collecting : bool -> unit
(** Master event-collection switch, off by default.  While off, {!emit}
    is a single atomic load. *)

val set_track : int -> unit
(** Assign the calling domain's track id (domain-local).  The pool gives
    worker [i] track [i]; the spawning domain keeps track 0. *)

val track : unit -> int

val emit : phase -> string -> (string * arg) list -> unit
(** Append one event to the calling domain's buffer (when
    {!collecting}).  Lock-free; safe from any domain. *)

val instant : string -> (string * arg) list -> unit
(** [emit Instant] — a point-in-time marker. *)

val flush_local : unit -> unit
(** Move the calling domain's buffered events into the shared stream.
    Must run on a domain before it terminates or its events are lost;
    cheap no-op when the buffer is empty. *)

val drain : unit -> t list
(** Flush the calling domain, then return and clear the shared stream in
    flush order.  Call after worker domains have joined — only then is
    the stream complete. *)

val reset : unit -> unit
(** Drop the calling domain's buffer and the shared stream. *)
