type arg = Int of int | Float of float | Str of string
type phase = Begin | End | Instant | Flow_start | Flow_step | Flow_end

type t = {
  ts : float;
  track : int;
  phase : phase;
  name : string;
  args : (string * arg) list;
  flow_id : int;
}

let collecting_flag = Atomic.make false
let collecting () = Atomic.get collecting_flag
let set_collecting b = Atomic.set collecting_flag b

(* Domain-local append buffer.  Appends touch only domain-local state, so
   the hot path takes no lock; the buffer drains into the shared [merged]
   list under [lock] at flush points (pool joins, tracer shutdown). *)
type buf = { mutable items : t array; mutable len : int }

let lock = Mutex.create ()
let merged = ref ([] : t list)  (* flushed events, most recent flush first *)

let track_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { items = [||]; len = 0 })

let set_track i = Domain.DLS.set track_key i
let track () = Domain.DLS.get track_key

let emit_flow phase name args flow_id =
  if collecting () then begin
    let b = Domain.DLS.get buf_key in
    if b.len = Array.length b.items then begin
      let cap = max 256 (2 * Array.length b.items) in
      let items =
        Array.make cap
          { ts = 0.0; track = 0; phase = Instant; name = ""; args = [];
            flow_id = 0 }
      in
      Array.blit b.items 0 items 0 b.len;
      b.items <- items
    end;
    b.items.(b.len) <-
      {
        ts = Unix.gettimeofday ();
        track = Domain.DLS.get track_key;
        phase;
        name;
        args;
        flow_id;
      };
    b.len <- b.len + 1
  end

let emit phase name args = emit_flow phase name args 0
let instant name args = emit Instant name args

(* Flow ids must be stable across runs and pool widths; callers derive
   them from deterministic data (memo-store keys, batch/task indices)
   and we fold them into a non-negative int so the JSON id is clean. *)
let flow_id_of_key key = Hashtbl.hash key land 0x3FFFFFFF
let flow phase name id = emit_flow phase name [] id

let flush_local () =
  let b = Domain.DLS.get buf_key in
  if b.len > 0 then begin
    let evs = Array.to_list (Array.sub b.items 0 b.len) in
    b.len <- 0;
    Mutex.protect lock (fun () -> merged := List.rev_append evs !merged)
  end

let drain () =
  flush_local ();
  Mutex.protect lock (fun () ->
      let evs = !merged in
      merged := [];
      List.rev evs)

let reset () =
  let b = Domain.DLS.get buf_key in
  b.len <- 0;
  Mutex.protect lock (fun () -> merged := [])
