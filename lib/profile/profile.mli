(** Microarchitecture-independent workload profiles (paper Section 3.1).

    A profile is everything the clone generator needs, and nothing that
    depends on a cache, predictor, or pipeline:

    - the {b statistical flow graph} (SFG): one node per (predecessor
      basic block, basic block) pair, annotated with execution counts,
      size, instruction mix, dependency-distance distribution, the
      memory-access profile of each static load/store it contains, the
      terminating branch's behaviour, and transition probabilities to
      successor nodes;
    - per-static-memory-instruction {b stride} profiles: dominant stride,
      the fraction of that instruction's references covered by the
      dominant stride, and the footprint-derived stream length;
    - per-static-branch {b taken rate} and {b transition rate}
      (Haungs-style);
    - whole-program aggregates (instruction mix, basic-block size,
      Figure 3's single-stride fraction). *)

val dep_bounds : int array
(** Dependency-distance histogram bucket upper bounds:
    [\[|1; 2; 4; 6; 8; 16; 32|\]] (the paper's buckets); one implicit
    overflow bucket holds distances > 32. *)

type mem_op = {
  static_pc : int;  (** static instruction index in the original binary *)
  is_store : bool;
  stride : int;  (** dominant stride in bytes (may be 0 or negative) *)
  stream_length : int;  (** average run length: consecutive accesses between
                            stride breaks, >= 1 *)
  footprint : int;  (** bytes between the lowest and highest address touched *)
  window_span : int;  (** average address span of 64 consecutive accesses —
                          the op's short-term working set, which catches 2D
                          and re-walk reuse that a 1D run misses *)
  region : int;  (** lowest byte address the op touched (identifies which
                     data structure it walks) *)
  row_stride : int;  (** dominant distance between consecutive run starts —
                         the second-level ("row") stride of 2-D walks;
                         0 when runs do not advance regularly *)
  refs : int;  (** dynamic references of this static instruction *)
  single_stride_refs : int;  (** how many matched the dominant stride *)
}

type branch_behaviour = {
  execs : int;
  taken_rate : float;
  transition_rate : float;
}

type node = {
  id : int;
  pred_start : int;  (** start pc of the predecessor basic block; -1 at program entry *)
  start : int;  (** start pc of this basic block *)
  count : int;  (** dynamic executions of this node *)
  size : int;  (** instructions in the block, including its terminator *)
  mix : float array;  (** fraction per instruction class index *)
  dep_fractions : float array;  (** fraction per dependency bucket (len 8) *)
  mem_ops : mem_op array;  (** in program order within the block *)
  branch : branch_behaviour option;  (** conditional terminator, if any *)
  successors : (int * float) array;  (** (node id, transition probability) *)
}

type t = {
  name : string;
  instr_count : int;  (** dynamic instructions profiled *)
  nodes : node array;  (** indexed by [node.id] *)
  global_mix : float array;
  avg_block_size : float;
  single_stride_fraction : float;  (** Figure 3's per-program metric *)
  unique_streams : int;  (** distinct (stride, stream length) classes *)
}

val node_cdf : t -> float array
(** Cumulative distribution over nodes by execution count, used by the
    clone generator's step 1. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable one-screen summary. *)

val save : out_channel -> t -> unit
(** Serialise in a line-oriented text format. *)

val load : in_channel -> t
(** Inverse of [save].  Raises [Failure] on malformed input. *)
