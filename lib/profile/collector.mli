(** Builds a {!Profile.t} by functionally simulating a program (the
    "Workload Profiler" box in the paper's Figure 1).

    Dynamic basic blocks are runs of instructions between control
    transfers; SFG nodes are (predecessor block, block) pairs, matching
    the paper's per-context profiling.  Register dependency distances are
    measured in dynamic instructions between write and read; strides are
    measured per static load/store and summarised as the most frequent
    stride plus a footprint-derived stream length. *)

val profile : ?start:int -> ?max_instrs:int -> Pc_isa.Program.t -> Profile.t
(** [profile program] runs the program (default budget 10 million
    instructions) and returns its microarchitecture-independent
    profile.  [start] (default 0) skips that many dynamic instructions
    before profiling begins, so the profile covers the slice
    [start, start + max_instrs) — per-phase fidelity scoring profiles
    each sampling interval this way. *)

val single_stride_fraction : ?max_instrs:int -> Pc_isa.Program.t -> float
(** Just Figure 3's metric: the fraction of dynamic memory references
    covered by approximating each static memory instruction with its
    single most frequent stride.  Equivalent to
    [(profile p).single_stride_fraction]. *)
