module I = Pc_isa.Instr
module Machine = Pc_funcsim.Machine

(* --- per-static-instruction accumulators --- *)

type mem_acc = {
  m_pc : int;
  m_store : bool;
  mutable m_refs : int;
  mutable m_last_addr : int;
  mutable m_min_addr : int;
  mutable m_max_addr : int;
  mutable m_prev_stride : int;  (* min_int before two accesses happened *)
  m_run_starts : (int, int) Hashtbl.t;  (* stride -> number of runs of it *)
  mutable m_cur_run_start : int;  (* address where the current run began *)
  mutable m_cur_run_len : int;  (* accesses since the run began *)
  m_row_strides : (int, int) Hashtbl.t;  (* run-start-to-run-start distance *)
  (* 64-access window-span accumulation *)
  mutable m_batch_n : int;
  mutable m_batch_min : int;
  mutable m_batch_max : int;
  mutable m_span_sum : int;
  mutable m_batches : int;
  m_strides : (int, int) Hashtbl.t;
}

type branch_acc = {
  b_pc : int;
  mutable b_execs : int;
  mutable b_takens : int;
  mutable b_transitions : int;
  mutable b_last : bool;
  mutable b_seen : bool;
}

(* --- per-SFG-node accumulators --- *)

type node_acc = {
  n_key : int * int; (* (pred block start, block start) *)
  n_index : int;
  mutable n_count : int;
  n_size : int;
  n_mix : int array;
  n_deps : int array; (* one slot per dep bucket *)
  n_mem_pcs : int array; (* static pcs of memory ops, in block order *)
  n_branch_pc : int; (* terminating conditional branch's pc, or -1 *)
  n_succs : (int * int, int ref) Hashtbl.t;
}

let dep_bucket =
  let bounds = Profile.dep_bounds in
  fun d ->
    let n = Array.length bounds in
    let rec go i = if i >= n then n else if d <= bounds.(i) then i else go (i + 1) in
    go 0

(* A dynamic basic block under construction. *)
type building = {
  bb_start : int;
  mutable bb_instrs : (int * I.iclass) list; (* reversed (pc, class) *)
  mutable bb_mem_pcs : int list; (* reversed *)
  mutable bb_deps : int list; (* reversed bucket indices *)
  mutable bb_branch_pc : int;
}

let profile ?(start = 0) ?(max_instrs = 10_000_000) program =
  let machine = Machine.load program in
  (* Skip the pre-window prefix functionally: machines resume across
     [run] calls, so the profiling pass below observes exactly the
     dynamic slice [start, start + max_instrs). *)
  if start > 0 then ignore (Machine.run ~max_instrs:start machine ignore);
  let mem_tbl : (int, mem_acc) Hashtbl.t = Hashtbl.create 256 in
  let branch_tbl : (int, branch_acc) Hashtbl.t = Hashtbl.create 256 in
  let node_tbl : (int * int, node_acc) Hashtbl.t = Hashtbl.create 1024 in
  let node_order : node_acc list ref = ref [] in
  let node_count = ref 0 in
  let global_mix = Array.make I.class_count 0 in
  let last_writer = Array.make 64 min_int in
  let instr_index = ref 0 in
  let prev_block = ref (-1) in
  let prev_node_key = ref None in
  let block_sizes_total = ref 0 in
  let block_count = ref 0 in
  let current = ref None in
  let finish_block b =
    let key = (!prev_block, b.bb_start) in
    let node =
      match Hashtbl.find_opt node_tbl key with
      | Some n -> n
      | None ->
        let size = List.length b.bb_instrs in
        let n =
          {
            n_key = key;
            n_index = !node_count;
            n_count = 0;
            n_size = size;
            n_mix = Array.make I.class_count 0;
            n_deps = Array.make (Array.length Profile.dep_bounds + 1) 0;
            n_mem_pcs = Array.of_list (List.rev b.bb_mem_pcs);
            n_branch_pc = b.bb_branch_pc;
            n_succs = Hashtbl.create 4;
          }
        in
        incr node_count;
        Hashtbl.add node_tbl key n;
        node_order := n :: !node_order;
        n
    in
    node.n_count <- node.n_count + 1;
    List.iter
      (fun (_, cls) ->
        let ci = I.class_index cls in
        node.n_mix.(ci) <- node.n_mix.(ci) + 1)
      b.bb_instrs;
    List.iter
      (fun bucket -> node.n_deps.(bucket) <- node.n_deps.(bucket) + 1)
      b.bb_deps;
    (* Record the SFG edge from the previous node instance. *)
    (match !prev_node_key with
    | Some pkey -> (
      match Hashtbl.find_opt node_tbl pkey with
      | Some pnode ->
        let cell =
          match Hashtbl.find_opt pnode.n_succs key with
          | Some c -> c
          | None ->
            let c = ref 0 in
            Hashtbl.add pnode.n_succs key c;
            c
        in
        incr cell
      | None -> ())
    | None -> ());
    prev_node_key := Some key;
    prev_block := b.bb_start;
    block_sizes_total := !block_sizes_total + node.n_size;
    incr block_count
  in
  let on_event (ev : Machine.event) =
    let b =
      match !current with
      | Some b -> b
      | None ->
        let b =
          {
            bb_start = ev.Machine.pc;
            bb_instrs = [];
            bb_mem_pcs = [];
            bb_deps = [];
            bb_branch_pc = -1;
          }
        in
        current := Some b;
        b
    in
    let cls = ev.Machine.iclass in
    b.bb_instrs <- (ev.Machine.pc, cls) :: b.bb_instrs;
    global_mix.(I.class_index cls) <- global_mix.(I.class_index cls) + 1;
    (* Register dependency distances. *)
    List.iter
      (fun id ->
        if id <> 0 then begin
          let w = last_writer.(id) in
          if w >= 0 then b.bb_deps <- dep_bucket (!instr_index - w) :: b.bb_deps
        end)
      ev.Machine.reads;
    (match ev.Machine.writes with
    | -1 | 0 -> ()
    | id -> last_writer.(id) <- !instr_index);
    incr instr_index;
    (* Memory behaviour. *)
    if ev.Machine.mem_addr >= 0 then begin
      let pc = ev.Machine.pc in
      b.bb_mem_pcs <- pc :: b.bb_mem_pcs;
      let acc =
        match Hashtbl.find_opt mem_tbl pc with
        | Some a -> a
        | None ->
          let a =
            {
              m_pc = pc;
              m_store = ev.Machine.is_store;
              m_refs = 0;
              m_last_addr = min_int;
              m_min_addr = max_int;
              m_max_addr = min_int;
              m_prev_stride = min_int;
              m_run_starts = Hashtbl.create 4;
              m_cur_run_start = min_int;
              m_cur_run_len = 0;
              m_row_strides = Hashtbl.create 4;
              m_batch_n = 0;
              m_batch_min = max_int;
              m_batch_max = min_int;
              m_span_sum = 0;
              m_batches = 0;
              m_strides = Hashtbl.create 4;
            }
          in
          Hashtbl.add mem_tbl pc a;
          a
      in
      let addr = ev.Machine.mem_addr in
      if acc.m_last_addr <> min_int then begin
        let stride = addr - acc.m_last_addr in
        let cell = try Hashtbl.find acc.m_strides stride with Not_found -> 0 in
        Hashtbl.replace acc.m_strides stride (cell + 1);
        (* a new run of this stride starts when the stride changes *)
        if stride <> acc.m_prev_stride then begin
          let runs = try Hashtbl.find acc.m_run_starts stride with Not_found -> 0 in
          Hashtbl.replace acc.m_run_starts stride (runs + 1);
          (* Second-level ("row") stride: start-to-start distance between
             genuine runs.  A stride change after a single access is the
             tail of a jump, not a run boundary — skip it so 2-D patterns
             (walk, jump, walk, jump, ...) are not diluted. *)
          if acc.m_cur_run_start = min_int then begin
            acc.m_cur_run_start <- addr;
            acc.m_cur_run_len <- 1
          end
          else if acc.m_cur_run_len >= 2 then begin
            let row = addr - acc.m_cur_run_start in
            let cell = try Hashtbl.find acc.m_row_strides row with Not_found -> 0 in
            Hashtbl.replace acc.m_row_strides row (cell + 1);
            acc.m_cur_run_start <- addr;
            acc.m_cur_run_len <- 1
          end
          else acc.m_cur_run_len <- acc.m_cur_run_len + 1
        end
        else acc.m_cur_run_len <- acc.m_cur_run_len + 1;
        acc.m_prev_stride <- stride
      end;
      acc.m_refs <- acc.m_refs + 1;
      acc.m_last_addr <- addr;
      if addr < acc.m_min_addr then acc.m_min_addr <- addr;
      if addr > acc.m_max_addr then acc.m_max_addr <- addr;
      (* 64-access window span *)
      if addr < acc.m_batch_min then acc.m_batch_min <- addr;
      if addr > acc.m_batch_max then acc.m_batch_max <- addr;
      acc.m_batch_n <- acc.m_batch_n + 1;
      if acc.m_batch_n >= 64 then begin
        acc.m_span_sum <- acc.m_span_sum + (acc.m_batch_max - acc.m_batch_min + 8);
        acc.m_batches <- acc.m_batches + 1;
        acc.m_batch_n <- 0;
        acc.m_batch_min <- max_int;
        acc.m_batch_max <- min_int
      end
    end;
    (* Branch behaviour. *)
    if ev.Machine.is_branch then begin
      let pc = ev.Machine.pc in
      b.bb_branch_pc <- pc;
      let acc =
        match Hashtbl.find_opt branch_tbl pc with
        | Some a -> a
        | None ->
          let a =
            {
              b_pc = pc;
              b_execs = 0;
              b_takens = 0;
              b_transitions = 0;
              b_last = false;
              b_seen = false;
            }
          in
          Hashtbl.add branch_tbl pc a;
          a
      in
      acc.b_execs <- acc.b_execs + 1;
      if ev.Machine.taken then acc.b_takens <- acc.b_takens + 1;
      if acc.b_seen && acc.b_last <> ev.Machine.taken then
        acc.b_transitions <- acc.b_transitions + 1;
      acc.b_last <- ev.Machine.taken;
      acc.b_seen <- true
    end;
    (* Block boundary. *)
    if I.is_control program.Pc_isa.Program.code.(ev.Machine.pc) then begin
      finish_block b;
      current := None
    end
  in
  let instrs = Machine.run ~max_instrs machine on_event in
  (match !current with Some b -> finish_block b | None -> ());
  (* --- summarise static memory instructions --- *)
  let mem_summary pc =
    let a = Hashtbl.find mem_tbl pc in
    let stride, stride_count =
      Hashtbl.fold
        (fun s c ((_, best_c) as best) -> if c > best_c then (s, c) else best)
        a.m_strides (0, 0)
    in
    (* With one reference there are no stride samples; treat as scalar. *)
    let stride = if stride_count = 0 then 0 else stride in
    let footprint = a.m_max_addr - a.m_min_addr + 8 in
    (* Average run length of the dominant stride: how many consecutive
       accesses it sustains before breaking. *)
    let stream_length =
      if stride = 0 then 1
      else
        let runs = try Hashtbl.find a.m_run_starts stride with Not_found -> 1 in
        max 1 (stride_count / max 1 runs) + 1
    in
    let window_span =
      if a.m_batches > 0 then a.m_span_sum / a.m_batches else footprint
    in
    (* Dominant row stride, kept only when it covers a majority of run
       transitions (regular 2-D walks). *)
    let row_stride =
      let best, best_c, total =
        Hashtbl.fold
          (fun r c (br, bc, t) -> if c > bc then (r, c, t + c) else (br, bc, t + c))
          a.m_row_strides (0, 0, 0)
      in
      if total >= 4 && best_c * 2 > total then best else 0
    in
    {
      Profile.static_pc = pc;
      is_store = a.m_store;
      stride;
      stream_length;
      footprint;
      window_span;
      region = a.m_min_addr;
      row_stride;
      refs = a.m_refs;
      single_stride_refs = stride_count + 1;
      (* the first reference of a static op trivially "matches": it
         starts the stream *)
    }
  in
  let nodes_in_order = Array.of_list (List.rev !node_order) in
  let nodes =
    Array.map
      (fun (n : node_acc) ->
        let mix_total = Array.fold_left ( + ) 0 n.n_mix in
        let mix =
          Array.map
            (fun c ->
              if mix_total = 0 then 0.0 else float_of_int c /. float_of_int mix_total)
            n.n_mix
        in
        let dep_total = Array.fold_left ( + ) 0 n.n_deps in
        let dep_fractions =
          Array.map
            (fun c ->
              if dep_total = 0 then 0.0 else float_of_int c /. float_of_int dep_total)
            n.n_deps
        in
        let mem_ops = Array.map mem_summary n.n_mem_pcs in
        let branch =
          if n.n_branch_pc < 0 then None
          else
            match Hashtbl.find_opt branch_tbl n.n_branch_pc with
            | None -> None
            | Some a ->
              Some
                {
                  Profile.execs = a.b_execs;
                  taken_rate = float_of_int a.b_takens /. float_of_int (max 1 a.b_execs);
                  transition_rate =
                    float_of_int a.b_transitions /. float_of_int (max 1 a.b_execs);
                }
        in
        let succ_total =
          Hashtbl.fold (fun _ c acc -> acc + !c) n.n_succs 0
        in
        let successors =
          if succ_total = 0 then [||]
          else
            Array.of_list
              (Hashtbl.fold
                 (fun key c acc ->
                   match Hashtbl.find_opt node_tbl key with
                   | Some succ ->
                     (succ.n_index, float_of_int !c /. float_of_int succ_total) :: acc
                   | None -> acc)
                 n.n_succs [])
        in
        (* Sort successors by node id for deterministic output. *)
        Array.sort (fun (a, _) (b, _) -> compare a b) successors;
        {
          Profile.id = n.n_index;
          pred_start = fst n.n_key;
          start = snd n.n_key;
          count = n.n_count;
          size = n.n_size;
          mix;
          dep_fractions;
          mem_ops;
          branch;
          successors;
        })
      nodes_in_order
  in
  (* --- whole-program aggregates --- *)
  let total_refs = ref 0 and covered_refs = ref 0 in
  let stream_classes = Hashtbl.create 64 in
  Hashtbl.iter
    (fun pc _ ->
      let m = mem_summary pc in
      total_refs := !total_refs + m.Profile.refs;
      covered_refs := !covered_refs + min m.Profile.refs m.Profile.single_stride_refs;
      Hashtbl.replace stream_classes (m.Profile.stride, m.Profile.stream_length) ())
    mem_tbl;
  let mix_total = Array.fold_left ( + ) 0 global_mix in
  {
    Profile.name = program.Pc_isa.Program.name;
    instr_count = instrs;
    nodes;
    global_mix =
      Array.map
        (fun c ->
          if mix_total = 0 then 0.0 else float_of_int c /. float_of_int mix_total)
        global_mix;
    avg_block_size =
      (if !block_count = 0 then 0.0
       else float_of_int !block_sizes_total /. float_of_int !block_count);
    single_stride_fraction =
      (if !total_refs = 0 then 1.0
       else float_of_int !covered_refs /. float_of_int !total_refs);
    unique_streams = Hashtbl.length stream_classes;
  }

let single_stride_fraction ?max_instrs program =
  (profile ?max_instrs program).Profile.single_stride_fraction
