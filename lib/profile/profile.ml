let dep_bounds = [| 1; 2; 4; 6; 8; 16; 32 |]

type mem_op = {
  static_pc : int;
  is_store : bool;
  stride : int;
  stream_length : int;
  footprint : int;
  window_span : int;
  region : int;
  row_stride : int;
  refs : int;
  single_stride_refs : int;
}

type branch_behaviour = { execs : int; taken_rate : float; transition_rate : float }

type node = {
  id : int;
  pred_start : int;
  start : int;
  count : int;
  size : int;
  mix : float array;
  dep_fractions : float array;
  mem_ops : mem_op array;
  branch : branch_behaviour option;
  successors : (int * float) array;
}

type t = {
  name : string;
  instr_count : int;
  nodes : node array;
  global_mix : float array;
  avg_block_size : float;
  single_stride_fraction : float;
  unique_streams : int;
}

let node_cdf t =
  let total =
    Array.fold_left (fun acc n -> acc +. float_of_int n.count) 0.0 t.nodes
  in
  let acc = ref 0.0 in
  Array.map
    (fun n ->
      acc := !acc +. (float_of_int n.count /. total);
      !acc)
    t.nodes

let pp_summary ppf t =
  Format.fprintf ppf "profile %s: %d dynamic instrs, %d SFG nodes@." t.name
    t.instr_count (Array.length t.nodes);
  Format.fprintf ppf "  avg block size %.2f, single-stride fraction %.3f, %d streams@."
    t.avg_block_size t.single_stride_fraction t.unique_streams;
  Format.fprintf ppf "  mix:";
  Array.iteri
    (fun ci frac ->
      if frac > 0.001 then
        Format.fprintf ppf " %s=%.3f"
          (Pc_isa.Instr.class_name (Pc_isa.Instr.class_of_index ci))
          frac)
    t.global_mix;
  Format.fprintf ppf "@."

(* --- serialisation: one record per line, space-separated --- *)

let write_floats oc a =
  Array.iter (fun v -> Printf.fprintf oc " %h" v) a

let save oc t =
  Printf.fprintf oc "perfclone-profile 5\n";
  Printf.fprintf oc "name %s\n" t.name;
  Printf.fprintf oc "instr_count %d\n" t.instr_count;
  Printf.fprintf oc "avg_block_size %h\n" t.avg_block_size;
  Printf.fprintf oc "single_stride_fraction %h\n" t.single_stride_fraction;
  Printf.fprintf oc "unique_streams %d\n" t.unique_streams;
  Printf.fprintf oc "global_mix";
  write_floats oc t.global_mix;
  Printf.fprintf oc "\n";
  Printf.fprintf oc "nodes %d\n" (Array.length t.nodes);
  Array.iter
    (fun n ->
      Printf.fprintf oc "node %d %d %d %d %d\n" n.id n.pred_start n.start n.count
        n.size;
      Printf.fprintf oc "mix";
      write_floats oc n.mix;
      Printf.fprintf oc "\n";
      Printf.fprintf oc "deps";
      write_floats oc n.dep_fractions;
      Printf.fprintf oc "\n";
      Printf.fprintf oc "mem_ops %d\n" (Array.length n.mem_ops);
      Array.iter
        (fun m ->
          Printf.fprintf oc "mem %d %d %d %d %d %d %d %d %d %d\n" m.static_pc
            (if m.is_store then 1 else 0)
            m.stride m.stream_length m.footprint m.window_span m.region
            m.row_stride m.refs m.single_stride_refs)
        n.mem_ops;
      (match n.branch with
      | None -> Printf.fprintf oc "branch none\n"
      | Some b ->
        Printf.fprintf oc "branch %d %h %h\n" b.execs b.taken_rate b.transition_rate);
      Printf.fprintf oc "succs %d" (Array.length n.successors);
      Array.iter (fun (id, p) -> Printf.fprintf oc " %d %h" id p) n.successors;
      Printf.fprintf oc "\n")
    t.nodes

exception Parse of string

let load ic =
  let line () = try input_line ic with End_of_file -> raise (Parse "unexpected EOF") in
  let expect_tokens expected =
    let l = line () in
    match String.split_on_char ' ' l with
    | tok :: rest when tok = expected -> rest
    | _ -> raise (Parse (Printf.sprintf "expected %S, got %S" expected l))
  in
  let floats_of = Array.of_list in
  let parse_float s =
    try float_of_string s with Failure _ -> raise (Parse ("bad float " ^ s))
  in
  let parse_int s =
    try int_of_string s with Failure _ -> raise (Parse ("bad int " ^ s))
  in
  try
    (match expect_tokens "perfclone-profile" with
    | [ "5" ] -> ()
    | _ -> raise (Parse "unsupported version"));
    let name = String.concat " " (expect_tokens "name") in
    let instr_count = parse_int (List.hd (expect_tokens "instr_count")) in
    let avg_block_size = parse_float (List.hd (expect_tokens "avg_block_size")) in
    let single_stride_fraction =
      parse_float (List.hd (expect_tokens "single_stride_fraction"))
    in
    let unique_streams = parse_int (List.hd (expect_tokens "unique_streams")) in
    let global_mix = floats_of (List.map parse_float (expect_tokens "global_mix")) in
    let n_nodes = parse_int (List.hd (expect_tokens "nodes")) in
    let nodes =
      Array.init n_nodes (fun _ ->
          let id, pred_start, start, count, size =
            match expect_tokens "node" with
            | [ a; b; c; d; e ] ->
              (parse_int a, parse_int b, parse_int c, parse_int d, parse_int e)
            | _ -> raise (Parse "bad node header")
          in
          let mix = floats_of (List.map parse_float (expect_tokens "mix")) in
          let dep_fractions = floats_of (List.map parse_float (expect_tokens "deps")) in
          let n_mem = parse_int (List.hd (expect_tokens "mem_ops")) in
          let mem_ops =
            Array.init n_mem (fun _ ->
                match expect_tokens "mem" with
                | [ a; b; c; d; e; f; g; h; k; l ] ->
                  {
                    static_pc = parse_int a;
                    is_store = parse_int b = 1;
                    stride = parse_int c;
                    stream_length = parse_int d;
                    footprint = parse_int e;
                    window_span = parse_int f;
                    region = parse_int g;
                    row_stride = parse_int h;
                    refs = parse_int k;
                    single_stride_refs = parse_int l;
                  }
                | _ -> raise (Parse "bad mem record"))
          in
          let branch =
            match expect_tokens "branch" with
            | [ "none" ] -> None
            | [ a; b; c ] ->
              Some
                {
                  execs = parse_int a;
                  taken_rate = parse_float b;
                  transition_rate = parse_float c;
                }
            | _ -> raise (Parse "bad branch record")
          in
          let successors =
            match expect_tokens "succs" with
            | count :: rest ->
              let n = parse_int count in
              let arr = Array.of_list rest in
              if Array.length arr <> 2 * n then raise (Parse "bad succs record");
              Array.init n (fun k ->
                  (parse_int arr.(2 * k), parse_float arr.((2 * k) + 1)))
            | [] -> raise (Parse "bad succs record")
          in
          { id; pred_start; start; count; size; mix; dep_fractions; mem_ops; branch; successors })
    in
    {
      name;
      instr_count;
      nodes;
      global_mix;
      avg_block_size;
      single_stride_fraction;
      unique_streams;
    }
  with Parse msg -> failwith ("Profile.load: " ^ msg)
