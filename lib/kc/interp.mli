(** Reference interpreter for Kc.

    Defines the language semantics independently of the SRISC compiler;
    the test suite runs both on the same programs and compares results
    (differential testing of {!Compile}). *)

exception Runtime_error of string

type result = {
  return_value : int64;  (** what [main] returned *)
  globals : (string * int64 array) list;  (** final global contents *)
  steps : int;  (** statements executed (a rough cost measure) *)
}

val run : ?max_steps:int -> Ast.prog -> result
(** Type-checks and interprets a program.  [max_steps] (default 100
    million) bounds statement executions; exceeding it raises
    {!Runtime_error}. *)
