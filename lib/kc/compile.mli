(** Compiler from Kc to SRISC.

    Register conventions:
    - [r0] zero, [r1]/[f1] return values, [r2..r7]/[f2..f7] arguments,
    - [r8..r19]/[f8..f19] homes for scalar parameters and locals (extras
      spill to the stack frame),
    - [r20..r27]/[f20..f27] expression temporaries,
    - [r26] is {b not} a temporary — it is the link register; the integer
      temporary range is [r20..r25] plus [r27..r28],
    - [r29] stack pointer, [r30] global data pointer, [f31] always 0.0.

    Every function saves the link register and every home/temporary it
    writes, so arbitrary (including recursive) call graphs are safe and
    expression temporaries survive calls.

    Global arrays live in the data segment starting at
    {!Pc_isa.Program.data_base}; element [i] of a global at byte offset
    [off] is at [data_base + off + 8 * i]. *)

exception Error of string
(** Raised when a program fails {!Check.check} or exceeds a code-generator
    limit (e.g. an expression too deep for the temporary pool). *)

val compile : name:string -> Ast.prog -> Pc_isa.Program.t
(** Type-check and compile.  Execution convention: the program runs
    [main] and halts; [main]'s return value is left in [r1] for result
    checking. *)

val global_offsets : Ast.prog -> (string * int) list
(** Byte offset of each global within the data segment, in layout order
    (exposed for tests and debugging tools). *)
