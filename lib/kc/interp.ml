open Ast

exception Runtime_error of string

type value = VI of int64 | VF of float

type result = {
  return_value : int64;
  globals : (string * int64 array) list;
  steps : int;
}

exception Return_exn of value

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let as_int = function VI v -> v | VF _ -> error "expected an integer value"
let as_float = function VF v -> v | VI _ -> error "expected a float value"
let bool64 b = if b then 1L else 0L

let int_bin op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if Int64.equal b 0L then 0L else Int64.div a b
  | Mod -> if Int64.equal b 0L then 0L else Int64.rem a b
  | Band -> Int64.logand a b
  | Bor -> Int64.logor a b
  | Bxor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Eq -> bool64 (Int64.equal a b)
  | Ne -> bool64 (not (Int64.equal a b))
  | Lt -> bool64 (Int64.compare a b < 0)
  | Le -> bool64 (Int64.compare a b <= 0)
  | Gt -> bool64 (Int64.compare a b > 0)
  | Ge -> bool64 (Int64.compare a b >= 0)
  | Land -> bool64 ((not (Int64.equal a 0L)) && not (Int64.equal b 0L))
  | Lor -> bool64 ((not (Int64.equal a 0L)) || not (Int64.equal b 0L))

let float_bin op a b =
  match op with
  | Add -> VF (a +. b)
  | Sub -> VF (a -. b)
  | Mul -> VF (a *. b)
  | Div -> VF (if b = 0.0 then 0.0 else a /. b)
  | Eq -> VI (bool64 (a = b))
  | Ne -> VI (bool64 (a <> b))
  | Lt -> VI (bool64 (a < b))
  | Le -> VI (bool64 (a <= b))
  | Gt -> VI (bool64 (a > b))
  | Ge -> VI (bool64 (a >= b))
  | Mod | Band | Bor | Bxor | Shl | Shr | Land | Lor ->
    error "integer-only operator reached floats (checker should have caught this)"

type state = {
  globals : (string, ty * int64 array) Hashtbl.t;
  funs : (string, fundef) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
}

let rec eval st (env : (string, value) Hashtbl.t) expr =
  match expr with
  | Int v -> VI v
  | Flt v -> VF v
  | Var name -> (
    match Hashtbl.find_opt env name with
    | Some v -> v
    | None -> error "unbound variable %S" name)
  | Ld (name, idx) -> (
    let ty, arr = Hashtbl.find st.globals name in
    let index = Int64.to_int (as_int (eval st env idx)) in
    if index < 0 || index >= Array.length arr then
      error "index %d out of bounds for %S (size %d)" index name
        (Array.length arr);
    match ty with
    | I -> VI arr.(index)
    | F -> VF (Int64.float_of_bits arr.(index)))
  | Bin (op, a, b) -> (
    let va = eval st env a and vb = eval st env b in
    match (va, vb) with
    | VI x, VI y -> VI (int_bin op x y)
    | VF x, VF y -> float_bin op x y
    | VI _, VF _ | VF _, VI _ -> error "mixed-type binary operator")
  | Un (op, a) -> (
    let va = eval st env a in
    match (op, va) with
    | Neg, VI x -> VI (Int64.neg x)
    (* Kc defines float negation as subtraction from zero, matching the
       SRISC lowering exactly (so 0.0 negates to +0.0, not -0.0). *)
    | Neg, VF x -> VF (0.0 -. x)
    | Bnot, VI x -> VI (Int64.lognot x)
    | Lnot, VI x -> VI (bool64 (Int64.equal x 0L))
    | (Bnot | Lnot), VF _ -> error "integer-only unary operator on a float")
  | Call (name, args) -> call_fun st name (List.map (eval st env) args)
  | I2f e -> VF (Int64.to_float (as_int (eval st env e)))
  | F2i e -> VI (Int64.of_float (as_float (eval st env e)))

and call_fun st name arg_values =
  let fd =
    match Hashtbl.find_opt st.funs name with
    | Some fd -> fd
    | None -> error "unbound function %S" name
  in
  let env = Hashtbl.create 16 in
  List.iter2
    (fun (pname, _) v -> Hashtbl.replace env pname v)
    fd.params arg_values;
  List.iter
    (fun (lname, ty) ->
      Hashtbl.replace env lname (match ty with I -> VI 0L | F -> VF 0.0))
    fd.locals;
  match exec_block st env fd.body with
  | () -> ( match fd.ret with I -> VI 0L | F -> VF 0.0)
  | exception Return_exn v -> v

and exec_block st env stmts = List.iter (exec_stmt st env) stmts

and exec_stmt st env stmt =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then error "step budget exhausted";
  match stmt with
  | Set (name, e) -> Hashtbl.replace env name (eval st env e)
  | St (name, idx, e) -> (
    let ty, arr = Hashtbl.find st.globals name in
    let index = Int64.to_int (as_int (eval st env idx)) in
    if index < 0 || index >= Array.length arr then
      error "index %d out of bounds for %S (size %d)" index name
        (Array.length arr);
    match (ty, eval st env e) with
    | I, VI v -> arr.(index) <- v
    | F, VF v -> arr.(index) <- Int64.bits_of_float v
    | I, VF _ | F, VI _ -> error "store type mismatch for %S" name)
  | If (c, t, e) ->
    if not (Int64.equal (as_int (eval st env c)) 0L) then exec_block st env t
    else exec_block st env e
  | While (c, body) ->
    while not (Int64.equal (as_int (eval st env c)) 0L) do
      st.steps <- st.steps + 1;
      if st.steps > st.max_steps then error "step budget exhausted";
      exec_block st env body
    done
  | For (var, lo, hi, body) ->
    Hashtbl.replace env var (VI (as_int (eval st env lo)));
    let continue () =
      Int64.compare
        (as_int (Hashtbl.find env var))
        (as_int (eval st env hi))
      < 0
    in
    while continue () do
      st.steps <- st.steps + 1;
      if st.steps > st.max_steps then error "step budget exhausted";
      exec_block st env body;
      Hashtbl.replace env var (VI (Int64.add (as_int (Hashtbl.find env var)) 1L))
    done
  | Expr e -> ignore (eval st env e)
  | Ret None -> raise (Return_exn (VI 0L))
  | Ret (Some e) -> raise (Return_exn (eval st env e))

let run ?(max_steps = 100_000_000) prog =
  Check.check prog;
  let st =
    {
      globals = Hashtbl.create 16;
      funs = Hashtbl.create 16;
      steps = 0;
      max_steps;
    }
  in
  List.iter
    (fun g ->
      let arr = Array.make g.elems 0L in
      Array.blit g.ginit 0 arr 0 (Array.length g.ginit);
      Hashtbl.replace st.globals g.gname (g.gty, arr))
    prog.globals;
  List.iter (fun fd -> Hashtbl.replace st.funs fd.fname fd) prog.funs;
  let return_value = as_int (call_fun st "main" []) in
  {
    return_value;
    globals =
      List.map (fun g -> (g.gname, snd (Hashtbl.find st.globals g.gname))) prog.globals;
    steps = st.steps;
  }
