type ty = I | F

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Bnot | Lnot

type expr =
  | Int of int64
  | Flt of float
  | Var of string
  | Ld of string * expr
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
  | I2f of expr
  | F2i of expr

type stmt =
  | Set of string * expr
  | St of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
  | Expr of expr
  | Ret of expr option

type fundef = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  locals : (string * ty) list;
  body : stmt list;
}

type global = { gname : string; gty : ty; elems : int; ginit : int64 array }
type prog = { globals : global list; funs : fundef list }

let i n = Int (Int64.of_int n)
let f x = Flt x
let v name = Var name
let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( /: ) a b = Bin (Div, a, b)
let ( %: ) a b = Bin (Mod, a, b)
let ( <: ) a b = Bin (Lt, a, b)
let ( <=: ) a b = Bin (Le, a, b)
let ( >: ) a b = Bin (Gt, a, b)
let ( >=: ) a b = Bin (Ge, a, b)
let ( =: ) a b = Bin (Eq, a, b)
let ( <>: ) a b = Bin (Ne, a, b)
let ( &&: ) a b = Bin (Land, a, b)
let ( ||: ) a b = Bin (Lor, a, b)
let ( &: ) a b = Bin (Band, a, b)
let ( |: ) a b = Bin (Bor, a, b)
let ( ^: ) a b = Bin (Bxor, a, b)
let ( <<: ) a b = Bin (Shl, a, b)
let ( >>: ) a b = Bin (Shr, a, b)
let ld name idx = Ld (name, idx)
let call name args = Call (name, args)
let set name e = Set (name, e)
let st name idx e = St (name, idx, e)
let if_ c t e = If (c, t, e)
let while_ c body = While (c, body)
let for_ var lo hi body = For (var, lo, hi, body)
let ret e = Ret (Some e)

let fn fname ?(params = []) ?(ret = I) ?(locals = []) body =
  { fname; params; ret; locals; body }

let garr gname ?(gty = I) ?(init = [||]) elems = { gname; gty; elems; ginit = init }

let gfarr gname ?(init = [||]) elems =
  { gname; gty = F; elems; ginit = Array.map Int64.bits_of_float init }
