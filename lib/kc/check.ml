open Ast

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let ty_name = function I -> "int" | F -> "float"

let rec type_of_expr ~globals ~vars ~funs expr =
  let recur e = type_of_expr ~globals ~vars ~funs e in
  match expr with
  | Int _ -> I
  | Flt _ -> F
  | Var name -> (
    match vars name with
    | Some ty -> ty
    | None -> error "unknown variable %S" name)
  | Ld (name, idx) -> (
    match globals name with
    | None -> error "unknown global array %S" name
    | Some ty ->
      if recur idx <> I then error "index of %S must be an integer" name;
      ty)
  | Bin (op, a, b) -> (
    let ta = recur a and tb = recur b in
    if ta <> tb then
      error "binary operator applied to %s and %s" (ty_name ta) (ty_name tb);
    match op with
    | Add | Sub | Mul | Div -> ta
    | Mod | Band | Bor | Bxor | Shl | Shr | Land | Lor ->
      if ta <> I then error "integer-only operator applied to floats";
      I
    | Eq | Ne | Lt | Le | Gt | Ge -> I)
  | Un (op, a) -> (
    let ta = recur a in
    match op with
    | Neg -> ta
    | Bnot | Lnot ->
      if ta <> I then error "integer-only unary operator applied to a float";
      I)
  | Call (name, args) -> (
    match funs name with
    | None -> error "unknown function %S" name
    | Some (param_tys, ret_ty) ->
      if List.length args <> List.length param_tys then
        error "function %S called with %d arguments, expects %d" name
          (List.length args) (List.length param_tys);
      List.iter2
        (fun arg pty ->
          if recur arg <> pty then error "argument type mismatch calling %S" name)
        args param_tys;
      ret_ty)
  | I2f e ->
    if recur e <> I then error "i2f applied to a float";
    F
  | F2i e ->
    if recur e <> F then error "f2i applied to an integer";
    I

let check_fun ~globals ~funs fundef =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, ty) ->
      if Hashtbl.mem tbl name then
        error "duplicate variable %S in %S" name fundef.fname;
      Hashtbl.add tbl name ty)
    (fundef.params @ fundef.locals);
  let vars name = Hashtbl.find_opt tbl name in
  let expr_ty e = type_of_expr ~globals ~vars ~funs e in
  let rec check_stmt = function
    | Set (name, e) -> (
      match vars name with
      | None -> error "assignment to unknown variable %S in %S" name fundef.fname
      | Some ty ->
        if expr_ty e <> ty then
          error "assignment type mismatch for %S in %S" name fundef.fname)
    | St (name, idx, e) -> (
      match globals name with
      | None -> error "store to unknown global %S in %S" name fundef.fname
      | Some ty ->
        if expr_ty idx <> I then error "index of %S must be an integer" name;
        if expr_ty e <> ty then
          error "store type mismatch for %S in %S" name fundef.fname)
    | If (c, t, e) ->
      if expr_ty c <> I then error "condition must be an integer in %S" fundef.fname;
      List.iter check_stmt t;
      List.iter check_stmt e
    | While (c, body) ->
      if expr_ty c <> I then error "condition must be an integer in %S" fundef.fname;
      List.iter check_stmt body
    | For (var, lo, hi, body) ->
      (match vars var with
      | Some I -> ()
      | Some F -> error "for-variable %S must be an integer in %S" var fundef.fname
      | None -> error "for-variable %S not declared in %S" var fundef.fname);
      if expr_ty lo <> I || expr_ty hi <> I then
        error "for-bounds must be integers in %S" fundef.fname;
      List.iter check_stmt body
    | Expr e -> ignore (expr_ty e)
    | Ret None -> ()
    | Ret (Some e) ->
      if expr_ty e <> fundef.ret then
        error "return type mismatch in %S" fundef.fname
  in
  List.iter check_stmt fundef.body

let check prog =
  let gtbl = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem gtbl g.gname then error "duplicate global %S" g.gname;
      if g.elems <= 0 then error "global %S has non-positive size" g.gname;
      if Array.length g.ginit > g.elems then
        error "global %S initialiser longer than the array" g.gname;
      Hashtbl.add gtbl g.gname g.gty)
    prog.globals;
  let ftbl = Hashtbl.create 16 in
  List.iter
    (fun fd ->
      if Hashtbl.mem ftbl fd.fname then error "duplicate function %S" fd.fname;
      if List.length fd.params > Pc_isa.Reg.max_args then
        error "function %S has too many parameters (max %d)" fd.fname
          Pc_isa.Reg.max_args;
      Hashtbl.add ftbl fd.fname (List.map snd fd.params, fd.ret))
    prog.funs;
  (match Hashtbl.find_opt ftbl "main" with
  | Some ([], I) -> ()
  | Some _ -> error "main must take no parameters and return an integer"
  | None -> error "program has no main function");
  let globals name = Hashtbl.find_opt gtbl name in
  let funs name = Hashtbl.find_opt ftbl name in
  List.iter (check_fun ~globals ~funs) prog.funs
