open Ast
module I = Pc_isa.Instr
module Reg = Pc_isa.Reg
module Asm = Pc_isa.Asm

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Register conventions (see the interface). *)
let gp = 30
let fzero = 31
let int_homes = [ 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19 ]
let fp_homes = int_homes
let int_temps = [ 20; 21; 22; 23; 24; 25; 27; 28 ]
let fp_temps = [ 20; 21; 22; 23; 24; 25; 26; 27 ]

type loc = Lreg of int | Lfreg of int | Lspill of int (* frame slot *)

(* The result of compiling an expression: which register holds it and
   whether that register came from the temporary pool. *)
type res = { reg : int; rty : ty; is_temp : bool }

type ctx = {
  mutable items : Asm.item list; (* reversed *)
  vars : (string, ty * loc) Hashtbl.t;
  mutable free_int_temps : int list;
  mutable free_fp_temps : int list;
  globals : (string, ty * int) Hashtbl.t; (* byte offset in data segment *)
  fun_sigs : (string, ty list * ty) Hashtbl.t;
  label_counter : int ref;
  epilogue : string;
  fname : string;
}

let emit ctx instr = ctx.items <- Asm.Ins instr :: ctx.items
let emit_label ctx l = ctx.items <- Asm.Label l :: ctx.items

let fresh_label ctx stem =
  incr ctx.label_counter;
  Printf.sprintf "%s_%s_%d" ctx.fname stem !(ctx.label_counter)

let alloc_temp ctx ty =
  match ty with
  | I -> (
    match ctx.free_int_temps with
    | r :: rest ->
      ctx.free_int_temps <- rest;
      { reg = r; rty = I; is_temp = true }
    | [] -> error "expression too deep in %S: out of integer temporaries" ctx.fname)
  | F -> (
    match ctx.free_fp_temps with
    | r :: rest ->
      ctx.free_fp_temps <- rest;
      { reg = r; rty = F; is_temp = true }
    | [] -> error "expression too deep in %S: out of float temporaries" ctx.fname)

let free ctx res =
  if res.is_temp then
    match res.rty with
    | I -> ctx.free_int_temps <- res.reg :: ctx.free_int_temps
    | F -> ctx.free_fp_temps <- res.reg :: ctx.free_fp_temps

let expr_ty ctx e =
  Check.type_of_expr
    ~globals:(fun n -> Option.map fst (Hashtbl.find_opt ctx.globals n))
    ~vars:(fun n -> Option.map fst (Hashtbl.find_opt ctx.vars n))
    ~funs:(fun n -> Hashtbl.find_opt ctx.fun_sigs n)
    e

(* Normalise an integer register to 0/1 into a fresh temp: t = (r <> 0). *)
let normalise_bool ctx r =
  let t = alloc_temp ctx I in
  emit ctx (I.Alu (I.Cmp_eq, t.reg, r, Reg.zero));
  emit ctx (I.Alui (I.Xor, t.reg, t.reg, 1));
  t

let rec compile_expr ctx e : res =
  match e with
  | Int v ->
    let t = alloc_temp ctx I in
    emit ctx (I.Li (t.reg, v));
    t
  | Flt v ->
    let t = alloc_temp ctx F in
    emit ctx (I.Fli (t.reg, v));
    t
  | Var name -> (
    match Hashtbl.find_opt ctx.vars name with
    | Some (ty, Lreg r) -> { reg = r; rty = ty; is_temp = false }
    | Some (ty, Lfreg r) -> { reg = r; rty = ty; is_temp = false }
    | Some (I, Lspill slot) ->
      let t = alloc_temp ctx I in
      emit ctx (I.Load (t.reg, Reg.sp, 8 * slot));
      t
    | Some (F, Lspill slot) ->
      let t = alloc_temp ctx F in
      emit ctx (I.Fload (t.reg, Reg.sp, 8 * slot));
      t
    | None -> error "unknown variable %S in %S" name ctx.fname)
  | Ld (name, idx) -> (
    let ty, off = global_info ctx name in
    let addr = compile_address ctx idx in
    match ty with
    | I ->
      (* Reuse the address temporary as the destination. *)
      emit ctx (I.Load (addr.reg, addr.reg, off));
      addr
    | F ->
      let t = alloc_temp ctx F in
      emit ctx (I.Fload (t.reg, addr.reg, off));
      free ctx addr;
      t)
  | Bin (op, a, b) -> compile_bin ctx op a b
  | Un (op, a) -> compile_un ctx op a
  | Call (name, args) -> compile_call ctx name args
  | I2f a ->
    let ra = compile_expr ctx a in
    let t = alloc_temp ctx F in
    emit ctx (I.Itof (t.reg, ra.reg));
    free ctx ra;
    t
  | F2i a ->
    let ra = compile_expr ctx a in
    let t = alloc_temp ctx I in
    emit ctx (I.Ftoi (t.reg, ra.reg));
    free ctx ra;
    t

and global_info ctx name =
  match Hashtbl.find_opt ctx.globals name with
  | Some info -> info
  | None -> error "unknown global %S in %S" name ctx.fname

(* Compute [gp + 8 * idx] into a fresh integer temp; the caller adds the
   global's byte offset as a load/store displacement. *)
and compile_address ctx idx =
  let ri = compile_expr ctx idx in
  let t = alloc_temp ctx I in
  emit ctx (I.Alui (I.Sll, t.reg, ri.reg, 3));
  emit ctx (I.Alu (I.Add, t.reg, t.reg, gp));
  free ctx ri;
  t

and compile_bin ctx op a b =
  let ra = compile_expr ctx a in
  let rb = compile_expr ctx b in
  let result =
    match (ra.rty, op) with
    | I, (Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr) ->
      let t = alloc_temp ctx I in
      let instr =
        match op with
        | Add -> I.Alu (I.Add, t.reg, ra.reg, rb.reg)
        | Sub -> I.Alu (I.Sub, t.reg, ra.reg, rb.reg)
        | Mul -> I.Mul (t.reg, ra.reg, rb.reg)
        | Div -> I.Div (t.reg, ra.reg, rb.reg)
        | Mod -> I.Rem (t.reg, ra.reg, rb.reg)
        | Band -> I.Alu (I.And, t.reg, ra.reg, rb.reg)
        | Bor -> I.Alu (I.Or, t.reg, ra.reg, rb.reg)
        | Bxor -> I.Alu (I.Xor, t.reg, ra.reg, rb.reg)
        | Shl -> I.Alu (I.Sll, t.reg, ra.reg, rb.reg)
        | Shr -> I.Alu (I.Srl, t.reg, ra.reg, rb.reg)
        | _ -> assert false
      in
      emit ctx instr;
      t
    | I, (Eq | Ne | Lt | Le | Gt | Ge) ->
      let t = alloc_temp ctx I in
      (match op with
      | Eq -> emit ctx (I.Alu (I.Cmp_eq, t.reg, ra.reg, rb.reg))
      | Ne ->
        emit ctx (I.Alu (I.Cmp_eq, t.reg, ra.reg, rb.reg));
        emit ctx (I.Alui (I.Xor, t.reg, t.reg, 1))
      | Lt -> emit ctx (I.Alu (I.Cmp_lt, t.reg, ra.reg, rb.reg))
      | Le -> emit ctx (I.Alu (I.Cmp_le, t.reg, ra.reg, rb.reg))
      | Gt -> emit ctx (I.Alu (I.Cmp_lt, t.reg, rb.reg, ra.reg))
      | Ge -> emit ctx (I.Alu (I.Cmp_le, t.reg, rb.reg, ra.reg))
      | _ -> assert false);
      t
    | I, (Land | Lor) ->
      let na = normalise_bool ctx ra.reg in
      let nb = normalise_bool ctx rb.reg in
      let t = alloc_temp ctx I in
      let aluop = match op with Land -> I.And | _ -> I.Or in
      emit ctx (I.Alu (aluop, t.reg, na.reg, nb.reg));
      free ctx na;
      free ctx nb;
      t
    | F, (Add | Sub | Mul | Div) ->
      let t = alloc_temp ctx F in
      (match op with
      | Add -> emit ctx (I.Falu (I.Fadd, t.reg, ra.reg, rb.reg))
      | Sub -> emit ctx (I.Falu (I.Fsub, t.reg, ra.reg, rb.reg))
      | Mul -> emit ctx (I.Fmul (t.reg, ra.reg, rb.reg))
      | Div -> emit ctx (I.Fdiv (t.reg, ra.reg, rb.reg))
      | _ -> assert false);
      t
    | F, (Eq | Ne | Lt | Le | Gt | Ge) ->
      let t = alloc_temp ctx I in
      (match op with
      | Eq -> emit ctx (I.Fcmp (I.Fcmp_eq, t.reg, ra.reg, rb.reg))
      | Ne ->
        emit ctx (I.Fcmp (I.Fcmp_eq, t.reg, ra.reg, rb.reg));
        emit ctx (I.Alui (I.Xor, t.reg, t.reg, 1))
      | Lt -> emit ctx (I.Fcmp (I.Fcmp_lt, t.reg, ra.reg, rb.reg))
      | Le -> emit ctx (I.Fcmp (I.Fcmp_le, t.reg, ra.reg, rb.reg))
      | Gt -> emit ctx (I.Fcmp (I.Fcmp_lt, t.reg, rb.reg, ra.reg))
      | Ge -> emit ctx (I.Fcmp (I.Fcmp_le, t.reg, rb.reg, ra.reg))
      | _ -> assert false);
      t
    | F, (Mod | Band | Bor | Bxor | Shl | Shr | Land | Lor) ->
      error "integer-only operator on floats in %S" ctx.fname
  in
  free ctx ra;
  free ctx rb;
  result

and compile_un ctx op a =
  let ra = compile_expr ctx a in
  let result =
    match (op, ra.rty) with
    | Neg, I ->
      let t = alloc_temp ctx I in
      emit ctx (I.Alu (I.Sub, t.reg, Reg.zero, ra.reg));
      t
    | Neg, F ->
      let t = alloc_temp ctx F in
      emit ctx (I.Falu (I.Fsub, t.reg, fzero, ra.reg));
      t
    | Bnot, I ->
      let t = alloc_temp ctx I in
      emit ctx (I.Alui (I.Xor, t.reg, ra.reg, -1));
      t
    | Lnot, I ->
      let t = alloc_temp ctx I in
      emit ctx (I.Alu (I.Cmp_eq, t.reg, ra.reg, Reg.zero));
      t
    | (Bnot | Lnot), F -> error "integer-only unary operator on a float in %S" ctx.fname
  in
  free ctx ra;
  result

and compile_call ctx name args =
  let ret_ty =
    match Hashtbl.find_opt ctx.fun_sigs name with
    | Some (_, rt) -> rt
    | None -> error "unknown function %S called from %S" name ctx.fname
  in
  (* Evaluate every argument first (inner calls may clobber argument
     registers), then move them all into place. *)
  let results = List.map (compile_expr ctx) args in
  let int_pos = ref 0 and fp_pos = ref 0 in
  List.iter
    (fun r ->
      match r.rty with
      | I ->
        let dst = Reg.arg0 + !int_pos in
        incr int_pos;
        if dst >= Reg.arg0 + Reg.max_args then
          error "too many integer arguments calling %S" name;
        if dst <> r.reg then emit ctx (I.Alui (I.Add, dst, r.reg, 0))
      | F ->
        let dst = Reg.arg0 + !fp_pos in
        incr fp_pos;
        if dst >= Reg.arg0 + Reg.max_args then
          error "too many float arguments calling %S" name;
        if dst <> r.reg then emit ctx (I.Fmov (dst, r.reg)))
    results;
  List.iter (free ctx) results;
  emit ctx (I.Call (I.Label ("fn_" ^ name)));
  (* Copy the return value out of r1/f1 immediately. *)
  match ret_ty with
  | I ->
    let t = alloc_temp ctx I in
    emit ctx (I.Alui (I.Add, t.reg, Reg.ret, 0));
    t
  | F ->
    let t = alloc_temp ctx F in
    emit ctx (I.Fmov (t.reg, Reg.ret));
    t

let store_to_var ctx name res =
  match Hashtbl.find_opt ctx.vars name with
  | Some (_, Lreg r) -> if r <> res.reg then emit ctx (I.Alui (I.Add, r, res.reg, 0))
  | Some (_, Lfreg r) -> if r <> res.reg then emit ctx (I.Fmov (r, res.reg))
  | Some (I, Lspill slot) -> emit ctx (I.Store (res.reg, Reg.sp, 8 * slot))
  | Some (F, Lspill slot) -> emit ctx (I.Fstore (res.reg, Reg.sp, 8 * slot))
  | None -> error "unknown variable %S in %S" name ctx.fname

let rec compile_stmt ctx ret_ty stmt =
  match stmt with
  | Set (name, e) ->
    let r = compile_expr ctx e in
    store_to_var ctx name r;
    free ctx r
  | St (name, idx, e) ->
    let _, off = global_info ctx name in
    let value = compile_expr ctx e in
    let addr = compile_address ctx idx in
    (match value.rty with
    | I -> emit ctx (I.Store (value.reg, addr.reg, off))
    | F -> emit ctx (I.Fstore (value.reg, addr.reg, off)));
    free ctx addr;
    free ctx value
  | If (c, then_b, []) ->
    let l_end = fresh_label ctx "endif" in
    let rc = compile_expr ctx c in
    emit ctx (I.Br (I.Eq_z, rc.reg, I.Label l_end));
    free ctx rc;
    List.iter (compile_stmt ctx ret_ty) then_b;
    emit_label ctx l_end
  | If (c, then_b, else_b) ->
    let l_else = fresh_label ctx "else" in
    let l_end = fresh_label ctx "endif" in
    let rc = compile_expr ctx c in
    emit ctx (I.Br (I.Eq_z, rc.reg, I.Label l_else));
    free ctx rc;
    List.iter (compile_stmt ctx ret_ty) then_b;
    emit ctx (I.Jmp (I.Label l_end));
    emit_label ctx l_else;
    List.iter (compile_stmt ctx ret_ty) else_b;
    emit_label ctx l_end
  | While (c, body) ->
    let l_top = fresh_label ctx "while" in
    let l_end = fresh_label ctx "wend" in
    emit_label ctx l_top;
    let rc = compile_expr ctx c in
    emit ctx (I.Br (I.Eq_z, rc.reg, I.Label l_end));
    free ctx rc;
    List.iter (compile_stmt ctx ret_ty) body;
    emit ctx (I.Jmp (I.Label l_top));
    emit_label ctx l_end
  | For (var, lo, hi, body) ->
    let l_top = fresh_label ctx "for" in
    let l_end = fresh_label ctx "fend" in
    compile_stmt ctx ret_ty (Set (var, lo));
    emit_label ctx l_top;
    let cond = compile_expr ctx (Bin (Lt, Var var, hi)) in
    emit ctx (I.Br (I.Eq_z, cond.reg, I.Label l_end));
    free ctx cond;
    List.iter (compile_stmt ctx ret_ty) body;
    compile_stmt ctx ret_ty (Set (var, Bin (Add, Var var, Int 1L)));
    emit ctx (I.Jmp (I.Label l_top));
    emit_label ctx l_end
  | Expr e ->
    let r = compile_expr ctx e in
    free ctx r
  | Ret None -> emit ctx (I.Jmp (I.Label ctx.epilogue))
  | Ret (Some e) ->
    let r = compile_expr ctx e in
    (match expr_ty ctx e with
    | I -> if r.reg <> Reg.ret then emit ctx (I.Alui (I.Add, Reg.ret, r.reg, 0))
    | F -> if r.reg <> Reg.ret then emit ctx (I.Fmov (Reg.ret, r.reg)));
    free ctx r;
    emit ctx (I.Jmp (I.Label ctx.epilogue))

(* Registers a function must preserve: homes and temporaries of both
   files.  Argument and return registers are caller-managed. *)
let save_candidate id =
  let intr = id < 32 in
  let n = if intr then id else id - 32 in
  n >= 8 && n <= 28 && not (intr && n = Reg.ra)

let compile_fun ~globals ~fun_sigs ~label_counter (fd : fundef) =
  let vars = Hashtbl.create 16 in
  let next_int_home = ref int_homes in
  let next_fp_home = ref fp_homes in
  let spill_count = ref 0 in
  let assign_loc ty =
    match ty with
    | I -> (
      match !next_int_home with
      | r :: rest ->
        next_int_home := rest;
        Lreg r
      | [] ->
        let s = !spill_count in
        incr spill_count;
        Lspill s)
    | F -> (
      match !next_fp_home with
      | r :: rest ->
        next_fp_home := rest;
        Lfreg r
      | [] ->
        let s = !spill_count in
        incr spill_count;
        Lspill s)
  in
  List.iter
    (fun (name, ty) -> Hashtbl.replace vars name (ty, assign_loc ty))
    (fd.params @ fd.locals);
  let ctx =
    {
      items = [];
      vars;
      free_int_temps = int_temps;
      free_fp_temps = fp_temps;
      globals;
      fun_sigs;
      label_counter;
      epilogue = Printf.sprintf "fn_%s_epilogue" fd.fname;
      fname = fd.fname;
    }
  in
  (* Move incoming arguments from argument registers to their homes. *)
  let int_pos = ref 0 and fp_pos = ref 0 in
  List.iter
    (fun (name, ty) ->
      let src =
        match ty with
        | I ->
          let r = Reg.arg0 + !int_pos in
          incr int_pos;
          r
        | F ->
          let r = Reg.arg0 + !fp_pos in
          incr fp_pos;
          r
      in
      match Hashtbl.find vars name with
      | I, Lreg home -> emit ctx (I.Alui (I.Add, home, src, 0))
      | F, Lfreg home -> emit ctx (I.Fmov (home, src))
      | I, Lspill slot -> emit ctx (I.Store (src, Reg.sp, 8 * slot))
      | F, Lspill slot -> emit ctx (I.Fstore (src, Reg.sp, 8 * slot))
      | I, Lfreg _ | F, Lreg _ -> assert false)
    fd.params;
  (* Kc semantics: locals start at zero (the interpreter guarantees it). *)
  List.iter
    (fun (lname, _) ->
      match Hashtbl.find vars lname with
      | I, Lreg home -> emit ctx (I.Li (home, 0L))
      | F, Lfreg home -> emit ctx (I.Fli (home, 0.0))
      | I, Lspill slot -> emit ctx (I.Store (Reg.zero, Reg.sp, 8 * slot))
      | F, Lspill slot -> emit ctx (I.Fstore (fzero, Reg.sp, 8 * slot))
      | I, Lfreg _ | F, Lreg _ -> assert false)
    fd.locals;
  List.iter (compile_stmt ctx fd.ret) fd.body;
  let body = List.rev ctx.items in
  (* Which preserved registers does the body write? *)
  let written = Hashtbl.create 16 in
  List.iter
    (fun item ->
      match item with
      | Asm.Label _ -> ()
      | Asm.Ins instr -> (
        match I.writes instr with
        | Some id when save_candidate id -> Hashtbl.replace written id ()
        | Some _ | None -> ()))
    body;
  let saved = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) written []) in
  let n_spill = !spill_count in
  let frame_words = n_spill + 1 + List.length saved in
  let frame_bytes = 8 * frame_words in
  let save_slot i = 8 * (n_spill + 1 + i) in
  let save_instr idx id =
    if id < 32 then I.Store (id, Reg.sp, save_slot idx)
    else I.Fstore (id - 32, Reg.sp, save_slot idx)
  in
  let restore_instr idx id =
    if id < 32 then I.Load (id, Reg.sp, save_slot idx)
    else I.Fload (id - 32, Reg.sp, save_slot idx)
  in
  let prologue =
    Asm.Label ("fn_" ^ fd.fname)
    :: Asm.Ins (I.Alui (I.Add, Reg.sp, Reg.sp, -frame_bytes))
    :: Asm.Ins (I.Store (Reg.ra, Reg.sp, 8 * n_spill))
    :: List.mapi (fun i id -> Asm.Ins (save_instr i id)) saved
  in
  let epilogue =
    Asm.Label ctx.epilogue
    :: List.mapi (fun i id -> Asm.Ins (restore_instr i id)) saved
    @ [
        Asm.Ins (I.Load (Reg.ra, Reg.sp, 8 * n_spill));
        Asm.Ins (I.Alui (I.Add, Reg.sp, Reg.sp, frame_bytes));
        Asm.Ins (I.Jr Reg.ra);
      ]
  in
  prologue @ body @ epilogue

let layout_globals globs =
  let _, rev =
    List.fold_left
      (fun (off, acc) g -> (off + (8 * g.elems), (g.gname, g.gty, off) :: acc))
      (0, []) globs
  in
  List.rev rev

let global_offsets (prog : prog) =
  List.map (fun (name, _, off) -> (name, off)) (layout_globals prog.globals)

let compile ~name (prog : prog) =
  (try Check.check prog with Check.Error msg -> raise (Error msg));
  let layout = layout_globals prog.globals in
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (gname, gty, off) -> Hashtbl.replace globals gname (gty, off))
    layout;
  let fun_sigs = Hashtbl.create 16 in
  List.iter
    (fun (fd : fundef) ->
      Hashtbl.replace fun_sigs fd.fname (List.map snd fd.params, fd.ret))
    prog.funs;
  let label_counter = ref 0 in
  let entry =
    [
      Asm.Ins (I.Li (gp, Int64.of_int Pc_isa.Program.data_base));
      Asm.Ins (I.Call (I.Label "fn_main"));
      Asm.Ins I.Halt;
    ]
  in
  let body =
    List.concat_map (compile_fun ~globals ~fun_sigs ~label_counter) prog.funs
  in
  let data =
    List.concat_map
      (fun g ->
        let _, _, off =
          List.find (fun (n, _, _) -> n = g.gname) layout
        in
        let base = Pc_isa.Program.data_base + off in
        List.init (Array.length g.ginit) (fun i -> (base + (8 * i), g.ginit.(i))))
      prog.globals
  in
  let data_bytes =
    List.fold_left (fun acc g -> acc + (8 * g.elems)) 0 prog.globals
  in
  Asm.assemble ~name ~data ~data_bytes (entry @ body)
