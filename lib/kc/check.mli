(** Static checks for Kc programs.

    Verifies name resolution, arity, and the simple monomorphic type
    rules: arithmetic is homogeneous, comparisons yield integers, bitwise
    and logical operators are integer-only, array index expressions are
    integers, [For] variables are declared integer locals, [main] exists
    with no parameters and integer return. *)

exception Error of string
(** Raised with a human-readable message on any violation. *)

val type_of_expr :
  globals:(string -> Ast.ty option) ->
  vars:(string -> Ast.ty option) ->
  funs:(string -> (Ast.ty list * Ast.ty) option) ->
  Ast.expr ->
  Ast.ty
(** Type of an expression in the given environment; raises {!Error}. *)

val check : Ast.prog -> unit
(** Check a whole program; raises {!Error} on the first violation. *)
