(** Kc: a miniature imperative language.

    Kc is the stand-in for the C sources the paper compiles with Compaq
    [cc]: the 23 workload kernels are written in Kc (as an OCaml eDSL) and
    compiled to SRISC by {!Compile}.  The language has 64-bit integers,
    IEEE doubles, scalar locals, global word arrays, structured control
    flow and (possibly recursive) functions.

    Programs must type-check ({!Check}); the compiler and the reference
    interpreter ({!Interp}) agree on the semantics, which the test suite
    verifies differentially. *)

type ty = I  (** 64-bit integer *) | F  (** IEEE double *)

type binop =
  | Add | Sub | Mul | Div | Mod  (** [Div]/[Mod] by zero yield 0 *)
  | Band | Bor | Bxor | Shl | Shr  (** integer only; shifts use low 6 bits *)
  | Eq | Ne | Lt | Le | Gt | Ge  (** comparisons yield integer 0/1 *)
  | Land | Lor  (** logical and/or over integers; NOT short-circuit *)

type unop =
  | Neg  (** arithmetic negation, both types *)
  | Bnot  (** bitwise complement, integer *)
  | Lnot  (** logical negation: 0 -> 1, non-zero -> 0 *)

type expr =
  | Int of int64
  | Flt of float
  | Var of string  (** scalar parameter or local *)
  | Ld of string * expr  (** global array element [name\[idx\]] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
  | I2f of expr  (** integer to float *)
  | F2i of expr  (** float to integer, truncation *)

type stmt =
  | Set of string * expr  (** scalar assignment *)
  | St of string * expr * expr  (** [name\[idx\] <- value] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
      (** [For (v, lo, hi, body)]: [v] from [lo] while [v < hi], step 1.
          [v] must be a declared integer local; [hi] is re-evaluated each
          iteration. *)
  | Expr of expr  (** evaluate for side effects (calls) *)
  | Ret of expr option

type fundef = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  locals : (string * ty) list;
  body : stmt list;
}

type global = {
  gname : string;
  gty : ty;  (** element type *)
  elems : int;  (** element count; each element is one 64-bit word *)
  ginit : int64 array;  (** initial words (floats as IEEE bits); may be shorter than [elems], rest is zero *)
}

type prog = { globals : global list; funs : fundef list }
(** The entry point is the function named ["main"], which must take no
    parameters and return an integer (used as a result checksum). *)

(** {1 eDSL constructors} *)

val i : int -> expr
val f : float -> expr
val v : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val ( &: ) : expr -> expr -> expr
val ( |: ) : expr -> expr -> expr
val ( ^: ) : expr -> expr -> expr
val ( <<: ) : expr -> expr -> expr
val ( >>: ) : expr -> expr -> expr
val ld : string -> expr -> expr
val call : string -> expr list -> expr
val set : string -> expr -> stmt
val st : string -> expr -> expr -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt
val ret : expr -> stmt
val fn :
  string -> ?params:(string * ty) list -> ?ret:ty -> ?locals:(string * ty) list ->
  stmt list -> fundef
val garr : string -> ?gty:ty -> ?init:int64 array -> int -> global
val gfarr : string -> ?init:float array -> int -> global
(** Float array; [init] values are stored as IEEE bits. *)
