(** JPEG-shaped image codec pair: {!Enc} runs forward DCT + quantisation
    + zig-zag/run-length; {!Dec} dequantises and runs the inverse DCT —
    the MediaBench jpeg benchmarks. *)

module Enc : sig
  val name : string
  val domain : string
  val prog : Pc_kc.Ast.prog
end

module Dec : sig
  val name : string
  val domain : string
  val prog : Pc_kc.Ast.prog
end
