(* qsort: recursive quicksort (Lomuto partition) over random words, then
   a verification sweep — data-dependent branches and swap-heavy memory
   traffic, like the MiBench automotive sort. *)

open Pc_kc.Ast

let name = "qsort"
let domain = "automotive"
let n = 1200

let prog =
  {
    globals = [ garr "arr" ~init:(Inputs.ints ~seed:17 ~n ~bound:1_000_000) n ];
    funs =
      [
        fn "swap" ~params:[ ("a", I); ("b", I) ] ~locals:[ ("t", I) ]
          [
            set "t" (ld "arr" (v "a"));
            st "arr" (v "a") (ld "arr" (v "b"));
            st "arr" (v "b") (v "t");
            ret (i 0);
          ];
        fn "partition" ~params:[ ("lo", I); ("hi", I) ]
          ~locals:[ ("pivot", I); ("store", I); ("j", I) ]
          [
            set "pivot" (ld "arr" (v "hi"));
            set "store" (v "lo");
            for_ "j" (v "lo") (v "hi")
              [
                if_ (ld "arr" (v "j") <: v "pivot")
                  [
                    Expr (call "swap" [ v "store"; v "j" ]);
                    set "store" (v "store" +: i 1);
                  ]
                  [];
              ];
            Expr (call "swap" [ v "store"; v "hi" ]);
            ret (v "store");
          ];
        fn "quicksort" ~params:[ ("lo", I); ("hi", I) ] ~locals:[ ("p", I) ]
          [
            if_ (v "lo" <: v "hi")
              [
                set "p" (call "partition" [ v "lo"; v "hi" ]);
                Expr (call "quicksort" [ v "lo"; v "p" -: i 1 ]);
                Expr (call "quicksort" [ v "p" +: i 1; v "hi" ]);
              ]
              [];
            ret (i 0);
          ];
        fn "main" ~locals:[ ("j", I); ("acc", I); ("sorted", I) ]
          [
            Expr (call "quicksort" [ i 0; i (n - 1) ]);
            (* verify order and fold a checksum *)
            set "sorted" (i 1);
            for_ "j" (i 1) (i n)
              [
                if_ (ld "arr" (v "j" -: i 1) >: ld "arr" (v "j"))
                  [ set "sorted" (i 0) ]
                  [];
              ];
            for_ "j" (i 0) (i n)
              [ set "acc" ((v "acc" *: i 31) +: ld "arr" (v "j") %: i 65536) ];
            ret ((v "acc" &: i 0xFFFFFFF) +: v "sorted");
          ];
      ];
  }
