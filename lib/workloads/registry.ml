type entry = { name : string; domain : string; prog : Pc_kc.Ast.prog }

let entry name domain prog = { name; domain; prog }

let all =
  [
    (* automotive *)
    entry W_basicmath.name W_basicmath.domain W_basicmath.prog;
    entry W_bitcount.name W_bitcount.domain W_bitcount.prog;
    entry W_qsort.name W_qsort.domain W_qsort.prog;
    entry W_susan.name W_susan.domain W_susan.prog;
    (* network *)
    entry W_dijkstra.name W_dijkstra.domain W_dijkstra.prog;
    entry W_patricia.name W_patricia.domain W_patricia.prog;
    entry W_crc32.name W_crc32.domain W_crc32.prog;
    (* security *)
    entry W_blowfish.name W_blowfish.domain W_blowfish.prog;
    entry W_rijndael.name W_rijndael.domain W_rijndael.prog;
    entry W_sha.name W_sha.domain W_sha.prog;
    entry W_pegwit.name W_pegwit.domain W_pegwit.prog;
    (* telecom *)
    entry W_adpcm.Enc.name W_adpcm.Enc.domain W_adpcm.Enc.prog;
    entry W_adpcm.Dec.name W_adpcm.Dec.domain W_adpcm.Dec.prog;
    entry W_gsm.name W_gsm.domain W_gsm.prog;
    entry W_fft.name W_fft.domain W_fft.prog;
    entry W_g721.name W_g721.domain W_g721.prog;
    (* consumer *)
    entry W_jpeg.Enc.name W_jpeg.Enc.domain W_jpeg.Enc.prog;
    entry W_jpeg.Dec.name W_jpeg.Dec.domain W_jpeg.Dec.prog;
    entry W_mpeg.name W_mpeg.domain W_mpeg.prog;
    entry W_typeset.name W_typeset.domain W_typeset.prog;
    entry W_mad.name W_mad.domain W_mad.prog;
    (* office *)
    entry W_stringsearch.name W_stringsearch.domain W_stringsearch.prog;
    entry W_ispell.name W_ispell.domain W_ispell.prog;
  ]

let names = List.map (fun e -> e.name) all

let find name = List.find (fun e -> e.name = name) all
let find_opt name = List.find_opt (fun e -> e.name = name) all

(* Domain-safe: [compile] is called from pool workers when experiment
   drivers prepare benchmarks in parallel. *)
let compiled_store : (string, Pc_isa.Program.t) Pc_exec.Store.t =
  Pc_exec.Store.create ~initial_size:32 ()

let compile e =
  Pc_exec.Store.find_or_compute compiled_store e.name (fun () ->
      Pc_kc.Compile.compile ~name:e.name e.prog)

let domains =
  let order = [ "automotive"; "network"; "security"; "telecom"; "consumer"; "office" ] in
  List.map (fun d -> (d, List.filter_map (fun e -> if e.domain = d then Some e.name else None) all)) order
