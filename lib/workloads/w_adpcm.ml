(* adpcm: IMA ADPCM speech compression.  Two kernels share the step-size
   table and the synthetic waveform: [enc_prog] compresses samples to
   4-bit codes, [dec_prog] reconstructs them — the MiBench telecom pair.
   Tight loops with table lookups and saturating, branchy quantisation. *)

open Pc_kc.Ast

let n_samples = 4096

(* The standard IMA step-size table (89 entries). *)
let step_table =
  [|
    7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41; 45;
    50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190; 209; 230;
    253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658; 724; 796; 876; 963;
    1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066; 2272; 2499; 2749; 3024; 3327;
    3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132; 7845; 8630; 9493; 10442;
    11487; 12635; 13899; 15289; 16818; 18500; 20350; 22385; 24623; 27086; 29794;
    32767;
  |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

let globals_common =
  [
    garr "steps" ~init:(Array.map Int64.of_int step_table) 89;
    garr "index_adj" ~init:(Array.map Int64.of_int index_table) 16;
    garr "pcm" ~init:(Inputs.waveform ~seed:61 ~n:n_samples ~amplitude:12_000) n_samples;
    garr "codes" n_samples;
    garr "out" n_samples;
  ]

(* Shared encoder function: quantise one sample given predictor state
   packed in globals to keep the parameter count small. *)
let state_globals = [ garr "pred" 1; garr "idx" 1 ]

let encoder_fn =
  fn "encode_sample" ~params:[ ("sample", I) ]
    ~locals:[ ("diff", I); ("step", I); ("code", I); ("delta", I); ("p", I); ("ix", I) ]
    [
      set "p" (ld "pred" (i 0));
      set "ix" (ld "idx" (i 0));
      set "step" (ld "steps" (v "ix"));
      set "diff" (v "sample" -: v "p");
      set "code" (i 0);
      if_ (v "diff" <: i 0) [ set "code" (i 8); set "diff" (i 0 -: v "diff") ] [];
      if_ (v "diff" >=: v "step")
        [ set "code" (v "code" |: i 4); set "diff" (v "diff" -: v "step") ]
        [];
      if_ (v "diff" >=: (v "step" >>: i 1))
        [ set "code" (v "code" |: i 2); set "diff" (v "diff" -: (v "step" >>: i 1)) ]
        [];
      if_ (v "diff" >=: (v "step" >>: i 2)) [ set "code" (v "code" |: i 1) ] [];
      (* reconstruct like the decoder to keep predictor state in sync *)
      set "delta" (v "step" >>: i 3);
      if_ ((v "code" &: i 4) <>: i 0) [ set "delta" (v "delta" +: v "step") ] [];
      if_ ((v "code" &: i 2) <>: i 0) [ set "delta" (v "delta" +: (v "step" >>: i 1)) ] [];
      if_ ((v "code" &: i 1) <>: i 0) [ set "delta" (v "delta" +: (v "step" >>: i 2)) ] [];
      if_ ((v "code" &: i 8) <>: i 0)
        [ set "p" (v "p" -: v "delta") ]
        [ set "p" (v "p" +: v "delta") ];
      if_ (v "p" >: i 32767) [ set "p" (i 32767) ] [];
      if_ (v "p" <: i (-32768)) [ set "p" (i (-32768)) ] [];
      set "ix" (v "ix" +: ld "index_adj" (v "code"));
      if_ (v "ix" <: i 0) [ set "ix" (i 0) ] [];
      if_ (v "ix" >: i 88) [ set "ix" (i 88) ] [];
      st "pred" (i 0) (v "p");
      st "idx" (i 0) (v "ix");
      ret (v "code");
    ]

let decoder_fn =
  fn "decode_code" ~params:[ ("code", I) ]
    ~locals:[ ("step", I); ("delta", I); ("p", I); ("ix", I) ]
    [
      set "p" (ld "pred" (i 0));
      set "ix" (ld "idx" (i 0));
      set "step" (ld "steps" (v "ix"));
      set "delta" (v "step" >>: i 3);
      if_ ((v "code" &: i 4) <>: i 0) [ set "delta" (v "delta" +: v "step") ] [];
      if_ ((v "code" &: i 2) <>: i 0) [ set "delta" (v "delta" +: (v "step" >>: i 1)) ] [];
      if_ ((v "code" &: i 1) <>: i 0) [ set "delta" (v "delta" +: (v "step" >>: i 2)) ] [];
      if_ ((v "code" &: i 8) <>: i 0)
        [ set "p" (v "p" -: v "delta") ]
        [ set "p" (v "p" +: v "delta") ];
      if_ (v "p" >: i 32767) [ set "p" (i 32767) ] [];
      if_ (v "p" <: i (-32768)) [ set "p" (i (-32768)) ] [];
      set "ix" (v "ix" +: ld "index_adj" (v "code"));
      if_ (v "ix" <: i 0) [ set "ix" (i 0) ] [];
      if_ (v "ix" >: i 88) [ set "ix" (i 88) ] [];
      st "pred" (i 0) (v "p");
      st "idx" (i 0) (v "ix");
      ret (v "p");
    ]

(* Precomputed encoded stream for the decoder benchmark (computed in
   OCaml with the same algorithm, so dec_prog is self-contained). *)
let encoded_stream =
  let pcm = Inputs.waveform ~seed:61 ~n:n_samples ~amplitude:12_000 in
  let pred = ref 0 and idx = ref 0 in
  Array.map
    (fun sample64 ->
      let sample = Int64.to_int sample64 in
      let step = step_table.(!idx) in
      let diff = sample - !pred in
      let code = ref 0 in
      let diff = if diff < 0 then (code := 8; -diff) else diff in
      let diff = if diff >= step then (code := !code lor 4; diff - step) else diff in
      let diff =
        if diff >= step asr 1 then (code := !code lor 2; diff - (step asr 1)) else diff
      in
      if diff >= step asr 2 then code := !code lor 1;
      let delta = ref (step asr 3) in
      if !code land 4 <> 0 then delta := !delta + step;
      if !code land 2 <> 0 then delta := !delta + (step asr 1);
      if !code land 1 <> 0 then delta := !delta + (step asr 2);
      pred := (if !code land 8 <> 0 then !pred - !delta else !pred + !delta);
      if !pred > 32767 then pred := 32767;
      if !pred < -32768 then pred := -32768;
      idx := !idx + index_table.(!code);
      if !idx < 0 then idx := 0;
      if !idx > 88 then idx := 88;
      Int64.of_int !code)
    pcm

module Enc = struct
  let name = "adpcm_enc"
  let domain = "telecom"

  let prog =
    {
      globals = globals_common @ state_globals;
      funs =
        [
          encoder_fn;
          fn "main" ~locals:[ ("j", I); ("acc", I) ]
            [
              for_ "j" (i 0) (i n_samples)
                [ st "codes" (v "j") (call "encode_sample" [ ld "pcm" (v "j") ]) ];
              for_ "j" (i 0) (i n_samples)
                [ set "acc" ((v "acc" *: i 17) +: ld "codes" (v "j") &: i 0xFFFFFFF) ];
              ret (v "acc");
            ];
        ];
    }
end

module Dec = struct
  let name = "adpcm_dec"
  let domain = "telecom"

  let prog =
    {
      globals =
        [
          garr "steps" ~init:(Array.map Int64.of_int step_table) 89;
          garr "index_adj" ~init:(Array.map Int64.of_int index_table) 16;
          garr "codes" ~init:encoded_stream n_samples;
          garr "out" n_samples;
        ]
        @ state_globals;
      funs =
        [
          decoder_fn;
          fn "main" ~locals:[ ("j", I); ("acc", I) ]
            [
              for_ "j" (i 0) (i n_samples)
                [ st "out" (v "j") (call "decode_code" [ ld "codes" (v "j") ]) ];
              for_ "j" (i 0) (i n_samples)
                [ set "acc" ((v "acc" +: ld "out" (v "j")) &: i 0xFFFFFFFF) ];
              ret (v "acc");
            ];
        ];
    }
end
