(* bitcount: four population-count algorithms over random words — the
   MiBench automotive bit-twiddling kernel: integer-only, branchy in one
   variant, table-driven in another. *)

open Pc_kc.Ast

let name = "bitcount"
let domain = "automotive"
let n = 1024

let prog =
  {
    globals =
      [
        garr "data" ~init:(Inputs.ints ~seed:13 ~n ~bound:(1 lsl 30)) n;
        garr "tbl" 256 (* byte popcount table, built at startup *);
      ];
    funs =
      [
        (* naive: test each of 30 bits *)
        fn "count_naive" ~params:[ ("x", I) ] ~locals:[ ("k", I); ("c", I) ]
          [
            for_ "k" (i 0) (i 30)
              [ if_ (((v "x" >>: v "k") &: i 1) =: i 1) [ set "c" (v "c" +: i 1) ] [] ];
            ret (v "c");
          ];
        (* Kernighan: clear lowest set bit; data-dependent trip count *)
        fn "count_kernighan" ~params:[ ("x", I) ] ~locals:[ ("c", I); ("w", I) ]
          [
            set "w" (v "x");
            while_ (v "w" <>: i 0)
              [ set "w" (v "w" &: (v "w" -: i 1)); set "c" (v "c" +: i 1) ];
            ret (v "c");
          ];
        (* table: four byte lookups *)
        fn "count_table" ~params:[ ("x", I) ]
          [
            ret
              (ld "tbl" (v "x" &: i 255)
              +: ld "tbl" ((v "x" >>: i 8) &: i 255)
              +: ld "tbl" ((v "x" >>: i 16) &: i 255)
              +: ld "tbl" ((v "x" >>: i 24) &: i 255));
          ];
        (* SWAR: parallel reduction with masks *)
        fn "count_swar" ~params:[ ("x", I) ] ~locals:[ ("w", I) ]
          [
            set "w" (v "x" -: ((v "x" >>: i 1) &: i 0x55555555));
            set "w" ((v "w" &: i 0x33333333) +: ((v "w" >>: i 2) &: i 0x33333333));
            set "w" ((v "w" +: (v "w" >>: i 4)) &: i 0x0F0F0F0F);
            ret ((v "w" *: i 0x01010101) >>: i 24 &: i 255);
          ];
        fn "main" ~locals:[ ("j", I); ("acc", I) ]
          [
            (* build the byte table with the Kernighan variant *)
            for_ "j" (i 0) (i 256)
              [ st "tbl" (v "j") (call "count_kernighan" [ v "j" ]) ];
            for_ "j" (i 0) (i n)
              [
                set "acc" (v "acc" +: call "count_naive" [ ld "data" (v "j") ]);
                set "acc" (v "acc" +: call "count_kernighan" [ ld "data" (v "j") ]);
                set "acc" (v "acc" +: call "count_table" [ ld "data" (v "j") ]);
                set "acc" (v "acc" -: call "count_swar" [ ld "data" (v "j") ]);
              ];
            ret (v "acc");
          ];
      ];
  }
