(* basicmath: integer square roots, FP square roots (Newton's method) and
   cubic root finding — the MiBench automotive math kernel's shape:
   FP-heavy with short data-dependent iteration counts. *)

open Pc_kc.Ast

let name = "basicmath"
let domain = "automotive"
let n = 192

let prog =
  {
    globals = [ garr "nums" ~init:(Inputs.ints ~seed:11 ~n ~bound:1_000_000) n ];
    funs =
      [
        (* Integer square root by Newton iteration. *)
        fn "isqrt" ~params:[ ("x", I) ] ~locals:[ ("g", I); ("next", I) ]
          [
            if_ (v "x" <=: i 1) [ ret (v "x") ] [];
            set "g" (v "x");
            set "next" ((v "g" +: (v "x" /: v "g")) /: i 2);
            while_ (v "next" <: v "g")
              [ set "g" (v "next"); set "next" ((v "g" +: (v "x" /: v "g")) /: i 2) ];
            ret (v "g");
          ];
        (* FP square root, fixed 18 Newton steps. *)
        fn "fsqrt" ~params:[ ("x", F) ] ~ret:F ~locals:[ ("g", F); ("k", I) ]
          [
            set "g" ((v "x" /: f 2.0) +: f 1.0);
            for_ "k" (i 0) (i 18)
              [ set "g" (f 0.5 *: (v "g" +: (v "x" /: v "g"))) ];
            ret (v "g");
          ];
        (* One real root of x^3 + a x^2 + b x + c by Newton iteration. *)
        fn "cubic_root" ~params:[ ("a", F); ("b", F); ("c", F) ] ~ret:F
          ~locals:[ ("x", F); ("k", I); ("fx", F); ("dfx", F) ]
          [
            set "x" (f 1.0);
            for_ "k" (i 0) (i 24)
              [
                set "fx"
                  ((((v "x" +: v "a") *: v "x" +: v "b") *: v "x") +: v "c");
                set "dfx"
                  (((f 3.0 *: v "x" +: (f 2.0 *: v "a")) *: v "x") +: v "b");
                if_ (v "dfx" <>: f 0.0) [ set "x" (v "x" -: (v "fx" /: v "dfx")) ] [];
              ];
            ret (v "x");
          ];
        fn "main"
          ~locals:[ ("j", I); ("acc", I); ("x", F); ("r", F) ]
          [
            (* integer square roots over the whole input *)
            for_ "j" (i 0) (i n)
              [ set "acc" (v "acc" +: call "isqrt" [ ld "nums" (v "j") ]) ];
            (* FP square roots of scaled inputs *)
            for_ "j" (i 0) (i n)
              [
                set "x" (I2f (ld "nums" (v "j") %: i 10_000) +: f 1.0);
                set "r" (call "fsqrt" [ v "x" ]);
                set "acc" (v "acc" +: F2i (v "r" *: f 16.0));
              ];
            (* a few cubic solves with input-derived coefficients *)
            for_ "j" (i 0) (i 32)
              [
                set "x"
                  (call "cubic_root"
                     [
                       I2f (ld "nums" (v "j") %: i 7) -: f 3.0;
                       I2f (ld "nums" (v "j" +: i 1) %: i 5) -: f 2.0;
                       I2f (ld "nums" (v "j" +: i 2) %: i 9) -: f 4.0;
                     ]);
                set "acc" (v "acc" +: F2i (v "x" *: f 256.0));
              ];
            ret (v "acc");
          ];
      ];
  }
