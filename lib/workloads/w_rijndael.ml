(* rijndael: an AES-shaped block cipher — byte substitution through an
   S-box, row rotation, a GF(2^8)-style column mix via an xtime table,
   and round-key XOR, 10 rounds per 16-byte block. *)

open Pc_kc.Ast

let name = "rijndael"
let domain = "security"
let blocks = 192
let rounds = 10

(* A bijective byte S-box: affine-ish scramble of the identity. *)
let sbox_init =
  Array.init 256 (fun b ->
      let v = (b * 7 + 99) land 255 in
      let v = v lxor (v lsr 4) lxor 0x63 in
      Int64.of_int (v land 255))

let xtime_init =
  Array.init 256 (fun b ->
      let d = b lsl 1 in
      Int64.of_int (if d land 0x100 <> 0 then (d lxor 0x11B) land 255 else d))

let prog =
  {
    globals =
      [
        garr "sbox" ~init:sbox_init 256;
        garr "xtime" ~init:xtime_init 256;
        garr "state" ~init:(Inputs.bytes ~seed:47 ~n:(16 * blocks)) (16 * blocks);
        garr "round_keys" ~init:(Inputs.bytes ~seed:48 ~n:(16 * (rounds + 1))) (16 * (rounds + 1));
        garr "tmp" 16;
      ];
    funs =
      [
        fn "sub_and_shift" ~params:[ ("base", I) ] ~locals:[ ("r", I); ("c", I) ]
          [
            (* SubBytes + ShiftRows into tmp: tmp[r + 4c] = S(state[r + 4((c + r) mod 4)]) *)
            for_ "r" (i 0) (i 4)
              [
                for_ "c" (i 0) (i 4)
                  [
                    st "tmp"
                      (v "r" +: (i 4 *: v "c"))
                      (ld "sbox"
                         (ld "state" (v "base" +: v "r" +: (i 4 *: ((v "c" +: v "r") %: i 4)))));
                  ];
              ];
            ret (i 0);
          ];
        fn "mix_columns" ~params:[ ("base", I); ("key_base", I) ]
          ~locals:[ ("c", I); ("a0", I); ("a1", I); ("a2", I); ("a3", I); ("o", I) ]
          [
            for_ "c" (i 0) (i 4)
              [
                set "a0" (ld "tmp" (i 4 *: v "c"));
                set "a1" (ld "tmp" ((i 4 *: v "c") +: i 1));
                set "a2" (ld "tmp" ((i 4 *: v "c") +: i 2));
                set "a3" (ld "tmp" ((i 4 *: v "c") +: i 3));
                set "o" (i 4 *: v "c");
                st "state"
                  (v "base" +: v "o")
                  (ld "xtime" (v "a0") ^: (ld "xtime" (v "a1") ^: v "a1") ^: v "a2" ^: v "a3"
                  ^: ld "round_keys" (v "key_base" +: v "o"));
                st "state"
                  (v "base" +: v "o" +: i 1)
                  (v "a0" ^: ld "xtime" (v "a1") ^: (ld "xtime" (v "a2") ^: v "a2") ^: v "a3"
                  ^: ld "round_keys" (v "key_base" +: v "o" +: i 1));
                st "state"
                  (v "base" +: v "o" +: i 2)
                  (v "a0" ^: v "a1" ^: ld "xtime" (v "a2") ^: (ld "xtime" (v "a3") ^: v "a3")
                  ^: ld "round_keys" (v "key_base" +: v "o" +: i 2));
                st "state"
                  (v "base" +: v "o" +: i 3)
                  ((ld "xtime" (v "a0") ^: v "a0") ^: v "a1" ^: v "a2" ^: ld "xtime" (v "a3")
                  ^: ld "round_keys" (v "key_base" +: v "o" +: i 3));
              ];
            ret (i 0);
          ];
        fn "encrypt_block" ~params:[ ("b", I) ] ~locals:[ ("base", I); ("round", I); ("k", I) ]
          [
            set "base" (v "b" *: i 16);
            (* initial AddRoundKey *)
            for_ "k" (i 0) (i 16)
              [
                st "state" (v "base" +: v "k")
                  (ld "state" (v "base" +: v "k") ^: ld "round_keys" (v "k"));
              ];
            for_ "round" (i 1) (i (rounds + 1))
              [
                Expr (call "sub_and_shift" [ v "base" ]);
                Expr (call "mix_columns" [ v "base"; v "round" *: i 16 ]);
              ];
            ret (i 0);
          ];
        fn "main" ~locals:[ ("j", I); ("acc", I) ]
          [
            for_ "j" (i 0) (i blocks) [ Expr (call "encrypt_block" [ v "j" ]) ];
            for_ "j" (i 0) (i (16 * blocks))
              [ set "acc" ((v "acc" *: i 131) +: ld "state" (v "j") &: i 0xFFFFFFFF) ];
            ret (v "acc");
          ];
      ];
  }
