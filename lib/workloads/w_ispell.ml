(* ispell: spell-checker core — an open-addressing hash dictionary built
   from a word list, then lookups for every word of a document, with a
   one-edit "suggestion" probe for misses.  Hash loops and dependent
   probes, like the MiBench office kernel. *)

open Pc_kc.Ast

let name = "ispell"
let domain = "office"
let dict_words = 480
let word_len = 6 (* fixed-width packed words *)
let table_size = 2048 (* power of two *)
let doc_words = 900

let dict_init = Inputs.ints ~seed:109 ~n:(dict_words * word_len) ~bound:26

(* Document: 60% dictionary words, 40% corrupted/random. *)
let doc_init =
  let rng = Pc_util.Rng.create 113 in
  Array.init (doc_words * word_len) (fun idx ->
      let w = idx / word_len and k = idx mod word_len in
      let kind = w mod 5 in
      if kind < 3 then dict_init.(((w * 37) mod dict_words * word_len) + k)
      else if kind = 3 then
        (* one corrupted letter *)
        let base = dict_init.(((w * 53) mod dict_words * word_len) + k) in
        if k = w mod word_len then Int64.of_int ((Int64.to_int base + 1) mod 26) else base
      else Int64.of_int (Pc_util.Rng.int rng 26))

let prog =
  {
    globals =
      [
        garr "dict" ~init:dict_init (dict_words * word_len);
        garr "doc" ~init:doc_init (doc_words * word_len);
        garr "table" table_size (* 0 = empty, else 1 + dict word index *);
      ];
    funs =
      [
        (* FNV-ish hash of the word at [base] in array choice [src]:
           0 = dict, 1 = doc *)
        fn "hash_word" ~params:[ ("src", I); ("base", I) ] ~locals:[ ("h", I); ("k", I); ("c", I) ]
          [
            set "h" (i 2166136261);
            for_ "k" (i 0) (i word_len)
              [
                if_ (v "src" =: i 0)
                  [ set "c" (ld "dict" (v "base" +: v "k")) ]
                  [ set "c" (ld "doc" (v "base" +: v "k")) ];
                set "h" ((v "h" ^: v "c") *: i 16777619 &: i 0xFFFFFFFF);
              ];
            ret (v "h");
          ];
        (* do doc word [w] and dict word [d] match exactly? *)
        fn "words_equal" ~params:[ ("w", I); ("d", I) ] ~locals:[ ("k", I); ("ok", I) ]
          [
            set "ok" (i 1);
            for_ "k" (i 0) (i word_len)
              [
                if_
                  (ld "doc" ((v "w" *: i word_len) +: v "k")
                  <>: ld "dict" ((v "d" *: i word_len) +: v "k"))
                  [ set "ok" (i 0) ]
                  [];
              ];
            ret (v "ok");
          ];
        fn "insert" ~params:[ ("d", I) ] ~locals:[ ("slot", I) ]
          [
            set "slot" (call "hash_word" [ i 0; v "d" *: i word_len ] &: i (table_size - 1));
            while_ (ld "table" (v "slot") <>: i 0)
              [ set "slot" ((v "slot" +: i 1) &: i (table_size - 1)) ];
            st "table" (v "slot") (v "d" +: i 1);
            ret (i 0);
          ];
        (* look up doc word [w]; 1 if present *)
        fn "lookup" ~params:[ ("w", I) ] ~locals:[ ("slot", I); ("entry", I); ("res", I); ("going", I) ]
          [
            set "slot" (call "hash_word" [ i 1; v "w" *: i word_len ] &: i (table_size - 1));
            set "going" (i 1);
            while_ (v "going" =: i 1)
              [
                set "entry" (ld "table" (v "slot"));
                if_ (v "entry" =: i 0)
                  [ set "going" (i 0) ]
                  [
                    if_ (call "words_equal" [ v "w"; v "entry" -: i 1 ] =: i 1)
                      [ set "res" (i 1); set "going" (i 0) ]
                      [ set "slot" ((v "slot" +: i 1) &: i (table_size - 1)) ];
                  ];
              ];
            ret (v "res");
          ];
        fn "main" ~locals:[ ("j", I); ("acc", I); ("missed", I) ]
          [
            for_ "j" (i 0) (i dict_words) [ Expr (call "insert" [ v "j" ]) ];
            for_ "j" (i 0) (i doc_words)
              [
                if_ (call "lookup" [ v "j" ] =: i 1)
                  [ set "acc" (v "acc" +: i 1) ]
                  [ set "missed" (v "missed" +: i 1) ];
              ];
            ret ((v "acc" *: i 10_000) +: v "missed");
          ];
      ];
  }
