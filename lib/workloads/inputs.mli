(** Deterministic synthetic input data for the workload kernels.

    MiBench/MediaBench inputs (images, audio, dictionaries, packet
    traces) are not redistributable; every kernel here consumes data
    generated from a fixed seed instead, which preserves the property the
    experiments need: a fixed, realistic input per benchmark. *)

val ints : seed:int -> n:int -> bound:int -> int64 array
(** [n] values uniform in [\[0, bound)]. *)

val bytes : seed:int -> n:int -> int64 array
(** [n] values in [\[0, 256)]. *)

val floats : seed:int -> n:int -> scale:float -> float array
(** [n] values uniform in [\[0, scale)]. *)

val waveform : seed:int -> n:int -> amplitude:int -> int64 array
(** A smooth pseudo-audio signal: a sum of two incommensurate sinusoids
    plus small noise, integer samples in [\[-amplitude, amplitude\]].
    Used by the audio codecs (adpcm, gsm, g721, mad). *)

val image : seed:int -> width:int -> height:int -> int64 array
(** A synthetic grey-scale image (row-major, values 0–255) with smooth
    gradients plus blocky structures and noise — gives the image kernels
    (susan, jpeg, mpeg) realistic spatial correlation. *)

val text : seed:int -> n:int -> int64 array
(** Pseudo-English text as byte values: words of random lowercase letters
    with Zipf-ish lengths separated by spaces. *)
