(** The benchmark registry: the 23 embedded workload kernels standing in
    for the paper's MiBench/MediaBench programs (Table 1), grouped by the
    same application domains. *)

type entry = {
  name : string;
  domain : string;  (** automotive / network / security / telecom / consumer / office *)
  prog : Pc_kc.Ast.prog;
}

val all : entry list
(** All 23 benchmarks, in Table-1 order (grouped by domain). *)

val names : string list

val find : string -> entry
(** Raises [Not_found] for unknown names. *)

val find_opt : string -> entry option
(** Total lookup; scenario configs use this to report unknown workload
    names as errors instead of exceptions. *)

val compile : entry -> Pc_isa.Program.t
(** Compile the benchmark to an SRISC binary (memoised per entry name). *)

val domains : (string * string list) list
(** Domain -> benchmark names, in registry order (the paper's Table 1). *)
