(* dijkstra: all-pairs-ish shortest paths over a dense random graph with
   the O(n^2) scan-for-minimum formulation MiBench uses — integer
   compares and row-strided matrix walks. *)

open Pc_kc.Ast

let name = "dijkstra"
let domain = "network"
let nodes = 40
let infinity_w = 1_000_000

(* Dense weight matrix: ~thirty percent of edges absent (infinity). *)
let adjacency =
  let raw = Inputs.ints ~seed:23 ~n:(nodes * nodes) ~bound:100 in
  Array.mapi
    (fun idx w ->
      let a = idx / nodes and b = idx mod nodes in
      if a = b then 0L
      else if Int64.to_int w < 30 then Int64.of_int infinity_w
      else Int64.add w 1L)
    raw

let prog =
  {
    globals =
      [
        garr "adj" ~init:adjacency (nodes * nodes);
        garr "dist" nodes;
        garr "visited" nodes;
      ];
    funs =
      [
        fn "shortest_paths" ~params:[ ("source", I) ]
          ~locals:
            [ ("j", I); ("k", I); ("best", I); ("best_node", I); ("alt", I); ("acc", I) ]
          [
            for_ "j" (i 0) (i nodes)
              [ st "dist" (v "j") (i infinity_w); st "visited" (v "j") (i 0) ];
            st "dist" (v "source") (i 0);
            for_ "k" (i 0) (i nodes)
              [
                (* pick the unvisited node with the smallest distance *)
                set "best" (i (infinity_w + 1));
                set "best_node" (i (-1));
                for_ "j" (i 0) (i nodes)
                  [
                    if_
                      ((ld "visited" (v "j") =: i 0) &&: (ld "dist" (v "j") <: v "best"))
                      [ set "best" (ld "dist" (v "j")); set "best_node" (v "j") ]
                      [];
                  ];
                if_ (v "best_node" >=: i 0)
                  [
                    st "visited" (v "best_node") (i 1);
                    (* relax all outgoing edges *)
                    for_ "j" (i 0) (i nodes)
                      [
                        set "alt"
                          (v "best" +: ld "adj" ((v "best_node" *: i nodes) +: v "j"));
                        if_ (v "alt" <: ld "dist" (v "j"))
                          [ st "dist" (v "j") (v "alt") ]
                          [];
                      ];
                  ]
                  [];
              ];
            for_ "j" (i 0) (i nodes)
              [
                if_ (ld "dist" (v "j") <: i infinity_w)
                  [ set "acc" (v "acc" +: ld "dist" (v "j")) ]
                  [];
              ];
            ret (v "acc");
          ];
        fn "main" ~locals:[ ("s", I); ("acc", I) ]
          [
            for_ "s" (i 0) (i 16)
              [ set "acc" (v "acc" +: call "shortest_paths" [ v "s" ]) ];
            ret (v "acc");
          ];
      ];
  }
