(** IMA ADPCM speech codec pair: {!Enc} compresses a synthetic waveform
    to 4-bit codes, {!Dec} reconstructs a pre-encoded stream — the
    MiBench telecom adpcm benchmarks. *)

module Enc : sig
  val name : string
  val domain : string
  val prog : Pc_kc.Ast.prog
end

module Dec : sig
  val name : string
  val domain : string
  val prog : Pc_kc.Ast.prog
end
