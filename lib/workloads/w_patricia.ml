(* patricia: binary radix-trie insertion and lookup of random 24-bit
   keys, nodes stored in parallel arrays — the pointer-chasing routing-
   table kernel, with irregular dependent loads. *)

open Pc_kc.Ast

let name = "patricia"
let domain = "network"
let n_keys = 600
let max_nodes = 16384
let key_bits = 24

let prog =
  {
    globals =
      [
        garr "keys" ~init:(Inputs.ints ~seed:29 ~n:n_keys ~bound:(1 lsl key_bits)) n_keys;
        garr "probe" ~init:(Inputs.ints ~seed:31 ~n:n_keys ~bound:(1 lsl key_bits)) n_keys;
        garr "left" max_nodes;
        garr "right" max_nodes;
        garr "leaf_key" max_nodes;
        garr "n_nodes" 1;
      ];
    funs =
      [
        (* Insert a key: walk bits from the top, allocating nodes. *)
        fn "insert" ~params:[ ("key", I) ]
          ~locals:[ ("cur", I); ("bit", I); ("next", I); ("fresh", I) ]
          [
            set "cur" (i 0);
            set "bit" (i (key_bits - 1));
            while_ (v "bit" >=: i 0)
              [
                if_ (((v "key" >>: v "bit") &: i 1) =: i 1)
                  [ set "next" (ld "right" (v "cur")) ]
                  [ set "next" (ld "left" (v "cur")) ];
                if_ (v "next" =: i 0)
                  [
                    (* allocate *)
                    set "fresh" (ld "n_nodes" (i 0));
                    st "n_nodes" (i 0) (v "fresh" +: i 1);
                    if_ (((v "key" >>: v "bit") &: i 1) =: i 1)
                      [ st "right" (v "cur") (v "fresh") ]
                      [ st "left" (v "cur") (v "fresh") ];
                    set "cur" (v "fresh");
                  ]
                  [ set "cur" (v "next") ];
                set "bit" (v "bit" -: i 1);
              ];
            st "leaf_key" (v "cur") (v "key");
            ret (v "cur");
          ];
        (* Lookup: walk until a zero child; report match depth. *)
        fn "lookup" ~params:[ ("key", I) ]
          ~locals:[ ("cur", I); ("bit", I); ("next", I); ("depth", I) ]
          [
            set "cur" (i 0);
            set "bit" (i (key_bits - 1));
            while_ (v "bit" >=: i 0)
              [
                if_ (((v "key" >>: v "bit") &: i 1) =: i 1)
                  [ set "next" (ld "right" (v "cur")) ]
                  [ set "next" (ld "left" (v "cur")) ];
                if_ (v "next" =: i 0)
                  [ set "bit" (i (-1)) ]
                  [
                    set "cur" (v "next");
                    set "depth" (v "depth" +: i 1);
                    set "bit" (v "bit" -: i 1);
                  ];
              ];
            if_ (ld "leaf_key" (v "cur") =: v "key") [ ret (v "depth" +: i 1000) ] [];
            ret (v "depth");
          ];
        fn "main" ~locals:[ ("j", I); ("acc", I) ]
          [
            st "n_nodes" (i 0) (i 1) (* node 0 is the root *);
            for_ "j" (i 0) (i n_keys) [ Expr (call "insert" [ ld "keys" (v "j") ]) ];
            (* half the probes are inserted keys (hits), half random *)
            for_ "j" (i 0) (i n_keys)
              [
                set "acc" (v "acc" +: call "lookup" [ ld "keys" (v "j") ]);
                set "acc" (v "acc" +: call "lookup" [ ld "probe" (v "j") ]);
              ];
            ret (v "acc" +: ld "n_nodes" (i 0));
          ];
      ];
  }
