(* gsm: GSM-full-rate-shaped speech coding front end — per-frame
   fixed-point autocorrelation, reflection coefficients by a Schur-like
   recursion, and an LTP-style cross-correlation lag search.  Integer
   multiply dominated with nested loops. *)

open Pc_kc.Ast

let name = "gsm"
let domain = "telecom"
let frame = 160
let n_frames = 12
let order = 8
let samples = frame * n_frames

let prog =
  {
    globals =
      [
        garr "speech" ~init:(Inputs.waveform ~seed:71 ~n:samples ~amplitude:8_000) samples;
        garr "autoc" (order + 1);
        garr "refl" order;
        garr "err_buf" (order + 1);
      ];
    funs =
      [
        (* autocorrelation of one frame, lags 0..order *)
        fn "autocorrelate" ~params:[ ("base", I) ] ~locals:[ ("lag", I); ("j", I); ("s", I) ]
          [
            for_ "lag" (i 0) (i (order + 1))
              [
                set "s" (i 0);
                for_ "j" (v "lag") (i frame)
                  [
                    set "s"
                      (v "s"
                      +: ((ld "speech" (v "base" +: v "j")
                          *: ld "speech" (v "base" +: v "j" -: v "lag"))
                         /: i 64));
                  ];
                st "autoc" (v "lag") (v "s");
              ];
            ret (ld "autoc" (i 0));
          ];
        (* Schur-like fixed-point recursion for reflection coefficients. *)
        fn "reflections" ~locals:[ ("m", I); ("j", I); ("k", I); ("num", I); ("den", I) ]
          [
            for_ "j" (i 0) (i (order + 1)) [ st "err_buf" (v "j") (ld "autoc" (v "j")) ];
            for_ "m" (i 0) (i order)
              [
                set "num" (ld "err_buf" (v "m" +: i 1));
                set "den" (ld "err_buf" (i 0));
                if_ (v "den" =: i 0)
                  [ set "k" (i 0) ]
                  [ set "k" ((v "num" *: i 4096) /: v "den") ];
                if_ (v "k" >: i 4095) [ set "k" (i 4095) ] [];
                if_ (v "k" <: i (-4095)) [ set "k" (i (-4095)) ] [];
                st "refl" (v "m") (v "k");
                (* propagate the prediction error through this stage *)
                for_ "j" (i 0) (i order -: v "m")
                  [
                    st "err_buf" (v "j")
                      (ld "err_buf" (v "j" +: i 1)
                      -: ((v "k" *: ld "err_buf" (v "j" +: i 1)) /: i 4096));
                  ];
              ];
            ret (i 0);
          ];
        (* long-term-prediction lag search over the previous frame *)
        fn "ltp_lag" ~params:[ ("base", I) ]
          ~locals:[ ("lag", I); ("j", I); ("corr", I); ("best", I); ("best_lag", I) ]
          [
            set "best" (i (-1));
            set "best_lag" (i 40);
            for_ "lag" (i 40) (i 120)
              [
                set "corr" (i 0);
                for_ "j" (i 0) (i 40)
                  [
                    set "corr"
                      (v "corr"
                      +: ((ld "speech" (v "base" +: v "j")
                          *: ld "speech" (v "base" +: v "j" -: v "lag"))
                         /: i 64));
                  ];
                if_ (v "corr" >: v "best")
                  [ set "best" (v "corr"); set "best_lag" (v "lag") ]
                  [];
              ];
            ret (v "best_lag");
          ];
        fn "main" ~locals:[ ("fidx", I); ("base", I); ("acc", I); ("j", I) ]
          [
            for_ "fidx" (i 1) (i n_frames)
              [
                set "base" (v "fidx" *: i frame);
                set "acc" ((v "acc" +: call "autocorrelate" [ v "base" ]) &: i 0xFFFFFFFF);
                Expr (call "reflections" []);
                for_ "j" (i 0) (i order)
                  [ set "acc" ((v "acc" *: i 13) +: ld "refl" (v "j") &: i 0xFFFFFFFF) ];
                set "acc" (v "acc" +: call "ltp_lag" [ v "base" ]);
              ];
            ret (v "acc" &: i 0xFFFFFFFF);
          ];
      ];
  }
