(* mad: the polyphase subband synthesis filter at the heart of an MP3
   decoder — windowed dot products of 32 subband samples against a
   512-tap window, with a shifting FIFO of past granules.  Long FP
   multiply-accumulate chains over two strided arrays. *)

open Pc_kc.Ast

let name = "mad"
let domain = "consumer"
let n_granules = 48
let subbands = 32
let fifo_len = 512

(* A raised-cosine-ish synthesis window. *)
let window =
  Array.init fifo_len (fun k ->
      let t = float_of_int k /. float_of_int fifo_len in
      0.5 *. (1.0 -. cos (2.0 *. Float.pi *. t)) *. (1.0 -. t))

let granules =
  Array.init (n_granules * subbands) (fun k ->
      let t = float_of_int k in
      (0.4 *. sin (t /. 3.1)) +. (0.2 *. sin (t /. 11.7)))

let prog =
  {
    globals =
      [
        gfarr "window" ~init:window fifo_len;
        gfarr "granule" ~init:granules (n_granules * subbands);
        gfarr "fifo" fifo_len;
        gfarr "pcm" (n_granules * subbands);
      ];
    funs =
      [
        (* shift the FIFO by 32 and insert the new subband samples *)
        fn "fifo_insert" ~params:[ ("g", I) ] ~locals:[ ("k", I) ]
          [
            for_ "k" (i 0) (i (fifo_len - subbands))
              [
                st "fifo"
                  (i (fifo_len - 1) -: v "k")
                  (ld "fifo" (i (fifo_len - 1) -: v "k" -: i subbands));
              ];
            for_ "k" (i 0) (i subbands)
              [ st "fifo" (v "k") (ld "granule" ((v "g" *: i subbands) +: v "k")) ];
            ret (i 0);
          ];
        (* one output sample per subband: 16-phase windowed MAC *)
        fn "synthesize" ~params:[ ("g", I) ] ~locals:[ ("sb", I); ("ph", I); ("s", F) ]
          [
            for_ "sb" (i 0) (i subbands)
              [
                set "s" (f 0.0);
                for_ "ph" (i 0) (i 16)
                  [
                    set "s"
                      (v "s"
                      +: (ld "window" ((v "ph" *: i subbands) +: v "sb")
                         *: ld "fifo" ((v "ph" *: i subbands) +: v "sb")));
                  ];
                st "pcm" ((v "g" *: i subbands) +: v "sb") (v "s");
              ];
            ret (i 0);
          ];
        fn "main" ~locals:[ ("g", I); ("k", I); ("acc", I) ]
          [
            for_ "g" (i 0) (i n_granules)
              [
                Expr (call "fifo_insert" [ v "g" ]);
                Expr (call "synthesize" [ v "g" ]);
              ];
            for_ "k" (i 0) (i (n_granules * subbands))
              [ set "acc" (v "acc" +: F2i (ld "pcm" (v "k") *: f 10_000.0)) ];
            ret (v "acc");
          ];
      ];
  }
