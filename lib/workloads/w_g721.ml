(* g721: G.721-shaped ADPCM with an adaptive pole/zero predictor — a
   2-pole, 6-zero filter updated by sign-sign LMS, plus an adaptive
   quantiser scale.  Serial recurrences with branchy coefficient
   clamping; distinctly different control flow from the IMA codec. *)

open Pc_kc.Ast

let name = "g721"
let domain = "telecom"
let n_samples = 3000

let prog =
  {
    globals =
      [
        garr "pcm" ~init:(Inputs.waveform ~seed:73 ~n:n_samples ~amplitude:10_000) n_samples;
        garr "dq" 6 (* last six quantised differences (zero taps) *);
        garr "zeros" 6 (* zero coefficients, Q12 *);
        garr "poles" 2 (* pole coefficients, Q12 *);
        garr "sr" 2 (* last two reconstructed samples *);
        garr "scale" 1 (* adaptive quantiser scale *);
        garr "codes" n_samples;
      ];
    funs =
      [
        (* predictor output from poles and zeros *)
        fn "predict" ~locals:[ ("j", I); ("s", I) ]
          [
            set "s"
              (((ld "poles" (i 0) *: ld "sr" (i 0))
               +: (ld "poles" (i 1) *: ld "sr" (i 1)))
              /: i 4096);
            for_ "j" (i 0) (i 6)
              [
                set "s" (v "s" +: ((ld "zeros" (v "j") *: ld "dq" (v "j")) /: i 4096));
              ];
            ret (v "s");
          ];
        (* quantise a difference to a signed 4-bit code *)
        fn "quantise" ~params:[ ("diff", I) ] ~locals:[ ("mag", I); ("code", I); ("sc", I) ]
          [
            set "sc" (ld "scale" (i 0));
            set "mag" (v "diff");
            if_ (v "mag" <: i 0) [ set "mag" (i 0 -: v "mag") ] [];
            set "code" ((v "mag" *: i 4) /: v "sc");
            if_ (v "code" >: i 7) [ set "code" (i 7) ] [];
            if_ (v "diff" <: i 0) [ set "code" (v "code" |: i 8) ] [];
            ret (v "code");
          ];
        (* inverse quantiser *)
        fn "dequantise" ~params:[ ("code", I) ] ~locals:[ ("mag", I) ]
          [
            set "mag" (((v "code" &: i 7) *: ld "scale" (i 0)) /: i 4 +: (ld "scale" (i 0) /: i 8));
            if_ ((v "code" &: i 8) <>: i 0) [ ret (i 0 -: v "mag") ] [];
            ret (v "mag");
          ];
        (* sign-sign LMS update of all coefficients, with clamping *)
        fn "adapt" ~params:[ ("dqv", I); ("err", I) ] ~locals:[ ("j", I); ("c", I); ("s1", I); ("s2", I) ]
          [
            set "s1" (i 1);
            if_ (v "err" <: i 0) [ set "s1" (i (-1)) ] [];
            (* zeros *)
            for_ "j" (i 0) (i 6)
              [
                set "s2" (i 1);
                if_ (ld "dq" (v "j") <: i 0) [ set "s2" (i (-1)) ] [];
                set "c" (ld "zeros" (v "j") +: (v "s1" *: v "s2" *: i 12));
                if_ (v "c" >: i 3072) [ set "c" (i 3072) ] [];
                if_ (v "c" <: i (-3072)) [ set "c" (i (-3072)) ] [];
                st "zeros" (v "j") (v "c");
              ];
            (* poles *)
            for_ "j" (i 0) (i 2)
              [
                set "s2" (i 1);
                if_ (ld "sr" (v "j") <: i 0) [ set "s2" (i (-1)) ] [];
                set "c" (ld "poles" (v "j") +: (v "s1" *: v "s2" *: i 8));
                if_ (v "c" >: i 2048) [ set "c" (i 2048) ] [];
                if_ (v "c" <: i (-2048)) [ set "c" (i (-2048)) ] [];
                st "poles" (v "j") (v "c");
              ];
            (* shift the tapped delay lines *)
            for_ "j" (i 0) (i 5)
              [ st "dq" (i 5 -: v "j") (ld "dq" (i 4 -: v "j")) ];
            st "dq" (i 0) (v "dqv");
            st "sr" (i 1) (ld "sr" (i 0));
            ret (i 0);
          ];
        (* adaptive scale: expand on large codes, contract on small *)
        fn "rescale" ~params:[ ("code", I) ] ~locals:[ ("sc", I) ]
          [
            set "sc" (ld "scale" (i 0));
            if_ ((v "code" &: i 7) >=: i 4)
              [ set "sc" (v "sc" +: (v "sc" /: i 8)) ]
              [ set "sc" (v "sc" -: (v "sc" /: i 16)) ];
            if_ (v "sc" <: i 32) [ set "sc" (i 32) ] [];
            if_ (v "sc" >: i 8192) [ set "sc" (i 8192) ] [];
            st "scale" (i 0) (v "sc");
            ret (i 0);
          ];
        fn "main" ~locals:[ ("j", I); ("pred", I); ("code", I); ("dqv", I); ("recon", I); ("acc", I) ]
          [
            st "scale" (i 0) (i 64);
            for_ "j" (i 0) (i n_samples)
              [
                set "pred" (call "predict" []);
                set "code" (call "quantise" [ ld "pcm" (v "j") -: v "pred" ]);
                st "codes" (v "j") (v "code");
                set "dqv" (call "dequantise" [ v "code" ]);
                set "recon" (v "pred" +: v "dqv");
                Expr (call "adapt" [ v "dqv"; ld "pcm" (v "j") -: v "recon" ]);
                st "sr" (i 0) (v "recon");
                Expr (call "rescale" [ v "code" ]);
              ];
            for_ "j" (i 0) (i n_samples)
              [ set "acc" ((v "acc" *: i 23) +: ld "codes" (v "j") &: i 0xFFFFFFF) ];
            ret (v "acc");
          ];
      ];
  }
