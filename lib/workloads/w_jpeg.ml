(* jpeg: JPEG-shaped image codec pair.  [Enc.prog] runs a separable 8x8
   forward DCT, quantisation, zig-zag ordering and a run-length count
   over a synthetic image; [Dec.prog] dequantises and runs the inverse
   DCT with clamping.  FP multiply dominated with blocked 2D access. *)

open Pc_kc.Ast

let width = 64
let height = 64
let pixels = width * height
let blocks_x = width / 8
let blocks_y = height / 8

(* DCT basis matrix: cosmat[u*8+x] = c(u)/2 * cos((2x+1) u pi / 16). *)
let cosmat =
  Array.init 64 (fun idx ->
      let u = idx / 8 and x = idx mod 8 in
      let cu = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
      cu /. 2.0 *. cos ((2.0 *. float_of_int x +. 1.0) *. float_of_int u *. Float.pi /. 16.0))

(* A standard-luminance-like quantisation table. *)
let quant =
  [|
    16; 11; 10; 16; 24; 40; 51; 61; 12; 12; 14; 19; 26; 58; 60; 55; 14; 13; 16;
    24; 40; 57; 69; 56; 14; 17; 22; 29; 51; 87; 80; 62; 18; 22; 37; 56; 68; 109;
    103; 77; 24; 35; 55; 64; 81; 104; 113; 92; 49; 64; 78; 87; 103; 121; 120;
    101; 72; 92; 95; 98; 112; 100; 103; 99;
  |]

let zigzag =
  [|
    0; 1; 8; 16; 9; 2; 3; 10; 17; 24; 32; 25; 18; 11; 4; 5; 12; 19; 26; 33; 40;
    48; 41; 34; 27; 20; 13; 6; 7; 14; 21; 28; 35; 42; 49; 56; 57; 50; 43; 36;
    29; 22; 15; 23; 30; 37; 44; 51; 58; 59; 52; 45; 38; 31; 39; 46; 53; 60; 61;
    54; 47; 55; 62; 63;
  |]

let image_init = Inputs.image ~seed:79 ~width ~height

(* Forward transform of one 8x8 block: img -> coef (both global). *)
let dct_funs =
  [
    (* load a block into the f-workspace, centred on zero *)
    fn "load_block" ~params:[ ("bx", I); ("by", I) ] ~locals:[ ("r", I); ("c", I) ]
      [
        for_ "r" (i 0) (i 8)
          [
            for_ "c" (i 0) (i 8)
              [
                st "work" ((v "r" *: i 8) +: v "c")
                  (I2f (ld "img" (((v "by" *: i 8 +: v "r") *: i width)
                                 +: (v "bx" *: i 8) +: v "c"))
                  -: f 128.0);
              ];
          ];
        ret (i 0);
      ];
    (* rows pass: tmp = cosmat . work^T per row *)
    fn "dct_rows" ~locals:[ ("r", I); ("u", I); ("x", I); ("s", F) ]
      [
        for_ "r" (i 0) (i 8)
          [
            for_ "u" (i 0) (i 8)
              [
                set "s" (f 0.0);
                for_ "x" (i 0) (i 8)
                  [
                    set "s"
                      (v "s"
                      +: (ld "cosmat" ((v "u" *: i 8) +: v "x")
                         *: ld "work" ((v "r" *: i 8) +: v "x")));
                  ];
                st "wtmp" ((v "r" *: i 8) +: v "u") (v "s");
              ];
          ];
        ret (i 0);
      ];
    (* columns pass: work = cosmat . wtmp per column *)
    fn "dct_cols" ~locals:[ ("c", I); ("u", I); ("y", I); ("s", F) ]
      [
        for_ "c" (i 0) (i 8)
          [
            for_ "u" (i 0) (i 8)
              [
                set "s" (f 0.0);
                for_ "y" (i 0) (i 8)
                  [
                    set "s"
                      (v "s"
                      +: (ld "cosmat" ((v "u" *: i 8) +: v "y")
                         *: ld "wtmp" ((v "y" *: i 8) +: v "c")));
                  ];
                st "work" ((v "u" *: i 8) +: v "c") (v "s");
              ];
          ];
        ret (i 0);
      ];
  ]

module Enc = struct
  let name = "jpeg_enc"
  let domain = "consumer"

  let prog =
    {
      globals =
        [
          garr "img" ~init:image_init pixels;
          gfarr "cosmat" ~init:cosmat 64;
          garr "quant" ~init:(Array.map Int64.of_int quant) 64;
          garr "zigzag" ~init:(Array.map Int64.of_int zigzag) 64;
          gfarr "work" 64;
          gfarr "wtmp" 64;
          garr "coef" pixels;
        ];
      funs =
        dct_funs
        @ [
            fn "encode_block" ~params:[ ("bx", I); ("by", I) ]
              ~locals:[ ("k", I); ("q", I); ("base", I) ]
              [
                Expr (call "load_block" [ v "bx"; v "by" ]);
                Expr (call "dct_rows" []);
                Expr (call "dct_cols" []);
                set "base" (((v "by" *: i blocks_x) +: v "bx") *: i 64);
                (* quantise in zig-zag order *)
                for_ "k" (i 0) (i 64)
                  [
                    set "q"
                      (F2i (ld "work" (ld "zigzag" (v "k")))
                      /: ld "quant" (ld "zigzag" (v "k")));
                    st "coef" (v "base" +: v "k") (v "q");
                  ];
                ret (i 0);
              ];
            fn "main" ~locals:[ ("bx", I); ("by", I); ("k", I); ("acc", I); ("zrun", I) ]
              [
                for_ "by" (i 0) (i blocks_y)
                  [
                    for_ "bx" (i 0) (i blocks_x)
                      [ Expr (call "encode_block" [ v "bx"; v "by" ]) ];
                  ];
                (* run-length statistics as the entropy-coding stand-in *)
                for_ "k" (i 0) (i pixels)
                  [
                    if_ (ld "coef" (v "k") =: i 0)
                      [ set "zrun" (v "zrun" +: i 1) ]
                      [
                        set "acc" ((v "acc" *: i 31) +: ld "coef" (v "k") &: i 0xFFFFFF);
                        set "acc" (v "acc" +: v "zrun");
                        set "zrun" (i 0);
                      ];
                  ];
                ret (v "acc" +: v "zrun");
              ];
          ];
    }
end

(* Encoded coefficients for the decoder, computed in OCaml with the same
   arithmetic shape (float DCT + integer quantisation). *)
let encoded_coefs =
  let img = Array.map Int64.to_int image_init in
  let coef = Array.make pixels 0L in
  let work = Array.make 64 0.0 and wtmp = Array.make 64 0.0 in
  for by = 0 to blocks_y - 1 do
    for bx = 0 to blocks_x - 1 do
      for r = 0 to 7 do
        for c = 0 to 7 do
          work.((r * 8) + c) <-
            float_of_int img.((((by * 8) + r) * width) + (bx * 8) + c) -. 128.0
        done
      done;
      for r = 0 to 7 do
        for u = 0 to 7 do
          let s = ref 0.0 in
          for x = 0 to 7 do
            s := !s +. (cosmat.((u * 8) + x) *. work.((r * 8) + x))
          done;
          wtmp.((r * 8) + u) <- !s
        done
      done;
      for c = 0 to 7 do
        for u = 0 to 7 do
          let s = ref 0.0 in
          for y = 0 to 7 do
            s := !s +. (cosmat.((u * 8) + y) *. wtmp.((y * 8) + c))
          done;
          work.((u * 8) + c) <- !s
        done
      done;
      let base = ((by * blocks_x) + bx) * 64 in
      for k = 0 to 63 do
        let z = zigzag.(k) in
        coef.(base + k) <- Int64.of_int (Int64.to_int (Int64.of_float work.(z)) / quant.(z))
      done
    done
  done;
  coef

module Dec = struct
  let name = "jpeg_dec"
  let domain = "consumer"

  let prog =
    {
      globals =
        [
          garr "coef" ~init:encoded_coefs pixels;
          gfarr "cosmat" ~init:cosmat 64;
          garr "quant" ~init:(Array.map Int64.of_int quant) 64;
          garr "zigzag" ~init:(Array.map Int64.of_int zigzag) 64;
          gfarr "work" 64;
          gfarr "wtmp" 64;
          garr "out" pixels;
        ];
      funs =
        [
          (* inverse rows pass: wtmp[x] = sum_u cosmat[u][x] work[u] *)
          fn "idct_rows" ~locals:[ ("r", I); ("u", I); ("x", I); ("s", F) ]
            [
              for_ "r" (i 0) (i 8)
                [
                  for_ "x" (i 0) (i 8)
                    [
                      set "s" (f 0.0);
                      for_ "u" (i 0) (i 8)
                        [
                          set "s"
                            (v "s"
                            +: (ld "cosmat" ((v "u" *: i 8) +: v "x")
                               *: ld "work" ((v "r" *: i 8) +: v "u")));
                        ];
                      st "wtmp" ((v "r" *: i 8) +: v "x") (v "s");
                    ];
                ];
              ret (i 0);
            ];
          fn "idct_cols" ~locals:[ ("c", I); ("u", I); ("y", I); ("s", F) ]
            [
              for_ "c" (i 0) (i 8)
                [
                  for_ "y" (i 0) (i 8)
                    [
                      set "s" (f 0.0);
                      for_ "u" (i 0) (i 8)
                        [
                          set "s"
                            (v "s"
                            +: (ld "cosmat" ((v "u" *: i 8) +: v "y")
                               *: ld "wtmp" ((v "u" *: i 8) +: v "c")));
                        ];
                      st "work" ((v "y" *: i 8) +: v "c") (v "s");
                    ];
                ];
              ret (i 0);
            ];
          fn "decode_block" ~params:[ ("bx", I); ("by", I) ]
            ~locals:[ ("k", I); ("p", I); ("r", I); ("c", I); ("base", I) ]
            [
              set "base" (((v "by" *: i blocks_x) +: v "bx") *: i 64);
              (* dequantise out of zig-zag order *)
              for_ "k" (i 0) (i 64)
                [
                  st "work" (ld "zigzag" (v "k"))
                    (I2f (ld "coef" (v "base" +: v "k") *: ld "quant" (ld "zigzag" (v "k"))));
                ];
              Expr (call "idct_rows" []);
              Expr (call "idct_cols" []);
              (* clamp to bytes and store *)
              for_ "r" (i 0) (i 8)
                [
                  for_ "c" (i 0) (i 8)
                    [
                      set "p" (F2i (ld "work" ((v "r" *: i 8) +: v "c")) +: i 128);
                      if_ (v "p" <: i 0) [ set "p" (i 0) ] [];
                      if_ (v "p" >: i 255) [ set "p" (i 255) ] [];
                      st "out"
                        (((v "by" *: i 8 +: v "r") *: i width) +: (v "bx" *: i 8) +: v "c")
                        (v "p");
                    ];
                ];
              ret (i 0);
            ];
          fn "main" ~locals:[ ("bx", I); ("by", I); ("k", I); ("acc", I) ]
            [
              for_ "by" (i 0) (i blocks_y)
                [
                  for_ "bx" (i 0) (i blocks_x)
                    [ Expr (call "decode_block" [ v "bx"; v "by" ]) ];
                ];
              for_ "k" (i 0) (i pixels)
                [ set "acc" ((v "acc" +: ld "out" (v "k")) &: i 0xFFFFFFFF) ];
              ret (v "acc");
            ];
        ];
    }
end
