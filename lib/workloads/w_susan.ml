(* susan: image smoothing and edge detection on a synthetic grey-scale
   image — 2D strided access with a 3x3 neighbourhood and data-dependent
   thresholding, like the MiBench automotive vision kernel. *)

open Pc_kc.Ast

let name = "susan"
let domain = "automotive"
let width = 64
let height = 48
let pixels = width * height

let prog =
  {
    globals =
      [
        garr "img" ~init:(Inputs.image ~seed:19 ~width ~height) pixels;
        garr "smooth" pixels;
      ];
    funs =
      [
        (* 3x3 box smoothing into [smooth] *)
        fn "smooth_pass" ~locals:[ ("x", I); ("y", I); ("s", I); ("dx", I); ("dy", I) ]
          [
            for_ "y" (i 1) (i (height - 1))
              [
                for_ "x" (i 1) (i (width - 1))
                  [
                    set "s" (i 0);
                    for_ "dy" (i 0) (i 3)
                      [
                        for_ "dx" (i 0) (i 3)
                          [
                            set "s"
                              (v "s"
                              +: ld "img"
                                   (((v "y" +: v "dy" -: i 1) *: i width)
                                   +: v "x" +: v "dx" -: i 1));
                          ];
                      ];
                    st "smooth" ((v "y" *: i width) +: v "x") (v "s" /: i 9);
                  ];
              ];
            ret (i 0);
          ];
        (* USAN-style edge response: count similar neighbours *)
        fn "edge_count" ~params:[ ("threshold", I) ]
          ~locals:
            [ ("x", I); ("y", I); ("centre", I); ("similar", I); ("k", I); ("d", I); ("edges", I) ]
          [
            for_ "y" (i 1) (i (height - 1))
              [
                for_ "x" (i 1) (i (width - 1))
                  [
                    set "centre" (ld "smooth" ((v "y" *: i width) +: v "x"));
                    set "similar" (i 0);
                    (* 4-neighbourhood difference test *)
                    for_ "k" (i 0) (i 4)
                      [
                        if_ (v "k" =: i 0)
                          [ set "d" (ld "smooth" ((v "y" *: i width) +: v "x" -: i 1)) ]
                          [
                            if_ (v "k" =: i 1)
                              [ set "d" (ld "smooth" ((v "y" *: i width) +: v "x" +: i 1)) ]
                              [
                                if_ (v "k" =: i 2)
                                  [
                                    set "d"
                                      (ld "smooth" (((v "y" -: i 1) *: i width) +: v "x"));
                                  ]
                                  [
                                    set "d"
                                      (ld "smooth" (((v "y" +: i 1) *: i width) +: v "x"));
                                  ];
                              ];
                          ];
                        if_
                          ((v "d" -: v "centre" <: v "threshold")
                          &&: (v "centre" -: v "d" <: v "threshold"))
                          [ set "similar" (v "similar" +: i 1) ]
                          [];
                      ];
                    if_ (v "similar" <=: i 2) [ set "edges" (v "edges" +: i 1) ] [];
                  ];
              ];
            ret (v "edges");
          ];
        fn "main" ~locals:[ ("e1", I); ("e2", I); ("j", I); ("acc", I) ]
          [
            Expr (call "smooth_pass" []);
            set "e1" (call "edge_count" [ i 8 ]);
            set "e2" (call "edge_count" [ i 20 ]);
            for_ "j" (i 0) (i pixels)
              [ set "acc" (v "acc" +: ld "smooth" (v "j")) ];
            ret ((v "e1" *: i 100_000) +: (v "e2" *: i 1000) +: (v "acc" %: i 1000));
          ];
      ];
  }
