(* crc32: table-driven CRC-32 over a byte stream — the classic telecom/
   network checksum: sequential byte loads plus a 256-entry table with
   data-dependent indices. *)

open Pc_kc.Ast

let name = "crc32"
let domain = "network"
let n = 16_384

let prog =
  {
    globals =
      [
        garr "stream" ~init:(Inputs.bytes ~seed:37 ~n) n;
        garr "crc_table" 256;
      ];
    funs =
      [
        (* build the reflected CRC-32 table (polynomial 0xEDB88320) *)
        fn "build_table" ~locals:[ ("j", I); ("k", I); ("c", I) ]
          [
            for_ "j" (i 0) (i 256)
              [
                set "c" (v "j");
                for_ "k" (i 0) (i 8)
                  [
                    if_ ((v "c" &: i 1) =: i 1)
                      [ set "c" (i 0xEDB88320 ^: (v "c" >>: i 1)) ]
                      [ set "c" (v "c" >>: i 1) ];
                  ];
                st "crc_table" (v "j") (v "c");
              ];
            ret (i 0);
          ];
        fn "crc_of_stream" ~params:[ ("from", I); ("until", I) ] ~locals:[ ("j", I); ("c", I) ]
          [
            set "c" (i 0xFFFFFFFF);
            for_ "j" (v "from") (v "until")
              [
                set "c"
                  (ld "crc_table" ((v "c" ^: ld "stream" (v "j")) &: i 255)
                  ^: (v "c" >>: i 8));
              ];
            ret (v "c" ^: i 0xFFFFFFFF);
          ];
        fn "main" ~locals:[ ("acc", I); ("block", I) ]
          [
            Expr (call "build_table" []);
            (* checksum the stream in four blocks, then whole *)
            for_ "block" (i 0) (i 4)
              [
                set "acc"
                  (v "acc"
                  ^: call "crc_of_stream"
                       [ v "block" *: i (n / 4); (v "block" +: i 1) *: i (n / 4) ]);
              ];
            ret ((v "acc" ^: call "crc_of_stream" [ i 0; i n ]) &: i 0xFFFFFFFF);
          ];
      ];
  }
