(* pegwit: public-key-style arithmetic — modular exponentiation by
   square-and-multiply over a 31-bit prime modulus, used for a toy
   Diffie-Hellman-like exchange plus a keyed digest.  Long dependent
   multiply/divide chains with data-dependent branching on exponent
   bits. *)

open Pc_kc.Ast

let name = "pegwit"
let domain = "security"
let n_msgs = 96
let modulus = 2_147_483_647 (* 2^31 - 1, prime *)

let prog =
  {
    globals =
      [
        garr "exponents" ~init:(Inputs.ints ~seed:59 ~n:n_msgs ~bound:(1 lsl 24)) n_msgs;
        garr "payload" ~init:(Inputs.ints ~seed:60 ~n:n_msgs ~bound:modulus) n_msgs;
        garr "signatures" n_msgs;
      ];
    funs =
      [
        (* (a * b) mod m — products of 31-bit values fit in 62 bits *)
        fn "mulmod" ~params:[ ("a", I); ("b", I) ]
          [ ret ((v "a" *: v "b") %: i modulus) ];
        fn "powmod" ~params:[ ("base", I); ("e", I) ]
          ~locals:[ ("result", I); ("acc", I); ("k", I) ]
          [
            set "result" (i 1);
            set "acc" (v "base" %: i modulus);
            set "k" (v "e");
            while_ (v "k" >: i 0)
              [
                if_ ((v "k" &: i 1) =: i 1)
                  [ set "result" (call "mulmod" [ v "result"; v "acc" ]) ]
                  [];
                set "acc" (call "mulmod" [ v "acc"; v "acc" ]);
                set "k" (v "k" >>: i 1);
              ];
            ret (v "result");
          ];
        (* keyed digest: fold payload through mulmod with the shared key *)
        fn "sign" ~params:[ ("msg", I); ("key", I) ] ~locals:[ ("d", I) ]
          [
            set "d" (v "key");
            set "d" (call "mulmod" [ v "d"; v "msg" +: i 1 ]);
            set "d" ((v "d" +: call "powmod" [ v "msg" +: i 2; i 65537 ]) %: i modulus);
            ret (v "d");
          ];
        fn "main" ~locals:[ ("j", I); ("shared", I); ("acc", I) ]
          [
            (* Diffie-Hellman-ish: both sides exponentiate generator 7 *)
            set "shared"
              (call "powmod" [ call "powmod" [ i 7; i 123_457 ]; i 654_321 ]);
            for_ "j" (i 0) (i n_msgs)
              [
                st "signatures" (v "j")
                  (call "sign"
                     [
                       call "powmod" [ ld "payload" (v "j"); ld "exponents" (v "j") ];
                       v "shared";
                     ]);
              ];
            for_ "j" (i 0) (i n_msgs)
              [ set "acc" ((v "acc" ^: ld "signatures" (v "j")) %: i modulus) ];
            ret (v "acc");
          ];
      ];
  }
