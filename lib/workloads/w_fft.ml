(* fft: iterative radix-2 Cooley-Tukey FFT over 256 complex points, with
   bit-reversal permutation and trig recurrence twiddles — FP-multiply
   heavy with power-of-two strided access, like the MiBench telecom
   kernel. *)

open Pc_kc.Ast

let name = "fft"
let domain = "telecom"
let size = 256
let log2_size = 8

let prog =
  {
    globals =
      [
        gfarr "re" ~init:(Array.map (fun x -> x -. 0.5) (Inputs.floats ~seed:67 ~n:size ~scale:1.0)) size;
        gfarr "im" size;
        gfarr "re2" size;
        gfarr "im2" size;
      ];
    funs =
      [
        (* bit-reverse the low [log2_size] bits of x *)
        fn "bit_reverse" ~params:[ ("x", I) ] ~locals:[ ("r", I); ("k", I); ("w", I) ]
          [
            set "w" (v "x");
            for_ "k" (i 0) (i log2_size)
              [
                set "r" ((v "r" <<: i 1) |: (v "w" &: i 1));
                set "w" (v "w" >>: i 1);
              ];
            ret (v "r");
          ];
        (* in-place FFT over (re, im) *)
        fn "fft_run"
          ~locals:
            [
              ("j", I); ("k", I); ("m", I); ("half", I); ("step", I); ("pos", I);
              ("wr", F); ("wi", F); ("ur", F); ("ui", F); ("tr", F); ("ti", F);
              ("ang_r", F); ("ang_i", F); ("t", F);
            ]
          [
            (* bit-reversal permutation via scratch arrays *)
            for_ "j" (i 0) (i size)
              [
                st "re2" (call "bit_reverse" [ v "j" ]) (ld "re" (v "j"));
                st "im2" (call "bit_reverse" [ v "j" ]) (ld "im" (v "j"));
              ];
            for_ "j" (i 0) (i size)
              [ st "re" (v "j") (ld "re2" (v "j")); st "im" (v "j") (ld "im2" (v "j")) ];
            (* butterfly stages *)
            set "half" (i 1);
            for_ "m" (i 0) (i log2_size)
              [
                set "step" (v "half" *: i 2);
                (* stage twiddle rotation: e^{-i pi / half}, by recurrence
                   seeded from a polynomial approximation of cos/sin *)
                set "t" (f 3.14159265358979 /: I2f (v "half"));
                (* cos(t) ~ 1 - t^2/2 + t^4/24 - t^6/720; accurate enough
                   for t <= pi and identical in interp and compiled code *)
                set "ang_r"
                  (f 1.0 -: (v "t" *: v "t" /: f 2.0)
                  +: (v "t" *: v "t" *: v "t" *: v "t" /: f 24.0)
                  -: (v "t" *: v "t" *: v "t" *: v "t" *: v "t" *: v "t" /: f 720.0));
                set "ang_i"
                  (f 0.0
                  -: (v "t" -: (v "t" *: v "t" *: v "t" /: f 6.0)
                     +: (v "t" *: v "t" *: v "t" *: v "t" *: v "t" /: f 120.0)));
                for_ "k" (i 0) (v "half")
                  [
                    if_ (v "k" =: i 0)
                      [ set "wr" (f 1.0); set "wi" (f 0.0) ]
                      [
                        set "t" (v "wr");
                        set "wr" ((v "wr" *: v "ang_r") -: (v "wi" *: v "ang_i"));
                        set "wi" ((v "t" *: v "ang_i") +: (v "wi" *: v "ang_r"));
                      ];
                    set "pos" (v "k");
                    while_ (v "pos" <: i size)
                      [
                        set "ur" (ld "re" (v "pos"));
                        set "ui" (ld "im" (v "pos"));
                        set "tr"
                          ((v "wr" *: ld "re" (v "pos" +: v "half"))
                          -: (v "wi" *: ld "im" (v "pos" +: v "half")));
                        set "ti"
                          ((v "wr" *: ld "im" (v "pos" +: v "half"))
                          +: (v "wi" *: ld "re" (v "pos" +: v "half")));
                        st "re" (v "pos") (v "ur" +: v "tr");
                        st "im" (v "pos") (v "ui" +: v "ti");
                        st "re" (v "pos" +: v "half") (v "ur" -: v "tr");
                        st "im" (v "pos" +: v "half") (v "ui" -: v "ti");
                        set "pos" (v "pos" +: v "step");
                      ];
                  ];
                set "half" (v "step");
              ];
            ret (i 0);
          ];
        fn "main" ~locals:[ ("j", I); ("acc", I); ("mag", F) ]
          [
            Expr (call "fft_run" []);
            (* power spectrum checksum *)
            for_ "j" (i 0) (i size)
              [
                set "mag"
                  ((ld "re" (v "j") *: ld "re" (v "j"))
                  +: (ld "im" (v "j") *: ld "im" (v "j")));
                set "acc" (v "acc" +: F2i (v "mag" *: f 100.0));
              ];
            ret (v "acc");
          ];
      ];
  }
