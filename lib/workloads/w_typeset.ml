(* typeset: greedy paragraph line breaking with badness minimisation and
   hyphenation points — the branch-heavy, integer decision kernel of a
   typesetting engine (the MiBench office/consumer "typeset" role). *)

open Pc_kc.Ast

let name = "typeset"
let domain = "consumer"
let n_words = 2200
let line_width = 66

(* Word lengths with a natural-language-like distribution. *)
let word_lengths =
  let raw = Inputs.ints ~seed:101 ~n:n_words ~bound:100 in
  Array.map
    (fun r ->
      let r = Int64.to_int r in
      let len =
        if r < 15 then 2
        else if r < 35 then 3
        else if r < 55 then 4
        else if r < 70 then 6
        else if r < 82 then 8
        else if r < 92 then 11
        else 14
      in
      Int64.of_int len)
    raw

let prog =
  {
    globals =
      [
        garr "words" ~init:word_lengths n_words;
        garr "line_of" n_words (* line number assigned to each word *);
        garr "badness" 512 (* per-line badness *);
      ];
    funs =
      [
        (* badness of a line with [used] characters: cube-ish penalty *)
        fn "line_badness" ~params:[ ("used", I) ] ~locals:[ ("slack", I) ]
          [
            set "slack" (i line_width -: v "used");
            if_ (v "slack" <: i 0) [ ret (i 100_000) ] [];
            ret (v "slack" *: v "slack" *: v "slack" /: i 8);
          ];
        (* greedy fill with lookahead: hyphenate long words when the
           penalty beats pushing the whole word to the next line *)
        fn "break_paragraph" ~params:[ ("from", I); ("until", I) ]
          ~locals:
            [ ("j", I); ("used", I); ("line", I); ("w", I); ("fit", I); ("half", I); ("total_bad", I) ]
          [
            set "used" (i 0);
            set "line" (i 0);
            for_ "j" (v "from") (v "until")
              [
                set "w" (ld "words" (v "j"));
                set "fit" (v "used" +: v "w" +: i 1);
                if_ (v "fit" <=: i line_width)
                  [ set "used" (v "fit"); st "line_of" (v "j") (v "line") ]
                  [
                    (* try hyphenating words of 8+ characters *)
                    set "half" (v "w" /: i 2);
                    if_
                      ((v "w" >=: i 8)
                      &&: (v "used" +: v "half" +: i 2 <=: i line_width))
                      [
                        (* first half stays, second half opens the next line *)
                        if_ (v "line" <: i 512)
                          [
                            st "badness" (v "line")
                              (call "line_badness" [ v "used" +: v "half" +: i 2 ]);
                          ]
                          [];
                        set "line" (v "line" +: i 1);
                        set "used" (v "w" -: v "half" +: i 1);
                        st "line_of" (v "j") (v "line");
                      ]
                      [
                        if_ (v "line" <: i 512)
                          [ st "badness" (v "line") (call "line_badness" [ v "used" ]) ]
                          [];
                        set "line" (v "line" +: i 1);
                        set "used" (v "w" +: i 1);
                        st "line_of" (v "j") (v "line");
                      ];
                  ];
              ];
            set "total_bad" (i 0);
            for_ "j" (i 0) (v "line")
              [
                if_ (v "j" <: i 512)
                  [ set "total_bad" (v "total_bad" +: ld "badness" (v "j")) ]
                  [];
              ];
            ret (v "total_bad" +: (v "line" *: i 1000));
          ];
        fn "main" ~locals:[ ("p", I); ("acc", I); ("chunk", I) ]
          [
            set "chunk" (i (n_words / 8));
            (* typeset eight "paragraphs", then re-typeset the whole text *)
            for_ "p" (i 0) (i 8)
              [
                set "acc"
                  (v "acc"
                  +: call "break_paragraph"
                       [ v "p" *: v "chunk"; (v "p" +: i 1) *: v "chunk" ]);
              ];
            set "acc" (v "acc" +: call "break_paragraph" [ i 0; i n_words ]);
            ret (v "acc");
          ];
      ];
  }
