module Rng = Pc_util.Rng

let ints ~seed ~n ~bound =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Int64.of_int (Rng.int rng bound))

let bytes ~seed ~n = ints ~seed ~n ~bound:256

let floats ~seed ~n ~scale =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.float rng scale)

let waveform ~seed ~n ~amplitude =
  let rng = Rng.create seed in
  let amp = float_of_int amplitude in
  Array.init n (fun i ->
      let t = float_of_int i in
      let s =
        (0.6 *. sin (t /. 7.3)) +. (0.3 *. sin (t /. 1.9)) +. (0.1 *. Rng.float rng 2.0)
        -. 0.1
      in
      Int64.of_int (int_of_float (s *. amp)))

let image ~seed ~width ~height =
  let rng = Rng.create seed in
  Array.init (width * height) (fun idx ->
      let x = idx mod width and y = idx / width in
      (* smooth gradient + 8x8 blocks + noise, clamped to a byte *)
      let gradient = (x * 2) + y in
      let block = if (x / 8) + (y / 8) mod 2 = 0 then 40 else 0 in
      let noise = Rng.int rng 16 in
      Int64.of_int (min 255 ((gradient + block + noise) mod 256)))

let text ~seed ~n =
  let rng = Rng.create seed in
  let buf = Array.make n 32L in
  let i = ref 0 in
  while !i < n do
    (* Zipf-ish word length: short words common. *)
    let len = 1 + Rng.int rng 3 + (if Rng.int rng 4 = 0 then Rng.int rng 6 else 0) in
    for _ = 1 to len do
      if !i < n then begin
        buf.(!i) <- Int64.of_int (97 + Rng.int rng 26);
        incr i
      end
    done;
    if !i < n then begin
      buf.(!i) <- 32L;
      incr i
    end
  done;
  buf
