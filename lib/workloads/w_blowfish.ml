(* blowfish: a 16-round Feistel cipher with four 256-entry S-boxes and a
   P-array, run in ECB over a message buffer — table-lookup-dominated
   integer crypto like the MiBench security kernel. *)

open Pc_kc.Ast

let name = "blowfish"
let domain = "security"
let blocks = 384 (* 64-bit blocks, as (hi, lo) 32-bit word pairs *)

let mask32 = 0xFFFFFFFF

let prog =
  {
    globals =
      [
        garr "sbox0" ~init:(Inputs.ints ~seed:41 ~n:256 ~bound:(1 lsl 30)) 256;
        garr "sbox1" ~init:(Inputs.ints ~seed:42 ~n:256 ~bound:(1 lsl 30)) 256;
        garr "sbox2" ~init:(Inputs.ints ~seed:43 ~n:256 ~bound:(1 lsl 30)) 256;
        garr "sbox3" ~init:(Inputs.ints ~seed:44 ~n:256 ~bound:(1 lsl 30)) 256;
        garr "parray" ~init:(Inputs.ints ~seed:45 ~n:18 ~bound:(1 lsl 30)) 18;
        garr "msg" ~init:(Inputs.ints ~seed:46 ~n:(2 * blocks) ~bound:(1 lsl 30)) (2 * blocks);
      ];
    funs =
      [
        (* The Blowfish F function: split into bytes, S-box mix. *)
        fn "feistel" ~params:[ ("x", I) ] ~locals:[ ("a", I); ("b", I); ("c", I); ("d", I) ]
          [
            set "a" ((v "x" >>: i 24) &: i 255);
            set "b" ((v "x" >>: i 16) &: i 255);
            set "c" ((v "x" >>: i 8) &: i 255);
            set "d" (v "x" &: i 255);
            ret
              (((((ld "sbox0" (v "a") +: ld "sbox1" (v "b")) &: i mask32)
                ^: ld "sbox2" (v "c"))
                +: ld "sbox3" (v "d"))
              &: i mask32);
          ];
        (* Encrypt the block at index [b] in place. *)
        fn "encrypt_block" ~params:[ ("b", I) ]
          ~locals:[ ("l", I); ("r", I); ("round", I); ("t", I) ]
          [
            set "l" (ld "msg" (v "b" *: i 2));
            set "r" (ld "msg" ((v "b" *: i 2) +: i 1));
            for_ "round" (i 0) (i 16)
              [
                set "l" ((v "l" ^: ld "parray" (v "round")) &: i mask32);
                set "r" ((v "r" ^: call "feistel" [ v "l" ]) &: i mask32);
                set "t" (v "l");
                set "l" (v "r");
                set "r" (v "t");
              ];
            (* final swap and whitening *)
            set "t" (v "l");
            set "l" ((v "r" ^: ld "parray" (i 17)) &: i mask32);
            set "r" ((v "t" ^: ld "parray" (i 16)) &: i mask32);
            st "msg" (v "b" *: i 2) (v "l");
            st "msg" ((v "b" *: i 2) +: i 1) (v "r");
            ret (i 0);
          ];
        fn "main" ~locals:[ ("j", I); ("acc", I) ]
          [
            for_ "j" (i 0) (i blocks) [ Expr (call "encrypt_block" [ v "j" ]) ];
            for_ "j" (i 0) (i (2 * blocks))
              [ set "acc" ((v "acc" +: ld "msg" (v "j")) &: i mask32) ];
            ret (v "acc");
          ];
      ];
  }
