(* stringsearch: Boyer-Moore-Horspool substring search of several
   patterns over pseudo-English text — skip-table driven with irregular
   jumps through the text, like the MiBench office kernel. *)

open Pc_kc.Ast

let name = "stringsearch"
let domain = "office"
let text_len = 8192
let n_patterns = 8
let pat_len = 6

let text_init = Inputs.text ~seed:103 ~n:text_len

(* Patterns: half sampled from the text (guaranteed hits), half random. *)
let patterns_init =
  let rng = Pc_util.Rng.create 107 in
  Array.init (n_patterns * pat_len) (fun idx ->
      let p = idx / pat_len and k = idx mod pat_len in
      if p < n_patterns / 2 then
        let start = 500 + (p * 1111) in
        text_init.(start + k)
      else Int64.of_int (97 + Pc_util.Rng.int rng 26))

let prog =
  {
    globals =
      [
        garr "text" ~init:text_init text_len;
        garr "patterns" ~init:patterns_init (n_patterns * pat_len);
        garr "skip" 256;
      ];
    funs =
      [
        (* Horspool search for pattern [p]; returns the match count. *)
        fn "search" ~params:[ ("p", I) ]
          ~locals:[ ("k", I); ("pos", I); ("j", I); ("ok", I); ("found", I); ("base", I); ("c", I) ]
          [
            set "base" (v "p" *: i pat_len);
            (* build the bad-character skip table *)
            for_ "k" (i 0) (i 256) [ st "skip" (v "k") (i pat_len) ];
            for_ "k" (i 0) (i (pat_len - 1))
              [
                st "skip" (ld "patterns" (v "base" +: v "k")) (i (pat_len - 1) -: v "k");
              ];
            set "pos" (i 0);
            while_ (v "pos" <=: i (text_len - pat_len))
              [
                set "ok" (i 1);
                set "j" (i (pat_len - 1));
                while_ ((v "j" >=: i 0) &&: (v "ok" =: i 1))
                  [
                    if_
                      (ld "text" (v "pos" +: v "j") <>: ld "patterns" (v "base" +: v "j"))
                      [ set "ok" (i 0) ]
                      [ set "j" (v "j" -: i 1) ];
                  ];
                if_ (v "ok" =: i 1) [ set "found" (v "found" +: i 1) ] [];
                set "c" (ld "text" (v "pos" +: i (pat_len - 1)));
                set "pos" (v "pos" +: ld "skip" (v "c"));
              ];
            ret (v "found");
          ];
        fn "main" ~locals:[ ("p", I); ("acc", I) ]
          [
            for_ "p" (i 0) (i n_patterns)
              [ set "acc" ((v "acc" *: i 100) +: call "search" [ v "p" ]) ];
            ret (v "acc");
          ];
      ];
  }
