(* sha: SHA-1-shaped message digest — 16-word schedule expanded to 80,
   then 80 rounds of rotate/add/select over five chaining words per
   block.  Long serial dependency chains, all-integer. *)

open Pc_kc.Ast

let name = "sha"
let domain = "security"
let n_blocks = 48
let mask32 = 0xFFFFFFFF

(* rotate-left within 32 bits *)
let rotl x k = ((x <<: i k) |: (x >>: i (32 - k))) &: i mask32

let prog =
  {
    globals =
      [
        garr "message"
          ~init:(Inputs.ints ~seed:53 ~n:(16 * n_blocks) ~bound:(1 lsl 30))
          (16 * n_blocks);
        garr "w" 80;
        garr "h" ~init:[| 0x67452301L; 0xEFCDAB89L; 0x98BADCFEL; 0x10325476L; 0xC3D2E1F0L |] 5;
      ];
    funs =
      [
        fn "process_block" ~params:[ ("block", I) ]
          ~locals:
            [ ("t", I); ("a", I); ("b", I); ("c", I); ("d", I); ("e", I); ("f", I); ("k", I); ("temp", I) ]
          [
            (* schedule: first 16 from the message *)
            for_ "t" (i 0) (i 16)
              [ st "w" (v "t") (ld "message" ((v "block" *: i 16) +: v "t")) ];
            for_ "t" (i 16) (i 80)
              [
                set "temp"
                  (ld "w" (v "t" -: i 3)
                  ^: ld "w" (v "t" -: i 8)
                  ^: ld "w" (v "t" -: i 14)
                  ^: ld "w" (v "t" -: i 16));
                st "w" (v "t") (rotl (v "temp") 1);
              ];
            set "a" (ld "h" (i 0));
            set "b" (ld "h" (i 1));
            set "c" (ld "h" (i 2));
            set "d" (ld "h" (i 3));
            set "e" (ld "h" (i 4));
            for_ "t" (i 0) (i 80)
              [
                if_ (v "t" <: i 20)
                  [
                    set "f" ((v "b" &: v "c") |: ((v "b" ^: i mask32) &: v "d"));
                    set "k" (i 0x5A827999);
                  ]
                  [
                    if_ (v "t" <: i 40)
                      [ set "f" (v "b" ^: v "c" ^: v "d"); set "k" (i 0x6ED9EBA1) ]
                      [
                        if_ (v "t" <: i 60)
                          [
                            set "f"
                              ((v "b" &: v "c") |: ((v "b" &: v "d") |: (v "c" &: v "d")));
                            set "k" (i 0x8F1BBCDC);
                          ]
                          [ set "f" (v "b" ^: v "c" ^: v "d"); set "k" (i 0xCA62C1D6) ];
                      ];
                  ];
                set "temp"
                  ((rotl (v "a") 5 +: v "f" +: v "e" +: v "k" +: ld "w" (v "t"))
                  &: i mask32);
                set "e" (v "d");
                set "d" (v "c");
                set "c" (rotl (v "b") 30);
                set "b" (v "a");
                set "a" (v "temp");
              ];
            st "h" (i 0) ((ld "h" (i 0) +: v "a") &: i mask32);
            st "h" (i 1) ((ld "h" (i 1) +: v "b") &: i mask32);
            st "h" (i 2) ((ld "h" (i 2) +: v "c") &: i mask32);
            st "h" (i 3) ((ld "h" (i 3) +: v "d") &: i mask32);
            st "h" (i 4) ((ld "h" (i 4) +: v "e") &: i mask32);
            ret (i 0);
          ];
        fn "main" ~locals:[ ("j", I) ]
          [
            for_ "j" (i 0) (i n_blocks) [ Expr (call "process_block" [ v "j" ]) ];
            ret
              ((ld "h" (i 0) ^: ld "h" (i 1) ^: ld "h" (i 2) ^: ld "h" (i 3) ^: ld "h" (i 4))
              &: i mask32);
          ];
      ];
  }
