(* mpeg_decode: the P-frame reconstruction core of an MPEG-style video
   decoder — motion-compensated block copy from a reference frame at a
   per-block motion vector, plus an integer IDCT-approximation residual
   add and saturation.  Mixed strided/offset access patterns. *)

open Pc_kc.Ast

let name = "mpeg_decode"
let domain = "consumer"
let width = 64
let height = 48
let pixels = width * height
let blocks_x = width / 8
let blocks_y = height / 8
let n_blocks = blocks_x * blocks_y

(* Motion vectors: small signed offsets per block. *)
let vectors =
  let raw = Inputs.ints ~seed:83 ~n:(2 * n_blocks) ~bound:9 in
  Array.map (fun d -> Int64.sub d 4L) raw

(* Sparse residual coefficients per block (most are zero, like real
   bitstreams). *)
let residuals =
  let raw = Inputs.ints ~seed:89 ~n:(64 * n_blocks) ~bound:100 in
  Array.map (fun x -> if Int64.to_int x < 80 then 0L else Int64.sub x 90L) raw

let prog =
  {
    globals =
      [
        garr "reference" ~init:(Inputs.image ~seed:97 ~width ~height) pixels;
        garr "frame" pixels;
        garr "mv" ~init:vectors (2 * n_blocks);
        garr "resid" ~init:residuals (64 * n_blocks);
      ];
    funs =
      [
        (* clamped reference fetch (edge replication) *)
        fn "ref_pixel" ~params:[ ("x", I); ("y", I) ] ~locals:[ ("cx", I); ("cy", I) ]
          [
            set "cx" (v "x");
            set "cy" (v "y");
            if_ (v "cx" <: i 0) [ set "cx" (i 0) ] [];
            if_ (v "cx" >=: i width) [ set "cx" (i (width - 1)) ] [];
            if_ (v "cy" <: i 0) [ set "cy" (i 0) ] [];
            if_ (v "cy" >=: i height) [ set "cy" (i (height - 1)) ] [];
            ret (ld "reference" ((v "cy" *: i width) +: v "cx"));
          ];
        (* integer butterfly pass standing in for the residual IDCT *)
        fn "residual_value" ~params:[ ("block", I); ("r", I); ("c", I) ]
          ~locals:[ ("base", I); ("a", I); ("b", I) ]
          [
            set "base" (v "block" *: i 64);
            set "a" (ld "resid" (v "base" +: (v "r" *: i 8) +: v "c"));
            set "b" (ld "resid" (v "base" +: (v "c" *: i 8) +: v "r"));
            ret ((v "a" *: i 3 +: v "b") /: i 4);
          ];
        fn "decode_block" ~params:[ ("bx", I); ("by", I) ]
          ~locals:
            [ ("block", I); ("dx", I); ("dy", I); ("r", I); ("c", I); ("p", I); ("x", I); ("y", I) ]
          [
            set "block" ((v "by" *: i blocks_x) +: v "bx");
            set "dx" (ld "mv" (v "block" *: i 2));
            set "dy" (ld "mv" ((v "block" *: i 2) +: i 1));
            for_ "r" (i 0) (i 8)
              [
                for_ "c" (i 0) (i 8)
                  [
                    set "x" ((v "bx" *: i 8) +: v "c");
                    set "y" ((v "by" *: i 8) +: v "r");
                    set "p"
                      (call "ref_pixel" [ v "x" +: v "dx"; v "y" +: v "dy" ]
                      +: call "residual_value" [ v "block"; v "r"; v "c" ]);
                    if_ (v "p" <: i 0) [ set "p" (i 0) ] [];
                    if_ (v "p" >: i 255) [ set "p" (i 255) ] [];
                    st "frame" ((v "y" *: i width) +: v "x") (v "p");
                  ];
              ];
            ret (i 0);
          ];
        fn "main" ~locals:[ ("bx", I); ("by", I); ("k", I); ("acc", I); ("passes", I) ]
          [
            (* decode three dependent P-frames: frame becomes reference *)
            for_ "passes" (i 0) (i 3)
              [
                for_ "by" (i 0) (i blocks_y)
                  [
                    for_ "bx" (i 0) (i blocks_x)
                      [ Expr (call "decode_block" [ v "bx"; v "by" ]) ];
                  ];
                for_ "k" (i 0) (i pixels) [ st "reference" (v "k") (ld "frame" (v "k")) ];
              ];
            for_ "k" (i 0) (i pixels)
              [ set "acc" ((v "acc" *: i 7) +: ld "frame" (v "k") &: i 0xFFFFFFF) ];
            ret (v "acc");
          ];
      ];
  }
