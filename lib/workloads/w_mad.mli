(** One of the 23 embedded workload kernels (see {!Registry} for the full
    Table-1 list).  The implementation comment describes the algorithm
    and which MiBench/MediaBench program it stands in for. *)

val name : string
val domain : string
val prog : Pc_kc.Ast.prog
