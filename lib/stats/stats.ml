let mean v =
  let n = Array.length v in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 v /. float_of_int n

let stddev v =
  let m = mean v in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 v in
  sqrt (acc /. float_of_int (Array.length v))

let pearson x y =
  let n = Array.length x in
  if n = 0 || n <> Array.length y then
    invalid_arg "Stats.pearson: arrays must have equal positive length";
  let mx = mean x and my = mean y in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  let denom = sqrt (!sxx *. !syy) in
  if denom = 0.0 then 0.0 else !sxy /. denom

let rankings v =
  let n = Array.length v in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare v.(a) v.(b)) order;
  let ranks = Array.make n 0.0 in
  (* Walk runs of equal values and give each member the average rank. *)
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && v.(order.(!j + 1)) = v.(order.(!i)) do incr j done;
    let avg_rank = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      ranks.(order.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  ranks

let spearman x y = pearson (rankings x) (rankings y)

let abs_rel_error ~actual ~predicted =
  if actual = 0.0 then invalid_arg "Stats.abs_rel_error: actual is zero";
  abs_float (predicted -. actual) /. abs_float actual

let relative_design_error ~real_base ~real_new ~synth_base ~synth_new =
  if real_base = 0.0 || synth_base = 0.0 then
    invalid_arg "Stats.relative_design_error: zero base metric";
  let real_ratio = real_new /. real_base in
  let synth_ratio = synth_new /. synth_base in
  if real_ratio = 0.0 then
    invalid_arg "Stats.relative_design_error: zero real ratio";
  abs_float (synth_ratio -. real_ratio) /. abs_float real_ratio

let percentile v p =
  let n = Array.length v in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy v in
  Array.sort compare sorted;
  let pos = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

module Histogram = struct
  type t = { bounds : int array; counts : int array; mutable total : int }

  let create ~bounds =
    let n = Array.length bounds in
    for i = 1 to n - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Histogram.create: bounds must be strictly increasing"
    done;
    { bounds; counts = Array.make (n + 1) 0; total = 0 }

  let bucket_of t x =
    let n = Array.length t.bounds in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if x <= t.bounds.(mid) then search lo mid else search (mid + 1) hi
    in
    if n = 0 || x > t.bounds.(n - 1) then n else search 0 (n - 1)

  let add_many t x n =
    let b = bucket_of t x in
    t.counts.(b) <- t.counts.(b) + n;
    t.total <- t.total + n

  let add t x = add_many t x 1
  let counts t = Array.copy t.counts
  let total t = t.total

  let fractions t =
    if t.total = 0 then Array.make (Array.length t.counts) 0.0
    else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

  let merge a b =
    if a.bounds <> b.bounds then invalid_arg "Histogram.merge: bounds differ";
    {
      bounds = a.bounds;
      counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
      total = a.total + b.total;
    }

  let bounds t = Array.copy t.bounds
end
