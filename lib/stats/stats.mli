(** Statistics used by the evaluation: correlation, rankings, error
    metrics and small summaries.

    These are exactly the metrics the paper reports: Pearson's linear
    correlation coefficient (Figure 4), configuration rankings (Figure 5),
    absolute and relative errors (Figures 6–9, Table 3). *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val pearson : float array -> float array -> float
(** [pearson x y] is Pearson's linear correlation coefficient
    [S_xy / (S_x . S_y)].  The arrays must have equal positive length.
    Returns 0 when either series is constant (undefined correlation). *)

val spearman : float array -> float array -> float
(** Rank (Spearman) correlation: Pearson over the rank vectors, with ties
    receiving their average rank. *)

val rankings : float array -> float array
(** [rankings v] assigns rank 1 to the smallest value; ties get the
    average of the ranks they span. *)

val abs_rel_error : actual:float -> predicted:float -> float
(** [abs_rel_error ~actual ~predicted] is [|predicted - actual| / actual].
    Raises [Invalid_argument] when [actual = 0]. *)

val relative_design_error :
  real_base:float -> real_new:float -> synth_base:float -> synth_new:float -> float
(** The paper's relative-accuracy metric for a design change from a base
    configuration to a new one:
    [| (Mx_s/My_s - My_r/Mx_r^-1 ... ) |] — concretely
    [|(synth_new/synth_base) - (real_new/real_base)| / (real_new/real_base)].
    It measures how well the clone tracks the *trend*. *)

val percentile : float array -> float -> float
(** [percentile v p] with [p] in [\[0,100\]]; linear interpolation. *)

module Histogram : sig
  type t
  (** Bucketed counts over predefined upper bounds. *)

  val create : bounds:int array -> t
  (** [create ~bounds] makes a histogram whose bucket [i] counts samples
      [x <= bounds.(i)] (and greater than the previous bound); one extra
      overflow bucket collects the rest.  [bounds] must be strictly
      increasing.

      Upper bounds are {e inclusive}: with the paper's dependency-distance
      bounds [(1, 2, 4, 6, 8, 16, 32)] a distance of exactly 8 lands in
      the bucket labelled 8 (index 4) and 33 lands in the [>32] overflow
      bucket, matching Table 1 of the paper. *)

  val bucket_of : t -> int -> int
  (** [bucket_of t x] is the index of the bucket [add] would count [x]
      in: the smallest [i] with [x <= bounds.(i)], or
      [Array.length bounds] for overflow. *)

  val add : t -> int -> unit
  (** Record one sample. *)

  val add_many : t -> int -> int -> unit
  (** [add_many t x n] records [x] with multiplicity [n]. *)

  val counts : t -> int array
  (** Per-bucket counts, length [Array.length bounds + 1]. *)

  val total : t -> int
  (** Total number of recorded samples. *)

  val fractions : t -> float array
  (** Per-bucket fraction of total; all zeros when empty. *)

  val merge : t -> t -> t
  (** Bucket-wise sum; both histograms must share the same bounds. *)

  val bounds : t -> int array
  (** The bucket upper bounds the histogram was created with. *)
end
