(** Named scenario mixes, so the CLI, the bench suite and CI all speak
    the same vocabulary:

    - [duet] / [duet-clone] — crc32 + qsort, originals vs their clones,
      round-robin; the CI gate compares the two runs' per-tenant
      slowdowns.
    - [duet-tight] / [duet-tight-clone] — qsort + dijkstra under a
      deliberately small (8 KB) shared L2: the interference
      demonstration pair.
    - [priority-duet] — crc32 favoured 3:1 over qsort.
    - [quad] / [quad-clone] — four-tenant round-robin mixes. *)

val all : Spec.t list
val names : string list
val find : string -> Spec.t option
