module Json = Pc_util.Json
module Sink = Pc_obs.Sink

let number f =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let json ~(settings : Runner.settings) (results : Runner.result list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"pc-scenario/1\",\"seed\":%d,\"budget\":%d,\"sample\":%s,\"scenarios\":["
       settings.Runner.seed settings.Runner.budget
       (match settings.Runner.sample with
       | None -> "null"
       | Some i -> string_of_int i));
  List.iteri
    (fun i (r : Runner.result) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":%s,\"config\":%s,\"policy\":%s,\"quantum\":%d,\"sampled\":%b,\"weighted_speedup\":%s,\"fairness\":%s,\"tenants\":["
           (Sink.json_string r.Runner.spec.Spec.name)
           (Sink.json_string r.Runner.config_name)
           (Sink.json_string (Spec.policy_name r.Runner.spec.Spec.policy))
           r.Runner.spec.Spec.quantum r.Runner.sampled
           (number r.Runner.weighted_speedup)
           (number r.Runner.fairness));
      List.iteri
        (fun j (t : Runner.tenant_row) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"label\":%s,\"workload\":%s,\"kind\":%s,\"instrs\":%d,\"standalone_ipc\":%s,\"corun_ipc\":%s,\"slowdown\":%s,\"l2_accesses\":%d,\"l2_misses\":%d,\"mem_accesses\":%d}"
               (Sink.json_string t.Runner.label)
               (Sink.json_string t.Runner.workload)
               (Sink.json_string (Spec.kind_name t.Runner.kind))
               t.Runner.instrs
               (number t.Runner.standalone_ipc)
               (number t.Runner.corun_ipc)
               (number t.Runner.slowdown)
               t.Runner.l2_accesses t.Runner.l2_misses t.Runner.mem_accesses))
        r.Runner.tenants;
      Buffer.add_string b "]}")
    results;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_json path ~settings results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json ~settings results);
      output_char oc '\n')

(* --- threshold gate (check_baselines scenario) --- *)

let schema_of doc = Option.bind (Json.member "schema" doc) Json.to_string

let scenario_rows doc =
  match Option.bind (Json.member "scenarios" doc) Json.to_list with
  | Some rows -> rows
  | None -> []

let row_name row =
  Option.value ~default:"?"
    (Option.bind (Json.member "name" row) Json.to_string)

let tenant_rows row =
  match Option.bind (Json.member "tenants" row) Json.to_list with
  | Some rows -> rows
  | None -> []

let finite_field name row =
  match Json.member name row with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some Json.Null -> Error (Printf.sprintf "non-finite %S" name)
  | Some v -> (
    match Json.to_float v with
    | Some f when Float.is_finite f -> Ok f
    | Some _ -> Error (Printf.sprintf "non-finite %S" name)
    | None -> Error (Printf.sprintf "non-numeric %S" name))

let check ~thresholds ~report =
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  (match schema_of thresholds with
  | Some "pc-scenario-thresholds/1" -> ()
  | s ->
    issue "thresholds: expected schema pc-scenario-thresholds/1, got %s"
      (Option.value ~default:"<none>" s));
  (match schema_of report with
  | Some "pc-scenario/1" -> ()
  | s ->
    issue "report: expected schema pc-scenario/1, got %s"
      (Option.value ~default:"<none>" s));
  let rows = scenario_rows report in
  if rows = [] then issue "report: no scenarios";
  let find_scenario name =
    List.find_opt (fun row -> row_name row = name) rows
  in
  (* per-scenario bounds *)
  (match Json.member "scenarios" thresholds with
  | None -> ()
  | Some (Json.Obj bounds) ->
    List.iter
      (fun (name, bound) ->
        match find_scenario name with
        | None -> issue "thresholds: scenario %S not in report" name
        | Some row ->
          let bound_value key =
            Option.bind (Json.member key bound) Json.to_float
          in
          (match bound_value "min_fairness" with
          | None -> ()
          | Some b -> (
            match finite_field "fairness" row with
            | Error msg -> issue "%s: %s" name msg
            | Ok v ->
              if v < b then
                issue "%s: fairness = %.6f below min %.6f" name v b));
          (match bound_value "min_weighted_speedup" with
          | None -> ()
          | Some b -> (
            match finite_field "weighted_speedup" row with
            | Error msg -> issue "%s: %s" name msg
            | Ok v ->
              if v < b then
                issue "%s: weighted_speedup = %.6f below min %.6f" name v b));
          (match bound_value "max_slowdown" with
          | None -> ()
          | Some b ->
            List.iter
              (fun t ->
                let label =
                  Option.value ~default:"?"
                    (Option.bind (Json.member "label" t) Json.to_string)
                in
                match finite_field "slowdown" t with
                | Error msg -> issue "%s/%s: %s" name label msg
                | Ok v ->
                  if v > b then
                    issue "%s/%s: slowdown = %.6f exceeds max %.6f" name label
                      v b)
              (tenant_rows row)))
      bounds
  | Some _ -> issue "thresholds: \"scenarios\" must be an object");
  (* clone-vs-original pairs: tenants matched by slot position *)
  (match Json.member "pairs" thresholds with
  | None -> ()
  | Some (Json.List pairs) ->
    List.iter
      (fun pair ->
        let str key = Option.bind (Json.member key pair) Json.to_string in
        match (str "original", str "clone",
               Option.bind (Json.member "max_slowdown_gap" pair) Json.to_float)
        with
        | Some o, Some c, Some gap -> (
          match (find_scenario o, find_scenario c) with
          | Some orow, Some crow ->
            let ots = tenant_rows orow and cts = tenant_rows crow in
            if List.length ots <> List.length cts then
              issue "pair %s/%s: tenant counts differ (%d vs %d)" o c
                (List.length ots) (List.length cts)
            else
              List.iteri
                (fun i (ot, ct) ->
                  match (finite_field "slowdown" ot, finite_field "slowdown" ct) with
                  | Ok so, Ok sc ->
                    let d = Float.abs (so -. sc) in
                    if d > gap then
                      issue
                        "pair %s/%s slot %d: slowdown gap %.6f exceeds max %.6f \
                         (original %.6f, clone %.6f)"
                        o c i d gap so sc
                  | Error msg, _ -> issue "pair %s/%s slot %d: %s" o c i msg
                  | _, Error msg -> issue "pair %s/%s slot %d: %s" o c i msg)
                (List.combine ots cts)
          | None, _ -> issue "pair: scenario %S not in report" o
          | _, None -> issue "pair: scenario %S not in report" c)
        | _ ->
          issue
            "thresholds: each pair needs \"original\", \"clone\" and \
             \"max_slowdown_gap\"")
      pairs
  | Some _ -> issue "thresholds: \"pairs\" must be a list");
  List.rev !issues

(* --- console table --- *)

let pp ppf (results : Runner.result list) =
  List.iter
    (fun (r : Runner.result) ->
      Format.fprintf ppf "scenario %s  (config %s, policy %s, quantum %d%s)@."
        r.Runner.spec.Spec.name r.Runner.config_name
        (Spec.policy_name r.Runner.spec.Spec.policy)
        r.Runner.spec.Spec.quantum
        (if r.Runner.sampled then ", sampled" else "");
      Format.fprintf ppf "  %-20s %-8s %10s %10s %10s %9s@." "tenant" "kind"
        "instrs" "alone-ipc" "corun-ipc" "slowdown";
      List.iter
        (fun (t : Runner.tenant_row) ->
          Format.fprintf ppf "  %-20s %-8s %10d %10.4f %10.4f %9.4f@."
            t.Runner.label
            (Spec.kind_name t.Runner.kind)
            t.Runner.instrs t.Runner.standalone_ipc t.Runner.corun_ipc
            t.Runner.slowdown)
        r.Runner.tenants;
      Format.fprintf ppf "  weighted speedup %.4f, fairness %.4f@."
        r.Runner.weighted_speedup r.Runner.fairness)
    results
