module Cache = Pc_caches.Cache

(* The interference demonstration geometry: the embedded kernels fit
   their data in the base 16 KB L1-D, so a tight scenario shrinks the
   L1-D until data traffic reaches the L2 and shares an L2 small enough
   that two tenants' resident sets visibly evict each other.  The
   standalone baselines use the same geometry, so the slowdown it
   produces is pure co-run interference. *)
let tight_l1d = Cache.config ~size_bytes:512 ~assoc:2 ~line_bytes:32 ()
let tight_l2 = Cache.config ~size_bytes:(2 * 1024) ~assoc:4 ~line_bytes:64 ()

let all =
  [
    Spec.v ~name:"duet" [ Spec.tenant "crc32"; Spec.tenant "qsort" ];
    Spec.v ~name:"duet-clone"
      [ Spec.tenant ~kind:Spec.Clone "crc32"; Spec.tenant ~kind:Spec.Clone "qsort" ];
    Spec.v ~name:"duet-tight" ~shared_l2:tight_l2 ~l1d:tight_l1d
      [ Spec.tenant "qsort"; Spec.tenant "dijkstra" ];
    Spec.v ~name:"duet-tight-clone" ~shared_l2:tight_l2 ~l1d:tight_l1d
      [ Spec.tenant ~kind:Spec.Clone "qsort"; Spec.tenant ~kind:Spec.Clone "dijkstra" ];
    Spec.v ~name:"priority-duet" ~policy:(Spec.Priority [ 3; 1 ])
      [ Spec.tenant "crc32"; Spec.tenant "qsort" ];
    Spec.v ~name:"quad"
      [
        Spec.tenant "crc32";
        Spec.tenant "qsort";
        Spec.tenant "sha";
        Spec.tenant "dijkstra";
      ];
    Spec.v ~name:"quad-clone"
      [
        Spec.tenant ~kind:Spec.Clone "crc32";
        Spec.tenant ~kind:Spec.Clone "qsort";
        Spec.tenant ~kind:Spec.Clone "sha";
        Spec.tenant ~kind:Spec.Clone "dijkstra";
      ];
  ]

let names = List.map (fun (s : Spec.t) -> s.Spec.name) all

let find name = List.find_opt (fun (s : Spec.t) -> s.Spec.name = name) all
