(** Scenario specifications: which workloads (or their clones) share the
    machine, how the arbiter interleaves them, and an optional shared-L2
    geometry override.

    A spec is purely symbolic — workload names, not compiled programs —
    so it can come from the preset table ({!Presets}) or from a
    [pc-scenario-config/1] JSON file, and the runner resolves names
    against {!Pc_workloads.Registry} / the cloning pipeline. *)

type kind =
  | Original  (** the registry benchmark itself *)
  | Clone  (** its synthetic clone from the cloning pipeline *)

val kind_name : kind -> string

type tenant = { workload : string; kind : kind; count : int }

type policy =
  | Round_robin  (** equal quanta in fixed slot order *)
  | Priority of int list
      (** per-slot weights (one per expanded slot, in order); slot [i]
          receives [w_i] quanta per arbiter round *)

val policy_name : policy -> string

type t = {
  name : string;
  tenants : tenant list;
  policy : policy;
  quantum : int;  (** arbiter quantum in instructions *)
  shared_l2 : Pc_caches.Cache.config option;
      (** replaces the base config's L2 geometry on both the I- and the
          D-side when set; the standalone baselines use the same
          effective config, so slowdowns always measure co-run
          interference, never a geometry change *)
  l1d : Pc_caches.Cache.config option;
      (** replaces the base config's L1 D-cache geometry when set.  The
          interference presets shrink the L1-D so data traffic actually
          reaches the shared L2 — the embedded kernels otherwise fit
          their working sets in the base 16 KB L1 and nothing contends.
          Applied to the baselines too, like [shared_l2]. *)
}

val default_quantum : int
(** {!Pc_funcsim.Machine.batch_capacity} (4096): one funcsim chunk per
    arbiter turn keeps the hot loop batched. *)

val tenant : ?kind:kind -> ?count:int -> string -> tenant
(** [kind] defaults to [Original]; [count] (default 1) must be
    positive. *)

val v :
  ?policy:policy ->
  ?quantum:int ->
  ?shared_l2:Pc_caches.Cache.config ->
  ?l1d:Pc_caches.Cache.config ->
  name:string ->
  tenant list ->
  t
(** Validating constructor.  Raises [Invalid_argument] for an empty
    tenant list, a non-positive quantum, or a [Priority] weight list
    whose length differs from the expanded slot count. *)

val n_tenants : t -> int
(** Expanded slot count (sum of tenant [count]s). *)

val slots : t -> (string * string * kind) array
(** The expanded per-slot view, in arbiter order: [(label, workload,
    kind)].  Labels are the workload name, [:clone]-suffixed for
    clones, and [#i]-suffixed when the same (workload, kind) occupies
    several slots — unique within the scenario and fully determined by
    the spec. *)

val weights : t -> int array
(** Per-slot arbiter weights: all 1 for [Round_robin], the given list
    for [Priority]. *)

val effective_config : t -> Pc_uarch.Config.t -> Pc_uarch.Config.t
(** The base timing configuration with the spec's [shared_l2] override
    applied to both cache sides (and the config name suffixed); the
    identity when there is no override. *)

(** {1 pc-scenario-config/1}

    [{"schema": "pc-scenario-config/1", "scenarios": [{"name": ...,
    "tenants": [{"workload": "crc32", "kind": "original", "count": 1},
    ...], "policy": "round-robin" | {"priority": [3, 1]},
    "quantum": 4096, "l2": {"size_bytes": ..., "assoc": ...,
    "line_bytes": ...}, "l1d": {...}}]}] — [kind], [count], [policy],
    [quantum], [l2] and [l1d] are optional. *)

val of_json : Pc_util.Json.t -> (t list, string) result
val load_file : string -> (t list, string) result
