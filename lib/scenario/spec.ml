module Cache = Pc_caches.Cache
module Hierarchy = Pc_caches.Hierarchy
module Json = Pc_util.Json

type kind = Original | Clone

let kind_name = function Original -> "original" | Clone -> "clone"

type tenant = { workload : string; kind : kind; count : int }

type policy = Round_robin | Priority of int list

let policy_name = function
  | Round_robin -> "round-robin"
  | Priority ws ->
    "priority:" ^ String.concat "," (List.map string_of_int ws)

type t = {
  name : string;
  tenants : tenant list;
  policy : policy;
  quantum : int;
  shared_l2 : Cache.config option;
  l1d : Cache.config option;
}

let default_quantum = Pc_funcsim.Machine.batch_capacity

let tenant ?(kind = Original) ?(count = 1) workload =
  if count < 1 then invalid_arg "Spec.tenant: count must be positive";
  { workload; kind; count }

let n_tenants t = List.fold_left (fun acc tn -> acc + tn.count) 0 t.tenants

let v ?(policy = Round_robin) ?(quantum = default_quantum) ?shared_l2 ?l1d
    ~name tenants =
  if tenants = [] then invalid_arg "Spec.v: a scenario needs tenants";
  if quantum < 1 then invalid_arg "Spec.v: quantum must be positive";
  let t = { name; tenants; policy; quantum; shared_l2; l1d } in
  (match policy with
  | Round_robin -> ()
  | Priority ws ->
    if List.length ws <> n_tenants t then
      invalid_arg "Spec.v: one priority weight per tenant slot";
    if List.exists (fun w -> w < 1) ws then
      invalid_arg "Spec.v: priority weights must be positive");
  t

(* Expanded per-slot view: [count] is flattened and duplicate
   (workload, kind) slots get a stable [#i] suffix, so labels are unique
   within a scenario and independent of everything but the spec. *)
let slots t =
  let expanded =
    List.concat_map
      (fun tn -> List.init tn.count (fun _ -> (tn.workload, tn.kind)))
      t.tenants
  in
  let total (w, k) =
    List.length (List.filter (fun s -> s = (w, k)) expanded)
  in
  let seen = Hashtbl.create 8 in
  List.map
    (fun (w, k) ->
      let base = match k with Original -> w | Clone -> w ^ ":clone" in
      let label =
        if total (w, k) > 1 then begin
          let i = Option.value ~default:0 (Hashtbl.find_opt seen base) in
          Hashtbl.replace seen base (i + 1);
          Printf.sprintf "%s#%d" base i
        end
        else base
      in
      (label, w, k))
    expanded
  |> Array.of_list

let weights t =
  match t.policy with
  | Round_robin -> Array.make (n_tenants t) 1
  | Priority ws -> Array.of_list ws

let effective_config t (base : Pc_uarch.Config.t) =
  let base =
    match t.l1d with
    | None -> base
    | Some l1 ->
      {
        base with
        Pc_uarch.Config.dcache =
          { base.Pc_uarch.Config.dcache with Hierarchy.l1 };
        name =
          Printf.sprintf "%s+d$%s" base.Pc_uarch.Config.name
            (Cache.config_name l1);
      }
  in
  match t.shared_l2 with
  | None -> base
  | Some l2 ->
    let side (h : Hierarchy.config) = { h with Hierarchy.l2 = Some l2 } in
    {
      base with
      Pc_uarch.Config.icache = side base.Pc_uarch.Config.icache;
      dcache = side base.Pc_uarch.Config.dcache;
      name =
        Printf.sprintf "%s+l2:%s" base.Pc_uarch.Config.name
          (Cache.config_name l2);
    }

(* --- pc-scenario-config/1 --- *)

let ( let* ) = Result.bind

let field name row =
  match Json.member name row with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name v =
  match Json.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S must be an integer" name)

let as_string name v =
  match Json.to_string v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" name)

let tenant_of_json row =
  let* workload = Result.bind (field "workload" row) (as_string "workload") in
  let* kind =
    match Json.member "kind" row with
    | None -> Ok Original
    | Some v -> (
      match Json.to_string v with
      | Some "original" -> Ok Original
      | Some "clone" -> Ok Clone
      | _ -> Error "field \"kind\" must be \"original\" or \"clone\"")
  in
  let* count =
    match Json.member "count" row with
    | None -> Ok 1
    | Some v -> as_int "count" v
  in
  if count < 1 then Error "field \"count\" must be positive"
  else Ok { workload; kind; count }

let policy_of_json = function
  | None -> Ok Round_robin
  | Some (Json.Str "round-robin") -> Ok Round_robin
  | Some (Json.Obj _ as o) -> (
    match Json.member "priority" o with
    | Some (Json.List ws) ->
      let* ws =
        List.fold_right
          (fun w acc ->
            let* acc = acc in
            let* w = as_int "priority" w in
            Ok (w :: acc))
          ws (Ok [])
      in
      Ok (Priority ws)
    | _ -> Error "policy object must be {\"priority\": [..]}")
  | Some _ -> Error "field \"policy\" must be \"round-robin\" or {\"priority\": [..]}"

let cache_of_json row =
  let* size = Result.bind (field "size_bytes" row) (as_int "size_bytes") in
  let* assoc = Result.bind (field "assoc" row) (as_int "assoc") in
  let* line = Result.bind (field "line_bytes" row) (as_int "line_bytes") in
  match
    Cache.config ~size_bytes:size ~assoc ~line_bytes:line ()
  with
  | cfg -> Ok cfg
  | exception Invalid_argument msg -> Error msg

let scenario_of_json row =
  let* name = Result.bind (field "name" row) (as_string "name") in
  let* tenants =
    match Json.member "tenants" row with
    | Some (Json.List rows) ->
      List.fold_right
        (fun r acc ->
          let* acc = acc in
          let* t = tenant_of_json r in
          Ok (t :: acc))
        rows (Ok [])
    | _ -> Error "field \"tenants\" must be a list"
  in
  let* policy = policy_of_json (Json.member "policy" row) in
  let* quantum =
    match Json.member "quantum" row with
    | None -> Ok default_quantum
    | Some v -> as_int "quantum" v
  in
  let* shared_l2 =
    match Json.member "l2" row with
    | None -> Ok None
    | Some o ->
      let* cfg = cache_of_json o in
      Ok (Some cfg)
  in
  let* l1d =
    match Json.member "l1d" row with
    | None -> Ok None
    | Some o ->
      let* cfg = cache_of_json o in
      Ok (Some cfg)
  in
  match v ~policy ~quantum ?shared_l2 ?l1d ~name tenants with
  | spec -> Ok spec
  | exception Invalid_argument msg -> Error msg

let with_scenario_context name r =
  Result.map_error (fun msg -> Printf.sprintf "scenario %S: %s" name msg) r

let of_json doc =
  let* () =
    match Option.bind (Json.member "schema" doc) Json.to_string with
    | Some "pc-scenario-config/1" -> Ok ()
    | s ->
      Error
        (Printf.sprintf "expected schema pc-scenario-config/1, got %s"
           (Option.value ~default:"<none>" s))
  in
  match Json.member "scenarios" doc with
  | Some (Json.List rows) ->
    List.fold_right
      (fun r acc ->
        let* acc = acc in
        let name =
          Option.value ~default:"?"
            (Option.bind (Json.member "name" r) Json.to_string)
        in
        let* s = with_scenario_context name (scenario_of_json r) in
        Ok (s :: acc))
      rows (Ok [])
  | _ -> Error "field \"scenarios\" must be a list"

let load_file path =
  let* doc = Json.parse_file path in
  of_json doc
