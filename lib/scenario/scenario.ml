module I = Pc_isa.Instr
module Machine = Pc_funcsim.Machine
module Cache = Pc_caches.Cache
module Hierarchy = Pc_caches.Hierarchy
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Sample = Pc_sample.Sample

(* Tenant tags sit above every address the machine can generate: data
   addresses stay below the funcsim stack base (< 2^23) and instruction
   fetches are [4 * pc] with pc below the packed-trace limit (2^22), so
   bit 26 onward is free.  A constant high-bit tag changes neither the
   L1 set index nor its hit pattern; it only keeps tenants' lines
   distinct in the shared L2. *)
let tag_shift = 26

type source =
  | From_machine of Machine.t
  | From_trace of {
      statics : Machine.statics;
      trace : int array;
      marks : int array;
    }

type tenant_input = { label : string; budget : int; source : source }

type tenant_result = {
  label : string;
  result : Sim.result;
  fed : int;
  mark_cycles : int array;
}

type src_state =
  | S_machine of Machine.t * Machine.statics * Machine.event
  | S_trace of {
      statics : Machine.statics;
      trace : int array;
      marks : int array;
      mutable pos : int;
      mutable mark_idx : int;
    }

type tstate = {
  t_label : string;
  sim : Sim.state;
  src : src_state;
  t_mark_cycles : int array;
  mutable remaining : int;
  mutable active : bool;
}

(* Reconstruct retired events from a chunk exactly the way the engine's
   own [deliver_events] does (the timing model never reads [next_pc],
   so it is left alone). *)
let deliver_batch statics ev sim (batch : Machine.batch) =
  let classes = statics.Machine.s_classes in
  let reads = statics.Machine.s_read_lists in
  let writes = statics.Machine.s_write_ids in
  for j = 0 to batch.Machine.len - 1 do
    let pc = batch.Machine.b_pc.(j) in
    let cls = classes.(pc) in
    ev.Machine.pc <- pc;
    ev.Machine.iclass <- cls;
    ev.Machine.mem_addr <-
      (if cls = I.C_load || cls = I.C_store then batch.Machine.b_addr.(j)
       else -1);
    ev.Machine.is_store <- cls = I.C_store;
    ev.Machine.is_branch <- cls = I.C_branch;
    ev.Machine.taken <- ev.Machine.is_branch && batch.Machine.b_taken.(j);
    ev.Machine.reads <- reads.(pc);
    ev.Machine.writes <- writes.(pc);
    Sim.feed sim ev
  done

let fresh_event () =
  {
    Machine.pc = 0;
    iclass = I.C_other;
    mem_addr = -1;
    is_store = false;
    is_branch = false;
    taken = false;
    next_pc = 0;
    reads = [];
    writes = -1;
  }

let co_run ?(quantum = Machine.batch_capacity) ?weights (cfg : Config.t)
    inputs =
  if quantum < 1 then invalid_arg "Scenario.co_run: quantum must be positive";
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Scenario.co_run: no tenants";
  let weights =
    match weights with
    | None -> Array.make n 1
    | Some ws ->
      if Array.length ws <> n then
        invalid_arg "Scenario.co_run: one weight per tenant";
      if Array.exists (fun w -> w < 1) ws then
        invalid_arg "Scenario.co_run: weights must be positive";
      ws
  in
  (* One shared L2 instance per cache side: the standalone base config
     gives the I- and D-hierarchies private L2s, so a faithful
     multi-tenant extension shares each side's L2 across tenants rather
     than unifying the sides (a 1-tenant scenario then degenerates to
     exactly the standalone machine). *)
  let i_l2 = Option.map Cache.create cfg.Config.icache.Hierarchy.l2 in
  let d_l2 = Option.map Cache.create cfg.Config.dcache.Hierarchy.l2 in
  let tenants =
    Array.mapi
      (fun i (inp : tenant_input) ->
        let tag = i lsl tag_shift in
        let icache =
          Hierarchy.create_shared ~tag ~l2:i_l2 cfg.Config.icache
        in
        let dcache =
          Hierarchy.create_shared ~tag ~l2:d_l2 cfg.Config.dcache
        in
        let sim = Sim.create ~icache ~dcache cfg in
        let src, marks =
          match inp.source with
          | From_machine m -> (S_machine (m, Machine.statics m, fresh_event ()), [||])
          | From_trace { statics; trace; marks } ->
            ( S_trace
                { statics; trace; marks = Array.copy marks; pos = 0; mark_idx = 0 },
              Array.make (Array.length marks) 0 )
        in
        {
          t_label = inp.label;
          sim;
          src;
          t_mark_cycles = marks;
          remaining = max 0 inp.budget;
          active = max 0 inp.budget > 0;
        })
      inputs
  in
  let feed_quota (t : tstate) quota =
    match t.src with
    | S_machine (m, statics, ev) ->
      let ran =
        Machine.run_batched ~max_instrs:quota m
          (deliver_batch statics ev t.sim)
      in
      if Machine.halted m then t.active <- false;
      ran
    | S_trace s ->
      let record_marks () =
        while
          s.mark_idx < Array.length s.marks && s.marks.(s.mark_idx) = s.pos
        do
          t.t_mark_cycles.(s.mark_idx) <- Sim.committed_cycle t.sim;
          s.mark_idx <- s.mark_idx + 1
        done
      in
      let total = Array.length s.trace in
      let goal = min (s.pos + quota) total in
      let ran = ref 0 in
      record_marks ();
      while s.pos < goal do
        (* stop at the next mark inside this quota so the commit clock
           is read exactly at the window boundary *)
        let stop =
          if s.mark_idx < Array.length s.marks then
            min goal s.marks.(s.mark_idx)
          else goal
        in
        let len = stop - s.pos in
        ignore
          (Sample.replay_slice s.statics s.trace ~pos:s.pos ~len (fun ev ->
               Sim.feed t.sim ev));
        s.pos <- stop;
        ran := !ran + len;
        record_marks ()
      done;
      if s.pos >= total then t.active <- false;
      !ran
  in
  let active = ref 0 in
  Array.iter (fun t -> if t.active then incr active) tenants;
  while !active > 0 do
    for i = 0 to n - 1 do
      let t = tenants.(i) in
      if t.active then begin
        let quota = min (quantum * weights.(i)) t.remaining in
        let ran = feed_quota t quota in
        t.remaining <- t.remaining - ran;
        if t.remaining = 0 then t.active <- false;
        if not t.active then decr active
      end
    done
  done;
  Array.map
    (fun t ->
      let fed = Sim.fed_instrs t.sim in
      {
        label = t.t_label;
        result = Sim.finish ~instrs:fed t.sim;
        fed;
        mark_cycles = t.t_mark_cycles;
      })
    tenants
