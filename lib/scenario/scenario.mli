(** The multi-tenant co-run engine: N retired-instruction streams
    interleaved onto N copies of the timing model whose private L1s
    drain into one shared L2 per cache side.

    Arbitration is a weighted round-robin over instruction quanta in
    fixed slot order: each arbiter round gives slot [i] up to
    [quantum * weights.(i)] retired instructions, delivered through
    {!Pc_funcsim.Machine.run_batched} chunks (live tenants) or
    {!Pc_sample.Sample.replay_slice} (packed-trace tenants), so the hot
    loop stays batched.  The shared L2s therefore observe tenants'
    accesses in a deterministic contention order — the whole co-run is
    a pure function of (config, inputs, quantum, weights).

    Each tenant's scheduling state keeps its own commit clock
    (instruction-quantum interleaving, the standard trace-driven
    approximation of simultaneous execution); cross-tenant interference
    flows through the shared L2 state, which is where co-run slowdown
    comes from.  Per-tenant L2 access/miss counts stay exact because
    {!Pc_caches.Hierarchy} tracks them per hierarchy.

    With a single tenant the engine is bit-identical to the standalone
    {!Pc_uarch.Sim.run}: tenant 0's tag is 0 and each shared L2 is a
    fresh instance of the config's geometry — the property
    [test/test_scenario.ml] checks. *)

type source =
  | From_machine of Pc_funcsim.Machine.t
      (** a live functional machine, freshly loaded; the engine runs it
          in budgeted bursts (machines resume across calls) *)
  | From_trace of {
      statics : Pc_funcsim.Machine.statics;
      trace : int array;  (** packed replay events *)
      marks : int array;
          (** sorted trace positions at which to record the tenant's
              commit clock (sampled scenarios pass each representative's
              window boundaries) *)
    }

type tenant_input = {
  label : string;
  budget : int;  (** instruction budget; the stream may end earlier *)
  source : source;
}

type tenant_result = {
  label : string;
  result : Pc_uarch.Sim.result;
      (** per-tenant timing result over the instructions actually fed *)
  fed : int;
  mark_cycles : int array;
      (** the tenant's commit clock at each requested mark, in mark
          order (empty for {!From_machine} tenants) *)
}

val co_run :
  ?quantum:int ->
  ?weights:int array ->
  Pc_uarch.Config.t ->
  tenant_input array ->
  tenant_result array
(** Run every tenant to its budget (or the end of its stream) under the
    shared-L2 machine; results are in slot order.  [quantum] defaults
    to {!Pc_funcsim.Machine.batch_capacity}, [weights] to all-1
    (round-robin).  Raises [Invalid_argument] for no tenants, a
    non-positive quantum, a weight list of the wrong length or a
    non-positive weight. *)
