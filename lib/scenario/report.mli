(** [pc-scenario/1] emission, the scenario threshold gate and the
    console table.

    The artefact:

    [{"schema": "pc-scenario/1", "seed": .., "budget": .., "sample":
    null | interval, "scenarios": [{"name": .., "config": ..,
    "policy": .., "quantum": .., "sampled": bool, "weighted_speedup":
    .., "fairness": .., "tenants": [{"label": .., "workload": ..,
    "kind": "original" | "clone", "instrs": .., "standalone_ipc": ..,
    "corun_ipc": .., "slowdown": .., "l2_accesses": ..,
    "l2_misses": .., "mem_accesses": ..}]}]}]

    Scenarios appear in run order and tenants in arbiter slot order, and
    every float is formatted with [%.6f] (non-finite values become
    [null]), so the document is byte-identical across [-j] widths and
    across runs — the property CI and the test suite rely on. *)

val json : settings:Runner.settings -> Runner.result list -> string
val write_json : string -> settings:Runner.settings -> Runner.result list -> unit
(** {!json} plus a trailing newline. *)

val check :
  thresholds:Pc_util.Json.t -> report:Pc_util.Json.t -> string list
(** Gate a [pc-scenario/1] report against a
    [pc-scenario-thresholds/1] document; returns human-readable issues
    (empty = pass).  Thresholds:

    [{"schema": "pc-scenario-thresholds/1", "scenarios": {"<name>":
    {"max_slowdown": .., "min_fairness": .., "min_weighted_speedup":
    ..}}, "pairs": [{"original": "<name>", "clone": "<name>",
    "max_slowdown_gap": ..}]}]

    Scenario bounds apply [max_slowdown] to every tenant of the named
    scenario and the [min_*] bounds to its aggregates.  Each pair
    matches an original-mix scenario with its clone-mix twin by tenant
    slot position and requires the per-slot slowdowns to agree within
    [max_slowdown_gap] — the clone-fidelity claim for co-run
    interference, gated in CI by [check_baselines scenario]. *)

val pp : Format.formatter -> Runner.result list -> unit
