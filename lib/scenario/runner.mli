(** The scenario driver: resolve a {!Spec.t}'s tenants to programs
    (registry originals or pipeline clones), run the standalone
    baselines and the shared-L2 co-run, and fold both into per-tenant
    slowdown rows plus scenario-level weighted speedup and fairness.

    Everything is deterministic for fixed settings, and all memo stores
    are keyed structurally, so {!run} is bit-identical at every pool
    width and across repeated invocations. *)

type settings = {
  seed : int;  (** clone-generation and sampling seed *)
  profile_instrs : int;  (** profiling budget for clone tenants *)
  clone_dynamic : int;  (** clone target dynamic length *)
  budget : int;  (** per-tenant instruction budget *)
  sample : int option;
      (** [Some interval]: price tenants by SimPoint-style sampled
          co-run — each tenant feeds its representatives' packed traces
          through the arbiter and its windows are priced at the commit
          cycles the co-run charged them; standalone baselines use
          {!Pc_sample.Sample.project_sim} under the same plan.  With
          sampling on, a tenant row's raw L2/memory counters cover only
          the replayed instructions. *)
}

val default_settings : settings
(** seed 1, 1M profile instructions, 100k clone target, 2M per-tenant
    budget, no sampling. *)

val quick_settings : settings
(** 300k profile instructions and a 500k budget, for tests and CI. *)

type tenant_row = {
  label : string;
  workload : string;
  kind : Spec.kind;
  instrs : int;  (** instructions the row's figures cover *)
  standalone_ipc : float;  (** alone on the same effective config *)
  corun_ipc : float;
  slowdown : float;  (** [standalone_ipc /. corun_ipc] *)
  l2_accesses : int;  (** per-tenant, even under the shared L2 *)
  l2_misses : int;
  mem_accesses : int;
}

type result = {
  spec : Spec.t;
  config_name : string;
  sampled : bool;
  tenants : tenant_row list;  (** in arbiter slot order *)
  weighted_speedup : float;
      (** [sum_i corun_ipc_i / standalone_ipc_i] — N for interference-free
          co-running *)
  fairness : float;
      (** Jain's index over the per-tenant speedups: 1 when everyone is
          slowed equally, [1/N] when one tenant monopolises *)
}

val run_spec : settings -> Spec.t -> result
(** Run one scenario.  Publishes the [scenario.*] metrics and a
    [scenario:<name>] instant event, inside a [scenario:run] span.
    Raises [Invalid_argument] for a tenant workload not in
    {!Pc_workloads.Registry}. *)

val run : ?pool:Pc_exec.Pool.t -> settings -> Spec.t list -> result list
(** Fan scenarios out through the pool (default serial); results are in
    input order and bit-identical at every pool width.  Standalone
    baselines, clone programs and sampling plans are memoized across
    scenarios, so a mix and its clone twin share baseline work. *)

val clear_caches : unit -> unit
(** Empty the runner's memo stores (tests use this to compare cold
    serial and parallel runs). *)
