module Machine = Pc_funcsim.Machine
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Sample = Pc_sample.Sample
module Registry = Pc_workloads.Registry
module Pipeline = Perfclone.Pipeline
module Store = Pc_exec.Store
module Pool = Pc_exec.Pool
module M = Pc_obs.Metrics

module Log = (val Logs.src_log (Logs.Src.create "pc.scenario") : Logs.LOG)

type settings = {
  seed : int;
  profile_instrs : int;
  clone_dynamic : int;
  budget : int;
  sample : int option;
}

let default_settings =
  {
    seed = 1;
    profile_instrs = 1_000_000;
    clone_dynamic = 100_000;
    budget = 2_000_000;
    sample = None;
  }

let quick_settings =
  { default_settings with profile_instrs = 300_000; budget = 500_000 }

type tenant_row = {
  label : string;
  workload : string;
  kind : Spec.kind;
  instrs : int;
  standalone_ipc : float;
  corun_ipc : float;
  slowdown : float;
  l2_accesses : int;
  l2_misses : int;
  mem_accesses : int;
}

type result = {
  spec : Spec.t;
  config_name : string;
  sampled : bool;
  tenants : tenant_row list;
  weighted_speedup : float;
  fairness : float;
}

(* --- memo stores (shared across scenarios and pool workers) --- *)

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let program_store : (string, Pc_isa.Program.t) Store.t =
  Store.create ~name:"scenario-program" ()

let baseline_store : (string, Sim.result) Store.t =
  Store.create ~name:"scenario-baseline" ()

let plan_store : (string, Sample.plan) Store.t =
  Store.create ~name:"scenario-plan" ()

let clear_caches () =
  Store.clear program_store;
  Store.clear baseline_store;
  Store.clear plan_store

let resolve_program settings workload kind =
  match Registry.find_opt workload with
  | None ->
    invalid_arg (Printf.sprintf "scenario tenant: unknown workload %S" workload)
  | Some entry -> (
    match kind with
    | Spec.Original -> Registry.compile entry
    | Spec.Clone ->
      let key =
        digest
          ( "clone", workload, settings.seed, settings.profile_instrs,
            settings.clone_dynamic )
      in
      Store.find_or_compute program_store key (fun () ->
          (Pipeline.clone_benchmark ~seed:settings.seed
             ~profile_instrs:settings.profile_instrs
             ~target_dynamic:settings.clone_dynamic workload)
            .Pipeline.clone))

let plan_of settings program =
  let interval = Option.get settings.sample in
  let key = digest (program, settings.budget, interval, settings.seed) in
  Store.find_or_compute plan_store key (fun () ->
      Sample.plan ~seed:settings.seed ~interval ~max_instrs:settings.budget
        program)

(* The standalone baseline: the same effective config, the same budget,
   one tenant alone on the machine.  Memoized so duplicate slots, the
   clone scenario of a pair, and repeated invocations share one run. *)
let standalone settings cfg program =
  match settings.sample with
  | None ->
    let key = digest (cfg, program, settings.budget) in
    Store.find_or_compute baseline_store key (fun () ->
        Sim.run ~max_instrs:settings.budget cfg program)
  | Some interval ->
    let key = digest ("sampled", cfg, program, settings.budget, interval, settings.seed) in
    Store.find_or_compute baseline_store key (fun () ->
        Sample.project_sim cfg (plan_of settings program))

(* --- sampled co-run: concatenated representative traces --- *)

type sampled_src = {
  ss_trace : int array;
  ss_marks : int array;  (** window [start; end] per rep, in rep order *)
  ss_plan : Sample.plan;
}

let concat_plan (plan : Sample.plan) =
  let reps = plan.Sample.reps in
  let total =
    Array.fold_left (fun a (r : Sample.rep) -> a + Array.length r.Sample.trace) 0 reps
  in
  let trace = Array.make (max total 1) 0 in
  let marks = Array.make (2 * Array.length reps) 0 in
  let off = ref 0 in
  Array.iteri
    (fun i (r : Sample.rep) ->
      let len = Array.length r.Sample.trace in
      Array.blit r.Sample.trace 0 trace !off len;
      marks.(2 * i) <- !off + min r.Sample.warmup len;
      marks.((2 * i) + 1) <- !off + len;
      off := !off + len)
    reps;
  { ss_trace = Array.sub trace 0 total; ss_marks = marks; ss_plan = plan }

(* Population-weighted CPI over the representatives' windows, priced at
   the commit cycles the co-run charged each window; dead windows (no
   instructions or no cycles) are skipped and their population
   re-attributed pro rata, exactly like {!Pc_sample.Sample.recombine}. *)
let project_corun (src : sampled_src) (mark_cycles : int array) =
  let reps = src.ss_plan.Sample.reps in
  let valid_w = ref 0 in
  let cycles = ref 0.0 in
  Array.iteri
    (fun i (r : Sample.rep) ->
      let wlen =
        Array.length r.Sample.trace
        - min r.Sample.warmup (Array.length r.Sample.trace)
      in
      let dc = mark_cycles.((2 * i) + 1) - mark_cycles.(2 * i) in
      if wlen > 0 && dc > 0 then begin
        valid_w := !valid_w + r.Sample.weight;
        cycles :=
          !cycles
          +. (float_of_int r.Sample.weight *. float_of_int dc /. float_of_int wlen)
      end
      else
        Log.warn (fun m ->
            m "scenario: dead sampled phase %d (window %d instrs, %d cycles)" i
              wlen dc))
    reps;
  if !valid_w = 0 then 1.0 (* CPI degrades to 1.0, like recombine *)
  else !cycles /. float_of_int !valid_w

(* --- observability --- *)

let c_runs = M.counter "scenario.runs"
let c_tenants = M.counter "scenario.tenants"
let c_corun_instrs = M.counter "scenario.corun.instrs"
let g_max_slowdown_bp = M.gauge "scenario.slowdown_bp_max"

let bp v =
  if Float.is_finite v then int_of_float (Float.round (v *. 10_000.0)) else -1

(* --- driving one scenario --- *)

let jain xs =
  match xs with
  | [] -> 1.0
  | _ ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if s2 <= 0.0 then 1.0 else s *. s /. (n *. s2)

let run_spec settings (spec : Spec.t) =
  Pc_obs.Span.with_
    ~args:[ ("scenario", Pc_obs.Event.Str spec.Spec.name) ]
    "scenario:run"
  @@ fun () ->
  let cfg = Spec.effective_config spec Config.base in
  let slots = Spec.slots spec in
  let programs =
    Array.map (fun (_, w, k) -> resolve_program settings w k) slots
  in
  let baselines =
    Array.map (fun program -> standalone settings cfg program) programs
  in
  let sampled_srcs =
    match settings.sample with
    | None -> [||]
    | Some _ ->
      Array.map (fun program -> concat_plan (plan_of settings program)) programs
  in
  let inputs =
    Array.mapi
      (fun i (label, _, _) ->
        match settings.sample with
        | None ->
          {
            Scenario.label;
            budget = settings.budget;
            source = Scenario.From_machine (Machine.load programs.(i));
          }
        | Some _ ->
          let src = sampled_srcs.(i) in
          {
            Scenario.label;
            budget = Array.length src.ss_trace;
            source =
              Scenario.From_trace
                {
                  statics = src.ss_plan.Sample.statics;
                  trace = src.ss_trace;
                  marks = src.ss_marks;
                };
          })
      slots
  in
  let outs =
    Scenario.co_run ~quantum:spec.Spec.quantum ~weights:(Spec.weights spec)
      cfg inputs
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (label, workload, kind) ->
           let out = outs.(i) in
           let base = baselines.(i) in
           let corun_ipc, instrs =
             match settings.sample with
             | None -> (out.Scenario.result.Sim.ipc, out.Scenario.fed)
             | Some _ ->
               let cpi = project_corun sampled_srcs.(i) out.Scenario.mark_cycles in
               (1.0 /. cpi, sampled_srcs.(i).ss_plan.Sample.total_instrs)
           in
           let standalone_ipc = base.Sim.ipc in
           {
             label;
             workload;
             kind;
             instrs;
             standalone_ipc;
             corun_ipc;
             slowdown = standalone_ipc /. corun_ipc;
             l2_accesses = out.Scenario.result.Sim.l2_accesses;
             l2_misses = out.Scenario.result.Sim.l2_misses;
             mem_accesses = out.Scenario.result.Sim.mem_accesses;
           })
         slots)
  in
  let speedups = List.map (fun r -> r.corun_ipc /. r.standalone_ipc) rows in
  let weighted_speedup = List.fold_left ( +. ) 0.0 speedups in
  let fairness = jain speedups in
  M.incr c_runs;
  M.add c_tenants (Array.length slots);
  Array.iter (fun o -> M.add c_corun_instrs o.Scenario.fed) outs;
  List.iter (fun r -> M.record_max g_max_slowdown_bp (bp r.slowdown)) rows;
  Pc_obs.Event.instant
    ("scenario:" ^ spec.Spec.name)
    [
      ("tenants", Pc_obs.Event.Int (Array.length slots));
      ("weighted_speedup_bp", Pc_obs.Event.Int (bp weighted_speedup));
      ("fairness_bp", Pc_obs.Event.Int (bp fairness));
    ];
  {
    spec;
    config_name = cfg.Config.name;
    sampled = settings.sample <> None;
    tenants = rows;
    weighted_speedup;
    fairness;
  }

let run ?(pool = Pool.serial) settings specs =
  Log.info (fun m -> m "running %d scenarios" (List.length specs));
  Pool.map pool (run_spec settings) specs
