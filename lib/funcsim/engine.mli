(** Pre-decoded threaded-dispatch functional simulator core.

    At {!load} the program is decoded exactly once into flat parallel
    tables: an int-coded opcode column (ALU sub-operations, branch
    conditions, resolved-vs-label control transfers and r0-destination
    no-ops all flattened into distinct codes), a packed operand word per
    static pc, immediate columns, and per-pc class / read-list /
    write-id / branch / store columns.  The hot loop is one dense
    integer match over the opcode column — compiled to a jump table with
    every arm inlined — so stepping never inspects an instruction
    variant, calls a function, allocates, or raises except to halt or
    fault.  The integer register file is an unboxed [int64] bigarray and
    memory accesses inline a one-entry page-cache fast path.

    Retired instructions are produced in fixed-size chunks of at most
    {!chunk_size}.  {!run_batched} hands each raw chunk to the consumer
    (cheapest; one callback per ~4096 instructions); {!run} and {!step}
    rebuild classic per-instruction {!event} records from the chunk rows
    and the static tables, which is what keeps the legacy [Machine]
    callback API — and every profiler built on it — byte-identical to
    the reference interpreter ({!Machine_ref}).

    This module is wrapped by {!Machine}; use that from consumers. *)

type event = {
  mutable pc : int;
  mutable iclass : Pc_isa.Instr.iclass;
  mutable mem_addr : int;
  mutable is_store : bool;
  mutable is_branch : bool;
  mutable taken : bool;
  mutable next_pc : int;
  mutable reads : int list;
  mutable writes : int;
}

exception Fault of string

val chunk_size : int
(** Capacity of the chunk buffer (4096 retired instructions). *)

type batch = {
  mutable len : int;  (** valid rows, [0 < len <= chunk_size] *)
  b_pc : int array;  (** static pc per retired instruction *)
  b_addr : int array;
      (** effective byte address — meaningful only for rows whose
          static pc is a load or store (check {!statics}); other rows
          hold stale values from earlier chunks *)
  b_taken : bool array;
      (** conditional-branch outcome — meaningful only for rows whose
          static pc is a branch; other rows hold stale values *)
  mutable b_end_pc : int;
      (** the machine's pc after the last row: row [j]'s next dynamic
          pc is [b_pc.(j + 1)], or [b_end_pc] for the final row (after
          a fault flush this is the faulting instruction's pc) *)
}
(** One chunk of retired instructions.  Together with {!statics} a row
    reconstructs the full retired event; the hot loop stores only what
    each instruction actually produces, so non-memory rows do not blank
    [b_addr] and next-pc values are derived rather than stored.  The
    buffer is owned by the machine and reused for every chunk:
    consumers must copy anything they retain past the callback. *)

type statics = {
  s_classes : Pc_isa.Instr.iclass array;
  s_read_lists : int list array;
  s_write_ids : int array;
}

type t

val load : Pc_isa.Program.t -> t
val step : t -> (event -> unit) -> bool
val run : ?max_instrs:int -> t -> (event -> unit) -> int

val run_batched : ?max_instrs:int -> t -> (batch -> unit) -> int
(** Like {!run} but delivers retired instructions in chunks of at most
    {!chunk_size} rows, amortising the callback over ~4096 retirements.
    The final chunk is partial when the program halts or the budget runs
    out mid-chunk; on a fault, rows retired before the faulting
    instruction are flushed to the consumer before the exception
    propagates.  Publishes the same per-run metrics as {!run}. *)

val statics : t -> statics
val halted : t -> bool
val instruction_count : t -> int
val retired_by_class : t -> int array
val ireg : t -> Pc_isa.Reg.t -> int64
val freg : t -> Pc_isa.Reg.t -> float
val memory : t -> Memory.t

val decoded : t -> int -> int * int * int * int * int
(** [(opcode, dst, src_a, src_b, imm)] row of the decode table at a
    static pc (register/operand columns are [-1] when absent).  For
    tests and debugging. *)
