open Pc_isa
module A1 = Bigarray.Array1

type event = {
  mutable pc : int;
  mutable iclass : Instr.iclass;
  mutable mem_addr : int;
  mutable is_store : bool;
  mutable is_branch : bool;
  mutable taken : bool;
  mutable next_pc : int;
  mutable reads : int list;
  mutable writes : int;
}

exception Fault of string

(* Internal: raised by the Halt arm to leave the dispatch loop without
   testing a halt flag on every iteration (the inner loop condition
   stays a single register compare). *)
exception Chunk_done

let chunk_size = 4096

(* Structure-of-arrays chunk of retired instructions.  [b_addr.(j)] is
   meaningful only when row [j]'s static is a memory operation and
   [b_taken.(j)] only when it is a branch (per {!statics}); other rows
   hold stale values from earlier chunks — the hot loop does not blank
   them, because the memset traffic costs more than the instructions
   themselves.  [b_end_pc] is the machine's pc after the last row, so
   row [j]'s next pc is [b_pc.(j + 1)] (or [b_end_pc] for the final
   row). *)
type batch = {
  mutable len : int;
  b_pc : int array;
  b_addr : int array;
  b_taken : bool array;
  mutable b_end_pc : int;
}

type statics = {
  s_classes : Instr.iclass array;
  s_read_lists : int list array;
  s_write_ids : int array;
}

(* The integer register file is an unboxed int64 bigarray: the dispatch
   loop reads and writes it with [A1.unsafe_get]/[unsafe_set], which
   the compiler keeps unboxed end to end, so an ALU step allocates
   nothing.  (The reference interpreter keeps the boxed [int64 array]
   representation — that per-result box is part of the seed engine's
   cost the rewrite removes.)  r0 stays zero because every write is
   compiled out at decode time or guarded. *)
type regfile = (int64, Bigarray.int64_elt, Bigarray.c_layout) A1.t

(* Flat decode tables: one row per static pc, filled once at [load].
   [opcodes] holds the fully flattened operation code (see {!op_code}:
   ALU sub-operations, branch conditions, resolved-vs-label control
   transfers and r0-destination no-ops all get distinct codes), the
   operand columns hold register numbers (or -1) and the
   immediate/offset/target as an int, and [imm64]/[fimm] carry the
   full-width [Li]/[Fli] constants the int column cannot.  The hot loop
   in {!fill_chunk} is a dense integer match over [opcodes] — a jump
   table with every arm inlined — so stepping never inspects an
   {!Instr.t} variant, calls a function or allocates. *)
type t = {
  program : Program.t;
  code_len : int;
  opcodes : int array;
  code_tbl : int array;
      (* dst lor (a lsl 8) lor (b lsl 16), each register field masked
         to a byte: the hot loop reads one packed operand word per step
         and extracts register numbers with shifts instead of three
         more loads.  Unused fields hold 0xff (-1 masked) and are never
         extracted. *)
  op_dst : int array;
  op_a : int array;
  op_b : int array;
  op_imm : int array;
  imm64 : regfile;  (* Li constants, full 64-bit *)
  fimm : float array;  (* Fli constants *)
  classes : Instr.iclass array;
  class_idx : int array;
  read_lists : int list array;
  write_ids : int array;
  branch_flags : bool array;
  store_flags : bool array;
  mem_flags : bool array;  (* loads and stores, int or float *)
  iregs : regfile;
  fregs : float array;
  mem : Memory.t;
  buf : batch;  (* chunk buffer shared by every run mode, reused *)
  mutable pc : int;
  mutable halted : bool;
  mutable icount : int;
  cls_counts : int array;  (* retired instructions per iclass *)
  event : event;
}

let alu_code = function
  | Instr.Add -> 0
  | Instr.Sub -> 1
  | Instr.And -> 2
  | Instr.Or -> 3
  | Instr.Xor -> 4
  | Instr.Sll -> 5
  | Instr.Srl -> 6
  | Instr.Sra -> 7
  | Instr.Cmp_eq -> 8
  | Instr.Cmp_lt -> 9
  | Instr.Cmp_le -> 10

let cond_code = function
  | Instr.Eq_z -> 0
  | Instr.Ne_z -> 1
  | Instr.Lt_z -> 2
  | Instr.Ge_z -> 3
  | Instr.Gt_z -> 4
  | Instr.Le_z -> 5

(* Dense class indices ({!Instr.class_index}), named so the dispatch
   arms can bump their class's retire counter with a constant index.
   Int-ALU retirements are not counted in the arms at all — the chunk
   epilogue derives them as [len] minus the other classes' delta, so
   the most common instructions pay nothing for class accounting. *)
let ci_int_alu = Instr.class_index Instr.C_int_alu
let ci_int_mul = Instr.class_index Instr.C_int_mul
let ci_int_div = Instr.class_index Instr.C_int_div
let ci_fp_alu = Instr.class_index Instr.C_fp_alu
let ci_fp_mul = Instr.class_index Instr.C_fp_mul
let ci_fp_div = Instr.class_index Instr.C_fp_div
let ci_load = Instr.class_index Instr.C_load
let ci_store = Instr.class_index Instr.C_store
let ci_branch = Instr.class_index Instr.C_branch
let ci_jump = Instr.class_index Instr.C_jump
let ci_other = Instr.class_index Instr.C_other

(* Opcode for a no-op: an instruction whose only architectural effect
   would be a write to r0, which is discarded. *)
let op_nop = 59

(* Sentinel opcode stored one past the end of the (padded) decode
   tables: falling off the end of the program dispatches it and raises
   the out-of-range fault, so the hot loop never range-checks the
   sequential pc.  Computed control transfers check their target in
   the (cold) taken path instead. *)
let op_oob = 60

(* Fully flattened operation code.  Writes to r0 are compiled to
   [op_nop] here when the write is the instruction's only effect
   (loads keep their memory semantics — page touches and faults are
   observable — and only drop the register write). *)
let op_code : Instr.t -> int = function
  | Instr.Alu (op, d, _, _) -> if d = Reg.zero then op_nop else alu_code op
  | Instr.Alui (op, d, _, _) ->
    if d = Reg.zero then op_nop else 11 + alu_code op
  | Instr.Li (d, _) -> if d = Reg.zero then op_nop else 22
  | Instr.Mul (d, _, _) -> if d = Reg.zero then op_nop else 23
  | Instr.Div (d, _, _) -> if d = Reg.zero then op_nop else 24
  | Instr.Rem (d, _, _) -> if d = Reg.zero then op_nop else 25
  | Instr.Falu (Instr.Fadd, _, _, _) -> 26
  | Instr.Falu (Instr.Fsub, _, _, _) -> 27
  | Instr.Fmul _ -> 28
  | Instr.Fdiv _ -> 29
  | Instr.Fli _ -> 30
  | Instr.Fmov _ -> 31
  | Instr.Fcmp (op, d, _, _) ->
    if d = Reg.zero then op_nop
    else (
      match op with
      | Instr.Fcmp_eq -> 32
      | Instr.Fcmp_lt -> 33
      | Instr.Fcmp_le -> 34)
  | Instr.Itof _ -> 35
  | Instr.Ftoi (d, _) -> if d = Reg.zero then op_nop else 36
  | Instr.Load _ -> 37
  | Instr.Store _ -> 38
  | Instr.Fload _ -> 39
  | Instr.Fstore _ -> 40
  | Instr.Br (c, _, Instr.Abs _) -> 41 + cond_code c
  | Instr.Br (c, _, Instr.Label _) -> 47 + cond_code c
  | Instr.Jmp (Instr.Abs _) -> 53
  | Instr.Jmp (Instr.Label _) -> 54
  | Instr.Jr _ -> 55
  | Instr.Call (Instr.Abs _) -> 56
  | Instr.Call (Instr.Label _) -> 57
  | Instr.Halt -> 58

(* Operand columns of the decode table (registers and immediates only;
   for stores [op_a] is the value register and [op_b] the base). *)
let operands : Instr.t -> int * int * int * int = function
  | Instr.Alu (_, d, a, b) -> (d, a, b, 0)
  | Instr.Alui (_, d, a, imm) -> (d, a, -1, imm)
  | Instr.Li (d, v) -> (d, -1, -1, Int64.to_int v)
  | Instr.Mul (d, a, b) | Instr.Div (d, a, b) | Instr.Rem (d, a, b) ->
    (d, a, b, 0)
  | Instr.Falu (_, d, a, b) | Instr.Fmul (d, a, b) | Instr.Fdiv (d, a, b)
  | Instr.Fcmp (_, d, a, b) ->
    (d, a, b, 0)
  | Instr.Fli (d, _) -> (d, -1, -1, 0)
  | Instr.Fmov (d, a) | Instr.Itof (d, a) | Instr.Ftoi (d, a) -> (d, a, -1, 0)
  | Instr.Load (d, a, off) | Instr.Fload (d, a, off) -> (d, a, -1, off)
  | Instr.Store (s, a, off) | Instr.Fstore (s, a, off) -> (-1, s, a, off)
  | Instr.Br (_, r, Instr.Abs i) -> (-1, r, -1, i)
  | Instr.Br (_, r, Instr.Label _) -> (-1, r, -1, -1)
  | Instr.Jmp (Instr.Abs i) | Instr.Call (Instr.Abs i) -> (-1, -1, -1, i)
  | Instr.Jmp (Instr.Label _) | Instr.Call (Instr.Label _) -> (-1, -1, -1, -1)
  | Instr.Jr r -> (-1, r, -1, 0)
  | Instr.Halt -> (-1, -1, -1, 0)

let unresolved l = Fault (Printf.sprintf "unresolved label %S" l)

(* Cold path: fetch the label text for the unresolved-target fault from
   the original instruction (the int tables cannot carry it). *)
let label_fault t pc =
  match t.program.Program.code.(pc) with
  | Instr.Br (_, _, Instr.Label l)
  | Instr.Jmp (Instr.Label l)
  | Instr.Call (Instr.Label l) ->
    raise (unresolved l)
  | _ -> assert false

(* Same messages, in the same order of checks, as {!Memory.check} —
   which the reference interpreter reaches through [Invalid_argument]
   and rewraps; here the check is inlined on the fast path. *)
let mem_fault addr =
  if addr < 0 then Fault "Memory: negative address"
  else Fault (Printf.sprintf "Memory: unaligned access at %#x" addr)

let word_mask = Memory.words_per_page - 1

let load program =
  let code = program.Program.code in
  let n = Array.length code in
  let mem = Memory.create () in
  Memory.load_words mem program.Program.data;
  let iregs = A1.create Bigarray.Int64 Bigarray.C_layout Reg.count in
  A1.fill iregs 0L;
  A1.set iregs Reg.sp (Int64.of_int Program.stack_base);
  let imm64 = A1.create Bigarray.Int64 Bigarray.C_layout (max n 1) in
  A1.fill imm64 0L;
  Array.iteri
    (fun pc instr ->
      match instr with Instr.Li (_, v) -> A1.set imm64 pc v | _ -> ())
    code;
  let fimm = Array.make (max n 1) 0.0 in
  Array.iteri
    (fun pc instr ->
      match instr with Instr.Fli (_, v) -> fimm.(pc) <- v | _ -> ())
    code;
  let classes = Array.map Instr.classify code in
  let opcodes =
    Array.init (n + 1) (fun k -> if k < n then op_code code.(k) else op_oob)
  in
  let op_dst = Array.map (fun i -> let d, _, _, _ = operands i in d) code in
  let op_a = Array.map (fun i -> let _, a, _, _ = operands i in a) code in
  let op_b = Array.map (fun i -> let _, _, b, _ = operands i in b) code in
  {
    program;
    code_len = n;
    opcodes;
    code_tbl =
      Array.init (n + 1) (fun k ->
          if k >= n then 0
          else
            (op_dst.(k) land 255)
            lor ((op_a.(k) land 255) lsl 8)
            lor ((op_b.(k) land 255) lsl 16));
    op_dst;
    op_a;
    op_b;
    op_imm = Array.map (fun i -> let _, _, _, m = operands i in m) code;
    imm64;
    fimm;
    classes;
    class_idx = Array.map Instr.class_index classes;
    read_lists = Array.map Instr.reads code;
    write_ids =
      Array.map
        (fun i -> match Instr.writes i with Some r -> r | None -> -1)
        code;
    branch_flags = Array.map (fun i -> match i with Instr.Br _ -> true | _ -> false) code;
    store_flags =
      Array.map
        (fun i -> match i with Instr.Store _ | Instr.Fstore _ -> true | _ -> false)
        code;
    mem_flags =
      Array.map
        (fun i ->
          match i with
          | Instr.Load _ | Instr.Store _ | Instr.Fload _ | Instr.Fstore _ ->
            true
          | _ -> false)
        code;
    iregs;
    fregs = Array.make Reg.count 0.0;
    mem;
    buf =
      {
        len = 0;
        b_pc = Array.make chunk_size 0;
        b_addr = Array.make chunk_size (-1);
        b_taken = Array.make chunk_size false;
        b_end_pc = 0;
      };
    pc = 0;
    halted = false;
    icount = 0;
    cls_counts = Array.make Instr.class_count 0;
    event =
      {
        pc = 0;
        iclass = Instr.C_other;
        mem_addr = -1;
        is_store = false;
        is_branch = false;
        taken = false;
        next_pc = 0;
        reads = [];
        writes = -1;
      };
  }

let statics t =
  {
    s_classes = Array.copy t.classes;
    s_read_lists = Array.copy t.read_lists;
    s_write_ids = Array.copy t.write_ids;
  }

let halted t = t.halted
let instruction_count t = t.icount
let ireg t r = A1.get t.iregs r
let freg t r = t.fregs.(r)
let memory t = t.mem

let decoded t pc =
  (t.opcodes.(pc), t.op_dst.(pc), t.op_a.(pc), t.op_b.(pc), t.op_imm.(pc))

let retired_by_class t = Array.copy t.cls_counts

(* Execute up to [limit] instructions (stopping at halt) into the chunk
   buffer starting at slot 0.  The hot loop is one dense match over the
   flattened opcode table — a jump table whose arms read operands from
   the decode columns and touch the unboxed register file, so the whole
   loop runs without function calls or allocation.  Per retired
   instruction the loop's only mandatory memory traffic is the [b_pc]
   store: [b_addr] is written only by memory arms and [b_taken] only by
   branch arms (other rows keep stale values, per the {!batch}
   contract), halting leaves the loop through {!Chunk_done} instead of
   a per-iteration flag test, and next-pc values are never stored — row
   [j]'s next pc is by construction [b_pc.(j + 1)], and [b_end_pc] (the
   machine's pc after the chunk) covers the last row, including the
   fault case, where it still points at the faulting instruction.  The
   per-class retire counts are folded afterwards in one tight pass over
   the still-cache-hot [b_pc].  On a fault the slots retired before the
   faulting instruction are kept ([buf.len] excludes it, like the
   reference interpreter which emits no event and retires nothing for a
   faulting step) and the exception is returned for the caller to
   deliver after flushing.

   Equivalence with the reference interpreter (Machine_ref) is checked
   instruction by instruction in test/test_funcsim_diff.ml — including
   the r0 write discard, divide-by-zero results and fault points. *)
(* Commit a chunk's results into [t] and its buffer: row count, the
   machine pc after the last row, the instruction count and the
   per-class retire counts (one tight pass over the still-cache-hot
   [b_pc]).  Called once per chunk on the normal path and from the cold
   fault/halt exits of {!exec_chunk} before their exception leaves the
   loop — the hot loop itself keeps its cursor and row index in local
   registers and touches no [t] state, so every exit must write back
   through here. *)
(* [counted0] is the sum of [cls_counts] when the chunk started: the
   arms bump every class's counter except int-ALU, so the int-ALU
   retirements of this chunk are [len] minus the counters' growth. *)
let epilogue t len end_pc counted0 =
  t.pc <- end_pc;
  let buf = t.buf in
  buf.len <- len;
  buf.b_end_pc <- end_pc;
  t.icount <- t.icount + len;
  let counts = t.cls_counts in
  let counted = ref 0 in
  for k = 0 to Instr.class_count - 1 do
    counted := !counted + Array.unsafe_get counts k
  done;
  counts.(ci_int_alu) <-
    counts.(ci_int_alu) + len - (!counted - counted0)

let counts_sum counts =
  let s = ref 0 in
  for k = 0 to Instr.class_count - 1 do
    s := !s + Array.unsafe_get counts k
  done;
  !s

let exec_chunk t limit =
  let buf = t.buf in
  let pcs = buf.b_pc and addrs = buf.b_addr and takens = buf.b_taken in
  let n = t.code_len in
  let opc = t.opcodes
  and code_tbl = t.code_tbl
  and imm = t.op_imm
  and imm64 = t.imm64
  and fimm = t.fimm
  and iregs = t.iregs
  and fregs = t.fregs
  and mem = t.mem in
  let counts = t.cls_counts and cidx = t.class_idx in
  let counted0 = counts_sum counts in
  (* The loop dispatches [t.pc] without a range check (sequential pcs
     are covered by the sentinel row, computed targets are checked in
     their arms), so the entry pc — which a wild jump may have set —
     is validated once here. *)
  (if t.pc lor (n - t.pc) < 0 then begin
     epilogue t 0 t.pc counted0;
     raise (Fault (Printf.sprintf "pc out of range: %d" t.pc))
   end);
  let i = ref 0 in
  (* [cur] and [i] are non-escaping refs in a function with no
     exception handler, so the compiler unboxes them into registers —
     wrapping this loop in a [try] would force both into stack slots
     and put a store-to-load roundtrip on the loop-carried pc.  On the
     cold exits (fault, halt) the state is committed by {!epilogue}
     before the exception propagates; [pc] there is the faulting
     instruction's pc, matching the reference interpreter. *)
  let cur = ref t.pc in
  while !i < limit do
       let pc = !cur in
       let j = !i in
       Array.unsafe_set pcs j pc;
       let w = Array.unsafe_get code_tbl pc in
       let next =
         match Array.unsafe_get opc pc with
         (* 0-10: register ALU *)
         | 0 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.add
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (A1.unsafe_get iregs ((w lsr 16) land 255)));
           pc + 1
         | 1 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.sub
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (A1.unsafe_get iregs ((w lsr 16) land 255)));
           pc + 1
         | 2 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.logand
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (A1.unsafe_get iregs ((w lsr 16) land 255)));
           pc + 1
         | 3 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.logor
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (A1.unsafe_get iregs ((w lsr 16) land 255)));
           pc + 1
         | 4 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.logxor
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (A1.unsafe_get iregs ((w lsr 16) land 255)));
           pc + 1
         | 5 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.shift_left
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Int64.to_int (A1.unsafe_get iregs ((w lsr 16) land 255))
                land 63));
           pc + 1
         | 6 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.shift_right_logical
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Int64.to_int (A1.unsafe_get iregs ((w lsr 16) land 255))
                land 63));
           pc + 1
         | 7 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.shift_right
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Int64.to_int (A1.unsafe_get iregs ((w lsr 16) land 255))
                land 63));
           pc + 1
         | 8 ->
           A1.unsafe_set iregs (w land 255)
             (if
                A1.unsafe_get iregs ((w lsr 8) land 255)
                = A1.unsafe_get iregs ((w lsr 16) land 255)
              then 1L
              else 0L);
           pc + 1
         | 9 ->
           A1.unsafe_set iregs (w land 255)
             (if
                A1.unsafe_get iregs ((w lsr 8) land 255)
                < A1.unsafe_get iregs ((w lsr 16) land 255)
              then 1L
              else 0L);
           pc + 1
         | 10 ->
           A1.unsafe_set iregs (w land 255)
             (if
                A1.unsafe_get iregs ((w lsr 8) land 255)
                <= A1.unsafe_get iregs ((w lsr 16) land 255)
              then 1L
              else 0L);
           pc + 1
         (* 11-21: immediate ALU *)
         | 11 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.add
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Int64.of_int (Array.unsafe_get imm pc)));
           pc + 1
         | 12 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.sub
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Int64.of_int (Array.unsafe_get imm pc)));
           pc + 1
         | 13 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.logand
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Int64.of_int (Array.unsafe_get imm pc)));
           pc + 1
         | 14 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.logor
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Int64.of_int (Array.unsafe_get imm pc)));
           pc + 1
         | 15 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.logxor
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Int64.of_int (Array.unsafe_get imm pc)));
           pc + 1
         | 16 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.shift_left
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Array.unsafe_get imm pc land 63));
           pc + 1
         | 17 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.shift_right_logical
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Array.unsafe_get imm pc land 63));
           pc + 1
         | 18 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.shift_right
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (Array.unsafe_get imm pc land 63));
           pc + 1
         | 19 ->
           A1.unsafe_set iregs (w land 255)
             (if
                A1.unsafe_get iregs ((w lsr 8) land 255)
                = Int64.of_int (Array.unsafe_get imm pc)
              then 1L
              else 0L);
           pc + 1
         | 20 ->
           A1.unsafe_set iregs (w land 255)
             (if
                A1.unsafe_get iregs ((w lsr 8) land 255)
                < Int64.of_int (Array.unsafe_get imm pc)
              then 1L
              else 0L);
           pc + 1
         | 21 ->
           A1.unsafe_set iregs (w land 255)
             (if
                A1.unsafe_get iregs ((w lsr 8) land 255)
                <= Int64.of_int (Array.unsafe_get imm pc)
              then 1L
              else 0L);
           pc + 1
         (* 22-25: constants and multiplicative *)
         | 22 ->
           A1.unsafe_set iregs (w land 255)
             (A1.unsafe_get imm64 pc);
           pc + 1
         | 23 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.mul
                (A1.unsafe_get iregs ((w lsr 8) land 255))
                (A1.unsafe_get iregs ((w lsr 16) land 255)));
           Array.unsafe_set counts ci_int_mul
             (Array.unsafe_get counts ci_int_mul + 1);
           pc + 1
         | 24 ->
           let bv = A1.unsafe_get iregs ((w lsr 16) land 255) in
           A1.unsafe_set iregs (w land 255)
             (if bv = 0L then 0L
              else Int64.div (A1.unsafe_get iregs ((w lsr 8) land 255)) bv);
           Array.unsafe_set counts ci_int_div
             (Array.unsafe_get counts ci_int_div + 1);
           pc + 1
         | 25 ->
           let bv = A1.unsafe_get iregs ((w lsr 16) land 255) in
           A1.unsafe_set iregs (w land 255)
             (if bv = 0L then 0L
              else Int64.rem (A1.unsafe_get iregs ((w lsr 8) land 255)) bv);
           Array.unsafe_set counts ci_int_div
             (Array.unsafe_get counts ci_int_div + 1);
           pc + 1
         (* 26-31: float ALU *)
         | 26 ->
           Array.unsafe_set fregs (w land 255)
             (Array.unsafe_get fregs ((w lsr 8) land 255)
             +. Array.unsafe_get fregs ((w lsr 16) land 255));
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         | 27 ->
           Array.unsafe_set fregs (w land 255)
             (Array.unsafe_get fregs ((w lsr 8) land 255)
             -. Array.unsafe_get fregs ((w lsr 16) land 255));
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         | 28 ->
           Array.unsafe_set fregs (w land 255)
             (Array.unsafe_get fregs ((w lsr 8) land 255)
             *. Array.unsafe_get fregs ((w lsr 16) land 255));
           Array.unsafe_set counts ci_fp_mul
             (Array.unsafe_get counts ci_fp_mul + 1);
           pc + 1
         | 29 ->
           let bv = Array.unsafe_get fregs ((w lsr 16) land 255) in
           Array.unsafe_set fregs (w land 255)
             (if bv = 0.0 then 0.0
              else Array.unsafe_get fregs ((w lsr 8) land 255) /. bv);
           Array.unsafe_set counts ci_fp_div
             (Array.unsafe_get counts ci_fp_div + 1);
           pc + 1
         | 30 ->
           Array.unsafe_set fregs (w land 255)
             (Array.unsafe_get fimm pc);
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         | 31 ->
           Array.unsafe_set fregs (w land 255)
             (Array.unsafe_get fregs ((w lsr 8) land 255));
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         (* 32-34: float compare into integer register *)
         | 32 ->
           A1.unsafe_set iregs (w land 255)
             (if
                Array.unsafe_get fregs ((w lsr 8) land 255)
                = Array.unsafe_get fregs ((w lsr 16) land 255)
              then 1L
              else 0L);
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         | 33 ->
           A1.unsafe_set iregs (w land 255)
             (if
                Array.unsafe_get fregs ((w lsr 8) land 255)
                < Array.unsafe_get fregs ((w lsr 16) land 255)
              then 1L
              else 0L);
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         | 34 ->
           A1.unsafe_set iregs (w land 255)
             (if
                Array.unsafe_get fregs ((w lsr 8) land 255)
                <= Array.unsafe_get fregs ((w lsr 16) land 255)
              then 1L
              else 0L);
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         (* 35-36: conversions *)
         | 35 ->
           Array.unsafe_set fregs (w land 255)
             (Int64.to_float (A1.unsafe_get iregs ((w lsr 8) land 255)));
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         | 36 ->
           A1.unsafe_set iregs (w land 255)
             (Int64.of_float
                (Array.unsafe_get fregs ((w lsr 8) land 255)));
           Array.unsafe_set counts ci_fp_alu
             (Array.unsafe_get counts ci_fp_alu + 1);
           pc + 1
         (* 37-40: memory, with the page-cache fast path inlined *)
         | 37 ->
           let addr =
             Int64.to_int (A1.unsafe_get iregs ((w lsr 8) land 255))
             + Array.unsafe_get imm pc
           in
           Array.unsafe_set addrs j addr;
           if addr < 0 || addr land 7 <> 0 then begin
             epilogue t j pc counted0;
             raise (mem_fault addr)
           end;
           let v =
             if addr lsr Memory.page_bits = mem.Memory.cache_key then
               A1.unsafe_get mem.Memory.cache_page ((addr lsr 3) land word_mask)
             else Memory.read mem addr
           in
           let d = w land 255 in
           if d <> 0 then A1.unsafe_set iregs d v;
           Array.unsafe_set counts ci_load
             (Array.unsafe_get counts ci_load + 1);
           pc + 1
         | 38 ->
           let addr =
             Int64.to_int (A1.unsafe_get iregs ((w lsr 16) land 255))
             + Array.unsafe_get imm pc
           in
           Array.unsafe_set addrs j addr;
           if addr < 0 || addr land 7 <> 0 then begin
             epilogue t j pc counted0;
             raise (mem_fault addr)
           end;
           let v = A1.unsafe_get iregs ((w lsr 8) land 255) in
           if addr lsr Memory.page_bits = mem.Memory.cache_key then
             A1.unsafe_set mem.Memory.cache_page ((addr lsr 3) land word_mask) v
           else Memory.write mem addr v;
           Array.unsafe_set counts ci_store
             (Array.unsafe_get counts ci_store + 1);
           pc + 1
         | 39 ->
           let addr =
             Int64.to_int (A1.unsafe_get iregs ((w lsr 8) land 255))
             + Array.unsafe_get imm pc
           in
           Array.unsafe_set addrs j addr;
           if addr < 0 || addr land 7 <> 0 then begin
             epilogue t j pc counted0;
             raise (mem_fault addr)
           end;
           let v =
             if addr lsr Memory.page_bits = mem.Memory.cache_key then
               A1.unsafe_get mem.Memory.cache_page ((addr lsr 3) land word_mask)
             else Memory.read mem addr
           in
           Array.unsafe_set fregs (w land 255)
             (Int64.float_of_bits v);
           Array.unsafe_set counts ci_load
             (Array.unsafe_get counts ci_load + 1);
           pc + 1
         | 40 ->
           let addr =
             Int64.to_int (A1.unsafe_get iregs ((w lsr 16) land 255))
             + Array.unsafe_get imm pc
           in
           Array.unsafe_set addrs j addr;
           if addr < 0 || addr land 7 <> 0 then begin
             epilogue t j pc counted0;
             raise (mem_fault addr)
           end;
           let v =
             Int64.bits_of_float
               (Array.unsafe_get fregs ((w lsr 8) land 255))
           in
           if addr lsr Memory.page_bits = mem.Memory.cache_key then
             A1.unsafe_set mem.Memory.cache_page ((addr lsr 3) land word_mask) v
           else Memory.write mem addr v;
           Array.unsafe_set counts ci_store
             (Array.unsafe_get counts ci_store + 1);
           pc + 1
         (* 41-46: branches with resolved targets *)
         | 41 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) = 0L then begin
             Array.unsafe_set takens j true;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             let tgt = Array.unsafe_get imm pc in
             if tgt lor (n - tgt) < 0 then begin
               epilogue t (j + 1) tgt counted0;
               raise Chunk_done
             end;
             tgt
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 42 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) <> 0L then begin
             Array.unsafe_set takens j true;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             let tgt = Array.unsafe_get imm pc in
             if tgt lor (n - tgt) < 0 then begin
               epilogue t (j + 1) tgt counted0;
               raise Chunk_done
             end;
             tgt
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 43 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) < 0L then begin
             Array.unsafe_set takens j true;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             let tgt = Array.unsafe_get imm pc in
             if tgt lor (n - tgt) < 0 then begin
               epilogue t (j + 1) tgt counted0;
               raise Chunk_done
             end;
             tgt
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 44 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) >= 0L then begin
             Array.unsafe_set takens j true;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             let tgt = Array.unsafe_get imm pc in
             if tgt lor (n - tgt) < 0 then begin
               epilogue t (j + 1) tgt counted0;
               raise Chunk_done
             end;
             tgt
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 45 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) > 0L then begin
             Array.unsafe_set takens j true;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             let tgt = Array.unsafe_get imm pc in
             if tgt lor (n - tgt) < 0 then begin
               epilogue t (j + 1) tgt counted0;
               raise Chunk_done
             end;
             tgt
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 46 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) <= 0L then begin
             Array.unsafe_set takens j true;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             let tgt = Array.unsafe_get imm pc in
             if tgt lor (n - tgt) < 0 then begin
               epilogue t (j + 1) tgt counted0;
               raise Chunk_done
             end;
             tgt
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         (* 47-52: branches with unresolved label targets — fault only
            when taken, like the reference interpreter. *)
         | 47 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) = 0L then begin
             Array.unsafe_set takens j true;
             (epilogue t j pc counted0;
              label_fault t pc)
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 48 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) <> 0L then begin
             Array.unsafe_set takens j true;
             (epilogue t j pc counted0;
              label_fault t pc)
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 49 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) < 0L then begin
             Array.unsafe_set takens j true;
             (epilogue t j pc counted0;
              label_fault t pc)
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 50 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) >= 0L then begin
             Array.unsafe_set takens j true;
             (epilogue t j pc counted0;
              label_fault t pc)
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 51 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) > 0L then begin
             Array.unsafe_set takens j true;
             (epilogue t j pc counted0;
              label_fault t pc)
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         | 52 ->
           if A1.unsafe_get iregs ((w lsr 8) land 255) <= 0L then begin
             Array.unsafe_set takens j true;
             (epilogue t j pc counted0;
              label_fault t pc)
           end
           else begin
             Array.unsafe_set takens j false;
             Array.unsafe_set counts ci_branch
               (Array.unsafe_get counts ci_branch + 1);
             pc + 1
           end
         (* 53-58: jumps, calls, halt *)
         | 53 ->
           Array.unsafe_set counts ci_jump
             (Array.unsafe_get counts ci_jump + 1);
           let tgt = Array.unsafe_get imm pc in
           if tgt lor (n - tgt) < 0 then begin
             epilogue t (j + 1) tgt counted0;
             raise Chunk_done
           end;
           tgt
         | 54 ->
           epilogue t j pc counted0;
           label_fault t pc
         | 55 ->
           Array.unsafe_set counts ci_jump
             (Array.unsafe_get counts ci_jump + 1);
           let tgt =
             Int64.to_int (A1.unsafe_get iregs ((w lsr 8) land 255))
           in
           if tgt lor (n - tgt) < 0 then begin
             epilogue t (j + 1) tgt counted0;
             raise Chunk_done
           end;
           tgt
         | 56 ->
           (* ra is linked before the target resolves *)
           A1.unsafe_set iregs Reg.ra (Int64.of_int (pc + 1));
           Array.unsafe_set counts ci_jump
             (Array.unsafe_get counts ci_jump + 1);
           let tgt = Array.unsafe_get imm pc in
           if tgt lor (n - tgt) < 0 then begin
             epilogue t (j + 1) tgt counted0;
             raise Chunk_done
           end;
           tgt
         | 57 ->
           A1.unsafe_set iregs Reg.ra (Int64.of_int (pc + 1));
           epilogue t j pc counted0;
           label_fault t pc
         | 58 ->
           t.halted <- true;
           (* Halt retires (next pc is the fall-through), then leaves
              the loop without a per-iteration halt test. *)
           Array.unsafe_set counts ci_other
             (Array.unsafe_get counts ci_other + 1);
           epilogue t (j + 1) (pc + 1) counted0;
           raise Chunk_done
         (* 59: write to r0 compiled out — class accounting still
            sees the original instruction's class *)
         | 59 ->
           let c = Array.unsafe_get cidx pc in
           Array.unsafe_set counts c (Array.unsafe_get counts c + 1);
           pc + 1
         (* sentinel row one past the program ({!op_oob}):
            sequential execution fell off the end, or a checked
            transfer landed exactly on [n] *)
         | _ ->
           epilogue t j pc counted0;
           raise (Fault (Printf.sprintf "pc out of range: %d" pc))
       in
       cur := next;
       i := j + 1
  done;
  epilogue t limit !cur counted0

let fill_chunk t limit =
  try
    exec_chunk t limit;
    None
  with
  | Chunk_done -> None
  | e -> Some e

(* Rebuild retired events for the first [count] chunk rows from the
   per-pc decode tables and the dynamic columns, reusing the machine's
   single event record (the documented [on_event] contract). *)
let deliver_events t count on_event =
  let buf = t.buf and ev = t.event in
  let pcs = buf.b_pc and addrs = buf.b_addr and takens = buf.b_taken in
  let last = count - 1 in
  for j = 0 to last do
    let pc = Array.unsafe_get pcs j in
    ev.pc <- pc;
    ev.iclass <- Array.unsafe_get t.classes pc;
    ev.mem_addr <-
      (if Array.unsafe_get t.mem_flags pc then Array.unsafe_get addrs j
       else -1);
    ev.is_store <- Array.unsafe_get t.store_flags pc;
    let is_branch = Array.unsafe_get t.branch_flags pc in
    ev.is_branch <- is_branch;
    ev.taken <- (is_branch && Array.unsafe_get takens j);
    ev.next_pc <-
      (if j < last then Array.unsafe_get pcs (j + 1) else buf.b_end_pc);
    ev.reads <- Array.unsafe_get t.read_lists pc;
    ev.writes <- Array.unsafe_get t.write_ids pc;
    on_event ev
  done

let step t on_event =
  if t.halted then false
  else begin
    (match fill_chunk t 1 with Some e -> raise e | None -> ());
    deliver_events t 1 on_event;
    not t.halted
  end

(* Chunked driver shared by [run] and [run_batched]: [emit] consumes the
   filled chunk buffer.  Partial chunks are flushed before a fault
   propagates, so consumers observe exactly the events the reference
   interpreter would have delivered. *)
let run_raw ~max_instrs t emit =
  let start = t.icount in
  while (not t.halted) && t.icount - start < max_instrs do
    let limit = min chunk_size (max_instrs - (t.icount - start)) in
    match fill_chunk t limit with
    | None -> if t.buf.len > 0 then emit t
    | Some e ->
      if t.buf.len > 0 then emit t;
      raise e
  done;
  t.icount - start

(* Per-run aggregates, published into the global registry when a run
   completes (publishing from the per-step path would put atomics on the
   hottest loop in the system; the per-machine [exec_counts] array is
   domain-local and free). *)
let c_retired_total = Pc_obs.Metrics.counter "funcsim.retired.total"
let c_runs = Pc_obs.Metrics.counter "funcsim.runs"

let c_retired_class =
  Array.init Instr.class_count (fun i ->
      Pc_obs.Metrics.counter
        ("funcsim.retired." ^ Instr.class_name (Instr.class_of_index i)))

let g_pages = Pc_obs.Metrics.gauge "funcsim.mem.pages_touched"

let publish t before =
  let after = retired_by_class t in
  Pc_obs.Metrics.incr c_runs;
  let total = ref 0 in
  Array.iteri
    (fun i count ->
      let d = count - before.(i) in
      total := !total + d;
      if d > 0 then Pc_obs.Metrics.add c_retired_class.(i) d)
    after;
  Pc_obs.Metrics.add c_retired_total !total;
  Pc_obs.Metrics.record_max g_pages (Memory.pages_touched t.mem)

let run ?(max_instrs = 50_000_000) t on_event =
  let before = retired_by_class t in
  let retired =
    run_raw ~max_instrs t (fun t -> deliver_events t t.buf.len on_event)
  in
  publish t before;
  retired

let run_batched ?(max_instrs = 50_000_000) t consume =
  let before = retired_by_class t in
  let retired = run_raw ~max_instrs t (fun t -> consume t.buf) in
  publish t before;
  retired
