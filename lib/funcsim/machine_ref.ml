(* The pre-rewrite functional simulator, retained verbatim as the
   differential-testing oracle for the pre-decoded engine: one variant
   match per step, semantics spelled out instruction by instruction.
   Test-only — it publishes no metrics and nothing in the library
   depends on it.  Any behavioural divergence between this interpreter
   and {!Machine} is a bug in the engine, not here: change this file
   only when the ISA itself changes. *)

open Pc_isa

type event = Machine.event = {
  mutable pc : int;
  mutable iclass : Instr.iclass;
  mutable mem_addr : int;
  mutable is_store : bool;
  mutable is_branch : bool;
  mutable taken : bool;
  mutable next_pc : int;
  mutable reads : int list;
  mutable writes : int;
}

type t = {
  program : Program.t;
  code : Instr.t array;
  (* Static per-instruction metadata, precomputed so stepping does not
     allocate. *)
  classes : Instr.iclass array;
  class_idx : int array;
  read_lists : int list array;
  write_ids : int array;
  iregs : int64 array;
  fregs : float array;
  mem : Memory.t;
  mutable pc : int;
  mutable halted : bool;
  mutable icount : int;
  retired : int array;  (* dynamic instructions per class index *)
  event : event;
}

let load program =
  let code = program.Program.code in
  let mem = Memory.create () in
  Memory.load_words mem program.Program.data;
  let iregs = Array.make Reg.count 0L in
  iregs.(Reg.sp) <- Int64.of_int Program.stack_base;
  let classes = Array.map Instr.classify code in
  {
    program;
    code;
    classes;
    class_idx = Array.map Instr.class_index classes;
    read_lists = Array.map Instr.reads code;
    write_ids =
      Array.map (fun i -> match Instr.writes i with Some r -> r | None -> -1) code;
    iregs;
    fregs = Array.make Reg.count 0.0;
    mem;
    pc = 0;
    halted = false;
    icount = 0;
    retired = Array.make Instr.class_count 0;
    event =
      {
        pc = 0;
        iclass = Instr.C_other;
        mem_addr = -1;
        is_store = false;
        is_branch = false;
        taken = false;
        next_pc = 0;
        reads = [];
        writes = -1;
      };
  }

type statics = Machine.statics = {
  s_classes : Instr.iclass array;
  s_read_lists : int list array;
  s_write_ids : int array;
}

let statics t =
  {
    s_classes = Array.copy t.classes;
    s_read_lists = Array.copy t.read_lists;
    s_write_ids = Array.copy t.write_ids;
  }

let halted t = t.halted
let instruction_count t = t.icount
let retired_by_class t = Array.copy t.retired
let ireg t r = t.iregs.(r)
let freg t r = t.fregs.(r)
let memory t = t.mem

let bool64 b = if b then 1L else 0L

let alu op a b =
  match op with
  | Instr.Add -> Int64.add a b
  | Instr.Sub -> Int64.sub a b
  | Instr.And -> Int64.logand a b
  | Instr.Or -> Int64.logor a b
  | Instr.Xor -> Int64.logxor a b
  | Instr.Sll -> Int64.shift_left a (Int64.to_int b land 63)
  | Instr.Srl -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Instr.Sra -> Int64.shift_right a (Int64.to_int b land 63)
  | Instr.Cmp_eq -> bool64 (Int64.equal a b)
  | Instr.Cmp_lt -> bool64 (Int64.compare a b < 0)
  | Instr.Cmp_le -> bool64 (Int64.compare a b <= 0)

let falu op a b = match op with Instr.Fadd -> a +. b | Instr.Fsub -> a -. b

let fcmp op a b =
  match op with
  | Instr.Fcmp_eq -> bool64 (a = b)
  | Instr.Fcmp_lt -> bool64 (a < b)
  | Instr.Fcmp_le -> bool64 (a <= b)

let cond_holds c (v : int64) =
  match c with
  | Instr.Eq_z -> Int64.equal v 0L
  | Instr.Ne_z -> not (Int64.equal v 0L)
  | Instr.Lt_z -> Int64.compare v 0L < 0
  | Instr.Ge_z -> Int64.compare v 0L >= 0
  | Instr.Gt_z -> Int64.compare v 0L > 0
  | Instr.Le_z -> Int64.compare v 0L <= 0

let target_index = function
  | Instr.Abs i -> i
  | Instr.Label l -> raise (Machine.Fault (Printf.sprintf "unresolved label %S" l))

let set_ireg t r v = if r <> Reg.zero then t.iregs.(r) <- v

let step t on_event =
  if t.halted then false
  else begin
    let pc = t.pc in
    if pc < 0 || pc >= Array.length t.code then
      raise (Machine.Fault (Printf.sprintf "pc out of range: %d" pc));
    let instr = t.code.(pc) in
    let ev = t.event in
    ev.pc <- pc;
    ev.iclass <- t.classes.(pc);
    ev.mem_addr <- -1;
    ev.is_store <- false;
    ev.is_branch <- false;
    ev.taken <- false;
    ev.reads <- t.read_lists.(pc);
    ev.writes <- t.write_ids.(pc);
    let next = ref (pc + 1) in
    (try
       (match instr with
       | Instr.Alu (op, d, a, b) -> set_ireg t d (alu op t.iregs.(a) t.iregs.(b))
       | Instr.Alui (op, d, a, imm) ->
         set_ireg t d (alu op t.iregs.(a) (Int64.of_int imm))
       | Instr.Li (d, v) -> set_ireg t d v
       | Instr.Mul (d, a, b) -> set_ireg t d (Int64.mul t.iregs.(a) t.iregs.(b))
       | Instr.Div (d, a, b) ->
         let bv = t.iregs.(b) in
         set_ireg t d (if Int64.equal bv 0L then 0L else Int64.div t.iregs.(a) bv)
       | Instr.Rem (d, a, b) ->
         let bv = t.iregs.(b) in
         set_ireg t d (if Int64.equal bv 0L then 0L else Int64.rem t.iregs.(a) bv)
       | Instr.Falu (op, d, a, b) -> t.fregs.(d) <- falu op t.fregs.(a) t.fregs.(b)
       | Instr.Fmul (d, a, b) -> t.fregs.(d) <- t.fregs.(a) *. t.fregs.(b)
       | Instr.Fdiv (d, a, b) ->
         let bv = t.fregs.(b) in
         t.fregs.(d) <- (if bv = 0.0 then 0.0 else t.fregs.(a) /. bv)
       | Instr.Fli (d, v) -> t.fregs.(d) <- v
       | Instr.Fmov (d, a) -> t.fregs.(d) <- t.fregs.(a)
       | Instr.Fcmp (op, d, a, b) -> set_ireg t d (fcmp op t.fregs.(a) t.fregs.(b))
       | Instr.Itof (d, a) -> t.fregs.(d) <- Int64.to_float t.iregs.(a)
       | Instr.Ftoi (d, a) -> set_ireg t d (Int64.of_float t.fregs.(a))
       | Instr.Load (d, a, off) ->
         let addr = Int64.to_int t.iregs.(a) + off in
         ev.mem_addr <- addr;
         set_ireg t d (Memory.read t.mem addr)
       | Instr.Store (s, a, off) ->
         let addr = Int64.to_int t.iregs.(a) + off in
         ev.mem_addr <- addr;
         ev.is_store <- true;
         Memory.write t.mem addr t.iregs.(s)
       | Instr.Fload (d, a, off) ->
         let addr = Int64.to_int t.iregs.(a) + off in
         ev.mem_addr <- addr;
         t.fregs.(d) <- Memory.read_float t.mem addr
       | Instr.Fstore (s, a, off) ->
         let addr = Int64.to_int t.iregs.(a) + off in
         ev.mem_addr <- addr;
         ev.is_store <- true;
         Memory.write_float t.mem addr t.fregs.(s)
       | Instr.Br (c, r, tgt) ->
         ev.is_branch <- true;
         if cond_holds c t.iregs.(r) then begin
           ev.taken <- true;
           next := target_index tgt
         end
       | Instr.Jmp tgt -> next := target_index tgt
       | Instr.Jr r -> next := Int64.to_int t.iregs.(r)
       | Instr.Call tgt ->
         set_ireg t Reg.ra (Int64.of_int (pc + 1));
         next := target_index tgt
       | Instr.Halt -> t.halted <- true);
       ()
     with Invalid_argument msg -> raise (Machine.Fault msg));
    t.pc <- !next;
    ev.next_pc <- !next;
    t.icount <- t.icount + 1;
    t.retired.(t.class_idx.(pc)) <- t.retired.(t.class_idx.(pc)) + 1;
    on_event ev;
    not t.halted
  end

let run ?(max_instrs = 50_000_000) t on_event =
  let start = t.icount in
  let continue = ref true in
  while !continue && t.icount - start < max_instrs do
    continue := step t on_event
  done;
  t.icount - start
