(** Reference functional simulator — the differential-testing oracle.

    This is the pre-rewrite interpreter, retained verbatim: it decodes
    nothing ahead of time and executes one variant match per step, so
    its behaviour is easy to audit against the ISA definition.  The
    differential suite ([test/test_funcsim_diff.ml]) checks that the
    pre-decoded engine behind {!Machine} produces exactly this
    interpreter's retired-event stream — field by field, instruction by
    instruction, fault for fault — on qcheck-generated random programs
    and on every registered workload.

    Test-only: it publishes no {!Pc_obs.Metrics} and must not be used
    by library consumers (it is an order of magnitude slower than
    {!Machine}).  Events and faults are shared with {!Machine} —
    [Machine.event] records, [Machine.Fault] exceptions — so oracle and
    engine streams compare structurally. *)

type event = Machine.event = {
  mutable pc : int;
  mutable iclass : Pc_isa.Instr.iclass;
  mutable mem_addr : int;
  mutable is_store : bool;
  mutable is_branch : bool;
  mutable taken : bool;
  mutable next_pc : int;
  mutable reads : int list;
  mutable writes : int;
}

type t

val load : Pc_isa.Program.t -> t
(** Fresh oracle machine; same initial state as {!Machine.load}. *)

val step : t -> (event -> unit) -> bool
(** One instruction; raises {!Machine.Fault} exactly where the engine
    must. *)

val run : ?max_instrs:int -> t -> (event -> unit) -> int
(** Like {!Machine.run} but publishes no metrics (the oracle must not
    perturb gated counters when it runs beside the engine in tests). *)

type statics = Machine.statics = {
  s_classes : Pc_isa.Instr.iclass array;
  s_read_lists : int list array;
  s_write_ids : int array;
}

val statics : t -> statics
val halted : t -> bool
val instruction_count : t -> int
val retired_by_class : t -> int array
val ireg : t -> Pc_isa.Reg.t -> int64
val freg : t -> Pc_isa.Reg.t -> float
val memory : t -> Memory.t
