(* Thin shim over the pre-decoded threaded engine ({!Engine}).  The
   historical [Machine] surface — event records, [step]/[run], statics —
   is preserved verbatim so every consumer (profiler, cache studies,
   sampled replay, timing model) compiles unchanged and produces
   byte-identical output; [run_batched] additionally exposes the
   engine's chunked delivery for consumers that want to amortise the
   per-instruction callback.  The pre-rewrite interpreter survives as
   {!Machine_ref}, the differential-testing oracle. *)

type event = Engine.event = {
  mutable pc : int;
  mutable iclass : Pc_isa.Instr.iclass;
  mutable mem_addr : int;
  mutable is_store : bool;
  mutable is_branch : bool;
  mutable taken : bool;
  mutable next_pc : int;
  mutable reads : int list;
  mutable writes : int;
}

exception Fault = Engine.Fault

type t = Engine.t

type batch = Engine.batch = {
  mutable len : int;
  b_pc : int array;
  b_addr : int array;
  b_taken : bool array;
  mutable b_end_pc : int;
}

type statics = Engine.statics = {
  s_classes : Pc_isa.Instr.iclass array;
  s_read_lists : int list array;
  s_write_ids : int array;
}

let batch_capacity = Engine.chunk_size
let load = Engine.load
let step = Engine.step
let run = Engine.run
let run_batched = Engine.run_batched
let statics = Engine.statics
let halted = Engine.halted
let instruction_count = Engine.instruction_count
let retired_by_class = Engine.retired_by_class
let ireg = Engine.ireg
let freg = Engine.freg
let memory = Engine.memory
