(** Sparse 64-bit word memory.

    Byte-addressed, backed by 4 KiB pages allocated on demand, so a
    program can use a small data segment near {!Pc_isa.Program.data_base}
    and a stack near {!Pc_isa.Program.stack_base} without reserving the
    whole address space.  Unwritten memory reads as zero.  Accesses must
    be 8-byte aligned.

    Pages are unboxed [int64] bigarrays and the structure keeps a
    one-entry cache of the last page accessed, so word traffic with page
    locality costs a compare and an unboxed array access instead of two
    hashtable probes.  The representation is exposed (read-only, as a
    [private] record) so the pre-decoded engine ({!Engine}) can inline
    the cache-hit fast path inside its dispatch closures; everything
    else must go through {!read}/{!write}. *)

type page =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  pages : (int, page) Hashtbl.t;
  touched : (int, unit) Hashtbl.t;
  mutable cache_key : int;
      (** page key ([addr lsr page_bits]) of [cache_page], or [-1].
          Invariants relied on by the engine's inlined fast path: the
          cached page is present in [pages] and already recorded in
          [touched], so a hit may skip both hashtables. *)
  mutable cache_page : page;
}

val page_bits : int
(** Pages span [1 lsl page_bits] bytes (4 KiB). *)

val words_per_page : int

val create : unit -> t

val read : t -> int -> int64
(** [read t addr] returns the word at byte address [addr].
    Raises [Invalid_argument] on negative or unaligned addresses. *)

val write : t -> int -> int64 -> unit

val read_float : t -> int -> float
(** Word reinterpreted as an IEEE-754 double. *)

val write_float : t -> int -> float -> unit

val load_words : t -> (int * int64) list -> unit
(** Initialise a batch of words (used to load a program's data segment). *)

val pages_touched : t -> int
(** Number of distinct 4 KiB pages read or written so far — the
    program's memory footprint at page granularity (data-segment
    initialisation counts, since it goes through {!write}). *)
