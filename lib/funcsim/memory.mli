(** Sparse 64-bit word memory.

    Byte-addressed, backed by 4 KiB pages allocated on demand, so a
    program can use a small data segment near {!Pc_isa.Program.data_base}
    and a stack near {!Pc_isa.Program.stack_base} without reserving the
    whole address space.  Unwritten memory reads as zero.  Accesses must
    be 8-byte aligned. *)

type t

val create : unit -> t

val read : t -> int -> int64
(** [read t addr] returns the word at byte address [addr].
    Raises [Invalid_argument] on negative or unaligned addresses. *)

val write : t -> int -> int64 -> unit

val read_float : t -> int -> float
(** Word reinterpreted as an IEEE-754 double. *)

val write_float : t -> int -> float -> unit

val load_words : t -> (int * int64) list -> unit
(** Initialise a batch of words (used to load a program's data segment). *)

val pages_touched : t -> int
(** Number of distinct 4 KiB pages read or written so far — the
    program's memory footprint at page granularity (data-segment
    initialisation counts, since it goes through {!write}). *)
