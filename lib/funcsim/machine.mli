(** Functional (architectural) simulator for SRISC.

    Plays the role SimpleScalar's [sim-safe] plays in the paper: it
    executes a program instruction by instruction and exposes the retired
    instruction stream to consumers (the workload profiler, the standalone
    cache study, the trace-driven timing model).

    Since the pre-decoded rewrite this module is a thin shim over
    {!Engine}, which decodes the program once at {!load} into flat
    per-static-pc tables driving a threaded-dispatch loop, then retires
    instructions in chunks — [step]/[run]/[statics] behave exactly as
    they always did (checked instruction by instruction against the
    retained reference interpreter {!Machine_ref} in
    [test/test_funcsim_diff.ml]), and {!run_batched} exposes the
    chunked delivery directly.

    For performance the event record passed to [on_event] is a single
    mutable buffer reused on every step — consumers must copy any field
    they retain past the callback. *)

type event = Engine.event = {
  mutable pc : int;  (** static instruction index *)
  mutable iclass : Pc_isa.Instr.iclass;
  mutable mem_addr : int;  (** effective byte address, or [-1] *)
  mutable is_store : bool;
  mutable is_branch : bool;  (** conditional branch *)
  mutable taken : bool;  (** meaningful when [is_branch] *)
  mutable next_pc : int;  (** pc of the next dynamic instruction *)
  mutable reads : int list;  (** shared register ids read *)
  mutable writes : int;  (** shared register id written, or [-1] *)
}

type t = Engine.t

val load : Pc_isa.Program.t -> t
(** Fresh machine with the program's data segment loaded, [pc = 0],
    [sp = stack_base] and all registers zero.  Decoding happens here,
    once: the per-step path never inspects an {!Pc_isa.Instr.t} again. *)

val step : t -> (event -> unit) -> bool
(** Execute one instruction; invoke the callback with the retired event.
    Returns [false] once the machine has halted (no event is emitted for
    steps after halt). *)

val run : ?max_instrs:int -> t -> (event -> unit) -> int
(** [run ?max_instrs t f] steps until [Halt] or the instruction budget is
    exhausted; returns the number of retired instructions.  The default
    budget is 50 million (a runaway-program backstop).

    On completion the run's aggregates are published into the global
    {!Pc_obs.Metrics} registry: [funcsim.runs], [funcsim.retired.total],
    per-class [funcsim.retired.<class>] counters and the
    [funcsim.mem.pages_touched] high-water gauge. *)

type batch = Engine.batch = {
  mutable len : int;  (** valid rows, [0 < len <= batch_capacity] *)
  b_pc : int array;  (** static pc per retired instruction *)
  b_addr : int array;
      (** effective byte address — meaningful only for rows whose
          static pc is a load or store (check {!statics}); other rows
          hold stale values from earlier chunks *)
  b_taken : bool array;
      (** conditional-branch outcome — meaningful only for rows whose
          static pc is a branch; other rows hold stale values *)
  mutable b_end_pc : int;
      (** the machine's pc after the last row: row [j]'s next dynamic
          pc is [b_pc.(j + 1)], or [b_end_pc] for the final row (after
          a fault flush this is the faulting instruction's pc) *)
}
(** One chunk of retired instructions: the dynamic [(pc, mem_addr,
    taken)] columns; everything else about a retired event is a
    per-static-pc constant available from {!statics}, and next-pc values
    are derived from [b_pc]/[b_end_pc] rather than stored.  The hot loop
    stores only what each instruction actually produces, so rows whose
    static is not a memory operation or branch leave [b_addr]/[b_taken]
    untouched.  The buffer is owned by the machine and reused for every
    chunk — consumers must copy anything they retain past the
    callback. *)

val batch_capacity : int
(** Chunk size of {!run_batched} (4096 retired instructions). *)

val run_batched : ?max_instrs:int -> t -> (batch -> unit) -> int
(** Like {!run} but delivers the retired stream in fixed-size chunks of
    at most {!batch_capacity} rows, amortising the consumer callback
    over ~4096 retirements — profilers and cache studies that only need
    the dynamic columns should prefer this entry.  The final chunk is
    partial when the program halts or the budget runs out mid-chunk; on
    a fault, rows retired before the faulting instruction are flushed
    before the exception propagates.  Publishes the same per-run
    metrics as {!run}. *)

type statics = Engine.statics = {
  s_classes : Pc_isa.Instr.iclass array;  (** class per static pc *)
  s_read_lists : int list array;  (** register ids read per static pc *)
  s_write_ids : int array;  (** register id written per static pc, or [-1] *)
}

val statics : t -> statics
(** Per-static-instruction metadata (fresh copies, indexed by [pc]).
    Together with the dynamic [(pc, taken, mem_addr)] triple this is
    enough to reconstruct the full retired-event stream, which is what
    lets sampled simulation record compact replay traces instead of
    whole event records. *)

val halted : t -> bool
val instruction_count : t -> int

val retired_by_class : t -> int array
(** Dynamic instructions retired per {!Pc_isa.Instr.class_index}, over
    the machine's whole lifetime (a fresh copy). *)

val ireg : t -> Pc_isa.Reg.t -> int64
(** Architected integer register value (for result checking in tests). *)

val freg : t -> Pc_isa.Reg.t -> float

val memory : t -> Memory.t

exception Fault of string
(** Raised on execution faults: pc out of range or a misaligned or
    negative memory access. *)
