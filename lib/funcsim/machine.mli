(** Functional (architectural) simulator for SRISC.

    Plays the role SimpleScalar's [sim-safe] plays in the paper: it
    executes a program instruction by instruction and exposes the retired
    instruction stream to consumers (the workload profiler, the standalone
    cache study, the trace-driven timing model).

    For performance the event record passed to [on_event] is a single
    mutable buffer reused on every step — consumers must copy any field
    they retain past the callback. *)

type event = {
  mutable pc : int;  (** static instruction index *)
  mutable iclass : Pc_isa.Instr.iclass;
  mutable mem_addr : int;  (** effective byte address, or [-1] *)
  mutable is_store : bool;
  mutable is_branch : bool;  (** conditional branch *)
  mutable taken : bool;  (** meaningful when [is_branch] *)
  mutable next_pc : int;  (** pc of the next dynamic instruction *)
  mutable reads : int list;  (** shared register ids read *)
  mutable writes : int;  (** shared register id written, or [-1] *)
}

type t

val load : Pc_isa.Program.t -> t
(** Fresh machine with the program's data segment loaded, [pc = 0],
    [sp = stack_base] and all registers zero. *)

val step : t -> (event -> unit) -> bool
(** Execute one instruction; invoke the callback with the retired event.
    Returns [false] once the machine has halted (no event is emitted for
    steps after halt). *)

val run : ?max_instrs:int -> t -> (event -> unit) -> int
(** [run ?max_instrs t f] steps until [Halt] or the instruction budget is
    exhausted; returns the number of retired instructions.  The default
    budget is 50 million (a runaway-program backstop).

    On completion the run's aggregates are published into the global
    {!Pc_obs.Metrics} registry: [funcsim.runs], [funcsim.retired.total],
    per-class [funcsim.retired.<class>] counters and the
    [funcsim.mem.pages_touched] high-water gauge. *)

type statics = {
  s_classes : Pc_isa.Instr.iclass array;  (** class per static pc *)
  s_read_lists : int list array;  (** register ids read per static pc *)
  s_write_ids : int array;  (** register id written per static pc, or [-1] *)
}

val statics : t -> statics
(** Per-static-instruction metadata (fresh copies, indexed by [pc]).
    Together with the dynamic [(pc, taken, mem_addr)] triple this is
    enough to reconstruct the full retired-event stream, which is what
    lets sampled simulation record compact replay traces instead of
    whole event records. *)

val halted : t -> bool
val instruction_count : t -> int

val retired_by_class : t -> int array
(** Dynamic instructions retired per {!Pc_isa.Instr.class_index}, over
    the machine's whole lifetime (a fresh copy). *)

val ireg : t -> Pc_isa.Reg.t -> int64
(** Architected integer register value (for result checking in tests). *)

val freg : t -> Pc_isa.Reg.t -> float

val memory : t -> Memory.t

exception Fault of string
(** Raised on execution faults: pc out of range or a misaligned or
    negative memory access. *)
