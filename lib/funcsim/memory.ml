(* 4 KiB pages of 512 words, indexed by address lsr 12. *)

type t = {
  pages : (int, int64 array) Hashtbl.t;
  touched : (int, unit) Hashtbl.t;  (* pages read or written at least once *)
}

let page_bits = 12
let words_per_page = 512

let create () = { pages = Hashtbl.create 64; touched = Hashtbl.create 64 }

let check addr =
  if addr < 0 then invalid_arg "Memory: negative address";
  if addr land 7 <> 0 then
    invalid_arg (Printf.sprintf "Memory: unaligned access at %#x" addr)

let touch t key = if not (Hashtbl.mem t.touched key) then Hashtbl.add t.touched key ()

let read t addr =
  check addr;
  let key = addr lsr page_bits in
  touch t key;
  match Hashtbl.find_opt t.pages key with
  | None -> 0L
  | Some page -> page.((addr lsr 3) land (words_per_page - 1))

let write t addr v =
  check addr;
  let key = addr lsr page_bits in
  touch t key;
  let page =
    match Hashtbl.find_opt t.pages key with
    | Some p -> p
    | None ->
      let p = Array.make words_per_page 0L in
      Hashtbl.add t.pages key p;
      p
  in
  page.((addr lsr 3) land (words_per_page - 1)) <- v

let pages_touched t = Hashtbl.length t.touched
let read_float t addr = Int64.float_of_bits (read t addr)
let write_float t addr v = write t addr (Int64.bits_of_float v)
let load_words t words = List.iter (fun (addr, v) -> write t addr v) words
