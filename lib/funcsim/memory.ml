(* 4 KiB pages of 512 words, indexed by address lsr 12.

   Pages are unboxed int64 bigarrays so word reads/writes never allocate
   a box, and the struct keeps a one-entry cache of the last page hit:
   straight-line loads and stores to the same page skip both hashtable
   probes (the page lookup and the touch-set membership test).  The
   cache only ever holds pages present in [pages] — a read of an
   absent page returns zero without caching anything — and a page is
   recorded in [touched] before it can enter the cache, so cache hits
   can skip the touch. *)

type page =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  pages : (int, page) Hashtbl.t;
  touched : (int, unit) Hashtbl.t;  (* pages read or written at least once *)
  mutable cache_key : int;  (* page key of [cache_page], or -1 *)
  mutable cache_page : page;
}

let page_bits = 12
let words_per_page = 512

let fresh_page () =
  let p =
    Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout words_per_page
  in
  Bigarray.Array1.fill p 0L;
  p

let create () =
  {
    pages = Hashtbl.create 64;
    touched = Hashtbl.create 64;
    cache_key = -1;  (* valid page keys are >= 0, so -1 never hits *)
    cache_page = fresh_page ();
  }

let check addr =
  if addr < 0 then invalid_arg "Memory: negative address";
  if addr land 7 <> 0 then
    invalid_arg (Printf.sprintf "Memory: unaligned access at %#x" addr)

let touch t key = if not (Hashtbl.mem t.touched key) then Hashtbl.add t.touched key ()

let word_of addr = (addr lsr 3) land (words_per_page - 1)

let read t addr =
  check addr;
  let key = addr lsr page_bits in
  if key = t.cache_key then Bigarray.Array1.unsafe_get t.cache_page (word_of addr)
  else begin
    touch t key;
    match Hashtbl.find_opt t.pages key with
    | None -> 0L
    | Some page ->
      t.cache_key <- key;
      t.cache_page <- page;
      Bigarray.Array1.unsafe_get page (word_of addr)
  end

let write t addr v =
  check addr;
  let key = addr lsr page_bits in
  if key = t.cache_key then Bigarray.Array1.unsafe_set t.cache_page (word_of addr) v
  else begin
    touch t key;
    let page =
      match Hashtbl.find_opt t.pages key with
      | Some p -> p
      | None ->
        let p = fresh_page () in
        Hashtbl.add t.pages key p;
        p
    in
    t.cache_key <- key;
    t.cache_page <- page;
    Bigarray.Array1.unsafe_set page (word_of addr) v
  end

let pages_touched t = Hashtbl.length t.touched
let read_float t addr = Int64.float_of_bits (read t addr)
let write_float t addr v = write t addr (Int64.bits_of_float v)
let load_words t words = List.iter (fun (addr, v) -> write t addr v) words
