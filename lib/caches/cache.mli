(** Set-associative cache model with configurable replacement.

    Models tag state only (no data), which is all that miss-per-
    instruction and latency studies need.  Writes are write-allocate and
    update recency exactly like reads; write-back traffic is not modelled
    (the paper's metrics — misses/instruction, IPC, relative power — do
    not depend on it).

    The paper's experiments use true LRU throughout; FIFO and random
    replacement are provided for replacement-policy studies beyond the
    paper. *)

type replacement =
  | Lru  (** evict the least recently used way (the paper's policy) *)
  | Fifo  (** evict the oldest-inserted way; hits do not refresh *)
  | Random of int  (** evict a deterministically pseudo-random way (seed) *)

type config = {
  size_bytes : int;
  assoc : int;  (** ways; [0] means fully associative *)
  line_bytes : int;  (** must be a power of two *)
  replacement : replacement;
}

val config :
  ?replacement:replacement -> size_bytes:int -> assoc:int -> line_bytes:int -> unit ->
  config
(** Validating constructor (default replacement [Lru]): sizes must be
    positive powers of two, the line must divide the size, and the way
    count must divide the number of lines.  Raises [Invalid_argument]
    otherwise. *)

val config_name : config -> string
(** e.g. ["4KB/2-way/32B"] or ["256B/full/32B"]. *)

val ways : config -> int
(** Effective associativity ([size / line] for fully associative). *)

type t

val create : config -> t

val access : t -> int -> bool
(** [access t addr] simulates one access; returns [true] on a hit and
    updates LRU/tag state. *)

val accesses : t -> int
val misses : t -> int

val miss_rate : t -> float
(** Misses per access; [0] when no accesses have happened. *)

val reset_stats : t -> unit
(** Zero the counters but keep tag state (for warm-up discard). *)

val reset : t -> unit
(** Full reset back to the freshly-created state: invalidate every
    line, zero the recency clock and counters, and rewind the random-
    replacement stream to its seed.  After [reset] the cache behaves
    bit-identically to [create (config)] — this is what lets a shared
    (e.g. multi-tenant L2) instance be reused across independent runs
    without state leaking between them. *)
