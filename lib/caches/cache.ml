type replacement = Lru | Fifo | Random of int

type config = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  replacement : replacement;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ?(replacement = Lru) ~size_bytes ~assoc ~line_bytes () =
  if not (is_pow2 size_bytes) then
    invalid_arg "Cache.config: size must be a positive power of two";
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.config: line size must be a positive power of two";
  if size_bytes mod line_bytes <> 0 then
    invalid_arg "Cache.config: line size must divide cache size";
  let lines = size_bytes / line_bytes in
  if assoc < 0 then invalid_arg "Cache.config: negative associativity";
  if assoc > 0 && lines mod assoc <> 0 then
    invalid_arg "Cache.config: way count must divide line count";
  { size_bytes; assoc; line_bytes; replacement }

let ways c = if c.assoc = 0 then c.size_bytes / c.line_bytes else c.assoc

let config_name c =
  let size =
    if c.size_bytes >= 1024 && c.size_bytes mod 1024 = 0 then
      Printf.sprintf "%dKB" (c.size_bytes / 1024)
    else Printf.sprintf "%dB" c.size_bytes
  in
  let assoc =
    if c.assoc = 0 then "full"
    else if c.assoc = 1 then "direct"
    else Printf.sprintf "%d-way" c.assoc
  in
  let policy =
    match c.replacement with Lru -> "" | Fifo -> "/fifo" | Random _ -> "/rand"
  in
  Printf.sprintf "%s/%s/%dB%s" size assoc c.line_bytes policy

type t = {
  cfg : config;
  sets : int;
  nways : int;
  line_shift : int;
  tags : int array;  (** [set * nways + way]; [-1] = invalid *)
  ages : int array;  (** larger = more recently used *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable rand_state : int64;  (* SplitMix-style victim stream for Random *)
}

let initial_rand_state cfg =
  match cfg.replacement with
  | Random seed -> Int64.of_int ((seed * 2654435761) lor 1)
  | Lru | Fifo -> 1L

let create cfg =
  let nways = ways cfg in
  let sets = cfg.size_bytes / cfg.line_bytes / nways in
  let line_shift =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 cfg.line_bytes 0
  in
  {
    cfg;
    sets;
    nways;
    line_shift;
    tags = Array.make (sets * nways) (-1);
    ages = Array.make (sets * nways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    rand_state = initial_rand_state cfg;
  }

let access t addr =
  let line = addr lsr t.line_shift in
  let set = line mod t.sets in
  let base = set * t.nways in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  (* Look for the tag; remember the LRU way for replacement. *)
  let hit_way = ref (-1) in
  let lru_way = ref 0 in
  let lru_age = ref max_int in
  for w = 0 to t.nways - 1 do
    let idx = base + w in
    if t.tags.(idx) = line then hit_way := w
    else if t.ages.(idx) < !lru_age then begin
      lru_age := t.ages.(idx);
      lru_way := w
    end
  done;
  if !hit_way >= 0 then begin
    (* FIFO does not refresh on hit; LRU does. *)
    (match t.cfg.replacement with
    | Lru | Random _ -> t.ages.(base + !hit_way) <- t.clock
    | Fifo -> ());
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let victim =
      match t.cfg.replacement with
      | Lru | Fifo -> !lru_way
      | Random _ ->
        (* prefer an invalid way; otherwise draw from the stream *)
        let invalid = ref (-1) in
        for w = 0 to t.nways - 1 do
          if t.tags.(base + w) = -1 && !invalid < 0 then invalid := w
        done;
        if !invalid >= 0 then !invalid
        else begin
          (* Unbiased victim draw.  [mod nways] of a 31-bit draw skews
             low ways whenever 2^31 is not a multiple of [nways]; mask
             when [nways] is a power of two (always, given power-of-two
             geometry), and otherwise reject draws from the final
             partial multiple of [nways] — same scheme as [Rng.int]. *)
          let draw () =
            t.rand_state <-
              Int64.add
                (Int64.mul t.rand_state 6364136223846793005L)
                1442695040888963407L;
            Int64.to_int (Int64.shift_right_logical t.rand_state 33)
          in
          if t.nways land (t.nways - 1) = 0 then draw () land (t.nways - 1)
          else begin
            let bound = 1 lsl 31 in
            let limit = bound - (bound mod t.nways) in
            let v = ref (draw ()) in
            while !v >= limit do
              v := draw ()
            done;
            !v mod t.nways
          end
        end
    in
    let idx = base + victim in
    t.tags.(idx) <- line;
    t.ages.(idx) <- t.clock;
    false
  end

let accesses t = t.accesses
let misses t = t.misses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0;
  t.rand_state <- initial_rand_state t.cfg

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
