(** One-pass Mattson stack-distance profiling for LRU cache grids.

    A single traversal of an address trace prices {e every} LRU
    configuration of a size×associativity grid at once, exactly.  The
    classic inclusion argument: an access to line [l] hits in an LRU
    cache with [S] sets and [A] ways iff [l] has been touched before and
    the number of {e distinct} lines mapping to [l]'s set that were
    touched since is less than [A] — the per-set stack distance.  So one
    distance histogram per distinct set count replaces one full tag-array
    simulation per configuration, and a 28-point grid costs about one
    pass instead of 28.

    Two tracker shapes, chosen per set count:

    - set-associative columns keep a per-set most-recently-used stack
      truncated at the deepest associativity in the grid (4 for the
      paper's study), so an access is a ≤4-entry search plus a
      move-to-front;
    - the fully-associative column (one set, way count up to
      [size/line] = 512) keeps the [cap] most recent distinct lines in
      a circular recency buffer plus an open-addressed membership
      table: a hit at stack distance [d] costs a [d]-entry scan and
      shift, while cold and deeper-than-[cap] accesses — misses in
      every member configuration, so they need no exact distance — are
      answered by the table and inserted in O(1).

    Counts match a tag-array simulation ({!Cache.access} per
    configuration) bit-for-bit, including compulsory (cold) misses;
    {!Study.run_trace_onepass} cross-checks this against the simulated
    {!Study.run_trace} oracle in the test suite.

    Only true-LRU grids obey the inclusion property; {!create} rejects
    FIFO and Random configurations. *)

type t

val create : Cache.config array -> t
(** Build a profiler for a grid of LRU configurations (any mix of line
    sizes, set counts and associativities; set counts follow from the
    power-of-two sizes {!Cache.config} enforces).  Raises
    [Invalid_argument] on an empty grid or a non-LRU configuration. *)

val access : t -> int -> unit
(** Feed one address (byte address, as {!Cache.access} takes). *)

val accesses : t -> int
(** Total addresses fed so far (identical for every configuration). *)

val misses : t -> int array
(** Exact LRU miss count per configuration, in the grid order given to
    {!create}, for the trace fed so far.  Cheap (folds the distance
    histograms); callers snapshot it at a warmup boundary and subtract. *)
