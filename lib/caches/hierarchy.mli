(** Memory hierarchy: an L1 cache, an optional L2, and main memory, with
    per-level access latencies.

    The timing model instantiates one hierarchy for the instruction side
    and one for the data side.  The paper's "64 KB unified L2" is modelled
    as a private L2 behind each L1 (the experiments never vary the L2, so
    I/D interference in it is irrelevant to every reported trend). *)

type config = {
  l1 : Cache.config;
  l1_latency : int;  (** cycles for an L1 hit *)
  l2 : Cache.config option;
  l2_latency : int;  (** additional cycles for an L2 hit *)
  mem_latency : int;  (** additional cycles for main memory *)
}

type t

val create : config -> t

val access : t -> int -> int
(** [access t addr] simulates the access through the hierarchy and
    returns its total latency in cycles. *)

val l1_accesses : t -> int
val l1_misses : t -> int
val l2_accesses : t -> int
(** Zero when there is no L2. *)

val l2_misses : t -> int

val mem_accesses : t -> int
(** Accesses that reached main memory. *)

val l1_mpi : t -> instrs:int -> float
(** L1 misses per instruction. *)

val publish_metrics : t -> prefix:string -> unit
(** Add this hierarchy's lifetime counters into the global
    {!Pc_obs.Metrics} registry, as [<prefix>.l1.accesses],
    [<prefix>.l1.misses], [<prefix>.l2.accesses], [<prefix>.l2.misses]
    and [<prefix>.mem.accesses].  The timing model calls this once per
    simulated run with prefixes [uarch.icache] / [uarch.dcache]. *)
