(** Memory hierarchy: an L1 cache, an optional L2, and main memory, with
    per-level access latencies.

    The timing model instantiates one hierarchy for the instruction side
    and one for the data side.  The paper's "64 KB unified L2" is modelled
    as a private L2 behind each L1 (the experiments never vary the L2, so
    I/D interference in it is irrelevant to every reported trend).

    Multi-tenant scenarios ({!Pc_scenario}) instead build hierarchies
    with {!create_shared}: several tenants' L1s drain into one shared
    {!Cache.t} L2 instance, with a per-tenant address [tag] keeping
    distinct tenants' lines distinct so they contend for L2 capacity
    exactly like co-scheduled programs on a chip.  All L2 statistics are
    tracked per hierarchy (not read back from the cache instance), so
    per-tenant L2 access/miss counts stay correct under sharing. *)

type config = {
  l1 : Cache.config;
  l1_latency : int;  (** cycles for an L1 hit *)
  l2 : Cache.config option;
  l2_latency : int;  (** additional cycles for an L2 hit *)
  mem_latency : int;  (** additional cycles for main memory *)
}

type t

val create : config -> t

val create_shared : ?tag:int -> l2:Cache.t option -> config -> t
(** A hierarchy whose L2 is the given, possibly shared, cache instance
    instead of a freshly created private one.  [tag] (default 0, must
    be non-negative) is OR-ed into every address before any cache sees
    it: give each tenant a tag above its address-space width (tenant
    [i lsl 26] in {!Pc_scenario}) and tenants' lines stay distinct in
    the shared L2 while the private L1's behaviour is unchanged (a
    constant high-bit tag moves neither set index nor hit/miss
    pattern).  With [tag = 0] and a fresh [l2] built from the same
    config, behaviour is bit-identical to {!create}.  Raises
    [Invalid_argument] when the L2's presence disagrees with
    [config.l2] or [tag] is negative. *)

val access : t -> int -> int
(** [access t addr] simulates the access through the hierarchy and
    returns its total latency in cycles. *)

val l1_accesses : t -> int
val l1_misses : t -> int
val l2_accesses : t -> int
(** L1 misses this hierarchy sent to its L2 (zero when there is no L2).
    Tracked per hierarchy, so the count stays per-tenant even when the
    L2 instance is shared. *)

val l2_misses : t -> int

val mem_accesses : t -> int
(** Accesses that reached main memory. *)

val reset : t -> unit
(** Reset the private L1 ({!Cache.reset}) and this hierarchy's own
    counters; a privately-owned L2 (from {!create}) is reset too, but a
    shared L2 (from {!create_shared}) is left alone — reset the shared
    instance itself exactly once, then every hierarchy that drains into
    it, and the whole ensemble is back to its freshly-created state. *)

val l1_mpi : t -> instrs:int -> float
(** L1 misses per instruction. *)

val publish_metrics : t -> prefix:string -> unit
(** Add this hierarchy's lifetime counters into the global
    {!Pc_obs.Metrics} registry, as [<prefix>.l1.accesses],
    [<prefix>.l1.misses], [<prefix>.l2.accesses], [<prefix>.l2.misses]
    and [<prefix>.mem.accesses].  The timing model calls this once per
    simulated run with prefixes [uarch.icache] / [uarch.dcache]. *)
