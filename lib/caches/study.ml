let line_bytes = 32

let configs =
  let sizes = [| 256; 512; 1024; 2048; 4096; 8192; 16384 |] in
  let assocs = [| 1; 2; 4; 0 |] in
  Array.concat
    (Array.to_list
       (Array.map
          (fun size ->
            Array.map
              (fun assoc -> Cache.config ~size_bytes:size ~assoc ~line_bytes ())
              assocs)
          sizes))

let reference_index = 0

type result = { config : Cache.config; misses : int; accesses : int; mpi : float }

let c_runs = Pc_obs.Metrics.counter "study.runs"
let c_refs = Pc_obs.Metrics.counter "study.trace_refs"

let run_trace feed =
  let caches = Array.map Cache.create configs in
  let emit addr = Array.iter (fun c -> ignore (Cache.access c addr)) caches in
  let instrs = feed emit in
  Pc_obs.Metrics.incr c_runs;
  Pc_obs.Metrics.add c_refs (Cache.accesses caches.(reference_index));
  Array.map2
    (fun config cache ->
      {
        config;
        misses = Cache.misses cache;
        accesses = Cache.accesses cache;
        mpi =
          (if instrs = 0 then 0.0
           else float_of_int (Cache.misses cache) /. float_of_int instrs);
      })
    configs caches

let relative_mpi results =
  let reference = results.(reference_index).mpi in
  let rest =
    Array.of_list
      (List.filteri (fun i _ -> i <> reference_index) (Array.to_list results))
  in
  if reference = 0.0 then Array.map (fun r -> r.mpi) rest
  else Array.map (fun r -> r.mpi /. reference) rest
