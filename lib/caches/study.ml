let line_bytes = 32

let configs =
  let sizes = [| 256; 512; 1024; 2048; 4096; 8192; 16384 |] in
  let assocs = [| 1; 2; 4; 0 |] in
  Array.concat
    (Array.to_list
       (Array.map
          (fun size ->
            Array.map
              (fun assoc -> Cache.config ~size_bytes:size ~assoc ~line_bytes ())
              assocs)
          sizes))

let reference_index = 0

type result = { config : Cache.config; misses : int; accesses : int; mpi : float }

let c_runs = Pc_obs.Metrics.counter "study.runs"
let c_refs = Pc_obs.Metrics.counter "study.trace_refs"

let run_trace ?warmup feed =
  let caches = Array.map Cache.create configs in
  let emit addr = Array.iter (fun c -> ignore (Cache.access c addr)) caches in
  (* References fed during warmup prime the tag state but are excluded
     from the reported counts by snapshotting each cache's counters at
     the warmup/measurement boundary. *)
  let warm_misses, warm_accesses =
    match warmup with
    | None -> (Array.make (Array.length caches) 0, Array.make (Array.length caches) 0)
    | Some warm ->
      warm emit;
      (Array.map Cache.misses caches, Array.map Cache.accesses caches)
  in
  let instrs = feed emit in
  Pc_obs.Metrics.incr c_runs;
  Pc_obs.Metrics.add c_refs
    (Cache.accesses caches.(reference_index) - warm_accesses.(reference_index));
  Array.init (Array.length configs) (fun i ->
      let misses = Cache.misses caches.(i) - warm_misses.(i) in
      {
        config = configs.(i);
        misses;
        accesses = Cache.accesses caches.(i) - warm_accesses.(i);
        mpi =
          (if instrs = 0 then 0.0
           else float_of_int misses /. float_of_int instrs);
      })

let relative_mpi results =
  let reference = results.(reference_index).mpi in
  let rest =
    Array.of_list
      (List.filteri (fun i _ -> i <> reference_index) (Array.to_list results))
  in
  if reference = 0.0 then Array.map (fun r -> r.mpi) rest
  else Array.map (fun r -> r.mpi /. reference) rest
