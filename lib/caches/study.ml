let line_bytes = 32

let configs =
  let sizes = [| 256; 512; 1024; 2048; 4096; 8192; 16384 |] in
  let assocs = [| 1; 2; 4; 0 |] in
  Array.concat
    (Array.to_list
       (Array.map
          (fun size ->
            Array.map
              (fun assoc -> Cache.config ~size_bytes:size ~assoc ~line_bytes ())
              assocs)
          sizes))

let reference_index = 0

type result = { config : Cache.config; misses : int; accesses : int; mpi : float }

let c_runs = Pc_obs.Metrics.counter "study.runs"
let c_refs = Pc_obs.Metrics.counter "study.trace_refs"
let c_onepass_runs = Pc_obs.Metrics.counter "study.onepass.runs"
let c_onepass_refs = Pc_obs.Metrics.counter "study.onepass.trace_refs"

let run_trace ?warmup feed =
  let caches = Array.map Cache.create configs in
  let emit addr = Array.iter (fun c -> ignore (Cache.access c addr)) caches in
  (* References fed during warmup prime the tag state but are excluded
     from the reported counts by snapshotting each cache's counters at
     the warmup/measurement boundary. *)
  let warm_misses, warm_accesses =
    match warmup with
    | None -> (Array.make (Array.length caches) 0, Array.make (Array.length caches) 0)
    | Some warm ->
      warm emit;
      (Array.map Cache.misses caches, Array.map Cache.accesses caches)
  in
  let instrs = feed emit in
  Pc_obs.Metrics.incr c_runs;
  Pc_obs.Metrics.add c_refs
    (Cache.accesses caches.(reference_index) - warm_accesses.(reference_index));
  Array.init (Array.length configs) (fun i ->
      let misses = Cache.misses caches.(i) - warm_misses.(i) in
      {
        config = configs.(i);
        misses;
        accesses = Cache.accesses caches.(i) - warm_accesses.(i);
        mpi =
          (if instrs = 0 then 0.0
           else float_of_int misses /. float_of_int instrs);
      })

(* One-pass variant: same contract as [run_trace] (including the
   ?warmup snapshot semantics), but the grid is priced by a single
   stack-distance traversal instead of 28 tag-array simulations.  The
   test suite holds the two byte-identical per config. *)
let run_trace_onepass ?warmup feed =
  Pc_obs.Span.with_ "study:onepass" @@ fun () ->
  let prof = Stack_dist.create configs in
  let emit addr = Stack_dist.access prof addr in
  let warm_misses, warm_accesses =
    match warmup with
    | None -> (Array.make (Array.length configs) 0, 0)
    | Some warm ->
      warm emit;
      (Stack_dist.misses prof, Stack_dist.accesses prof)
  in
  let instrs = feed emit in
  Pc_obs.Metrics.incr c_onepass_runs;
  Pc_obs.Metrics.add c_onepass_refs (Stack_dist.accesses prof - warm_accesses);
  let misses = Stack_dist.misses prof in
  let accesses = Stack_dist.accesses prof - warm_accesses in
  Array.init (Array.length configs) (fun i ->
      let misses = misses.(i) - warm_misses.(i) in
      {
        config = configs.(i);
        misses;
        accesses;
        mpi =
          (if instrs = 0 then 0.0
           else float_of_int misses /. float_of_int instrs);
      })

let relative_mpi results =
  let reference = results.(reference_index).mpi in
  let rest =
    Array.of_list
      (List.filteri (fun i _ -> i <> reference_index) (Array.to_list results))
  in
  (* A zero-MPI reference makes the ratios undefined; returning absolute
     MPIs here (as this once did) silently switches the series' units
     mid-pipeline.  NaN is the explicit sentinel: the pc JSON writers
     render non-finite values as null (PR 4 audit), so a degenerate
     series can never be mistaken for ratios downstream. *)
  if reference = 0.0 then Array.map (fun _ -> Float.nan) rest
  else Array.map (fun r -> r.mpi /. reference) rest
