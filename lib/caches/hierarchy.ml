type config = {
  l1 : Cache.config;
  l1_latency : int;
  l2 : Cache.config option;
  l2_latency : int;
  mem_latency : int;
}

type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t option;
  mutable mem_accesses : int;
}

let create cfg =
  { cfg; l1 = Cache.create cfg.l1; l2 = Option.map Cache.create cfg.l2; mem_accesses = 0 }

let access t addr =
  if Cache.access t.l1 addr then t.cfg.l1_latency
  else
    match t.l2 with
    | Some l2 ->
      if Cache.access l2 addr then t.cfg.l1_latency + t.cfg.l2_latency
      else begin
        t.mem_accesses <- t.mem_accesses + 1;
        t.cfg.l1_latency + t.cfg.l2_latency + t.cfg.mem_latency
      end
    | None ->
      t.mem_accesses <- t.mem_accesses + 1;
      t.cfg.l1_latency + t.cfg.mem_latency

let l1_accesses t = Cache.accesses t.l1
let l1_misses t = Cache.misses t.l1
let l2_accesses t = match t.l2 with Some c -> Cache.accesses c | None -> 0
let l2_misses t = match t.l2 with Some c -> Cache.misses c | None -> 0
let mem_accesses t = t.mem_accesses

let l1_mpi t ~instrs =
  if instrs = 0 then 0.0 else float_of_int (Cache.misses t.l1) /. float_of_int instrs

let publish_metrics t ~prefix =
  let c suffix v = Pc_obs.Metrics.add (Pc_obs.Metrics.counter (prefix ^ suffix)) v in
  c ".l1.accesses" (l1_accesses t);
  c ".l1.misses" (l1_misses t);
  c ".l2.accesses" (l2_accesses t);
  c ".l2.misses" (l2_misses t);
  c ".mem.accesses" (mem_accesses t)
