type config = {
  l1 : Cache.config;
  l1_latency : int;
  l2 : Cache.config option;
  l2_latency : int;
  mem_latency : int;
}

type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t option;
  owns_l2 : bool;  (* false when the L2 instance is shared with other hierarchies *)
  tag : int;  (* OR-ed into every address; disambiguates tenants in a shared L2 *)
  mutable l2_access_count : int;
  mutable l2_miss_count : int;
  mutable mem_accesses : int;
}

let create cfg =
  {
    cfg;
    l1 = Cache.create cfg.l1;
    l2 = Option.map Cache.create cfg.l2;
    owns_l2 = true;
    tag = 0;
    l2_access_count = 0;
    l2_miss_count = 0;
    mem_accesses = 0;
  }

let create_shared ?(tag = 0) ~l2 (cfg : config) =
  (match (cfg.l2, l2) with
  | Some _, None | None, Some _ ->
    invalid_arg
      "Hierarchy.create_shared: shared L2 presence must match the config's"
  | Some _, Some _ | None, None -> ());
  if tag < 0 then invalid_arg "Hierarchy.create_shared: negative tag";
  {
    cfg;
    l1 = Cache.create cfg.l1;
    l2;
    owns_l2 = false;
    tag;
    l2_access_count = 0;
    l2_miss_count = 0;
    mem_accesses = 0;
  }

let access t addr =
  let addr = addr lor t.tag in
  if Cache.access t.l1 addr then t.cfg.l1_latency
  else
    match t.l2 with
    | Some l2 ->
      t.l2_access_count <- t.l2_access_count + 1;
      if Cache.access l2 addr then t.cfg.l1_latency + t.cfg.l2_latency
      else begin
        t.l2_miss_count <- t.l2_miss_count + 1;
        t.mem_accesses <- t.mem_accesses + 1;
        t.cfg.l1_latency + t.cfg.l2_latency + t.cfg.mem_latency
      end
    | None ->
      t.mem_accesses <- t.mem_accesses + 1;
      t.cfg.l1_latency + t.cfg.mem_latency

let l1_accesses t = Cache.accesses t.l1
let l1_misses t = Cache.misses t.l1
let l2_accesses t = t.l2_access_count
let l2_misses t = t.l2_miss_count
let mem_accesses t = t.mem_accesses

let reset t =
  Cache.reset t.l1;
  if t.owns_l2 then Option.iter Cache.reset t.l2;
  t.l2_access_count <- 0;
  t.l2_miss_count <- 0;
  t.mem_accesses <- 0

let l1_mpi t ~instrs =
  if instrs = 0 then 0.0 else float_of_int (Cache.misses t.l1) /. float_of_int instrs

let publish_metrics t ~prefix =
  let c suffix v = Pc_obs.Metrics.add (Pc_obs.Metrics.counter (prefix ^ suffix)) v in
  c ".l1.accesses" (l1_accesses t);
  c ".l1.misses" (l1_misses t);
  c ".l2.accesses" (l2_accesses t);
  c ".l2.misses" (l2_misses t);
  c ".mem.accesses" (mem_accesses t)
