(** The paper's 28-configuration L1 D-cache study set (Section 5.1):
    sizes 256 B – 16 KB (powers of two) crossed with direct-mapped,
    2-way, 4-way and fully associative, all with 32-byte lines and LRU. *)

val configs : Cache.config array
(** The 28 configurations, ordered by size then associativity.  Index 0
    is the 256 B direct-mapped reference configuration. *)

val reference_index : int
(** Index of the 256 B direct-mapped configuration (0). *)

type result = {
  config : Cache.config;
  misses : int;
  accesses : int;
  mpi : float;  (** misses per instruction *)
}

val run_trace :
  ?warmup:((int -> unit) -> unit) -> ((int -> unit) -> int) -> result array
(** [run_trace feed] simulates all 28 caches in one pass over a memory
    reference trace.  [feed emit] must call [emit addr] for every data
    reference and return the total dynamic instruction count (the
    misses-per-instruction denominator).  Each completed pass bumps the
    global [study.runs] counter and adds the trace's reference count to
    [study.trace_refs].

    [warmup], when given, is fed first through the same caches: its
    references prime the tag state but are excluded from every reported
    [misses]/[accesses] count (and from [study.trace_refs]).  Sampled
    simulation uses this to measure one representative window on a
    warmed cache without a second pass. *)

val relative_mpi : result array -> float array
(** The paper's Figure-4 series: misses-per-instruction of each of the 27
    non-reference configurations divided by the reference configuration's
    misses-per-instruction.  When the reference has zero misses, returns
    raw MPIs instead (degenerate but defined). *)
