(** The paper's 28-configuration L1 D-cache study set (Section 5.1):
    sizes 256 B – 16 KB (powers of two) crossed with direct-mapped,
    2-way, 4-way and fully associative, all with 32-byte lines and LRU. *)

val configs : Cache.config array
(** The 28 configurations, ordered by size then associativity.  Index 0
    is the 256 B direct-mapped reference configuration. *)

val reference_index : int
(** Index of the 256 B direct-mapped configuration (0). *)

type result = {
  config : Cache.config;
  misses : int;
  accesses : int;
  mpi : float;  (** misses per instruction *)
}

val run_trace :
  ?warmup:((int -> unit) -> unit) -> ((int -> unit) -> int) -> result array
(** [run_trace feed] simulates all 28 caches in one pass over a memory
    reference trace.  [feed emit] must call [emit addr] for every data
    reference and return the total dynamic instruction count (the
    misses-per-instruction denominator).  Each completed pass bumps the
    global [study.runs] counter and adds the trace's reference count to
    [study.trace_refs].

    [warmup], when given, is fed first through the same caches: its
    references prime the tag state but are excluded from every reported
    [misses]/[accesses] count (and from [study.trace_refs]).  Sampled
    simulation uses this to measure one representative window on a
    warmed cache without a second pass. *)

val run_trace_onepass :
  ?warmup:((int -> unit) -> unit) -> ((int -> unit) -> int) -> result array
(** Exactly {!run_trace} — same results, byte for byte, including the
    [?warmup] snapshot semantics — but computed by a single
    {!Stack_dist} stack-distance traversal of the trace instead of 28
    tag-array simulations, making a grid sweep cost about one pass.
    Bumps [study.onepass.runs]/[study.onepass.trace_refs] (not the
    simulated-path counters) and runs under a [study:onepass] span.
    This is what [--cache-onepass] / [PC_CACHE_ONEPASS] route the
    experiment drivers through; the simulated {!run_trace} remains the
    oracle it is differentially tested against. *)

val relative_mpi : result array -> float array
(** The paper's Figure-4 series: misses-per-instruction of each of the 27
    non-reference configurations divided by the reference configuration's
    misses-per-instruction.  When the reference MPI is zero the ratios
    are undefined and every element is [Float.nan] — an explicit
    sentinel (rendered as null by the pc JSON writers) rather than a
    silent switch to absolute MPIs, so downstream consumers can never
    mix units. *)
