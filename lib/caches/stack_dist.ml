(* One-pass stack-distance profiling: see the .mli for the algorithm.

   Configurations are grouped by (line size, set count); each group owns
   one distance histogram [hist] with buckets 0..cap-1 for exact
   distances and bucket [cap] for "deeper than any tracked way or never
   seen" (a miss everywhere — the two cases need no distinguishing, so
   nothing tracks lines beyond the deepest associativity).  A
   configuration with [A] ways then hits exactly the accesses in buckets
   < A, and per-config misses fall out of the histograms without any
   per-config work on the access path. *)

type set_stacks = {
  ss_line_shift : int;
  ss_set_mask : int;  (* sets - 1; sets is a power of two *)
  ss_cap : int;  (* deepest associativity tracked by this group *)
  ss_stack : int array;  (* sets * cap recency stacks; -1 = empty *)
  ss_hist : int array;  (* cap + 1 distance buckets *)
}

(* The fully-associative column (one set, way count up to size/line =
   512 in the paper's grid): a per-set stack would make every miss an
   O(cap) shift.  Instead the [cap] most recent distinct lines live in a
   circular buffer ordered by recency — a miss rotates the head and
   overwrites the tail in O(1), a hit at stack distance [d] scans and
   shifts exactly [d] entries — and an open-addressed hash table answers
   "is this line among the top [cap]?" in O(1), so deep and cold
   accesses never pay a scan. *)
type fully_assoc = {
  fa_line_shift : int;
  fa_cap : int;
  fa_hist : int array;  (* cap + 1 distance buckets *)
  fa_ring : int array;  (* power-of-two capacity >= cap; -1 = empty *)
  fa_ring_mask : int;
  mutable fa_head : int;  (* ring index of the most recent line *)
  mutable fa_size : int;  (* live entries, <= cap *)
  (* membership table over the ring's lines: open addressing with
     tombstone deletion, keys stored as line + 1 (0 empty, -1 dead) *)
  mutable fa_keys : int array;
  mutable fa_key_mask : int;
  mutable fa_used : int;  (* live + tombstones *)
}

type t = {
  ss : set_stacks array;
  fa : fully_assoc array;
  plan : (bool * int * int) array;  (* per config: (is_fa, tracker, ways) *)
  mutable total : int;
}

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let make_fa ~line_shift ~cap =
  let ring = next_pow2 cap in
  let keys = next_pow2 (4 * cap) in
  {
    fa_line_shift = line_shift;
    fa_cap = cap;
    fa_hist = Array.make (cap + 1) 0;
    fa_ring = Array.make ring (-1);
    fa_ring_mask = ring - 1;
    fa_head = 0;
    fa_size = 0;
    fa_keys = Array.make keys 0;
    fa_key_mask = keys - 1;
    fa_used = 0;
  }

let create configs =
  if Array.length configs = 0 then
    invalid_arg "Stack_dist.create: empty configuration grid";
  Array.iter
    (fun (c : Cache.config) ->
      if c.Cache.replacement <> Cache.Lru then
        invalid_arg
          "Stack_dist.create: stack-distance profiling is exact for LRU only")
    configs;
  (* Group by (line_shift, sets); remember each config's group + ways. *)
  let caps = Hashtbl.create 16 in
  let shapes =
    Array.map
      (fun (c : Cache.config) ->
        let ways = Cache.ways c in
        let sets = c.Cache.size_bytes / c.Cache.line_bytes / ways in
        let key = (log2 c.Cache.line_bytes, sets) in
        (match Hashtbl.find_opt caps key with
        | Some cap -> if ways > cap then Hashtbl.replace caps key ways
        | None -> Hashtbl.add caps key ways);
        (key, ways))
      configs
  in
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) caps []) in
  let fa_keys, ss_keys = List.partition (fun (_, sets) -> sets = 1) keys in
  let ss =
    Array.of_list
      (List.map
         (fun ((line_shift, sets) as key) ->
           let cap = Hashtbl.find caps key in
           {
             ss_line_shift = line_shift;
             ss_set_mask = sets - 1;
             ss_cap = cap;
             ss_stack = Array.make (sets * cap) (-1);
             ss_hist = Array.make (cap + 1) 0;
           })
         ss_keys)
  in
  let fa =
    Array.of_list
      (List.map
         (fun ((line_shift, _) as key) ->
           make_fa ~line_shift ~cap:(Hashtbl.find caps key))
         fa_keys)
  in
  let index_of keys key =
    let rec go i = function
      | [] -> assert false
      | k :: _ when k = key -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 keys
  in
  let plan =
    Array.map
      (fun (key, ways) ->
        if snd key = 1 then (true, index_of fa_keys key, ways)
        else (false, index_of ss_keys key, ways))
      shapes
  in
  { ss; fa; plan; total = 0 }

(* --- set-associative groups: capped per-set move-to-front stacks --- *)

let ss_access g addr =
  let line = addr lsr g.ss_line_shift in
  let base = (line land g.ss_set_mask) * g.ss_cap in
  let stack = g.ss_stack in
  (* Find the line's depth, shifting shallower entries down one slot as
     we go, then reinsert at the top: one pass does search + update. *)
  let d = ref 0 and prev = ref line and found = ref false in
  while (not !found) && !d < g.ss_cap do
    let i = base + !d in
    let here = Array.unsafe_get stack i in
    Array.unsafe_set stack i !prev;
    prev := here;
    if here = line then found := true else incr d
  done;
  let bucket = if !found then !d else g.ss_cap in
  Array.unsafe_set g.ss_hist bucket (Array.unsafe_get g.ss_hist bucket + 1)

(* --- the fully-associative group --- *)

(* Multiplicative hashing over line numbers; the table holds at most
   [cap] live keys in >= 4*cap slots, so probe chains stay short. *)
let fa_hash fa line = (line * 0x9E3779B97F4A7) lsr 17 land fa.fa_key_mask

let fa_member fa line =
  let keys = fa.fa_keys in
  let k = line + 1 in
  let i = ref (fa_hash fa line) in
  let result = ref false and stop = ref false in
  while not !stop do
    let slot = Array.unsafe_get keys !i in
    if slot = k then begin
      result := true;
      stop := true
    end
    else if slot = 0 then stop := true
    else i := (!i + 1) land fa.fa_key_mask
  done;
  !result

let fa_insert_key fa line =
  let keys = fa.fa_keys in
  let k = line + 1 in
  let i = ref (fa_hash fa line) in
  while Array.unsafe_get keys !i != 0 && Array.unsafe_get keys !i != -1 do
    i := (!i + 1) land fa.fa_key_mask
  done;
  if Array.unsafe_get keys !i = 0 then fa.fa_used <- fa.fa_used + 1;
  Array.unsafe_set keys !i k

let fa_delete_key fa line =
  let keys = fa.fa_keys in
  let k = line + 1 in
  let i = ref (fa_hash fa line) in
  while Array.unsafe_get keys !i <> k do
    i := (!i + 1) land fa.fa_key_mask
  done;
  (* keep [fa_used] counting this tombstone: it still lengthens probes *)
  Array.unsafe_set keys !i (-1)

(* Tombstones accumulate one per eviction; rebuild the table from the
   ring (at most [cap] live lines) once they dominate. *)
let fa_rehash fa =
  Array.fill fa.fa_keys 0 (Array.length fa.fa_keys) 0;
  fa.fa_used <- 0;
  for i = 0 to fa.fa_size - 1 do
    fa_insert_key fa fa.fa_ring.((fa.fa_head + i) land fa.fa_ring_mask)
  done

let fa_access fa addr =
  let line = addr lsr fa.fa_line_shift in
  if fa_member fa line then begin
    (* Scan from the head: the line's index is its stack distance.
       Shift the more-recent entries down one slot and re-head it. *)
    let ring = fa.fa_ring and mask = fa.fa_ring_mask and head = fa.fa_head in
    let d = ref 0 in
    while Array.unsafe_get ring ((head + !d) land mask) <> line do
      incr d
    done;
    let bucket = !d in
    for j = bucket downto 1 do
      Array.unsafe_set ring
        ((head + j) land mask)
        (Array.unsafe_get ring ((head + j - 1) land mask))
    done;
    Array.unsafe_set ring (head land mask) line;
    Array.unsafe_set fa.fa_hist bucket (Array.unsafe_get fa.fa_hist bucket + 1)
  end
  else begin
    (* Cold or deeper than [cap]: a miss in every member configuration,
       and an O(1) insert at the head of the recency ring. *)
    Array.unsafe_set fa.fa_hist fa.fa_cap
      (Array.unsafe_get fa.fa_hist fa.fa_cap + 1);
    if fa.fa_size = fa.fa_cap then
      fa_delete_key fa
        fa.fa_ring.((fa.fa_head + fa.fa_size - 1) land fa.fa_ring_mask)
    else fa.fa_size <- fa.fa_size + 1;
    fa.fa_head <- (fa.fa_head - 1) land fa.fa_ring_mask;
    fa.fa_ring.(fa.fa_head) <- line;
    fa_insert_key fa line;
    if 4 * fa.fa_used > 3 * Array.length fa.fa_keys then fa_rehash fa
  end

let access t addr =
  t.total <- t.total + 1;
  let ss = t.ss in
  for i = 0 to Array.length ss - 1 do
    ss_access (Array.unsafe_get ss i) addr
  done;
  let fa = t.fa in
  for i = 0 to Array.length fa - 1 do
    fa_access (Array.unsafe_get fa i) addr
  done

let accesses t = t.total

let misses t =
  Array.map
    (fun (is_fa, tracker, ways) ->
      let hist =
        if is_fa then t.fa.(tracker).fa_hist else t.ss.(tracker).ss_hist
      in
      let hits = ref 0 in
      for d = 0 to ways - 1 do
        hits := !hits + hist.(d)
      done;
      t.total - !hits)
    t.plan
