module M = Pc_obs.Metrics
module Event = Pc_obs.Event
module Span = Pc_obs.Span
module Sink = Pc_obs.Sink

(* One counter-track sample: a metric's value at an instant.  Samples
   are produced by the sampler domain (and a final sample at [stop]),
   never by instrumented code, so they stay out of the {!Event} stream
   and out of the -j determinism contract. *)
type sample = { s_ts : float; s_name : string; s_value : int }

type t = {
  path : string;
  epoch : float;
  stop_flag : bool Atomic.t;
  sampler : unit Domain.t option;
  samples : sample list ref;
  restore_enabled : bool;
  restore_collecting : bool;
}

let sample_registry acc =
  let ts = Span.now_s () in
  let snap = M.snapshot () in
  let add acc (s_name, s_value) = { s_ts = ts; s_name; s_value } :: acc in
  List.fold_left add (List.fold_left add acc snap.M.counters) snap.M.gauges

(* --- Chrome trace_event JSON --- *)

let number b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else Buffer.add_string b (Printf.sprintf "%.9g" f)

let arg_value b = function
  | Event.Int i -> Buffer.add_string b (string_of_int i)
  | Event.Float f -> number b f
  | Event.Str s -> Buffer.add_string b (Sink.json_string s)

let args_obj b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Sink.json_string k);
      Buffer.add_char b ':';
      arg_value b v)
    args;
  Buffer.add_char b '}'

let track_label = function
  | 0 -> "main"
  | i -> Printf.sprintf "worker-%d" i

let ts_us ~epoch ts =
  Printf.sprintf "%.3f" (Float.max 0.0 ((ts -. epoch) *. 1e6))

(* Shutdown race: the sampler domain can emit one more sample between the
   stop flag being set and [Domain.join], and on a fast clock it renders
   to the same microsecond as the authoritative final sample taken after
   the join.  Duplicate (name, ts) counter points make the trace depend
   on that race, so keep only the last sample per (name, rendered ts):
   samples arrive chronological, so the final sample wins. *)
let dedupe_samples ~epoch samples =
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc s ->
      let key = (s.s_name, ts_us ~epoch s.s_ts) in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        s :: acc
      end)
    []
    (List.rev samples)

let to_json ~epoch events samples =
  let samples = dedupe_samples ~epoch samples in
  let b = Buffer.create 65536 in
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  let ts_us ts = ts_us ~epoch ts in
  Buffer.add_string b "{\"traceEvents\":[";
  sep ();
  Buffer.add_string b
    "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"perfclone\"}}";
  let tracks =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> e.Event.track) events)
  in
  List.iter
    (fun tr ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}"
           tr
           (Sink.json_string (track_label tr))))
    tracks;
  (* Stable sort: per-track order (chronological by construction) breaks
     timestamp ties, keeping Begin/End nesting valid per track. *)
  let events =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> compare a.Event.ts b.Event.ts)
      events
  in
  List.iter
    (fun (e : Event.t) ->
      sep ();
      (* Flow events ([s]/[t]/[f]) carry the arrow-binding id; [f] binds
         to the enclosing slice ("bp":"e") so the arrow lands on the
         consumer's span rather than the next slice to start. *)
      let ph, extra =
        match e.Event.phase with
        | Event.Begin -> ("B", "")
        | Event.End -> ("E", "")
        | Event.Instant -> ("i", ",\"s\":\"t\"")
        | Event.Flow_start -> ("s", Printf.sprintf ",\"id\":%d" e.Event.flow_id)
        | Event.Flow_step -> ("t", Printf.sprintf ",\"id\":%d" e.Event.flow_id)
        | Event.Flow_end ->
          ("f", Printf.sprintf ",\"bp\":\"e\",\"id\":%d" e.Event.flow_id)
      in
      Buffer.add_string b
        (Printf.sprintf "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"cat\":\"pc\",\"name\":%s%s,\"args\":"
           ph e.Event.track (ts_us e.Event.ts)
           (Sink.json_string e.Event.name)
           extra);
      args_obj b e.Event.args;
      Buffer.add_char b '}')
    events;
  List.iter
    (fun s ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%s,\"name\":%s,\"args\":{\"value\":%d}}"
           (ts_us s.s_ts)
           (Sink.json_string s.s_name)
           s.s_value))
    samples;
  Buffer.add_string b
    "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"pc-trace/1\"}}";
  Buffer.contents b

(* --- tracer lifecycle --- *)

let default_period_s = 0.05

let start ?(period_s = default_period_s) path =
  let restore_enabled = M.enabled () in
  let restore_collecting = Event.collecting () in
  M.set_enabled true;
  Event.set_collecting true;
  let epoch = Span.now_s () in
  let stop_flag = Atomic.make false in
  let samples = ref [] in
  let sampler =
    if period_s <= 0.0 then None
    else
      (* Sleep in short slices so [stop] never waits a full period. *)
      let rec pause deadline =
        if not (Atomic.get stop_flag) then begin
          let now = Span.now_s () in
          if now < deadline then begin
            Unix.sleepf (Float.min 0.01 (deadline -. now));
            pause deadline
          end
        end
      in
      let rec loop () =
        if not (Atomic.get stop_flag) then begin
          samples := sample_registry !samples;
          pause (Span.now_s () +. period_s);
          loop ()
        end
      in
      match Domain.spawn loop with
      | d -> Some d
      | exception _ -> None (* no spare domain: counters sample once at stop *)
  in
  { path; epoch; stop_flag; sampler; samples; restore_enabled; restore_collecting }

let stop t =
  Atomic.set t.stop_flag true;
  Option.iter Domain.join t.sampler;
  (* Final sample after the join: every counter track exists even for
     runs shorter than one sampling period. *)
  t.samples := sample_registry !(t.samples);
  let events = Event.drain () in
  Event.set_collecting t.restore_collecting;
  M.set_enabled t.restore_enabled;
  let json = to_json ~epoch:t.epoch events (List.rev !(t.samples)) in
  let oc = open_out t.path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n')

let with_trace ?period_s path f =
  match path with
  | None -> f ()
  | Some path ->
    let t = start ?period_s path in
    Fun.protect ~finally:(fun () -> stop t) f
