(** Chrome [trace_event] timeline export (schema ["pc-trace/1"]).

    {!start} turns on metric and event collection ({!Pc_obs.Metrics},
    {!Pc_obs.Event}) and spawns a sampler domain that snapshots every
    registered counter and gauge at a configurable period; {!stop}
    drains the event stream and writes one JSON object that loads
    directly in Perfetto / [chrome://tracing]:

    {v
    { "traceEvents": [
        { "ph": "M", ... }                          // process/track names
        { "ph": "B"|"E", "pid": 1, "tid": <track>,  // span begin/end
          "ts": <µs>, "cat": "pc", "name": "<span>", "args": {...} },
        { "ph": "i", ... "s": "t" },                // instant markers
        { "ph": "C", "name": "<metric>",            // counter samples
          "args": { "value": <int> } }, ... ],
      "displayTimeUnit": "ms",
      "otherData": { "schema": "pc-trace/1" } }
    v}

    Tracks ([tid]) follow {!Pc_obs.Event.set_track}: 0 is the spawning
    domain, [i] is pool worker slot [i] — one lane per domain of a
    {!Pc_exec.Pool} fan-out.  Timestamps are microseconds from the
    {!start} epoch.  The set of [B]/[E]/[i] events for a deterministic
    run is identical at every [-j]; timestamps, lane assignment and
    counter samples are wall-clock and scheduling dependent.

    Nothing here writes to stdout, so tracing can never perturb
    experiment output. *)

type t

val default_period_s : float
(** 0.05 s — the default counter-sampling period. *)

val start : ?period_s:float -> string -> t
(** [start path] begins tracing into [path] (written at {!stop}).
    Forces {!Pc_obs.Metrics.enabled} and event collection on for the
    duration, restoring both at {!stop}.  [period_s <= 0.0] disables the
    sampler domain; counters are still sampled once at {!stop}. *)

val stop : t -> unit
(** Join the sampler, take a final counter sample, drain the event
    stream and write the trace file.  Call only after pool work has
    joined (the CLIs wrap their whole run). *)

val with_trace : ?period_s:float -> string option -> (unit -> 'a) -> 'a
(** [with_trace (Some path) f] runs [f] between {!start} and {!stop}
    (the trace is written even if [f] raises); [with_trace None f] is
    just [f ()]. *)
