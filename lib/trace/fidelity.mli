(** Clone-fidelity reports: re-profile a generated clone with
    {!Pc_profile.Collector} and compare it against the original's
    profile on the paper's microarchitecture-independent
    characteristics (Section 3.1).

    Distances are all "0 is perfect" errors except [stride_agreement]
    (histogram intersection, 1 is perfect) and the two [_ratio] fields
    (1 is perfect):

    - [instr_mix_l1]: L1 distance between global instruction-mix
      vectors (0..2);
    - [dep_dist_l1]: L1 distance between execution-weighted
      dependency-distance distributions (paper buckets, 0..2);
    - [stride_agreement]: intersection of reference-weighted dominant-
      stride distributions (0..1);
    - [single_stride_err]: |Δ| of Figure 3's single-stride fraction;
    - [taken_rate_err] / [transition_rate_err]: |Δ| of the
      execution-weighted mean branch taken / transition rates
      (Haungs-style, Section 3.1.4);
    - [sfg_block_ratio]: clone SFG nodes / original SFG nodes;
    - [avg_block_size_ratio]: clone / original mean basic-block size.

    Reports serialise as schema ["pc-fidelity/1"] and gate CI through
    {!check} against a ["pc-fidelity-thresholds/1"] document
    ([baselines/fidelity.json]). *)

type characteristics = {
  instr_mix_l1 : float;
  dep_dist_l1 : float;
  stride_agreement : float;
  single_stride_err : float;
  taken_rate_err : float;
  transition_rate_err : float;
  sfg_block_ratio : float;
  avg_block_size_ratio : float;
}

type phase = {
  p_index : int;  (** 0-based phase number *)
  p_orig_start : int;  (** first original dynamic instruction of the phase *)
  p_orig_instrs : int;  (** original dynamic instructions profiled *)
  p_clone_start : int;  (** first clone dynamic instruction of the phase *)
  p_clone_instrs : int;  (** clone dynamic instructions profiled *)
  p_c : characteristics;  (** the slice-vs-slice comparison *)
}
(** One interval-local comparison from {!measure_phases}. *)

type report = {
  bench : string;
  orig_instrs : int;  (** dynamic instructions in the original's profile *)
  clone_instrs : int;  (** dynamic instructions in the clone re-profile *)
  c : characteristics;
  phases : phase list;
      (** phase-local rows; [[]] unless {!measure_phases} ran *)
}

val characteristic_names : string list
(** The pc-fidelity/1 row field names, in emission order. *)

val characteristic_fields : characteristics -> (string * float) list
(** The characteristics as [(name, value)] rows in emission order —
    the generic view {!Pc_tune} scores over. *)

val compare_profiles :
  original:Pc_profile.Profile.t -> clone:Pc_profile.Profile.t -> characteristics
(** Pure comparison of two profiles; [measure] without the
    re-profiling. *)

val measure :
  ?max_instrs:int ->
  bench:string ->
  original:Pc_profile.Profile.t ->
  Pc_isa.Program.t ->
  report
(** [measure ~bench ~original clone_program] re-profiles the clone
    ([max_instrs] defaults to {!Pc_profile.Collector.profile}'s budget)
    and compares.  Instrumented: a ["fidelity:measure"] span, gauges
    tracking the worst characteristics seen, and one deterministic
    instant event per benchmark carrying the headline numbers. *)

val measure_phases :
  interval:int ->
  original:Pc_isa.Program.t ->
  clone:Pc_isa.Program.t ->
  report ->
  report
(** [measure_phases ~interval ~original ~clone report] adds phase-local
    rows to a {!measure} report: the original run is sliced at fixed
    [interval] dynamic-instruction boundaries (the same boundaries
    {!Pc_sample} uses), the clone — a compressed rendition of the whole
    run — is sliced proportionally, and each slice pair is compared
    with {!compare_profiles}.  Global characteristics can hide phase
    behaviour: a clone that averages two phases scores well globally
    while matching neither; the per-phase rows expose that.  The
    partition is exact: phase [p] owns clone instructions
    [p*total/n, (p+1)*total/n), so phases never re-measure overlapping
    clone slices; when the clone has fewer instructions than there are
    phases, the phases left with an empty slice report
    [p_clone_instrs = 0] with all-NaN characteristics (null in the
    JSON) instead of double-counting a neighbour's slice.  Raises
    [Invalid_argument] when [interval < 1].  Instrumented with a
    ["fidelity:phases"] span. *)

val json :
  seed:int -> profile_instrs:int -> clone_dynamic:int -> report list -> string
(** The pc-fidelity/1 document (no trailing newline).  Non-finite
    characteristic values serialise as [null] — JSON has no [NaN].
    Reports carrying {!measure_phases} rows gain an additive
    ["phases"] array per benchmark; reports without stay byte-identical
    to pre-phase output, and {!check} ignores the extra field. *)

val write_json :
  string ->
  seed:int ->
  profile_instrs:int ->
  clone_dynamic:int ->
  report list ->
  unit

val check : thresholds:Pc_util.Json.t -> report:Pc_util.Json.t -> string list
(** Gate a parsed pc-fidelity/1 report against a parsed
    pc-fidelity-thresholds/1 document:

    {v
    { "schema": "pc-fidelity-thresholds/1",
      "max":   { "instr_mix_l1": 0.10, ... },
      "min":   { "stride_agreement": 0.60, ... },
      "range": { "sfg_block_ratio": [0.02, 3.0], ... } }
    v}

    Every bound applies to every benchmark row.  Returns one message per
    violation; missing, non-numeric or non-finite ([null]) values and
    unknown characteristic names in the thresholds are themselves
    violations, so a drifting or corrupt report can never pass
    silently.  Empty list = pass. *)

val pp : Format.formatter -> report list -> unit
(** Console table, one row per benchmark. *)
