module Profile = Pc_profile.Profile
module Json = Pc_util.Json
module Sink = Pc_obs.Sink
module M = Pc_obs.Metrics

type characteristics = {
  instr_mix_l1 : float;
  dep_dist_l1 : float;
  stride_agreement : float;
  single_stride_err : float;
  taken_rate_err : float;
  transition_rate_err : float;
  sfg_block_ratio : float;
  avg_block_size_ratio : float;
}

type phase = {
  p_index : int;
  p_orig_start : int;
  p_orig_instrs : int;
  p_clone_start : int;
  p_clone_instrs : int;
  p_c : characteristics;
}

type report = {
  bench : string;
  orig_instrs : int;
  clone_instrs : int;
  c : characteristics;
  phases : phase list;
}

(* Characteristic names as they appear in pc-fidelity/1 rows and in the
   thresholds file — one source of truth for emit, check and pp. *)
let characteristic_fields c =
  [
    ("instr_mix_l1", c.instr_mix_l1);
    ("dep_dist_l1", c.dep_dist_l1);
    ("stride_agreement", c.stride_agreement);
    ("single_stride_err", c.single_stride_err);
    ("taken_rate_err", c.taken_rate_err);
    ("transition_rate_err", c.transition_rate_err);
    ("sfg_block_ratio", c.sfg_block_ratio);
    ("avg_block_size_ratio", c.avg_block_size_ratio);
  ]

let characteristic_names = List.map fst (characteristic_fields
  { instr_mix_l1 = 0.; dep_dist_l1 = 0.; stride_agreement = 0.;
    single_stride_err = 0.; taken_rate_err = 0.; transition_rate_err = 0.;
    sfg_block_ratio = 0.; avg_block_size_ratio = 0. })

(* --- distribution distances over profile aggregates --- *)

let l1 a b =
  let n = max (Array.length a) (Array.length b) in
  let get arr i = if i < Array.length arr then arr.(i) else 0.0 in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. Float.abs (get a i -. get b i)
  done;
  !s

(* Dynamic-instruction-weighted dependency-distance distribution: each
   SFG node's bucket fractions weighted by its execution count. *)
let dep_distribution (p : Profile.t) =
  let n_buckets = Array.length Profile.dep_bounds + 1 in
  let acc = Array.make n_buckets 0.0 in
  let total = ref 0.0 in
  Array.iter
    (fun (node : Profile.node) ->
      let w = float_of_int node.Profile.count in
      Array.iteri
        (fun i f -> if i < n_buckets then acc.(i) <- acc.(i) +. (w *. f))
        node.Profile.dep_fractions;
      total := !total +. w)
    p.Profile.nodes;
  if !total > 0.0 then Array.map (fun v -> v /. !total) acc else acc

(* Reference-weighted distribution over dominant strides. *)
let stride_distribution (p : Profile.t) =
  let tbl = Hashtbl.create 64 in
  let total = ref 0.0 in
  Array.iter
    (fun (node : Profile.node) ->
      Array.iter
        (fun (m : Profile.mem_op) ->
          let w = float_of_int m.Profile.refs in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl m.Profile.stride) in
          Hashtbl.replace tbl m.Profile.stride (prev +. w);
          total := !total +. w)
        node.Profile.mem_ops)
    p.Profile.nodes;
  (tbl, !total)

(* Histogram intersection of the two stride distributions: 1.0 when the
   clone reproduces the original's stride population exactly, 0.0 when
   they are disjoint. *)
let stride_agreement orig clone =
  let o_tbl, o_total = stride_distribution orig in
  let c_tbl, c_total = stride_distribution clone in
  if o_total <= 0.0 || c_total <= 0.0 then
    if o_total <= 0.0 && c_total <= 0.0 then 1.0 else 0.0
  else
    Hashtbl.fold
      (fun stride w acc ->
        match Hashtbl.find_opt c_tbl stride with
        | Some w' -> acc +. Float.min (w /. o_total) (w' /. c_total)
        | None -> acc)
      o_tbl 0.0

(* Execution-weighted means of per-branch taken / transition rates. *)
let branch_rates (p : Profile.t) =
  let execs = ref 0.0 and taken = ref 0.0 and trans = ref 0.0 in
  Array.iter
    (fun (node : Profile.node) ->
      match node.Profile.branch with
      | None -> ()
      | Some b ->
        let w = float_of_int b.Profile.execs in
        execs := !execs +. w;
        taken := !taken +. (w *. b.Profile.taken_rate);
        trans := !trans +. (w *. b.Profile.transition_rate))
    p.Profile.nodes;
  if !execs > 0.0 then (!taken /. !execs, !trans /. !execs) else (0.0, 0.0)

let ratio num den =
  if den = 0.0 then if num = 0.0 then 1.0 else Float.infinity
  else num /. den

let compare_profiles ~(original : Profile.t) ~(clone : Profile.t) =
  let o_taken, o_trans = branch_rates original in
  let c_taken, c_trans = branch_rates clone in
  {
    instr_mix_l1 = l1 original.Profile.global_mix clone.Profile.global_mix;
    dep_dist_l1 = l1 (dep_distribution original) (dep_distribution clone);
    stride_agreement = stride_agreement original clone;
    single_stride_err =
      Float.abs
        (original.Profile.single_stride_fraction
        -. clone.Profile.single_stride_fraction);
    taken_rate_err = Float.abs (o_taken -. c_taken);
    transition_rate_err = Float.abs (o_trans -. c_trans);
    sfg_block_ratio =
      ratio
        (float_of_int (Array.length clone.Profile.nodes))
        (float_of_int (Array.length original.Profile.nodes));
    avg_block_size_ratio =
      ratio clone.Profile.avg_block_size original.Profile.avg_block_size;
  }

(* --- measurement: re-profile a generated clone --- *)

let g_mix = M.gauge "fidelity.instr_mix_l1_bp_max"
let g_dep = M.gauge "fidelity.dep_dist_l1_bp_max"
let g_stride = M.gauge "fidelity.stride_agreement_bp_min"
let c_measured = M.counter "fidelity.benchmarks_measured"

let bp v =
  if Float.is_finite v then int_of_float (Float.round (v *. 10_000.0)) else -1

let measure ?max_instrs ~bench ~(original : Profile.t) clone_program =
  Pc_obs.Span.with_ ~args:[ ("bench", Pc_obs.Event.Str bench) ]
    "fidelity:measure"
  @@ fun () ->
  let clone = Pc_profile.Collector.profile ?max_instrs clone_program in
  let c = compare_profiles ~original ~clone in
  M.incr c_measured;
  M.record_max g_mix (bp c.instr_mix_l1);
  M.record_max g_dep (bp c.dep_dist_l1);
  (* stride agreement gates from below; track the worst (lowest) seen as
     a negated max so the gauge's record_max semantics still apply *)
  M.record_max g_stride (-bp c.stride_agreement);
  Pc_obs.Event.instant
    ("fidelity:" ^ bench)
    [
      ("instr_mix_l1", Pc_obs.Event.Float c.instr_mix_l1);
      ("dep_dist_l1", Pc_obs.Event.Float c.dep_dist_l1);
      ("stride_agreement", Pc_obs.Event.Float c.stride_agreement);
    ];
  {
    bench;
    orig_instrs = original.Profile.instr_count;
    clone_instrs = clone.Profile.instr_count;
    c;
    phases = [];
  }

(* --- per-phase (interval-local) scoring ---

   The global characteristics can hide phase behaviour: a clone that
   averages two program phases scores well globally while matching
   neither.  Slicing both runs and comparing slice by slice exposes
   that.  The original is cut at fixed [interval] boundaries (the same
   boundaries pc_sample uses); the clone — a compressed rendition of
   the whole run — is cut proportionally, so phase p of each covers the
   same fraction of its run. *)

let c_phases = M.counter "fidelity.phases_measured"

(* The explicit "no clone instructions fell in this phase" row: all
   characteristics NaN, rendered as null in pc-fidelity/1. *)
let null_characteristics =
  {
    instr_mix_l1 = Float.nan;
    dep_dist_l1 = Float.nan;
    stride_agreement = Float.nan;
    single_stride_err = Float.nan;
    taken_rate_err = Float.nan;
    transition_rate_err = Float.nan;
    sfg_block_ratio = Float.nan;
    avg_block_size_ratio = Float.nan;
  }

let measure_phases ~interval ~original ~clone report =
  if interval < 1 then
    invalid_arg "Fidelity.measure_phases: interval must be positive";
  Pc_obs.Span.with_
    ~args:
      [
        ("bench", Pc_obs.Event.Str report.bench);
        ("interval", Pc_obs.Event.Int interval);
      ]
    "fidelity:phases"
  @@ fun () ->
  let orig_total = report.orig_instrs and clone_total = report.clone_instrs in
  let n = max 1 ((orig_total + interval - 1) / interval) in
  let phases =
    List.init n (fun p ->
        let o_start = p * interval in
        let o_len = min interval (orig_total - o_start) in
        (* Exact proportional partition of the clone: phase p owns
           [p*total/n, (p+1)*total/n).  When clone_total < n some phases
           own zero instructions — formerly a [max 1] clamp re-measured
           the neighbouring phase's slice there, double-counting it; an
           empty slice now yields an explicit null row instead. *)
        let c_start = p * clone_total / n in
        let c_len = ((p + 1) * clone_total / n) - c_start in
        if c_len = 0 then begin
          M.incr c_phases;
          {
            p_index = p;
            p_orig_start = o_start;
            p_orig_instrs = o_len;
            p_clone_start = c_start;
            p_clone_instrs = 0;
            p_c = null_characteristics;
          }
        end
        else begin
          let po =
            Pc_profile.Collector.profile ~start:o_start ~max_instrs:o_len
              original
          in
          let pc =
            Pc_profile.Collector.profile ~start:c_start ~max_instrs:c_len clone
          in
          M.incr c_phases;
          {
            p_index = p;
            p_orig_start = o_start;
            p_orig_instrs = po.Profile.instr_count;
            p_clone_start = c_start;
            p_clone_instrs = pc.Profile.instr_count;
            p_c = compare_profiles ~original:po ~clone:pc;
          }
        end)
  in
  { report with phases }

(* --- pc-fidelity/1 JSON --- *)

let number f =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let json ~seed ~profile_instrs ~clone_dynamic reports =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"pc-fidelity/1\",\"seed\":%d,\"profile_instrs\":%d,\"clone_dynamic\":%d,\"benchmarks\":["
       seed profile_instrs clone_dynamic);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"bench\":%s,\"orig_instrs\":%d,\"clone_instrs\":%d"
           (Sink.json_string r.bench)
           r.orig_instrs r.clone_instrs);
      List.iter
        (fun (name, v) ->
          Buffer.add_string b
            (Printf.sprintf ",\"%s\":%s" name (number v)))
        (characteristic_fields r.c);
      (* additive: absent when per-phase scoring didn't run, so reports
         without it stay byte-identical to pre-phase pc-fidelity/1 *)
      if r.phases <> [] then begin
        Buffer.add_string b ",\"phases\":[";
        List.iteri
          (fun j ph ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf
                 "{\"phase\":%d,\"orig_start\":%d,\"orig_instrs\":%d,\"clone_start\":%d,\"clone_instrs\":%d"
                 ph.p_index ph.p_orig_start ph.p_orig_instrs ph.p_clone_start
                 ph.p_clone_instrs);
            List.iter
              (fun (name, v) ->
                Buffer.add_string b
                  (Printf.sprintf ",\"%s\":%s" name (number v)))
              (characteristic_fields ph.p_c);
            Buffer.add_char b '}')
          r.phases;
        Buffer.add_char b ']'
      end;
      Buffer.add_char b '}')
    reports;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_json path ~seed ~profile_instrs ~clone_dynamic reports =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json ~seed ~profile_instrs ~clone_dynamic reports);
      output_char oc '\n')

(* --- threshold gate (check_baselines fidelity) --- *)

let schema_of doc = Option.bind (Json.member "schema" doc) Json.to_string

let bench_rows doc =
  match Option.bind (Json.member "benchmarks" doc) Json.to_list with
  | Some rows -> rows
  | None -> []

let row_bench row =
  Option.value ~default:"?"
    (Option.bind (Json.member "bench" row) Json.to_string)

let check ~thresholds ~report =
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  (match schema_of thresholds with
  | Some "pc-fidelity-thresholds/1" -> ()
  | s ->
    issue "thresholds: expected schema pc-fidelity-thresholds/1, got %s"
      (Option.value ~default:"<none>" s));
  (match schema_of report with
  | Some "pc-fidelity/1" -> ()
  | s ->
    issue "report: expected schema pc-fidelity/1, got %s"
      (Option.value ~default:"<none>" s));
  let bound_map key =
    match Json.member key thresholds with
    | Some (Json.Obj fields) -> fields
    | Some _ ->
      issue "thresholds: %S must be an object" key;
      []
    | None -> []
  in
  let maxima = bound_map "max" in
  let minima = bound_map "min" in
  let ranges = bound_map "range" in
  List.iter
    (fun (name, _) ->
      if not (List.mem name characteristic_names) then
        issue "thresholds: unknown characteristic %S" name)
    (maxima @ minima @ ranges);
  let value_of row name =
    match Json.member name row with
    | None -> Error (Printf.sprintf "missing characteristic %S" name)
    | Some Json.Null -> Error (Printf.sprintf "non-finite %S" name)
    | Some v -> (
      match Json.to_float v with
      | Some f when Float.is_finite f -> Ok f
      | Some _ -> Error (Printf.sprintf "non-finite %S" name)
      | None -> Error (Printf.sprintf "non-numeric %S" name))
  in
  let rows = bench_rows report in
  if rows = [] then issue "report: no benchmarks";
  List.iter
    (fun row ->
      let bench = row_bench row in
      let with_value name k =
        match value_of row name with
        | Ok v -> k v
        | Error msg -> issue "%s: %s" bench msg
      in
      List.iter
        (fun (name, bound) ->
          match Json.to_float bound with
          | None -> issue "thresholds: max.%s is not a number" name
          | Some b ->
            with_value name (fun v ->
                if v > b then
                  issue "%s: %s = %.6f exceeds max %.6f" bench name v b))
        maxima;
      List.iter
        (fun (name, bound) ->
          match Json.to_float bound with
          | None -> issue "thresholds: min.%s is not a number" name
          | Some b ->
            with_value name (fun v ->
                if v < b then
                  issue "%s: %s = %.6f below min %.6f" bench name v b))
        minima;
      List.iter
        (fun (name, bound) ->
          match bound with
          | Json.List [ lo; hi ] -> (
            match (Json.to_float lo, Json.to_float hi) with
            | Some lo, Some hi ->
              with_value name (fun v ->
                  if v < lo || v > hi then
                    issue "%s: %s = %.6f outside [%.6f, %.6f]" bench name v
                      lo hi)
            | _ -> issue "thresholds: range.%s bounds are not numbers" name)
          | _ -> issue "thresholds: range.%s must be [lo, hi]" name)
        ranges)
    rows;
  List.rev !issues

(* --- console table --- *)

let pp ppf reports =
  Format.fprintf ppf "%-12s %12s %12s %8s %8s %8s %8s %8s %8s@."
    "bench" "orig-instrs" "clone-instrs" "mix-l1" "dep-l1" "stride"
    "taken" "trans" "blocks";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %12d %12d %8.4f %8.4f %8.4f %8.4f %8.4f %8.3f@."
        r.bench r.orig_instrs r.clone_instrs r.c.instr_mix_l1
        r.c.dep_dist_l1 r.c.stride_agreement r.c.taken_rate_err
        r.c.transition_rate_err r.c.sfg_block_ratio;
      List.iter
        (fun ph ->
          Format.fprintf ppf
            "%-12s %12d %12d %8.4f %8.4f %8.4f %8.4f %8.4f %8.3f@."
            (Printf.sprintf "  phase %d" ph.p_index)
            ph.p_orig_instrs ph.p_clone_instrs ph.p_c.instr_mix_l1
            ph.p_c.dep_dist_l1 ph.p_c.stride_agreement ph.p_c.taken_rate_err
            ph.p_c.transition_rate_err ph.p_c.sfg_block_ratio)
        r.phases)
    reports
