module I = Pc_isa.Instr
module Reg = Pc_isa.Reg
module Asm = Pc_isa.Asm
module Program = Pc_isa.Program
module Profile = Pc_profile.Profile
module Rng = Pc_util.Rng

type options = {
  seed : int;
  target_blocks : int;
  target_dynamic : int;
  max_streams : int;
  block_scale : float;
  dep_jitter : float;
  stride_bias : float;
  period_min : int;
  period_max : int;
}

(* The tunable-knob fields (block_scale .. period_max) must stay
   byte-compatible at their defaults: with block_scale 1.0, dep_jitter
   0.0, stride_bias 0.0 and the historical [2, 256] period bounds the
   generator draws exactly the same RNG stream and emits exactly the
   same clone as before the knobs existed — pc_tune relies on candidate
   0 (the defaults) reproducing the untuned clone. *)
let default_options =
  {
    seed = 1;
    target_blocks = 0;
    target_dynamic = 100_000;
    max_streams = 12;
    block_scale = 1.0;
    dep_jitter = 0.0;
    stride_bias = 0.0;
    period_min = 2;
    period_max = 256;
  }

(* Register layout of generated clones (disjoint roles, no stack):
   r1..r13   integer dataflow pool        f1..f13  FP dataflow pool
   r14..r25  stream pointers (up to 12)
   r26 iteration counter   r27 loop bound   r28 branch/loop scratch *)
let int_pool = Array.init 13 (fun i -> i + 1)
let fp_pool = Array.init 13 (fun i -> i + 1)
let stream_reg k = 14 + k
let iter_reg = 26
let bound_reg = 27
let scratch = 28

type stream_info = {
  stride : int;
  length : int;
  weight : int;
  footprint : int;
  active_span : int;  (* short-term working set of the stream's ops *)
  region : int;  (* lowest original address of the stream's data *)
  row_stride : int;  (* second-level stride between runs (0 = none) *)
}

let round_pow2 n =
  let n = max 1 n in
  let rec go p = if p >= n then p else go (p * 2) in
  let p = go 1 in
  (* choose the nearer power of two *)
  if p > 1 && p - n > n - (p / 2) then p / 2 else p

let round8_up n = (n + 7) / 8 * 8

(* Cluster the profile's per-static-instruction streams into at most
   [max_streams] pooled streams, keeping the highest-weight strides.  A
   stream's footprint is the largest member footprint: static ops that
   share a stride usually walk the same data structure. *)
let plan_streams ?(stride_bias = 0.0) ~max_streams (profile : Profile.t) =
  let by_pc = Hashtbl.create 64 in
  Array.iter
    (fun (n : Profile.node) ->
      Array.iter
        (fun (m : Profile.mem_op) ->
          if not (Hashtbl.mem by_pc m.Profile.static_pc) then
            Hashtbl.add by_pc m.Profile.static_pc m)
        n.Profile.mem_ops)
    profile.Profile.nodes;
  (* Footprint class: powers of four, so a 320-byte re-walked array and
     a 12 KB matrix that share a stride still become distinct streams
     with distinct reuse behaviour. *)
  let fp_class fp =
    let rec go c = if c >= fp then c else go (4 * c) in
    go 8
  in
  let stride_tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (m : Profile.mem_op) ->
      let op_fp = max 8 m.Profile.footprint in
      let region_bucket = m.Profile.region / max 1024 (fp_class op_fp / 4) in
      let key = (m.Profile.stride, fp_class op_fp, region_bucket) in
      let w, len_sum, fp, span_sum, reg, (row_w, row) =
        try Hashtbl.find stride_tbl key with Not_found -> (0, 0, 8, 0, max_int, (0, 0))
      in
      let op_span = max 8 m.Profile.window_span in
      let row_best =
        if m.Profile.row_stride <> 0 && m.Profile.refs > row_w then
          (m.Profile.refs, m.Profile.row_stride)
        else (row_w, row)
      in
      Hashtbl.replace stride_tbl key
        ( w + m.Profile.refs,
          len_sum + (m.Profile.stream_length * m.Profile.refs),
          max fp op_fp,
          span_sum + (op_span * m.Profile.refs),
          min reg m.Profile.region,
          row_best ))
    by_pc;
  let all =
    Hashtbl.fold
      (fun (stride, _, _) (w, len_sum, fp, span_sum, reg, (_, row)) acc ->
        let length = if w = 0 then 1 else len_sum / w in
        (* reference-weighted average span: rare ops with huge windows
           (e.g. one access per call site) must not blow up the stream *)
        let active_span = max 8 (if w = 0 then 8 else span_sum / w) in
        {
          stride;
          length;
          weight = w;
          footprint = fp;
          active_span;
          region = reg;
          row_stride = row;
        }
        :: acc)
      stride_tbl []
  in
  (* stride_bias <> 0 reweights the pool-selection order by
     |stride|^bias: positive bias favours long-stride (row-walking)
     streams, negative favours unit-stride ones.  At 0.0 the historical
     pure-weight order is used verbatim, so untuned clones are
     byte-identical. *)
  let sorted =
    if stride_bias = 0.0 then
      List.sort (fun a b -> compare b.weight a.weight) all
    else
      let eff s =
        float_of_int s.weight
        *. (float_of_int (max 8 (abs s.stride)) ** stride_bias)
      in
      List.sort
        (fun a b ->
          match compare (eff b) (eff a) with
          | 0 -> compare b.weight a.weight
          | c -> c)
        all
  in
  let chosen = List.filteri (fun i _ -> i < max_streams) sorted in
  Array.of_list
    (List.map
       (fun s ->
         let length = if s.stride = 0 then 1 else max 2 (min 4096 s.length) in
         { s with length })
       chosen)

(* Index of the stream best matching an op's (stride, footprint):
   stride distance dominates, footprint ratio breaks ties. *)
let assign_stream streams (m : Profile.mem_op) =
  let op_fp = max 8 m.Profile.footprint in
  let score (s : stream_info) =
    let stride_d = float_of_int (abs (s.stride - m.Profile.stride)) in
    let fp_ratio =
      let a = float_of_int (max s.footprint op_fp)
      and b = float_of_int (min s.footprint op_fp) in
      a /. b
    in
    stride_d +. fp_ratio
  in
  let best = ref 0 in
  let best_d = ref infinity in
  Array.iteri
    (fun k s ->
      let d = score s in
      if d < !best_d then begin
        best_d := d;
        best := k
      end)
    streams;
  !best

(* --- SFG walk: steps 1 and 6-9 --- *)

let walk_sfg rng (profile : Profile.t) target_blocks =
  let nodes = profile.Profile.nodes in
  let n = Array.length nodes in
  if n = 0 then [||]
  else begin
    let total_count =
      Array.fold_left (fun acc nd -> acc + nd.Profile.count) 0 nodes
    in
    (* Scale occurrences so they sum to roughly the block target. *)
    let remaining =
      Array.map
        (fun nd ->
          max 1
            (int_of_float
               (Float.round
                  (float_of_int target_blocks
                  *. float_of_int nd.Profile.count
                  /. float_of_int (max 1 total_count)))))
        nodes
    in
    let total_remaining = ref (Array.fold_left ( + ) 0 remaining) in
    let blocks = ref [] in
    let emitted = ref 0 in
    let sample_start () =
      (* CDF over remaining occurrences (step 1). *)
      let total = float_of_int !total_remaining in
      let u = Rng.float rng 1.0 in
      let acc = ref 0.0 in
      let result = ref (-1) in
      (try
         Array.iteri
           (fun i r ->
             acc := !acc +. (float_of_int r /. total);
             if !result < 0 && !acc >= u then begin
               result := i;
               raise Exit
             end)
           remaining
       with Exit -> ());
      if !result >= 0 then !result
      else
        (* numeric fallback: first node with remaining occurrences *)
        let rec find i = if remaining.(i) > 0 then i else find (i + 1) in
        find 0
    in
    let emit i =
      blocks := i :: !blocks;
      incr emitted;
      remaining.(i) <- remaining.(i) - 1;
      decr total_remaining
    in
    while !emitted < target_blocks && !total_remaining > 0 do
      let cur = ref (sample_start ()) in
      let continue = ref true in
      while !continue && !emitted < target_blocks && !total_remaining > 0 do
        emit !cur;
        (* Step 8: follow an outgoing edge with remaining occurrences. *)
        let succs =
          Array.to_list nodes.(!cur).Profile.successors
          |> List.filter (fun (id, _) -> remaining.(id) > 0)
        in
        match succs with
        | [] -> continue := false (* step 8: no outgoing edges -> restart *)
        | succs ->
          let total_p = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 succs in
          let u = Rng.float rng total_p in
          let rec pick acc = function
            | [ (id, _) ] -> id
            | (id, p) :: rest -> if acc +. p >= u then id else pick (acc +. p) rest
            | [] -> assert false
          in
          cur := pick 0.0 succs
      done
    done;
    Array.of_list (List.rev !blocks)
  end

(* --- dependency-distance register assignment: steps 3 and 10 --- *)

(* Ring of recent destination registers; slot i land mask holds the
   destination of the i-th generated instruction (reg id in the shared
   int/fp space, or -1 when the instruction has no pool destination). *)
module Recent = struct
  let size = 64

  type t = { dests : int array; mutable count : int }

  let create () = { dests = Array.make size (-1); count = 0 }

  let push t dest =
    t.dests.(t.count land (size - 1)) <- dest;
    t.count <- t.count + 1

  (* Find a source register of the wanted kind at (approximately) the
     requested dependency distance, scanning outwards a few slots. *)
  let find t ~is_fp ~distance ~fallback =
    let matches id = id >= 0 && (if is_fp then id >= 32 else id < 32) in
    let at d =
      if d < 1 || d > min t.count (size - 1) then -1
      else t.dests.((t.count - d) land (size - 1))
    in
    let rec scan delta =
      if delta > 8 then fallback
      else
        let a = at (distance - delta) and b = at (distance + delta) in
        if matches a then (if a >= 32 then a - 32 else a)
        else if matches b then (if b >= 32 then b - 32 else b)
        else scan (delta + 1)
    in
    scan 0
end

let dep_bounds = Profile.dep_bounds

(* Sample a dependency distance from a node's bucket fractions. *)
let sample_distance rng (fractions : float array) =
  let n = Array.length fractions in
  let u = Rng.float rng 1.0 in
  let bucket =
    let acc = ref 0.0 in
    let result = ref (n - 1) in
    (try
       Array.iteri
         (fun i f ->
           acc := !acc +. f;
           if !acc >= u then begin
             result := i;
             raise Exit
           end)
         fractions
     with Exit -> ());
    !result
  in
  if bucket >= Array.length dep_bounds then 33 + Rng.int rng 16
  else
    let hi = dep_bounds.(bucket) in
    let lo = if bucket = 0 then 1 else dep_bounds.(bucket - 1) + 1 in
    lo + Rng.int rng (hi - lo + 1)

(* --- the generator --- *)

type gen_state = {
  rng : Rng.t;
  recent : Recent.t;
  jitter : float; (* dependency-distance jitter probability (0 = off) *)
  mutable next_int : int; (* round-robin index into int_pool *)
  mutable next_fp : int;
  mutable stream_op_counts : int array; (* per stream: ops placed so far *)
}

(* With probability [st.jitter], displace a sampled dependency distance
   by up to ±2 slots.  At jitter 0.0 (the default) this draws nothing
   from the RNG, keeping untuned streams byte-identical. *)
let jitter_distance st d =
  if st.jitter <= 0.0 then d
  else if Rng.float st.rng 1.0 < st.jitter then max 1 (d - 2 + Rng.int st.rng 5)
  else d

(* Realised stream geometry: each synthetic op on a stream owns a shard
   of the stream's footprint, walked with the effective stride and reset
   every [g_length] iterations, so the aggregate clone footprint matches
   the profiled one even when the loop iterates far fewer times than the
   original ran. *)
type geom = {
  g_stride : int;  (* effective per-iteration stride (bytes, signed) *)
  g_length : int;  (* iterations before the pointer wraps back *)
  g_spread : int;  (* byte spacing between ops sharing the stream *)
  g_init : int;  (* initial pointer value *)
  g_row_mask : int;  (* 0 = plain 1-D walk; else 2-D: jump every mask+1 iters *)
  g_row_jump : int;  (* extra displacement applied at each row boundary *)
}

let alloc_int st =
  let r = int_pool.(st.next_int) in
  st.next_int <- (st.next_int + 1) mod Array.length int_pool;
  r

let alloc_fp st =
  let r = fp_pool.(st.next_fp) in
  st.next_fp <- (st.next_fp + 1) mod Array.length fp_pool;
  r

let int_src st node_deps =
  let d = jitter_distance st (sample_distance st.rng node_deps) in
  Recent.find st.recent ~is_fp:false ~distance:d
    ~fallback:int_pool.(Rng.int st.rng (Array.length int_pool))

let fp_src st node_deps =
  let d = jitter_distance st (sample_distance st.rng node_deps) in
  Recent.find st.recent ~is_fp:true ~distance:d
    ~fallback:fp_pool.(Rng.int st.rng (Array.length fp_pool))

let int_alu_ops = [| I.Add; I.Sub; I.Xor; I.And; I.Or |]

(* Generate one computational instruction of the given class (step 2-4). *)
let gen_instr st (node : Profile.node) cls streams geoms mem_queue =
  let deps = node.Profile.dep_fractions in
  match cls with
  | I.C_int_alu ->
    let op = int_alu_ops.(Rng.int st.rng (Array.length int_alu_ops)) in
    let a = int_src st deps and b = int_src st deps in
    let d = alloc_int st in
    Recent.push st.recent d;
    I.Alu (op, d, a, b)
  | I.C_int_mul ->
    let a = int_src st deps and b = int_src st deps in
    let d = alloc_int st in
    Recent.push st.recent d;
    I.Mul (d, a, b)
  | I.C_int_div ->
    let a = int_src st deps and b = int_src st deps in
    let d = alloc_int st in
    Recent.push st.recent d;
    I.Div (d, a, b)
  | I.C_fp_alu ->
    let a = fp_src st deps and b = fp_src st deps in
    let d = alloc_fp st in
    Recent.push st.recent (32 + d);
    I.Falu ((if Rng.bool st.rng then I.Fadd else I.Fsub), d, a, b)
  | I.C_fp_mul ->
    let a = fp_src st deps and b = fp_src st deps in
    let d = alloc_fp st in
    Recent.push st.recent (32 + d);
    I.Fmul (d, a, b)
  | I.C_fp_div ->
    let a = fp_src st deps and b = fp_src st deps in
    let d = alloc_fp st in
    Recent.push st.recent (32 + d);
    I.Fdiv (d, a, b)
  | I.C_load | I.C_store -> (
    (* Take the next profiled memory op of this block (step 4). *)
    match Queue.take_opt mem_queue with
    | Some (m : Profile.mem_op) ->
      let k = assign_stream streams m in
      let slot = st.stream_op_counts.(k) in
      st.stream_op_counts.(k) <- slot + 1;
      let off = geoms.(k).g_spread * slot in
      if m.Profile.is_store then begin
        let src = int_src st deps in
        Recent.push st.recent (-1);
        I.Store (src, stream_reg k, off)
      end
      else begin
        let d = alloc_int st in
        Recent.push st.recent d;
        I.Load (d, stream_reg k, off)
      end
    | None ->
      (* mix sampled a memory class but the block's op list is empty *)
      let d = alloc_int st in
      Recent.push st.recent d;
      I.Alu (I.Add, d, int_src st deps, int_src st deps))
  | I.C_branch | I.C_jump | I.C_other ->
    let d = alloc_int st in
    Recent.push st.recent d;
    I.Alu (I.Xor, d, int_src st deps, int_src st deps)

(* The terminating branch of a synthetic block (step 5).  Returns the
   instructions; the branch always targets [next_label].  [period_lo] /
   [period_hi] quantise the realised period (both powers of two). *)
let gen_branch st (node : Profile.node) ~period_lo ~period_hi ~next_label =
  match node.Profile.branch with
  | None ->
    (* Original block ended in an unconditional transfer. *)
    [ I.Jmp (I.Label next_label) ]
  | Some b ->
    let t = b.Profile.transition_rate in
    let tr = b.Profile.taken_rate in
    if t <= 0.02 then
      (* Strongly biased: a fixed direction, no counter needed. *)
      if tr >= 0.5 then [ I.Br (I.Eq_z, Reg.zero, I.Label next_label) ]
      else [ I.Br (I.Ne_z, Reg.zero, I.Label next_label) ]
    else if t >= 0.9 then
      (* Toggles nearly every execution: alternate on the counter. *)
      [
        I.Alui (I.And, scratch, iter_reg, 1);
        I.Br (I.Ne_z, scratch, I.Label next_label);
      ]
    else begin
      (* Period P ~ 2/t (power of two so the modulo is one AND), taken
         for the first T slots of each period. *)
      let p =
        max period_lo
          (min period_hi (round_pow2 (int_of_float (Float.round (2.0 /. t)))))
      in
      let taken_slots =
        min (p - 1) (int_of_float (Float.round (tr *. float_of_int p)))
      in
      if taken_slots <= 0 then
        (* The profiled taken rate rounds to zero slots at this period
           (tr < 1/(2P), or exactly never taken): clamping it up to one
           slot used to clone the branch as taken once per period.  An
           always-not-taken test is the faithful rendition — execution
           still falls through to the next block. *)
        [ I.Br (I.Ne_z, Reg.zero, I.Label next_label) ]
      else begin
        Recent.push st.recent (-1);
        Recent.push st.recent (-1);
        [
          I.Alui (I.And, scratch, iter_reg, p - 1);
          I.Alui (I.Cmp_lt, scratch, scratch, taken_slots);
          I.Br (I.Ne_z, scratch, I.Label next_label);
        ]
      end
    end

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate_options o =
  if o.max_streams < 1 || o.max_streams > 12 then
    invalid_arg "Synth.generate: max_streams must be in [1, 12]";
  if not (o.block_scale > 0.0 && Float.is_finite o.block_scale) then
    invalid_arg "Synth.generate: block_scale must be positive and finite";
  if not (o.dep_jitter >= 0.0 && o.dep_jitter <= 1.0) then
    invalid_arg "Synth.generate: dep_jitter must be in [0, 1]";
  if not (Float.is_finite o.stride_bias) then
    invalid_arg "Synth.generate: stride_bias must be finite";
  if
    (not (is_pow2 o.period_min))
    || (not (is_pow2 o.period_max))
    || o.period_min < 2 || o.period_max > 1024
    || o.period_min > o.period_max
  then
    invalid_arg
      "Synth.generate: period bounds must be powers of two with 2 <= min <= \
       max <= 1024"

let generate ?(options = default_options) (profile : Profile.t) =
  validate_options options;
  let rng = Rng.create options.seed in
  let n_nodes = Array.length profile.Profile.nodes in
  if n_nodes = 0 then invalid_arg "Synth.generate: empty profile";
  let target_blocks =
    let base =
      if options.target_blocks > 0 then options.target_blocks
      else min 400 (max 40 (2 * n_nodes))
    in
    if options.block_scale = 1.0 then base
    else
      max 4 (int_of_float (Float.round (options.block_scale *. float_of_int base)))
  in
  let streams =
    plan_streams ~stride_bias:options.stride_bias
      ~max_streams:options.max_streams profile
  in
  let streams =
    if Array.length streams = 0 then
      [|
        {
          stride = 8;
          length = 2;
          weight = 0;
          footprint = 64;
          active_span = 64;
          region = Program.data_base;
          row_stride = 0;
        };
      |]
    else streams
  in
  let block_ids = walk_sfg rng profile target_blocks in
  let st =
    {
      rng;
      recent = Recent.create ();
      jitter = options.dep_jitter;
      next_int = 0;
      next_fp = 0;
      stream_op_counts = Array.make (Array.length streams) 0;
    }
  in
  (* Estimate the loop iteration count, then realise each stream's
     geometry: per-op shards partition the profiled footprint so the
     clone covers it within the available iterations. *)
  let body_est =
    Array.fold_left
      (fun acc id -> acc + profile.Profile.nodes.(id).Profile.size)
      0 block_ids
    + (4 * Array.length streams) + 3
  in
  let iterations_est = max 2 (options.target_dynamic / max 1 body_est) in
  ignore iterations_est;
  let op_counts = Array.make (Array.length streams) 0 in
  Array.iter
    (fun id ->
      Array.iter
        (fun (m : Profile.mem_op) ->
          let k = assign_stream streams m in
          op_counts.(k) <- op_counts.(k) + 1)
        profile.Profile.nodes.(id).Profile.mem_ops)
    block_ids;
  let max_addr = ref Program.data_base in
  let geoms =
    Array.mapi
      (fun k (strm : stream_info) ->
        let c = max 1 op_counts.(k) in
        (* Anchor the stream at the original data structure's address:
           reproducing the source layout preserves cache set conflicts
           between structures (a microarchitecture-independent program
           property — the addresses come from the binary, not the
           cache). *)
        let base =
          if strm.region >= 0 && strm.region < max_int then strm.region / 8 * 8
          else Program.data_base
        in
        let track top = if top > !max_addr then max_addr := top in
        if strm.stride = 0 then begin
          (* Zero dominant stride: repeated or table-style accesses.  Ops
             are spread across the profiled footprint so a randomly
             indexed table occupies its true working set. *)
          let spread =
            if strm.footprint <= 16 then 0 else round8_up (strm.footprint / c)
          in
          track (base + (spread * c) + 72);
          {
            g_stride = 0;
            g_length = 1;
            g_spread = spread;
            g_init = base;
            g_row_mask = 0;
            g_row_jump = 0;
          }
        end
        else begin
          (* Shared walker with run-spread phases: the op instances of a
             stream are spaced across one profiled *run* footprint, so
             the clone touches the same per-window working set as the
             original, while the walker drifts through the whole
             profiled footprint and wraps (covering capacity behaviour).
             The profiled stride is kept exactly; it is only coarsened
             for footprints beyond the 4096-iteration walk cap. *)
          (* A 2-D walk when the profiled row stride is regular and the
             rows are larger than the element stride: walk the run, then
             jump to the next row, wrapping at the footprint. *)
          let row = strm.row_stride in
          let is_2d =
            row > abs strm.stride && strm.length >= 2 && strm.length <= 512
            && row * 2 <= strm.footprint
          in
          if is_2d then begin
            let l2 =
              let rec pow2 x = if x >= strm.length then x else pow2 (2 * x) in
              max 2 (min 1024 (pow2 2))
            in
            let eff = abs strm.stride in
            let run_span = max 8 (min strm.active_span strm.footprint) in
            let spread = round8_up (max 8 (run_span / c)) in
            (* after l2 element steps, land at the next row start *)
            let g_row_jump = row - (eff * l2) in
            let rows = max 2 (strm.footprint / row) in
            let length = min 8192 (l2 * rows) in
            let span = strm.footprint + run_span + (spread * c) + 64 in
            track (base + span + 64);
            {
              g_stride = eff;
              g_length = length;
              g_spread = spread;
              g_init = base;
              g_row_mask = l2 - 1;
              g_row_jump;
            }
          end
          else begin
            let len_raw = strm.footprint / max 8 (abs strm.stride) in
            let length = max 2 (min len_raw 4096) in
            let eff = max (abs strm.stride) (round8_up (strm.footprint / length)) in
            let run_span = max 8 (min strm.active_span strm.footprint) in
            let spread = round8_up (max 8 (run_span / c)) in
            let span = (eff * (length - 1)) + (spread * c) + 64 in
            track (base + span + 64);
            let g_init = if strm.stride >= 0 then base else base + (eff * (length - 1)) in
            {
              g_stride = (if strm.stride >= 0 then eff else -eff);
              g_length = length;
              g_spread = spread;
              g_init;
              g_row_mask = 0;
              g_row_jump = 0;
            }
          end
        end)
      streams
  in
  let data_bytes = max 8 (!max_addr - Program.data_base) in
  (* --- emit code --- *)
  let items = ref [] in
  let emit instr = items := Asm.Ins instr :: !items in
  let emit_label l = items := Asm.Label l :: !items in
  (* preamble: pools, stream pointers, loop counter *)
  Array.iteri (fun i r -> emit (I.Li (r, Int64.of_int (i + 3)))) int_pool;
  Array.iteri (fun i r -> emit (I.Fli (r, 1.0 +. (0.5 *. float_of_int i)))) fp_pool;
  Array.iteri (fun k _ -> emit (I.Li (stream_reg k, Int64.of_int geoms.(k).g_init))) streams;
  emit (I.Li (iter_reg, 0L));
  emit (I.Li (bound_reg, 1L)) (* patched below once the body size is known *);
  let bound_patch_index = List.length !items - 1 in
  ignore bound_patch_index;
  emit_label "loop_top";
  (* synthetic basic blocks *)
  let body_instrs = ref 0 in
  Array.iteri
    (fun bi node_id ->
      let node = profile.Profile.nodes.(node_id) in
      let next_label =
        if bi + 1 < Array.length block_ids then Printf.sprintf "bb_%d" (bi + 1)
        else "loop_end"
      in
      emit_label (Printf.sprintf "bb_%d" bi);
      let mem_queue = Queue.create () in
      Array.iter (fun m -> Queue.add m mem_queue) node.Profile.mem_ops;
      let n_mem = Array.length node.Profile.mem_ops in
      let body_slots = max 0 (node.Profile.size - 1) in
      let n_other = max 0 (body_slots - n_mem) in
      (* Renormalised CDF over computational classes (step 2). *)
      let comp_classes =
        [| I.C_int_alu; I.C_int_mul; I.C_int_div; I.C_fp_alu; I.C_fp_mul; I.C_fp_div |]
      in
      let weights =
        Array.map (fun c -> node.Profile.mix.(I.class_index c)) comp_classes
      in
      let wsum = Array.fold_left ( +. ) 0.0 weights in
      let sample_class () =
        if wsum <= 0.0 then I.C_int_alu
        else begin
          let u = Rng.float st.rng wsum in
          let acc = ref 0.0 in
          let result = ref I.C_int_alu in
          (try
             Array.iteri
               (fun i w ->
                 acc := !acc +. w;
                 if !acc >= u then begin
                   result := comp_classes.(i);
                   raise Exit
                 end)
               weights
           with Exit -> ());
          !result
        end
      in
      (* Interleave memory ops evenly among the other instructions. *)
      let mem_positions = Array.make body_slots false in
      if n_mem > 0 then begin
        let step = float_of_int body_slots /. float_of_int n_mem in
        for j = 0 to n_mem - 1 do
          let pos = min (body_slots - 1) (int_of_float (float_of_int j *. step)) in
          (* advance past already-claimed slots *)
          let rec place p =
            if p >= body_slots then ()
            else if mem_positions.(p) then place (p + 1)
            else mem_positions.(p) <- true
          in
          place pos
        done
      end;
      ignore n_other;
      for slot = 0 to body_slots - 1 do
        let cls = if mem_positions.(slot) then I.C_load else sample_class () in
        emit (gen_instr st node cls streams geoms mem_queue)
      done;
      (* any leftover memory ops (when size under-counts) are dropped *)
      Queue.clear mem_queue;
      List.iter emit
        (gen_branch st node ~period_lo:options.period_min
           ~period_hi:options.period_max ~next_label);
      body_instrs := !body_instrs + node.Profile.size)
    block_ids;
  emit_label "loop_end";
  (* stream advance / reset (step 11): wrap the pointer exactly at the
     end of its walk so each stream's footprint and re-walk period match
     the profile.  The wrap branches are rarely taken (the reset code
     lives in trampolines after the loop) so maintenance code does not
     bias the clone's taken rate. *)
  Array.iteri
    (fun k (g : geom) ->
      if g.g_stride <> 0 then begin
        emit (I.Alui (I.Add, stream_reg k, stream_reg k, g.g_stride));
        if g.g_row_mask > 0 then begin
          (* 2-D stream: at row boundaries, jump to the next row start *)
          emit (I.Alui (I.And, scratch, iter_reg, g.g_row_mask));
          emit (I.Br (I.Eq_z, scratch, I.Label (Printf.sprintf "do_row_%d" k)));
          emit_label (Printf.sprintf "after_row_%d" k);
          body_instrs := !body_instrs + 2
        end;
        let limit =
          if g.g_row_mask > 0 then
            (* wrap once the walk leaves the footprint *)
            g.g_init + (g.g_stride * (g.g_row_mask + 1))
            + (g.g_row_jump + (g.g_stride * (g.g_row_mask + 1)))
              * (g.g_length / (g.g_row_mask + 1))
          else g.g_init + (g.g_stride * g.g_length)
        in
        if g.g_stride > 0 then begin
          emit (I.Alui (I.Cmp_lt, scratch, stream_reg k, limit));
          emit (I.Br (I.Eq_z, scratch, I.Label (Printf.sprintf "do_reset_%d" k)))
        end
        else begin
          emit (I.Alui (I.Cmp_le, scratch, stream_reg k, limit));
          emit (I.Br (I.Ne_z, scratch, I.Label (Printf.sprintf "do_reset_%d" k)))
        end;
        emit_label (Printf.sprintf "after_reset_%d" k);
        body_instrs := !body_instrs + 3
      end)
    geoms;
  (* loop control: count down so the back-edge condition reads one
     register and the exit is the rarely-taken direction *)
  emit (I.Alui (I.Add, iter_reg, iter_reg, 1));
  emit (I.Alu (I.Cmp_lt, scratch, iter_reg, bound_reg));
  emit (I.Br (I.Ne_z, scratch, I.Label "loop_top"));
  emit I.Halt;
  (* reset / row-jump trampolines (cold) *)
  Array.iteri
    (fun k (g : geom) ->
      if g.g_stride <> 0 then begin
        emit_label (Printf.sprintf "do_reset_%d" k);
        emit (I.Li (stream_reg k, Int64.of_int g.g_init));
        emit (I.Jmp (I.Label (Printf.sprintf "after_reset_%d" k)));
        if g.g_row_mask > 0 then begin
          emit_label (Printf.sprintf "do_row_%d" k);
          emit (I.Alui (I.Add, stream_reg k, stream_reg k, g.g_row_jump));
          emit (I.Jmp (I.Label (Printf.sprintf "after_row_%d" k)))
        end
      end)
    geoms;
  body_instrs := !body_instrs + 3;
  (* Fix the loop bound now that the body size is known: at least the
     requested dynamic length, and enough iterations for the longest
     stream to complete one full footprint walk. *)
  let longest_walk =
    Array.fold_left (fun acc g -> max acc g.g_length) 2 geoms
  in
  let iterations =
    max (max 1 (options.target_dynamic / max 1 !body_instrs)) longest_walk
  in
  let items =
    List.rev_map
      (fun item ->
        match item with
        | Asm.Ins (I.Li (r, 1L)) when r = bound_reg ->
          Asm.Ins (I.Li (bound_reg, Int64.of_int iterations))
        | other -> other)
      !items
  in
  Asm.assemble
    ~name:(profile.Profile.name ^ "-clone")
    ~data:[] ~data_bytes items
