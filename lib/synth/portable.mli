(** Portable clone generation — the paper's Section 6 extension.

    The baseline generator ({!Synth}) emits ISA-specific code, so "a
    separate benchmark clone would have to be synthesized for all target
    embedded architectures of interest"; the paper proposes generating
    the clone in "a virtual instruction set architecture that can then be
    consumed by compilers for different ISAs".  Here the virtual ISA is
    Kc source: [generate] builds the clone as a Kc program, which any Kc
    back end can compile (this repository has one, for SRISC — the test
    suite compiles the portable clone and checks it still tracks the
    original's behaviour).

    The mapping from profile to Kc:
    - each stream becomes a global array of its footprint, with an index
      variable advanced by the stride each outer-loop iteration and
      wrapped by an [if];
    - synthetic basic blocks become straight-line statement sequences
      ending in an [if] with empty branches — the compiled code is a
      conditional branch whose direction follows the profiled taken and
      transition rates while both paths converge, exactly like the
      ISA-level clone;
    - the instruction mix maps to Kc expression operators over rotating
      scalar locals (integer and float pools);
    - dependency distances are approximated by the pool rotation (the
      price of portability: the compiler's register allocation, not the
      generator, has the final word — the paper's compiler-dependence
      caveat). *)

val generate :
  ?seed:int -> ?target_blocks:int -> ?target_dynamic:int -> Pc_profile.Profile.t ->
  Pc_kc.Ast.prog
(** Build the portable clone.  Defaults mirror {!Synth.default_options}. *)

val generate_compiled :
  ?seed:int -> ?target_blocks:int -> ?target_dynamic:int -> Pc_profile.Profile.t ->
  Pc_isa.Program.t
(** [generate] followed by the Kc compiler — the "one back end"
    instantiation of the virtual-ISA route. *)
