(** Synthetic benchmark clone generation — the paper's core contribution
    (Section 3.2, steps 1–12).

    From a microarchitecture-independent {!Pc_profile.Profile.t} the
    generator:

    + walks the statistical flow graph, sampling a start node from the
      execution-frequency CDF and following transition-probability CDFs,
      decrementing node occurrences, until the target number of synthetic
      basic blocks is instantiated (steps 1, 6–9);
    + fills each block to its profiled size with instructions drawn from
      the node's instruction mix, ending in a conditional branch
      (step 2);
    + assigns every source operand a register so that the node's
      dependency-distance distribution is respected (steps 3, 10);
    + gives every static load/store a stride stream: the profile's
      per-instruction dominant strides are clustered into at most
      [max_streams] pooled streams, each with its own pointer register,
      advanced once per outer-loop iteration and reset after its stream
      length (steps 4, 11);
    + realises each block's profiled taken rate and transition rate with
      a modulo (bit-mask) counter test feeding the terminating branch
      (step 5) — branches always target the next block, so the executed
      path is fixed while the predictor sees the profiled direction
      sequence;
    + wraps the blocks in one big loop whose iteration count sets the
      dynamic instruction count (step 11) and emits an executable SRISC
      program (step 12; see {!Render} for the C-with-asm dissemination
      rendering).

    All sampling is driven by a seeded deterministic generator: the same
    profile, options and seed always produce the identical clone. *)

type options = {
  seed : int;
  target_blocks : int;  (** synthetic basic blocks to instantiate *)
  target_dynamic : int;  (** approximate dynamic instructions when run *)
  max_streams : int;  (** stream pointer registers available (<= 12) *)
  block_scale : float;
      (** scales the (explicit or profile-derived) block target; 1.0 =
          unscaled.  The tuner's coarsest knob: more blocks instantiate
          more of the SFG's tail, fewer compress it harder. *)
  dep_jitter : float;
      (** probability, per sampled dependency distance, of displacing it
          by up to ±2 slots.  0.0 (the default) draws nothing from the
          RNG, so untuned clones are byte-identical to pre-knob ones. *)
  stride_bias : float;
      (** reweights stream-pool selection by [|stride|^bias]: positive
          favours long-stride streams, negative unit-stride ones; 0.0 is
          the historical pure reference-weight order. *)
  period_min : int;  (** branch-period quantisation lower bound (pow2, >= 2) *)
  period_max : int;  (** branch-period quantisation upper bound (pow2, <= 1024) *)
}

val default_options : options
(** seed 1, 0 target blocks (meaning: derived from the profile as
    [min 400 (max 40 (2 * nodes))]), 100k dynamic instructions, 12
    streams; tuning knobs at their neutral values (block_scale 1.0,
    dep_jitter 0.0, stride_bias 0.0, periods quantised to [2, 256]) —
    neutral knobs generate byte-identical clones to the pre-knob
    generator, which [Pc_tune] relies on. *)

val generate : ?options:options -> Pc_profile.Profile.t -> Pc_isa.Program.t
(** Generate the synthetic benchmark clone. *)

type stream_info = {
  stride : int;  (** profiled dominant stride in bytes *)
  length : int;  (** representative run length (accesses between stride breaks) *)
  weight : int;  (** dynamic references it stands for in the profile *)
  footprint : int;  (** bytes the stream's walk covers in the original *)
  active_span : int;  (** short-term (64-access) working-set span in bytes *)
  region : int;  (** lowest original address of the stream's data (the clone
                     anchors its walk there to preserve layout conflicts) *)
  row_stride : int;  (** second-level stride between runs (0 = none): the
                         "row" advance of 2-D walks *)
}

val plan_streams :
  ?stride_bias:float -> max_streams:int -> Pc_profile.Profile.t -> stream_info array
(** The stream pool the generator would use (exposed for tests and the
    what-if examples): profiled strides clustered by reference weight.
    [stride_bias] (default 0.0 = pure weight order) reweights selection
    by [|stride|^bias] as the tuner's {!options.stride_bias} does. *)

(** {1 Building blocks shared with alternative back ends}

    {!Portable} (and custom generators) reuse the SFG walk and the
    stream assignment so every back end interprets the profile the same
    way. *)

val walk_sfg : Pc_util.Rng.t -> Pc_profile.Profile.t -> int -> int array
(** [walk_sfg rng profile target_blocks] performs the paper's steps 1 and
    6–9: returns the node ids to instantiate, in order. *)

val assign_stream : stream_info array -> Pc_profile.Profile.mem_op -> int
(** Index of the pooled stream that best matches a profiled memory op
    (stride distance, footprint-ratio tie-break). *)
