(** Microarchitecture-{b dependent} baseline synthesizer.

    Earlier workload synthesis (Bell & John) modelled memory and branch
    behaviour by matching target metrics measured on one reference
    configuration — a cache miss rate and a branch misprediction rate —
    rather than inherent program properties.  The paper's motivation is
    that such clones "yield large errors when the cache and branch
    configurations are changed".  This module implements that baseline so
    the claim can be reproduced (the ablation experiment):

    - memory: a fraction of references equal to the target miss rate
      walks a region far larger than the reference L1 (missing always);
      the rest hit a fixed address — the miss rate matches the reference
      configuration by construction and is insensitive to cache changes;
    - branches: directions are pseudo-random with a bias chosen so the
      reference predictor mispredicts at the target rate — predictability
      does not track the original program on other predictors. *)

type targets = {
  l1d_miss_rate : float;  (** misses per D-cache access on the reference config *)
  mispredict_rate : float;  (** mispredictions per conditional branch *)
}

val measure_targets :
  ?max_instrs:int -> Pc_uarch.Config.t -> Pc_isa.Program.t -> targets
(** Run the original on the reference configuration and extract the two
    target metrics. *)

val generate :
  ?seed:int ->
  ?target_dynamic:int ->
  profile:Pc_profile.Profile.t ->
  targets:targets ->
  unit ->
  Pc_isa.Program.t
(** Build the baseline clone: global instruction mix and dependency
    distances come from the (microarchitecture-independent) profile, but
    locality and branch behaviour are generated to match [targets]. *)
