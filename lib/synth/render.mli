(** C-with-asm rendering of a synthetic clone.

    The paper disseminates clones as C files whose body is a sequence of
    [asm volatile] statements (so the compiler cannot optimise the hidden
    workload away).  Our executable artefact is an SRISC program; this
    module renders it in that C dissemination format for inspection and
    sharing.  The rendering is one-way (documentation of the clone), not
    a compilation input. *)

val to_c : Pc_isa.Program.t -> string
(** A complete C translation unit: a [main] that allocates the data
    segment with [malloc] and executes the instruction sequence as
    [asm volatile] statements, with labels preserved as comments. *)
