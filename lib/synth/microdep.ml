module I = Pc_isa.Instr
module Reg = Pc_isa.Reg
module Asm = Pc_isa.Asm
module Program = Pc_isa.Program
module Profile = Pc_profile.Profile
module Rng = Pc_util.Rng
module Sim = Pc_uarch.Sim

type targets = { l1d_miss_rate : float; mispredict_rate : float }

let measure_targets ?max_instrs cfg program =
  let r = Sim.run ?max_instrs cfg program in
  {
    l1d_miss_rate =
      (if r.Sim.l1d_accesses = 0 then 0.0
       else float_of_int r.Sim.l1d_misses /. float_of_int r.Sim.l1d_accesses);
    mispredict_rate = Sim.mispredict_rate r;
  }

(* Register layout mirrors Synth: r1..r13 integer pool, f1..f13 FP pool,
   r14 missing-stream pointer, r15 hitting-stream pointer, r16 LCG state,
   r26 iteration counter, r27 bound, r28 scratch. *)
let int_pool = Array.init 13 (fun i -> i + 1)
let fp_pool = Array.init 13 (fun i -> i + 1)
let miss_ptr = 14
let hit_ptr = 15
let lcg_reg = 16
let iter_reg = 26
let bound_reg = 27
let scratch = 28

(* The missing stream walks this many bytes before resetting: far larger
   than the reference 16 KB L1 with 32 B lines, so every access misses. *)
let miss_region_iters = 4096
let miss_stride = 32

(* Aggregate the profile's per-node dependency fractions into one global
   distribution, weighted by node execution counts. *)
let global_deps (profile : Profile.t) =
  let n_buckets = Array.length Profile.dep_bounds + 1 in
  let acc = Array.make n_buckets 0.0 in
  let total = ref 0.0 in
  Array.iter
    (fun (n : Profile.node) ->
      let w = float_of_int n.Profile.count in
      Array.iteri (fun i f -> acc.(i) <- acc.(i) +. (w *. f)) n.Profile.dep_fractions;
      total := !total +. w)
    profile.Profile.nodes;
  if !total > 0.0 then Array.map (fun v -> v /. !total) acc else acc

let sample_distance rng fractions =
  let bounds = Profile.dep_bounds in
  let u = Rng.float rng 1.0 in
  let acc = ref 0.0 in
  let bucket = ref (Array.length fractions - 1) in
  (try
     Array.iteri
       (fun i f ->
         acc := !acc +. f;
         if !acc >= u then begin
           bucket := i;
           raise Exit
         end)
       fractions
   with Exit -> ());
  if !bucket >= Array.length bounds then 33 + Rng.int rng 16
  else
    let hi = bounds.(!bucket) in
    let lo = if !bucket = 0 then 1 else bounds.(!bucket - 1) + 1 in
    lo + Rng.int rng (hi - lo + 1)

let generate ?(seed = 1) ?(target_dynamic = 100_000) ~(profile : Profile.t) ~targets () =
  let rng = Rng.create seed in
  let deps = global_deps profile in
  let mix = profile.Profile.global_mix in
  let frac c = mix.(I.class_index c) in
  let block_size =
    max 4 (min 32 (int_of_float (Float.round profile.Profile.avg_block_size)))
  in
  let n_blocks = 64 in
  let mem_frac = frac I.C_load +. frac I.C_store in
  let store_share =
    let m = frac I.C_load +. frac I.C_store in
    if m = 0.0 then 0.0 else frac I.C_store /. m
  in
  let mem_per_block =
    int_of_float (Float.round (mem_frac *. float_of_int block_size))
  in
  (* Dataflow helpers: round-robin destinations, recent-ring sources. *)
  let recent = Array.make 64 (-1) in
  let recent_count = ref 0 in
  let push_dest d =
    recent.(!recent_count land 63) <- d;
    incr recent_count
  in
  let next_int = ref 0 and next_fp = ref 0 in
  let alloc_int () =
    let r = int_pool.(!next_int) in
    next_int := (!next_int + 1) mod Array.length int_pool;
    r
  in
  let alloc_fp () =
    let r = fp_pool.(!next_fp) in
    next_fp := (!next_fp + 1) mod Array.length fp_pool;
    r
  in
  let find_src ~is_fp =
    let d = sample_distance rng deps in
    let matches id = id >= 0 && (if is_fp then id >= 32 else id < 32) in
    let at k =
      if k < 1 || k > min !recent_count 63 then -1
      else recent.((!recent_count - k) land 63)
    in
    let rec scan delta =
      if delta > 8 then
        if is_fp then fp_pool.(Rng.int rng (Array.length fp_pool))
        else int_pool.(Rng.int rng (Array.length int_pool))
      else
        let a = at (d - delta) and b = at (d + delta) in
        if matches a then (if a >= 32 then a - 32 else a)
        else if matches b then (if b >= 32 then b - 32 else b)
        else scan (delta + 1)
    in
    scan 0
  in
  let items = ref [] in
  let emit i = items := Asm.Ins i :: !items in
  let emit_label l = items := Asm.Label l :: !items in
  (* preamble *)
  Array.iteri (fun i r -> emit (I.Li (r, Int64.of_int (i + 3)))) int_pool;
  Array.iteri (fun i r -> emit (I.Fli (r, 1.0 +. (0.5 *. float_of_int i)))) fp_pool;
  let miss_base = Program.data_base in
  let hit_base =
    Program.data_base + (miss_stride * miss_region_iters) + 4096
  in
  emit (I.Li (miss_ptr, Int64.of_int miss_base));
  emit (I.Li (hit_ptr, Int64.of_int hit_base));
  emit (I.Li (lcg_reg, Int64.of_int (seed lor 1)));
  emit (I.Li (iter_reg, 0L));
  emit (I.Li (bound_reg, 1L));
  emit_label "loop_top";
  let body = ref 0 in
  (* One LCG step per iteration feeds every block's branch condition. *)
  emit (I.Li (scratch, 6364136223846793005L));
  emit (I.Mul (lcg_reg, lcg_reg, scratch));
  emit (I.Alui (I.Add, lcg_reg, lcg_reg, 1442695040888963407));
  body := !body + 3;
  (* Mem-op schedule: of all memory ops in the loop body, a fraction
     equal to the target miss rate goes to the missing stream. *)
  let total_mem = n_blocks * mem_per_block in
  let missing_ops =
    int_of_float (Float.round (targets.l1d_miss_rate *. float_of_int total_mem))
  in
  let mem_count = ref 0 in
  (* Branch bias: iid directions with the minority probability equal to
     the target misprediction rate (saturating counters settle on the
     majority direction, so mispredict ~ minority rate). *)
  let p_not_taken = max 0.01 (min 0.5 targets.mispredict_rate) in
  let threshold = max 1 (int_of_float (Float.round (p_not_taken *. 256.0))) in
  let comp_classes =
    [| I.C_int_alu; I.C_int_mul; I.C_int_div; I.C_fp_alu; I.C_fp_mul; I.C_fp_div |]
  in
  let weights = Array.map frac comp_classes in
  let wsum = Array.fold_left ( +. ) 0.0 weights in
  let sample_class () =
    if wsum <= 0.0 then I.C_int_alu
    else begin
      let u = Rng.float rng wsum in
      let acc = ref 0.0 in
      let result = ref I.C_int_alu in
      (try
         Array.iteri
           (fun i w ->
             acc := !acc +. w;
             if !acc >= u then begin
               result := comp_classes.(i);
               raise Exit
             end)
           weights
       with Exit -> ());
      !result
    end
  in
  let int_alu_ops = [| I.Add; I.Sub; I.Xor; I.And; I.Or |] in
  for b = 0 to n_blocks - 1 do
    emit_label (Printf.sprintf "bb_%d" b);
    for slot = 0 to block_size - 2 do
      let is_mem_slot =
        mem_per_block > 0 && slot mod (max 1 ((block_size - 1) / max 1 mem_per_block)) = 0
        && !mem_count < total_mem
      in
      if is_mem_slot then begin
        let misses = !mem_count < missing_ops in
        incr mem_count;
        let ptr = if misses then miss_ptr else hit_ptr in
        (* distinct line per op on the missing stream *)
        let off = if misses then 64 * (!mem_count mod 16) else 8 * (!mem_count mod 8) in
        if Rng.float rng 1.0 < store_share then begin
          let src = find_src ~is_fp:false in
          push_dest (-1);
          emit (I.Store (src, ptr, off))
        end
        else begin
          let d = alloc_int () in
          push_dest d;
          emit (I.Load (d, ptr, off))
        end
      end
      else begin
        match sample_class () with
        | I.C_int_alu ->
          let op = int_alu_ops.(Rng.int rng (Array.length int_alu_ops)) in
          let a = find_src ~is_fp:false and b' = find_src ~is_fp:false in
          let d = alloc_int () in
          push_dest d;
          emit (I.Alu (op, d, a, b'))
        | I.C_int_mul ->
          let a = find_src ~is_fp:false and b' = find_src ~is_fp:false in
          let d = alloc_int () in
          push_dest d;
          emit (I.Mul (d, a, b'))
        | I.C_int_div ->
          let a = find_src ~is_fp:false and b' = find_src ~is_fp:false in
          let d = alloc_int () in
          push_dest d;
          emit (I.Div (d, a, b'))
        | I.C_fp_alu ->
          let a = find_src ~is_fp:true and b' = find_src ~is_fp:true in
          let d = alloc_fp () in
          push_dest (32 + d);
          emit (I.Falu (I.Fadd, d, a, b'))
        | I.C_fp_mul ->
          let a = find_src ~is_fp:true and b' = find_src ~is_fp:true in
          let d = alloc_fp () in
          push_dest (32 + d);
          emit (I.Fmul (d, a, b'))
        | I.C_fp_div ->
          let a = find_src ~is_fp:true and b' = find_src ~is_fp:true in
          let d = alloc_fp () in
          push_dest (32 + d);
          emit (I.Fdiv (d, a, b'))
        | _ ->
          let d = alloc_int () in
          push_dest d;
          emit (I.Alu (I.Add, d, find_src ~is_fp:false, find_src ~is_fp:false))
      end
    done;
    (* pseudo-random branch direction from the LCG state *)
    let shift = 16 + (b mod 32) in
    emit (I.Alui (I.Srl, scratch, lcg_reg, shift));
    emit (I.Alui (I.And, scratch, scratch, 255));
    emit (I.Alui (I.Cmp_lt, scratch, scratch, threshold));
    (* not-taken with probability p_not_taken: branch when scratch = 0 *)
    emit (I.Br (I.Eq_z, scratch, I.Label (Printf.sprintf "bb_end_%d" b)));
    emit_label (Printf.sprintf "bb_end_%d" b);
    body := !body + block_size + 3
  done;
  (* advance and reset the missing stream *)
  emit (I.Alui (I.Add, miss_ptr, miss_ptr, miss_stride));
  emit (I.Alui (I.And, scratch, iter_reg, miss_region_iters - 1));
  emit (I.Br (I.Ne_z, scratch, I.Label "no_reset"));
  emit (I.Li (miss_ptr, Int64.of_int miss_base));
  emit_label "no_reset";
  emit (I.Alui (I.Add, iter_reg, iter_reg, 1));
  emit (I.Alu (I.Cmp_lt, scratch, iter_reg, bound_reg));
  emit (I.Br (I.Ne_z, scratch, I.Label "loop_top"));
  emit I.Halt;
  body := !body + 7;
  let iterations = max 1 (target_dynamic / max 1 !body) in
  let items =
    List.rev_map
      (fun item ->
        match item with
        | Asm.Ins (I.Li (r, 1L)) when r = bound_reg ->
          Asm.Ins (I.Li (bound_reg, Int64.of_int iterations))
        | other -> other)
      !items
  in
  let data_bytes = hit_base - Program.data_base + 4096 in
  Asm.assemble ~name:(profile.Profile.name ^ "-microdep") ~data:[] ~data_bytes items
