open Pc_kc.Ast
module Profile = Pc_profile.Profile
module Rng = Pc_util.Rng
module I = Pc_isa.Instr

let int_pool = [| "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7" |]
let fp_pool = [| "x0"; "x1"; "x2"; "x3"; "x4"; "x5" |]

type state = {
  rng : Rng.t;
  mutable next_int : int;
  mutable next_fp : int;
  mutable stream_slots : int array; (* ops placed per stream *)
}

let alloc_int st =
  let v = int_pool.(st.next_int) in
  st.next_int <- (st.next_int + 1) mod Array.length int_pool;
  v

let alloc_fp st =
  let v = fp_pool.(st.next_fp) in
  st.next_fp <- (st.next_fp + 1) mod Array.length fp_pool;
  v

(* A source: a pool variable at an approximate dependency distance.  The
   rotation means "distance d" maps to the variable written d allocations
   ago. *)
let int_src st (node : Profile.node) =
  let d = 1 + Rng.sample_cdf st.rng (
    let acc = ref 0.0 in
    Array.map (fun f -> acc := !acc +. f; !acc) node.Profile.dep_fractions)
  in
  let idx = (st.next_int - (d mod Array.length int_pool) + (2 * Array.length int_pool))
            mod Array.length int_pool in
  int_pool.(idx)

let fp_src st =
  fp_pool.(Rng.int st.rng (Array.length fp_pool))

let stream_name k = Printf.sprintf "stream_%d" k
let index_name k = Printf.sprintf "idx_%d" k

let store_stmt k idx_expr value = st (stream_name k) idx_expr value

(* One computational statement for a class (mirrors Synth.gen_instr). *)
let gen_stmt gs (node : Profile.node) cls streams geoms mem_queue =
  match cls with
  | I.C_int_alu ->
    let a = int_src gs node and b = int_src gs node in
    let d = alloc_int gs in
    let op = match Rng.int gs.rng 4 with
      | 0 -> Add | 1 -> Sub | 2 -> Bxor | _ -> Bor
    in
    set d (Bin (op, v a, v b))
  | I.C_int_mul ->
    let a = int_src gs node and b = int_src gs node in
    set (alloc_int gs) (v a *: v b)
  | I.C_int_div ->
    let a = int_src gs node and b = int_src gs node in
    set (alloc_int gs) (v a /: (v b |: i 1))
  | I.C_fp_alu ->
    let a = fp_src gs and b = fp_src gs in
    set (alloc_fp gs) (v a +: v b)
  | I.C_fp_mul ->
    let a = fp_src gs and b = fp_src gs in
    set (alloc_fp gs) (v a *: v b)
  | I.C_fp_div ->
    let a = fp_src gs and b = fp_src gs in
    set (alloc_fp gs) (v a /: (v b +: f 1.0))
  | I.C_load | I.C_store -> (
    match Queue.take_opt mem_queue with
    | Some (m : Profile.mem_op) ->
      let k, elems = Synth.assign_stream streams m, 0 in
      ignore elems;
      let slot = gs.stream_slots.(k) in
      gs.stream_slots.(k) <- slot + 1;
      let _, size_words, spread_words = geoms.(k) in
      let off = spread_words * slot mod max 1 size_words in
      let idx_expr =
        if off = 0 then v (index_name k)
        else (v (index_name k) +: i off) %: i (max 1 size_words)
      in
      if m.Profile.is_store then store_stmt k idx_expr (v (int_src gs node))
      else set (alloc_int gs) (ld (stream_name k) idx_expr)
    | None ->
      let a = int_src gs node and b = int_src gs node in
      set (alloc_int gs) (v a +: v b))
  | I.C_branch | I.C_jump | I.C_other ->
    let a = int_src gs node and b = int_src gs node in
    set (alloc_int gs) (Bin (Bxor, v a, v b))

(* Terminating "branch": an if with empty branches driven by the modulo
   counter, so the direction follows the profiled rates. *)
let gen_branch (node : Profile.node) =
  match node.Profile.branch with
  | None -> []
  | Some b ->
    let t = b.Profile.transition_rate and tr = b.Profile.taken_rate in
    if t <= 0.02 then
      (* fixed direction *)
      [ if_ (i (if tr >= 0.5 then 1 else 0)) [] [] ]
    else if t >= 0.9 then [ if_ ((v "it" &: i 1) =: i 0) [] [] ]
    else begin
      let p =
        let raw = int_of_float (Float.round (2.0 /. t)) in
        let rec pow2 x = if x >= raw then x else pow2 (2 * x) in
        max 2 (min 256 (pow2 2))
      in
      let taken = max 1 (min (p - 1) (int_of_float (Float.round (tr *. float_of_int p)))) in
      [ if_ ((v "it" &: i (p - 1)) <: i taken) [] [] ]
    end

let generate ?(seed = 1) ?(target_blocks = 0) ?(target_dynamic = 100_000)
    (profile : Profile.t) =
  let rng = Rng.create seed in
  let n_nodes = Array.length profile.Profile.nodes in
  if n_nodes = 0 then invalid_arg "Portable.generate: empty profile";
  let target_blocks =
    if target_blocks > 0 then target_blocks else min 400 (max 40 (2 * n_nodes))
  in
  let streams = Synth.plan_streams ~max_streams:8 profile in
  let streams =
    if Array.length streams = 0 then
      [|
        {
          Synth.stride = 8;
          length = 2;
          weight = 0;
          footprint = 64;
          active_span = 64;
          region = Pc_isa.Program.data_base;
          row_stride = 0;
        };
      |]
    else streams
  in
  let block_ids = Synth.walk_sfg rng profile target_blocks in
  (* stream geometry in ELEMENTS (8-byte words): (stride, size, spread) *)
  let op_counts = Array.make (Array.length streams) 0 in
  Array.iter
    (fun id ->
      Array.iter
        (fun (m : Profile.mem_op) ->
          let k = Synth.assign_stream streams m in
          op_counts.(k) <- op_counts.(k) + 1)
        profile.Profile.nodes.(id).Profile.mem_ops)
    block_ids;
  let geoms =
    Array.mapi
      (fun k (s : Synth.stream_info) ->
        let c = max 1 op_counts.(k) in
        let size_words = max 4 (min 65_536 (s.Synth.footprint / 8)) in
        let span_words = max 1 (min size_words (s.Synth.active_span / 8)) in
        let spread_words = max 1 (span_words / c) in
        let stride_words =
          if s.Synth.stride = 0 then 0
          else max 1 (abs s.Synth.stride / 8) * (if s.Synth.stride < 0 then -1 else 1)
        in
        (stride_words, size_words, spread_words))
      streams
  in
  let st = { rng; next_int = 0; next_fp = 0; stream_slots = Array.make (Array.length streams) 0 } in
  (* body statements *)
  let body = ref [] in
  let emit s = body := s :: !body in
  Array.iter
    (fun node_id ->
      let node = profile.Profile.nodes.(node_id) in
      let mem_queue = Queue.create () in
      Array.iter (fun m -> Queue.add m mem_queue) node.Profile.mem_ops;
      let n_mem = Array.length node.Profile.mem_ops in
      let body_slots = max 1 (node.Profile.size - 1) in
      let comp_classes =
        [| I.C_int_alu; I.C_int_mul; I.C_int_div; I.C_fp_alu; I.C_fp_mul; I.C_fp_div |]
      in
      let weights = Array.map (fun c -> node.Profile.mix.(I.class_index c)) comp_classes in
      let wsum = Array.fold_left ( +. ) 0.0 weights in
      let sample_class () =
        if wsum <= 0.0 then I.C_int_alu
        else begin
          let u = Rng.float st.rng wsum in
          let acc = ref 0.0 in
          let result = ref I.C_int_alu in
          (try
             Array.iteri
               (fun i w ->
                 acc := !acc +. w;
                 if !acc >= u then begin
                   result := comp_classes.(i);
                   raise Exit
                 end)
               weights
           with Exit -> ());
          !result
        end
      in
      let mem_every = max 1 (body_slots / max 1 n_mem) in
      for slot = 0 to body_slots - 1 do
        let cls =
          if n_mem > 0 && slot mod mem_every = 0 && not (Queue.is_empty mem_queue) then
            I.C_load
          else sample_class ()
        in
        emit (gen_stmt st node cls streams geoms mem_queue)
      done;
      List.iter emit (gen_branch node))
    block_ids;
  (* stream index maintenance *)
  Array.iteri
    (fun k (stride_words, size_words, _) ->
      if stride_words <> 0 then begin
        emit (set (index_name k) (v (index_name k) +: i stride_words));
        if stride_words > 0 then
          emit
            (if_ (v (index_name k) >=: i size_words)
               [ set (index_name k) (i 0) ]
               [])
        else
          emit
            (if_ (v (index_name k) <: i 0)
               [ set (index_name k) (i (size_words - 1)) ]
               [])
      end)
    geoms;
  let body = List.rev !body in
  (* rough per-iteration cost: one statement ~ 4 instructions *)
  let body_cost = 4 * List.length body in
  let iterations = max 2 (target_dynamic / max 1 body_cost) in
  let globals =
    Array.to_list
      (Array.mapi (fun k (_, size_words, _) -> garr (stream_name k) size_words) geoms)
  in
  let locals =
    [ ("it", I) ]
    @ Array.to_list (Array.mapi (fun k _ -> (index_name k, I)) geoms)
    @ Array.to_list (Array.map (fun n -> (n, I)) int_pool)
    @ Array.to_list (Array.map (fun n -> (n, F)) fp_pool)
  in
  let init =
    (* negative-stride indices start at the top *)
    Array.to_list geoms
    |> List.mapi (fun k (stride_words, size_words, _) ->
           if stride_words < 0 then set (index_name k) (i (size_words - 1))
           else set (index_name k) (i 0))
  in
  {
    globals;
    funs =
      [
        fn "main" ~locals
          (init
          @ [ for_ "it" (i 0) (i iterations) body ]
          @ [ ret (v (List.hd (Array.to_list int_pool))) ]);
      ];
  }

let generate_compiled ?seed ?target_blocks ?target_dynamic profile =
  let prog = generate ?seed ?target_blocks ?target_dynamic profile in
  Pc_kc.Compile.compile ~name:(profile.Profile.name ^ "-portable-clone") prog
