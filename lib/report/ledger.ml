type t = { dir : string }
type artifact = { schema : string; path : string }

let default_dir () =
  let base =
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> d
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat h ".cache"
      | _ -> Filename.get_temp_dir_name ())
  in
  Filename.concat base "pc-ledger"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create dir =
  let dir = if dir = "" then default_dir () else dir in
  mkdir_p dir;
  { dir }

let dir t = t.dir

(* --- argv normalisation --- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Drop parallelism and ledger flags: neither changes what the run
   computes, and keeping them would give -j1 and -j4 runs of the same
   experiment different digests.  [--ledger]'s optional value is always
   glued ([--ledger=DIR]), so the bare form never consumes a token.

   Output-destination values are elided the same way (the flag is kept,
   its path is not): where an artefact lands does not change what the
   run computes, and two otherwise-identical runs writing to different
   temp files should digest alike. *)
let out_opts =
  [
    "-o"; "--out"; "--output"; "--trace"; "--metrics-out"; "--sample-out";
    "--json"; "--dispatch-json"; "--cachesweep-json"; "--fidelity-out";
    "--plan-cache";
  ]

let rec normalise = function
  | [] -> []
  | ("-j" | "--jobs") :: rest -> (
    match rest with _ :: tl -> normalise tl | [] -> [])
  | "--ledger" :: rest -> normalise rest
  | arg :: rest
    when starts_with ~prefix:"--jobs=" arg
         || starts_with ~prefix:"--ledger=" arg
         || (starts_with ~prefix:"-j" arg && String.length arg > 2) ->
    normalise rest
  | arg :: rest when List.mem arg out_opts -> (
    (* [--plan-cache]'s optional value is glued like [--ledger]'s, so
       the bare flag keeps the token after it. *)
    match rest with
    | _ :: tl when arg <> "--plan-cache" -> arg :: normalise tl
    | _ -> arg :: normalise rest)
  | arg :: rest
    when List.exists (fun o -> starts_with ~prefix:(o ^ "=") arg) out_opts ->
    List.find (fun o -> starts_with ~prefix:(o ^ "=") arg) out_opts
    :: normalise rest
  | arg :: rest when starts_with ~prefix:"-o" arg && String.length arg > 2 ->
    "-o" :: normalise rest
  | arg :: rest -> arg :: normalise rest

let args_digest argv =
  Digest.to_hex (Digest.string (String.concat "\x00" (normalise argv)))

(* --- record rendering --- *)

let buf_str b s = Buffer.add_string b (Pc_obs.Sink.json_string s)

let buf_int_map b entries =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_str b k;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    entries;
  Buffer.add_char b '}'

(* The digested slice ([full = false]): everything in it is
   deterministic for a given invocation.  Histograms are timing, so the
   snapshot contributes counters and gauges only; artifact paths and
   digests and [exec.store.*]/[report.ledger.*] counters are rendered
   only into the stored record, not the id — paths are destinations
   (like the elided output-option values), file digests absorb trace
   timestamps, memo-store miss counts can double on same-key races at
   -j > 1, and the ledger's own bookkeeping grows with every record
   appended by the process. *)
let render_run b ~full ~tool ~args_digest:ad ~seed ~git
    ~(snap : Pc_obs.Metrics.snapshot) ~arts =
  let counters =
    if full then snap.Pc_obs.Metrics.counters
    else
      List.filter
        (fun (k, _) ->
          (not (starts_with ~prefix:"exec.store." k))
          && not (starts_with ~prefix:"report.ledger." k))
        snap.Pc_obs.Metrics.counters
  in
  Buffer.add_string b "{\"tool\":";
  buf_str b tool;
  Printf.bprintf b ",\"args_digest\":\"%s\",\"seed\":%d,\"git\":" ad seed;
  buf_str b git;
  Buffer.add_string b ",\"metrics\":{\"counters\":";
  buf_int_map b counters;
  Buffer.add_string b ",\"gauges\":";
  buf_int_map b snap.Pc_obs.Metrics.gauges;
  Buffer.add_string b "},\"artifacts\":[";
  List.iteri
    (fun i (schema, path, dg) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"schema\":";
      buf_str b schema;
      if full then begin
        Buffer.add_string b ",\"path\":";
        buf_str b path;
        Buffer.add_string b ",\"digest\":";
        buf_str b dg
      end;
      Buffer.add_char b '}')
    arts;
  Buffer.add_string b "]}"

let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
    let line = try input_line ic with End_of_file | Sys_error _ -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ | (exception _) -> "unknown")

let digest_of path =
  match Digest.file path with
  | d -> Digest.to_hex d
  | exception Sys_error _ -> "absent"

(* --- the record files --- *)

let is_record f =
  starts_with ~prefix:"run-" f && Filename.check_suffix f ".json"

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | files ->
    let l = List.filter is_record (Array.to_list files) in
    List.map (Filename.concat t.dir) (List.sort compare l)

let last t n =
  let l = entries t in
  let len = List.length l in
  List.filteri (fun i _ -> i >= len - n) l

let next_seq t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun acc f ->
        if is_record f && String.length f >= 10 then
          match int_of_string_opt (String.sub f 4 6) with
          | Some s -> max acc (s + 1)
          | None -> acc
        else acc)
      0 files

let c_records = lazy (Pc_obs.Metrics.counter "report.ledger.records")

let record t ~tool ~argv ~seed ~jobs ~artifacts =
  let snap = Pc_obs.Metrics.snapshot () in
  let git = git_describe () in
  let ad = args_digest argv in
  let arts =
    List.map
      (fun a -> (a.schema, a.path, digest_of a.path))
      (List.sort
         (fun a b -> compare (a.schema, a.path) (b.schema, b.path))
         artifacts)
  in
  let run ~full =
    let b = Buffer.create 2048 in
    render_run b ~full ~tool ~args_digest:ad ~seed ~git ~snap ~arts;
    Buffer.contents b
  in
  let id = Digest.to_hex (Digest.string (run ~full:false)) in
  let doc = Buffer.create 4096 in
  Printf.bprintf doc "{\"schema\":\"pc-run/1\",\"id\":\"%s\",\"run\":%s" id
    (run ~full:true);
  Buffer.add_string doc ",\"env\":{\"host\":";
  buf_str doc (try Unix.gethostname () with _ -> "unknown");
  Printf.bprintf doc ",\"time_unix_s\":%.6f,\"jobs\":%d,\"argv\":["
    (Unix.gettimeofday ()) jobs;
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char doc ',';
      buf_str doc a)
    argv;
  Buffer.add_string doc "]}}\n";
  (* Sequence numbers order the history; a concurrent writer racing to
     the same number just pushes this record to the next free slot. *)
  let rec place seq =
    let file =
      Filename.concat t.dir
        (Printf.sprintf "run-%06d-%s.json" seq (String.sub id 0 12))
    in
    if Sys.file_exists file then place (seq + 1) else file
  in
  let file = place (next_seq t) in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc doc);
  Sys.rename tmp file;
  Pc_obs.Metrics.incr (Lazy.force c_records);
  file
