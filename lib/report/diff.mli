(** Schema-aware drift diffing between two artefacts of the same
    schema.

    [diff] walks two parsed documents and classifies every difference
    per the schema's determinism contract (EXPERIMENTS.md):

    - deterministic fields (counters, gauges, seeds, sampling plans,
      fidelity characteristics, scenario reports) compare {b exactly};
    - timing fields (bench [ms_per_run], dispatch/cachesweep
      throughput) compare under a relative tolerance;
    - wall-clock data (histograms, [env], durations, digests of
      non-deterministic artefacts) is either skipped or reported as an
      [ok] {e note} that never fails a gate;
    - [pc-obs/1] span trees are aligned order-insensitively by name
      (sibling order is scheduling-dependent at [-j > 1]);
    - [pc-trace/1] timelines drift on the flat multisets of span
      [(name, args)], instant [(name, args)] and flow
      [(phase, name, id)] events — the exact set the tracer guarantees
      identical at every [-j] — while per-track nesting and durations
      are notes.

    The result renders as a [pc-diff/1] JSON document ({!to_json}), a
    console table ({!pp}), and gates under a [pc-diff-thresholds/1]
    document ({!thresholds}, {!apply}). *)

type kind =
  | Exact  (** a deterministic non-numeric field changed *)
  | Num  (** a numeric field changed (exactly compared or out of tol) *)
  | Added  (** key present only in the second document *)
  | Removed  (** key present only in the first document *)
  | Structural  (** type mismatch, list-length or span-count mismatch *)
  | Note  (** informational: expected run-to-run variation *)

type item = {
  path : string;  (** ["counters/funcsim.runs"], ["results[crc32]/ms_per_run"] *)
  kind : kind;
  a : string option;  (** rendered value in the first document *)
  b : string option;
  a_num : float option;
  b_num : float option;
  delta : float option;  (** [b - a] for numeric leaves *)
  tol : float option;  (** relative tolerance applied, if any *)
  ok : bool;  (** [true]: tolerated or informational; never drift *)
}

type report = {
  artifact_schema : string;
  a_label : string;
  b_label : string;
  compared : int;  (** leaves (and span groups) compared *)
  items : item list;  (** every difference, in traversal order *)
}

val schema_of : Pc_util.Json.t -> string option
(** Top-level ["schema"] member, or [otherData.schema] for traces. *)

val diff :
  a_label:string ->
  b_label:string ->
  Pc_util.Json.t ->
  Pc_util.Json.t ->
  (report, string) result
(** [Error] when either document has no recognisable schema or the two
    schemas differ. *)

val diff_files : string -> string -> (report, string) result
(** {!diff} two files; labels are the paths. *)

val drift : report -> item list
(** The items with [ok = false]. *)

val notes : report -> item list

val to_json : report -> string
(** The [pc-diff/1] document:

    {v
    { "schema": "pc-diff/1", "artifact_schema": "<schema>",
      "a": "<label>", "b": "<label>",
      "compared": <int>, "drift": <int>,
      "items": [ { "path": "<path>", "kind": "exact|num|added|removed|
                   structural|note", "a": <string|null>, "b": <string|null>,
                   "delta": <float|null>, "tol": <float|null>,
                   "ok": <bool> }, ... ] }
    v} *)

val pp : Format.formatter -> report -> unit
(** Console table: one row per item ([DRIFT] or [note]), then a
    summary line. *)

(** {1 Gating} *)

type thresholds = {
  max_drift : int;  (** gate passes when drift count is at most this *)
  ignore_paths : string list;
      (** glob patterns ([*] matches any run of characters, including
          [/]); a drift item whose path matches is downgraded to [ok] *)
  tolerances : (string * float) list;
      (** [(pattern, rel)]: numeric drift matching [pattern] is re-judged
          under relative tolerance [rel] instead of the schema default *)
}

val default_thresholds : thresholds
(** [max_drift = 0], nothing ignored, no tolerance overrides. *)

val thresholds_of_json : Pc_util.Json.t -> (thresholds, string) result
(** Parse a [pc-diff-thresholds/1] document:

    {v
    { "schema": "pc-diff-thresholds/1", "max_drift": <int>,
      "ignore": [ "<glob>", ... ],
      "tolerances": { "<glob>": <rel>, ... } }
    v} *)

val apply : thresholds -> report -> report
(** Re-judge every drift item under the thresholds' ignores and
    tolerance overrides. *)

val gate : thresholds -> report -> bool
(** [true] when [apply thresholds report] leaves at most [max_drift]
    drift items. *)

val run_artifact_pairs :
  Pc_util.Json.t -> Pc_util.Json.t -> (string * string * string) list
(** For two [pc-run/1] records, the artefacts recorded by both runs,
    paired by schema: [(schema, path_in_a, path_in_b)].  Callers
    recurse with {!diff_files} on the pairs that still exist on disk. *)
