module Json = Pc_util.Json

type event = {
  ph : string;
  tid : int;
  ts : float;
  name : string;
  id : int;
  args : (string * Json.t) list;
}

type t = { events : event list }

let schema = "pc-trace/1"

(* --- parsing --- *)

let parse_event j =
  let str k = Option.bind (Json.member k j) Json.to_string in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let flt k = Option.bind (Json.member k j) Json.to_float in
  match (str "ph", str "name") with
  | Some ph, Some name -> (
    let tid = Option.value ~default:0 (int "tid") in
    let ts = Option.value ~default:0.0 (flt "ts") in
    let id = Option.value ~default:0 (int "id") in
    let args =
      match Json.member "args" j with Some (Json.Obj fields) -> fields | _ -> []
    in
    match ph with
    | "M" | "B" | "E" | "i" | "s" | "t" | "f" | "C" ->
      Ok { ph; tid; ts; name; id; args }
    | ph -> Error (Printf.sprintf "unknown event phase %S" ph))
  | _ -> Error "event missing \"ph\" or \"name\""

let parse j =
  let doc_schema =
    Option.bind (Json.member "otherData" j) (fun od ->
        Option.bind (Json.member "schema" od) Json.to_string)
  in
  if doc_schema <> Some schema then
    Error (Printf.sprintf "not a %s document" schema)
  else
    match Option.bind (Json.member "traceEvents" j) Json.to_list with
    | None -> Error "missing \"traceEvents\" array"
    | Some events ->
      let rec go acc = function
        | [] -> Ok { events = List.rev acc }
        | e :: rest -> (
          match parse_event e with
          | Ok e -> go (e :: acc) rest
          | Error _ as e -> e)
      in
      go [] events

let parse_file path =
  match Json.parse_file path with
  | Error e -> Error e
  | Ok j -> parse j

(* --- rendering --- *)

(* [Chrome.arg_value] writes [Int] args with [string_of_int] and
   [Float] args with [%.9g].  For integral values below 1e9 the two
   formats coincide (9 significant digits, no exponent), so rendering
   from the parsed double is unambiguous there. *)
let buf_num b f =
  if Float.is_integer f && Float.abs f < 1e9 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.9g" f)

let buf_value b ~intlike = function
  | Json.Null -> Buffer.add_string b "null"
  | Json.Bool v -> Buffer.add_string b (string_of_bool v)
  | Json.Num f ->
    if intlike && Float.is_integer f then
      Buffer.add_string b (Printf.sprintf "%.0f" f)
    else buf_num b f
  | Json.Str s -> Buffer.add_string b (Pc_obs.Sink.json_string s)
  | Json.List _ | Json.Obj _ -> Buffer.add_string b "null"

let buf_args b ~intlike args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Pc_obs.Sink.json_string k);
      Buffer.add_char b ':';
      buf_value b ~intlike v)
    args;
  Buffer.add_char b '}'

let buf_event b e =
  let name = Pc_obs.Sink.json_string e.name in
  let ts = Printf.sprintf "%.3f" e.ts in
  (* Counter values are written with [%d] by the tracer at any
     magnitude, hence [intlike] rather than the shared ambiguity
     threshold. *)
  let intlike = e.ph = "C" in
  (match e.ph with
  | "M" ->
    Printf.bprintf b "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":%s,\"args\":"
      e.tid name
  | "C" ->
    Printf.bprintf b
      "{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":%s,\"args\":" e.tid
      ts name
  | ph ->
    let extra =
      match ph with
      | "i" -> ",\"s\":\"t\""
      | "s" | "t" -> Printf.sprintf ",\"id\":%d" e.id
      | "f" -> Printf.sprintf ",\"bp\":\"e\",\"id\":%d" e.id
      | _ -> ""
    in
    Printf.bprintf b
      "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"cat\":\"pc\",\"name\":%s%s,\"args\":"
      ph e.tid ts name extra);
  buf_args b ~intlike e.args;
  Buffer.add_char b '}'

let render t =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      buf_event b e)
    t.events;
  Buffer.add_string b
    "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"pc-trace/1\"}}";
  Buffer.contents b
