(** Cross-run ledger: every instrumented CLI appends one [pc-run/1]
    record per invocation ([--ledger \[DIR\]]), so drift between runs
    can be diffed after the fact ([pc_diff --ledger]).

    Record ([run-NNNNNN-<id12>.json], written atomically via the same
    tmp-then-rename discipline as {!Pc_sample.Plan_cache}):

    {v
    { "schema": "pc-run/1", "id": "<hex digest>",
      "run": { "tool": "<cli>", "args_digest": "<hex>", "seed": <int>,
               "git": "<describe|unknown>",
               "metrics": { "counters": { "<name>": <int>, ... },
                            "gauges":   { "<name>": <int>, ... } },
               "artifacts": [ { "schema": "<pc-*/1>", "path": "<path>",
                                "digest": "<hex|absent>" }, ... ] },
      "env": { "host": "<hostname>", "time_unix_s": <float>,
               "jobs": <int>, "argv": [ "<arg>", ... ] } }
    v}

    [id] digests the deterministic slice of the record — the [run]
    object with artifact [path]/[digest] fields and [exec.store.*]/
    [report.ledger.*] counters elided (paths are destinations, trace
    timestamps and
    histogram samples make whole-file digests wall-clock, and
    memo-store miss counts can double on same-key races at
    [-j > 1]).  Host, time,
    jobs and raw argv live in the undigested [env] object, and
    [args_digest] normalises [-j]/[--jobs]/[--ledger] away entirely and
    elides the path values of output-destination options ([-o],
    [--trace], [--metrics-out], ...), so repeated equivalent
    invocations produce byte-identical ids at any [-j] and wherever
    their artefacts land.
    Histograms are excluded from the metrics snapshot for the same
    reason.  The filename's sequence prefix orders the history (ids
    repeat across identical runs; sequence numbers do not). *)

type t

type artifact = { schema : string; path : string }

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/pc-ledger], falling back through [$HOME/.cache]
    to the system temp dir. *)

val create : string -> t
(** Open (creating if needed) the ledger directory.  [""] means
    {!default_dir}. *)

val dir : t -> string

val record :
  t ->
  tool:string ->
  argv:string list ->
  seed:int ->
  jobs:int ->
  artifacts:artifact list ->
  string
(** Append one record — snapshotting the metrics registry and digesting
    the listed artifact files — and return its path.  Bumps the
    [report.ledger.records] counter (registered lazily on first use and
    {e after} the snapshot, so ledger bookkeeping never appears in the
    recorded metrics or in any [--metrics-out] report written before
    it). *)

val entries : t -> string list
(** Record paths, oldest first. *)

val last : t -> int -> string list
(** The latest [n] record paths, oldest first. *)

val args_digest : string list -> string
(** The normalised-argv digest {!record} stores ([-j]/[--jobs]/
    [--ledger] and their values removed; output-destination option
    values elided). *)
