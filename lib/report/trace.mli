(** Reader (and byte-identical re-emitter) for [pc-trace/1] timelines.

    {!Pc_trace.Chrome} writes traces; this module reads them back for
    the drift engine ({!Diff}) without pulling the tracer's runtime
    (sampler domain, event collector) into report-only tools.

    {!render} reproduces {!Pc_trace.Chrome}'s exact field order and
    number formatting, so [parse |> render] is byte-identical to the
    file {!Pc_trace.Chrome.stop} wrote (minus the trailing newline) —
    the round-trip is a test-enforced schema contract.  One known
    limit: integer argument values at or above 1e9 re-render in
    [%.9g] exponent form; no current instrumentation emits them. *)

type event = {
  ph : string;  (** ["M"], ["B"], ["E"], ["i"], ["s"], ["t"], ["f"], ["C"] *)
  tid : int;  (** track: 0 = main, [i] = pool worker slot [i] *)
  ts : float;  (** microseconds since the trace epoch; [0.] for ["M"] *)
  name : string;
  id : int;  (** flow-arrow binding id (["s"]/["t"]/["f"]); [0] otherwise *)
  args : (string * Pc_util.Json.t) list;
}

type t = { events : event list }  (** in file order *)

val parse : Pc_util.Json.t -> (t, string) result
(** Accepts only documents whose [otherData.schema] is ["pc-trace/1"]
    and whose events all carry a known [ph]. *)

val parse_file : string -> (t, string) result

val render : t -> string
(** The [pc-trace/1] document for [t], without a trailing newline. *)
