module Json = Pc_util.Json

type kind = Exact | Num | Added | Removed | Structural | Note

type item = {
  path : string;
  kind : kind;
  a : string option;
  b : string option;
  a_num : float option;
  b_num : float option;
  delta : float option;
  tol : float option;
  ok : bool;
}

type report = {
  artifact_schema : string;
  a_label : string;
  b_label : string;
  compared : int;
  items : item list;
}

(* --- paths --- *)

(* Paths are segment lists; list elements extend their list's segment
   with a bracketed key ("results" -> "results[crc32]").  Policy
   matching strips the brackets so one rule covers every element. *)
let seg_base seg =
  match String.index_opt seg '[' with
  | Some i -> String.sub seg 0 i
  | None -> seg

let with_key path key =
  match List.rev path with
  | last :: rest -> List.rev ((last ^ "[" ^ key ^ "]") :: rest)
  | [] -> [ "[" ^ key ^ "]" ]

let path_str path = String.concat "/" path

(* --- per-schema policy --- *)

type policy =
  | P_exact
  | P_tol of float * float  (* relative tolerance, absolute floor *)
  | P_note
  | P_skip

(* Which leaves are deterministic, which are timing, which are
   environment — the machine-readable half of each schema's
   determinism contract in EXPERIMENTS.md. *)
let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let policy_for schema path =
  match (schema, List.map seg_base path) with
  | _, [ "schema" ] -> P_exact
  (* histograms are duration samples; spans are handled by the aligner *)
  | "pc-obs/1", "histograms" :: _ -> P_skip
  (* memo-store miss counts can double on same-key races at -j > 1 *)
  | "pc-obs/1", [ "counters"; c ]
  | "pc-run/1", [ "run"; "metrics"; "counters"; c ]
    when starts_with ~prefix:"exec.store." c ->
    P_note
  | "pc-bench/1", [ "results"; "ms_per_run" ] -> P_tol (0.2, 0.05)
  | ( "pc-dispatch/1",
      [
        ( "ref_ms_per_run" | "new_ms_per_run" | "ref_instrs_per_sec"
        | "new_instrs_per_sec" | "speedup" );
      ] )
  | "pc-cachesweep/1", [ ("ref_ms_per_run" | "onepass_ms_per_run" | "speedup") ]
    ->
    P_tol (0.5, 0.0)
  (* run records: the digested run object is exact; host/time/argv and
     per-artifact digests (trace timestamps, histogram samples) vary
     run to run by design. *)
  | "pc-run/1", "env" :: _ -> P_skip
  | "pc-run/1", ([ "id" ] | [ "run"; "git" ]) -> P_note
  | "pc-run/1", [ "run"; "artifacts"; ("path" | "digest") ] -> P_note
  | _, _ -> P_exact

(* Keyed lists align order-insensitively on a stable identity; unkeyed
   lists align by index. *)
let list_key schema path =
  let str k v = Option.bind (Json.member k v) Json.to_string in
  let get k v i = Option.value ~default:(Printf.sprintf "#%d" i) (str k v) in
  match (schema, List.map seg_base path) with
  | "pc-bench/1", [ "results" ] -> Some (fun i v -> get "name" v i)
  | "pc-sample/1", [ "programs" ] ->
    Some (fun i v -> get "bench" v i ^ "/" ^ get "kind" v i)
  | "pc-fidelity/1", [ "benchmarks" ] -> Some (fun i v -> get "bench" v i)
  | "pc-scenario/1", [ "scenarios" ] -> Some (fun i v -> get "name" v i)
  | "pc-run/1", [ "run"; "artifacts" ] -> Some (fun i v -> get "schema" v i)
  | _ -> None

(* --- walking --- *)

type ctx = { mutable compared : int; mutable items : item list }

let add ctx it = ctx.items <- it :: ctx.items

let item ?a ?b ?a_num ?b_num ?delta ?tol ~ok path kind =
  { path = path_str path; kind; a; b; a_num; b_num; delta; tol; ok }

let pp_value = function
  | Json.Null -> "null"
  | Json.Bool v -> string_of_bool v
  | Json.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Json.Str s -> Printf.sprintf "%S" s
  | Json.List l -> Printf.sprintf "[%d items]" (List.length l)
  | Json.Obj l -> Printf.sprintf "{%d fields}" (List.length l)

let one_sided ctx schema path kind v =
  match policy_for schema path with
  | P_skip -> ()
  | pol ->
    ctx.compared <- ctx.compared + 1;
    let rendered = Some (pp_value v) in
    let a, b = if kind = Removed then (rendered, None) else (None, rendered) in
    add ctx (item ?a ?b ~ok:(pol = P_note) path kind)

let leaf ctx schema path a b =
  match policy_for schema path with
  | P_skip -> ()
  | pol -> (
    ctx.compared <- ctx.compared + 1;
    match (a, b) with
    | Json.Num x, Json.Num y when not (Float.equal x y) ->
      let delta = y -. x in
      let ok, tol =
        match pol with
        | P_tol (rel, abs_floor) ->
          ( Float.abs delta <= abs_floor
            || Float.abs delta <= rel *. Float.max (Float.abs x) (Float.abs y),
            Some rel )
        | P_note -> (true, None)
        | P_exact | P_skip -> (false, None)
      in
      add ctx
        (item ~a:(pp_value a) ~b:(pp_value b) ~a_num:x ~b_num:y ~delta ?tol ~ok
           path
           (if pol = P_note then Note else Num))
    | Json.Num _, Json.Num _ -> ()
    | a, b when a = b -> ()
    | a, b ->
      let same_shape =
        match (a, b) with
        | Json.Bool _, Json.Bool _ | Json.Str _, Json.Str _ -> true
        | _ -> false
      in
      let kind =
        if pol = P_note then Note else if same_shape then Exact else Structural
      in
      add ctx
        (item ~a:(pp_value a) ~b:(pp_value b) ~ok:(pol = P_note) path kind))

let span_name v =
  Option.value ~default:"?" (Option.bind (Json.member "name" v) Json.to_string)

let span_children v =
  match Json.member "children" v with Some (Json.List l) -> l | _ -> []

let span_sum key spans =
  List.fold_left
    (fun acc s ->
      acc +. Option.value ~default:0.0 (Option.bind (Json.member key s) Json.to_float))
    0.0 spans

(* Skips prune whole subtrees: [env] is an object, [histograms] a map
   of lists, and neither should surface even structural mismatches. *)
let rec walk ctx schema path a b =
  if path <> [] && policy_for schema path = P_skip then ()
  else
    match (a, b) with
  | Json.Obj fa, Json.Obj fb ->
    List.iter
      (fun (k, va) ->
        match List.assoc_opt k fb with
        | Some vb -> walk ctx schema (path @ [ k ]) va vb
        | None -> one_sided ctx schema (path @ [ k ]) Removed va)
      fa;
    List.iter
      (fun (k, vb) ->
        if not (List.mem_assoc k fa) then
          one_sided ctx schema (path @ [ k ]) Added vb)
      fb
  | Json.List la, Json.List lb ->
    if schema = "pc-obs/1" && List.map seg_base path = [ "spans" ] then
      walk_spans ctx path la lb
    else walk_list ctx schema path la lb
  | a, b -> leaf ctx schema path a b

and walk_list ctx schema path la lb =
  match list_key schema path with
  | Some key ->
    let tag l = List.mapi (fun i v -> (key i v, v)) l in
    let ka = tag la and kb = tag lb in
    List.iter
      (fun (k, va) ->
        match List.assoc_opt k kb with
        | Some vb -> walk ctx schema (with_key path k) va vb
        | None -> one_sided ctx schema (with_key path k) Removed va)
      ka;
    List.iter
      (fun (k, vb) ->
        if not (List.mem_assoc k ka) then
          one_sided ctx schema (with_key path k) Added vb)
      kb
  | None ->
    let na = List.length la and nb = List.length lb in
    ctx.compared <- ctx.compared + 1;
    if na <> nb then
      add ctx
        (item
           ~a:(Printf.sprintf "%d items" na)
           ~b:(Printf.sprintf "%d items" nb)
           ~ok:false path Structural);
    List.iteri
      (fun i (va, vb) ->
        walk ctx schema (with_key path (string_of_int i)) va vb)
      (List.combine
         (List.filteri (fun i _ -> i < min na nb) la)
         (List.filteri (fun i _ -> i < min na nb) lb))

(* Span trees: sibling order is completion order — scheduling-dependent
   at -j > 1 — so siblings are grouped by name and compared as groups:
   the per-name count is deterministic (drift), summed durations are
   wall-clock (notes). *)
and walk_spans ctx path la lb =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  let feed side spans =
    List.iter
      (fun s ->
        let n = span_name s in
        let a_l, b_l =
          match Hashtbl.find_opt tbl n with
          | Some p -> p
          | None ->
            order := n :: !order;
            ([], [])
        in
        Hashtbl.replace tbl n
          (match side with
          | `A -> (s :: a_l, b_l)
          | `B -> (a_l, s :: b_l)))
      spans
  in
  feed `A la;
  feed `B lb;
  List.iter
    (fun n ->
      let a_l, b_l = Hashtbl.find tbl n in
      let a_l = List.rev a_l and b_l = List.rev b_l in
      let p = with_key path n in
      ctx.compared <- ctx.compared + 1;
      if List.length a_l <> List.length b_l then
        add ctx
          (item
             ~a:(Printf.sprintf "%d spans" (List.length a_l))
             ~b:(Printf.sprintf "%d spans" (List.length b_l))
             ~ok:false p Structural)
      else begin
        List.iter
          (fun key ->
            let x = span_sum key a_l and y = span_sum key b_l in
            if not (Float.equal x y) then
              add ctx
                (item
                   ~a:(Printf.sprintf "%g" x)
                   ~b:(Printf.sprintf "%g" y)
                   ~a_num:x ~b_num:y ~delta:(y -. x) ~ok:true
                   (p @ [ key ])
                   Note))
          [ "duration_s"; "self_s" ];
        walk_spans ctx p
          (List.concat_map span_children a_l)
          (List.concat_map span_children b_l)
      end)
    (List.rev !order)

(* --- trace timelines --- *)

let args_sig args =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (pp_value v)) args)

(* The tracer's -j contract: the multiset of span (name, args), instant
   (name, args) and flow (phase, name, id) events is identical at every
   pool width; nesting (lane assignment) and timestamps are not. *)
let trace_multiset (tr : Trace.t) =
  let tbl = Hashtbl.create 256 in
  let order = ref [] in
  let bump k =
    (match Hashtbl.find_opt tbl k with
    | None -> order := k :: !order
    | Some _ -> ());
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.ph with
      | "B" -> bump (Printf.sprintf "span %s{%s}" e.Trace.name (args_sig e.Trace.args))
      | "i" ->
        bump (Printf.sprintf "instant %s{%s}" e.Trace.name (args_sig e.Trace.args))
      | "s" | "t" | "f" ->
        bump (Printf.sprintf "flow:%s %s#%d" e.Trace.ph e.Trace.name e.Trace.id)
      | _ -> ())
    tr.Trace.events;
  (tbl, List.rev !order)

(* B/E balance per span name (E events carry no args). *)
let trace_balance (tr : Trace.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      let bump d =
        Hashtbl.replace tbl e.Trace.name
          (d + Option.value ~default:0 (Hashtbl.find_opt tbl e.Trace.name))
      in
      match e.Trace.ph with "B" -> bump 1 | "E" -> bump (-1) | _ -> ())
    tr.Trace.events;
  Hashtbl.fold (fun n d acc -> if d <> 0 then (n, d) :: acc else acc) tbl []

(* Per-name-path durations from B/E pairing, aggregated across tracks:
   informational only — a task nests under its caller at -j1 but roots
   a worker lane at -j4. *)
let trace_durations (tr : Trace.t) =
  let stacks = Hashtbl.create 8 in
  let durs = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks e.Trace.tid) in
      match e.Trace.ph with
      | "B" ->
        Hashtbl.replace stacks e.Trace.tid ((e.Trace.name, e.Trace.ts) :: stack)
      | "E" -> (
        match stack with
        | [] -> ()
        | (_, t0) :: rest ->
          Hashtbl.replace stacks e.Trace.tid rest;
          let path =
            String.concat "/" (List.rev_map fst stack)
          in
          let c, total =
            Option.value ~default:(0, 0.0) (Hashtbl.find_opt durs path)
          in
          if c = 0 then order := path :: !order;
          Hashtbl.replace durs path (c + 1, total +. (e.Trace.ts -. t0)))
      | _ -> ())
    tr.Trace.events;
  (durs, List.rev !order)

let diff_trace ctx ta tb =
  let ma, oa = trace_multiset ta in
  let mb, ob = trace_multiset tb in
  let keys =
    oa @ List.filter (fun k -> not (Hashtbl.mem ma k)) ob
  in
  List.iter
    (fun k ->
      let ca = Option.value ~default:0 (Hashtbl.find_opt ma k) in
      let cb = Option.value ~default:0 (Hashtbl.find_opt mb k) in
      ctx.compared <- ctx.compared + 1;
      if ca <> cb then
        add ctx
          (item
             ~a:(Printf.sprintf "%d" ca)
             ~b:(Printf.sprintf "%d" cb)
             ~a_num:(float_of_int ca) ~b_num:(float_of_int cb)
             ~delta:(float_of_int (cb - ca))
             ~ok:false [ "events"; k ] Structural))
    keys;
  List.iter
    (fun (side, balance) ->
      List.iter
        (fun (name, d) ->
          add ctx
            (item
               ~a:(Printf.sprintf "%+d unmatched B/E in %s" d side)
               ~ok:false
               [ "events"; "unbalanced"; name ]
               Structural))
        balance)
    [ ("a", trace_balance ta); ("b", trace_balance tb) ];
  let da, orda = trace_durations ta in
  let db, ordb = trace_durations tb in
  let paths = orda @ List.filter (fun p -> not (Hashtbl.mem da p)) ordb in
  List.iter
    (fun p ->
      match (Hashtbl.find_opt da p, Hashtbl.find_opt db p) with
      | Some (_, ua), Some (_, ub) ->
        if not (Float.equal ua ub) then
          add ctx
            (item
               ~a:(Printf.sprintf "%.0f us" ua)
               ~b:(Printf.sprintf "%.0f us" ub)
               ~a_num:ua ~b_num:ub ~delta:(ub -. ua) ~ok:true
               [ "tracks"; p ] Note)
      | Some (_, ua), None ->
        add ctx
          (item ~a:(Printf.sprintf "%.0f us" ua) ~ok:true [ "tracks"; p ] Note)
      | None, Some (_, ub) ->
        add ctx
          (item ~b:(Printf.sprintf "%.0f us" ub) ~ok:true [ "tracks"; p ] Note)
      | None, None -> ())
    paths

(* --- entry points --- *)

let schema_of j =
  match Json.member "schema" j with
  | Some (Json.Str s) -> Some s
  | _ -> (
    match Option.bind (Json.member "otherData" j) (Json.member "schema") with
    | Some (Json.Str s) -> Some s
    | _ -> None)

let diff ~a_label ~b_label ja jb =
  match (schema_of ja, schema_of jb) with
  | None, _ -> Error (Printf.sprintf "%s: no recognisable schema" a_label)
  | _, None -> Error (Printf.sprintf "%s: no recognisable schema" b_label)
  | Some sa, Some sb when sa <> sb ->
    Error (Printf.sprintf "schema mismatch: %s is %s, %s is %s" a_label sa
             b_label sb)
  | Some s, Some _ ->
    let ctx = { compared = 0; items = [] } in
    let result =
      if s = "pc-trace/1" then
        match (Trace.parse ja, Trace.parse jb) with
        | Ok ta, Ok tb ->
          diff_trace ctx ta tb;
          Ok ()
        | Error e, _ -> Error (Printf.sprintf "%s: %s" a_label e)
        | _, Error e -> Error (Printf.sprintf "%s: %s" b_label e)
      else begin
        walk ctx s [] ja jb;
        Ok ()
      end
    in
    Result.map
      (fun () ->
        {
          artifact_schema = s;
          a_label;
          b_label;
          compared = ctx.compared;
          items = List.rev ctx.items;
        })
      result

let diff_files a b =
  match Json.parse_file a with
  | Error e -> Error (Printf.sprintf "%s: %s" a e)
  | Ok ja -> (
    match Json.parse_file b with
    | Error e -> Error (Printf.sprintf "%s: %s" b e)
    | Ok jb -> diff ~a_label:a ~b_label:b ja jb)

let drift (r : report) = List.filter (fun it -> not it.ok) r.items
let notes (r : report) = List.filter (fun it -> it.ok) r.items

(* --- rendering --- *)

let kind_str = function
  | Exact -> "exact"
  | Num -> "num"
  | Added -> "added"
  | Removed -> "removed"
  | Structural -> "structural"
  | Note -> "note"

let to_json (r : report) =
  let b = Buffer.create 4096 in
  let str s = Buffer.add_string b (Pc_obs.Sink.json_string s) in
  let opt_str = function None -> Buffer.add_string b "null" | Some s -> str s in
  let opt_num = function
    | None -> Buffer.add_string b "null"
    | Some f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
      else Buffer.add_string b "null"
  in
  Buffer.add_string b "{\"schema\":\"pc-diff/1\",\"artifact_schema\":";
  str r.artifact_schema;
  Buffer.add_string b ",\"a\":";
  str r.a_label;
  Buffer.add_string b ",\"b\":";
  str r.b_label;
  Printf.bprintf b ",\"compared\":%d,\"drift\":%d,\"items\":[" r.compared
    (List.length (drift r));
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"path\":";
      str it.path;
      Buffer.add_string b ",\"kind\":";
      str (kind_str it.kind);
      Buffer.add_string b ",\"a\":";
      opt_str it.a;
      Buffer.add_string b ",\"b\":";
      opt_str it.b;
      Buffer.add_string b ",\"delta\":";
      opt_num it.delta;
      Buffer.add_string b ",\"tol\":";
      opt_num it.tol;
      Printf.bprintf b ",\"ok\":%b}" it.ok)
    r.items;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf (r : report) =
  Format.fprintf ppf "pc_diff: %s@." r.artifact_schema;
  Format.fprintf ppf "  a: %s@.  b: %s@." r.a_label r.b_label;
  List.iter
    (fun it ->
      Format.fprintf ppf "  %-5s %-10s %-44s %s -> %s%s@."
        (if it.ok then "note" else "DRIFT")
        (kind_str it.kind) it.path
        (Option.value ~default:"-" it.a)
        (Option.value ~default:"-" it.b)
        (match it.delta with
        | Some d when it.kind <> Note -> Format.asprintf " (delta %+g)" d
        | _ -> ""))
    r.items;
  Format.fprintf ppf "  %d compared, %d drift, %d notes@." r.compared
    (List.length (drift r))
    (List.length (notes r))

(* --- thresholds --- *)

type thresholds = {
  max_drift : int;
  ignore_paths : string list;
  tolerances : (string * float) list;
}

let default_thresholds = { max_drift = 0; ignore_paths = []; tolerances = [] }

let thresholds_of_json j =
  match schema_of j with
  | Some "pc-diff-thresholds/1" ->
    let max_drift =
      Option.value ~default:0 (Option.bind (Json.member "max_drift" j) Json.to_int)
    in
    let ignore_paths =
      match Json.member "ignore" j with
      | Some (Json.List l) -> List.filter_map Json.to_string l
      | _ -> []
    in
    let tolerances =
      match Json.member "tolerances" j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
          fields
      | _ -> []
    in
    Ok { max_drift; ignore_paths; tolerances }
  | _ -> Error "not a pc-diff-thresholds/1 document"

let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pat.[pi] with
      | '*' -> go (pi + 1) si || (si < ns && go pi (si + 1))
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let apply th (r : report) =
  let items =
    List.map
      (fun it ->
        if it.ok then it
        else if List.exists (fun p -> glob_match p it.path) th.ignore_paths then
          { it with ok = true }
        else
          match
            ( it.a_num,
              it.b_num,
              List.find_opt (fun (p, _) -> glob_match p it.path) th.tolerances )
          with
          | Some x, Some y, Some (_, rel) ->
            let ok =
              Float.abs (y -. x)
              <= rel *. Float.max (Float.abs x) (Float.abs y)
            in
            { it with tol = Some rel; ok }
          | _ -> it)
      r.items
  in
  { r with items }

let gate th r = List.length (drift (apply th r)) <= th.max_drift

(* --- pc-run/1 recursion --- *)

let run_artifact_pairs ja jb =
  let arts j =
    match
      Option.bind (Json.member "run" j) (fun run ->
          Option.bind (Json.member "artifacts" run) Json.to_list)
    with
    | None -> []
    | Some l ->
      List.filter_map
        (fun a ->
          match
            ( Option.bind (Json.member "schema" a) Json.to_string,
              Option.bind (Json.member "path" a) Json.to_string )
          with
          | Some s, Some p -> Some (s, p)
          | _ -> None)
        l
  in
  List.filter_map
    (fun (s, pa) ->
      Option.map (fun (_, pb) -> (s, pa, pb))
        (List.find_opt (fun (sb, _) -> sb = s) (arts jb)))
    (arts ja)
