type t = {
  code : Instr.t array;
  data : (int * int64) list;
  data_bytes : int;
  name : string;
}

let data_base = 0x10_0000 (* 1 MiB *)
let stack_base = 0x7F_FFF8

let check_target code i = function
  | Instr.Label l ->
    invalid_arg (Printf.sprintf "Program.v: unresolved label %S at %d" l i)
  | Instr.Abs t ->
    if t < 0 || t >= Array.length code then
      invalid_arg (Printf.sprintf "Program.v: target %d out of range at %d" t i)

let v ~name ~code ~data ~data_bytes =
  Array.iteri
    (fun i instr ->
      match instr with
      | Instr.Br (_, _, t) | Instr.Jmp t | Instr.Call t -> check_target code i t
      | _ -> ())
    code;
  List.iter
    (fun (addr, _) ->
      if addr mod 8 <> 0 then
        invalid_arg (Printf.sprintf "Program.v: unaligned data word at %#x" addr);
      if addr < data_base || addr >= data_base + data_bytes then
        invalid_arg
          (Printf.sprintf "Program.v: data word %#x outside segment" addr))
    data;
  { code; data; data_bytes; name }

let length t = Array.length t.code

let pp ppf t =
  Format.fprintf ppf "; program %s (%d instrs, %d data bytes)@."
    t.name (Array.length t.code) t.data_bytes;
  Array.iteri
    (fun i instr -> Format.fprintf ppf "%6d:  %a@." i Instr.pp instr)
    t.code
