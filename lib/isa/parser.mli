(** Parser for SRISC assembly text.

    Accepts the format {!Program.pp} emits (numeric [@N] targets and
    [index:] prefixes) as well as hand-written assembly with symbolic
    labels, comments and data directives, completing the toolchain:
    programs can be written, pretty-printed, parsed back, serialised
    ({!Encoding}) and executed.

    Grammar (one item per line; [;] or [#] start a comment):
    {v
    .name quicksort          program name (optional)
    .data 0x100000 42        one initial data word
    .data_bytes 4096         reserved data-segment size
    loop:                    label definition
      addi r2, r2, -1        instructions as printed by Instr.pp
      bgtz r2, loop          symbolic or @N branch targets
      halt
    v} *)

exception Error of string
(** Raised with line number and message on malformed input. *)

val parse_string : ?name:string -> string -> Program.t
(** Parse a whole translation unit.  [name] overrides a missing [.name]
    directive (default ["anonymous"]). *)

val parse_channel : ?name:string -> in_channel -> Program.t

val roundtrip_text : Program.t -> string
(** Render a program in parseable form ({!Program.pp}'s listing plus the
    directives needed to reconstruct it). *)
