(** Executable SRISC programs.

    A program is a resolved instruction array (all branch targets are
    [Abs]) plus a description of the initial data segment.  The memory
    layout is fixed:

    - data segment starts at {!data_base} (byte address),
    - the stack grows down from {!stack_base},
    - instruction [i] lives at byte address [4 * i] for I-cache purposes.

    Programs are produced by the assembler ({!Asm}), the Kc compiler, or
    the clone synthesizer. *)

type t = private {
  code : Instr.t array;  (** resolved instructions; entry point is index 0 *)
  data : (int * int64) list;  (** initial words: (byte address, value) *)
  data_bytes : int;  (** bytes reserved for the data segment *)
  name : string;  (** identifier used in reports *)
}

val data_base : int
(** Byte address where the data segment starts (also the base used by code
    generators for global arrays). *)

val stack_base : int
(** Initial stack pointer (stack grows towards lower addresses). *)

val v : name:string -> code:Instr.t array -> data:(int * int64) list -> data_bytes:int -> t
(** Constructs a program after validating it: every control-flow target
    must be a resolved, in-range [Abs]; data addresses must be 8-byte
    aligned and inside the reserved segment.  Raises [Invalid_argument]
    otherwise. *)

val length : t -> int
(** Static instruction count. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing. *)
