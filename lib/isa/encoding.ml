module I = Instr

let magic = "SRISC1"

(* --- LEB128 (signed, zig-zag) over a Buffer / position cursor --- *)

let zigzag (n : int64) =
  Int64.logxor (Int64.shift_left n 1) (Int64.shift_right n 63)

let unzigzag (n : int64) =
  Int64.logxor (Int64.shift_right_logical n 1) (Int64.neg (Int64.logand n 1L))

let put_varint buf (n : int64) =
  let v = ref (zigzag n) in
  let continue = ref true in
  while !continue do
    let low = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let put_int buf n = put_varint buf (Int64.of_int n)

type cursor = { data : bytes; mutable pos : int }

let get_byte c =
  if c.pos >= Bytes.length c.data then failwith "Encoding: truncated input";
  let b = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec go shift acc =
    let b = get_byte c in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7F)) shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  unzigzag (go 0 0L)

let get_int c = Int64.to_int (get_varint c)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let get_string c =
  let n = get_int c in
  if n < 0 || c.pos + n > Bytes.length c.data then failwith "Encoding: bad string";
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* --- instruction opcodes --- *)

let alu_code = function
  | I.Add -> 0 | I.Sub -> 1 | I.And -> 2 | I.Or -> 3 | I.Xor -> 4
  | I.Sll -> 5 | I.Srl -> 6 | I.Sra -> 7 | I.Cmp_eq -> 8 | I.Cmp_lt -> 9
  | I.Cmp_le -> 10

let alu_of_code = function
  | 0 -> I.Add | 1 -> I.Sub | 2 -> I.And | 3 -> I.Or | 4 -> I.Xor
  | 5 -> I.Sll | 6 -> I.Srl | 7 -> I.Sra | 8 -> I.Cmp_eq | 9 -> I.Cmp_lt
  | 10 -> I.Cmp_le | n -> failwith (Printf.sprintf "Encoding: bad alu op %d" n)

let cond_code = function
  | I.Eq_z -> 0 | I.Ne_z -> 1 | I.Lt_z -> 2 | I.Ge_z -> 3 | I.Gt_z -> 4
  | I.Le_z -> 5

let cond_of_code = function
  | 0 -> I.Eq_z | 1 -> I.Ne_z | 2 -> I.Lt_z | 3 -> I.Ge_z | 4 -> I.Gt_z
  | 5 -> I.Le_z | n -> failwith (Printf.sprintf "Encoding: bad condition %d" n)

let target_index = function
  | I.Abs i -> i
  | I.Label l -> failwith (Printf.sprintf "Encoding: unresolved label %S" l)

let put_instr buf instr =
  let op n = put_int buf n in
  match instr with
  | I.Alu (o, d, a, b) -> op 0; put_int buf (alu_code o); op d; op a; op b
  | I.Alui (o, d, a, imm) -> op 1; put_int buf (alu_code o); op d; op a; op imm
  | I.Li (d, v) -> op 2; op d; put_varint buf v
  | I.Mul (d, a, b) -> op 3; op d; op a; op b
  | I.Div (d, a, b) -> op 4; op d; op a; op b
  | I.Rem (d, a, b) -> op 5; op d; op a; op b
  | I.Falu (I.Fadd, d, a, b) -> op 6; op d; op a; op b
  | I.Falu (I.Fsub, d, a, b) -> op 7; op d; op a; op b
  | I.Fmul (d, a, b) -> op 8; op d; op a; op b
  | I.Fdiv (d, a, b) -> op 9; op d; op a; op b
  | I.Fli (d, v) -> op 10; op d; put_varint buf (Int64.bits_of_float v)
  | I.Fmov (d, a) -> op 11; op d; op a
  | I.Fcmp (I.Fcmp_eq, d, a, b) -> op 12; op d; op a; op b
  | I.Fcmp (I.Fcmp_lt, d, a, b) -> op 13; op d; op a; op b
  | I.Fcmp (I.Fcmp_le, d, a, b) -> op 14; op d; op a; op b
  | I.Itof (d, a) -> op 15; op d; op a
  | I.Ftoi (d, a) -> op 16; op d; op a
  | I.Load (d, a, off) -> op 17; op d; op a; op off
  | I.Store (s, a, off) -> op 18; op s; op a; op off
  | I.Fload (d, a, off) -> op 19; op d; op a; op off
  | I.Fstore (s, a, off) -> op 20; op s; op a; op off
  | I.Br (c, r, t) -> op 21; put_int buf (cond_code c); op r; op (target_index t)
  | I.Jmp t -> op 22; op (target_index t)
  | I.Jr r -> op 23; op r
  | I.Call t -> op 24; op (target_index t)
  | I.Halt -> op 25

let get_instr c =
  let i () = get_int c in
  match i () with
  | 0 -> let o = alu_of_code (i ()) in let d = i () in let a = i () in let b = i () in I.Alu (o, d, a, b)
  | 1 -> let o = alu_of_code (i ()) in let d = i () in let a = i () in let imm = i () in I.Alui (o, d, a, imm)
  | 2 -> let d = i () in I.Li (d, get_varint c)
  | 3 -> let d = i () in let a = i () in let b = i () in I.Mul (d, a, b)
  | 4 -> let d = i () in let a = i () in let b = i () in I.Div (d, a, b)
  | 5 -> let d = i () in let a = i () in let b = i () in I.Rem (d, a, b)
  | 6 -> let d = i () in let a = i () in let b = i () in I.Falu (I.Fadd, d, a, b)
  | 7 -> let d = i () in let a = i () in let b = i () in I.Falu (I.Fsub, d, a, b)
  | 8 -> let d = i () in let a = i () in let b = i () in I.Fmul (d, a, b)
  | 9 -> let d = i () in let a = i () in let b = i () in I.Fdiv (d, a, b)
  | 10 -> let d = i () in I.Fli (d, Int64.float_of_bits (get_varint c))
  | 11 -> let d = i () in let a = i () in I.Fmov (d, a)
  | 12 -> let d = i () in let a = i () in let b = i () in I.Fcmp (I.Fcmp_eq, d, a, b)
  | 13 -> let d = i () in let a = i () in let b = i () in I.Fcmp (I.Fcmp_lt, d, a, b)
  | 14 -> let d = i () in let a = i () in let b = i () in I.Fcmp (I.Fcmp_le, d, a, b)
  | 15 -> let d = i () in let a = i () in I.Itof (d, a)
  | 16 -> let d = i () in let a = i () in I.Ftoi (d, a)
  | 17 -> let d = i () in let a = i () in let off = i () in I.Load (d, a, off)
  | 18 -> let s = i () in let a = i () in let off = i () in I.Store (s, a, off)
  | 19 -> let d = i () in let a = i () in let off = i () in I.Fload (d, a, off)
  | 20 -> let s = i () in let a = i () in let off = i () in I.Fstore (s, a, off)
  | 21 -> let cc = cond_of_code (i ()) in let r = i () in let t = i () in I.Br (cc, r, I.Abs t)
  | 22 -> I.Jmp (I.Abs (i ()))
  | 23 -> I.Jr (i ())
  | 24 -> I.Call (I.Abs (i ()))
  | 25 -> I.Halt
  | n -> failwith (Printf.sprintf "Encoding: bad opcode %d" n)

let to_bytes (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  put_string buf p.Program.name;
  put_int buf (Array.length p.Program.code);
  put_int buf (List.length p.Program.data);
  put_int buf p.Program.data_bytes;
  Array.iter (put_instr buf) p.Program.code;
  List.iter
    (fun (addr, v) ->
      put_int buf addr;
      put_varint buf v)
    p.Program.data;
  Buffer.to_bytes buf

let of_bytes bytes =
  let c = { data = bytes; pos = 0 } in
  let m = Bytes.sub_string bytes 0 (String.length magic + 1) in
  if m <> magic ^ "\n" then failwith "Encoding: bad magic";
  c.pos <- String.length magic + 1;
  let name = get_string c in
  let n_code = get_int c in
  let n_data = get_int c in
  let data_bytes = get_int c in
  if n_code < 0 || n_code > 10_000_000 then failwith "Encoding: bad code length";
  let code = Array.init n_code (fun _ -> get_instr c) in
  let data =
    List.init n_data (fun _ ->
        let addr = get_int c in
        let v = get_varint c in
        (addr, v))
  in
  Program.v ~name ~code ~data ~data_bytes

let write oc p = output_bytes oc (to_bytes p)

let read ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  of_bytes (Buffer.to_bytes buf)
