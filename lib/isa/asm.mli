(** Two-pass assembler: resolves symbolic labels to instruction indices.

    Code generators emit a list of {!item}s; [assemble] collects label
    definitions in a first pass and rewrites every [Label] target to the
    corresponding [Abs] index in a second pass. *)

type item =
  | Label of string  (** defines a label at the next instruction *)
  | Ins of Instr.t

val assemble :
  name:string -> ?data:(int * int64) list -> ?data_bytes:int -> item list -> Program.t
(** [assemble ~name items] resolves labels and builds a validated program.
    [data] and [data_bytes] default to an empty segment.  Raises
    [Invalid_argument] on duplicate or undefined labels. *)
