type t = int

let count = 32
let zero = 0
let ret = 1
let arg0 = 2
let max_args = 6
let ra = 26
let sp = 29
let id_of_int r = r
let id_of_fp r = 32 + r
let pp ppf r = Format.fprintf ppf "r%d" r
let pp_fp ppf r = Format.fprintf ppf "f%d" r
