(** Register file layout of the SRISC ISA.

    SRISC has 32 integer registers [r0]–[r31] and 32 floating-point
    registers [f0]–[f31].  [r0] is hardwired to zero.  For dependency
    profiling both files share one identifier space: integer register [i]
    is id [i], floating-point register [i] is id [32 + i]. *)

type t = int
(** A register number within its file, [0..31]. *)

val count : int
(** Registers per file (32). *)

val zero : t
(** The hardwired-zero integer register, [r0]. *)

val ret : t
(** Integer return-value register ([r1]); also [f1] for floats. *)

val arg0 : t
(** First argument register ([r2]/[f2]); arguments use consecutive
    registers. *)

val max_args : int
(** Number of argument registers (6: [r2]–[r7] / [f2]–[f7]). *)

val ra : t
(** Link register written by [Call] ([r26]). *)

val sp : t
(** Stack pointer ([r29]). *)

val id_of_int : t -> int
(** Shared-id encoding of an integer register. *)

val id_of_fp : t -> int
(** Shared-id encoding of a floating-point register. *)

val pp : Format.formatter -> t -> unit
(** Prints as [r<n>]. *)

val pp_fp : Format.formatter -> t -> unit
(** Prints as [f<n>]. *)
