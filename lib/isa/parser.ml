module I = Instr

exception Error of string

let error line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

(* --- tokenising one line --- *)

let strip_comment line =
  let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  cut ';' (cut '#' line)

let is_space c = c = ' ' || c = '\t' || c = ','

let tokens line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space line.[!i] do incr i done;
    if !i < n then begin
      let start = !i in
      (* parenthesised operands split: "0(r3)" -> "0" "(" "r3" ")" *)
      while !i < n && (not (is_space line.[!i])) && line.[!i] <> '(' && line.[!i] <> ')' do
        incr i
      done;
      if !i > start then out := String.sub line start (!i - start) :: !out;
      if !i < n && (line.[!i] = '(' || line.[!i] = ')') then begin
        out := String.make 1 line.[!i] :: !out;
        incr i
      end
    end
  done;
  List.rev !out

(* --- operand parsing --- *)

let int_reg lineno tok =
  let bad () = error lineno "expected an integer register, got %S" tok in
  if String.length tok < 2 || tok.[0] <> 'r' then bad ();
  match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
  | Some n when n >= 0 && n < Reg.count -> n
  | Some _ | None -> bad ()

let fp_reg lineno tok =
  let bad () = error lineno "expected a float register, got %S" tok in
  if String.length tok < 2 || tok.[0] <> 'f' then bad ();
  match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
  | Some n when n >= 0 && n < Reg.count -> n
  | Some _ | None -> bad ()

let imm lineno tok =
  match int_of_string_opt tok with
  | Some n -> n
  | None -> error lineno "expected an integer immediate, got %S" tok

let imm64 lineno tok =
  match Int64.of_string_opt tok with
  | Some n -> n
  | None -> error lineno "expected a 64-bit immediate, got %S" tok

let fimm lineno tok =
  match float_of_string_opt tok with
  | Some f -> f
  | None -> error lineno "expected a float immediate, got %S" tok

let target lineno tok =
  if String.length tok > 1 && tok.[0] = '@' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some n -> I.Abs n
    | None -> error lineno "bad absolute target %S" tok
  else I.Label tok

(* --- per-mnemonic parsing --- *)

let alu_ops =
  [
    ("add", I.Add); ("sub", I.Sub); ("and", I.And); ("or", I.Or); ("xor", I.Xor);
    ("sll", I.Sll); ("srl", I.Srl); ("sra", I.Sra); ("cmpeq", I.Cmp_eq);
    ("cmplt", I.Cmp_lt); ("cmple", I.Cmp_le);
  ]

let conds =
  [
    ("beqz", I.Eq_z); ("bnez", I.Ne_z); ("bltz", I.Lt_z); ("bgez", I.Ge_z);
    ("bgtz", I.Gt_z); ("blez", I.Le_z);
  ]

let parse_mem lineno ~fp rest =
  (* rd, off ( ra ) *)
  match rest with
  | [ rd; off; "("; ra; ")" ] ->
    let r = if fp then fp_reg lineno rd else int_reg lineno rd in
    (r, int_reg lineno ra, imm lineno off)
  | _ -> error lineno "expected REG, OFF(REG)"

let parse_instr lineno mnemonic rest =
  let ireg3 mk =
    match rest with
    | [ d; a; b ] -> mk (int_reg lineno d) (int_reg lineno a) (int_reg lineno b)
    | _ -> error lineno "%s expects three integer registers" mnemonic
  in
  let freg3 mk =
    match rest with
    | [ d; a; b ] -> mk (fp_reg lineno d) (fp_reg lineno a) (fp_reg lineno b)
    | _ -> error lineno "%s expects three float registers" mnemonic
  in
  match mnemonic with
  | m when List.mem_assoc m alu_ops ->
    let op = List.assoc m alu_ops in
    ireg3 (fun d a b -> I.Alu (op, d, a, b))
  | m when String.length m > 1
           && List.mem_assoc (String.sub m 0 (String.length m - 1)) alu_ops
           && m.[String.length m - 1] = 'i' -> (
    let op = List.assoc (String.sub m 0 (String.length m - 1)) alu_ops in
    match rest with
    | [ d; a; v ] -> I.Alui (op, int_reg lineno d, int_reg lineno a, imm lineno v)
    | _ -> error lineno "%s expects rd, ra, imm" mnemonic)
  | "li" -> (
    match rest with
    | [ d; v ] -> I.Li (int_reg lineno d, imm64 lineno v)
    | _ -> error lineno "li expects rd, imm")
  | "mul" -> ireg3 (fun d a b -> I.Mul (d, a, b))
  | "div" -> ireg3 (fun d a b -> I.Div (d, a, b))
  | "rem" -> ireg3 (fun d a b -> I.Rem (d, a, b))
  | "fadd" -> freg3 (fun d a b -> I.Falu (I.Fadd, d, a, b))
  | "fsub" -> freg3 (fun d a b -> I.Falu (I.Fsub, d, a, b))
  | "fmul" -> freg3 (fun d a b -> I.Fmul (d, a, b))
  | "fdiv" -> freg3 (fun d a b -> I.Fdiv (d, a, b))
  | "fli" -> (
    match rest with
    | [ d; v ] -> I.Fli (fp_reg lineno d, fimm lineno v)
    | _ -> error lineno "fli expects fd, imm")
  | "fmov" -> (
    match rest with
    | [ d; a ] -> I.Fmov (fp_reg lineno d, fp_reg lineno a)
    | _ -> error lineno "fmov expects fd, fa")
  | "fcmpeq" | "fcmplt" | "fcmple" -> (
    let op =
      match mnemonic with
      | "fcmpeq" -> I.Fcmp_eq
      | "fcmplt" -> I.Fcmp_lt
      | _ -> I.Fcmp_le
    in
    match rest with
    | [ d; a; b ] -> I.Fcmp (op, int_reg lineno d, fp_reg lineno a, fp_reg lineno b)
    | _ -> error lineno "%s expects rd, fa, fb" mnemonic)
  | "itof" -> (
    match rest with
    | [ d; a ] -> I.Itof (fp_reg lineno d, int_reg lineno a)
    | _ -> error lineno "itof expects fd, ra")
  | "ftoi" -> (
    match rest with
    | [ d; a ] -> I.Ftoi (int_reg lineno d, fp_reg lineno a)
    | _ -> error lineno "ftoi expects rd, fa")
  | "ld" ->
    let d, a, off = parse_mem lineno ~fp:false rest in
    I.Load (d, a, off)
  | "st" ->
    let s, a, off = parse_mem lineno ~fp:false rest in
    I.Store (s, a, off)
  | "fld" ->
    let d, a, off = parse_mem lineno ~fp:true rest in
    I.Fload (d, a, off)
  | "fst" ->
    let s, a, off = parse_mem lineno ~fp:true rest in
    I.Fstore (s, a, off)
  | m when List.mem_assoc m conds -> (
    match rest with
    | [ r; t ] -> I.Br (List.assoc m conds, int_reg lineno r, target lineno t)
    | _ -> error lineno "%s expects reg, target" mnemonic)
  | "jmp" -> (
    match rest with
    | [ t ] -> I.Jmp (target lineno t)
    | _ -> error lineno "jmp expects a target")
  | "jr" -> (
    match rest with
    | [ r ] -> I.Jr (int_reg lineno r)
    | _ -> error lineno "jr expects a register")
  | "call" -> (
    match rest with
    | [ t ] -> I.Call (target lineno t)
    | _ -> error lineno "call expects a target")
  | "halt" -> if rest = [] then I.Halt else error lineno "halt takes no operands"
  | m -> error lineno "unknown mnemonic %S" m

(* --- whole translation units --- *)

let parse_string ?(name = "anonymous") text =
  let items = ref [] in
  let data = ref [] in
  let data_bytes = ref 0 in
  let prog_name = ref name in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then begin
        match tokens line with
        | [] -> ()
        | ".name" :: rest -> (
          match rest with
          | [ n ] -> prog_name := n
          | _ -> error lineno ".name expects one identifier")
        | ".data" :: rest -> (
          match rest with
          | [ addr; v ] -> data := (imm lineno addr, imm64 lineno v) :: !data
          | _ -> error lineno ".data expects ADDR VALUE")
        | ".data_bytes" :: rest -> (
          match rest with
          | [ n ] -> data_bytes := imm lineno n
          | _ -> error lineno ".data_bytes expects a size")
        | first :: rest when String.length first > 1
                             && first.[String.length first - 1] = ':'
                             && Option.is_some
                                  (int_of_string_opt
                                     (String.sub first 0 (String.length first - 1))) ->
          (* "NNN:" index prefix from Program.pp listings: ignored *)
          (match rest with
          | m :: operands -> items := Asm.Ins (parse_instr lineno m operands) :: !items
          | [] -> ())
        | [ tok ] when String.length tok > 1 && tok.[String.length tok - 1] = ':' ->
          items := Asm.Label (String.sub tok 0 (String.length tok - 1)) :: !items
        | first :: rest when String.length first > 0 && first.[String.length first - 1] = ':' ->
          (* label and instruction on one line *)
          items := Asm.Label (String.sub first 0 (String.length first - 1)) :: !items;
          (match rest with
          | m :: operands -> items := Asm.Ins (parse_instr lineno m operands) :: !items
          | [] -> ())
        | first :: rest -> items := Asm.Ins (parse_instr lineno first rest) :: !items
      end)
    lines;
  try
    Asm.assemble ~name:!prog_name ~data:(List.rev !data) ~data_bytes:!data_bytes
      (List.rev !items)
  with Invalid_argument msg -> raise (Error msg)

let parse_channel ?name ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  parse_string ?name (Buffer.contents buf)

let roundtrip_text (p : Program.t) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf ".name %s\n" p.Program.name;
  Printf.bprintf buf ".data_bytes %d\n" p.Program.data_bytes;
  List.iter (fun (addr, v) -> Printf.bprintf buf ".data %d %Ld\n" addr v) p.Program.data;
  Array.iteri
    (fun idx instr ->
      (* hex float literals keep Fli exact across the round trip *)
      let text =
        match instr with
        | I.Fli (d, v) -> Printf.sprintf "fli f%d, %h" d v
        | other -> Format.asprintf "%a" I.pp other
      in
      Printf.bprintf buf "%6d:  %s\n" idx text)
    p.Program.code;
  Buffer.contents buf
