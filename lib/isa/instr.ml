type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Cmp_eq
  | Cmp_lt
  | Cmp_le

type falu_op = Fadd | Fsub
type fcmp_op = Fcmp_eq | Fcmp_lt | Fcmp_le
type cond = Eq_z | Ne_z | Lt_z | Ge_z | Gt_z | Le_z
type target = Label of string | Abs of int

type t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t
  | Alui of alu_op * Reg.t * Reg.t * int
  | Li of Reg.t * int64
  | Mul of Reg.t * Reg.t * Reg.t
  | Div of Reg.t * Reg.t * Reg.t
  | Rem of Reg.t * Reg.t * Reg.t
  | Falu of falu_op * Reg.t * Reg.t * Reg.t
  | Fmul of Reg.t * Reg.t * Reg.t
  | Fdiv of Reg.t * Reg.t * Reg.t
  | Fli of Reg.t * float
  | Fmov of Reg.t * Reg.t
  | Fcmp of fcmp_op * Reg.t * Reg.t * Reg.t
  | Itof of Reg.t * Reg.t
  | Ftoi of Reg.t * Reg.t
  | Load of Reg.t * Reg.t * int
  | Store of Reg.t * Reg.t * int
  | Fload of Reg.t * Reg.t * int
  | Fstore of Reg.t * Reg.t * int
  | Br of cond * Reg.t * target
  | Jmp of target
  | Jr of Reg.t
  | Call of target
  | Halt

type iclass =
  | C_int_alu
  | C_int_mul
  | C_int_div
  | C_fp_alu
  | C_fp_mul
  | C_fp_div
  | C_load
  | C_store
  | C_branch
  | C_jump
  | C_other

let classify = function
  | Alu _ | Alui _ | Li _ -> C_int_alu
  | Mul _ -> C_int_mul
  | Div _ | Rem _ -> C_int_div
  | Falu _ | Fli _ | Fmov _ | Fcmp _ | Itof _ | Ftoi _ -> C_fp_alu
  | Fmul _ -> C_fp_mul
  | Fdiv _ -> C_fp_div
  | Load _ | Fload _ -> C_load
  | Store _ | Fstore _ -> C_store
  | Br _ -> C_branch
  | Jmp _ | Jr _ | Call _ -> C_jump
  | Halt -> C_other

let class_count = 11

let class_index = function
  | C_int_alu -> 0
  | C_int_mul -> 1
  | C_int_div -> 2
  | C_fp_alu -> 3
  | C_fp_mul -> 4
  | C_fp_div -> 5
  | C_load -> 6
  | C_store -> 7
  | C_branch -> 8
  | C_jump -> 9
  | C_other -> 10

let class_of_index = function
  | 0 -> C_int_alu
  | 1 -> C_int_mul
  | 2 -> C_int_div
  | 3 -> C_fp_alu
  | 4 -> C_fp_mul
  | 5 -> C_fp_div
  | 6 -> C_load
  | 7 -> C_store
  | 8 -> C_branch
  | 9 -> C_jump
  | 10 -> C_other
  | n -> invalid_arg (Printf.sprintf "Instr.class_of_index: %d" n)

let class_name = function
  | C_int_alu -> "int_alu"
  | C_int_mul -> "int_mul"
  | C_int_div -> "int_div"
  | C_fp_alu -> "fp_alu"
  | C_fp_mul -> "fp_mul"
  | C_fp_div -> "fp_div"
  | C_load -> "load"
  | C_store -> "store"
  | C_branch -> "branch"
  | C_jump -> "jump"
  | C_other -> "other"

let is_control = function
  | Br _ | Jmp _ | Jr _ | Call _ | Halt -> true
  | Alu _ | Alui _ | Li _ | Mul _ | Div _ | Rem _ | Falu _ | Fmul _ | Fdiv _
  | Fli _ | Fmov _ | Fcmp _ | Itof _ | Ftoi _ | Load _ | Store _ | Fload _
  | Fstore _ ->
    false

let is_mem = function
  | Load _ | Store _ | Fload _ | Fstore _ -> true
  | Alu _ | Alui _ | Li _ | Mul _ | Div _ | Rem _ | Falu _ | Fmul _ | Fdiv _
  | Fli _ | Fmov _ | Fcmp _ | Itof _ | Ftoi _ | Br _ | Jmp _ | Jr _ | Call _
  | Halt ->
    false

let ir = Reg.id_of_int
let fr = Reg.id_of_fp

let reads = function
  | Alu (_, _, a, b) | Mul (_, a, b) | Div (_, a, b) | Rem (_, a, b) ->
    [ ir a; ir b ]
  | Alui (_, _, a, _) -> [ ir a ]
  | Li _ | Fli _ | Jmp _ | Call _ | Halt -> []
  | Falu (_, _, a, b) | Fmul (_, a, b) | Fdiv (_, a, b) | Fcmp (_, _, a, b) ->
    [ fr a; fr b ]
  | Fmov (_, a) -> [ fr a ]
  | Itof (_, a) -> [ ir a ]
  | Ftoi (_, a) -> [ fr a ]
  | Load (_, a, _) -> [ ir a ]
  | Store (s, a, _) -> [ ir s; ir a ]
  | Fload (_, a, _) -> [ ir a ]
  | Fstore (s, a, _) -> [ fr s; ir a ]
  | Br (_, r, _) -> [ ir r ]
  | Jr r -> [ ir r ]

let writes = function
  | Alu (_, d, _, _) | Alui (_, d, _, _) | Li (d, _) | Mul (d, _, _)
  | Div (d, _, _) | Rem (d, _, _) | Fcmp (_, d, _, _) | Ftoi (d, _)
  | Load (d, _, _) ->
    Some (ir d)
  | Falu (_, d, _, _) | Fmul (d, _, _) | Fdiv (d, _, _) | Fli (d, _)
  | Fmov (d, _) | Itof (d, _) | Fload (d, _, _) ->
    Some (fr d)
  | Call _ -> Some (ir Reg.ra)
  | Store _ | Fstore _ | Br _ | Jmp _ | Jr _ | Halt -> None

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Cmp_eq -> "cmpeq"
  | Cmp_lt -> "cmplt"
  | Cmp_le -> "cmple"

let falu_name = function Fadd -> "fadd" | Fsub -> "fsub"

let fcmp_name = function
  | Fcmp_eq -> "fcmpeq"
  | Fcmp_lt -> "fcmplt"
  | Fcmp_le -> "fcmple"

let cond_name = function
  | Eq_z -> "beqz"
  | Ne_z -> "bnez"
  | Lt_z -> "bltz"
  | Ge_z -> "bgez"
  | Gt_z -> "bgtz"
  | Le_z -> "blez"

let pp_target ppf = function
  | Label l -> Format.fprintf ppf "%s" l
  | Abs i -> Format.fprintf ppf "@%d" i

let pp ppf = function
  | Alu (op, d, a, b) ->
    Format.fprintf ppf "%s %a, %a, %a" (alu_name op) Reg.pp d Reg.pp a Reg.pp b
  | Alui (op, d, a, imm) ->
    Format.fprintf ppf "%si %a, %a, %d" (alu_name op) Reg.pp d Reg.pp a imm
  | Li (d, v) -> Format.fprintf ppf "li %a, %Ld" Reg.pp d v
  | Mul (d, a, b) -> Format.fprintf ppf "mul %a, %a, %a" Reg.pp d Reg.pp a Reg.pp b
  | Div (d, a, b) -> Format.fprintf ppf "div %a, %a, %a" Reg.pp d Reg.pp a Reg.pp b
  | Rem (d, a, b) -> Format.fprintf ppf "rem %a, %a, %a" Reg.pp d Reg.pp a Reg.pp b
  | Falu (op, d, a, b) ->
    Format.fprintf ppf "%s %a, %a, %a" (falu_name op) Reg.pp_fp d Reg.pp_fp a
      Reg.pp_fp b
  | Fmul (d, a, b) ->
    Format.fprintf ppf "fmul %a, %a, %a" Reg.pp_fp d Reg.pp_fp a Reg.pp_fp b
  | Fdiv (d, a, b) ->
    Format.fprintf ppf "fdiv %a, %a, %a" Reg.pp_fp d Reg.pp_fp a Reg.pp_fp b
  | Fli (d, v) -> Format.fprintf ppf "fli %a, %g" Reg.pp_fp d v
  | Fmov (d, a) -> Format.fprintf ppf "fmov %a, %a" Reg.pp_fp d Reg.pp_fp a
  | Fcmp (op, d, a, b) ->
    Format.fprintf ppf "%s %a, %a, %a" (fcmp_name op) Reg.pp d Reg.pp_fp a
      Reg.pp_fp b
  | Itof (d, a) -> Format.fprintf ppf "itof %a, %a" Reg.pp_fp d Reg.pp a
  | Ftoi (d, a) -> Format.fprintf ppf "ftoi %a, %a" Reg.pp d Reg.pp_fp a
  | Load (d, a, off) -> Format.fprintf ppf "ld %a, %d(%a)" Reg.pp d off Reg.pp a
  | Store (s, a, off) -> Format.fprintf ppf "st %a, %d(%a)" Reg.pp s off Reg.pp a
  | Fload (d, a, off) ->
    Format.fprintf ppf "fld %a, %d(%a)" Reg.pp_fp d off Reg.pp a
  | Fstore (s, a, off) ->
    Format.fprintf ppf "fst %a, %d(%a)" Reg.pp_fp s off Reg.pp a
  | Br (c, r, t) ->
    Format.fprintf ppf "%s %a, %a" (cond_name c) Reg.pp r pp_target t
  | Jmp t -> Format.fprintf ppf "jmp %a" pp_target t
  | Jr r -> Format.fprintf ppf "jr %a" Reg.pp r
  | Call t -> Format.fprintf ppf "call %a" pp_target t
  | Halt -> Format.fprintf ppf "halt"
