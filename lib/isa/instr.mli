(** The SRISC instruction set.

    SRISC is a small load/store RISC ISA standing in for the Alpha ISA the
    paper targets.  It carries exactly the instruction classes the
    performance-cloning profile distinguishes: integer ALU, integer
    multiply, integer divide, FP ALU, FP multiply, FP divide, load, store
    and branch.

    Memory is byte-addressed; all loads and stores move 64-bit words and
    must be 8-byte aligned.  Instructions occupy 4 bytes of instruction
    address space each ([pc] is an instruction index; the byte address of
    instruction [i] is [4 * i], which is what the I-cache sees). *)

type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Sll  (** shift left logical *)
  | Srl  (** shift right logical *)
  | Sra  (** shift right arithmetic *)
  | Cmp_eq  (** rd <- (a = b) as 0/1 *)
  | Cmp_lt  (** signed less-than, 0/1 *)
  | Cmp_le  (** signed less-or-equal, 0/1 *)

type falu_op = Fadd | Fsub

type fcmp_op = Fcmp_eq | Fcmp_lt | Fcmp_le

type cond =
  | Eq_z  (** branch if register = 0 *)
  | Ne_z  (** branch if register <> 0 *)
  | Lt_z  (** branch if register < 0 *)
  | Ge_z  (** branch if register >= 0 *)
  | Gt_z  (** branch if register > 0 *)
  | Le_z  (** branch if register <= 0 *)

type target =
  | Label of string  (** unresolved, only before assembly *)
  | Abs of int  (** resolved instruction index *)

type t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t  (** [Alu (op, rd, ra, rb)] *)
  | Alui of alu_op * Reg.t * Reg.t * int  (** [Alui (op, rd, ra, imm)] *)
  | Li of Reg.t * int64  (** load immediate *)
  | Mul of Reg.t * Reg.t * Reg.t
  | Div of Reg.t * Reg.t * Reg.t  (** signed quotient; division by zero yields 0 *)
  | Rem of Reg.t * Reg.t * Reg.t  (** signed remainder; modulo zero yields 0 *)
  | Falu of falu_op * Reg.t * Reg.t * Reg.t  (** [Falu (op, fd, fa, fb)] *)
  | Fmul of Reg.t * Reg.t * Reg.t
  | Fdiv of Reg.t * Reg.t * Reg.t  (** division by zero yields 0.0 *)
  | Fli of Reg.t * float
  | Fmov of Reg.t * Reg.t  (** [Fmov (fd, fa)]: exact bit-preserving move *)
  | Fcmp of fcmp_op * Reg.t * Reg.t * Reg.t  (** [Fcmp (op, rd, fa, fb)]: integer 0/1 result *)
  | Itof of Reg.t * Reg.t  (** [Itof (fd, ra)] *)
  | Ftoi of Reg.t * Reg.t  (** [Ftoi (rd, fa)]: truncation *)
  | Load of Reg.t * Reg.t * int  (** [Load (rd, ra, off)]: rd <- mem\[ra + off\] *)
  | Store of Reg.t * Reg.t * int  (** [Store (rs, ra, off)]: mem\[ra + off\] <- rs *)
  | Fload of Reg.t * Reg.t * int  (** [Fload (fd, ra, off)] *)
  | Fstore of Reg.t * Reg.t * int  (** [Fstore (fs, ra, off)] *)
  | Br of cond * Reg.t * target  (** conditional branch *)
  | Jmp of target  (** unconditional jump *)
  | Jr of Reg.t  (** jump to address held in register (returns) *)
  | Call of target  (** r26 <- pc + 1; jump *)
  | Halt

(** Instruction classes as profiled by the paper's instruction mix. *)
type iclass =
  | C_int_alu
  | C_int_mul
  | C_int_div
  | C_fp_alu
  | C_fp_mul
  | C_fp_div
  | C_load
  | C_store
  | C_branch  (** conditional branches *)
  | C_jump  (** unconditional control: Jmp, Jr, Call *)
  | C_other  (** Halt *)

val classify : t -> iclass

val class_count : int
(** Number of distinct classes (for class-indexed arrays). *)

val class_index : iclass -> int
(** Stable dense index in [0, class_count). *)

val class_of_index : int -> iclass
(** Inverse of [class_index]; raises [Invalid_argument] out of range. *)

val class_name : iclass -> string

val is_control : t -> bool
(** True for [Br], [Jmp], [Jr], [Call] and [Halt] — everything that ends a
    dynamic basic block. *)

val is_mem : t -> bool
(** True for loads and stores. *)

val reads : t -> int list
(** Shared register ids read by the instruction ([Reg.id_of_int] /
    [Reg.id_of_fp] space).  Reads of [r0] are included (it is a real
    operand, always ready). *)

val writes : t -> int option
(** Shared register id written, if any.  A write to [r0] is reported (the
    simulator discards the value but dependence tracking ignores r0). *)

val pp : Format.formatter -> t -> unit
(** Assembly-like rendering, e.g. [add r3, r1, r2]. *)
