type item = Label of string | Ins of Instr.t

let assemble ~name ?(data = []) ?(data_bytes = 0) items =
  let labels = Hashtbl.create 64 in
  let count =
    List.fold_left
      (fun idx item ->
        match item with
        | Label l ->
          if Hashtbl.mem labels l then
            invalid_arg (Printf.sprintf "Asm.assemble: duplicate label %S" l);
          Hashtbl.add labels l idx;
          idx
        | Ins _ -> idx + 1)
      0 items
  in
  let resolve = function
    | Instr.Abs _ as t -> t
    | Instr.Label l -> (
      match Hashtbl.find_opt labels l with
      | Some idx -> Instr.Abs idx
      | None -> invalid_arg (Printf.sprintf "Asm.assemble: undefined label %S" l))
  in
  let code = Array.make count Instr.Halt in
  let idx = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | Ins instr ->
        let resolved =
          match instr with
          | Instr.Br (c, r, t) -> Instr.Br (c, r, resolve t)
          | Instr.Jmp t -> Instr.Jmp (resolve t)
          | Instr.Call t -> Instr.Call (resolve t)
          | other -> other
        in
        code.(!idx) <- resolved;
        incr idx)
    items;
  Program.v ~name ~code ~data ~data_bytes
