(** Binary encoding of SRISC programs.

    A compact, versioned serialisation so clones can be shipped as
    binaries (the dissemination artefact next to the C rendering) and
    reloaded by the simulators or the {!Parser}-based tooling.

    Format: the magic line [SRISC1\n], a header (name, code length, data
    length, segment size), then one record per instruction and per initial
    data word.  Integers use a signed LEB128 variable-length encoding, so
    the unbounded immediates of the simulator ISA survive the round
    trip. *)

val write : out_channel -> Program.t -> unit
(** Serialise a program. *)

val read : in_channel -> Program.t
(** Deserialise; raises [Failure] on malformed input or an unsupported
    version. *)

val to_bytes : Program.t -> bytes
(** In-memory serialisation (used by tests for round-trip checks). *)

val of_bytes : bytes -> Program.t
(** Inverse of [to_bytes]; raises [Failure] on malformed input. *)
