module I = Pc_isa.Instr
module Cache = Pc_caches.Cache
module Hierarchy = Pc_caches.Hierarchy

type t = {
  name : string;
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  commit_width : int;
  rob_size : int;
  lsq_size : int;
  in_order : bool;
  int_alu_units : int;
  int_mul_units : int;
  fp_alu_units : int;
  fp_mul_units : int;
  mem_ports : int;
  frontend_depth : int;
  mispredict_penalty : int;
  bpred : Pc_branch.Predictor.config;
  icache : Hierarchy.config;
  dcache : Hierarchy.config;
  latencies : int array;
}

(* Execution latencies per class, SimpleScalar-like.  The load entry is
   the extra pipeline latency on top of the cache access time. *)
let default_latencies =
  let a = Array.make I.class_count 1 in
  let set c v = a.(I.class_index c) <- v in
  set I.C_int_alu 1;
  set I.C_int_mul 3;
  set I.C_int_div 12;
  set I.C_fp_alu 2;
  set I.C_fp_mul 4;
  set I.C_fp_div 12;
  set I.C_load 0 (* cache access latency dominates *);
  set I.C_store 1;
  set I.C_branch 1;
  set I.C_jump 1;
  set I.C_other 1;
  a

let l2_config = Cache.config ~size_bytes:(64 * 1024) ~assoc:4 ~line_bytes:64 ()

let l1_16k = Cache.config ~size_bytes:(16 * 1024) ~assoc:2 ~line_bytes:32 ()

let hierarchy l1 =
  {
    Hierarchy.l1;
    l1_latency = 1;
    l2 = Some l2_config;
    l2_latency = 6;
    mem_latency = 40;
  }

let base =
  {
    name = "base";
    fetch_width = 1;
    decode_width = 1;
    issue_width = 1;
    commit_width = 2;
    rob_size = 16;
    lsq_size = 8;
    in_order = false;
    int_alu_units = 2;
    int_mul_units = 1;
    fp_alu_units = 1;
    fp_mul_units = 1;
    mem_ports = 2;
    frontend_depth = 3;
    mispredict_penalty = 3;
    bpred = Pc_branch.Predictor.base_gap;
    icache = hierarchy l1_16k;
    dcache = hierarchy l1_16k;
    latencies = default_latencies;
  }

let with_name name t = { t with name }

let with_rob_lsq ~rob ~lsq t =
  { t with rob_size = rob; lsq_size = lsq; name = Printf.sprintf "%s+rob%d" t.name rob }

let with_l1d_config l1 t =
  {
    t with
    dcache = { t.dcache with Hierarchy.l1 };
    name = Printf.sprintf "%s+d$%s" t.name (Cache.config_name l1);
  }

let with_l1d_size size t =
  let l1 = t.dcache.Hierarchy.l1 in
  with_l1d_config
    (Cache.config ~size_bytes:size ~assoc:l1.Cache.assoc
       ~line_bytes:l1.Cache.line_bytes ())
    t

let with_widths w t =
  {
    t with
    fetch_width = w;
    decode_width = w;
    issue_width = w;
    commit_width = 2 * w;
    name = Printf.sprintf "%s+w%d" t.name w;
  }

let with_bpred bpred t =
  {
    t with
    bpred;
    name = Printf.sprintf "%s+bp:%s" t.name (Pc_branch.Predictor.config_name bpred);
  }

let with_in_order in_order t =
  { t with in_order; name = (if in_order then t.name ^ "+inorder" else t.name) }
