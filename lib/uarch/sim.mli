(** Trace-driven out-of-order timing model (the [sim-outorder] stand-in).

    The functional simulator supplies the retired instruction stream; this
    model schedules each instruction through fetch → dispatch → issue →
    complete → commit under the configured resources:

    - per-cycle fetch/decode(dispatch)/issue/commit width limits,
    - ROB occupancy (dispatch waits for the entry of the instruction
      [rob_size] earlier to commit) and LSQ occupancy for memory ops,
    - register data dependencies (an instruction issues once every source
      register's producer has completed),
    - functional-unit contention (integer ALUs, integer multiplier/
      divider, FP ALU, FP multiplier/divider, memory ports); divides
      occupy their unit un-pipelined,
    - I-cache misses delay subsequent fetch; loads see the D-cache
      hierarchy latency at issue; stores retire through the LSQ without
      stalling completion (store-buffer semantics),
    - conditional-branch mispredictions stall fetch until the branch
      completes plus a redirect penalty; in-order mode forces program-
      order issue.

    This dependence-driven scheduling is a standard trace-driven
    approximation of an out-of-order core; it reacts to exactly the
    parameters the paper's experiments vary. *)

type result = {
  config_name : string;
  instrs : int;
  cycles : int;
  ipc : float;
  class_counts : int array;  (** dynamic instructions per class index *)
  branches : int;
  mispredictions : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
  mem_accesses : int;  (** accesses reaching main memory, both sides *)
  rob_high_water : int;  (** peak ROB occupancy observed at dispatch *)
  lsq_high_water : int;  (** peak LSQ occupancy observed at dispatch *)
  fetch_stall_icache_cycles : int;
      (** fetch-ready pushback attributed to I-cache miss latency *)
  fetch_stall_mispredict_cycles : int;
      (** fetch-ready pushback attributed to mispredict redirects *)
  measured_instrs : int;
      (** instructions inside the measurement window (= [instrs] when no
          [measure_from] was given) *)
  measured_cycles : int;
      (** commit cycles attributable to the measurement window (= [cycles]
          when no [measure_from] was given); sampled simulation divides
          these two for warmup-free CPI *)
}

type state
(** The full scheduling state of one simulated core.  The incremental
    API below ([create] / [feed] / [finish]) is what [run] and
    [run_events] are built from; it exists so other drivers — notably
    the multi-tenant arbiter in [Pc_scenario] — can interleave several
    cores' retired streams and observe each core's commit clock between
    feed bursts. *)

val create :
  ?measure_from:int ->
  ?icache:Pc_caches.Hierarchy.t ->
  ?dcache:Pc_caches.Hierarchy.t ->
  Config.t ->
  state
(** Fresh scheduling state for [Config.t].  [icache] / [dcache]
    override the hierarchies built from the config — [Pc_scenario]
    passes hierarchies made with {!Pc_caches.Hierarchy.create_shared}
    so several cores' L1s drain into shared L2 instances.  The caller
    is responsible for any override matching the config's latencies
    (the scheduling code reads latencies from the hierarchy it is
    given).  [measure_from] is as in {!run_events}. *)

val feed : state -> Pc_funcsim.Machine.event -> unit
(** Schedule one retired instruction.  The event record may be reused
    between calls. *)

val fed_instrs : state -> int
(** Instructions fed so far. *)

val committed_cycle : state -> int
(** Commit cycle of the most recently fed instruction (monotone; [0]
    before any instruction).  Sampled multi-tenant scenarios read this
    at interval boundaries to price each tenant's windows. *)

val finish : ?instrs:int -> state -> result
(** Build the {!result} and publish the [uarch.*] metrics (see
    {!run_events}).  [instrs] defaults to {!fed_instrs}; [run] passes
    the functional simulator's count explicitly.  Call at most once. *)

val run : ?max_instrs:int -> Config.t -> Pc_isa.Program.t -> result
(** Execute the program functionally while scheduling every retired
    instruction through the timing model.  [max_instrs] (default 10
    million) bounds the simulated stream. *)

val run_events :
  ?measure_from:int -> Config.t -> ((Pc_funcsim.Machine.event -> unit) -> int) -> result
(** Schedule an arbitrary retired-instruction stream: [run_events cfg
    feed] calls [feed on_event]; [feed] must invoke [on_event] once per
    instruction (the event record may be reused between calls) and return
    the instruction count.  This is how statistical simulation drives the
    same timing model with a synthetic stream.

    [measure_from] (default 0) marks the first instruction of the
    measurement window: everything before it still executes — warming
    caches, predictor and in-flight state — but [measured_instrs] /
    [measured_cycles] report only the window, via the commit-cycle
    boundary at instruction [measure_from].  Whole-run fields
    ([instrs], [cycles], [ipc], cache and branch counters) are
    unaffected.

    Both entry points publish lifetime aggregates into the global
    {!Pc_obs.Metrics} registry at the end of each run: [uarch.instrs],
    [uarch.cycles], the [uarch.fetch_stall.*] counters, the
    [uarch.rob.high_water] / [uarch.lsq.high_water] gauges (max over
    runs), and the [uarch.icache.*], [uarch.dcache.*] and [uarch.bpred.*]
    families. *)

val mispredict_rate : result -> float
val l1d_mpi : result -> float
(** L1-D misses per instruction. *)
