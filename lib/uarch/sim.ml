module I = Pc_isa.Instr
module Machine = Pc_funcsim.Machine
module Hierarchy = Pc_caches.Hierarchy
module Predictor = Pc_branch.Predictor

type result = {
  config_name : string;
  instrs : int;
  cycles : int;
  ipc : float;
  class_counts : int array;
  branches : int;
  mispredictions : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
  mem_accesses : int;
  rob_high_water : int;
  lsq_high_water : int;
  fetch_stall_icache_cycles : int;
  fetch_stall_mispredict_cycles : int;
  measured_instrs : int;
  measured_cycles : int;
}

(* In-order bandwidth tracker: at most [width] events per cycle, cycles
   taken in non-decreasing order. *)
module Slot = struct
  type t = { width : int; mutable cycle : int; mutable used : int }

  let create width = { width; cycle = -1; used = 0 }

  let take t earliest =
    if earliest > t.cycle then begin
      t.cycle <- earliest;
      t.used <- 1;
      earliest
    end
    else if t.used < t.width then begin
      t.used <- t.used + 1;
      t.cycle
    end
    else begin
      t.cycle <- t.cycle + 1;
      t.used <- 1;
      t.cycle
    end
end

(* Out-of-order bandwidth tracker: at most [width] events per cycle, any
   cycle order.  Backed by a tagged circular table; in-flight cycles span
   far less than the window. *)
module Cycle_table = struct
  let window = 1 lsl 15

  type t = { width : int; tags : int array; counts : int array }

  let create width = { width; tags = Array.make window (-1); counts = Array.make window 0 }

  let rec take t cycle =
    let idx = cycle land (window - 1) in
    if t.tags.(idx) <> cycle then begin
      t.tags.(idx) <- cycle;
      t.counts.(idx) <- 1;
      cycle
    end
    else if t.counts.(idx) < t.width then begin
      t.counts.(idx) <- t.counts.(idx) + 1;
      cycle
    end
    else take t (cycle + 1)
end

(* A pool of identical functional units.  Pipelined units accept a new
   operation every cycle ([occupancy] 1); divides occupy the unit for the
   whole latency. *)
module Fu_pool = struct
  type t = { free_at : int array }

  let create n = { free_at = Array.make (max n 1) 0 }

  let acquire t ~earliest ~occupancy =
    let best = ref 0 in
    for u = 1 to Array.length t.free_at - 1 do
      if t.free_at.(u) < t.free_at.(!best) then best := u
    done;
    let start = max earliest t.free_at.(!best) in
    t.free_at.(!best) <- start + occupancy;
    start
end

(* Occupancy of a commit-cycle ring buffer at dispatch cycle [d] of
   instruction [i]: older in-flight instructions are exactly those whose
   commit cycle exceeds [d], and commit cycles are non-decreasing in
   retire order, so they form a suffix of the window — binary search for
   its length, plus one for instruction [i] itself.  The ring holds the
   last [Array.length ring] commit cycles; anything older is guaranteed
   committed because dispatch waited for its slot. *)
let ring_occupancy ring i d =
  let len = Array.length ring in
  let k_max = min i len in
  if k_max = 0 || ring.((i - 1) mod len) <= d then 1
  else begin
    let lo = ref 1 and hi = ref k_max in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if ring.((i - mid) mod len) > d then lo := mid else hi := mid - 1
    done;
    !lo + 1
  end

let c_instrs = Pc_obs.Metrics.counter "uarch.instrs"
let c_cycles = Pc_obs.Metrics.counter "uarch.cycles"
let g_rob_hw = Pc_obs.Metrics.gauge "uarch.rob.high_water"
let g_lsq_hw = Pc_obs.Metrics.gauge "uarch.lsq.high_water"
let c_stall_icache = Pc_obs.Metrics.counter "uarch.fetch_stall.icache_cycles"
let c_stall_mispredict = Pc_obs.Metrics.counter "uarch.fetch_stall.mispredict_cycles"

let run_events ?(measure_from = 0) (cfg : Config.t) feed =
  let measure_from = max 0 measure_from in
  let icache = Hierarchy.create cfg.icache in
  let dcache = Hierarchy.create cfg.dcache in
  let bpred = Predictor.create cfg.bpred in
  let fetch_slot = Slot.create cfg.fetch_width in
  let dispatch_slot = Slot.create cfg.decode_width in
  let commit_slot = Slot.create cfg.commit_width in
  let issue_table = Cycle_table.create cfg.issue_width in
  let int_alu = Fu_pool.create cfg.int_alu_units in
  let int_mul = Fu_pool.create cfg.int_mul_units in
  let fp_alu = Fu_pool.create cfg.fp_alu_units in
  let fp_mul = Fu_pool.create cfg.fp_mul_units in
  let mem_port = Fu_pool.create cfg.mem_ports in
  (* Completion cycle of the last writer of each shared register id.
     r0 (id 0) stays 0: it is architecturally constant. *)
  let reg_ready = Array.make 64 0 in
  (* Ring buffers of commit cycles for ROB / LSQ occupancy. *)
  let rob = Array.make cfg.rob_size 0 in
  let lsq = Array.make (max cfg.lsq_size 1) 0 in
  let class_counts = Array.make I.class_count 0 in
  let icache_hit_latency = cfg.icache.Hierarchy.l1_latency in
  let index = ref 0 in
  let mem_index = ref 0 in
  let fetch_ready = ref 0 in
  let last_issue = ref 0 in
  let last_commit = ref 0 in
  let rob_hw = ref 0 in
  let lsq_hw = ref 0 in
  let stall_icache = ref 0 in
  let stall_mispredict = ref 0 in
  let i_lat = Array.get cfg.latencies in
  (* Commit cycle at the measurement-window boundary.  [last_commit] is
     monotone, so cycles spent strictly inside the window are the final
     commit cycle minus its value just before instruction [measure_from]
     is scheduled; the prefix acts as warmup (caches and predictor
     already primed) without polluting the measured CPI. *)
  let measure_start = ref 0 in
  let on_event (ev : Machine.event) =
    let i = !index in
    incr index;
    if i = measure_from then measure_start := !last_commit;
    let cls = ev.Machine.iclass in
    let ci = I.class_index cls in
    class_counts.(ci) <- class_counts.(ci) + 1;
    (* --- fetch --- *)
    let f0 = Slot.take fetch_slot !fetch_ready in
    let ilat = Hierarchy.access icache (4 * ev.Machine.pc) in
    if ilat > icache_hit_latency then
      stall_icache := !stall_icache + (ilat - icache_hit_latency);
    let fc = f0 + (ilat - icache_hit_latency) in
    if fc > !fetch_ready then fetch_ready := fc;
    (* --- dispatch --- *)
    let rob_free = rob.(i mod cfg.rob_size) in
    let is_mem = cls = I.C_load || cls = I.C_store in
    let lsq_free =
      if is_mem then lsq.(!mem_index mod Array.length lsq) else 0
    in
    let d = Slot.take dispatch_slot (max (fc + cfg.frontend_depth) (max rob_free lsq_free)) in
    let occ = ring_occupancy rob i d in
    if occ > !rob_hw then rob_hw := occ;
    if is_mem then begin
      let occ = ring_occupancy lsq !mem_index d in
      if occ > !lsq_hw then lsq_hw := occ
    end;
    (* --- register readiness --- *)
    let ready =
      List.fold_left (fun acc id -> max acc reg_ready.(id)) d ev.Machine.reads
    in
    let ready = if cfg.in_order then max ready !last_issue else ready in
    (* --- issue: bandwidth then functional unit --- *)
    let issue0 = Cycle_table.take issue_table ready in
    let issue =
      match cls with
      | I.C_int_alu | I.C_branch | I.C_jump | I.C_other ->
        Fu_pool.acquire int_alu ~earliest:issue0 ~occupancy:1
      | I.C_int_mul -> Fu_pool.acquire int_mul ~earliest:issue0 ~occupancy:1
      | I.C_int_div ->
        Fu_pool.acquire int_mul ~earliest:issue0 ~occupancy:(i_lat ci)
      | I.C_fp_alu -> Fu_pool.acquire fp_alu ~earliest:issue0 ~occupancy:1
      | I.C_fp_mul -> Fu_pool.acquire fp_mul ~earliest:issue0 ~occupancy:1
      | I.C_fp_div -> Fu_pool.acquire fp_mul ~earliest:issue0 ~occupancy:(i_lat ci)
      | I.C_load | I.C_store -> Fu_pool.acquire mem_port ~earliest:issue0 ~occupancy:1
    in
    if cfg.in_order && issue > !last_issue then last_issue := issue;
    (* --- complete --- *)
    let complete =
      match cls with
      | I.C_load -> issue + Hierarchy.access dcache ev.Machine.mem_addr + i_lat ci
      | I.C_store ->
        (* Update tag state and counters; the store buffer hides the
           latency from the pipeline. *)
        ignore (Hierarchy.access dcache ev.Machine.mem_addr);
        issue + i_lat ci
      | _ -> issue + i_lat ci
    in
    (* --- writeback: wake up dependents --- *)
    (match ev.Machine.writes with
    | -1 -> ()
    | 0 -> () (* r0 is constant *)
    | id -> reg_ready.(id) <- complete);
    (* --- branch resolution --- *)
    if ev.Machine.is_branch then begin
      let correct = Predictor.observe bpred ~pc:ev.Machine.pc ~taken:ev.Machine.taken in
      if not correct then begin
        let redirect = complete + cfg.mispredict_penalty in
        if redirect > !fetch_ready then begin
          stall_mispredict := !stall_mispredict + (redirect - !fetch_ready);
          fetch_ready := redirect
        end
      end
    end;
    (* --- commit --- *)
    let m = Slot.take commit_slot (max (complete + 1) !last_commit) in
    last_commit := m;
    rob.(i mod cfg.rob_size) <- m;
    if is_mem then begin
      lsq.(!mem_index mod Array.length lsq) <- m;
      incr mem_index
    end
  in
  let instrs = feed on_event in
  let cycles = max !last_commit 1 in
  let measured_instrs = max 0 (instrs - measure_from) in
  let measured_cycles =
    if measure_from = 0 then cycles
    else if measured_instrs = 0 then 0
    else max (!last_commit - !measure_start) 1
  in
  Pc_obs.Metrics.add c_instrs instrs;
  Pc_obs.Metrics.add c_cycles cycles;
  Pc_obs.Metrics.record_max g_rob_hw !rob_hw;
  Pc_obs.Metrics.record_max g_lsq_hw !lsq_hw;
  Pc_obs.Metrics.add c_stall_icache !stall_icache;
  Pc_obs.Metrics.add c_stall_mispredict !stall_mispredict;
  Hierarchy.publish_metrics icache ~prefix:"uarch.icache";
  Hierarchy.publish_metrics dcache ~prefix:"uarch.dcache";
  Predictor.publish_metrics bpred ~prefix:"uarch.bpred";
  {
    config_name = cfg.name;
    instrs;
    cycles;
    ipc = float_of_int instrs /. float_of_int cycles;
    class_counts;
    branches = Predictor.lookups bpred;
    mispredictions = Predictor.mispredictions bpred;
    l1i_accesses = Hierarchy.l1_accesses icache;
    l1i_misses = Hierarchy.l1_misses icache;
    l1d_accesses = Hierarchy.l1_accesses dcache;
    l1d_misses = Hierarchy.l1_misses dcache;
    l2_accesses = Hierarchy.l2_accesses icache + Hierarchy.l2_accesses dcache;
    l2_misses = Hierarchy.l2_misses icache + Hierarchy.l2_misses dcache;
    mem_accesses = Hierarchy.mem_accesses icache + Hierarchy.mem_accesses dcache;
    rob_high_water = !rob_hw;
    lsq_high_water = !lsq_hw;
    fetch_stall_icache_cycles = !stall_icache;
    fetch_stall_mispredict_cycles = !stall_mispredict;
    measured_instrs;
    measured_cycles;
  }

let run ?(max_instrs = 10_000_000) cfg program =
  run_events cfg (fun on_event ->
      let machine = Machine.load program in
      Machine.run ~max_instrs machine on_event)

let mispredict_rate r =
  if r.branches = 0 then 0.0
  else float_of_int r.mispredictions /. float_of_int r.branches

let l1d_mpi r =
  if r.instrs = 0 then 0.0 else float_of_int r.l1d_misses /. float_of_int r.instrs
