module I = Pc_isa.Instr
module Machine = Pc_funcsim.Machine
module Hierarchy = Pc_caches.Hierarchy
module Predictor = Pc_branch.Predictor

type result = {
  config_name : string;
  instrs : int;
  cycles : int;
  ipc : float;
  class_counts : int array;
  branches : int;
  mispredictions : int;
  l1i_accesses : int;
  l1i_misses : int;
  l1d_accesses : int;
  l1d_misses : int;
  l2_accesses : int;
  l2_misses : int;
  mem_accesses : int;
  rob_high_water : int;
  lsq_high_water : int;
  fetch_stall_icache_cycles : int;
  fetch_stall_mispredict_cycles : int;
  measured_instrs : int;
  measured_cycles : int;
}

(* In-order bandwidth tracker: at most [width] events per cycle, cycles
   taken in non-decreasing order. *)
module Slot = struct
  type t = { width : int; mutable cycle : int; mutable used : int }

  let create width = { width; cycle = -1; used = 0 }

  let take t earliest =
    if earliest > t.cycle then begin
      t.cycle <- earliest;
      t.used <- 1;
      earliest
    end
    else if t.used < t.width then begin
      t.used <- t.used + 1;
      t.cycle
    end
    else begin
      t.cycle <- t.cycle + 1;
      t.used <- 1;
      t.cycle
    end
end

(* Out-of-order bandwidth tracker: at most [width] events per cycle, any
   cycle order.  Backed by a tagged circular table; in-flight cycles span
   far less than the window. *)
module Cycle_table = struct
  let window = 1 lsl 15

  type t = { width : int; tags : int array; counts : int array }

  let create width = { width; tags = Array.make window (-1); counts = Array.make window 0 }

  let rec take t cycle =
    let idx = cycle land (window - 1) in
    if t.tags.(idx) <> cycle then begin
      t.tags.(idx) <- cycle;
      t.counts.(idx) <- 1;
      cycle
    end
    else if t.counts.(idx) < t.width then begin
      t.counts.(idx) <- t.counts.(idx) + 1;
      cycle
    end
    else take t (cycle + 1)
end

(* A pool of identical functional units.  Pipelined units accept a new
   operation every cycle ([occupancy] 1); divides occupy the unit for the
   whole latency. *)
module Fu_pool = struct
  type t = { free_at : int array }

  let create n = { free_at = Array.make (max n 1) 0 }

  let acquire t ~earliest ~occupancy =
    let best = ref 0 in
    for u = 1 to Array.length t.free_at - 1 do
      if t.free_at.(u) < t.free_at.(!best) then best := u
    done;
    let start = max earliest t.free_at.(!best) in
    t.free_at.(!best) <- start + occupancy;
    start
end

(* Occupancy of a commit-cycle ring buffer at dispatch cycle [d] of
   instruction [i]: older in-flight instructions are exactly those whose
   commit cycle exceeds [d], and commit cycles are non-decreasing in
   retire order, so they form a suffix of the window — binary search for
   its length, plus one for instruction [i] itself.  The ring holds the
   last [Array.length ring] commit cycles; anything older is guaranteed
   committed because dispatch waited for its slot. *)
let ring_occupancy ring i d =
  let len = Array.length ring in
  let k_max = min i len in
  if k_max = 0 || ring.((i - 1) mod len) <= d then 1
  else begin
    let lo = ref 1 and hi = ref k_max in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if ring.((i - mid) mod len) > d then lo := mid else hi := mid - 1
    done;
    !lo + 1
  end

let c_instrs = Pc_obs.Metrics.counter "uarch.instrs"
let c_cycles = Pc_obs.Metrics.counter "uarch.cycles"
let g_rob_hw = Pc_obs.Metrics.gauge "uarch.rob.high_water"
let g_lsq_hw = Pc_obs.Metrics.gauge "uarch.lsq.high_water"
let c_stall_icache = Pc_obs.Metrics.counter "uarch.fetch_stall.icache_cycles"
let c_stall_mispredict = Pc_obs.Metrics.counter "uarch.fetch_stall.mispredict_cycles"

(* The whole scheduling state of one simulated core, so a retired
   stream can be fed incrementally (instruction by instruction, from
   any producer — a live functional machine, a packed replay trace, or
   a multi-tenant arbiter interleaving several streams).  [run_events]
   below is exactly [create] + a feed loop + [finish]. *)
type state = {
  st_cfg : Config.t;
  measure_from : int;
  icache : Hierarchy.t;
  dcache : Hierarchy.t;
  bpred : Predictor.t;
  fetch_slot : Slot.t;
  dispatch_slot : Slot.t;
  commit_slot : Slot.t;
  issue_table : Cycle_table.t;
  int_alu : Fu_pool.t;
  int_mul : Fu_pool.t;
  fp_alu : Fu_pool.t;
  fp_mul : Fu_pool.t;
  mem_port : Fu_pool.t;
  (* Completion cycle of the last writer of each shared register id.
     r0 (id 0) stays 0: it is architecturally constant. *)
  reg_ready : int array;
  (* Ring buffers of commit cycles for ROB / LSQ occupancy. *)
  rob : int array;
  lsq : int array;
  st_class_counts : int array;
  icache_hit_latency : int;
  mutable index : int;
  mutable mem_index : int;
  mutable fetch_ready : int;
  mutable last_issue : int;
  mutable last_commit : int;
  mutable rob_hw : int;
  mutable lsq_hw : int;
  mutable stall_icache : int;
  mutable stall_mispredict : int;
  (* Commit cycle at the measurement-window boundary.  [last_commit] is
     monotone, so cycles spent strictly inside the window are the final
     commit cycle minus its value just before instruction [measure_from]
     is scheduled; the prefix acts as warmup (caches and predictor
     already primed) without polluting the measured CPI. *)
  mutable measure_start : int;
}

let create ?(measure_from = 0) ?icache ?dcache (cfg : Config.t) =
  {
    st_cfg = cfg;
    measure_from = max 0 measure_from;
    icache =
      (match icache with Some h -> h | None -> Hierarchy.create cfg.icache);
    dcache =
      (match dcache with Some h -> h | None -> Hierarchy.create cfg.dcache);
    bpred = Predictor.create cfg.bpred;
    fetch_slot = Slot.create cfg.fetch_width;
    dispatch_slot = Slot.create cfg.decode_width;
    commit_slot = Slot.create cfg.commit_width;
    issue_table = Cycle_table.create cfg.issue_width;
    int_alu = Fu_pool.create cfg.int_alu_units;
    int_mul = Fu_pool.create cfg.int_mul_units;
    fp_alu = Fu_pool.create cfg.fp_alu_units;
    fp_mul = Fu_pool.create cfg.fp_mul_units;
    mem_port = Fu_pool.create cfg.mem_ports;
    reg_ready = Array.make 64 0;
    rob = Array.make cfg.rob_size 0;
    lsq = Array.make (max cfg.lsq_size 1) 0;
    st_class_counts = Array.make I.class_count 0;
    icache_hit_latency = cfg.icache.Hierarchy.l1_latency;
    index = 0;
    mem_index = 0;
    fetch_ready = 0;
    last_issue = 0;
    last_commit = 0;
    rob_hw = 0;
    lsq_hw = 0;
    stall_icache = 0;
    stall_mispredict = 0;
    measure_start = 0;
  }

let feed st (ev : Machine.event) =
  let cfg = st.st_cfg in
  let i = st.index in
  st.index <- i + 1;
  if i = st.measure_from then st.measure_start <- st.last_commit;
  let cls = ev.Machine.iclass in
  let ci = I.class_index cls in
  st.st_class_counts.(ci) <- st.st_class_counts.(ci) + 1;
  (* --- fetch --- *)
  let f0 = Slot.take st.fetch_slot st.fetch_ready in
  let ilat = Hierarchy.access st.icache (4 * ev.Machine.pc) in
  if ilat > st.icache_hit_latency then
    st.stall_icache <- st.stall_icache + (ilat - st.icache_hit_latency);
  let fc = f0 + (ilat - st.icache_hit_latency) in
  if fc > st.fetch_ready then st.fetch_ready <- fc;
  (* --- dispatch --- *)
  let rob_free = st.rob.(i mod cfg.rob_size) in
  let is_mem = cls = I.C_load || cls = I.C_store in
  let lsq_free =
    if is_mem then st.lsq.(st.mem_index mod Array.length st.lsq) else 0
  in
  let d =
    Slot.take st.dispatch_slot
      (max (fc + cfg.frontend_depth) (max rob_free lsq_free))
  in
  let occ = ring_occupancy st.rob i d in
  if occ > st.rob_hw then st.rob_hw <- occ;
  if is_mem then begin
    let occ = ring_occupancy st.lsq st.mem_index d in
    if occ > st.lsq_hw then st.lsq_hw <- occ
  end;
  (* --- register readiness --- *)
  let ready =
    List.fold_left (fun acc id -> max acc st.reg_ready.(id)) d ev.Machine.reads
  in
  let ready = if cfg.in_order then max ready st.last_issue else ready in
  (* --- issue: bandwidth then functional unit --- *)
  let issue0 = Cycle_table.take st.issue_table ready in
  let i_lat = Array.get cfg.latencies in
  let issue =
    match cls with
    | I.C_int_alu | I.C_branch | I.C_jump | I.C_other ->
      Fu_pool.acquire st.int_alu ~earliest:issue0 ~occupancy:1
    | I.C_int_mul -> Fu_pool.acquire st.int_mul ~earliest:issue0 ~occupancy:1
    | I.C_int_div ->
      Fu_pool.acquire st.int_mul ~earliest:issue0 ~occupancy:(i_lat ci)
    | I.C_fp_alu -> Fu_pool.acquire st.fp_alu ~earliest:issue0 ~occupancy:1
    | I.C_fp_mul -> Fu_pool.acquire st.fp_mul ~earliest:issue0 ~occupancy:1
    | I.C_fp_div -> Fu_pool.acquire st.fp_mul ~earliest:issue0 ~occupancy:(i_lat ci)
    | I.C_load | I.C_store -> Fu_pool.acquire st.mem_port ~earliest:issue0 ~occupancy:1
  in
  if cfg.in_order && issue > st.last_issue then st.last_issue <- issue;
  (* --- complete --- *)
  let complete =
    match cls with
    | I.C_load -> issue + Hierarchy.access st.dcache ev.Machine.mem_addr + i_lat ci
    | I.C_store ->
      (* Update tag state and counters; the store buffer hides the
         latency from the pipeline. *)
      ignore (Hierarchy.access st.dcache ev.Machine.mem_addr);
      issue + i_lat ci
    | _ -> issue + i_lat ci
  in
  (* --- writeback: wake up dependents --- *)
  (match ev.Machine.writes with
  | -1 -> ()
  | 0 -> () (* r0 is constant *)
  | id -> st.reg_ready.(id) <- complete);
  (* --- branch resolution --- *)
  if ev.Machine.is_branch then begin
    let correct =
      Predictor.observe st.bpred ~pc:ev.Machine.pc ~taken:ev.Machine.taken
    in
    if not correct then begin
      let redirect = complete + cfg.mispredict_penalty in
      if redirect > st.fetch_ready then begin
        st.stall_mispredict <- st.stall_mispredict + (redirect - st.fetch_ready);
        st.fetch_ready <- redirect
      end
    end
  end;
  (* --- commit --- *)
  let m = Slot.take st.commit_slot (max (complete + 1) st.last_commit) in
  st.last_commit <- m;
  st.rob.(i mod cfg.rob_size) <- m;
  if is_mem then begin
    st.lsq.(st.mem_index mod Array.length st.lsq) <- m;
    st.mem_index <- st.mem_index + 1
  end

let fed_instrs st = st.index
let committed_cycle st = st.last_commit

let finish ?instrs st =
  let cfg = st.st_cfg in
  let instrs = match instrs with Some n -> n | None -> st.index in
  let cycles = max st.last_commit 1 in
  let measured_instrs = max 0 (instrs - st.measure_from) in
  let measured_cycles =
    if st.measure_from = 0 then cycles
    else if measured_instrs = 0 then 0
    else max (st.last_commit - st.measure_start) 1
  in
  Pc_obs.Metrics.add c_instrs instrs;
  Pc_obs.Metrics.add c_cycles cycles;
  Pc_obs.Metrics.record_max g_rob_hw st.rob_hw;
  Pc_obs.Metrics.record_max g_lsq_hw st.lsq_hw;
  Pc_obs.Metrics.add c_stall_icache st.stall_icache;
  Pc_obs.Metrics.add c_stall_mispredict st.stall_mispredict;
  Hierarchy.publish_metrics st.icache ~prefix:"uarch.icache";
  Hierarchy.publish_metrics st.dcache ~prefix:"uarch.dcache";
  Predictor.publish_metrics st.bpred ~prefix:"uarch.bpred";
  {
    config_name = cfg.name;
    instrs;
    cycles;
    ipc = float_of_int instrs /. float_of_int cycles;
    class_counts = st.st_class_counts;
    branches = Predictor.lookups st.bpred;
    mispredictions = Predictor.mispredictions st.bpred;
    l1i_accesses = Hierarchy.l1_accesses st.icache;
    l1i_misses = Hierarchy.l1_misses st.icache;
    l1d_accesses = Hierarchy.l1_accesses st.dcache;
    l1d_misses = Hierarchy.l1_misses st.dcache;
    l2_accesses = Hierarchy.l2_accesses st.icache + Hierarchy.l2_accesses st.dcache;
    l2_misses = Hierarchy.l2_misses st.icache + Hierarchy.l2_misses st.dcache;
    mem_accesses = Hierarchy.mem_accesses st.icache + Hierarchy.mem_accesses st.dcache;
    rob_high_water = st.rob_hw;
    lsq_high_water = st.lsq_hw;
    fetch_stall_icache_cycles = st.stall_icache;
    fetch_stall_mispredict_cycles = st.stall_mispredict;
    measured_instrs;
    measured_cycles;
  }

let run_events ?measure_from (cfg : Config.t) feed_stream =
  let st = create ?measure_from cfg in
  let instrs = feed_stream (fun ev -> feed st ev) in
  finish ~instrs st

let run ?(max_instrs = 10_000_000) cfg program =
  run_events cfg (fun on_event ->
      let machine = Machine.load program in
      Machine.run ~max_instrs machine on_event)

let mispredict_rate r =
  if r.branches = 0 then 0.0
  else float_of_int r.mispredictions /. float_of_int r.branches

let l1d_mpi r =
  if r.instrs = 0 then 0.0 else float_of_int r.l1d_misses /. float_of_int r.instrs
