(** Microarchitecture configurations.

    [base] reproduces Table 2 of the paper; the [with_*] transformers
    express the five design changes of Section 5.2 and the cache study
    variations. *)

type t = {
  name : string;
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  commit_width : int;
  rob_size : int;
  lsq_size : int;
  in_order : bool;
  int_alu_units : int;
  int_mul_units : int;  (** also execute integer divides *)
  fp_alu_units : int;
  fp_mul_units : int;  (** also execute FP divides *)
  mem_ports : int;
  frontend_depth : int;  (** cycles between fetch and dispatch *)
  mispredict_penalty : int;  (** redirect cycles after branch resolution *)
  bpred : Pc_branch.Predictor.config;
  icache : Pc_caches.Hierarchy.config;
  dcache : Pc_caches.Hierarchy.config;
  latencies : int array;  (** execution latency per instruction class index *)
}

val base : t
(** Table 2: 2 integer ALUs, 1 FP multiplier, 1 FP ALU; 16-entry ROB;
    8-entry LSQ; 16 KB/2-way/32 B L1 I and D caches; 64 KB/4-way/64 B L2;
    1-wide out-of-order; 8-entry fetch queue (frontend depth); 2-level
    GAp predictor; 40-cycle memory. *)

val with_name : string -> t -> t

val with_rob_lsq : rob:int -> lsq:int -> t -> t
(** Design change 1 doubles both: [with_rob_lsq ~rob:32 ~lsq:16 base]. *)

val with_l1d_size : int -> t -> t
(** Design change 2 halves the L1 D-cache: [with_l1d_size 8192 base].
    Associativity and line size are preserved. *)

val with_widths : int -> t -> t
(** Design change 3 doubles fetch/decode/issue (and commit) width. *)

val with_bpred : Pc_branch.Predictor.config -> t -> t
(** Design change 4: [with_bpred Not_taken base]. *)

val with_in_order : bool -> t -> t
(** Design change 5: [with_in_order true base]. *)

val with_l1d_config : Pc_caches.Cache.config -> t -> t
(** Replace the L1 D-cache configuration entirely (cache study). *)
