(** Drivers that regenerate every table and figure of the paper's
    evaluation (Section 5), plus the microarchitecture-dependent-baseline
    ablation.  Each driver returns plain data; [pp_*] printers render the
    same rows/series the paper reports. *)

type settings = {
  seed : int;
  profile_instrs : int;  (** profiling budget per benchmark *)
  sim_instrs : int;  (** timing/cache simulation budget per run *)
  clone_dynamic : int;  (** clone target dynamic length *)
  benchmarks : string list;  (** benchmark names; empty = all 23 *)
  sample : int option;
      (** [Some interval]: estimate timing, cache, power and
          statistical-simulation results by SimPoint-style sampled
          simulation ({!Pc_sample.Sample}) with the given interval size
          instead of simulating every dynamic instruction.  [None] (the
          default everywhere) leaves every figure byte-identical to
          unsampled operation. *)
  plan_cache : string option;
      (** [Some dir]: persist sampling plans on disk under [dir]
          ({!Pc_sample.Plan_cache}), so repeated sampled invocations skip
          plan construction.  Only consulted when [sample] is set. *)
  cache_onepass : bool;
      (** [true]: price every 28-configuration cache sweep with the
          one-pass stack-distance profiler
          ({!Pc_caches.Study.run_trace_onepass}) instead of 28 simulated
          caches — both the full-trace sweeps and the sampled
          {!Pc_sample.Sample.project_mpi} bounds.  Results are
          byte-identical to the simulated path (the test suite holds the
          two equal); only the cost changes.  Exposed as
          [--cache-onepass] / [PC_CACHE_ONEPASS] on the CLI. *)
}

val default_settings : settings
(** seed 1, 1M profile instructions, 2M simulated instructions, 100k
    clone target, all benchmarks. *)

val quick_settings : settings
(** A fast configuration for tests and the quickstart example: 300k
    profile instructions, 500k simulated, and only five benchmarks. *)

val prepare : ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list
(** Run the cloning pipeline for the selected benchmarks, fanning the
    per-benchmark work out through [pool] (default: serial).  Results
    are in registry order and bit-identical at every pool width. *)

val sample_plan :
  settings -> interval:int -> Pc_isa.Program.t -> Pc_sample.Sample.plan
(** The memoized sampling plan for a program under these settings
    (computed on first use, then shared).  The CLI uses this to report
    per-program plan statistics without recomputing. *)

val sim_run :
  settings -> Pc_uarch.Config.t -> Pc_isa.Program.t -> Pc_uarch.Sim.result
(** The memoized base timing result for a program under these settings:
    a detailed {!Pc_uarch.Sim.run} when [settings.sample] is [None], the
    population-weighted projection over replayed representatives
    otherwise.  Shared by every figure that simulates the same
    (config, program) pair. *)

val prepare_sample : ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list -> unit
(** When [settings.sample] is set, build the sampling plan of every
    pipeline's original and clone program up front, fanning the
    (functional-profiling + clustering) work out through [pool].  A
    no-op with sampling off.  Drivers build missing plans lazily, so
    this is purely a parallelism optimisation — call it from the top
    level, never from inside a pool task. *)

val clear_caches : unit -> unit
(** Empty the memo stores ({!trace_store}, {!sim_store}, {!plan_store},
    {!fidelity_store} and {!Pipeline.profile_store}) and reset their
    counters.  Tests use this to compare truly cold serial and parallel
    runs. *)

val trace_store : (string, float array) Pc_exec.Store.t
(** 28-cache-study MPI series, keyed by a digest of (program, budget)
    — plus interval and seed for sampled projections. *)

val sim_store : (string, Pc_uarch.Sim.result) Pc_exec.Store.t
(** Timing-model results, keyed by a digest of (config, program, budget)
    — plus interval and seed for sampled projections. *)

val plan_store : (string, Pc_sample.Sample.plan) Pc_exec.Store.t
(** Sampling plans, keyed by a digest of (program, budget, interval,
    seed); shared across every configuration that simulates the same
    program (phases are microarchitecture-independent).  When
    [settings.plan_cache] is set, misses fall through to the on-disk
    {!Pc_sample.Plan_cache} before computing. *)

val phase_store :
  (string, (Pc_sample.Sample.rep * Pc_uarch.Sim.result) array) Pc_exec.Store.t
(** Replayed representative results, keyed by a digest of ("sampled-phases",
    config, program, budget, interval, seed): one replay pass per
    configuration serves both the timing and the power projections. *)

val power_total :
  settings -> Pc_uarch.Config.t -> Pc_isa.Program.t -> Pc_uarch.Sim.result -> float
(** Power of a simulated run under these settings.  Unsampled this is
    exactly {!Pc_power.Power.total} of the given result; with sampling
    on it is the population-weighted per-phase projection
    ({!Pc_sample.Sample.project_power_of_phases}) over the program's
    replayed representatives, ignoring the given (projected) result's
    whole-run counters. *)

val statsim_ipc : settings -> Pipeline.t -> float
(** Statistical-simulation IPC estimate for the pipeline's profile on
    the base configuration ([min 200_000 sim_instrs] synthetic
    instructions).  With sampling on, trace generation goes phase by
    phase ({!Pc_statsim.Statsim.estimate_sampled} over the original
    program's plan). *)

val fidelity_store : (string, Pc_trace.Fidelity.report) Pc_exec.Store.t
(** Clone-fidelity reports, keyed by a digest of (clone program,
    original profile, budget). *)

(** {1 Clone fidelity — pc-fidelity/1} *)

val fidelity_reports :
  ?pool:Pc_exec.Pool.t ->
  settings ->
  Pipeline.t list ->
  Pc_trace.Fidelity.report list
(** Re-profile every pipeline's clone ({!Pc_trace.Fidelity.measure} with
    [settings.profile_instrs] as the budget) and compare it with the
    original's profile.  Results are memoized in {!fidelity_store} and
    deterministic at every pool width. *)

(** {1 Figure 3 — single-stride coverage} *)

val fig3 : Pipeline.t list -> (string * float) list
(** Per benchmark: fraction of dynamic memory references covered by the
    per-static-instruction single-stride approximation. *)

val pp_fig3 : Format.formatter -> (string * float) list -> unit

(** {1 Figures 4 and 5 — the 28-cache study} *)

type cache_study = {
  bench : string;
  correlation : float;  (** Pearson's R between relative MPI series *)
  orig_mpi : float array;  (** 28 values, study-config order *)
  clone_mpi : float array;
}

val cache_studies :
  ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list -> cache_study list

val average_correlation : cache_study list -> float

val pp_fig4 : Format.formatter -> cache_study list -> unit

val rankings_scatter : cache_study list -> (float * float) array
(** Figure 5: for each of the 28 configurations, the average rank (1 =
    fewest misses per instruction) assigned by the real benchmarks and by
    the clones. *)

val pp_fig5 : Format.formatter -> (float * float) array -> unit

(** {1 Figures 6 and 7 — base-configuration IPC and power} *)

type base_run = {
  bench : string;
  ipc_orig : float;
  ipc_clone : float;
  power_orig : float;
  power_clone : float;
}

val base_runs : ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list -> base_run list

val avg_abs_error : (base_run -> float * float) -> base_run list -> float
(** Average absolute relative error of a metric selector over the runs
    (selector returns (original, clone)). *)

val ipc_of : base_run -> float * float
val power_of : base_run -> float * float
val pp_fig6 : Format.formatter -> base_run list -> unit
val pp_fig7 : Format.formatter -> base_run list -> unit

(** {1 Table 3 and Figures 8/9 — design-change tracking} *)

type design_change = {
  change : string;  (** the paper's description of the change *)
  config : Pc_uarch.Config.t;
}

val design_changes : unit -> design_change list
(** The paper's five changes, in Table-3 order: double ROB+LSQ, halve
    L1-D, double widths, not-taken predictor, in-order issue. *)

type change_result = {
  change_name : string;
  per_bench : (string * float * float * float * float) list;
      (** bench, orig base metric..: (ipc_orig_new/base ratio, clone ratio,
          power orig ratio, power clone ratio) *)
  avg_ipc_error : float;  (** the paper's RE_X averaged over benchmarks *)
  avg_power_error : float;
}

val run_design_changes :
  ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list -> change_result list

val pp_table3 : Format.formatter -> change_result list -> unit

val pp_fig8 : Format.formatter -> change_result -> unit
(** Per-benchmark IPC speedups (real vs clone) for one design change —
    the paper shows the width-doubling change. *)

val pp_fig9 : Format.formatter -> change_result -> unit
(** Per-benchmark power increase for the same change. *)

(** {1 Robustness — clone quality across generation seeds} *)

type seed_robustness = {
  sr_bench : string;
  sr_correlations : float array;  (** Figure-4 R for each seed *)
  sr_min : float;
  sr_max : float;
}

val seed_robustness :
  ?pool:Pc_exec.Pool.t ->
  ?seeds:int list ->
  settings ->
  Pipeline.t list ->
  seed_robustness list
(** Regenerate each clone under several seeds (default [1; 2; 3; 4; 5])
    and measure the spread of the cache-study correlation: the sampling
    in the generator must not make clone quality a lottery. *)

val pp_seed_robustness : Format.formatter -> seed_robustness list -> unit

(** {1 Ablation — statistical simulation vs synthetic clone} *)

type statsim_row = {
  ss_bench : string;
  ss_ipc_orig : float;
  ss_ipc_clone : float;  (** IPC of the synthetic clone on the base config *)
  ss_ipc_statsim : float;  (** IPC estimated by statistical simulation *)
}

val statsim_comparison :
  ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list -> statsim_row list
(** Base-configuration IPC: original vs clone vs the trace-based
    statistical-simulation estimate (see {!Pc_statsim.Statsim}). *)

val pp_statsim : Format.formatter -> statsim_row list -> unit

(** {1 Extension — branch-predictor study} *)

val bpred_configs : Pc_branch.Predictor.config list
(** Ten predictor configurations spanning static, bimodal (3 sizes),
    gshare, GAp, PAp and tournament designs. *)

type bpred_study = {
  bp_bench : string;
  bp_correlation : float;  (** Pearson's R between the original's and the
                               clone's misprediction rates across the
                               predictor configurations *)
  bp_orig_rates : float array;
  bp_clone_rates : float array;
}

val bpred_studies :
  ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list -> bpred_study list
(** The analogue of the 28-cache study for branch predictors: simulate
    original and clone under every {!bpred_configs} entry and correlate
    misprediction rates.  Supports the paper's claim that the clone
    tracks "a wide range of ... branch predictor configurations". *)

val pp_bpred : Format.formatter -> bpred_study list -> unit

(** {1 Extension — portable (virtual-ISA) clones} *)

type portable_row = {
  po_bench : string;
  po_asm_correlation : float;  (** cache-study R of the SRISC clone *)
  po_kc_correlation : float;  (** cache-study R of the Kc-source clone, compiled *)
}

val portable_comparison :
  ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list -> portable_row list
(** The paper's Section-6 portability extension: clones generated as Kc
    source ({!Pc_synth.Portable}) and compiled with the Kc back end,
    compared on the 28-cache study against the direct SRISC clones. *)

val pp_portable : Format.formatter -> portable_row list -> unit

(** {1 Ablation — microarchitecture-dependent baseline} *)

type ablation_row = {
  ab_bench : string;
  indep_correlation : float;  (** our clone's Figure-4 R *)
  dep_correlation : float;  (** the microarchitecture-dependent baseline's R *)
}

val ablation :
  ?pool:Pc_exec.Pool.t -> settings -> Pipeline.t list -> ablation_row list

val pp_ablation : Format.formatter -> ablation_row list -> unit
