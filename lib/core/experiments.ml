module Machine = Pc_funcsim.Machine
module Study = Pc_caches.Study
module Stats = Pc_stats.Stats
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Power = Pc_power.Power
module Profile = Pc_profile.Profile
module Pool = Pc_exec.Pool
module Store = Pc_exec.Store
module Span = Pc_obs.Span

let log_src = Logs.Src.create "perfclone" ~doc:"Performance-cloning experiment progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type settings = {
  seed : int;
  profile_instrs : int;
  sim_instrs : int;
  clone_dynamic : int;
  benchmarks : string list;
  sample : int option;
  plan_cache : string option;
  cache_onepass : bool;
}

let default_settings =
  {
    seed = 1;
    profile_instrs = 1_000_000;
    sim_instrs = 2_000_000;
    clone_dynamic = 100_000;
    benchmarks = [];
    sample = None;
    plan_cache = None;
    cache_onepass = false;
  }

let quick_settings =
  {
    seed = 1;
    profile_instrs = 300_000;
    sim_instrs = 500_000;
    clone_dynamic = 50_000;
    benchmarks = [ "crc32"; "qsort"; "sha"; "fft"; "dijkstra" ];
    sample = None;
    plan_cache = None;
    cache_onepass = false;
  }

let prepare ?(pool = Pool.serial) settings =
  Span.with_ "prepare" @@ fun () ->
  let names =
    match settings.benchmarks with
    | [] -> Pc_workloads.Registry.names
    | names -> names
  in
  Log.info (fun m -> m "preparing %d benchmark pipelines" (List.length names));
  Pool.map pool
    (fun name ->
      let p =
        Pipeline.clone_benchmark ~seed:settings.seed
          ~profile_instrs:settings.profile_instrs
          ~target_dynamic:settings.clone_dynamic name
      in
      Log.info (fun m -> m "prepared %s" name);
      p)
    names

(* --- memoized simulation primitives ---

   Every driver below re-simulates the same programs: cache_studies,
   seed_robustness, portable_comparison and ablation all trace the
   original; base_runs, run_design_changes and statsim_comparison all
   run the base-configuration timing model.  Results are memoized under
   a structural digest of (program, budget[, config]), so one
   [run_experiments all] invocation computes each artefact once.  All
   simulations are deterministic, so racing pool workers store identical
   values. *)

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let trace_store : (string, float array) Store.t = Store.create ~name:"trace" ()
let sim_store : (string, Sim.result) Store.t = Store.create ~name:"sim" ()

let plan_store : (string, Pc_sample.Sample.plan) Store.t =
  Store.create ~name:"sample.plan" ()

let phase_store : (string, (Pc_sample.Sample.rep * Sim.result) array) Store.t =
  Store.create ~name:"sample.phases" ()

let fidelity_store : (string, Pc_trace.Fidelity.report) Store.t =
  Store.create ~name:"fidelity" ()

let clear_caches () =
  Store.clear trace_store;
  Store.clear sim_store;
  Store.clear plan_store;
  Store.clear phase_store;
  Store.clear fidelity_store;
  Store.clear Pipeline.profile_store

(* Sampling plans are keyed per (program, budget, interval, seed) and
   shared by every estimator that simulates the same program: the timing
   model reuses the plan across all configurations (the BBV phases are
   microarchitecture-independent), and the cache study replays the same
   representative traces.  With [settings.plan_cache] set, plans also
   persist on disk across invocations ({!Pc_sample.Plan_cache}): the
   in-memory store stays the first line, the disk cache backs it. *)
let sample_plan settings ~interval program =
  let key = digest (program, settings.sim_instrs, interval, settings.seed) in
  Store.find_or_compute plan_store key (fun () ->
      let compute () =
        Pc_sample.Sample.plan ~seed:settings.seed ~interval
          ~max_instrs:settings.sim_instrs program
      in
      match settings.plan_cache with
      | None -> compute ()
      | Some dir ->
        let cache = Pc_sample.Plan_cache.create dir in
        let ckey =
          Pc_sample.Plan_cache.key
            ~profile_id:(digest (program, settings.sim_instrs))
            ~interval ~seed:settings.seed ()
        in
        Pc_sample.Plan_cache.find_or_compute cache ckey compute)

(* Replayed phase results are microarchitecture-dependent (one array per
   configuration) and feed both the timing and the power projections, so
   one replay pass per (config, program) serves every figure. *)
let sampled_phases settings ~interval config program =
  let key =
    digest
      ("sampled-phases", config, program, settings.sim_instrs, interval,
       settings.seed)
  in
  Store.find_or_compute phase_store key (fun () ->
      Pc_sample.Sample.replay_phases config (sample_plan settings ~interval program))

let prepare_sample ?(pool = Pool.serial) settings pipelines =
  match settings.sample with
  | None -> ()
  | Some interval ->
    Span.with_ "sample_plans" @@ fun () ->
    let programs =
      List.concat_map
        (fun (p : Pipeline.t) -> [ p.Pipeline.original; p.Pipeline.clone ])
        pipelines
    in
    Log.info (fun m ->
        m "building %d sampling plans (interval %d)" (List.length programs) interval);
    ignore
      (Pool.map pool
         (fun program -> ignore (sample_plan settings ~interval program))
         programs)

(* --- clone fidelity ---

   Re-profiles each clone with the same budget that profiled the
   original and compares the two profiles on the paper characteristics.
   Keyed by (clone program, original profile, budget): the comparison is
   a pure function of those, so a [run_experiments all] and a later
   [--fidelity-out] share the work. *)

let fidelity_reports ?(pool = Pool.serial) settings pipelines =
  Span.with_ "fidelity" @@ fun () ->
  Log.info (fun m -> m "measuring clone fidelity for %d benchmarks" (List.length pipelines));
  Pool.map pool
    (fun (p : Pipeline.t) ->
      let key =
        digest (p.Pipeline.clone, p.Pipeline.profile, settings.profile_instrs)
      in
      Store.find_or_compute fidelity_store key (fun () ->
          Pc_trace.Fidelity.measure ~max_instrs:settings.profile_instrs
            ~bench:p.Pipeline.name ~original:p.Pipeline.profile
            p.Pipeline.clone))
    pipelines

(* --- Figure 3 --- *)

let fig3 pipelines =
  List.map
    (fun (p : Pipeline.t) -> (p.Pipeline.name, p.Pipeline.profile.Profile.single_stride_fraction))
    pipelines

let pp_fig3 ppf rows =
  Format.fprintf ppf "Figure 3: dynamic references covered by a single stride@.";
  List.iter
    (fun (name, frac) -> Format.fprintf ppf "  %-14s %6.1f%%@." name (100.0 *. frac))
    rows;
  let avg = Stats.mean (Array.of_list (List.map snd rows)) in
  Format.fprintf ppf "  %-14s %6.1f%%@." "average" (100.0 *. avg)

(* --- Figures 4 and 5 --- *)

type cache_study = {
  bench : string;
  correlation : float;
  orig_mpi : float array;
  clone_mpi : float array;
}

(* The one-pass results are byte-identical to the simulated ones, but
   the memo keys are still tagged with the path so that a mixed-flag
   process (e.g. the onepass-equivalence tests) never serves one path's
   cached series as evidence the other path agrees. *)
let mpi_trace settings program =
  let max_instrs = settings.sim_instrs in
  let mpis =
    match settings.sample with
    | None ->
      let key = digest (program, max_instrs, settings.cache_onepass) in
      Store.find_or_compute trace_store key (fun () ->
          let feed emit =
            let m = Machine.load program in
            Machine.run ~max_instrs m (fun ev ->
                if ev.Machine.mem_addr >= 0 then emit ev.Machine.mem_addr)
          in
          let results =
            if settings.cache_onepass then Study.run_trace_onepass feed
            else Study.run_trace feed
          in
          Array.map (fun (r : Study.result) -> r.Study.mpi) results)
    | Some interval ->
      let key =
        digest
          ( "sampled-mpi", program, max_instrs, interval, settings.seed,
            settings.cache_onepass )
      in
      Store.find_or_compute trace_store key (fun () ->
          Pc_sample.Sample.project_mpi ~onepass:settings.cache_onepass
            (sample_plan settings ~interval program))
  in
  Array.copy mpis

let sim_run settings config program =
  let max_instrs = settings.sim_instrs in
  match settings.sample with
  | None ->
    let key = digest (config, program, max_instrs) in
    Store.find_or_compute sim_store key (fun () ->
        Sim.run ~max_instrs config program)
  | Some interval ->
    let key =
      digest ("sampled-sim", config, program, max_instrs, interval, settings.seed)
    in
    Store.find_or_compute sim_store key (fun () ->
        Pc_sample.Sample.project_of_phases
          (sample_plan settings ~interval program)
          (sampled_phases settings ~interval config program))

(* Power under sampling reuses the replayed phases: population-weighted
   per-phase energy from each representative's measurement window, never
   the whole-run counters (which would price the warmup prefix too).
   Unsampled, this is exactly [Power.total]. *)
let power_total settings config program (r : Sim.result) =
  match settings.sample with
  | None -> Power.total config r
  | Some interval ->
    Pc_sample.Sample.project_power_of_phases config
      (sample_plan settings ~interval program)
      (sampled_phases settings ~interval config program)

let study_of_mpis bench orig_mpi clone_mpi =
  let rel mpis =
    let reference = mpis.(Study.reference_index) in
    let rest =
      Array.of_list
        (List.filteri (fun i _ -> i <> Study.reference_index) (Array.to_list mpis))
    in
    if reference = 0.0 then rest else Array.map (fun v -> v /. reference) rest
  in
  { bench; correlation = Stats.pearson (rel clone_mpi) (rel orig_mpi); orig_mpi; clone_mpi }

let cache_studies ?(pool = Pool.serial) settings pipelines =
  Span.with_ "cache_studies" @@ fun () ->
  Pool.map pool
    (fun (p : Pipeline.t) ->
      Span.with_ ("cache_study:" ^ p.Pipeline.name) @@ fun () ->
      let orig_mpi = mpi_trace settings p.Pipeline.original in
      let clone_mpi = mpi_trace settings p.Pipeline.clone in
      study_of_mpis p.Pipeline.name orig_mpi clone_mpi)
    pipelines

let average_correlation studies =
  Stats.mean (Array.of_list (List.map (fun s -> s.correlation) studies))

let pp_fig4 ppf studies =
  Format.fprintf ppf
    "Figure 4: Pearson correlation of relative misses/instruction across the 28 cache configurations@.";
  List.iter
    (fun s -> Format.fprintf ppf "  %-14s %6.3f@." s.bench s.correlation)
    studies;
  Format.fprintf ppf "  %-14s %6.3f@." "average" (average_correlation studies)

let rankings_scatter studies =
  let n_configs = Array.length Study.configs in
  let sum_orig = Array.make n_configs 0.0 in
  let sum_clone = Array.make n_configs 0.0 in
  List.iter
    (fun s ->
      let ro = Stats.rankings s.orig_mpi in
      let rc = Stats.rankings s.clone_mpi in
      Array.iteri (fun i r -> sum_orig.(i) <- sum_orig.(i) +. r) ro;
      Array.iteri (fun i r -> sum_clone.(i) <- sum_clone.(i) +. r) rc)
    studies;
  let n = float_of_int (max 1 (List.length studies)) in
  Array.init n_configs (fun i -> (sum_orig.(i) /. n, sum_clone.(i) /. n))

let pp_fig5 ppf scatter =
  Format.fprintf ppf
    "Figure 5: average cache-configuration rankings, real vs synthetic (1 = fewest misses)@.";
  Format.fprintf ppf "  %-22s %8s %9s@." "configuration" "real" "synthetic";
  Array.iteri
    (fun i (o, c) ->
      Format.fprintf ppf "  %-22s %8.2f %9.2f@."
        (Pc_caches.Cache.config_name Study.configs.(i))
        o c)
    scatter;
  let xs = Array.map fst scatter and ys = Array.map snd scatter in
  Format.fprintf ppf "  rank correlation (Spearman): %.3f@." (Stats.spearman xs ys)

(* --- Figures 6 and 7 --- *)

type base_run = {
  bench : string;
  ipc_orig : float;
  ipc_clone : float;
  power_orig : float;
  power_clone : float;
}

let base_runs ?(pool = Pool.serial) settings pipelines =
  Span.with_ "base_runs" @@ fun () ->
  let cfg = Config.base in
  Pool.map pool
    (fun (p : Pipeline.t) ->
      Span.with_ ("base_run:" ^ p.Pipeline.name) @@ fun () ->
      let ro = sim_run settings cfg p.Pipeline.original in
      let rc = sim_run settings cfg p.Pipeline.clone in
      {
        bench = p.Pipeline.name;
        ipc_orig = ro.Sim.ipc;
        ipc_clone = rc.Sim.ipc;
        power_orig = power_total settings cfg p.Pipeline.original ro;
        power_clone = power_total settings cfg p.Pipeline.clone rc;
      })
    pipelines

let ipc_of r = (r.ipc_orig, r.ipc_clone)
let power_of r = (r.power_orig, r.power_clone)

let avg_abs_error select runs =
  let errors =
    List.map
      (fun r ->
        let actual, predicted = select r in
        Stats.abs_rel_error ~actual ~predicted)
      runs
  in
  Stats.mean (Array.of_list errors)

let pp_metric_figure ~title ~label select ppf runs =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "  %-14s %10s %10s %8s@." "benchmark" "original" "clone" "error";
  List.iter
    (fun r ->
      let actual, predicted = select r in
      Format.fprintf ppf "  %-14s %10.3f %10.3f %7.1f%%@." r.bench actual predicted
        (100.0 *. Stats.abs_rel_error ~actual ~predicted))
    runs;
  Format.fprintf ppf "  average absolute %s error: %.2f%%@." label
    (100.0 *. avg_abs_error select runs)

let pp_fig6 ppf runs =
  pp_metric_figure ~title:"Figure 6: IPC on the base configuration" ~label:"IPC"
    ipc_of ppf runs

let pp_fig7 ppf runs =
  pp_metric_figure
    ~title:"Figure 7: power consumption on the base configuration (relative units)"
    ~label:"power" power_of ppf runs

(* --- Table 3 and Figures 8/9 --- *)

type design_change = { change : string; config : Config.t }

let design_changes () =
  [
    {
      change = "Double the number of entries in the reorder buffer and load store queue";
      config = Config.with_rob_lsq ~rob:32 ~lsq:16 Config.base;
    };
    {
      change = "Reduce the L1 cache size to half";
      config = Config.with_l1d_size 8192 Config.base;
    };
    {
      change = "Double the fetch, decode, and issue width";
      config = Config.with_widths 2 Config.base;
    };
    {
      change = "Change the predictor from a 2-level to a not-taken predictor";
      config = Config.with_bpred Pc_branch.Predictor.Not_taken Config.base;
    };
    {
      change = "Change the instruction issue policy to in-order";
      config = Config.with_in_order true Config.base;
    };
  ]

type change_result = {
  change_name : string;
  per_bench : (string * float * float * float * float) list;
  avg_ipc_error : float;
  avg_power_error : float;
}

let run_design_changes ?(pool = Pool.serial) settings pipelines =
  Span.with_ "design_changes" @@ fun () ->
  let base_cfg = Config.base in
  (* Base-configuration runs, shared by every change. *)
  let base =
    Pool.map pool
      (fun (p : Pipeline.t) ->
        let ro = sim_run settings base_cfg p.Pipeline.original in
        let rc = sim_run settings base_cfg p.Pipeline.clone in
        (p, ro, rc))
      pipelines
  in
  List.map
    (fun { change; config } ->
      let rows =
        Pool.map pool
          (fun ((p : Pipeline.t), base_orig, base_clone) ->
            let new_orig = sim_run settings config p.Pipeline.original in
            let new_clone = sim_run settings config p.Pipeline.clone in
            let ipc_ratio_orig = new_orig.Sim.ipc /. base_orig.Sim.ipc in
            let ipc_ratio_clone = new_clone.Sim.ipc /. base_clone.Sim.ipc in
            let pw_ratio_orig =
              power_total settings config p.Pipeline.original new_orig
              /. power_total settings base_cfg p.Pipeline.original base_orig
            in
            let pw_ratio_clone =
              power_total settings config p.Pipeline.clone new_clone
              /. power_total settings base_cfg p.Pipeline.clone base_clone
            in
            ( p.Pipeline.name,
              ipc_ratio_orig,
              ipc_ratio_clone,
              pw_ratio_orig,
              pw_ratio_clone ))
          base
      in
      let avg metric =
        Stats.mean
          (Array.of_list
             (List.map
                (fun (_, io, ic, po, pc) ->
                  let real, synth = metric (io, ic, po, pc) in
                  abs_float (synth -. real) /. abs_float real)
                rows))
      in
      {
        change_name = change;
        per_bench = rows;
        avg_ipc_error = avg (fun (io, ic, _, _) -> (io, ic));
        avg_power_error = avg (fun (_, _, po, pc) -> (po, pc));
      })
    (design_changes ())

let pp_table3 ppf results =
  Format.fprintf ppf
    "Table 3: average relative error in IPC and power for the five design changes@.";
  Format.fprintf ppf "  %-72s %8s %8s@." "design change" "IPC" "power";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-72s %7.2f%% %7.2f%%@." r.change_name
        (100.0 *. r.avg_ipc_error)
        (100.0 *. r.avg_power_error))
    results

let pp_change_detail ~title select ppf r =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "  (design change: %s)@." r.change_name;
  Format.fprintf ppf "  %-14s %10s %10s@." "benchmark" "real" "synthetic";
  let reals = ref [] and synths = ref [] in
  List.iter
    (fun row ->
      let name, real, synth = select row in
      reals := real :: !reals;
      synths := synth :: !synths;
      Format.fprintf ppf "  %-14s %10.3f %10.3f@." name real synth)
    r.per_bench;
  Format.fprintf ppf "  %-14s %10.3f %10.3f@." "average"
    (Stats.mean (Array.of_list !reals))
    (Stats.mean (Array.of_list !synths))

let pp_fig8 ppf r =
  pp_change_detail ~title:"Figure 8: IPC speedup over the base configuration"
    (fun (name, io, ic, _, _) -> (name, io, ic))
    ppf r

let pp_fig9 ppf r =
  pp_change_detail
    ~title:"Figure 9: relative power increase over the base configuration"
    (fun (name, _, _, po, pc) -> (name, po, pc))
    ppf r

(* --- branch-predictor study --- *)

let bpred_configs =
  let open Pc_branch.Predictor in
  [
    Taken;
    Not_taken;
    Bimodal 64;
    Bimodal 512;
    Bimodal 4096;
    Gshare { history_bits = 8; entries = 4096 };
    Gshare { history_bits = 12; entries = 16384 };
    base_gap;
    Pap { history_bits = 6; tables = 256 };
    Tournament
      { meta_entries = 1024; a = Bimodal 1024; b = Gshare { history_bits = 10; entries = 4096 } };
  ]

type bpred_study = {
  bp_bench : string;
  bp_correlation : float;
  bp_orig_rates : float array;
  bp_clone_rates : float array;
}

let bpred_studies ?(pool = Pool.serial) settings pipelines =
  Span.with_ "bpred" @@ fun () ->
  let rates program =
    Array.of_list
      (List.map
         (fun bp ->
           let cfg = Config.with_bpred bp Config.base in
           Sim.mispredict_rate (sim_run settings cfg program))
         bpred_configs)
  in
  Pool.map pool
    (fun (p : Pipeline.t) ->
      let bp_orig_rates = rates p.Pipeline.original in
      let bp_clone_rates = rates p.Pipeline.clone in
      {
        bp_bench = p.Pipeline.name;
        bp_correlation = Stats.pearson bp_clone_rates bp_orig_rates;
        bp_orig_rates;
        bp_clone_rates;
      })
    pipelines

let pp_bpred ppf studies =
  Format.fprintf ppf
    "Branch-predictor study: misprediction-rate correlation across %d predictors@."
    (List.length bpred_configs);
  List.iter
    (fun s -> Format.fprintf ppf "  %-14s %6.3f@." s.bp_bench s.bp_correlation)
    studies;
  let avg =
    Stats.mean (Array.of_list (List.map (fun s -> s.bp_correlation) studies))
  in
  Format.fprintf ppf "  %-14s %6.3f@." "average" avg

(* --- seed robustness --- *)

type seed_robustness = {
  sr_bench : string;
  sr_correlations : float array;
  sr_min : float;
  sr_max : float;
}

let seed_robustness ?(pool = Pool.serial) ?(seeds = [ 1; 2; 3; 4; 5 ]) settings pipelines =
  Span.with_ "seeds" @@ fun () ->
  Pool.map pool
    (fun (p : Pipeline.t) ->
      let orig_mpi = mpi_trace settings p.Pipeline.original in
      let correlations =
        Array.of_list
          (List.map
             (fun seed ->
               let options =
                 {
                   Pc_synth.Synth.default_options with
                   Pc_synth.Synth.seed;
                   target_dynamic = settings.clone_dynamic;
                 }
               in
               let clone = Pc_synth.Synth.generate ~options p.Pipeline.profile in
               let clone_mpi = mpi_trace settings clone in
               (study_of_mpis p.Pipeline.name orig_mpi clone_mpi).correlation)
             seeds)
      in
      {
        sr_bench = p.Pipeline.name;
        sr_correlations = correlations;
        sr_min = Array.fold_left min infinity correlations;
        sr_max = Array.fold_left max neg_infinity correlations;
      })
    pipelines

let pp_seed_robustness ppf rows =
  Format.fprintf ppf "Seed robustness: cache-study correlation across generation seeds@.";
  Format.fprintf ppf "  %-14s %8s %8s %8s@." "benchmark" "min" "mean" "max";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s %8.3f %8.3f %8.3f@." r.sr_bench r.sr_min
        (Stats.mean r.sr_correlations) r.sr_max)
    rows

(* --- statistical-simulation comparison --- *)

type statsim_row = {
  ss_bench : string;
  ss_ipc_orig : float;
  ss_ipc_clone : float;
  ss_ipc_statsim : float;
}

(* Statistical-simulation IPC estimate for a pipeline's profile on the
   base configuration.  With sampling on, the synthetic-trace generation
   itself goes phase-by-phase ({!Pc_statsim.Statsim.estimate_sampled}
   over the original program's plan) instead of one stationary walk. *)
let statsim_ipc settings (p : Pipeline.t) =
  let cfg = Config.base in
  let instrs = min 200_000 settings.sim_instrs in
  let r =
    match settings.sample with
    | None ->
      Pc_statsim.Statsim.estimate ~seed:settings.seed ~instrs cfg
        p.Pipeline.profile
    | Some interval ->
      Pc_statsim.Statsim.estimate_sampled ~seed:settings.seed ~instrs
        ~plan:(sample_plan settings ~interval p.Pipeline.original)
        cfg p.Pipeline.profile
  in
  r.Sim.ipc

let statsim_comparison ?(pool = Pool.serial) settings pipelines =
  Span.with_ "statsim" @@ fun () ->
  let cfg = Config.base in
  Pool.map pool
    (fun (p : Pipeline.t) ->
      let ro = sim_run settings cfg p.Pipeline.original in
      let rc = sim_run settings cfg p.Pipeline.clone in
      {
        ss_bench = p.Pipeline.name;
        ss_ipc_orig = ro.Sim.ipc;
        ss_ipc_clone = rc.Sim.ipc;
        ss_ipc_statsim = statsim_ipc settings p;
      })
    pipelines

let pp_statsim ppf rows =
  Format.fprintf ppf
    "Statistical simulation vs synthetic clone (base-configuration IPC)@.";
  Format.fprintf ppf "  %-14s %9s %9s %9s %9s %9s@." "benchmark" "original" "clone"
    "statsim" "cl.err" "ss.err";
  let cl_errors = ref [] and ss_errors = ref [] in
  List.iter
    (fun r ->
      let cl = Stats.abs_rel_error ~actual:r.ss_ipc_orig ~predicted:r.ss_ipc_clone in
      let ss = Stats.abs_rel_error ~actual:r.ss_ipc_orig ~predicted:r.ss_ipc_statsim in
      cl_errors := cl :: !cl_errors;
      ss_errors := ss :: !ss_errors;
      Format.fprintf ppf "  %-14s %9.3f %9.3f %9.3f %8.1f%% %8.1f%%@." r.ss_bench
        r.ss_ipc_orig r.ss_ipc_clone r.ss_ipc_statsim (100.0 *. cl) (100.0 *. ss))
    rows;
  Format.fprintf ppf "  average absolute error: clone %.2f%%, statsim %.2f%%@."
    (100.0 *. Stats.mean (Array.of_list !cl_errors))
    (100.0 *. Stats.mean (Array.of_list !ss_errors))

(* --- portable-clone comparison --- *)

type portable_row = {
  po_bench : string;
  po_asm_correlation : float;
  po_kc_correlation : float;
}

let portable_comparison ?(pool = Pool.serial) settings pipelines =
  Span.with_ "portable" @@ fun () ->
  Pool.map pool
    (fun (p : Pipeline.t) ->
      let orig_mpi = mpi_trace settings p.Pipeline.original in
      let asm_mpi = mpi_trace settings p.Pipeline.clone in
      let kc_clone =
        Pc_synth.Portable.generate_compiled ~seed:settings.seed
          ~target_dynamic:settings.clone_dynamic p.Pipeline.profile
      in
      let kc_mpi = mpi_trace settings kc_clone in
      {
        po_bench = p.Pipeline.name;
        po_asm_correlation = (study_of_mpis p.Pipeline.name orig_mpi asm_mpi).correlation;
        po_kc_correlation = (study_of_mpis p.Pipeline.name orig_mpi kc_mpi).correlation;
      })
    pipelines

let pp_portable ppf rows =
  Format.fprintf ppf
    "Portability extension: cache-study correlation, SRISC clone vs compiled Kc-source clone@.";
  Format.fprintf ppf "  %-14s %10s %10s@." "benchmark" "SRISC" "Kc-source";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s %10.3f %10.3f@." r.po_bench r.po_asm_correlation
        r.po_kc_correlation)
    rows;
  let avg f = Stats.mean (Array.of_list (List.map f rows)) in
  Format.fprintf ppf "  %-14s %10.3f %10.3f@." "average"
    (avg (fun r -> r.po_asm_correlation))
    (avg (fun r -> r.po_kc_correlation))

(* --- ablation --- *)

type ablation_row = {
  ab_bench : string;
  indep_correlation : float;
  dep_correlation : float;
}

let ablation ?(pool = Pool.serial) settings pipelines =
  Span.with_ "ablation" @@ fun () ->
  Pool.map pool
    (fun (p : Pipeline.t) ->
      let orig_mpi = mpi_trace settings p.Pipeline.original in
      let clone_mpi = mpi_trace settings p.Pipeline.clone in
      let baseline =
        Pipeline.microdep_baseline ~seed:settings.seed ~reference:Config.base p
      in
      let dep_mpi = mpi_trace settings baseline in
      let indep = (study_of_mpis p.Pipeline.name orig_mpi clone_mpi).correlation in
      let dep = (study_of_mpis p.Pipeline.name orig_mpi dep_mpi).correlation in
      { ab_bench = p.Pipeline.name; indep_correlation = indep; dep_correlation = dep })
    pipelines

let pp_ablation ppf rows =
  Format.fprintf ppf
    "Ablation: cache-study correlation, microarchitecture-independent clone vs microarchitecture-dependent baseline@.";
  Format.fprintf ppf "  %-14s %12s %12s@." "benchmark" "independent" "dependent";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s %12.3f %12.3f@." r.ab_bench r.indep_correlation
        r.dep_correlation)
    rows;
  let avg f = Stats.mean (Array.of_list (List.map f rows)) in
  Format.fprintf ppf "  %-14s %12.3f %12.3f@." "average"
    (avg (fun r -> r.indep_correlation))
    (avg (fun r -> r.dep_correlation))
