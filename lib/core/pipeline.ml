type t = {
  name : string;
  original : Pc_isa.Program.t;
  profile : Pc_profile.Profile.t;
  clone : Pc_isa.Program.t;
}

(* Profiling is the most expensive stage of the pipeline; every driver in
   one [run_experiments all] invocation shares these results.  Keyed by
   (benchmark, profile_instrs, seed) — the registry compiles each
   benchmark deterministically, so the name identifies the program. *)
let profile_store : (string * int * int, Pc_profile.Profile.t) Pc_exec.Store.t =
  Pc_exec.Store.create ~initial_size:32 ~name:"profile" ()

let clone_program ?(seed = 1) ?(profile_instrs = 1_000_000) ?(target_dynamic = 100_000)
    program =
  let profile =
    Pc_obs.Span.with_ ("profile:" ^ program.Pc_isa.Program.name) (fun () ->
        Pc_profile.Collector.profile ~max_instrs:profile_instrs program)
  in
  let options = { Pc_synth.Synth.default_options with seed; target_dynamic } in
  let clone =
    Pc_obs.Span.with_ ("synth:" ^ program.Pc_isa.Program.name) (fun () ->
        Pc_synth.Synth.generate ~options profile)
  in
  { name = program.Pc_isa.Program.name; original = program; profile; clone }

let clone_benchmark ?(seed = 1) ?(profile_instrs = 1_000_000) ?(target_dynamic = 100_000)
    name =
  Pc_obs.Span.with_ ("pipeline:" ^ name) @@ fun () ->
  let entry = Pc_workloads.Registry.find name in
  let program =
    Pc_obs.Span.with_ ("compile:" ^ name) (fun () ->
        Pc_workloads.Registry.compile entry)
  in
  let profile =
    Pc_exec.Store.find_or_compute profile_store (name, profile_instrs, seed)
      (fun () ->
        Pc_obs.Span.with_ ("profile:" ^ name) (fun () ->
            Pc_profile.Collector.profile ~max_instrs:profile_instrs program))
  in
  let options = { Pc_synth.Synth.default_options with seed; target_dynamic } in
  let clone =
    Pc_obs.Span.with_ ("synth:" ^ name) (fun () ->
        Pc_synth.Synth.generate ~options profile)
  in
  (* Deterministic trace marker: same (name, args) at every pool width,
     so it is part of the -j event-set equivalence contract. *)
  Pc_obs.Event.instant
    ("pipeline:done:" ^ name)
    [
      ("sfg_nodes", Pc_obs.Event.Int (Array.length profile.Pc_profile.Profile.nodes));
      ("clone_static", Pc_obs.Event.Int (Pc_isa.Program.length clone));
    ];
  { name = program.Pc_isa.Program.name; original = program; profile; clone }

let microdep_baseline ?(seed = 1) ~reference t =
  let targets = Pc_synth.Microdep.measure_targets reference t.original in
  Pc_synth.Microdep.generate ~seed ~profile:t.profile ~targets ()

let c_source t = Pc_synth.Render.to_c t.clone
