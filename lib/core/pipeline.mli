(** The performance-cloning pipeline (the paper's Figure 1): compile or
    accept a workload, profile it, synthesize the clone.

    This is the high-level public API a user of the library calls; the
    lower-level pieces ({!Pc_profile}, {!Pc_synth}, {!Pc_uarch}, ...) stay
    available for custom studies. *)

type t = {
  name : string;
  original : Pc_isa.Program.t;
  profile : Pc_profile.Profile.t;
  clone : Pc_isa.Program.t;
}

val clone_program :
  ?seed:int ->
  ?profile_instrs:int ->
  ?target_dynamic:int ->
  Pc_isa.Program.t ->
  t
(** Profile an SRISC binary ([profile_instrs] budget, default 1 million
    instructions) and generate its synthetic clone ([target_dynamic]
    clone length, default 100k — the clone runs longer when its streams
    need more iterations to cover their footprints). *)

val clone_benchmark :
  ?seed:int -> ?profile_instrs:int -> ?target_dynamic:int -> string -> t
(** [clone_benchmark name] runs the pipeline on a workload from
    {!Pc_workloads.Registry}.  Raises [Not_found] for unknown names.

    Profiles are memoized in {!profile_store} under
    [(name, profile_instrs, seed)]: within one process, repeated drivers
    with identical settings trigger exactly one profile collection per
    benchmark. *)

val profile_store : (string * int * int, Pc_profile.Profile.t) Pc_exec.Store.t
(** The shared profile memo store.  Exposed so tests can assert hit/miss
    behaviour and so long-running hosts can [Pc_exec.Store.clear] it. *)

val microdep_baseline :
  ?seed:int -> reference:Pc_uarch.Config.t -> t -> Pc_isa.Program.t
(** The microarchitecture-dependent baseline clone for the same workload
    (used by the ablation experiment). *)

val c_source : t -> string
(** The C-with-asm dissemination rendering of the clone. *)
