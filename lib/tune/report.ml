module Json = Pc_util.Json
module Sink = Pc_obs.Sink

let number f = if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let knobs_fields (k : Search.knobs) =
  Printf.sprintf
    "{\"block_scale\":%s,\"max_streams\":%d,\"dep_jitter\":%s,\"stride_bias\":%s,\"period_min\":%d,\"period_max\":%d}"
    (number k.Search.k_block_scale)
    k.Search.k_max_streams
    (number k.Search.k_dep_jitter)
    (number k.Search.k_stride_bias)
    k.Search.k_period_min k.Search.k_period_max

let mode_fields (mode : Fitness.mode) b =
  match mode with
  | Fitness.Mimic weights ->
    Buffer.add_string b "\"mode\":\"mimic\",\"weights\":{";
    List.iteri
      (fun i (name, w) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "%s:%s" (Sink.json_string name) (number w)))
      weights;
    Buffer.add_char b '}'
  | Fitness.Stress env ->
    Buffer.add_string b "\"mode\":\"stress\",\"envelope\":{";
    let first = ref true in
    List.iter
      (fun (name, v) ->
        match v with
        | None -> ()
        | Some t ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b (Printf.sprintf "\"%s\":%s" name (number t)))
      [
        ("ipc", env.Fitness.e_ipc);
        ("mpki", env.Fitness.e_mpki);
        ("power", env.Fitness.e_power);
      ];
    Buffer.add_char b '}'

let json ~seed ~profile_instrs ~clone_dynamic ~mode results =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"pc-tune/1\",\"seed\":%d,\"profile_instrs\":%d,\"clone_dynamic\":%d,"
       seed profile_instrs clone_dynamic);
  mode_fields mode b;
  Buffer.add_string b ",\"benchmarks\":[";
  List.iteri
    (fun i (r : Search.result) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"bench\":%s,\"budget\":%d,\"evals\":%d,\"memo_hits\":%d,\"default_fitness\":%s,\"best_fitness\":%s,\"knobs\":%s"
           (Sink.json_string r.Search.r_bench)
           r.Search.r_budget r.Search.r_evals r.Search.r_memo_hits
           (number r.Search.r_default.Fitness.fitness)
           (number r.Search.r_best.Fitness.fitness)
           (knobs_fields r.Search.r_best_knobs));
      Buffer.add_string b ",\"generations\":[";
      List.iteri
        (fun j (g : Search.generation) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"gen\":%d,\"evals\":%d,\"best\":%s}"
               g.Search.g_index g.Search.g_evals (number g.Search.g_best)))
        r.Search.r_generations;
      (* store hits/misses legitimately differ between a cold and a warm
         run — CI compares the console table, not this document *)
      Buffer.add_string b
        (Printf.sprintf "],\"store\":{\"hits\":%d,\"misses\":%d}}"
           r.Search.r_store_hits r.Search.r_store_misses))
    results;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_json path ~seed ~profile_instrs ~clone_dynamic ~mode results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (json ~seed ~profile_instrs ~clone_dynamic ~mode results);
      output_char oc '\n')

(* --- threshold gate (check_baselines tune) --- *)

let schema_of doc = Option.bind (Json.member "schema" doc) Json.to_string

let check ~thresholds ~report =
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  (match schema_of thresholds with
  | Some "pc-tune-thresholds/1" -> ()
  | s ->
    issue "thresholds: expected schema pc-tune-thresholds/1, got %s"
      (Option.value ~default:"<none>" s));
  (match schema_of report with
  | Some "pc-tune/1" -> ()
  | s ->
    issue "report: expected schema pc-tune/1, got %s"
      (Option.value ~default:"<none>" s));
  let bound key =
    match Json.member key thresholds with
    | None -> None
    | Some v -> (
      match Json.to_float v with
      | Some f when Float.is_finite f -> Some f
      | _ ->
        issue "thresholds: %s is not a finite number" key;
        None)
  in
  let max_best = bound "max_best_fitness" in
  let min_gain = bound "min_gain" in
  let min_improved =
    match Json.member "min_improved" thresholds with
    | None -> None
    | Some v -> (
      match Json.to_int v with
      | Some n when n >= 0 -> Some n
      | _ ->
        issue "thresholds: min_improved is not a non-negative integer";
        None)
  in
  let rows =
    match Option.bind (Json.member "benchmarks" report) Json.to_list with
    | Some rows -> rows
    | None -> []
  in
  if rows = [] then issue "report: no benchmarks";
  let improved = ref 0 in
  List.iter
    (fun row ->
      let bench =
        Option.value ~default:"?"
          (Option.bind (Json.member "bench" row) Json.to_string)
      in
      let value_of name =
        match Option.bind (Json.member name row) Json.to_float with
        | Some f when Float.is_finite f -> Some f
        | _ ->
          issue "%s: missing or non-finite %s" bench name;
          None
      in
      match (value_of "default_fitness", value_of "best_fitness") with
      | Some d, Some best ->
        if best < d then incr improved;
        (match max_best with
        | Some b when best > b ->
          issue "%s: best_fitness = %.6f exceeds max %.6f" bench best b
        | _ -> ());
        (match min_gain with
        | Some g when d -. best < g ->
          issue "%s: gain %.6f below min_gain %.6f" bench (d -. best) g
        | _ -> ())
      | _ -> ())
    rows;
  (match min_improved with
  | Some n when !improved < n ->
    issue "only %d/%d benchmarks improved over default knobs (need %d)"
      !improved (List.length rows) n
  | _ -> ());
  List.rev !issues

(* --- console table ---

   Deliberately free of store hit/miss counts: this table is the
   cold-vs-warm identity artefact CI diffs, and only the store's
   hit/miss split (never a winner or a score) may differ between a cold
   and a warm run. *)

let pp ppf results =
  Format.fprintf ppf "%-12s %9s %9s %7s %6s %5s  %s@." "bench" "default"
    "tuned" "gain%" "evals" "gens" "knobs";
  List.iter
    (fun (r : Search.result) ->
      let d = r.Search.r_default.Fitness.fitness in
      let best = r.Search.r_best.Fitness.fitness in
      let gain = if d > 0.0 then 100.0 *. (d -. best) /. d else 0.0 in
      let k = r.Search.r_best_knobs in
      Format.fprintf ppf
        "%-12s %9.4f %9.4f %6.1f%% %6d %5d  bs=%.2f ms=%d jit=%.2f sb=%+.2f per=[%d,%d]@."
        r.Search.r_bench d best gain r.Search.r_evals
        (List.length r.Search.r_generations)
        k.Search.k_block_scale k.Search.k_max_streams k.Search.k_dep_jitter
        k.Search.k_stride_bias k.Search.k_period_min k.Search.k_period_max)
    results
