(** Seeded successive-halving search over the clone generator's knobs.

    The tuner closes the cloning loop: generate a candidate clone for a
    knob vector, measure it ({!Fitness.measure}), and use the score to
    drive the next round of candidates.  The search is successive
    halving with local mutation: generation 0 evaluates the default
    knob vector plus seeded random draws; each following generation
    keeps the better half of the previous one and refills with single-
    knob mutations of the survivors (and random draws when mutation
    exhausts its novelty), halving the population until it reaches two
    or the evaluation budget runs out.

    Determinism is load-bearing, not best-effort:

    - every random draw (candidate creation, mutation) happens on the
      calling domain from one {!Pc_util.Rng} seeded by [seed];
    - evaluations fan out through {!Pc_exec.Pool.map}, which preserves
      input order, and candidates are deduplicated through a
      main-domain memo before fanning, so each unique
      (profile, knobs, mode, seed) key is evaluated exactly once no
      matter the pool width — winners, per-generation scores {e and}
      store hit/miss counts are byte-identical at [-j 1] and [-j N];
    - selection ties break on insertion order, never on timing.

    With an on-disk {!Tune_store}, every unique evaluation is
    content-addressed and memoised across runs: a rerun with the same
    inputs converges to the identical result from cache alone.

    Instrumented with [tune:search] / [tune:generation] spans, the
    [tune.evals] / [tune.memo_hits] counters and the
    [tune.best_fitness_bp] gauge (best fitness in basis points). *)

type knobs = {
  k_block_scale : float;
  k_max_streams : int;
  k_dep_jitter : float;
  k_stride_bias : float;
  k_period_min : int;
  k_period_max : int;
}
(** One point of the tunable surface — exactly the tuning fields of
    {!Pc_synth.Synth.options}. *)

val default_knobs : knobs
(** The neutral vector: {!Pc_synth.Synth.default_options}'s knob
    values.  Always candidate 0 of generation 0, so the search's
    baseline fitness is the untuned generator's. *)

val knobs_id : knobs -> string
(** Stable digest of a knob vector (part of the tune-store key). *)

val options_of_knobs :
  seed:int -> target_dynamic:int -> knobs -> Pc_synth.Synth.options
(** The generator options a knob vector denotes; [seed] and
    [target_dynamic] come from the run, not the search. *)

val random_knobs : Pc_util.Rng.t -> knobs
(** One uniform draw from the knob grids: block scale in
    [{0.5..2.0}] (7 points), streams in [1..12], jitter in
    [{0..0.35}] (5 points), stride bias in [{-0.5..0.5}] (5 points),
    period bounds as a pow2 pair with [2 <= min <= max <= 256].  All
    integer draws go through {!Pc_util.Rng.int} (rejection-sampled) —
    never a raw modulo, whose bias over non-power-of-two ranges like
    the 12 stream counts the distribution test would catch. *)

val mutate : Pc_util.Rng.t -> knobs -> knobs
(** A local move: pick one knob uniformly and step it to a neighbouring
    grid point (direction uniform; clamped at the grid edges, and the
    period pair stays ordered). *)

type generation = {
  g_index : int;
  g_evals : int;  (** unique evaluations this generation added *)
  g_best : float;  (** best fitness seen up to and including it *)
}

type result = {
  r_bench : string;
  r_budget : int;
  r_evals : int;  (** unique evaluations performed (cached or computed) *)
  r_memo_hits : int;
      (** candidate occurrences answered by the in-run memo (survivors
          re-entering a generation, duplicate draws) *)
  r_store_hits : int;  (** unique evaluations answered by the on-disk store *)
  r_store_misses : int;  (** unique evaluations computed fresh *)
  r_generations : generation list;
  r_default : Fitness.eval;  (** the untuned generator's score *)
  r_best : Fitness.eval;
  r_best_knobs : knobs;
}

val run :
  ?pool:Pc_exec.Pool.t ->
  ?store:Tune_store.t ->
  ?budget:int ->
  ?phases:int * Pc_isa.Program.t ->
  bench:string ->
  seed:int ->
  profile_instrs:int ->
  target_dynamic:int ->
  mode:Fitness.mode ->
  Pc_profile.Profile.t ->
  result
(** Tune one benchmark's clone against [mode].  [budget] (default 32)
    bounds unique evaluations; [pool] (default serial) fans them out —
    callers must not invoke [run] from inside a pool task themselves
    (pool batches do not nest); [store] (default none) memoises across
    runs; [phases = (interval, original_program)] turns on per-phase
    mimic scoring and participates in the store key.  [profile_instrs]
    is the measurement budget ({!Fitness.measure}'s [max_instrs]) and,
    like every argument that shapes the score, part of the store key.
    Raises [Invalid_argument] when [budget < 1]. *)
