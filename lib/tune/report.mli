(** pc-tune/1 artefacts: serialise {!Search.result}s, gate them in CI.

    The JSON document carries, per benchmark, the untuned (default-knob)
    fitness, the tuned best with its knob vector, the per-generation
    best-fitness trajectory, and the memo/store hit statistics —
    everything the cold/warm CI comparison and the threshold gate need.

    The gate reads a ["pc-tune-thresholds/1"] document
    ([baselines/tune.json]):

    {v
    { "schema": "pc-tune-thresholds/1",
      "max_best_fitness": 1.0,   // every bench: best_fitness <= this
      "min_gain": 0.0,           // every bench: default - best >= this
      "min_improved": 2 }        // at least N benches strictly improved
    v}

    As with the fidelity gate, missing or non-numeric report values are
    themselves violations — a corrupt report can never pass silently. *)

val json :
  seed:int ->
  profile_instrs:int ->
  clone_dynamic:int ->
  mode:Fitness.mode ->
  Search.result list ->
  string
(** The pc-tune/1 document (no trailing newline). *)

val write_json :
  string ->
  seed:int ->
  profile_instrs:int ->
  clone_dynamic:int ->
  mode:Fitness.mode ->
  Search.result list ->
  unit

val check : thresholds:Pc_util.Json.t -> report:Pc_util.Json.t -> string list
(** Gate a parsed pc-tune/1 report against a parsed
    pc-tune-thresholds/1 document.  One message per violation; empty
    list = pass. *)

val pp : Format.formatter -> Search.result list -> unit
(** Console table, one row per benchmark: default and best fitness,
    gain, evaluation and store statistics.  Byte-identical across pool
    widths and across cold/warm store runs — CI diffs it. *)
