(** On-disk content-addressed memo store for tuning evaluations,
    following the {!Pc_sample.Plan_cache} key and write discipline.

    One candidate evaluation — generate the clone for a knob vector,
    re-profile or re-simulate it, score it — costs orders of magnitude
    more than a disk read, and search revisits knob vectors constantly
    (across generations, reruns, and CI's cold/warm jobs).  Entries are
    keyed by a digest of the format version and every input that
    determines the score (profile digest, knob vector, generation seed,
    budgets, fitness-mode digest), so a hit can never serve a stale or
    foreign score; corrupt or cross-version entries are dropped,
    logged, and recomputed, never fatal.  Writes go through a
    temp-file-plus-atomic-rename so concurrent pool workers either see
    a complete entry or a miss.

    Instrumented with the [tune.store.hits] / [tune.store.misses] /
    [tune.store.evictions] counters. *)

type t

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/pc-tune], falling back through [$HOME/.cache] to
    the system temp dir — the same resolution as the plan cache's. *)

val create : ?max_entries:int -> string -> t
(** Open (creating if needed) the store directory.  At most
    [max_entries] (default 512) entries are retained; the eviction
    sweep after each store drops the oldest by mtime.  Raises
    [Invalid_argument] when [max_entries <= 0]. *)

val dir : t -> string

val key :
  profile_id:string ->
  knobs_id:string ->
  mode_id:string ->
  seed:int ->
  profile_instrs:int ->
  target_dynamic:int ->
  unit ->
  string
(** The content-addressed entry key: a digest over the serialised
    format version and every argument.  [profile_id] and [knobs_id] are
    digests of the profile and knob vector; [mode_id] is
    {!Fitness.mode_id} (which covers the stress envelope or mimic
    weights, and the phase interval when per-phase scoring is on). *)

val find : t -> string -> Fitness.eval option
(** [None] on absence or on a corrupt/cross-version entry (which is
    removed and warned about).  Bumps hits/misses. *)

val store : t -> string -> Fitness.eval -> unit
(** Persist one evaluation (atomic tmp+rename; failures are logged and
    non-fatal) and run the eviction sweep. *)

val find_or_compute : t -> string -> (unit -> Fitness.eval) -> Fitness.eval
