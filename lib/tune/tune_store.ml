module M = Pc_obs.Metrics

let log_src = Logs.Src.create "pc.tune_store" ~doc:"On-disk tuning-evaluation store"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Bump whenever {!Fitness.eval}'s layout (or anything reachable from
   it) changes: the version participates in every key, so entries from
   an older build are never read. *)
let format_version = 1
let magic = "pc-tune-eval/1\n"

let c_hits = M.counter "tune.store.hits"
let c_misses = M.counter "tune.store.misses"
let c_evictions = M.counter "tune.store.evictions"

type t = { dir : string; max_entries : int }

let dir t = t.dir

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "pc-tune"
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" ->
      Filename.concat (Filename.concat h ".cache") "pc-tune"
    | _ -> Filename.concat (Filename.get_temp_dir_name ()) "pc-tune")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(max_entries = 512) dir =
  if max_entries <= 0 then
    invalid_arg "Pc_tune.Tune_store.create: max_entries must be positive";
  mkdir_p dir;
  { dir; max_entries }

let key ~profile_id ~knobs_id ~mode_id ~seed ~profile_instrs ~target_dynamic ()
    =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( format_version,
            profile_id,
            knobs_id,
            mode_id,
            seed,
            profile_instrs,
            target_dynamic )
          []))

let path t key = Filename.concat t.dir (key ^ ".eval")

let entries t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".eval")
  |> List.map (fun f -> Filename.concat t.dir f)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

(* Corrupt or cross-version files (truncated writes, foreign content,
   layout drift the version key missed) are never fatal: drop the file,
   warn, and let the caller recompute. *)
let find t key : Fitness.eval option =
  let file = path t key in
  if not (Sys.file_exists file) then begin
    M.incr c_misses;
    None
  end
  else
    match
      let s = read_file file in
      let m = String.length magic in
      if String.length s < m || String.sub s 0 m <> magic then
        failwith "bad magic";
      (Marshal.from_string (String.sub s m (String.length s - m)) 0
        : Fitness.eval)
    with
    | eval ->
      M.incr c_hits;
      Some eval
    | exception exn ->
      Log.warn (fun m ->
          m "dropping corrupt tune-store entry %s (%s); recomputing" file
            (Printexc.to_string exn));
      (try Sys.remove file with Sys_error _ -> ());
      M.incr c_misses;
      None

let evict t =
  let files = entries t in
  let n = List.length files in
  if n > t.max_entries then begin
    let with_mtime =
      List.filter_map
        (fun f ->
          try Some (f, (Unix.stat f).Unix.st_mtime)
          with Unix.Unix_error _ -> None)
        files
    in
    let oldest_first =
      List.sort
        (fun (fa, ta) (fb, tb) ->
          match compare ta tb with 0 -> compare fa fb | c -> c)
        with_mtime
    in
    let drop = n - t.max_entries in
    List.iteri
      (fun i (f, _) ->
        if i < drop then begin
          (try Sys.remove f with Sys_error _ -> ());
          M.incr c_evictions;
          Log.info (fun m -> m "evicted tune-store entry %s" f)
        end)
      oldest_first
  end

let store t key (eval : Fitness.eval) =
  let file = path t key in
  (* Write-to-temp + atomic rename: concurrent readers either see the
     previous state (a miss) or the complete entry, never a torn write.
     The domain id joins the pid in the temp name because pool workers
     of one process may store different keys concurrently. *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ())
      (Domain.self () :> int)
  in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc magic;
         output_string oc (Marshal.to_string eval []));
     Sys.rename tmp file
   with exn ->
     (try Sys.remove tmp with Sys_error _ -> ());
     Log.warn (fun m ->
         m "failed to persist tune-store entry %s (%s)" file
           (Printexc.to_string exn)));
  evict t

let find_or_compute t key f =
  match find t key with
  | Some eval -> eval
  | None ->
    let eval = f () in
    store t key eval;
    eval
