module Fidelity = Pc_trace.Fidelity
module Sim = Pc_uarch.Sim
module Config = Pc_uarch.Config
module Power = Pc_power.Power
module Study = Pc_caches.Study
module Machine = Pc_funcsim.Machine

type weights = (string * float) list

let default_weights =
  [
    ("instr_mix_l1", 1.0);
    ("dep_dist_l1", 1.0);
    ("stride_agreement", 1.0);
    ("single_stride_err", 1.0);
    ("taken_rate_err", 1.0);
    ("transition_rate_err", 1.0);
    ("sfg_block_ratio", 0.5);
    ("avg_block_size_ratio", 0.5);
  ]

type envelope = {
  e_ipc : float option;
  e_mpki : float option;
  e_power : float option;
}

let envelope ?ipc ?mpki ?power () =
  let ok = function
    | None -> true
    | Some v -> Float.is_finite v && v > 0.0
  in
  if ipc = None && mpki = None && power = None then
    invalid_arg "Fitness.envelope: at least one target required";
  if not (ok ipc && ok mpki && ok power) then
    invalid_arg "Fitness.envelope: targets must be positive and finite";
  { e_ipc = ipc; e_mpki = mpki; e_power = power }

let envelope_of_string spec =
  let parse_kv acc kv =
    match acc with
    | Error _ -> acc
    | Ok (ipc, mpki, power) -> (
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "stress spec %S: expected key=value" kv)
      | Some i -> (
        let key = String.sub kv 0 i in
        let sv = String.sub kv (i + 1) (String.length kv - i - 1) in
        match float_of_string_opt sv with
        | None -> Error (Printf.sprintf "stress spec: %S is not a number" sv)
        | Some v when not (Float.is_finite v && v > 0.0) ->
          Error (Printf.sprintf "stress target %s must be positive" key)
        | Some v -> (
          match key with
          | "ipc" -> Ok (Some v, mpki, power)
          | "mpki" -> Ok (ipc, Some v, power)
          | "power" -> Ok (ipc, mpki, Some v)
          | _ -> Error (Printf.sprintf "unknown stress target %S" key))))
  in
  match
    List.fold_left parse_kv
      (Ok (None, None, None))
      (String.split_on_char ',' (String.trim spec))
  with
  | Error _ as e -> e
  | Ok (None, None, None) -> Error "stress spec names no targets"
  | Ok (ipc, mpki, power) -> Ok { e_ipc = ipc; e_mpki = mpki; e_power = power }

type mode = Mimic of weights | Stress of envelope

let mode_id mode =
  Digest.to_hex (Digest.string (Marshal.to_string mode []))

type eval = { fitness : float; components : (string * float) list }

(* Degenerate measurements (a clone whose profile is empty, a ratio of
   zero or infinity) clamp to a large finite error: candidates carrying
   them always lose a comparison but never poison [max] with NaN. *)
let clamp_err e = if Float.is_finite e then e else 1e9

let weight_of weights name =
  match List.assoc_opt name weights with Some w -> w | None -> 1.0

let error_components weights (c : Fidelity.characteristics) =
  let log_ratio r = Float.abs (Float.log r) in
  List.map
    (fun (name, v) ->
      let err =
        match name with
        | "stride_agreement" -> 1.0 -. v
        | "sfg_block_ratio" | "avg_block_size_ratio" -> log_ratio v
        | _ -> v
      in
      (name, clamp_err (weight_of weights name *. err)))
    (Fidelity.characteristic_fields c)

let is_null_row (c : Fidelity.characteristics) =
  List.for_all
    (fun (_, v) -> Float.is_nan v)
    (Fidelity.characteristic_fields c)

let of_report ?(weights = default_weights) (r : Fidelity.report) =
  let global = error_components weights r.Fidelity.c in
  let phase_rows =
    List.concat_map
      (fun (ph : Fidelity.phase) ->
        if is_null_row ph.Fidelity.p_c then []
        else
          List.map
            (fun (n, e) ->
              (Printf.sprintf "phase%d/%s" ph.Fidelity.p_index n, e))
            (error_components weights ph.Fidelity.p_c))
      r.Fidelity.phases
  in
  let components = global @ phase_rows in
  let fitness =
    List.fold_left (fun acc (_, e) -> Float.max acc e) 0.0 components
  in
  { fitness; components }

(* --- stress mode --- *)

let measure_stress ?(max_instrs = 200_000) env program =
  Pc_obs.Span.with_ "tune:stress_measure" @@ fun () ->
  let needs_sim = env.e_ipc <> None || env.e_power <> None in
  let sim =
    if needs_sim then Some (Sim.run ~max_instrs Config.base program) else None
  in
  let measured =
    List.filter_map Fun.id
      [
        Option.map
          (fun t ->
            let ipc = (Option.get sim).Sim.ipc in
            ("ipc", ipc, t))
          env.e_ipc;
        Option.map
          (fun t ->
            let r = Option.get sim in
            ("power", Power.total Config.base r, t))
          env.e_power;
        Option.map
          (fun t ->
            let feed emit =
              let m = Machine.load program in
              Machine.run ~max_instrs m (fun ev ->
                  if ev.Machine.mem_addr >= 0 then emit ev.Machine.mem_addr)
            in
            let results = Study.run_trace_onepass feed in
            let r = results.(Study.reference_index) in
            ("mpki", 1000.0 *. r.Study.mpi, t))
          env.e_mpki;
      ]
  in
  let fitness =
    List.fold_left
      (fun acc (_, m, t) -> Float.max acc (clamp_err (Float.abs (m -. t) /. t)))
      0.0 measured
  in
  { fitness; components = List.map (fun (n, m, _) -> (n, m)) measured }

let measure ?max_instrs ?phases ~bench ~original ~mode clone =
  match mode with
  | Stress env -> measure_stress ?max_instrs env clone
  | Mimic weights ->
    let report = Fidelity.measure ?max_instrs ~bench ~original clone in
    let report =
      match phases with
      | None -> report
      | Some (interval, original_program) ->
        Fidelity.measure_phases ~interval ~original:original_program ~clone
          report
    in
    of_report ~weights report
