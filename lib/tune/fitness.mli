(** Fitness: reduce a clone's measured behaviour to one scalar the
    tuner minimises (0 is perfect, smaller is better).

    Two modes close the generation loop two different ways:

    - {b Mimic} — a weighted worst case over the paper's Section-3.1
      characteristics as scored by {!Pc_trace.Fidelity}: the fitness is
      the largest weighted error across all characteristics, over the
      global report {e and} every phase row it carries, so a clone
      cannot buy a good score on one characteristic (or one phase) by
      giving up another.  This is MicroGrad's fitness shape: the
      measured characteristic error fed back to the generator.
    - {b Stress} — distance from a requested performance envelope
      instead of from an original: the clone is run through the
      detailed timing model ({!Pc_uarch.Sim.run} on the base
      configuration) for IPC and power ({!Pc_power.Power.total}), and
      through the one-pass stack-distance cache study
      ({!Pc_caches.Study.run_trace_onepass}) for MPKI at the study's
      reference configuration.  Fitness is the largest relative
      distance |measured - target| / target over the requested targets,
      so a stress clone converges toward the envelope on every axis at
      once. *)

type weights = (string * float) list
(** Per-characteristic weights, keyed by
    {!Pc_trace.Fidelity.characteristic_names}.  Characteristics absent
    from the list weigh 1.0. *)

val default_weights : weights
(** Every characteristic at weight 1.0 except the two coarse size
    ratios ([sfg_block_ratio], [avg_block_size_ratio]) at 0.5: they
    guard against degenerate clones but should not dominate the
    distribution distances the paper cares about. *)

type envelope = {
  e_ipc : float option;  (** target IPC on {!Pc_uarch.Config.base} *)
  e_mpki : float option;
      (** target misses per kilo-instruction at the cache study's
          256 B direct-mapped reference configuration *)
  e_power : float option;  (** target total power (W) on the base config *)
}
(** A stress-clone performance envelope; [None] axes are unconstrained.
    At least one axis must be set, and every set target must be positive
    and finite. *)

val envelope : ?ipc:float -> ?mpki:float -> ?power:float -> unit -> envelope
(** Smart constructor; raises [Invalid_argument] on an empty or
    non-positive envelope. *)

val envelope_of_string : string -> (envelope, string) result
(** Parse a CLI spec like ["ipc=1.2,mpki=25,power=30"]. *)

type mode = Mimic of weights | Stress of envelope

val mode_id : mode -> string
(** Stable digest of the mode (weights or envelope), part of every
    tune-store key. *)

type eval = {
  fitness : float;
  components : (string * float) list;
      (** named sub-scores behind the worst case: weighted
          characteristic errors in mimic mode ([phaseN/] prefixed for
          phase rows), measured values ([ipc], [mpki], [power]) in
          stress mode *)
}

val error_components :
  weights -> Pc_trace.Fidelity.characteristics -> (string * float) list
(** The weighted per-characteristic errors of one comparison: raw
    distances for the five error fields, [1 - agreement] for
    [stride_agreement], |ln ratio| for the two size ratios.  Non-finite
    errors (degenerate ratios) clamp to 1e9 so they always lose. *)

val of_report : ?weights:weights -> Pc_trace.Fidelity.report -> eval
(** Mimic fitness of a fidelity report: worst weighted error over the
    global characteristics and every phase row.  Phase rows whose
    clone slice was empty (all-NaN characteristics) are skipped — an
    empty phase is a length artefact, not a generator error. *)

val measure_stress :
  ?max_instrs:int -> envelope -> Pc_isa.Program.t -> eval
(** Run the clone and score it against the envelope ([max_instrs]
    bounds both the timing-model run and the cache-study trace;
    default 200_000).  The [components] carry the measured values. *)

val measure :
  ?max_instrs:int ->
  ?phases:int * Pc_isa.Program.t ->
  bench:string ->
  original:Pc_profile.Profile.t ->
  mode:mode ->
  Pc_isa.Program.t ->
  eval
(** One candidate evaluation: in mimic mode, re-profile the clone
    ({!Pc_trace.Fidelity.measure} with [max_instrs] as the budget,
    plus {!Pc_trace.Fidelity.measure_phases} when [phases = (interval,
    original_program)] is given) and score with {!of_report}; in
    stress mode, {!measure_stress}.  Pure given its arguments — the
    tune store memoises it on disk. *)
