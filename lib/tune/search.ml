module Rng = Pc_util.Rng
module Pool = Pc_exec.Pool
module Synth = Pc_synth.Synth
module M = Pc_obs.Metrics

let log_src = Logs.Src.create "pc.tune" ~doc:"Closed-loop clone knob tuning"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_evals = M.counter "tune.evals"
let c_memo_hits = M.counter "tune.memo_hits"
let c_generations = M.counter "tune.generations"
let g_best_bp = M.gauge "tune.best_fitness_bp"

type knobs = {
  k_block_scale : float;
  k_max_streams : int;
  k_dep_jitter : float;
  k_stride_bias : float;
  k_period_min : int;
  k_period_max : int;
}

let default_knobs =
  let o = Synth.default_options in
  {
    k_block_scale = o.Synth.block_scale;
    k_max_streams = o.Synth.max_streams;
    k_dep_jitter = o.Synth.dep_jitter;
    k_stride_bias = o.Synth.stride_bias;
    k_period_min = o.Synth.period_min;
    k_period_max = o.Synth.period_max;
  }

let knobs_id k = Digest.to_hex (Digest.string (Marshal.to_string k []))

let options_of_knobs ~seed ~target_dynamic k =
  {
    Synth.default_options with
    Synth.seed;
    target_dynamic;
    max_streams = k.k_max_streams;
    block_scale = k.k_block_scale;
    dep_jitter = k.k_dep_jitter;
    stride_bias = k.k_stride_bias;
    period_min = k.k_period_min;
    period_max = k.k_period_max;
  }

(* The knob grids.  Streams span 1..12 and the period exponents span
   non-power-of-two ranges, so every integer draw below goes through
   {!Rng.int}'s rejection sampling — a raw [bits mod n] would skew the
   low values of those ranges. *)
let block_scales = [| 0.5; 0.7; 0.85; 1.0; 1.2; 1.5; 2.0 |]
let jitters = [| 0.0; 0.05; 0.1; 0.2; 0.35 |]
let biases = [| -0.5; -0.25; 0.0; 0.25; 0.5 |]

let random_knobs rng =
  let k_block_scale = Rng.pick rng block_scales in
  let k_max_streams = 1 + Rng.int rng 12 in
  let k_dep_jitter = Rng.pick rng jitters in
  let k_stride_bias = Rng.pick rng biases in
  let e_min = 1 + Rng.int rng 4 in
  let e_max = e_min + Rng.int rng (9 - e_min) in
  {
    k_block_scale;
    k_max_streams;
    k_dep_jitter;
    k_stride_bias;
    k_period_min = 1 lsl e_min;
    k_period_max = 1 lsl e_max;
  }

let clamp lo hi v = max lo (min hi v)

let rec ilog2 n = if n <= 1 then 0 else 1 + ilog2 (n / 2)

(* Step to a neighbouring grid point: nearest index, then one move in a
   uniform direction (deterministically inward at the edges). *)
let grid_step rng arr v =
  let best = ref 0 in
  Array.iteri
    (fun i x ->
      if Float.abs (x -. v) < Float.abs (arr.(!best) -. v) then best := i)
    arr;
  let i = !best in
  let j =
    if i = 0 then 1
    else if i = Array.length arr - 1 then i - 1
    else if Rng.bool rng then i + 1
    else i - 1
  in
  arr.(j)

let mutate rng k =
  let dir () = if Rng.bool rng then 1 else -1 in
  match Rng.int rng 6 with
  | 0 -> { k with k_block_scale = grid_step rng block_scales k.k_block_scale }
  | 1 -> { k with k_max_streams = clamp 1 12 (k.k_max_streams + dir ()) }
  | 2 -> { k with k_dep_jitter = grid_step rng jitters k.k_dep_jitter }
  | 3 -> { k with k_stride_bias = grid_step rng biases k.k_stride_bias }
  | 4 ->
    let e_min = ilog2 k.k_period_min and e_max = ilog2 k.k_period_max in
    { k with k_period_min = 1 lsl clamp 1 e_max (e_min + dir ()) }
  | _ ->
    let e_min = ilog2 k.k_period_min and e_max = ilog2 k.k_period_max in
    { k with k_period_max = 1 lsl clamp e_min 8 (e_max + dir ()) }

type generation = { g_index : int; g_evals : int; g_best : float }

type result = {
  r_bench : string;
  r_budget : int;
  r_evals : int;
  r_memo_hits : int;
  r_store_hits : int;
  r_store_misses : int;
  r_generations : generation list;
  r_default : Fitness.eval;
  r_best : Fitness.eval;
  r_best_knobs : knobs;
}

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let run ?(pool = Pool.serial) ?store ?(budget = 32) ?phases ~bench ~seed
    ~profile_instrs ~target_dynamic ~mode profile =
  if budget < 1 then invalid_arg "Pc_tune.Search.run: budget must be positive";
  Pc_obs.Span.with_ "tune:search" @@ fun () ->
  let profile_id =
    Digest.to_hex (Digest.string (Marshal.to_string profile []))
  in
  (* The phase interval (and the original program it slices) shapes the
     mimic score, so it must shape the store key too: fold it into the
     mode digest rather than silently sharing entries with phase-less
     runs. *)
  let mode_key =
    match phases with
    | None -> Fitness.mode_id mode
    | Some (interval, prog) ->
      Digest.to_hex
        (Digest.string
           (Marshal.to_string
              ( Fitness.mode_id mode,
                interval,
                Digest.string (Marshal.to_string prog []) )
              []))
  in
  let key_of k =
    Tune_store.key ~profile_id ~knobs_id:(knobs_id k) ~mode_id:mode_key ~seed
      ~profile_instrs ~target_dynamic ()
  in
  (* All candidate creation happens here, on the calling domain, from
     this one generator: pool width never touches the random stream. *)
  let rng = Rng.create (seed lxor 0x74756e65) in
  let memo : (string, Fitness.eval) Hashtbl.t = Hashtbl.create 64 in
  let evals = ref 0 and memo_hits = ref 0 in
  let store_hits = ref 0 and store_misses = ref 0 in
  let compute k =
    let options = options_of_knobs ~seed ~target_dynamic k in
    let clone = Synth.generate ~options profile in
    Fitness.measure ~max_instrs:profile_instrs ?phases ~bench ~original:profile
      ~mode clone
  in
  (* Evaluate keys not yet in the in-run memo.  Deduplication through
     the memo means each unique key reaches the on-disk store exactly
     once per run, so hit/miss counts are deterministic at any -j. *)
  let eval_batch fresh =
    let results =
      Pool.map pool
        (fun (key, k) ->
          match store with
          | None -> (key, compute k, false)
          | Some st -> (
            match Tune_store.find st key with
            | Some e -> (key, e, true)
            | None ->
              let e = compute k in
              Tune_store.store st key e;
              (key, e, false)))
        fresh
    in
    List.iter
      (fun (key, e, hit) ->
        Hashtbl.replace memo key e;
        incr evals;
        M.incr c_evals;
        if hit then incr store_hits else incr store_misses)
      results
  in
  let build_generation ~gen_index ~pop survivors =
    let chosen = Hashtbl.create 16 in
    let out = ref [] in
    let count = ref 0 in
    let add (key, k) =
      if not (Hashtbl.mem chosen key) then begin
        Hashtbl.add chosen key ();
        out := (key, k) :: !out;
        incr count
      end
    in
    if gen_index = 0 then add (key_of default_knobs, default_knobs);
    List.iter add survivors;
    let survivor_arr = Array.of_list survivors in
    if Array.length survivor_arr > 0 then begin
      (* refill with local moves, round-robin over the survivors *)
      let attempts = ref 0 and i = ref 0 in
      while !count < pop && !attempts < pop * 8 do
        incr attempts;
        let s = snd survivor_arr.(!i mod Array.length survivor_arr) in
        incr i;
        let k = mutate rng s in
        add (key_of k, k)
      done
    end;
    (* random draws seed generation 0 and restore novelty when
       mutation keeps landing on already-chosen vectors *)
    let attempts = ref 0 in
    while !count < pop && !attempts < pop * 8 do
      incr attempts;
      let k = random_knobs rng in
      add (key_of k, k)
    done;
    List.rev !out
  in
  let p0 = max 4 (budget / 2) in
  let generations = ref [] in
  let survivors = ref [] in
  let pop = ref p0 in
  let gen_index = ref 0 in
  let best = ref None in
  let continue_ = ref true in
  while !continue_ do
    if !pop < 2 || !evals >= budget then continue_ := false
    else
      Pc_obs.Span.with_ "tune:generation" @@ fun () ->
      M.incr c_generations;
      let cands = build_generation ~gen_index:!gen_index ~pop:!pop !survivors in
      let fresh =
        List.filter (fun (key, _) -> not (Hashtbl.mem memo key)) cands
      in
      let known = List.length cands - List.length fresh in
      memo_hits := !memo_hits + known;
      M.add c_memo_hits known;
      let fresh = take (budget - !evals) fresh in
      eval_batch fresh;
      (* candidates beyond the eval budget carry no score and drop out *)
      let scored = List.filter (fun (key, _) -> Hashtbl.mem memo key) cands in
      let ranked =
        List.mapi (fun i (key, k) -> (Hashtbl.find memo key, i, key, k)) scored
        |> List.sort (fun (a, ia, _, _) (b, ib, _, _) ->
               match compare a.Fitness.fitness b.Fitness.fitness with
               | 0 -> compare ia ib
               | c -> c)
        |> List.map (fun (e, _, key, k) -> (e, key, k))
      in
      (match ranked with
      | [] -> continue_ := false
      | (e, _, k) :: _ -> (
        match !best with
        | Some (be, _) when be.Fitness.fitness <= e.Fitness.fitness -> ()
        | _ -> best := Some (e, k)));
      (match !best with
      | None -> ()
      | Some (be, _) ->
        Log.debug (fun m ->
            m "%s gen %d: %d candidates, %d fresh evals, best %.4f" bench
              !gen_index (List.length cands) (List.length fresh)
              be.Fitness.fitness);
        generations :=
          {
            g_index = !gen_index;
            g_evals = List.length fresh;
            g_best = be.Fitness.fitness;
          }
          :: !generations);
      let next_pop = !pop / 2 in
      let n_surv = max 1 (next_pop / 2) in
      survivors :=
        List.map (fun (_, key, k) -> (key, k)) (take n_surv ranked);
      pop := next_pop;
      incr gen_index
  done;
  let best_eval, best_knobs =
    match !best with
    | Some (e, k) -> (e, k)
    | None -> assert false (* generation 0 always ranks the default *)
  in
  let default_eval = Hashtbl.find memo (key_of default_knobs) in
  M.set g_best_bp (int_of_float (Float.min 1e12 (best_eval.Fitness.fitness *. 10000.)));
  Log.info (fun m ->
      m "%s: tuned %.4f -> %.4f in %d evals (%d memo, %d store hits)" bench
        default_eval.Fitness.fitness best_eval.Fitness.fitness !evals
        !memo_hits !store_hits);
  {
    r_bench = bench;
    r_budget = budget;
    r_evals = !evals;
    r_memo_hits = !memo_hits;
    r_store_hits = !store_hits;
    r_store_misses = !store_misses;
    r_generations = List.rev !generations;
    r_default = default_eval;
    r_best = best_eval;
    r_best_knobs = best_knobs;
  }
