(** Statistical simulation: estimate performance directly from a profile,
    without synthesizing a program.

    This is the technique the paper builds on (Oskin, Eeckhout, Nussbaum —
    Section 2): a short synthetic {e trace} is generated from the
    statistical profile and run through a processor timing model.  The
    trace generator here walks the statistical flow graph exactly like
    the clone generator does, but emits abstract retired-instruction
    events instead of code; the paper's microarchitecture-independent
    memory and branch models supply addresses and branch outcomes, and
    the events drive the same {!Pc_uarch.Sim} scheduler used for real
    binaries.

    The comparison with the synthetic clone is the interesting ablation:
    statistical simulation is cheaper (no code generation or functional
    execution) and typically as accurate for a fixed configuration, but
    the trace cannot be compiled, shipped, or run on real hardware — the
    dissemination property that motivates performance cloning. *)

val estimate :
  ?seed:int ->
  ?instrs:int ->
  Pc_uarch.Config.t ->
  Pc_profile.Profile.t ->
  Pc_uarch.Sim.result
(** [estimate cfg profile] synthesizes a trace of [instrs] (default
    100 000) instructions from the profile and schedules it on [cfg].
    Deterministic in [seed]. *)

val estimate_sampled :
  ?seed:int ->
  ?instrs:int ->
  plan:Pc_sample.Sample.plan ->
  Pc_uarch.Config.t ->
  Pc_profile.Profile.t ->
  Pc_uarch.Sim.result
(** Phase-aware statistical simulation: generate one short trace per
    representative in the sampling plan — seeded at the profile node that
    dominates the phase's measurement window, with the [instrs] budget
    (default 100 000) split across phases by cluster population — and
    recombine the per-phase results population-weighted via
    {!Pc_sample.Sample.recombine}.  One RNG stream drives all phases, so
    the result is deterministic in [seed] (and independent of pool
    width).  The projected [instrs]/[cycles] speak for the plan's full
    run, like the detailed sampled projection. *)
