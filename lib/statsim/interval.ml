module I = Pc_isa.Instr
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim

type estimate = {
  ipc : float;
  base_cycles : float;
  branch_cycles : float;
  memory_cycles : float;
}

(* Build the estimate from the counters of a (timing-free) run.  We reuse
   Sim.run/Sim.run_events outputs only for their event counts — the
   formula below never looks at [cycles]. *)
let of_counters (cfg : Config.t) (r : Sim.result) =
  let n = float_of_int (max 1 r.Sim.instrs) in
  let count ci = float_of_int r.Sim.class_counts.(I.class_index ci) in
  (* Effective dispatch rate: machine width derated by the long-latency
     operation mix (each divide/multiply occupies its unit). *)
  let width = float_of_int cfg.Config.issue_width in
  let lat ci = float_of_int cfg.Config.latencies.(I.class_index ci) in
  let serial_work =
    (count I.C_int_div *. lat I.C_int_div /. float_of_int cfg.Config.int_mul_units)
    +. (count I.C_fp_div *. lat I.C_fp_div /. float_of_int cfg.Config.fp_mul_units)
  in
  let base_cycles = (n /. width) +. serial_work in
  (* Branch intervals: each misprediction drains the frontend. *)
  let penalty =
    float_of_int (cfg.Config.frontend_depth + cfg.Config.mispredict_penalty + 1)
  in
  let branch_cycles = float_of_int r.Sim.mispredictions *. penalty in
  (* Memory intervals: L2 hits expose (l2 latency) cycles, memory misses
     expose the memory latency; an out-of-order window overlaps
     independent misses (simple MLP derating by the LSQ depth). *)
  let h = cfg.Config.dcache in
  let l2_lat = float_of_int h.Pc_caches.Hierarchy.l2_latency in
  let mem_lat = float_of_int h.Pc_caches.Hierarchy.mem_latency in
  let mlp =
    if cfg.Config.in_order then 1.0
    else max 1.0 (sqrt (float_of_int cfg.Config.lsq_size) /. 1.5)
  in
  let l2_hits = float_of_int (r.Sim.l1d_misses - (r.Sim.mem_accesses - r.Sim.l1i_misses)) in
  let l2_hits = max 0.0 l2_hits in
  let mem_misses = float_of_int (max 0 r.Sim.mem_accesses) in
  let memory_cycles = ((l2_hits *. l2_lat) +. (mem_misses *. mem_lat)) /. mlp in
  let cycles = base_cycles +. branch_cycles +. memory_cycles in
  { ipc = n /. cycles; base_cycles; branch_cycles; memory_cycles }

(* Count miss events cheaply: run with a degenerate timing configuration
   (the counters do not depend on the schedule, only on the event
   stream). *)
let of_program ?(max_instrs = 2_000_000) cfg program =
  let r = Sim.run ~max_instrs cfg program in
  of_counters cfg r

let of_profile ?seed ?instrs cfg profile =
  let r = Statsim.estimate ?seed ?instrs cfg profile in
  of_counters cfg r
