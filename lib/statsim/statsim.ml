module Profile = Pc_profile.Profile
module Machine = Pc_funcsim.Machine
module I = Pc_isa.Instr
module Rng = Pc_util.Rng
module Synth = Pc_synth.Synth
module Sample = Pc_sample.Sample

(* Per-stream walker state for synthetic addresses: mirrors the clone
   generator's geometry but lives in the trace generator. *)
type walker = {
  w_stride : int;
  w_length : int;
  w_spread : int;
  w_base : int;
  mutable w_pos : int; (* steps taken since last wrap *)
  mutable w_slots : int; (* ops served this round-robin cycle *)
}

(* Per-static-branch direction state (modulo counter, as in the clone). *)
type branch_state = {
  b_period : int;
  b_taken_slots : int;
  mutable b_count : int;
}

let round8_up n = (n + 7) / 8 * 8

(* --- trace generator ---

   All synthesis state lives in one record so a single RNG stream can
   drive several generation phases (sampled estimation) exactly as it
   drives one continuous trace: walkers, branch counters and the
   register-dependency ring carry over between [synth] calls. *)

type gen = {
  g_rng : Rng.t;
  g_nodes : Profile.node array;
  g_node_cdf : float array;
  g_streams : Synth.stream_info array;
  g_walkers : walker array;
  g_branch_states : (int, branch_state) Hashtbl.t;
  g_recent : int array; (* ring of synthetic destination ids *)
  g_recent_count : int ref;
  g_next_reg : int ref;
}

let make_gen ~seed (profile : Profile.t) =
  let rng = Rng.create seed in
  let nodes = profile.Profile.nodes in
  if Array.length nodes = 0 then invalid_arg "Statsim: empty profile";
  let streams = Synth.plan_streams ~max_streams:12 profile in
  let streams =
    if Array.length streams = 0 then
      [|
        {
          Synth.stride = 8;
          length = 2;
          weight = 0;
          footprint = 64;
          active_span = 64;
          region = Pc_isa.Program.data_base;
          row_stride = 0;
        };
      |]
    else streams
  in
  let walkers =
    Array.map
      (fun (s : Synth.stream_info) ->
        let stride = if s.Synth.stride = 0 then 0 else s.Synth.stride in
        let length =
          if stride = 0 then 1
          else max 2 (min 4096 (s.Synth.footprint / max 8 (abs stride)))
        in
        let spread = round8_up (max 8 (s.Synth.active_span / 8)) in
        {
          w_stride = stride;
          w_length = length;
          w_spread = spread;
          w_base = (if s.Synth.region >= 0 && s.Synth.region < max_int then s.Synth.region / 8 * 8 else Pc_isa.Program.data_base);
          w_pos = 0;
          w_slots = 0;
        })
      streams
  in
  {
    g_rng = rng;
    g_nodes = nodes;
    g_node_cdf = Profile.node_cdf profile;
    g_streams = streams;
    g_walkers = walkers;
    g_branch_states = Hashtbl.create 64;
    g_recent = Array.make 64 (-1);
    g_recent_count = ref 0;
    g_next_reg = ref 1;
  }

let branch_state_of g (node : Profile.node) (b : Profile.branch_behaviour) =
  match Hashtbl.find_opt g.g_branch_states node.Profile.id with
  | Some s -> s
  | None ->
    let t = b.Profile.transition_rate and tr = b.Profile.taken_rate in
    let s =
      if t <= 0.02 then
        { b_period = 1; b_taken_slots = (if tr >= 0.5 then 1 else 0); b_count = 0 }
      else if t >= 0.9 then { b_period = 2; b_taken_slots = 1; b_count = 0 }
      else begin
        let p =
          let raw = int_of_float (Float.round (2.0 /. t)) in
          let rec pow2 x = if x >= raw then x else pow2 (2 * x) in
          max 2 (min 256 (pow2 2))
        in
        let taken =
          max 1 (min (p - 1) (int_of_float (Float.round (tr *. float_of_int p))))
        in
        { b_period = p; b_taken_slots = taken; b_count = 0 }
      end
    in
    Hashtbl.add g.g_branch_states node.Profile.id s;
    s

let push_dest g d =
  g.g_recent.(!(g.g_recent_count) land 63) <- d;
  incr g.g_recent_count

let alloc_reg g =
  let r = !(g.g_next_reg) in
  g.g_next_reg := if !(g.g_next_reg) >= 25 then 1 else !(g.g_next_reg) + 1;
  r

let sample_distance g fractions =
  let bounds = Profile.dep_bounds in
  let u = Rng.float g.g_rng 1.0 in
  let acc = ref 0.0 in
  let bucket = ref (Array.length fractions - 1) in
  (try
     Array.iteri
       (fun i f ->
         acc := !acc +. f;
         if !acc >= u then begin
           bucket := i;
           raise Exit
         end)
       fractions
   with Exit -> ());
  if !bucket >= Array.length bounds then 33 + Rng.int g.g_rng 16
  else
    let hi = bounds.(!bucket) in
    let lo = if !bucket = 0 then 1 else bounds.(!bucket - 1) + 1 in
    lo + Rng.int g.g_rng (hi - lo + 1)

let src g fractions =
  let d = sample_distance g fractions in
  let at k =
    if k < 1 || k > min !(g.g_recent_count) 63 then -1
    else g.g_recent.((!(g.g_recent_count) - k) land 63)
  in
  let rec scan delta =
    if delta > 8 then 1 + Rng.int g.g_rng 24
    else
      let a = at (d - delta) and b = at (d + delta) in
      if a >= 1 then a else if b >= 1 then b else scan (delta + 1)
  in
  scan 0

(* SFG walking. *)
let pick_start g = Rng.sample_cdf g.g_rng g.g_node_cdf

let pick_successor g (node : Profile.node) =
  let succs = node.Profile.successors in
  if Array.length succs = 0 then None
  else begin
    let u = Rng.float g.g_rng 1.0 in
    let acc = ref 0.0 in
    let result = ref (fst succs.(Array.length succs - 1)) in
    (try
       Array.iter
         (fun (id, p) ->
           acc := !acc +. p;
           if !acc >= u then begin
             result := id;
             raise Exit
           end)
         succs
     with Exit -> ());
    Some !result
  end

(* Event synthesis. *)
let comp_classes =
  [| I.C_int_alu; I.C_int_mul; I.C_int_div; I.C_fp_alu; I.C_fp_mul; I.C_fp_div |]

(* Walk the SFG from [start], emitting abstract retired-instruction
   events until [budget] instructions have been produced; returns the
   emitted count.  Node bodies always complete, so a few extra events
   past [budget] may be emitted by the final node. *)
let synth g ~start ~budget on_event =
  let ev =
    {
      Machine.pc = 0;
      iclass = I.C_int_alu;
      mem_addr = -1;
      is_store = false;
      is_branch = false;
      taken = false;
      next_pc = 0;
      reads = [];
      writes = -1;
    }
  in
  let emitted = ref 0 in
  let current = ref start in
  while !emitted < budget do
    let node = g.g_nodes.(!current) in
    let weights =
      Array.map (fun c -> node.Profile.mix.(I.class_index c)) comp_classes
    in
    let wsum = Array.fold_left ( +. ) 0.0 weights in
    let sample_class () =
      if wsum <= 0.0 then I.C_int_alu
      else begin
        let u = Rng.float g.g_rng wsum in
        let acc = ref 0.0 in
        let result = ref I.C_int_alu in
        (try
           Array.iteri
             (fun i w ->
               acc := !acc +. w;
               if !acc >= u then begin
                 result := comp_classes.(i);
                 raise Exit
               end)
             weights
         with Exit -> ());
        !result
      end
    in
    let mem_ops = node.Profile.mem_ops in
    let n_mem = Array.length mem_ops in
    let body_slots = max 1 (node.Profile.size - 1) in
    let mem_every = if n_mem = 0 then max_int else max 1 (body_slots / n_mem) in
    let mem_taken = ref 0 in
    for slot = 0 to body_slots - 1 do
      let pc = node.Profile.start + slot in
      ev.Machine.pc <- pc;
      ev.Machine.is_branch <- false;
      ev.Machine.mem_addr <- -1;
      ev.Machine.is_store <- false;
      let use_mem = !mem_taken < n_mem && slot mod mem_every = 0 in
      if use_mem then begin
        let m = mem_ops.(!mem_taken) in
        incr mem_taken;
        let k = Synth.assign_stream g.g_streams m in
        let w = g.g_walkers.(k) in
        (* advance the walker once per full op rotation *)
        let slot_id = w.w_slots in
        w.w_slots <- w.w_slots + 1;
        let addr = w.w_base + (w.w_pos * abs w.w_stride) + (8 * (slot_id mod (max 1 (w.w_spread / 8)))) in
        if w.w_stride <> 0 && w.w_slots mod 4 = 0 then begin
          w.w_pos <- w.w_pos + 1;
          if w.w_pos >= w.w_length then w.w_pos <- 0
        end;
        ev.Machine.iclass <- (if m.Profile.is_store then I.C_store else I.C_load);
        ev.Machine.mem_addr <- addr;
        ev.Machine.is_store <- m.Profile.is_store;
        if m.Profile.is_store then begin
          ev.Machine.reads <- [ src g node.Profile.dep_fractions ];
          ev.Machine.writes <- -1
        end
        else begin
          ev.Machine.reads <- [];
          let d = alloc_reg g in
          push_dest g d;
          ev.Machine.writes <- d
        end
      end
      else begin
        let cls = sample_class () in
        ev.Machine.iclass <- cls;
        ev.Machine.reads <-
          [ src g node.Profile.dep_fractions; src g node.Profile.dep_fractions ];
        let d = alloc_reg g in
        push_dest g d;
        ev.Machine.writes <- (if I.class_index cls >= 3 && I.class_index cls <= 5 then 32 + (d mod 25) + 1 else d)
      end;
      on_event ev;
      incr emitted
    done;
    (* terminator *)
    (match node.Profile.branch with
    | Some b ->
      let bs = branch_state_of g node b in
      let taken =
        if bs.b_period <= 1 then bs.b_taken_slots = 1
        else bs.b_count mod bs.b_period < bs.b_taken_slots
      in
      bs.b_count <- bs.b_count + 1;
      ev.Machine.pc <- node.Profile.start + body_slots;
      ev.Machine.iclass <- I.C_branch;
      ev.Machine.is_branch <- true;
      ev.Machine.taken <- taken;
      ev.Machine.mem_addr <- -1;
      ev.Machine.is_store <- false;
      ev.Machine.reads <- [ src g node.Profile.dep_fractions ];
      ev.Machine.writes <- -1
    | None ->
      ev.Machine.pc <- node.Profile.start + body_slots;
      ev.Machine.iclass <- I.C_jump;
      ev.Machine.is_branch <- false;
      ev.Machine.taken <- false;
      ev.Machine.mem_addr <- -1;
      ev.Machine.is_store <- false;
      ev.Machine.reads <- [];
      ev.Machine.writes <- -1);
    on_event ev;
    incr emitted;
    current := (match pick_successor g node with Some id -> id | None -> pick_start g)
  done;
  !emitted

let estimate ?(seed = 1) ?(instrs = 100_000) cfg (profile : Profile.t) =
  let g = make_gen ~seed profile in
  Pc_uarch.Sim.run_events cfg (fun on_event ->
      synth g ~start:(pick_start g) ~budget:instrs on_event)

(* --- sampled estimation ---

   A sampling plan already localises the program's phases; instead of
   one long stationary walk, generate one short trace per phase, seeded
   at the profile node that dominates the phase's measurement window,
   and recombine the per-phase results population-weighted exactly like
   the detailed sampled projection.  The generator state (RNG stream,
   walkers, branch counters, dependency ring) carries across phases so
   the whole estimate stays deterministic in [seed]. *)

(* Most-executed measurement-window pc of a representative (warmup
   excluded); ties break towards the smaller pc so the choice is
   independent of counting order. *)
let dominant_window_pc (plan : Sample.plan) (rep : Sample.rep) =
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 256 in
  let idx = ref 0 in
  ignore
    (Sample.replay_events plan.Sample.statics rep.Sample.trace (fun ev ->
         let i = !idx in
         incr idx;
         if i >= rep.Sample.warmup then
           match Hashtbl.find_opt counts ev.Machine.pc with
           | Some r -> incr r
           | None -> Hashtbl.add counts ev.Machine.pc (ref 1)));
  let best_pc = ref (-1) and best_count = ref 0 in
  Hashtbl.iter
    (fun pc r ->
      if !r > !best_count || (!r = !best_count && (!best_pc < 0 || pc < !best_pc))
      then begin
        best_pc := pc;
        best_count := !r
      end)
    counts;
  !best_pc

(* Profile node covering a static pc ([start, start + size)); among
   covering nodes the hottest wins, ties to the smallest id.  Falls back
   to the profile's hottest node when the pc maps to no node. *)
let node_for_pc (profile : Profile.t) pc =
  let best = ref (-1) and best_count = ref (-1) in
  Array.iteri
    (fun i (n : Profile.node) ->
      let covers = pc >= n.Profile.start && pc < n.Profile.start + n.Profile.size in
      if covers && n.Profile.count > !best_count then begin
        best := i;
        best_count := n.Profile.count
      end)
    profile.Profile.nodes;
  if !best >= 0 then !best
  else begin
    let hottest = ref 0 in
    Array.iteri
      (fun i (n : Profile.node) ->
        if n.Profile.count > profile.Profile.nodes.(!hottest).Profile.count then
          hottest := i)
      profile.Profile.nodes;
    !hottest
  end

let estimate_sampled ?(seed = 1) ?(instrs = 100_000) ~(plan : Sample.plan) cfg
    (profile : Profile.t) =
  let g = make_gen ~seed profile in
  let total_w =
    max 1 (Array.fold_left (fun acc (r : Sample.rep) -> acc + r.Sample.weight) 0 plan.Sample.reps)
  in
  let phases =
    Array.map
      (fun (rep : Sample.rep) ->
        let budget =
          max 1_000
            (int_of_float
               (Float.round
                  (float_of_int instrs *. float_of_int rep.Sample.weight
                 /. float_of_int total_w)))
        in
        let start = node_for_pc profile (dominant_window_pc plan rep) in
        let r =
          Pc_uarch.Sim.run_events cfg (fun on_event ->
              synth g ~start ~budget on_event)
        in
        (rep.Sample.weight, r.Pc_uarch.Sim.instrs, r))
      plan.Sample.reps
  in
  Sample.recombine ~config_name:cfg.Pc_uarch.Config.name
    ~total_instrs:plan.Sample.total_instrs phases
