(** Interval analysis: a closed-form analytical IPC estimate.

    The third estimator family next to detailed timing simulation and
    trace-based statistical simulation (Eyerman, Eeckhout, Karkhanis &
    Smith's interval model, from the same research lineage as the paper):
    execution is a base interval of steady-state dispatch punctuated by
    miss events, so

    {v cycles = N/D + mispredicts × (depth + resolution)
              + long-latency misses (beyond the MLP overlap) × latency v}

    where [D] is the effective dispatch rate (bounded by width and by the
    ILP the dependency-distance profile allows).

    Miss-event counts come from functionally simulating the program
    against the configuration's caches and predictor (no timing) —
    hundreds of times cheaper than the full scheduler — or from a
    profile via {!of_profile}. *)

type estimate = {
  ipc : float;
  base_cycles : float;  (** dispatch-limited cycles *)
  branch_cycles : float;  (** misprediction penalty cycles *)
  memory_cycles : float;  (** exposed long-latency miss cycles *)
}

val of_counters : Pc_uarch.Config.t -> Pc_uarch.Sim.result -> estimate
(** Apply the interval formula to the event counters of an existing
    run.  Only the counter fields of the result are read — never
    [cycles] — so a timing result can be cross-checked against the
    analytical model for free, which is how sampled simulation sanity-
    checks its projections. *)

val of_program :
  ?max_instrs:int -> Pc_uarch.Config.t -> Pc_isa.Program.t -> estimate
(** Functionally simulate to count miss events under the configuration's
    caches/predictor, then apply the interval formula. *)

val of_profile :
  ?seed:int -> ?instrs:int -> Pc_uarch.Config.t -> Pc_profile.Profile.t -> estimate
(** Same formula, with the miss events counted on the synthetic trace the
    statistical simulator generates from the profile. *)
