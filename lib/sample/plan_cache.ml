module M = Pc_obs.Metrics

let log_src =
  Logs.Src.create "pc.plan_cache" ~doc:"On-disk sampling-plan cache"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Bump whenever the serialised {!Sample.plan} layout (or the packed
   replay-trace encoding it contains) changes: the version participates
   in every key, so stale plans from an older build are never read. *)
let format_version = 1
let magic = "pc-plan/1\n"

let c_hits = M.counter "plan_cache.hits"
let c_misses = M.counter "plan_cache.misses"
let c_evictions = M.counter "plan_cache.evictions"

type t = { dir : string; max_entries : int }

let dir t = t.dir

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "pc-sample"
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "pc-sample"
    | _ -> Filename.concat (Filename.get_temp_dir_name ()) "pc-sample")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(max_entries = 256) dir =
  if max_entries <= 0 then
    invalid_arg "Pc_sample.Plan_cache.create: max_entries must be positive";
  mkdir_p dir;
  { dir; max_entries }

let key ~profile_id ~interval ~seed ?(dims = 32) ?(max_k = 6) ?(restarts = 3) () =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (format_version, profile_id, interval, seed, dims, max_k, restarts)
          []))

let path t key = Filename.concat t.dir (key ^ ".plan")

let entries t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".plan")
  |> List.map (fun f -> Filename.concat t.dir f)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

(* Corrupt or cross-version files (truncated writes, foreign content,
   layout drift the version key missed) are never fatal: drop the file,
   warn, and let the caller recompute. *)
let find t key : Sample.plan option =
  let file = path t key in
  if not (Sys.file_exists file) then begin
    M.incr c_misses;
    None
  end
  else
    match
      let s = read_file file in
      let m = String.length magic in
      if String.length s < m || String.sub s 0 m <> magic then
        failwith "bad magic";
      (Marshal.from_string (String.sub s m (String.length s - m)) 0
        : Sample.plan)
    with
    | plan ->
      M.incr c_hits;
      Some plan
    | exception exn ->
      Log.warn (fun m ->
          m "dropping corrupt plan-cache entry %s (%s); recomputing" file
            (Printexc.to_string exn));
      (try Sys.remove file with Sys_error _ -> ());
      M.incr c_misses;
      None

let evict t =
  let files = entries t in
  let n = List.length files in
  if n > t.max_entries then begin
    let with_mtime =
      List.filter_map
        (fun f ->
          try Some (f, (Unix.stat f).Unix.st_mtime) with Unix.Unix_error _ -> None)
        files
    in
    let oldest_first =
      List.sort
        (fun (fa, ta) (fb, tb) ->
          match compare ta tb with 0 -> compare fa fb | c -> c)
        with_mtime
    in
    let drop = n - t.max_entries in
    List.iteri
      (fun i (f, _) ->
        if i < drop then begin
          (try Sys.remove f with Sys_error _ -> ());
          M.incr c_evictions;
          Log.info (fun m -> m "evicted plan-cache entry %s" f)
        end)
      oldest_first
  end

let store t key (plan : Sample.plan) =
  let file = path t key in
  (* Write-to-temp + atomic rename: concurrent readers either see the
     previous state (a miss) or the complete entry, never a torn write. *)
  let tmp =
    Printf.sprintf "%s.tmp.%d" file (Unix.getpid ())
  in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc magic;
         output_string oc (Marshal.to_string plan []));
     Sys.rename tmp file
   with exn ->
     (try Sys.remove tmp with Sys_error _ -> ());
     Log.warn (fun m ->
         m "failed to persist plan-cache entry %s (%s)" file
           (Printexc.to_string exn)));
  evict t

let find_or_compute t key f =
  match find t key with
  | Some plan -> plan
  | None ->
    let plan = f () in
    store t key plan;
    plan
