(** Persistent on-disk cache for sampling plans.

    Building a {!Sample.plan} costs two functional profiling passes plus
    k-means clustering — work that is identical across invocations for
    the same program and sampling parameters.  This cache persists
    marshalled plans under a content-addressed file name so repeated
    [run_experiments --sample] invocations skip plan construction
    entirely.

    Keys hash (plan-format version, profile id, interval, clustering
    seed, BBV dims, max k, restarts): any parameter or layout change
    yields a different key, so stale or cross-version plans can never be
    silently reused.  Files are written to a temporary name and renamed
    into place (atomic on POSIX), and corrupt or unreadable entries are
    dropped with a warning and recomputed — a damaged cache can slow an
    invocation down but never change its output.

    Metrics published via {!Pc_obs.Metrics}: [plan_cache.hits],
    [plan_cache.misses] and [plan_cache.evictions] counters. *)

type t

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/pc-sample], falling back to [~/.cache/pc-sample]
    and, with neither variable set, a [pc-sample] directory under the
    system temporary directory. *)

val create : ?max_entries:int -> string -> t
(** Open (creating directories as needed) a cache rooted at the given
    directory.  At most [max_entries] (default 256) plan files are kept;
    storing beyond that evicts the oldest entries by modification time.
    Raises [Invalid_argument] if [max_entries] is not positive. *)

val dir : t -> string
(** The cache's root directory. *)

val key :
  profile_id:string ->
  interval:int ->
  seed:int ->
  ?dims:int ->
  ?max_k:int ->
  ?restarts:int ->
  unit ->
  string
(** Content key for a plan: a hex digest over (plan-format version,
    [profile_id], [interval], [seed], [dims], [max_k], [restarts]).
    [profile_id] should identify the profiled program and budget — e.g.
    a structural digest of (program, max_instrs).  The optional
    clustering parameters default to {!Sample.plan}'s defaults. *)

val find : t -> string -> Sample.plan option
(** Look up a plan; counts a hit or a miss.  A corrupt, truncated or
    cross-version file is removed, logged and reported as a miss. *)

val store : t -> string -> Sample.plan -> unit
(** Persist a plan under the key (atomic write-then-rename), then apply
    the eviction policy.  I/O failures are logged, never raised. *)

val find_or_compute : t -> string -> (unit -> Sample.plan) -> Sample.plan
(** [find] falling back to computing and {!store}-ing the plan. *)
