module I = Pc_isa.Instr
module Machine = Pc_funcsim.Machine
module Rng = Pc_util.Rng
module Sim = Pc_uarch.Sim
module Config = Pc_uarch.Config
module Study = Pc_caches.Study
module Power = Pc_power.Power
module M = Pc_obs.Metrics

let log_src =
  Logs.Src.create "pc.sample" ~doc:"Sampled-simulation projection warnings"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- packed replay events ---

   The timing model reads only (pc, taken, mem_addr) dynamically; class,
   register reads and the written register are static per-pc tables
   (Machine.statics), and next_pc is never consulted.  One native int
   per retired instruction therefore replays the exact event stream:

     bit 0            taken
     bits 1..22       static pc
     bits 23..        mem_addr + 1   (0 = no memory access)

   SRISC addresses stay below the stack base (< 2^23), so the packed
   value fits comfortably in OCaml's 63-bit int. *)

let pc_bits = 22
let pc_mask = (1 lsl pc_bits) - 1

let pack ~pc ~taken ~mem_addr =
  if pc > pc_mask then
    invalid_arg "Pc_sample: static program too large for packed replay traces";
  ((mem_addr + 1) lsl (pc_bits + 1)) lor (pc lsl 1) lor (if taken then 1 else 0)

let packed_pc v = (v lsr 1) land pc_mask
let packed_taken v = v land 1 = 1
let packed_mem_addr v = (v lsr (pc_bits + 1)) - 1

type rep = {
  cluster : int;
  start : int;
  window : int;
  warmup : int;
  weight : int;
  trace : int array;
}

type plan = {
  interval : int;
  total_instrs : int;
  n_intervals : int;
  k : int;
  dims : int;
  coverage : float;
  reps : rep array;
  statics : Machine.statics;
}

(* --- metrics --- *)

let c_plans = M.counter "sample.plans"
let c_intervals = M.counter "sample.intervals"
let c_clusters = M.counter "sample.clusters"
let c_projections = M.counter "sample.projections"
let c_replayed = M.counter "sample.replayed_instrs"
let g_coverage = M.gauge "sample.coverage_bp"

(* --- BBV collection ---

   Per-interval execution-frequency vectors over static instructions,
   randomly projected into [dims] dimensions by hashing the pc
   (SimPoint projects basic-block vectors the same way; counting per
   static instruction rather than per block leader carries the same
   phase signal on SRISC's small programs).  Each vector is normalised
   by the interval length so a short final interval clusters by shape,
   not size. *)

let dim_of_pc dims pc = (pc * 0x9E3779B9) land max_int mod dims

let collect_bbvs ~dims ~interval ~max_instrs program =
  let m = Machine.load program in
  let counts = Array.make dims 0 in
  let vectors = ref [] in
  let filled = ref 0 in
  let flush () =
    if !filled > 0 then begin
      let n = float_of_int !filled in
      vectors := Array.map (fun c -> float_of_int c /. n) counts :: !vectors;
      Array.fill counts 0 dims 0;
      filled := 0
    end
  in
  let total =
    Machine.run ~max_instrs m (fun ev ->
        let d = dim_of_pc dims ev.Machine.pc in
        counts.(d) <- counts.(d) + 1;
        incr filled;
        if !filled = interval then flush ())
  in
  flush ();
  (total, Array.of_list (List.rev !vectors), Machine.statics m)

(* --- seeded k-means with BIC-style k selection --- *)

let sq_dist a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let nearest centroids v =
  let best = ref 0 and best_d = ref (sq_dist centroids.(0) v) in
  for c = 1 to Array.length centroids - 1 do
    let d = sq_dist centroids.(c) v in
    if d < !best_d then begin
      best := c;
      best_d := d
    end
  done;
  (!best, !best_d)

(* k-means++ seeding: each subsequent centroid is drawn with probability
   proportional to its squared distance from the chosen set. *)
let seed_centroids rng k vectors =
  let n = Array.length vectors in
  let centroids = Array.make k vectors.(Rng.int rng n) in
  for c = 1 to k - 1 do
    let d2 = Array.map (fun v -> snd (nearest (Array.sub centroids 0 c) v)) vectors in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i d ->
        acc := !acc +. d;
        cdf.(i) <- !acc)
      d2;
    let pick = if !acc > 0.0 then Rng.sample_cdf rng cdf else Rng.int rng n in
    centroids.(c) <- vectors.(pick)
  done;
  Array.map Array.copy centroids

let kmeans rng ~k ~iters vectors =
  let n = Array.length vectors in
  let dims = Array.length vectors.(0) in
  let centroids = seed_centroids rng k vectors in
  let assignment = Array.make n (-1) in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < iters do
    incr rounds;
    changed := false;
    Array.iteri
      (fun i v ->
        let c, _ = nearest centroids v in
        if c <> assignment.(i) then begin
          assignment.(i) <- c;
          changed := true
        end)
      vectors;
    (* Recompute centroids; an emptied cluster adopts the point farthest
       from its current centroid (deterministic, no extra draws). *)
    let sums = Array.init k (fun _ -> Array.make dims 0.0) in
    let members = Array.make k 0 in
    Array.iteri
      (fun i v ->
        let c = assignment.(i) in
        members.(c) <- members.(c) + 1;
        Array.iteri (fun d x -> sums.(c).(d) <- sums.(c).(d) +. x) v)
      vectors;
    Array.iteri
      (fun c sum ->
        if members.(c) > 0 then begin
          let inv = 1.0 /. float_of_int members.(c) in
          centroids.(c) <- Array.map (fun x -> x *. inv) sum
        end
        else begin
          let far = ref 0 and far_d = ref neg_infinity in
          Array.iteri
            (fun i v ->
              let d = sq_dist centroids.(assignment.(i)) v in
              if d > !far_d then begin
                far := i;
                far_d := d
              end)
            vectors;
          centroids.(c) <- Array.copy vectors.(!far);
          assignment.(!far) <- c;
          changed := true
        end)
      sums
  done;
  let sse = ref 0.0 in
  Array.iteri
    (fun i v -> sse := !sse +. sq_dist centroids.(assignment.(i)) v)
    vectors;
  (assignment, centroids, !sse)

(* BIC-style model selection (the SimPoint rule): score each k by a
   spherical-Gaussian log-likelihood proxy penalised by parameter count,
   then take the smallest k whose score reaches 90% of the way from the
   worst to the best.  Favouring small k keeps the replay budget low
   while still splitting genuinely distinct phases. *)
let bic_score ~n ~dims ~k sse =
  let nf = float_of_int n in
  let ll = -0.5 *. nf *. log ((sse /. nf) +. 1e-12) in
  let params = float_of_int (k * (dims + 1)) in
  ll -. (0.5 *. params *. log nf)

let choose_clustering rng ~max_k ~restarts vectors =
  let n = Array.length vectors in
  let dims = Array.length vectors.(0) in
  let max_k = max 1 (min max_k n) in
  let candidates =
    Array.init max_k (fun i ->
        let k = i + 1 in
        let best = ref None in
        for _ = 1 to restarts do
          let (_, _, sse) as r = kmeans rng ~k ~iters:50 vectors in
          match !best with
          | Some (_, _, best_sse) when best_sse <= sse -> ()
          | _ -> best := Some r
        done;
        let assignment, centroids, sse = Option.get !best in
        (k, assignment, centroids, bic_score ~n ~dims ~k sse))
  in
  let scores = Array.map (fun (_, _, _, s) -> s) candidates in
  let s_min = Array.fold_left min infinity scores in
  let s_max = Array.fold_left max neg_infinity scores in
  let threshold = s_min +. (0.9 *. (s_max -. s_min)) in
  let chosen = ref (Array.length candidates - 1) in
  (try
     Array.iteri
       (fun i (_, _, _, s) ->
         if s >= threshold then begin
           chosen := i;
           raise Exit
         end)
       candidates
   with Exit -> ());
  let k, assignment, centroids, _ = candidates.(!chosen) in
  (k, assignment, centroids)

(* --- plan construction --- *)

(* Aim for ~32 intervals over the simulation budget (enough for the
   k <= 6 clustering to see real phase structure), but never intervals
   so small that BBVs are all noise (10k floor) or so large that one
   interval swallows the whole run (1M cap). *)
let auto_interval ~max_instrs =
  if max_instrs <= 0 then
    invalid_arg "Pc_sample.auto_interval: max_instrs must be positive";
  min 1_000_000 (max 10_000 (max_instrs / 32))

let interval_length ~interval ~total i =
  min interval (total - (i * interval))

let plan ?(dims = 32) ?(max_k = 6) ?(restarts = 3) ?warmup ~seed ~interval
    ~max_instrs program =
  if interval <= 0 then invalid_arg "Pc_sample.plan: interval must be positive";
  (* Default warmup: one full interval.  The replayed representative
     starts with cold caches and predictors that the detailed run has
     long since warmed; anything shorter leaves a visible cold-start
     bias (projected CPI systematically high) once L2 is in play. *)
  let warmup_target = match warmup with Some w -> max 0 w | None -> interval in
  let total_instrs, vectors, statics =
    collect_bbvs ~dims ~interval ~max_instrs program
  in
  if total_instrs = 0 then invalid_arg "Pc_sample.plan: program retired no instructions";
  let n_intervals = Array.length vectors in
  let rng = Rng.create (seed lxor 0x53414d50 (* "SAMP" *)) in
  let k, assignment, centroids = choose_clustering rng ~max_k ~restarts vectors in
  (* Representative per cluster: the member interval nearest its
     centroid; weight is the cluster's dynamic instruction count. *)
  let rep_specs =
    Array.init k (fun c ->
        let best = ref (-1) and best_d = ref infinity in
        let weight = ref 0 in
        Array.iteri
          (fun i v ->
            if assignment.(i) = c then begin
              weight := !weight + interval_length ~interval ~total:total_instrs i;
              let d = sq_dist centroids.(c) v in
              if d < !best_d then begin
                best := i;
                best_d := d
              end
            end)
          vectors;
        let idx = !best in
        let start = idx * interval in
        let window = interval_length ~interval ~total:total_instrs idx in
        let warmup = min warmup_target start in
        (c, start, window, warmup, !weight))
  in
  (* Second functional pass: record the packed replay trace of every
     representative (warmup prefix + measurement window) in one sweep. *)
  let traces =
    Array.map (fun (_, start, window, warmup, _) ->
        (start - warmup, start + window, Array.make (warmup + window) 0, ref 0))
      rep_specs
  in
  let m = Machine.load program in
  let index = ref 0 in
  ignore
    (Machine.run ~max_instrs m (fun ev ->
         let i = !index in
         incr index;
         Array.iter
           (fun (lo, hi, buf, cursor) ->
             if i >= lo && i < hi then begin
               buf.(!cursor) <-
                 pack ~pc:ev.Machine.pc ~taken:ev.Machine.taken
                   ~mem_addr:ev.Machine.mem_addr;
               incr cursor
             end)
           traces));
  let reps =
    Array.mapi
      (fun r (c, start, window, warmup, weight) ->
        let _, _, trace, cursor = traces.(r) in
        assert (!cursor = Array.length trace);
        { cluster = c; start; window; warmup; weight; trace })
      rep_specs
  in
  let replayed =
    Array.fold_left (fun acc rep -> acc + Array.length rep.trace) 0 reps
  in
  let coverage = float_of_int replayed /. float_of_int total_instrs in
  M.incr c_plans;
  M.add c_intervals n_intervals;
  M.add c_clusters k;
  M.record_max g_coverage (int_of_float (coverage *. 10_000.0));
  (* Deterministic trace marker (plans are memoized per key upstream, so
     each fires once per plan at every pool width). *)
  Pc_obs.Event.instant
    ("sample:plan:" ^ program.Pc_isa.Program.name)
    [
      ("n_intervals", Pc_obs.Event.Int n_intervals);
      ("k", Pc_obs.Event.Int k);
      ("coverage_bp", Pc_obs.Event.Int (int_of_float (coverage *. 10_000.0)));
    ];
  { interval; total_instrs; n_intervals; k; dims; coverage; reps; statics }

(* --- replay --- *)

let replay_slice statics trace ~pos ~len on_event =
  if pos < 0 || len < 0 || pos + len > Array.length trace then
    invalid_arg "Pc_sample.replay_slice";
  let ev =
    {
      Machine.pc = 0;
      iclass = I.C_other;
      mem_addr = -1;
      is_store = false;
      is_branch = false;
      taken = false;
      next_pc = 0;
      reads = [];
      writes = -1;
    }
  in
  for i = pos to pos + len - 1 do
    let packed = trace.(i) in
    let pc = packed_pc packed in
    let cls = statics.Machine.s_classes.(pc) in
    ev.Machine.pc <- pc;
    ev.Machine.iclass <- cls;
    ev.Machine.mem_addr <- packed_mem_addr packed;
    ev.Machine.is_store <- cls = I.C_store;
    ev.Machine.is_branch <- cls = I.C_branch;
    ev.Machine.taken <- packed_taken packed;
    ev.Machine.reads <- statics.Machine.s_read_lists.(pc);
    ev.Machine.writes <- statics.Machine.s_write_ids.(pc);
    on_event ev
  done;
  len

let replay_events statics trace on_event =
  replay_slice statics trace ~pos:0 ~len:(Array.length trace) on_event

(* --- projection: timing --- *)

let replay_phases (cfg : Config.t) plan =
  Array.map
    (fun rep ->
      M.add c_replayed (Array.length rep.trace);
      ( rep,
        Sim.run_events ~measure_from:rep.warmup cfg
          (replay_events plan.statics rep.trace) ))
    plan.reps

(* A representative whose measurement window retired nothing (or whose
   window cost no commit cycles) carries no CPI signal: dividing by its
   measured counts would inject NaN/inf into every projection that sums
   over phases.  Such phases are skipped with a warning and their
   population is re-attributed pro rata to the surviving phases. *)
let phase_valid (r : Sim.result) =
  r.Sim.measured_instrs > 0 && r.Sim.measured_cycles > 0

let warn_skipped ~what ~config_name ~weight (r : Sim.result) =
  Log.warn (fun m ->
      m "%s(%s): skipping empty representative (weight %d, measured %d instrs / %d cycles)"
        what config_name weight r.Sim.measured_instrs r.Sim.measured_cycles)

let recombine ~config_name ~total_instrs phases =
  let valid, skipped =
    List.partition (fun (_, _, r) -> phase_valid r) (Array.to_list phases)
  in
  List.iter
    (fun (weight, _, r) -> warn_skipped ~what:"recombine" ~config_name ~weight r)
    skipped;
  match valid with
  | [] ->
    (* Degenerate: nothing measured anywhere.  Project IPC 1.0 with
       zeroed event counters rather than divide by zero. *)
    Log.warn (fun m ->
        m "recombine(%s): no representative measured any work; projecting IPC 1.0 with zeroed counters"
          config_name);
    M.incr c_projections;
    let cycles = max 1 total_instrs in
    {
      Sim.config_name;
      instrs = total_instrs;
      cycles;
      ipc = float_of_int total_instrs /. float_of_int cycles;
      class_counts = Array.make I.class_count 0;
      branches = 0;
      mispredictions = 0;
      l1i_accesses = 0;
      l1i_misses = 0;
      l1d_accesses = 0;
      l1d_misses = 0;
      l2_accesses = 0;
      l2_misses = 0;
      mem_accesses = 0;
      rob_high_water = 0;
      lsq_high_water = 0;
      fetch_stall_icache_cycles = 0;
      fetch_stall_mispredict_cycles = 0;
      measured_instrs = total_instrs;
      measured_cycles = cycles;
    }
  | _ ->
    (* Skipped phases hand their population to the survivors so the
       projection still speaks for [total_instrs].  With nothing skipped
       the factor is exactly 1.0 and every float below is bit-identical
       to the unguarded fold. *)
    let renorm =
      if skipped = [] then 1.0
      else
        let sum l = List.fold_left (fun acc (w, _, _) -> acc + w) 0 l in
        let valid_w = sum valid in
        if valid_w <= 0 then 1.0
        else float_of_int (valid_w + sum skipped) /. float_of_int valid_w
    in
    let runs =
      Array.of_list
        (List.map (fun (w, len, r) -> (float_of_int w *. renorm, len, r)) valid)
    in
    (* Whole-program cycles: each cluster contributes its population's
       instruction count at its representative's warmup-free CPI. *)
    let cycles_f =
      Array.fold_left
        (fun acc (wf, _, (r : Sim.result)) ->
          let cpi =
            float_of_int r.Sim.measured_cycles
            /. float_of_int (max 1 r.Sim.measured_instrs)
          in
          acc +. (wf *. cpi))
        0.0 runs
    in
    let cycles = max 1 (int_of_float (Float.round cycles_f)) in
    let total = total_instrs in
    (* Event counters scale by cluster population over replayed length —
       an approximation (the warmup share of each replay is attributed
       pro rata), good enough for the power model and cross-checks. *)
    let scaled field =
      let acc =
        Array.fold_left
          (fun acc (wf, len, r) ->
            let ratio = wf /. float_of_int (max 1 len) in
            acc +. (float_of_int (field r) *. ratio))
          0.0 runs
      in
      int_of_float (Float.round acc)
    in
    let class_counts =
      Array.init I.class_count (fun i -> scaled (fun r -> r.Sim.class_counts.(i)))
    in
    let maxed field =
      Array.fold_left (fun acc (_, _, r) -> max acc (field r)) 0 runs
    in
    M.incr c_projections;
    {
      Sim.config_name;
      instrs = total;
      cycles;
      ipc = float_of_int total /. float_of_int cycles;
      class_counts;
      branches = scaled (fun r -> r.Sim.branches);
      mispredictions = scaled (fun r -> r.Sim.mispredictions);
      l1i_accesses = scaled (fun r -> r.Sim.l1i_accesses);
      l1i_misses = scaled (fun r -> r.Sim.l1i_misses);
      l1d_accesses = scaled (fun r -> r.Sim.l1d_accesses);
      l1d_misses = scaled (fun r -> r.Sim.l1d_misses);
      l2_accesses = scaled (fun r -> r.Sim.l2_accesses);
      l2_misses = scaled (fun r -> r.Sim.l2_misses);
      mem_accesses = scaled (fun r -> r.Sim.mem_accesses);
      rob_high_water = maxed (fun r -> r.Sim.rob_high_water);
      lsq_high_water = maxed (fun r -> r.Sim.lsq_high_water);
      fetch_stall_icache_cycles = scaled (fun r -> r.Sim.fetch_stall_icache_cycles);
      fetch_stall_mispredict_cycles =
        scaled (fun r -> r.Sim.fetch_stall_mispredict_cycles);
      measured_instrs = total;
      measured_cycles = cycles;
    }

let project_of_phases plan phases =
  if Array.length phases = 0 then
    invalid_arg "Pc_sample.Sample.project_of_phases: empty phase array";
  let config_name = (snd phases.(0)).Sim.config_name in
  recombine ~config_name ~total_instrs:plan.total_instrs
    (Array.map
       (fun ((rep : rep), r) -> (rep.weight, Array.length rep.trace, r))
       phases)

let project_sim (cfg : Config.t) plan = project_of_phases plan (replay_phases cfg plan)

(* --- projection: power ---

   Power is energy per cycle, so the whole-run average is the
   cycle-weighted mean of the per-phase averages: each phase contributes
   its projected cycle share (population × representative CPI) at the
   power of its representative's measurement window.  The window view
   restricts [instrs]/[cycles] to the measured counts and pro-rata
   scales the whole-run event counters into the window — never the
   full-run counters, which would double-count the warmup prefix. *)

let window_result (r : Sim.result) =
  let mi = r.Sim.measured_instrs in
  let f = float_of_int mi /. float_of_int (max 1 r.Sim.instrs) in
  let scale c = int_of_float (Float.round (float_of_int c *. f)) in
  let cycles = max 1 r.Sim.measured_cycles in
  {
    r with
    Sim.instrs = mi;
    cycles;
    ipc = float_of_int mi /. float_of_int cycles;
    class_counts = Array.map scale r.Sim.class_counts;
    branches = scale r.Sim.branches;
    mispredictions = scale r.Sim.mispredictions;
    l1i_accesses = scale r.Sim.l1i_accesses;
    l1i_misses = scale r.Sim.l1i_misses;
    l1d_accesses = scale r.Sim.l1d_accesses;
    l1d_misses = scale r.Sim.l1d_misses;
    l2_accesses = scale r.Sim.l2_accesses;
    l2_misses = scale r.Sim.l2_misses;
    mem_accesses = scale r.Sim.mem_accesses;
    fetch_stall_icache_cycles = scale r.Sim.fetch_stall_icache_cycles;
    fetch_stall_mispredict_cycles = scale r.Sim.fetch_stall_mispredict_cycles;
    measured_instrs = mi;
    measured_cycles = cycles;
  }

let project_power_of_phases (cfg : Config.t) plan phases =
  let valid, skipped =
    List.partition (fun (_, r) -> phase_valid r) (Array.to_list phases)
  in
  List.iter
    (fun ((rep : rep), r) ->
      warn_skipped ~what:"project_power" ~config_name:cfg.Config.name
        ~weight:rep.weight r)
    skipped;
  match valid with
  | [] ->
    Log.warn (fun m ->
        m "project_power(%s): no representative measured any work; pricing the recombined projection"
          cfg.Config.name);
    Power.total cfg (project_of_phases plan phases)
  | _ ->
    let num = ref 0.0 and den = ref 0.0 in
    List.iter
      (fun ((rep : rep), (r : Sim.result)) ->
        let cpi =
          float_of_int r.Sim.measured_cycles /. float_of_int r.Sim.measured_instrs
        in
        let cyc = float_of_int rep.weight *. cpi in
        let p = Power.total cfg (window_result r) in
        num := !num +. (cyc *. p);
        den := !den +. cyc)
      valid;
    M.incr c_projections;
    if !den > 0.0 then !num /. !den
    else Power.total cfg (project_of_phases plan phases)

let project_power (cfg : Config.t) plan =
  project_power_of_phases cfg plan (replay_phases cfg plan)

(* --- projection: the 28-cache study --- *)

let feed_addrs trace ~from ~until emit =
  for i = from to until - 1 do
    let addr = packed_mem_addr trace.(i) in
    if addr >= 0 then emit addr
  done

(* Cold-start bounds.  A replayed window starts from caches warmed only
   by its short prefix; for configurations much larger than the prefix's
   reach, re-touched lines miss spuriously and a cold replay
   overestimates misses (upper bound).  Priming the caches with one
   extra pass of the window itself before measuring removes those
   misses but also the genuine compulsory ones (lower bound).  The
   midpoint of the two bounds is the projection — the classic
   cold/warm-bound estimator for sampled cache simulation. *)
let project_mpi ?(onepass = false) plan =
  let n_configs = Array.length Study.configs in
  let proj_misses = Array.make n_configs 0.0 in
  Array.iter
    (fun rep ->
      M.add c_replayed (2 * Array.length rep.trace);
      let len = Array.length rep.trace in
      let run ~prime =
        let warmup emit =
          feed_addrs rep.trace ~from:0 ~until:rep.warmup emit;
          if prime then feed_addrs rep.trace ~from:rep.warmup ~until:len emit
        in
        let feed emit =
          feed_addrs rep.trace ~from:rep.warmup ~until:len emit;
          rep.window
        in
        if onepass then Study.run_trace_onepass ~warmup feed
        else Study.run_trace ~warmup feed
      in
      let cold = run ~prime:false in
      let warm = run ~prime:true in
      let ratio = float_of_int rep.weight /. float_of_int (max 1 rep.window) in
      Array.iteri
        (fun i (c : Study.result) ->
          let est =
            0.5 *. float_of_int (c.Study.misses + warm.(i).Study.misses)
          in
          proj_misses.(i) <- proj_misses.(i) +. (est *. ratio))
        cold)
    plan.reps;
  M.incr c_projections;
  Array.map (fun misses -> misses /. float_of_int plan.total_instrs) proj_misses
