(** Sampled simulation: SimPoint-style interval selection.

    Detailed timing simulation of every dynamic instruction is the cost
    that dominates [run_experiments all]; most of those instructions sit
    in program phases the model has already seen.  This module implements
    the classic remedy (Sherwood et al.'s SimPoint, from the same
    simulation-methodology lineage as the paper): slice the dynamic
    stream into fixed-size intervals, summarise each interval by a
    basic-block-style execution-frequency vector, cluster the vectors
    with seeded k-means (random restarts, BIC-style k selection), and
    simulate in detail only one representative interval per cluster —
    preceded by a warmup prefix so caches and the branch predictor are
    primed — recombining per-cluster results into whole-program
    estimates weighted by cluster population.

    Everything is deterministic for a fixed seed: the functional
    profiling passes are exact replays, clustering draws all randomness
    from one {!Pc_util.Rng} stream, and the replay traces are recorded
    bit-exactly.  Plans are therefore safe to memoize and to compute
    from any {!Pc_exec.Pool} worker (nothing here spawns nested pool
    batches).

    Metrics published via {!Pc_obs.Metrics}: [sample.plans],
    [sample.intervals], [sample.clusters], [sample.projections],
    [sample.replayed_instrs] counters and the [sample.coverage_bp]
    high-water gauge (replayed fraction of the dynamic stream, in
    basis points). *)

type rep = {
  cluster : int;  (** cluster index in [0, k) *)
  start : int;  (** dynamic index of the first window instruction *)
  window : int;  (** measurement-window length in instructions *)
  warmup : int;  (** replayed warmup instructions before [start] *)
  weight : int;  (** dynamic instructions attributed to the cluster *)
  trace : int array;  (** packed replay events, warmup then window *)
}

type plan = {
  interval : int;  (** interval size the plan was built with *)
  total_instrs : int;  (** dynamic instructions in the full run *)
  n_intervals : int;
  k : int;  (** clusters chosen by the BIC-style rule *)
  dims : int;  (** BBV projection dimensionality *)
  coverage : float;  (** replayed fraction of the stream, incl. warmup *)
  reps : rep array;  (** one representative per cluster *)
  statics : Pc_funcsim.Machine.statics;  (** per-pc tables for replay *)
}

val auto_interval : max_instrs:int -> int
(** Interval size for a simulation budget of [max_instrs] dynamic
    instructions when the caller does not pick one:
    [min 1_000_000 (max 10_000 (max_instrs / 32))] — about 32 intervals
    per run, floored at 10k instructions (below that the basic-block
    vectors are noise) and capped at 1M (above that a single interval
    swallows the whole run).  This is what bare [--sample] and
    [PC_SAMPLE=auto] use.  Raises [Invalid_argument] when [max_instrs]
    is not positive. *)

val plan :
  ?dims:int ->
  ?max_k:int ->
  ?restarts:int ->
  ?warmup:int ->
  seed:int ->
  interval:int ->
  max_instrs:int ->
  Pc_isa.Program.t ->
  plan
(** Build a sampling plan: one functional pass collects per-interval
    vectors ([dims] dimensions, default 32), k-means over k = 1..[max_k]
    (default 6) with [restarts] random restarts (default 3) picks the
    phase clustering, and a second functional pass records each
    representative's packed replay trace.  [warmup] is the warmup prefix
    length in instructions (default one full [interval], clipped at the
    start of the stream; shorter warmups leave a cold-start bias that
    overestimates CPI).  Raises [Invalid_argument] for a non-positive
    [interval] or a program that retires no instructions. *)

val replay_phases :
  Pc_uarch.Config.t -> plan -> (rep * Pc_uarch.Sim.result) array
(** Replay every representative through the detailed timing model
    ({!Pc_uarch.Sim.run_events} with [measure_from] at the warmup
    boundary) and return the per-phase results, one per representative in
    plan order.  The phase array is the shared input of every projection
    below, so one replay pass serves the IPC and the power estimates. *)

val recombine :
  config_name:string ->
  total_instrs:int ->
  (int * int * Pc_uarch.Sim.result) array ->
  Pc_uarch.Sim.result
(** [recombine ~config_name ~total_instrs phases] folds per-phase
    [(weight, replayed_len, result)] triples into a whole-program
    estimate: cycles are the sum over phases of population × the
    representative's warmup-free CPI; event counters are scaled from each
    representative pro rata.  Phases whose measurement window retired no
    instructions or cost no cycles are skipped with a warning and their
    population re-attributed to the survivors (division-by-zero guard);
    if every phase is empty the projection degrades to IPC 1.0 with
    zeroed counters.  With no skipped phase the result is bit-identical
    to the unguarded fold. *)

val project_of_phases : plan -> (rep * Pc_uarch.Sim.result) array -> Pc_uarch.Sim.result
(** {!recombine} over an already-replayed phase array (weights and
    replay lengths taken from the plan's representatives). *)

val project_sim : Pc_uarch.Config.t -> plan -> Pc_uarch.Sim.result
(** [replay_phases] followed by [project_of_phases]: whole-program cycles
    are the sum over clusters of population × the representative's
    warmup-free CPI.  Event counters (cache misses, branches, class
    counts — the power model's inputs) are scaled from each
    representative pro rata; the [ipc]/[cycles]/[instrs] fields estimate
    the full run. *)

val project_power_of_phases :
  Pc_uarch.Config.t -> plan -> (rep * Pc_uarch.Sim.result) array -> float
(** Population-weighted power projection from replayed phases: each
    valid phase contributes its projected cycle share (population ×
    representative CPI) at the {!Pc_power.Power.total} of its
    measurement window — [measured_instrs]/[measured_cycles] with the
    whole-run event counters pro-rata restricted to the window, never
    the raw full-run counters.  Phases with an empty measurement window
    are skipped with a warning; if none are valid the recombined
    {!project_of_phases} result is priced instead. *)

val project_power : Pc_uarch.Config.t -> plan -> float
(** [replay_phases] followed by {!project_power_of_phases}. *)

val project_mpi : ?onepass:bool -> plan -> float array
(** Replay every representative's data references through the paper's
    28-configuration cache study ({!Pc_caches.Study.run_trace} with the
    warmup prefix excluded from the counts) and project whole-program
    misses per instruction for each configuration, population-weighted
    like {!project_sim}.  Each window is measured twice — once from the
    warmup prefix alone (cold bound) and once additionally primed with
    the window's own lines (warm bound) — and the projection is the
    midpoint, cancelling the cold-start overestimate that large
    configurations otherwise suffer.

    [onepass] (default [false]) prices each bound with the one-pass
    stack-distance sweep ({!Pc_caches.Study.run_trace_onepass}) instead
    of the 28 simulated caches; the projection is byte-identical either
    way, the grids just cost one traversal per bound. *)

val replay_events :
  Pc_funcsim.Machine.statics ->
  int array ->
  (Pc_funcsim.Machine.event -> unit) ->
  int
(** [replay_events statics trace on_event] reconstructs the full retired
    event stream from a packed trace and the per-pc static tables,
    invoking [on_event] once per instruction (the event record is
    reused); returns the trace length.  Exposed for tests and custom
    consumers. *)

val replay_slice :
  Pc_funcsim.Machine.statics ->
  int array ->
  pos:int ->
  len:int ->
  (Pc_funcsim.Machine.event -> unit) ->
  int
(** Like {!replay_events} but over the sub-range [\[pos, pos+len)] of
    the packed trace; returns [len].  Multi-tenant sampled scenarios
    use this to feed one arbiter quantum at a time from a tenant's
    concatenated representative traces.  Raises [Invalid_argument] on
    an out-of-bounds range. *)
