(** Wattch-style activity-based power model.

    Wattch computes per-structure dynamic energies (from CACTI-style
    capacitance models) and multiplies them by per-cycle access counts,
    with conditional clock gating ("cc3") charging idle structures 10 %
    of their maximum power.  This module reproduces that structure with
    simplified analytic energy scaling:

    - array structures (caches, predictor tables, register files, ROB,
      LSQ) have energy/access growing with the square root of capacity
      and mildly with associativity/ports,
    - functional-unit energies are fixed per operation class,
    - a clock-tree component scales with total structure capacity and the
      machine's widths.

    Absolute numbers are in arbitrary "energy units"; the paper only uses
    relative power (Figures 7 and 9, Table 3), which this model preserves:
    bigger/wider structures cost proportionally more, and activity drives
    the dynamic component. *)

type breakdown = {
  icache : float;
  dcache : float;
  l2 : float;
  bpred : float;
  rename_rob : float;
  lsq : float;
  regfile : float;
  window : float;  (** issue queue wakeup/select *)
  alu : float;
  clock : float;
  idle : float;  (** cc3 clock-gating floor: 10 % of peak for all structures *)
}

type report = {
  total : float;  (** average power in energy units / cycle *)
  per_structure : breakdown;
}

val estimate : Pc_uarch.Config.t -> Pc_uarch.Sim.result -> report
(** Average power for a timing-simulation result under its
    configuration. *)

val total : Pc_uarch.Config.t -> Pc_uarch.Sim.result -> float
(** Shorthand for [(estimate cfg r).total]. *)
