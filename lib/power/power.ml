module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Cache = Pc_caches.Cache
module Hierarchy = Pc_caches.Hierarchy
module Predictor = Pc_branch.Predictor
module I = Pc_isa.Instr

type breakdown = {
  icache : float;
  dcache : float;
  l2 : float;
  bpred : float;
  rename_rob : float;
  lsq : float;
  regfile : float;
  window : float;
  alu : float;
  clock : float;
  idle : float;
}

type report = { total : float; per_structure : breakdown }

(* --- per-access energies (arbitrary units, CACTI-like scaling) --- *)

(* Array energy grows with sqrt(capacity) — bitline/wordline length — and
   mildly with associativity (parallel tag compares). *)
let cache_access_energy (c : Cache.config) =
  let ways = float_of_int (Cache.ways c) in
  0.6 *. sqrt (float_of_int c.Cache.size_bytes /. 1024.0) *. (1.0 +. (0.25 *. sqrt (ways -. 1.0)))

let rec bpred_access_energy = function
  | Predictor.Taken | Predictor.Not_taken | Predictor.Perfect -> 0.05
  | Predictor.Bimodal entries -> 0.15 *. sqrt (float_of_int entries /. 1024.0)
  | Predictor.Gap { history_bits; tables } ->
    let counters = float_of_int (tables * (1 lsl history_bits)) in
    0.15 *. sqrt (counters /. 1024.0)
  | Predictor.Gshare { entries; _ } -> 0.15 *. sqrt (float_of_int entries /. 1024.0)
  | Predictor.Pap { history_bits; tables } ->
    let counters = float_of_int (tables * (1 lsl history_bits)) in
    0.15 *. sqrt (counters /. 1024.0)
  | Predictor.Tournament { meta_entries; a; b } ->
    (0.15 *. sqrt (float_of_int meta_entries /. 1024.0))
    +. bpred_access_energy a +. bpred_access_energy b

let rob_access_energy (cfg : Config.t) =
  0.3 *. sqrt (float_of_int cfg.Config.rob_size) *. float_of_int cfg.Config.decode_width

let lsq_access_energy (cfg : Config.t) = 0.25 *. sqrt (float_of_int cfg.Config.lsq_size)

let regfile_access_energy (cfg : Config.t) =
  (* 64 architected registers; ports scale with issue width. *)
  0.2 *. sqrt 64.0 /. 8.0 *. (1.0 +. (0.3 *. float_of_int cfg.Config.issue_width))

let window_access_energy (cfg : Config.t) =
  (* Wakeup/select over the issue window (ROB-sized here). *)
  0.35 *. sqrt (float_of_int cfg.Config.rob_size)
  *. (1.0 +. (0.3 *. float_of_int cfg.Config.issue_width))

let fu_energy ci =
  let open I in
  match class_of_index ci with
  | C_int_alu -> 0.6
  | C_int_mul -> 1.8
  | C_int_div -> 2.4
  | C_fp_alu -> 1.6
  | C_fp_mul -> 2.6
  | C_fp_div -> 3.2
  | C_load | C_store -> 0.7 (* AGU *)
  | C_branch | C_jump -> 0.4
  | C_other -> 0.1

(* Peak (per-cycle, all-active) power of each structure, used for the
   cc3-style 10% idle floor and the clock tree. *)
let peaks (cfg : Config.t) =
  let l1i = cache_access_energy cfg.Config.icache.Hierarchy.l1 in
  let l1d = cache_access_energy cfg.Config.dcache.Hierarchy.l1 in
  let l2 =
    match cfg.Config.dcache.Hierarchy.l2 with
    | Some c -> cache_access_energy c
    | None -> 0.0
  in
  let fw = float_of_int cfg.Config.fetch_width in
  let iw = float_of_int cfg.Config.issue_width in
  let fus =
    float_of_int
      (cfg.Config.int_alu_units + cfg.Config.int_mul_units + cfg.Config.fp_alu_units
     + cfg.Config.fp_mul_units)
  in
  [
    l1i *. fw;
    l1d *. float_of_int cfg.Config.mem_ports;
    l2;
    bpred_access_energy cfg.Config.bpred *. fw;
    rob_access_energy cfg;
    lsq_access_energy cfg;
    regfile_access_energy cfg *. iw;
    window_access_energy cfg;
    1.2 *. fus;
  ]

let estimate (cfg : Config.t) (r : Sim.result) =
  let cycles = float_of_int (max r.Sim.cycles 1) in
  let per_cycle count energy = float_of_int count *. energy /. cycles in
  let icache = per_cycle r.Sim.l1i_accesses (cache_access_energy cfg.Config.icache.Hierarchy.l1) in
  let dcache = per_cycle r.Sim.l1d_accesses (cache_access_energy cfg.Config.dcache.Hierarchy.l1) in
  let l2 =
    match cfg.Config.dcache.Hierarchy.l2 with
    | Some c -> per_cycle r.Sim.l2_accesses (cache_access_energy c)
    | None -> 0.0
  in
  let bpred = per_cycle r.Sim.branches (bpred_access_energy cfg.Config.bpred) in
  (* Every instruction writes the ROB at dispatch and reads it at commit. *)
  let rename_rob = per_cycle (2 * r.Sim.instrs) (rob_access_energy cfg) in
  let mem_ops =
    r.Sim.class_counts.(I.class_index I.C_load)
    + r.Sim.class_counts.(I.class_index I.C_store)
  in
  let lsq = per_cycle (2 * mem_ops) (lsq_access_energy cfg) in
  (* Two register reads and one write per instruction on average. *)
  let regfile = per_cycle (3 * r.Sim.instrs) (regfile_access_energy cfg) in
  let window = per_cycle (2 * r.Sim.instrs) (window_access_energy cfg) in
  let alu =
    let acc = ref 0.0 in
    Array.iteri
      (fun ci count -> acc := !acc +. (float_of_int count *. fu_energy ci))
      r.Sim.class_counts;
    !acc /. cycles
  in
  let peak_list = peaks cfg in
  let peak_sum = List.fold_left ( +. ) 0.0 peak_list in
  (* Clock tree: proportional to total powered capacity, always on. *)
  let clock = 0.35 *. peak_sum in
  let idle = 0.10 *. peak_sum in
  let per_structure =
    { icache; dcache; l2; bpred; rename_rob; lsq; regfile; window; alu; clock; idle }
  in
  let total =
    icache +. dcache +. l2 +. bpred +. rename_rob +. lsq +. regfile +. window +. alu
    +. clock +. idle
  in
  { total; per_structure }

let total cfg r = (estimate cfg r).total
