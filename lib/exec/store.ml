type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(initial_size = 64) () =
  {
    table = Hashtbl.create initial_size;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
  }

let find_or_compute t key compute =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
          t.hits <- t.hits + 1;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  match cached with
  | Some v -> v
  | None ->
    (* Compute outside the lock so concurrent misses on different keys
       do not serialize.  A concurrent miss on the same key computes the
       same (deterministic) value; the first insert wins. *)
    let v = compute () in
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some winner -> winner
        | None ->
          Hashtbl.add t.table key v;
          v)

let find_opt t key =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let hits t = Mutex.protect t.lock (fun () -> t.hits)
let misses t = Mutex.protect t.lock (fun () -> t.misses)
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
