type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  obs_hits : Pc_obs.Metrics.counter option;
  obs_misses : Pc_obs.Metrics.counter option;
}

type stats = { hit_count : int; miss_count : int; entries : int }

let create ?(initial_size = 64) ?name () =
  let obs kind =
    Option.map
      (fun n -> Pc_obs.Metrics.counter (Printf.sprintf "exec.store.%s.%s" n kind))
      name
  in
  {
    table = Hashtbl.create initial_size;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    obs_hits = obs "hits";
    obs_misses = obs "misses";
  }

let bump = function Some c -> Pc_obs.Metrics.incr c | None -> ()

let find_or_compute t key compute =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
          t.hits <- t.hits + 1;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  match cached with
  | Some v ->
    bump t.obs_hits;
    v
  | None ->
    bump t.obs_misses;
    (* Compute outside the lock so concurrent misses on different keys
       do not serialize.  A concurrent miss on the same key computes the
       same (deterministic) value; the first insert wins. *)
    let v = compute () in
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some winner -> winner
        | None ->
          Hashtbl.add t.table key v;
          v)

let find_opt t key =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let hits t = Mutex.protect t.lock (fun () -> t.hits)
let misses t = Mutex.protect t.lock (fun () -> t.misses)
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let stats t =
  Mutex.protect t.lock (fun () ->
      { hit_count = t.hits; miss_count = t.misses; entries = Hashtbl.length t.table })

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
