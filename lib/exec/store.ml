type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  obs_hits : Pc_obs.Metrics.counter option;
  obs_misses : Pc_obs.Metrics.counter option;
  flow_name : string option;
}

type stats = { hit_count : int; miss_count : int; entries : int }

let create ?(initial_size = 64) ?name () =
  let obs kind =
    Option.map
      (fun n -> Pc_obs.Metrics.counter (Printf.sprintf "exec.store.%s.%s" n kind))
      name
  in
  {
    table = Hashtbl.create initial_size;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    obs_hits = obs "hits";
    obs_misses = obs "misses";
    flow_name = Option.map (Printf.sprintf "store:%s") name;
  }

let bump = function Some c -> Pc_obs.Metrics.incr c | None -> ()

(* Async-flow arrows (named stores only): the put that first inserts a
   key opens the flow, every later get steps it, so a consumer's span is
   visually tied to the producing task's span in trace timelines even
   when a pool moved them to different domains.  Ids hash the store name
   and key — deterministic data — so the flow-event set is identical at
   any pool width. *)
let flow t phase key =
  match t.flow_name with
  | None -> ()
  | Some name ->
    Pc_obs.Event.flow phase name (Pc_obs.Event.flow_id_of_key (name, key))

let find_or_compute t key compute =
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
          t.hits <- t.hits + 1;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          None)
  in
  match cached with
  | Some v ->
    bump t.obs_hits;
    flow t Pc_obs.Event.Flow_step key;
    v
  | None ->
    bump t.obs_misses;
    (* Compute outside the lock so concurrent misses on different keys
       do not serialize.  A concurrent miss on the same key computes the
       same (deterministic) value; the first insert wins. *)
    let v = compute () in
    let v, won =
      Mutex.protect t.lock (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some winner -> (winner, false)
          | None ->
            Hashtbl.add t.table key v;
            (v, true))
    in
    (* Only the winning insert opens the flow: a lost same-key race must
       not add a second Flow_start that -j1 runs would never emit. *)
    if won then flow t Pc_obs.Event.Flow_start key
    else flow t Pc_obs.Event.Flow_step key;
    v

let find_opt t key =
  let v = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key) in
  (match v with
  | Some _ -> flow t Pc_obs.Event.Flow_step key
  | None -> ());
  v

let hits t = Mutex.protect t.lock (fun () -> t.hits)
let misses t = Mutex.protect t.lock (fun () -> t.misses)
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let stats t =
  Mutex.protect t.lock (fun () ->
      { hit_count = t.hits; miss_count = t.misses; entries = Hashtbl.length t.table })

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
