(** Deterministic domain-based worker pool.

    Experiment drivers fan per-benchmark and per-configuration work out
    through a pool.  Results are always returned in input order, and a
    task sees no state from any other task, so for the pure, seeded
    computations of this code base [map pool f xs] is observably
    identical to [List.map f xs] at every pool width — the
    determinism-under-parallelism invariant the test suite checks.

    A pool is a lightweight value (no resident worker domains): each
    batch spawns up to [num_domains - 1] helper domains, the calling
    domain participates too, and everything is joined before [map]
    returns.  If [Domain.spawn] fails (domain limit reached), the batch
    gracefully degrades to fewer workers, down to fully serial.

    Observability: every task bumps the [exec.pool.tasks] counter and,
    when {!Pc_obs.Metrics.enabled}, feeds the [exec.pool.task_seconds]
    histogram; worker domains adopt the calling domain's open
    {!Pc_obs.Span}, so spans recorded inside tasks attribute to the
    pipeline stage that fanned them out.  None of this affects task
    results or ordering. *)

type t

val create : num_domains:int -> t
(** [create ~num_domains] returns a pool running batches on at most
    [num_domains] domains (including the calling domain).  Raises
    [Invalid_argument] when [num_domains < 1]. *)

val serial : t
(** A pool with [num_domains = 1]: [map serial] runs every task in the
    calling domain, with the same exception semantics as a parallel
    batch. *)

val num_domains : t -> int

val default_jobs : unit -> int
(** The [PC_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()].  Used as the default
    for [run_experiments -j]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], in parallel
    across the pool's domains, and returns the results in input order.

    Exceptions raised by [f] are captured per task; the whole batch
    still drains (every task runs), and afterwards the exception of the
    earliest failing input is re-raised with its backtrace — so the
    raised exception does not depend on scheduling.

    Calling [map] from inside a pool task raises [Invalid_argument]:
    nested batches could deadlock the domain budget and are always a
    layering bug in this code base. *)

val map_reduce : t -> f:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map_reduce pool ~f ~reduce ~init xs] maps [f] over [xs] through the
    pool, then folds [reduce] over the results in input order. *)
