type t = { num_domains : int }

let create ~num_domains =
  if num_domains < 1 then
    invalid_arg "Pc_exec.Pool.create: num_domains must be at least 1";
  { num_domains }

let serial = { num_domains = 1 }
let num_domains t = t.num_domains

let default_jobs () =
  match Option.bind (Sys.getenv_opt "PC_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> Domain.recommended_domain_count ()

(* True while the current domain is executing batch tasks, so tasks
   cannot start a second batch of their own. *)
let inside_batch = Domain.DLS.new_key (fun () -> false)

type 'b outcome = ('b, exn * Printexc.raw_backtrace) result

let c_tasks = Pc_obs.Metrics.counter "exec.pool.tasks"
let c_batches = Pc_obs.Metrics.counter "exec.pool.batches"
let h_task_seconds = Pc_obs.Metrics.histogram "exec.pool.task_seconds"

(* Batches are initiated serially from the spawning domain (nested maps
   are rejected), so this sequence — and with it every task's flow id —
   is deterministic for a given program at any pool width. *)
let batch_seq = Atomic.make 0
let task_flow_id ~batch i = Pc_obs.Event.flow_id_of_key ("pool:task", batch, i)

(* Count every task; time it only when observability is on (the timing
   is two clock reads per task — cheap, but pointless when disabled). *)
let run_task task =
  Pc_obs.Metrics.incr c_tasks;
  if not (Pc_obs.Metrics.enabled ()) then task ()
  else begin
    let t0 = Pc_obs.Span.now_s () in
    match task () with
    | v ->
      Pc_obs.Metrics.observe h_task_seconds (Pc_obs.Span.now_s () -. t0);
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Pc_obs.Metrics.observe h_task_seconds (Pc_obs.Span.now_s () -. t0);
      Printexc.raise_with_backtrace e bt
  end

(* Run every task, even if some raise: per-task capture, then [map]
   re-raises after the batch has drained.  Tasks are claimed through an
   atomic counter; each result slot is written by exactly one domain and
   read only after every worker has been joined. *)
let run_batch pool tasks =
  let n = Array.length tasks in
  let results : 'b outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  Pc_obs.Metrics.incr c_batches;
  let batch = Atomic.fetch_and_add batch_seq 1 in
  (* Hand-off arrows: the spawning domain opens one flow per task; the
     domain that claims the task terminates it.  In trace timelines the
     arrow ties the dispatching span to the worker-lane task span. *)
  if Pc_obs.Event.collecting () then
    for i = 0 to n - 1 do
      Pc_obs.Event.flow Pc_obs.Event.Flow_start "pool:task"
        (task_flow_id ~batch i)
    done;
  (* The calling domain's open span adopts every task's spans, so
     per-stage timings survive fan-out to worker domains. *)
  let span_ctx = Pc_obs.Span.current_ctx () in
  let work () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        Pc_obs.Event.flow Pc_obs.Event.Flow_end "pool:task"
          (task_flow_id ~batch i);
        results.(i) <-
          Some
            (match run_task tasks.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ()));
        loop ()
      end
    in
    loop ()
  in
  (* Workers keep a stable per-slot event track (worker [i] → track [i])
     so trace timelines show one lane per pool slot across batches, and
     flush their domain-local event buffers before terminating — the
     "merge at pool joins" half of the {!Pc_obs.Event} contract. *)
  let worker i () =
    Domain.DLS.set inside_batch true;
    Pc_obs.Event.set_track i;
    Fun.protect
      ~finally:Pc_obs.Event.flush_local
      (fun () -> Pc_obs.Span.with_ctx span_ctx work)
  in
  let helpers =
    let wanted = max 0 (min (pool.num_domains - 1) (n - 1)) in
    let rec spawn k acc =
      if k = 0 then acc
      else
        match Domain.spawn (worker k) with
        | d -> spawn (k - 1) (d :: acc)
        | exception _ -> acc (* no more domains: degrade towards serial *)
    in
    spawn wanted []
  in
  Domain.DLS.set inside_batch true;
  work ();
  Domain.DLS.set inside_batch false;
  List.iter Domain.join helpers;
  Pc_obs.Event.flush_local ();
  Array.map (function Some r -> r | None -> assert false) results

let map pool f xs =
  if Domain.DLS.get inside_batch then
    invalid_arg "Pc_exec.Pool.map: nested map inside a pool task";
  match xs with
  | [] -> []
  | xs ->
    let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
    let results = run_batch pool tasks in
    let first_error = ref None in
    Array.iter
      (fun r ->
        match (r, !first_error) with
        | Error e, None -> first_error := Some e
        | _ -> ())
      results;
    (match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Ok v -> v | Error _ -> assert false) results)

let map_reduce pool ~f ~reduce ~init xs =
  List.fold_left (fun acc v -> reduce acc v) init (map pool f xs)
