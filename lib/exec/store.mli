(** Keyed, domain-safe memoization of expensive artefacts.

    One [run_experiments all] invocation runs many drivers over the same
    pipelines; without memoization each driver re-profiles benchmarks and
    re-simulates traces that an earlier driver already computed.  A store
    caches those results under an explicit key — profiles under
    [(benchmark, profile_instrs, seed)], simulation results under a
    digest of [(program, config, budget)] — so nothing is computed twice.

    Stores are safe to share across {!Pool} workers.  When two domains
    miss on the same key concurrently, both compute, the first insert
    wins and every caller observes that single stored value; because all
    computations in this code base are deterministic, the racing values
    are identical and results do not depend on scheduling.  The
    hit/miss counters count lookups, not insertions. *)

type ('k, 'v) t

val create : ?initial_size:int -> ?name:string -> unit -> ('k, 'v) t
(** [name], when given, registers the store with {!Pc_obs.Metrics}: each
    lookup also bumps the global counters [exec.store.<name>.hits] /
    [exec.store.<name>.misses], so memo effectiveness shows up in every
    metrics report. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute t key compute] returns the cached value for [key],
    or runs [compute ()] (outside the store's lock) and caches it.  If
    [compute] raises, nothing is cached and the exception propagates. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup without computing; does not touch the hit/miss counters. *)

val hits : ('k, 'v) t -> int
(** Number of [find_or_compute] calls answered from the cache. *)

val misses : ('k, 'v) t -> int
(** Number of [find_or_compute] calls that had to compute. *)

val length : ('k, 'v) t -> int
(** Number of cached entries. *)

type stats = { hit_count : int; miss_count : int; entries : int }

val stats : ('k, 'v) t -> stats
(** One consistent reading of all three counters (taken under the
    store's lock, unlike three separate accessor calls). *)

val clear : ('k, 'v) t -> unit
(** Drop all entries and reset both counters. *)
