type config =
  | Taken
  | Not_taken
  | Bimodal of int
  | Gap of { history_bits : int; tables : int }
  | Gshare of { history_bits : int; entries : int }
  | Pap of { history_bits : int; tables : int }
  | Tournament of { meta_entries : int; a : config; b : config }
  | Perfect

let base_gap = Gap { history_bits = 8; tables = 256 }

let rec config_name = function
  | Taken -> "taken"
  | Not_taken -> "not-taken"
  | Bimodal n -> Printf.sprintf "bimodal-%d" n
  | Gap { history_bits; tables } -> Printf.sprintf "gap-h%d-t%d" history_bits tables
  | Gshare { history_bits; entries } ->
    Printf.sprintf "gshare-h%d-e%d" history_bits entries
  | Pap { history_bits; tables } -> Printf.sprintf "pap-h%d-t%d" history_bits tables
  | Tournament { a; b; _ } ->
    Printf.sprintf "tournament(%s,%s)" (config_name a) (config_name b)
  | Perfect -> "perfect"

let is_pow2 n = n > 0 && n land (n - 1) = 0

type state =
  | S_static of bool
  | S_bimodal of { mask : int; counters : int array }
  | S_gap of {
      table_mask : int;
      hist_mask : int;
      mutable history : int;
      counters : int array;  (** [table * hist_entries + history] *)
      hist_entries : int;
    }
  | S_gshare of { mask : int; hist_mask : int; mutable history : int; counters : int array }
  | S_pap of {
      table_mask : int;
      hist_mask : int;
      histories : int array;  (** per-address history registers *)
      counters : int array;
      hist_entries : int;
    }
  | S_tournament of { meta_mask : int; meta : int array; a : t; b : t }
  | S_perfect

and t = { state : state; mutable lookups : int; mutable mispredictions : int }

let rec create cfg =
  let state =
    match cfg with
    | Taken -> S_static true
    | Not_taken -> S_static false
    | Bimodal entries ->
      if not (is_pow2 entries) then
        invalid_arg "Predictor.create: bimodal entries must be a power of two";
      (* Counters start weakly taken (2), matching common practice. *)
      S_bimodal { mask = entries - 1; counters = Array.make entries 2 }
    | Gap { history_bits; tables } ->
      if history_bits < 1 || history_bits > 20 then
        invalid_arg "Predictor.create: history bits out of range";
      if not (is_pow2 tables) then
        invalid_arg "Predictor.create: table count must be a power of two";
      let hist_entries = 1 lsl history_bits in
      S_gap
        {
          table_mask = tables - 1;
          hist_mask = hist_entries - 1;
          history = 0;
          counters = Array.make (tables * hist_entries) 2;
          hist_entries;
        }
    | Gshare { history_bits; entries } ->
      if not (is_pow2 entries) then
        invalid_arg "Predictor.create: gshare entries must be a power of two";
      if history_bits < 1 || history_bits > 24 then
        invalid_arg "Predictor.create: history bits out of range";
      S_gshare
        {
          mask = entries - 1;
          hist_mask = (1 lsl history_bits) - 1;
          history = 0;
          counters = Array.make entries 2;
        }
    | Pap { history_bits; tables } ->
      if history_bits < 1 || history_bits > 16 then
        invalid_arg "Predictor.create: history bits out of range";
      if not (is_pow2 tables) then
        invalid_arg "Predictor.create: table count must be a power of two";
      let hist_entries = 1 lsl history_bits in
      S_pap
        {
          table_mask = tables - 1;
          hist_mask = hist_entries - 1;
          histories = Array.make tables 0;
          counters = Array.make (tables * hist_entries) 2;
          hist_entries;
        }
    | Tournament { meta_entries; a; b } ->
      if not (is_pow2 meta_entries) then
        invalid_arg "Predictor.create: meta entries must be a power of two";
      S_tournament
        { meta_mask = meta_entries - 1; meta = Array.make meta_entries 2; a = create a; b = create b }
    | Perfect -> S_perfect
  in
  { state; lookups = 0; mispredictions = 0 }

let counter_index state pc =
  match state with
  | S_bimodal { mask; _ } -> pc land mask
  | S_gap g -> ((pc land g.table_mask) * g.hist_entries) + (g.history land g.hist_mask)
  | S_gshare g -> (pc lxor g.history) land g.mask
  | S_pap p ->
    let t = pc land p.table_mask in
    (t * p.hist_entries) + (p.histories.(t) land p.hist_mask)
  | S_static _ | S_perfect | S_tournament _ -> 0

let rec predict t ~pc =
  match t.state with
  | S_static d -> d
  | S_perfect -> true
  | S_bimodal { counters; _ } as s -> counters.(counter_index s pc) >= 2
  | S_gap g as s -> g.counters.(counter_index s pc) >= 2
  | S_gshare g as s -> g.counters.(counter_index s pc) >= 2
  | S_pap p as s -> p.counters.(counter_index s pc) >= 2
  | S_tournament tn ->
    if tn.meta.(pc land tn.meta_mask) >= 2 then predict tn.b ~pc else predict tn.a ~pc

let bump counters i taken =
  counters.(i) <- (if taken then min 3 (counters.(i) + 1) else max 0 (counters.(i) - 1))

let rec update t ~pc ~taken =
  match t.state with
  | S_static _ | S_perfect -> ()
  | S_bimodal { counters; _ } as s -> bump counters (counter_index s pc) taken
  | S_gap g as s ->
    bump g.counters (counter_index s pc) taken;
    g.history <- ((g.history lsl 1) lor if taken then 1 else 0) land g.hist_mask
  | S_gshare g as s ->
    bump g.counters (counter_index s pc) taken;
    g.history <- ((g.history lsl 1) lor if taken then 1 else 0) land g.hist_mask
  | S_pap p as s ->
    bump p.counters (counter_index s pc) taken;
    let tbl = pc land p.table_mask in
    p.histories.(tbl) <-
      ((p.histories.(tbl) lsl 1) lor if taken then 1 else 0) land p.hist_mask
  | S_tournament tn ->
    let ca = predict tn.a ~pc = taken and cb = predict tn.b ~pc = taken in
    let i = pc land tn.meta_mask in
    (* train the chooser towards the component that was right *)
    if cb && not ca then tn.meta.(i) <- min 3 (tn.meta.(i) + 1)
    else if ca && not cb then tn.meta.(i) <- max 0 (tn.meta.(i) - 1);
    update tn.a ~pc ~taken;
    update tn.b ~pc ~taken

let observe t ~pc ~taken =
  t.lookups <- t.lookups + 1;
  let correct =
    match t.state with S_perfect -> true | _ -> predict t ~pc = taken
  in
  if not correct then t.mispredictions <- t.mispredictions + 1;
  update t ~pc ~taken;
  correct

let lookups t = t.lookups
let mispredictions t = t.mispredictions

let misprediction_rate t =
  if t.lookups = 0 then 0.0
  else float_of_int t.mispredictions /. float_of_int t.lookups

let publish_metrics t ~prefix =
  let c suffix v = Pc_obs.Metrics.add (Pc_obs.Metrics.counter (prefix ^ suffix)) v in
  c ".lookups" t.lookups;
  c ".mispredicts" t.mispredictions
