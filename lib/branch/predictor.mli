(** Conditional-branch direction predictors.

    The paper's base configuration uses a 2-level GAp predictor; design
    change 4 swaps it for always-not-taken.  Bimodal and perfect
    predictors are provided for ablations and tests.

    Only conditional-branch direction is modelled: unconditional jumps,
    calls and returns are treated as perfectly predicted by the timing
    model (SRISC has no indirect branches other than returns, and the
    paper's experiments never vary BTB/RAS parameters). *)

type config =
  | Taken  (** static: always predict taken *)
  | Not_taken  (** static: always predict not-taken *)
  | Bimodal of int  (** table of 2-bit counters; parameter = entry count (power of two) *)
  | Gap of { history_bits : int; tables : int }
      (** 2-level GAp: a global history register indexes one of [tables]
          per-address pattern-history tables of 2-bit counters *)
  | Gshare of { history_bits : int; entries : int }
      (** global history XOR-folded with the pc into one counter table *)
  | Pap of { history_bits : int; tables : int }
      (** 2-level PAp: per-address history registers index per-address
          pattern tables (captures local periodic patterns) *)
  | Tournament of { meta_entries : int; a : config; b : config }
      (** two component predictors arbitrated by a 2-bit chooser table;
          the chooser trains towards whichever component was correct *)
  | Perfect  (** oracle *)

val base_gap : config
(** The base configuration's predictor: 8 bits of global history over 256
    per-address tables (64 K counters). *)

val config_name : config -> string

type t

val create : config -> t

val predict : t -> pc:int -> bool
(** Predicted direction for the branch at [pc] (pure; no state change). *)

val update : t -> pc:int -> taken:bool -> unit
(** Train with the resolved outcome. *)

val observe : t -> pc:int -> taken:bool -> bool
(** [predict] then [update]; returns [true] when the prediction was
    correct.  [Perfect] is always correct. *)

val lookups : t -> int
val mispredictions : t -> int

val misprediction_rate : t -> float
(** Mispredictions per lookup; [0] when no lookups. *)

val publish_metrics : t -> prefix:string -> unit
(** Add this predictor's lifetime [lookups] / [mispredictions] into the
    global {!Pc_obs.Metrics} registry as [<prefix>.lookups] and
    [<prefix>.mispredicts].  The timing model calls this once per
    simulated run with prefix [uarch.bpred]. *)
