(* run_scenarios: co-schedule workload mixes (originals or their clones)
   on the shared-L2 multicore model and report per-tenant slowdown,
   weighted speedup and fairness.

   Usage:
     run_scenarios [SCENARIO]... [--config FILE] [--list] [--quick]
                   [--seed N] [--budget N] [-j N] [--sample N] [-o FILE]
                   [--metrics] [--metrics-out FILE] [--trace FILE]
                   [--trace-period-ms MS] [-v] [--quiet]

   Scenarios come from the preset table (run_scenarios --list) or from a
   pc-scenario-config/1 JSON file; positional names select from whichever
   set is active.  Scenarios fan out over -j worker domains and the
   pc-scenario/1 document written by -o is byte-identical at every -j
   and across runs.  The console table goes to stdout; observability
   output goes to stderr / --metrics-out, so it can never perturb the
   artefact. *)

module Spec = Pc_scenario.Spec
module Presets = Pc_scenario.Presets
module Runner = Pc_scenario.Runner
module Report = Pc_scenario.Report
module Pool = Pc_exec.Pool

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("run_scenarios: " ^ msg);
      exit 1)
    fmt

let main names config_file list_only quick seed budget jobs sample out metrics
    metrics_out trace trace_period_ms ledger verbosity quiet =
  Pc_obs.Logging.setup ~quiet ~verbosity ();
  if list_only then List.iter print_endline Presets.names
  else begin
    if metrics || metrics_out <> None || ledger <> None then
      Pc_obs.Metrics.set_enabled true;
    (Pc_trace.Chrome.with_trace
      ~period_s:(float_of_int trace_period_ms /. 1000.0)
      trace
    @@ fun () ->
    let pool = Pool.create ~num_domains:jobs in
    let base =
      if quick then Runner.quick_settings else Runner.default_settings
    in
    let base =
      match budget with
      | None -> base
      | Some b -> { base with Runner.budget = b }
    in
    let sample =
      let resolve = function
        | `Fixed n -> Some n
        | `Auto ->
          Some (Pc_sample.Sample.auto_interval ~max_instrs:base.Runner.budget)
      in
      match sample with
      | Some s -> resolve s
      | None -> (
        match Sys.getenv_opt "PC_SAMPLE" with
        | Some "auto" -> resolve `Auto
        | Some s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Some n
          | Some _ | None -> None)
        | None -> None)
    in
    let settings = { base with Runner.seed; sample } in
    let available =
      match config_file with
      | None -> Presets.all
      | Some path -> (
        match Spec.load_file path with
        | Ok specs -> specs
        | Error msg -> die "%s: %s" path msg)
    in
    let specs =
      match names with
      | [] -> available
      | names ->
        List.map
          (fun name ->
            match
              List.find_opt (fun (s : Spec.t) -> s.Spec.name = name) available
            with
            | Some s -> s
            | None ->
              die "unknown scenario %S (try --list%s)" name
                (if config_file = None then "" else " or check the config file"))
          names
    in
    let results = Runner.run ~pool settings specs in
    Report.pp Format.std_formatter results;
    Option.iter (fun path -> Report.write_json path ~settings results) out;
    let snap = Pc_obs.Metrics.snapshot () in
    let spans = Pc_obs.Span.roots () in
    if metrics || Pc_obs.Metrics.env_enabled then
      Pc_obs.Sink.pp_console Format.err_formatter snap spans;
    Option.iter (fun path -> Pc_obs.Sink.write_json path snap spans) metrics_out);
    (* Record last, once the trace file exists on disk. *)
    match ledger with
    | None -> ()
    | Some dir ->
      let artifacts =
        List.filter_map
          (fun (schema, path) ->
            Option.map (fun path -> { Pc_report.Ledger.schema; path }) path)
          [
            ("pc-scenario/1", out);
            ("pc-obs/1", metrics_out);
            ("pc-trace/1", trace);
          ]
      in
      let file =
        Pc_report.Ledger.record (Pc_report.Ledger.create dir)
          ~tool:"run_scenarios"
          ~argv:(Array.to_list Sys.argv)
          ~seed ~jobs ~artifacts
      in
      Logs.info (fun m -> m "ledger: recorded %s" file)
  end

open Cmdliner

let names_arg =
  let doc =
    "Scenarios to run, by name (default: every available scenario)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"SCENARIO" ~doc)

let config_arg =
  let doc =
    "Load scenarios from a $(b,pc-scenario-config/1) JSON file instead of \
     the preset table."
  in
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE" ~doc)

let list_arg =
  let doc = "List the preset scenario names and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let quick_arg =
  let doc = "Quick mode: shorter profiling and simulation budgets." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let seed_arg =
  let doc = "Random seed for clone generation and sampling." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let budget_arg =
  let doc = "Per-tenant instruction budget (overrides the mode default)." in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Number of worker domains for per-scenario fan-out.  The output is \
     byte-identical at every value.  Defaults to $(b,PC_JOBS) when set, \
     otherwise the number of cores."
  in
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "must be a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt positive_int (Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let sample_arg =
  let doc =
    "Price tenants by SimPoint-style sampled co-run with \
     $(docv)-instruction intervals instead of interleaving every dynamic \
     instruction.  $(docv) is a positive interval length, or $(b,auto) to \
     derive one from the budget; bare $(b,--sample) means $(b,auto).  \
     Defaults to $(b,PC_SAMPLE) when that is set; off otherwise."
  in
  let interval =
    let parse s =
      if s = "auto" then Ok `Auto
      else
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok (`Fixed n)
        | Some _ | None -> Error (`Msg "must be a positive integer or 'auto'")
    in
    let print ppf = function
      | `Auto -> Format.pp_print_string ppf "auto"
      | `Fixed n -> Format.pp_print_int ppf n
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt ~vopt:(Some `Auto) (some interval) None
    & info [ "sample" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Write the $(b,pc-scenario/1) JSON document to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the observability report to stderr after the run \
     ($(b,PC_OBS=1) has the same effect)."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write the observability report as JSON (schema $(b,pc-obs/1)) to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event timeline (schema $(b,pc-trace/1)) of the \
     whole run to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_period_ms_arg =
  let doc = "Counter-sampling period for $(b,--trace), in milliseconds." in
  Arg.(value & opt int 50 & info [ "trace-period-ms" ] ~docv:"MS" ~doc)

let ledger_arg =
  let doc =
    "Append a $(b,pc-run/1) record of this invocation to the run ledger \
     under $(docv) (default \\$XDG_CACHE_HOME/pc-ledger) for later \
     drift diffing with $(b,pc_diff).  Implies metric collection."
  in
  Arg.(
    value & opt ~vopt:(Some "") (some string) None
    & info [ "ledger" ] ~docv:"DIR" ~doc)

let verbose_arg =
  let doc = "Increase log verbosity." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

let quiet_arg =
  let doc = "Log errors only." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

let cmd =
  let doc =
    "co-schedule workload mixes on the shared-cache multicore model"
  in
  Cmd.v
    (Cmd.info "run_scenarios" ~doc)
    Term.(
      const main $ names_arg $ config_arg $ list_arg $ quick_arg $ seed_arg
      $ budget_arg $ jobs_arg $ sample_arg $ out_arg $ metrics_arg
      $ metrics_out_arg $ trace_arg $ trace_period_ms_arg $ ledger_arg
      $ (const List.length $ verbose_arg)
      $ quiet_arg)

let () = exit (Cmd.eval cmd)
