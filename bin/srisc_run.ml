(* srisc_run: standalone SRISC simulator front end.

   Loads a program from assembly text (.s, see Pc_isa.Parser) or the
   binary format (.bin, see Pc_isa.Encoding) and either executes it
   functionally or runs the timing model, printing statistics.

     srisc_run run clone.s                  functional execution
     srisc_run time clone.s --width 2       timing simulation
     srisc_run assemble clone.s -o clone.bin
     srisc_run disasm clone.bin *)

open Cmdliner

let load path =
  let is_binary =
    let ic = open_in_bin path in
    let m = really_input_string ic 6 in
    close_in ic;
    m = "SRISC1"
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      if is_binary then Pc_isa.Encoding.read ic
      else Pc_isa.Parser.parse_channel ~name:(Filename.basename path) ic)

let cmd_run path max_instrs =
  let program = load path in
  let m = Pc_funcsim.Machine.load program in
  let n = Pc_funcsim.Machine.run ~max_instrs m (fun _ -> ()) in
  Printf.printf "%s: %d instructions, %s\n" program.Pc_isa.Program.name n
    (if Pc_funcsim.Machine.halted m then "halted" else "budget exhausted");
  Printf.printf "r1 (result register) = %Ld\n"
    (Pc_funcsim.Machine.ireg m Pc_isa.Reg.ret)

let cmd_time path max_instrs width in_order =
  let program = load path in
  let cfg = Pc_uarch.Config.base in
  let cfg = if width > 1 then Pc_uarch.Config.with_widths width cfg else cfg in
  let cfg = Pc_uarch.Config.with_in_order in_order cfg in
  let r = Pc_uarch.Sim.run ~max_instrs cfg program in
  Printf.printf "%s on %s:\n" program.Pc_isa.Program.name r.Pc_uarch.Sim.config_name;
  Printf.printf "  instructions  %d\n" r.Pc_uarch.Sim.instrs;
  Printf.printf "  cycles        %d\n" r.Pc_uarch.Sim.cycles;
  Printf.printf "  IPC           %.4f\n" r.Pc_uarch.Sim.ipc;
  Printf.printf "  branches      %d (%.2f%% mispredicted)\n" r.Pc_uarch.Sim.branches
    (100.0 *. Pc_uarch.Sim.mispredict_rate r);
  Printf.printf "  L1D           %d accesses, %d misses\n" r.Pc_uarch.Sim.l1d_accesses
    r.Pc_uarch.Sim.l1d_misses;
  Printf.printf "  L1I misses    %d\n" r.Pc_uarch.Sim.l1i_misses;
  Printf.printf "  power         %.2f units\n" (Pc_power.Power.total cfg r)

let with_out path f =
  match path with
  | None -> f stdout
  | Some p ->
    let oc = open_out_bin p in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let cmd_assemble path output =
  let program = load path in
  with_out output (fun oc -> Pc_isa.Encoding.write oc program)

let cmd_disasm path output =
  let program = load path in
  with_out output (fun oc -> output_string oc (Pc_isa.Parser.roundtrip_text program))

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output file (default stdout).")

let max_instrs_arg =
  Arg.(value & opt int 50_000_000 & info [ "max-instrs" ] ~docv:"N"
         ~doc:"Instruction budget.")

let width_arg =
  Arg.(value & opt int 1 & info [ "width" ] ~docv:"W" ~doc:"Machine width.")

let in_order_arg =
  Arg.(value & flag & info [ "in-order" ] ~doc:"In-order issue.")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"execute functionally")
    Term.(const cmd_run $ path_arg $ max_instrs_arg)

let time_cmd =
  Cmd.v (Cmd.info "time" ~doc:"run the timing model")
    Term.(const cmd_time $ path_arg $ max_instrs_arg $ width_arg $ in_order_arg)

let assemble_cmd =
  Cmd.v (Cmd.info "assemble" ~doc:"assemble text to the binary format")
    Term.(const cmd_assemble $ path_arg $ output_arg)

let disasm_cmd =
  Cmd.v (Cmd.info "disasm" ~doc:"disassemble to parseable text")
    Term.(const cmd_disasm $ path_arg $ output_arg)

let main_cmd =
  Cmd.group (Cmd.info "srisc_run" ~doc:"SRISC toolchain driver")
    [ run_cmd; time_cmd; assemble_cmd; disasm_cmd ]

let () = exit (Cmd.eval main_cmd)
