(* clone_gen: the dissemination tool.  Profile a workload, save/load the
   microarchitecture-independent profile, and emit the synthetic clone —
   as a profile file, an SRISC disassembly, or the C-with-asm rendering
   the paper distributes.

   Usage:
     clone_gen profile BENCH -o workload.profile
     clone_gen synth -p workload.profile -o clone.s [--format c|asm]
     clone_gen clone BENCH --format c       (profile + synth in one step)
     clone_gen list

   clone/synth take --fidelity-out FILE to re-profile the generated
   clone and write a pc-fidelity/1 comparison against the original's
   profile; profile/synth/clone take --trace FILE to write a pc-trace/1
   Chrome timeline of the run.

   clone/synth also close the loop: --tune [BUDGET] searches the
   generator's knobs for the most faithful clone before emitting it,
   and --stress ipc=..,mpki=..,power=.. tunes toward a performance
   envelope instead of the original (stress clones).  --tune-store DIR
   memoises tuning evaluations across invocations. *)

open Cmdliner

let log_src = Logs.Src.create "clone_gen" ~doc:"Dissemination-tool progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

let with_out path f =
  match path with
  | None -> f stdout
  | Some p ->
    let oc = open_out p in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let load_bench name =
  match Pc_workloads.Registry.find name with
  | entry -> Pc_workloads.Registry.compile entry
  | exception Not_found ->
    Printf.eprintf "unknown benchmark %S; try 'clone_gen list'\n" name;
    exit 1

let cmd_list () =
  List.iter
    (fun (domain, names) ->
      List.iter (fun n -> Printf.printf "%-14s %s\n" n domain) names)
    Pc_workloads.Registry.domains

(* Fidelity sidecar: re-profile the clone and compare it with the
   original's profile on the paper characteristics.  stderr table +
   pc-fidelity/1 JSON, so stdout clone output is untouched. *)
let write_fidelity path ~bench ~original ~seed ~instrs ~dynamic clone =
  let report =
    Pc_trace.Fidelity.measure ~max_instrs:instrs ~bench ~original clone
  in
  Pc_trace.Fidelity.write_json path ~seed ~profile_instrs:instrs
    ~clone_dynamic:dynamic [ report ];
  Format.eprintf "%a" Pc_trace.Fidelity.pp [ report ];
  Log.info (fun m -> m "wrote fidelity report to %s" path)

(* Tuning sidecar: when --tune (or --stress, which implies it) is
   given, run the knob search before generation and emit the clone with
   the winning knob vector; otherwise the historical default options,
   byte-identical to the pre-tuning tool. *)
let resolve_options ~tune ~stress ~tune_store ~bench ~seed ~instrs ~dynamic
    profile =
  match (tune, stress) with
  | None, None ->
    { Pc_synth.Synth.default_options with seed; target_dynamic = dynamic }
  | budget, stress ->
    let budget = Option.value budget ~default:32 in
    let mode =
      match stress with
      | None -> Pc_tune.Fitness.Mimic Pc_tune.Fitness.default_weights
      | Some spec -> (
        match Pc_tune.Fitness.envelope_of_string spec with
        | Ok env -> Pc_tune.Fitness.Stress env
        | Error msg ->
          Printf.eprintf "clone_gen: %s\n" msg;
          exit 1)
    in
    let store =
      Option.map
        (fun dir ->
          Pc_tune.Tune_store.create
            (if dir = "" then Pc_tune.Tune_store.default_dir () else dir))
        tune_store
    in
    Log.info (fun m ->
        m "tuning %s (budget %d, %s mode)" bench budget
          (match mode with
          | Pc_tune.Fitness.Mimic _ -> "mimic"
          | Pc_tune.Fitness.Stress _ -> "stress"));
    let result =
      Pc_tune.Search.run ?store ~budget ~bench ~seed ~profile_instrs:instrs
        ~target_dynamic:dynamic ~mode profile
    in
    Format.eprintf "%a" Pc_tune.Report.pp [ result ];
    Pc_tune.Search.options_of_knobs ~seed ~target_dynamic:dynamic
      result.Pc_tune.Search.r_best_knobs

(* Ledger sidecar: record the invocation once the trace file (written
   when with_trace unwinds) exists on disk. *)
let record_ledger ledger ~seed ~artifacts =
  match ledger with
  | None -> ()
  | Some dir ->
    let artifacts =
      List.filter_map
        (fun (schema, path) ->
          Option.map (fun path -> { Pc_report.Ledger.schema; path }) path)
        artifacts
    in
    let file =
      Pc_report.Ledger.record (Pc_report.Ledger.create dir) ~tool:"clone_gen"
        ~argv:(Array.to_list Sys.argv) ~seed ~jobs:1 ~artifacts
    in
    Log.info (fun m -> m "ledger: recorded %s" file)

let cmd_profile () trace ledger bench output instrs =
  if ledger <> None then Pc_obs.Metrics.set_enabled true;
  (Pc_trace.Chrome.with_trace trace @@ fun () ->
  let program = load_bench bench in
  Log.info (fun m -> m "profiling %s (%d dynamic instructions)" bench instrs);
  let profile = Pc_profile.Collector.profile ~max_instrs:instrs program in
  with_out output (fun oc -> Pc_profile.Profile.save oc profile);
  Format.eprintf "%a" Pc_profile.Profile.pp_summary profile);
  record_ledger ledger ~seed:0 ~artifacts:[ ("pc-trace/1", trace) ]

let emit_clone clone fmt output =
  with_out output (fun oc ->
      match fmt with
      | "c" -> output_string oc (Pc_synth.Render.to_c clone)
      | "bin" -> Pc_isa.Encoding.write oc clone
      | "asm" | _ -> output_string oc (Pc_isa.Parser.roundtrip_text clone))

let cmd_synth () trace ledger fidelity_out tune stress tune_store profile_path
    output fmt seed dynamic =
  if ledger <> None then Pc_obs.Metrics.set_enabled true;
  (Pc_trace.Chrome.with_trace trace @@ fun () ->
  let ic = open_in profile_path in
  let profile =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Pc_profile.Profile.load ic)
  in
  Log.info (fun m -> m "synthesizing clone from %s (seed %d)" profile_path seed);
  let options =
    resolve_options ~tune ~stress ~tune_store
      ~bench:profile.Pc_profile.Profile.name ~seed
      ~instrs:profile.Pc_profile.Profile.instr_count ~dynamic profile
  in
  let clone = Pc_synth.Synth.generate ~options profile in
  emit_clone clone fmt output;
  Option.iter
    (fun path ->
      write_fidelity path ~bench:profile.Pc_profile.Profile.name
        ~original:profile ~seed ~instrs:profile.Pc_profile.Profile.instr_count
        ~dynamic clone)
    fidelity_out;
  Log.info (fun m -> m "wrote %s clone to %s" fmt
               (Option.value output ~default:"<stdout>")));
  record_ledger ledger ~seed
    ~artifacts:[ ("pc-fidelity/1", fidelity_out); ("pc-trace/1", trace) ]

let cmd_clone () trace ledger fidelity_out tune stress tune_store bench output
    fmt seed instrs dynamic =
  if ledger <> None then Pc_obs.Metrics.set_enabled true;
  (Pc_trace.Chrome.with_trace trace @@ fun () ->
  let program = load_bench bench in
  Log.info (fun m -> m "cloning %s (profile %d instrs, seed %d)" bench instrs seed);
  let pipeline =
    Perfclone.Pipeline.clone_program ~seed ~profile_instrs:instrs
      ~target_dynamic:dynamic program
  in
  let clone =
    if tune = None && stress = None then pipeline.Perfclone.Pipeline.clone
    else
      let options =
        resolve_options ~tune ~stress ~tune_store ~bench ~seed ~instrs ~dynamic
          pipeline.Perfclone.Pipeline.profile
      in
      Pc_synth.Synth.generate ~options pipeline.Perfclone.Pipeline.profile
  in
  emit_clone clone fmt output;
  Option.iter
    (fun path ->
      write_fidelity path ~bench ~original:pipeline.Perfclone.Pipeline.profile
        ~seed ~instrs ~dynamic clone)
    fidelity_out;
  Log.info (fun m -> m "wrote %s clone to %s" fmt
               (Option.value output ~default:"<stdout>")));
  record_ledger ledger ~seed
    ~artifacts:[ ("pc-fidelity/1", fidelity_out); ("pc-trace/1", trace) ]

(* --- command line --- *)

let bench_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output file (default stdout).")

let format_arg =
  Arg.(value & opt string "asm" & info [ "format"; "f" ] ~docv:"FMT"
         ~doc:
           "Output format: asm (parseable SRISC assembly), bin (SRISC binary), or c \
            (C with asm statements).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generation seed.")

let instrs_arg =
  Arg.(value & opt int 1_000_000 & info [ "instrs" ] ~docv:"N"
         ~doc:"Profiling budget in dynamic instructions.")

let dynamic_arg =
  Arg.(value & opt int 100_000 & info [ "dynamic" ] ~docv:"N"
         ~doc:"Target dynamic length of the clone.")

let profile_arg =
  Arg.(required & opt (some string) None & info [ "p"; "profile" ] ~docv:"FILE"
         ~doc:"Profile file produced by 'clone_gen profile'.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:
           "Write a Chrome trace_event timeline (schema pc-trace/1) of the \
            run to $(docv); loads in Perfetto / chrome://tracing.")

let ledger_arg =
  Arg.(value
       & opt ~vopt:(Some "") (some string) None
       & info [ "ledger" ] ~docv:"DIR"
         ~doc:
           "Append a pc-run/1 record of this invocation to the run ledger \
            under $(docv) (default \\$XDG_CACHE_HOME/pc-ledger) for later \
            drift diffing with pc_diff.  Implies metric collection.")

let fidelity_out_arg =
  Arg.(value & opt (some string) None
       & info [ "fidelity-out" ] ~docv:"FILE"
         ~doc:
           "Re-profile the generated clone and write a pc-fidelity/1 JSON \
            report comparing it with the original's profile (instruction \
            mix, dependency distances, strides, branch rates, SFG size) to \
            $(docv).  A summary table goes to stderr.")

let tune_arg =
  Arg.(value
       & opt ~vopt:(Some 32) (some int) None
       & info [ "tune" ] ~docv:"BUDGET"
         ~doc:
           "Search the generator's knobs (block scaling, stream count, \
            dependency jitter, stride bias, branch-period bounds) for the \
            most faithful clone before emitting it.  $(docv) bounds the \
            number of candidate evaluations (default 32).")

let stress_arg =
  Arg.(value & opt (some string) None
       & info [ "stress" ] ~docv:"SPEC"
         ~doc:
           "Tune toward a performance envelope instead of the original: \
            $(docv) is a comma list of ipc=N, mpki=N, power=N targets \
            (stress clones).  Implies --tune.")

let tune_store_arg =
  Arg.(value
       & opt ~vopt:(Some "") (some string) None
       & info [ "tune-store" ] ~docv:"DIR"
         ~doc:
           "Memoise tuning evaluations on disk under $(docv) (default \
            \\$XDG_CACHE_HOME/pc-tune), so repeated tuning runs converge \
            from cache.")

let setup_term =
  let verbose_arg =
    Arg.(value & flag_all
         & info [ "v"; "verbose" ] ~doc:"Increase log verbosity (repeatable).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Log errors only.")
  in
  let setup verbose quiet =
    Pc_obs.Logging.setup ~quiet ~verbosity:(List.length verbose) ()
  in
  Term.(const setup $ verbose_arg $ quiet_arg)

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"list available benchmarks")
    Term.(const cmd_list $ const ())

let profile_cmd =
  Cmd.v (Cmd.info "profile" ~doc:"profile a workload")
    Term.(const cmd_profile $ setup_term $ trace_arg $ ledger_arg $ bench_pos
          $ output_arg $ instrs_arg)

let synth_cmd =
  Cmd.v (Cmd.info "synth" ~doc:"synthesize a clone from a saved profile")
    Term.(const cmd_synth $ setup_term $ trace_arg $ ledger_arg
          $ fidelity_out_arg $ tune_arg $ stress_arg $ tune_store_arg
          $ profile_arg $ output_arg $ format_arg $ seed_arg $ dynamic_arg)

let clone_cmd =
  Cmd.v (Cmd.info "clone" ~doc:"profile and synthesize in one step")
    Term.(const cmd_clone $ setup_term $ trace_arg $ ledger_arg
          $ fidelity_out_arg $ tune_arg $ stress_arg $ tune_store_arg
          $ bench_pos $ output_arg $ format_arg $ seed_arg $ instrs_arg
          $ dynamic_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "clone_gen" ~doc:"performance-cloning dissemination tool")
    [ list_cmd; profile_cmd; synth_cmd; clone_cmd ]

let () = exit (Cmd.eval main_cmd)
