(* fidelity_report: measure how faithfully the generated clones
   reproduce the paper's microarchitecture-independent characteristics.

   Usage:
     fidelity_report [--quick] [--bench NAME]... [--seed N] [-j N]
                     [--instrs N] [--dynamic N] [--per-phase[=N]]
                     [-o FILE] [--trace FILE]

   Runs the cloning pipeline for the selected benchmarks, re-profiles
   every clone, and prints one table row per benchmark (stdout).  -o
   writes the same data as pc-fidelity/1 JSON, the artefact that
   check_baselines gates against baselines/fidelity.json.  --per-phase
   adds interval-local rows (pc_sample's boundaries) per benchmark. *)

module E = Perfclone.Experiments
module Pool = Pc_exec.Pool

let main quick benches seed jobs instrs dynamic per_phase output trace ledger =
  if ledger <> None then Pc_obs.Metrics.set_enabled true;
  (Pc_trace.Chrome.with_trace trace @@ fun () ->
  let pool = Pool.create ~num_domains:jobs in
  let settings =
    let base = if quick then E.quick_settings else E.default_settings in
    {
      base with
      E.seed;
      profile_instrs = Option.value instrs ~default:base.E.profile_instrs;
      clone_dynamic = Option.value dynamic ~default:base.E.clone_dynamic;
      benchmarks = (if benches = [] then base.E.benchmarks else benches);
    }
  in
  let pipelines = E.prepare ~pool settings in
  let reports = E.fidelity_reports ~pool settings pipelines in
  let reports =
    match per_phase with
    | None -> reports
    | Some interval ->
      let interval =
        match interval with
        | Some n -> n
        | None ->
          Pc_sample.Sample.auto_interval
            ~max_instrs:settings.E.profile_instrs
      in
      (* prepare and fidelity_reports both preserve benchmark order, so
         zipping pipelines with their reports is positional *)
      Pool.map pool
        (fun ((p : Perfclone.Pipeline.t), r) ->
          Pc_trace.Fidelity.measure_phases ~interval
            ~original:p.Perfclone.Pipeline.original
            ~clone:p.Perfclone.Pipeline.clone r)
        (List.combine pipelines reports)
  in
  Pc_trace.Fidelity.pp Format.std_formatter reports;
  Option.iter
    (fun path ->
      Pc_trace.Fidelity.write_json path ~seed:settings.E.seed
        ~profile_instrs:settings.E.profile_instrs
        ~clone_dynamic:settings.E.clone_dynamic reports)
    output);
  (* Record last, once the trace file exists on disk. *)
  match ledger with
  | None -> ()
  | Some dir ->
    let artifacts =
      List.filter_map
        (fun (schema, path) ->
          Option.map (fun path -> { Pc_report.Ledger.schema; path }) path)
        [ ("pc-fidelity/1", output); ("pc-trace/1", trace) ]
    in
    ignore
      (Pc_report.Ledger.record (Pc_report.Ledger.create dir)
         ~tool:"fidelity_report"
         ~argv:(Array.to_list Sys.argv)
         ~seed ~jobs ~artifacts)

open Cmdliner

let quick_arg =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Quick mode: fewer benchmarks, shorter profiles.")

let bench_arg =
  Arg.(value & opt_all string []
       & info [ "bench"; "b" ] ~docv:"NAME"
           ~doc:"Restrict to the named benchmark (repeatable).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generation seed.")

let jobs_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "must be a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value
       & opt positive_int (Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for per-benchmark fan-out.")

let instrs_arg =
  Arg.(value & opt (some int) None
       & info [ "instrs" ] ~docv:"N"
           ~doc:"Profiling budget in dynamic instructions (for both the \
                 original's profile and the clone's re-profile).")

let dynamic_arg =
  Arg.(value & opt (some int) None
       & info [ "dynamic" ] ~docv:"N"
           ~doc:"Target dynamic length of the clones.")

let per_phase_arg =
  Arg.(value
       & opt ~vopt:(Some None) (some (some int)) None
       & info [ "per-phase" ] ~docv:"N"
           ~doc:"Also score each sampling interval separately (phase-local \
                 fidelity rows).  $(docv) sets the interval in dynamic \
                 instructions; without a value it is derived from the \
                 profiling budget like pc_sample's auto interval.")

let output_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the report as pc-fidelity/1 JSON to $(docv).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a pc-trace/1 Chrome timeline of the run to $(docv).")

let ledger_arg =
  Arg.(value
       & opt ~vopt:(Some "") (some string) None
       & info [ "ledger" ] ~docv:"DIR"
           ~doc:"Append a pc-run/1 record of this invocation to the run \
                 ledger under $(docv) (default \
                 \\$XDG_CACHE_HOME/pc-ledger) for later drift diffing \
                 with pc_diff.  Implies metric collection.")

let cmd =
  Cmd.v
    (Cmd.info "fidelity_report" ~doc:"measure clone fidelity on the paper characteristics")
    Term.(const main $ quick_arg $ bench_arg $ seed_arg $ jobs_arg $ instrs_arg
          $ dynamic_arg $ per_phase_arg $ output_arg $ trace_arg $ ledger_arg)

let () = exit (Cmd.eval cmd)
