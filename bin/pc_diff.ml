(* pc_diff: schema-aware drift diffing between two runs.

   Usage:
     pc_diff A.json B.json            diff two same-schema artefacts
     pc_diff --ledger[=DIR]           diff the ledger's last two records
     pc_diff ... --gate thresholds.json --json report.json

   A and B may be any pc-*/1 artefact (pc-obs/1, pc-bench/1,
   pc-sample/1, pc-fidelity/1, pc-scenario/1, pc-trace/1,
   pc-dispatch/1, pc-cachesweep/1) or two pc-run/1 ledger records —
   for records, the diff also recurses into every artefact both runs
   recorded (paired by schema) that still exists on disk, folding the
   results in under artifacts[<schema>]/ paths.

   Exit codes: 0 no drift beyond the gate, 1 drift, 2 usage/parse
   error.  The console table goes to stdout; --json writes the
   pc-diff/1 document. *)

module Json = Pc_util.Json
module Diff = Pc_report.Diff
module Ledger = Pc_report.Ledger

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("pc_diff: " ^ msg);
      exit 2)
    fmt

let load path =
  match Json.parse_file path with
  | Ok j -> j
  | Error e -> die "%s: %s" path e

(* Fold a recursed artefact diff into the run-record report, prefixing
   every path with its artefact slot. *)
let merge (top : Diff.report) (subs : (string * Diff.report) list) =
  let prefixed =
    List.concat_map
      (fun (schema, (r : Diff.report)) ->
        List.map
          (fun (it : Diff.item) ->
            { it with Diff.path = Printf.sprintf "artifacts[%s]/%s" schema it.Diff.path })
          r.Diff.items)
      subs
  in
  {
    top with
    Diff.compared =
      List.fold_left
        (fun acc (_, (r : Diff.report)) -> acc + r.Diff.compared)
        top.Diff.compared subs;
    items = top.Diff.items @ prefixed;
  }

let main paths ledger gate_file json_out =
  let a, b =
    match (paths, ledger) with
    | [ a; b ], _ -> (a, b)
    | [], Some dir -> (
      let l = Ledger.create dir in
      match Ledger.last l 2 with
      | [ a; b ] -> (a, b)
      | entries ->
        die "ledger %s has %d record(s); need two to diff" (Ledger.dir l)
          (List.length entries))
    | [], None -> die "need two files (or --ledger); see --help"
    | _ -> die "expected exactly two files"
  in
  let thresholds =
    match gate_file with
    | None -> Diff.default_thresholds
    | Some path -> (
      match Diff.thresholds_of_json (load path) with
      | Ok th -> th
      | Error e -> die "%s: %s" path e)
  in
  let ja = load a and jb = load b in
  let report =
    match Diff.diff ~a_label:a ~b_label:b ja jb with
    | Error e -> die "%s" e
    | Ok top when top.Diff.artifact_schema = "pc-run/1" ->
      let subs =
        List.filter_map
          (fun (schema, pa, pb) ->
            if Sys.file_exists pa && Sys.file_exists pb then
              match Diff.diff_files pa pb with
              | Ok r -> Some (schema, r)
              | Error e ->
                Printf.eprintf "pc_diff: %s (skipping %s)\n" e schema;
                None
            else None)
          (Diff.run_artifact_pairs ja jb)
      in
      merge top subs
    | Ok top -> top
  in
  let report = Diff.apply thresholds report in
  Diff.pp Format.std_formatter report;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Diff.to_json report);
          output_char oc '\n'))
    json_out;
  let n_drift = List.length (Diff.drift report) in
  if n_drift > thresholds.Diff.max_drift then begin
    Format.printf "pc_diff: DRIFT (%d item(s), gate allows %d)@." n_drift
      thresholds.Diff.max_drift;
    exit 1
  end
  else Format.printf "pc_diff: ok@."

open Cmdliner

let paths_arg =
  let doc = "The two same-schema artefacts (or pc-run/1 records) to diff." in
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)

let ledger_arg =
  let doc =
    "Diff the last two records of the run ledger under $(docv) instead of \
     two explicit files.  Without a value, defaults to \
     \\$XDG_CACHE_HOME/pc-ledger (or ~/.cache/pc-ledger)."
  in
  Arg.(
    value & opt ~vopt:(Some "") (some string) None
    & info [ "ledger" ] ~docv:"DIR" ~doc)

let gate_arg =
  let doc =
    "Gate the diff against a $(b,pc-diff-thresholds/1) JSON file: drift \
     matching its $(b,ignore) globs is tolerated, $(b,tolerances) \
     override per-schema numeric defaults, and the exit code allows up \
     to $(b,max_drift) remaining items."
  in
  Arg.(value & opt (some string) None & info [ "gate" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc = "Write the $(b,pc-diff/1) JSON document to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "diff two runs' artefacts, schema-aware" in
  Cmd.v
    (Cmd.info "pc_diff" ~doc)
    Term.(const main $ paths_arg $ ledger_arg $ gate_arg $ json_arg)

let () = exit (Cmd.eval cmd)
