(* tune_report: run the closed-loop knob search over a benchmark set
   and report how much tuning buys over the default generator options.

   Usage:
     tune_report [--quick] [--bench NAME]... [--seed N] [-j N]
                 [--budget N] [--stress SPEC] [--per-phase[=N]]
                 [--store[=DIR]] [-o FILE] [--trace FILE] [--ledger DIR]

   Prints one table row per benchmark (stdout): default-knob fitness,
   tuned fitness, gain, and the winning knob vector.  The table is
   byte-identical at every -j and across cold/warm --store runs — CI
   diffs it.  -o writes the same data as pc-tune/1 JSON (which also
   carries the per-generation trajectory and the store hit/miss split),
   the artefact check_baselines gates against baselines/tune.json.

   Benchmarks are tuned serially on purpose: the search fans its
   candidate evaluations out through the pool, and pool batches do not
   nest. *)

module E = Perfclone.Experiments
module Pool = Pc_exec.Pool

let main quick benches seed jobs budget stress per_phase store output trace
    ledger =
  if ledger <> None then Pc_obs.Metrics.set_enabled true;
  (Pc_trace.Chrome.with_trace trace @@ fun () ->
  let pool = Pool.create ~num_domains:jobs in
  let settings =
    let base = if quick then E.quick_settings else E.default_settings in
    {
      base with
      E.seed;
      benchmarks = (if benches = [] then base.E.benchmarks else benches);
    }
  in
  let mode =
    match stress with
    | None -> Pc_tune.Fitness.Mimic Pc_tune.Fitness.default_weights
    | Some spec -> (
      match Pc_tune.Fitness.envelope_of_string spec with
      | Ok env -> Pc_tune.Fitness.Stress env
      | Error msg ->
        Printf.eprintf "tune_report: %s\n" msg;
        exit 1)
  in
  let store =
    Option.map
      (fun dir ->
        Pc_tune.Tune_store.create
          (if dir = "" then Pc_tune.Tune_store.default_dir () else dir))
      store
  in
  let pipelines = E.prepare ~pool settings in
  let results =
    List.map
      (fun (p : Perfclone.Pipeline.t) ->
        let phases =
          match per_phase with
          | None -> None
          | Some interval ->
            let interval =
              match interval with
              | Some n -> n
              | None ->
                Pc_sample.Sample.auto_interval
                  ~max_instrs:settings.E.profile_instrs
            in
            Some (interval, p.Perfclone.Pipeline.original)
        in
        Pc_tune.Search.run ~pool ?store ~budget ?phases
          ~bench:p.Perfclone.Pipeline.name ~seed
          ~profile_instrs:settings.E.profile_instrs
          ~target_dynamic:settings.E.clone_dynamic ~mode
          p.Perfclone.Pipeline.profile)
      pipelines
  in
  Pc_tune.Report.pp Format.std_formatter results;
  Option.iter
    (fun path ->
      Pc_tune.Report.write_json path ~seed:settings.E.seed
        ~profile_instrs:settings.E.profile_instrs
        ~clone_dynamic:settings.E.clone_dynamic ~mode results)
    output);
  (* Record last, once the trace file exists on disk. *)
  match ledger with
  | None -> ()
  | Some dir ->
    let artifacts =
      List.filter_map
        (fun (schema, path) ->
          Option.map (fun path -> { Pc_report.Ledger.schema; path }) path)
        [ ("pc-tune/1", output); ("pc-trace/1", trace) ]
    in
    ignore
      (Pc_report.Ledger.record (Pc_report.Ledger.create dir)
         ~tool:"tune_report"
         ~argv:(Array.to_list Sys.argv)
         ~seed ~jobs ~artifacts)

open Cmdliner

let quick_arg =
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Quick mode: fewer benchmarks, shorter profiles.")

let bench_arg =
  Arg.(value & opt_all string []
       & info [ "bench"; "b" ] ~docv:"NAME"
           ~doc:"Restrict to the named benchmark (repeatable).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generation seed.")

let jobs_arg =
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "must be a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value
       & opt positive_int (Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for candidate-evaluation fan-out.")

let budget_arg =
  Arg.(value & opt int 32
       & info [ "budget" ] ~docv:"N"
           ~doc:"Candidate evaluations per benchmark (default 32).")

let stress_arg =
  Arg.(value & opt (some string) None
       & info [ "stress" ] ~docv:"SPEC"
           ~doc:"Tune toward a performance envelope instead of the \
                 original: a comma list of ipc=N, mpki=N, power=N targets.")

let per_phase_arg =
  Arg.(value
       & opt ~vopt:(Some None) (some (some int)) None
       & info [ "per-phase" ] ~docv:"N"
           ~doc:"Score candidates per sampling interval too (phase-aware \
                 fitness).  $(docv) sets the interval in dynamic \
                 instructions; without a value it is derived from the \
                 profiling budget like pc_sample's auto interval.")

let store_arg =
  Arg.(value
       & opt ~vopt:(Some "") (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Memoise evaluations on disk under $(docv) (default \
                 \\$XDG_CACHE_HOME/pc-tune) across runs.")

let output_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the report as pc-tune/1 JSON to $(docv).")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a pc-trace/1 Chrome timeline of the run to $(docv).")

let ledger_arg =
  Arg.(value
       & opt ~vopt:(Some "") (some string) None
       & info [ "ledger" ] ~docv:"DIR"
           ~doc:"Append a pc-run/1 record of this invocation to the run \
                 ledger under $(docv) (default \
                 \\$XDG_CACHE_HOME/pc-ledger) for later drift diffing \
                 with pc_diff.  Implies metric collection.")

let cmd =
  Cmd.v
    (Cmd.info "tune_report"
       ~doc:"closed-loop knob tuning against fidelity or a stress envelope")
    Term.(const main $ quick_arg $ bench_arg $ seed_arg $ jobs_arg $ budget_arg
          $ stress_arg $ per_phase_arg $ store_arg $ output_arg $ trace_arg
          $ ledger_arg)

let () = exit (Cmd.eval cmd)
