(* run_experiments: regenerate every table and figure of the paper.

   Usage:
     run_experiments [EXPERIMENT]... [--quick] [--bench NAME]... [--seed N] [-j N]
                     [--sample N] [--sample-out FILE] [--sample-no-ref]
                     [--plan-cache [DIR]] [--cache-onepass] [--trace FILE]
                     [--trace-period-ms MS] [--metrics] [--metrics-out FILE]
                     [-v] [--quiet]

   Experiments: table1 table2 fig3 fig4 fig5 fig6 fig7 table3 fig8 fig9
   ablation all (default: all).

   Per-benchmark and per-configuration work fans out over -j worker
   domains; all randomness is seeded per pipeline, so the output is
   byte-identical at every -j.  --sample N (or PC_SAMPLE=N) switches the
   timing and cache estimators to SimPoint-style sampled simulation with
   N-instruction intervals; bare --sample (or PC_SAMPLE=auto) picks the
   interval from the simulation budget via Sample.auto_interval.  Off by
   default, so without it every table is byte-identical to earlier
   releases.  Observability output (progress
   logs, the --metrics console report) goes to stderr, and --metrics-out
   / --sample-out write to files, so none of it can perturb the
   experiment tables on stdout. *)

module E = Perfclone.Experiments
module Pool = Pc_exec.Pool

let pp = Format.std_formatter

let print_table1 () =
  Format.fprintf pp "Table 1: benchmark programs and application domains@.";
  List.iter
    (fun (domain, names) ->
      Format.fprintf pp "  %-12s %s@." domain (String.concat ", " names))
    Pc_workloads.Registry.domains

let print_table2 () =
  let c = Pc_uarch.Config.base in
  Format.fprintf pp "Table 2: base configuration@.";
  Format.fprintf pp "  functional units: %d int ALU, %d int mul/div, %d FP ALU, %d FP mul/div@."
    c.Pc_uarch.Config.int_alu_units c.Pc_uarch.Config.int_mul_units
    c.Pc_uarch.Config.fp_alu_units c.Pc_uarch.Config.fp_mul_units;
  Format.fprintf pp "  reorder buffer: %d entries; load/store queue: %d entries@."
    c.Pc_uarch.Config.rob_size c.Pc_uarch.Config.lsq_size;
  Format.fprintf pp "  fetch/decode/issue width: %d, %s@." c.Pc_uarch.Config.fetch_width
    (if c.Pc_uarch.Config.in_order then "in-order" else "out-of-order");
  Format.fprintf pp "  branch predictor: %s@."
    (Pc_branch.Predictor.config_name c.Pc_uarch.Config.bpred);
  let l1 h = Pc_caches.Cache.config_name h.Pc_caches.Hierarchy.l1 in
  Format.fprintf pp "  L1 I-cache: %s; L1 D-cache: %s@." (l1 c.Pc_uarch.Config.icache)
    (l1 c.Pc_uarch.Config.dcache);
  (match c.Pc_uarch.Config.dcache.Pc_caches.Hierarchy.l2 with
  | Some l2 -> Format.fprintf pp "  L2 cache: %s@." (Pc_caches.Cache.config_name l2)
  | None -> Format.fprintf pp "  no L2 cache@.");
  Format.fprintf pp "  memory latency: %d cycles@."
    c.Pc_uarch.Config.dcache.Pc_caches.Hierarchy.mem_latency

(* pc-sample/1 JSON summary (schema documented in EXPERIMENTS.md): per
   program the plan statistics plus projected-vs-detailed base-config
   IPC, so the sampling error is measurable without re-deriving it.
   The detailed runs are the expensive part; they fan out over [pool]
   and are memoized alongside the unsampled estimators. *)
let write_sample_summary ~pool ~interval ~no_ref settings pipelines path =
  let module Sample = Pc_sample.Sample in
  let module Sim = Pc_uarch.Sim in
  let cfg = Pc_uarch.Config.base in
  let err_gauge = Pc_obs.Metrics.gauge "sample.ipc_error_bp" in
  let power_err_gauge = Pc_obs.Metrics.gauge "sample.power_error_bp" in
  let statsim_err_gauge = Pc_obs.Metrics.gauge "sample.statsim_error_bp" in
  let rel_err ~detailed ~projected =
    if detailed = 0.0 then 0.0 else abs_float (projected -. detailed) /. detailed
  in
  let detailed_settings = { settings with E.sample = None } in
  let programs =
    List.concat_map
      (fun (p : Perfclone.Pipeline.t) ->
        [
          ( p.Perfclone.Pipeline.name, "original", p.Perfclone.Pipeline.original,
            Some p );
          (p.Perfclone.Pipeline.name, "clone", p.Perfclone.Pipeline.clone, None);
        ])
      pipelines
  in
  let rows =
    Pool.map pool
      (fun (bench, kind, program, pipeline) ->
        let plan = E.sample_plan settings ~interval program in
        let projected = E.sim_run settings cfg program in
        let projected_power = E.power_total settings cfg program projected in
        (* --sample-no-ref: plan statistics and projections only — the
           detailed reference simulations are the expensive part. *)
        let reference =
          if no_ref then None
          else begin
            let detailed = E.sim_run detailed_settings cfg program in
            let detailed_power =
              E.power_total detailed_settings cfg program detailed
            in
            Some
              ( detailed.Sim.ipc,
                rel_err ~detailed:detailed.Sim.ipc ~projected:projected.Sim.ipc,
                detailed_power,
                rel_err ~detailed:detailed_power ~projected:projected_power )
          end
        in
        (* Statistical simulation works from the original's profile, so
           it is reported once per benchmark, on the original's row. *)
        let statsim =
          match pipeline with
          | None -> None
          | Some p ->
            let ss = E.statsim_ipc settings p in
            let ss_ref =
              if no_ref then None
              else begin
                let det = E.statsim_ipc detailed_settings p in
                Some (det, rel_err ~detailed:det ~projected:ss)
              end
            in
            Some (ss, ss_ref)
        in
        (bench, kind, plan, projected.Sim.ipc, projected_power, reference, statsim))
      programs
  in
  let bp error = int_of_float (Float.round (error *. 10_000.)) in
  List.iter
    (fun (_, _, _, _, _, reference, statsim) ->
      (match reference with
      | None -> ()
      | Some (_, ipc_error, _, power_error) ->
        Pc_obs.Metrics.record_max err_gauge (bp ipc_error);
        Pc_obs.Metrics.record_max power_err_gauge (bp power_error));
      match statsim with
      | Some (_, Some (_, ss_error)) ->
        Pc_obs.Metrics.record_max statsim_err_gauge (bp ss_error)
      | Some (_, None) | None -> ())
    rows;
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"pc-sample/1\",\"interval\":%d,\"seed\":%d,\"budget\":%d,\"programs\":["
       interval settings.E.seed settings.E.sim_instrs);
  List.iteri
    (fun i (bench, kind, (plan : Sample.plan), proj, proj_power, reference, statsim) ->
      if i > 0 then Buffer.add_char b ',';
      let replayed =
        Array.fold_left
          (fun acc (r : Sample.rep) -> acc + Array.length r.Sample.trace)
          0 plan.Sample.reps
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"bench\":%S,\"kind\":%S,\"total_instrs\":%d,\"intervals\":%d,\
            \"clusters\":%d,\"replayed_instrs\":%d,\"coverage\":%.6f,\
            \"projected_ipc\":%.6f,\"projected_power\":%.6f"
           bench kind plan.Sample.total_instrs plan.Sample.n_intervals
           plan.Sample.k replayed plan.Sample.coverage proj proj_power);
      (match reference with
      | Some (det, ipc_error, det_power, power_error) ->
        Buffer.add_string b
          (Printf.sprintf
             ",\"detailed_ipc\":%.6f,\"ipc_error\":%.6f,\"detailed_power\":%.6f,\
              \"power_error\":%.6f"
             det ipc_error det_power power_error)
      | None -> ());
      (match statsim with
      | Some (ss, ss_ref) ->
        Buffer.add_string b (Printf.sprintf ",\"statsim_ipc\":%.6f" ss);
        (match ss_ref with
        | Some (det, err) ->
          Buffer.add_string b
            (Printf.sprintf
               ",\"statsim_detailed_ipc\":%.6f,\"statsim_ipc_error\":%.6f" det err)
        | None -> ())
      | None -> ());
      Buffer.add_char b '}')
    rows;
  Buffer.add_string b "]}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b))

let main experiments quick benches seed jobs sample sample_out sample_no_ref
    plan_cache cache_onepass trace trace_period_ms metrics metrics_out ledger
    verbosity quiet =
  Pc_obs.Logging.setup ~quiet ~verbosity ();
  if metrics || metrics_out <> None || ledger <> None then
    Pc_obs.Metrics.set_enabled true;
  let written =
    Pc_trace.Chrome.with_trace
      ~period_s:(float_of_int trace_period_ms /. 1000.0)
      trace
    @@ fun () ->
  let pool = Pool.create ~num_domains:jobs in
  let base = if quick then E.quick_settings else E.default_settings in
  let sample =
    (* Bare [--sample] / [PC_SAMPLE=auto] derive the interval from the
       simulation budget the settings will actually run with. *)
    let resolve = function
      | `Fixed n -> Some n
      | `Auto ->
        Some (Pc_sample.Sample.auto_interval ~max_instrs:base.E.sim_instrs)
    in
    match sample with
    | Some s -> resolve s
    | None -> (
      match Sys.getenv_opt "PC_SAMPLE" with
      | Some "auto" -> resolve `Auto
      | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> Some n
        | Some _ | None -> None)
      | None -> None)
  in
  let plan_cache =
    match plan_cache with
    | None -> None
    | Some "" -> Some (Pc_sample.Plan_cache.default_dir ())
    | Some dir -> Some dir
  in
  if plan_cache <> None && sample = None then
    Format.eprintf "run_experiments: --plan-cache ignored without --sample@.";
  let cache_onepass =
    cache_onepass
    ||
    match Sys.getenv_opt "PC_CACHE_ONEPASS" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false
  in
  let settings =
    {
      base with
      E.seed;
      benchmarks = (if benches = [] then base.E.benchmarks else benches);
      sample;
      plan_cache = (if sample = None then None else plan_cache);
      cache_onepass;
    }
  in
  let experiments = if experiments = [] then [ "all" ] else experiments in
  let wants name = List.mem name experiments || List.mem "all" experiments in
  if wants "table1" then print_table1 ();
  if wants "table2" then print_table2 ();
  let sample_summary = if sample = None then None else sample_out in
  if sample_out <> None && sample = None then
    Format.eprintf "run_experiments: --sample-out ignored without --sample@.";
  if sample_no_ref && sample_summary = None then
    Format.eprintf "run_experiments: --sample-no-ref ignored without --sample-out@.";
  let needs_pipelines =
    sample_summary <> None
    || List.exists wants
         [
           "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "table3"; "fig8"; "fig9";
           "ablation"; "statsim"; "portable"; "bpred"; "seeds";
         ]
  in
  if needs_pipelines then begin
    Format.fprintf pp "(preparing %s benchmark pipelines...)@."
      (match settings.E.benchmarks with [] -> "23" | l -> string_of_int (List.length l));
    let pipelines = E.prepare ~pool settings in
    E.prepare_sample ~pool settings pipelines;
    if wants "fig3" then E.pp_fig3 pp (E.fig3 pipelines);
    if wants "fig4" || wants "fig5" then begin
      let studies = E.cache_studies ~pool settings pipelines in
      if wants "fig4" then E.pp_fig4 pp studies;
      if wants "fig5" then E.pp_fig5 pp (E.rankings_scatter studies)
    end;
    if wants "fig6" || wants "fig7" then begin
      let runs = E.base_runs ~pool settings pipelines in
      if wants "fig6" then E.pp_fig6 pp runs;
      if wants "fig7" then E.pp_fig7 pp runs
    end;
    if wants "table3" || wants "fig8" || wants "fig9" then begin
      let results = E.run_design_changes ~pool settings pipelines in
      if wants "table3" then E.pp_table3 pp results;
      (* Figures 8/9 show the width-doubling change (index 2). *)
      let width_change = List.nth results 2 in
      if wants "fig8" then E.pp_fig8 pp width_change;
      if wants "fig9" then E.pp_fig9 pp width_change
    end;
    if wants "ablation" then E.pp_ablation pp (E.ablation ~pool settings pipelines);
    if wants "statsim" then E.pp_statsim pp (E.statsim_comparison ~pool settings pipelines);
    if wants "portable" then E.pp_portable pp (E.portable_comparison ~pool settings pipelines);
    if wants "bpred" then E.pp_bpred pp (E.bpred_studies ~pool settings pipelines);
    if wants "seeds" then E.pp_seed_robustness pp (E.seed_robustness ~pool settings pipelines);
    match (sample_summary, settings.E.sample) with
    | Some path, Some interval ->
      write_sample_summary ~pool ~interval ~no_ref:sample_no_ref settings
        pipelines path
    | _ -> ()
  end;
  let snap = Pc_obs.Metrics.snapshot () in
  let spans = Pc_obs.Span.roots () in
  if metrics || Pc_obs.Metrics.env_enabled then
    Pc_obs.Sink.pp_console Format.err_formatter snap spans;
  Option.iter (fun path -> Pc_obs.Sink.write_json path snap spans) metrics_out;
  (match metrics_out with Some p -> [ ("pc-obs/1", p) ] | None -> [])
  @
  match (sample_summary, settings.E.sample, needs_pipelines) with
  | Some p, Some _, true -> [ ("pc-sample/1", p) ]
  | _ -> []
  in
  (* Record last, once the trace file exists, so the record can digest
     every artefact the run emitted. *)
  match ledger with
  | None -> ()
  | Some dir ->
    let written =
      written
      @ match trace with Some p -> [ ("pc-trace/1", p) ] | None -> []
    in
    let file =
      Pc_report.Ledger.record (Pc_report.Ledger.create dir)
        ~tool:"run_experiments"
        ~argv:(Array.to_list Sys.argv)
        ~seed ~jobs
        ~artifacts:
          (List.map
             (fun (schema, path) -> { Pc_report.Ledger.schema; path })
             written)
    in
    Logs.info (fun m -> m "ledger: recorded %s" file)

open Cmdliner

let experiments_arg =
  let doc =
    "Experiments to run: table1, table2, fig3, fig4, fig5, fig6, fig7, table3, \
     fig8, fig9, ablation, statsim, portable, bpred, seeds, or all."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Quick mode: fewer benchmarks and shorter simulations." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let bench_arg =
  let doc = "Restrict to the named benchmark (repeatable)." in
  Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "Random seed for clone generation." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Number of worker domains for per-benchmark and per-configuration \
     fan-out.  The output is byte-identical at every value.  Defaults to \
     $(b,PC_JOBS) when set, otherwise the number of cores."
  in
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg "must be a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt positive_int (Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let sample_arg =
  let doc =
    "Estimate timing and cache results by SimPoint-style sampled \
     simulation with $(docv)-instruction intervals instead of simulating \
     every dynamic instruction.  $(docv) is a positive interval length, \
     or $(b,auto) to derive one from the simulation budget (about 32 \
     intervals per run, clamped to [10000, 1000000]); bare $(b,--sample) \
     means $(b,auto).  Defaults to $(b,PC_SAMPLE) when that is set to a \
     positive integer or $(b,auto); off otherwise.  With sampling off \
     the output is byte-identical to earlier releases."
  in
  let interval =
    let parse s =
      if s = "auto" then Ok `Auto
      else
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok (`Fixed n)
        | Some _ | None -> Error (`Msg "must be a positive integer or 'auto'")
    in
    let print ppf = function
      | `Auto -> Format.pp_print_string ppf "auto"
      | `Fixed n -> Format.pp_print_int ppf n
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt ~vopt:(Some `Auto) (some interval) None
    & info [ "sample" ] ~docv:"N" ~doc)

let sample_out_arg =
  let doc =
    "With $(b,--sample), also run the detailed (unsampled) base-config \
     simulations and write a JSON summary (schema $(b,pc-sample/1)) of \
     every plan's statistics and projected-vs-detailed IPC error to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "sample-out" ] ~docv:"FILE" ~doc)

let sample_no_ref_arg =
  let doc =
    "With $(b,--sample-out), skip the detailed (unsampled) reference \
     simulations: the summary reports plan statistics and projected IPC \
     only, omitting the $(b,detailed_ipc) and $(b,ipc_error) fields.  \
     Much cheaper when only the plan shape matters."
  in
  Arg.(value & flag & info [ "sample-no-ref" ] ~doc)

let plan_cache_arg =
  let doc =
    "With $(b,--sample), persist sampling plans on disk under $(docv) so \
     repeated invocations skip plan construction.  Without a value, \
     defaults to \\$XDG_CACHE_HOME/pc-sample (or ~/.cache/pc-sample).  \
     Entries are keyed by a content hash of the plan-format version, \
     profile digest, interval and clustering parameters, so stale or \
     cross-version plans are never reused; corrupt files are dropped and \
     recomputed.  Hits and misses are reported as the \
     $(b,plan_cache.*) metrics."
  in
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "plan-cache" ] ~docv:"DIR" ~doc)

let cache_onepass_arg =
  let doc =
    "Price every 28-configuration cache sweep with the one-pass \
     stack-distance profiler instead of simulating all 28 caches — the \
     same results (byte-identical, the test suite holds the two equal) \
     at about the cost of a single pass over the trace.  Applies to \
     both full-trace sweeps and sampled projections.  Also enabled by \
     setting $(b,PC_CACHE_ONEPASS) to 1, true or yes."
  in
  Arg.(value & flag & info [ "cache-onepass" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event timeline (schema $(b,pc-trace/1), loads \
     in Perfetto / chrome://tracing) of the whole run to $(docv): one \
     lane per worker domain from the span tree, plus counter tracks \
     sampled from the metrics registry.  Implies metric and event \
     collection; never touches stdout."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_period_ms_arg =
  let doc =
    "Counter-sampling period for $(b,--trace), in milliseconds.  0 \
     disables periodic sampling (counters are still sampled once at \
     exit)."
  in
  Arg.(value & opt int 50 & info [ "trace-period-ms" ] ~docv:"MS" ~doc)

let metrics_arg =
  let doc =
    "Print the observability report (metrics registry and per-stage span \
     tree) to stderr after the run.  Setting $(b,PC_OBS=1) in the \
     environment has the same effect."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write the observability report as JSON (schema $(b,pc-obs/1)) to \
     $(docv).  Implies metric and span collection, but not the stderr \
     report."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let ledger_arg =
  let doc =
    "Append a $(b,pc-run/1) record of this invocation (tool, normalised \
     argument digest, seed, git describe, metric snapshot, and the \
     schemas/paths/digests of every artefact written) to the run ledger \
     under $(docv), for later drift diffing with $(b,pc_diff).  Without \
     a value, defaults to \\$XDG_CACHE_HOME/pc-ledger (or \
     ~/.cache/pc-ledger).  Implies metric collection; never touches \
     stdout."
  in
  Arg.(
    value & opt ~vopt:(Some "") (some string) None
    & info [ "ledger" ] ~docv:"DIR" ~doc)

let verbose_arg =
  let doc = "Increase log verbosity (per-benchmark progress is shown by default; $(b,-v) adds debug detail)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

let quiet_arg =
  let doc = "Log errors only." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

let cmd =
  let doc = "regenerate the Performance Cloning paper's tables and figures" in
  Cmd.v
    (Cmd.info "run_experiments" ~doc)
    Term.(
      const main $ experiments_arg $ quick_arg $ bench_arg $ seed_arg $ jobs_arg
      $ sample_arg $ sample_out_arg $ sample_no_ref_arg $ plan_cache_arg
      $ cache_onepass_arg $ trace_arg
      $ trace_period_ms_arg $ metrics_arg $ metrics_out_arg $ ledger_arg
      $ (const List.length $ verbose_arg)
      $ quiet_arg)

let () = exit (Cmd.eval cmd)
