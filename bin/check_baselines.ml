(* check_baselines: CI regression gate over archived artefacts.

   Usage:
     check_baselines metrics baselines/metrics.json metrics.json
     check_baselines bench baselines/bench.json BENCH_results.json [--tolerance 0.2]
     check_baselines fidelity baselines/fidelity.json fidelity.json
     check_baselines scenario baselines/scenario.json scenario.json
     check_baselines cachesweep baselines/cachesweep.json cachesweep.json

   Exits 0 when the current artefact matches the baseline (exactly for
   pc-obs/1 counters and gauges; within the median-normalised tolerance
   for pc-bench/1 timings; within the pc-fidelity-thresholds/1 bounds
   for pc-fidelity/1 clone-fidelity reports; within the
   pc-scenario-thresholds/1 bounds for pc-scenario/1 co-run reports), 1
   with one line per discrepancy otherwise.  Baselines are regenerated
   deliberately — see EXPERIMENTS.md. *)

module Json = Pc_util.Json
module Baseline = Pc_obs.Baseline

let load path =
  match Json.parse_file path with
  | Ok doc -> doc
  | Error msg ->
    Printf.eprintf "check_baselines: %s: %s\n" path msg;
    exit 2

let main mode baseline_path current_path tolerance floor_ms =
  let baseline = load baseline_path and current = load current_path in
  let issues =
    match mode with
    | `Metrics -> Baseline.check_metrics ~baseline ~current
    | `Bench -> Baseline.check_bench ~floor_ms ~tolerance ~baseline ~current ()
    | `Fidelity -> Pc_trace.Fidelity.check ~thresholds:baseline ~report:current
    | `Scenario ->
      Pc_scenario.Report.check ~thresholds:baseline ~report:current
    | `Cachesweep -> Baseline.check_cachesweep ~thresholds:baseline ~report:current
  in
  match issues with
  | [] ->
    Printf.printf "check_baselines: %s matches %s\n" current_path baseline_path;
    0
  | issues ->
    List.iter (fun i -> Printf.printf "check_baselines: %s\n" i) issues;
    Printf.printf "check_baselines: %d discrepancies against %s\n"
      (List.length issues) baseline_path;
    1

open Cmdliner

let mode_arg =
  let modes =
    [
      ("metrics", `Metrics);
      ("bench", `Bench);
      ("fidelity", `Fidelity);
      ("scenario", `Scenario);
      ("cachesweep", `Cachesweep);
    ]
  in
  Arg.(
    required
    & pos 0 (some (enum modes)) None
    & info [] ~docv:"MODE"
        ~doc:"$(b,metrics) compares pc-obs/1 counters/gauges exactly; \
              $(b,bench) compares pc-bench/1 timings median-normalised; \
              $(b,fidelity) gates a pc-fidelity/1 report against \
              pc-fidelity-thresholds/1 bounds; $(b,scenario) gates a \
              pc-scenario/1 co-run report against \
              pc-scenario-thresholds/1 bounds; $(b,cachesweep) gates a \
              pc-cachesweep/1 one-pass sweep comparison against \
              pc-cachesweep-thresholds/1 bounds.")

let baseline_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"BASELINE" ~doc:"Checked-in baseline artefact.")

let current_arg =
  Arg.(
    required
    & pos 2 (some file) None
    & info [] ~docv:"CURRENT" ~doc:"Artefact produced by this run.")

let tolerance_arg =
  let doc =
    "Allowed relative slowdown per bench entry after median \
     normalisation (bench mode only)."
  in
  Arg.(value & opt float 0.20 & info [ "tolerance" ] ~docv:"FRAC" ~doc)

let floor_ms_arg =
  let doc =
    "Absolute floor in ms applied to medians and per-entry timings \
     before normalisation (bench mode only): guards the \
     median-normalised comparison against 0 ms medians, and entries at \
     or below the floor on both sides are skipped as noise."
  in
  Arg.(value & opt float 0.001 & info [ "floor-ms" ] ~docv:"MS" ~doc)

let cmd =
  Cmd.v
    (Cmd.info "check_baselines" ~doc:"gate CI artefacts against baselines")
    Term.(
      const main $ mode_arg $ baseline_arg $ current_arg $ tolerance_arg
      $ floor_ms_arg)

let () = exit (Cmd.eval' cmd)
