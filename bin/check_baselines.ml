(* check_baselines: CI regression gate over archived artefacts.

   Usage:
     check_baselines metrics baselines/metrics.json metrics.json
     check_baselines bench baselines/bench.json BENCH_results.json [--tolerance 0.2]
     check_baselines fidelity baselines/fidelity.json fidelity.json
     check_baselines scenario baselines/scenario.json scenario.json
     check_baselines cachesweep baselines/cachesweep.json cachesweep.json
     check_baselines tune baselines/tune.json tune.json
     check_baselines all BASELINE CURRENT [BASELINE CURRENT]...

   Exits 0 when the current artefact matches the baseline (exactly for
   pc-obs/1 counters and gauges; within the median-normalised tolerance
   for pc-bench/1 timings; within the pc-fidelity-thresholds/1 bounds
   for pc-fidelity/1 clone-fidelity reports; within the
   pc-scenario-thresholds/1 bounds for pc-scenario/1 co-run reports), 1
   with one line per discrepancy otherwise.  The $(b,all) mode runs any
   number of baseline/current pairs in one invocation — the gate kind
   is inferred from each baseline's schema — prints a one-line-per-gate
   summary table, and aggregates the exit code.  Baselines are
   regenerated deliberately — see EXPERIMENTS.md. *)

module Json = Pc_util.Json
module Baseline = Pc_obs.Baseline

let load path =
  match Json.parse_file path with
  | Ok doc -> doc
  | Error msg ->
    Printf.eprintf "check_baselines: %s: %s\n" path msg;
    exit 2

let check kind ~tolerance ~floor_ms ~baseline ~current =
  match kind with
  | `Metrics -> Baseline.check_metrics ~baseline ~current
  | `Bench -> Baseline.check_bench ~floor_ms ~tolerance ~baseline ~current ()
  | `Fidelity -> Pc_trace.Fidelity.check ~thresholds:baseline ~report:current
  | `Scenario -> Pc_scenario.Report.check ~thresholds:baseline ~report:current
  | `Cachesweep -> Baseline.check_cachesweep ~thresholds:baseline ~report:current
  | `Tune -> Pc_tune.Report.check ~thresholds:baseline ~report:current

(* In [all] mode the gate kind comes from the baseline document itself:
   every baseline/thresholds schema names exactly one checker. *)
let kind_of_baseline path doc =
  match Option.bind (Json.member "schema" doc) Json.to_string with
  | Some "pc-obs/1" -> ("metrics", `Metrics)
  | Some "pc-bench/1" -> ("bench", `Bench)
  | Some "pc-fidelity-thresholds/1" -> ("fidelity", `Fidelity)
  | Some "pc-scenario-thresholds/1" -> ("scenario", `Scenario)
  | Some "pc-cachesweep-thresholds/1" -> ("cachesweep", `Cachesweep)
  | Some "pc-tune-thresholds/1" -> ("tune", `Tune)
  | Some s ->
    Printf.eprintf "check_baselines: %s: no gate for schema %s\n" path s;
    exit 2
  | None ->
    Printf.eprintf "check_baselines: %s: no schema field\n" path;
    exit 2

let rec pairs = function
  | [] -> []
  | [ odd ] ->
    Printf.eprintf
      "check_baselines: all mode needs BASELINE CURRENT pairs (odd file %s)\n"
      odd;
    exit 2
  | b :: c :: rest -> (b, c) :: pairs rest

let run_all files tolerance floor_ms =
  let rows =
    List.map
      (fun (baseline_path, current_path) ->
        let baseline = load baseline_path and current = load current_path in
        let name, kind = kind_of_baseline baseline_path baseline in
        let issues = check kind ~tolerance ~floor_ms ~baseline ~current in
        (name, current_path, issues))
      (pairs files)
  in
  Printf.printf "  %-10s %-36s %-6s %s\n" "gate" "current" "status" "issues";
  List.iter
    (fun (name, current_path, issues) ->
      Printf.printf "  %-10s %-36s %-6s %d%s\n" name current_path
        (if issues = [] then "ok" else "FAIL")
        (List.length issues)
        (match issues with [] -> "" | worst :: _ -> "  " ^ worst))
    rows;
  let failed = List.filter (fun (_, _, issues) -> issues <> []) rows in
  match failed with
  | [] ->
    Printf.printf "check_baselines: all %d gates ok\n" (List.length rows);
    0
  | failed ->
    List.iter
      (fun (name, _, issues) ->
        List.iter (fun i -> Printf.printf "check_baselines: %s: %s\n" name i) issues)
      failed;
    Printf.printf "check_baselines: %d of %d gates failed\n"
      (List.length failed) (List.length rows);
    1

let main mode baseline_path current_path rest tolerance floor_ms =
  match mode with
  | `All -> run_all (baseline_path :: current_path :: rest) tolerance floor_ms
  | (`Metrics | `Bench | `Fidelity | `Scenario | `Cachesweep | `Tune) as kind
    -> (
    if rest <> [] then begin
      Printf.eprintf
        "check_baselines: extra files %s (only the all mode takes more than \
         one pair)\n"
        (String.concat " " rest);
      exit 2
    end;
    let baseline = load baseline_path and current = load current_path in
    match check kind ~tolerance ~floor_ms ~baseline ~current with
    | [] ->
      Printf.printf "check_baselines: %s matches %s\n" current_path
        baseline_path;
      0
    | issues ->
      List.iter (fun i -> Printf.printf "check_baselines: %s\n" i) issues;
      Printf.printf "check_baselines: %d discrepancies against %s\n"
        (List.length issues) baseline_path;
      1)

open Cmdliner

let mode_arg =
  let modes =
    [
      ("metrics", `Metrics);
      ("bench", `Bench);
      ("fidelity", `Fidelity);
      ("scenario", `Scenario);
      ("cachesweep", `Cachesweep);
      ("tune", `Tune);
      ("all", `All);
    ]
  in
  Arg.(
    required
    & pos 0 (some (enum modes)) None
    & info [] ~docv:"MODE"
        ~doc:"$(b,metrics) compares pc-obs/1 counters/gauges exactly; \
              $(b,bench) compares pc-bench/1 timings median-normalised; \
              $(b,fidelity) gates a pc-fidelity/1 report against \
              pc-fidelity-thresholds/1 bounds; $(b,scenario) gates a \
              pc-scenario/1 co-run report against \
              pc-scenario-thresholds/1 bounds; $(b,cachesweep) gates a \
              pc-cachesweep/1 one-pass sweep comparison against \
              pc-cachesweep-thresholds/1 bounds; $(b,tune) gates a \
              pc-tune/1 tuning report against pc-tune-thresholds/1 \
              bounds; $(b,all) runs any \
              number of baseline/current pairs (gate kinds inferred \
              from each baseline's schema) and prints a per-gate \
              summary table with an aggregated exit code.")

let baseline_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"BASELINE" ~doc:"Checked-in baseline artefact.")

let current_arg =
  Arg.(
    required
    & pos 2 (some file) None
    & info [] ~docv:"CURRENT" ~doc:"Artefact produced by this run.")

let rest_arg =
  Arg.(
    value & pos_right 2 file []
    & info [] ~docv:"PAIR"
        ~doc:"Further BASELINE CURRENT pairs ($(b,all) mode only).")

let tolerance_arg =
  let doc =
    "Allowed relative slowdown per bench entry after median \
     normalisation (bench mode only)."
  in
  Arg.(value & opt float 0.20 & info [ "tolerance" ] ~docv:"FRAC" ~doc)

let floor_ms_arg =
  let doc =
    "Absolute floor in ms applied to medians and per-entry timings \
     before normalisation (bench mode only): guards the \
     median-normalised comparison against 0 ms medians, and entries at \
     or below the floor on both sides are skipped as noise."
  in
  Arg.(value & opt float 0.001 & info [ "floor-ms" ] ~docv:"MS" ~doc)

let cmd =
  Cmd.v
    (Cmd.info "check_baselines" ~doc:"gate CI artefacts against baselines")
    Term.(
      const main $ mode_arg $ baseline_arg $ current_arg $ rest_arg
      $ tolerance_arg $ floor_ms_arg)

let () = exit (Cmd.eval' cmd)
