(* characterize: print the microarchitecture-independent characterization
   of one or more workloads as human-readable tables — the data a
   performance engineer inspects before trusting a clone.

     characterize [BENCH]... [--instrs N] [--trace FILE]
                                              (default: all benchmarks) *)

open Cmdliner
module Profile = Pc_profile.Profile
module I = Pc_isa.Instr

let pct v = 100.0 *. v

let characterize instrs name =
  Pc_obs.Span.with_ ("characterize:" ^ name) @@ fun () ->
  let entry = Pc_workloads.Registry.find name in
  let program =
    Pc_obs.Span.with_ ("compile:" ^ name) (fun () ->
        Pc_workloads.Registry.compile entry)
  in
  let p =
    Pc_obs.Span.with_ ("profile:" ^ name) (fun () ->
        Pc_profile.Collector.profile ~max_instrs:instrs program)
  in
  Printf.printf "=== %s (%s) ===\n" name entry.Pc_workloads.Registry.domain;
  Printf.printf "dynamic instructions   %d\n" p.Profile.instr_count;
  Printf.printf "static instructions    %d\n" (Pc_isa.Program.length program);
  Printf.printf "SFG nodes              %d\n" (Array.length p.Profile.nodes);
  Printf.printf "average block size     %.2f\n" p.Profile.avg_block_size;
  Printf.printf "single-stride coverage %.1f%%\n" (pct p.Profile.single_stride_fraction);
  Printf.printf "unique streams         %d\n" p.Profile.unique_streams;
  Printf.printf "instruction mix:\n";
  Array.iteri
    (fun ci frac ->
      if frac > 0.0005 then
        Printf.printf "  %-8s %6.2f%%\n" (I.class_name (I.class_of_index ci)) (pct frac))
    p.Profile.global_mix;
  (* weighted dependency-distance distribution *)
  let buckets = Array.make (Array.length Profile.dep_bounds + 1) 0.0 in
  let weight = ref 0.0 in
  Array.iter
    (fun (n : Profile.node) ->
      let w = float_of_int n.Profile.count in
      Array.iteri (fun i f -> buckets.(i) <- buckets.(i) +. (w *. f)) n.Profile.dep_fractions;
      weight := !weight +. w)
    p.Profile.nodes;
  Printf.printf "dependency distances:\n";
  Array.iteri
    (fun i b ->
      let label =
        if i < Array.length Profile.dep_bounds then
          Printf.sprintf "<=%d" Profile.dep_bounds.(i)
        else ">32"
      in
      Printf.printf "  %-5s %6.2f%%\n" label (pct (b /. max 1.0 !weight)))
    buckets;
  (* top streams *)
  let streams = Pc_synth.Synth.plan_streams ~max_streams:8 p in
  Printf.printf "top memory streams (stride / run / footprint / refs):\n";
  Array.iter
    (fun (s : Pc_synth.Synth.stream_info) ->
      Printf.printf "  %6dB  run %-5d  %8dB  %8d\n" s.Pc_synth.Synth.stride
        s.Pc_synth.Synth.length s.Pc_synth.Synth.footprint s.Pc_synth.Synth.weight)
    streams;
  (* branch behaviour summary *)
  let execs = ref 0.0 and taken = ref 0.0 and trans = ref 0.0 in
  Array.iter
    (fun (n : Profile.node) ->
      match n.Profile.branch with
      | Some b ->
        let w = float_of_int b.Profile.execs in
        execs := !execs +. w;
        taken := !taken +. (w *. b.Profile.taken_rate);
        trans := !trans +. (w *. b.Profile.transition_rate)
      | None -> ())
    p.Profile.nodes;
  if !execs > 0.0 then begin
    Printf.printf "branches: taken rate %.1f%%, transition rate %.1f%%\n"
      (pct (!taken /. !execs))
      (pct (!trans /. !execs))
  end;
  print_newline ()

let main benches instrs trace =
  Pc_trace.Chrome.with_trace trace @@ fun () ->
  let names = if benches = [] then Pc_workloads.Registry.names else benches in
  List.iter
    (fun name ->
      match characterize instrs name with
      | () -> ()
      | exception Not_found -> Printf.eprintf "unknown benchmark %S\n" name)
    names

let benches_arg = Arg.(value & pos_all string [] & info [] ~docv:"BENCH")

let instrs_arg =
  Arg.(value & opt int 1_000_000 & info [ "instrs" ] ~docv:"N"
         ~doc:"Profiling budget in dynamic instructions.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:
           "Write a Chrome trace_event timeline (schema pc-trace/1) of the \
            run to $(docv); loads in Perfetto / chrome://tracing.")

let cmd =
  Cmd.v
    (Cmd.info "characterize" ~doc:"print workload characterizations")
    Term.(const main $ benches_arg $ instrs_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
