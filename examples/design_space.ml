(* Design-space exploration with clones: sweep reorder-buffer size and
   machine width, comparing the trend predicted by the clone against the
   original application — the "make design tradeoffs with the customer's
   workload" scenario from the paper's introduction.

     dune exec examples/design_space.exe [BENCH]
*)

module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "qsort" in
  let pipeline = Perfclone.Pipeline.clone_benchmark bench in
  let ipc cfg program = (Sim.run ~max_instrs:800_000 cfg program).Sim.ipc in

  Format.printf "ROB-size sweep (width 2) for %s@." bench;
  Format.printf "%8s %10s %10s %14s@." "ROB" "original" "clone" "power(orig)";
  List.iter
    (fun rob ->
      let cfg =
        Config.with_rob_lsq ~rob ~lsq:(rob / 2) (Config.with_widths 2 Config.base)
      in
      let ro = Sim.run ~max_instrs:800_000 cfg pipeline.Perfclone.Pipeline.original in
      let rc = Sim.run ~max_instrs:800_000 cfg pipeline.Perfclone.Pipeline.clone in
      Format.printf "%8d %10.3f %10.3f %14.2f@." rob ro.Sim.ipc rc.Sim.ipc
        (Pc_power.Power.total cfg ro))
    [ 8; 16; 32; 64; 128 ];

  Format.printf "@.width sweep (ROB 32) for %s@." bench;
  Format.printf "%8s %10s %10s@." "width" "original" "clone";
  List.iter
    (fun w ->
      let cfg = Config.with_rob_lsq ~rob:32 ~lsq:16 (Config.with_widths w Config.base) in
      Format.printf "%8d %10.3f %10.3f@." w
        (ipc cfg pipeline.Perfclone.Pipeline.original)
        (ipc cfg pipeline.Perfclone.Pipeline.clone))
    [ 1; 2; 4; 8 ];

  Format.printf
    "@.An architect reading only the clone columns picks the same knee points.@."
