(* What-if studies on the abstract workload model (paper Section 3.1.4:
   the simple microarchitecture-independent model "provides us with the
   flexibility to study what-if scenarios (by altering the memory access
   pattern of the program), which is almost impossible with a more
   complex model").

   Here: take a real workload's profile, then ask "what if the data
   footprint doubled?" and "what if spatial locality halved?" by editing
   the profile before synthesis — no source code needed.

     dune exec examples/whatif_locality.exe [BENCH]
*)

module Profile = Pc_profile.Profile
module Synth = Pc_synth.Synth
module Machine = Pc_funcsim.Machine

(* Rewrite every memory op in the profile. *)
let map_mem_ops f (p : Profile.t) =
  {
    p with
    Profile.nodes =
      Array.map
        (fun (n : Profile.node) -> { n with Profile.mem_ops = Array.map f n.Profile.mem_ops })
        p.Profile.nodes;
  }

let double_footprint (m : Profile.mem_op) =
  {
    m with
    Profile.footprint = 2 * m.Profile.footprint;
    window_span = 2 * m.Profile.window_span;
    stream_length = 2 * m.Profile.stream_length;
  }

let halve_spatial_locality (m : Profile.mem_op) =
  (* Doubling every stride halves the useful bytes per cache line. *)
  { m with Profile.stride = 2 * m.Profile.stride }

let l1d_mpi program =
  let cfg = Pc_uarch.Config.base in
  let r = Pc_uarch.Sim.run ~max_instrs:1_000_000 cfg program in
  (Pc_uarch.Sim.l1d_mpi r, r.Pc_uarch.Sim.ipc)

let report label program =
  let mpi, ipc = l1d_mpi program in
  Format.printf "  %-28s L1D misses/instr %.5f   IPC %.3f@." label mpi ipc

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fft" in
  let pipeline = Perfclone.Pipeline.clone_benchmark bench in
  let profile = pipeline.Perfclone.Pipeline.profile in
  Format.printf "what-if scenarios for %s on the base configuration:@." bench;
  report "clone (as profiled)" pipeline.Perfclone.Pipeline.clone;
  let variant name f =
    let p = map_mem_ops f profile in
    let clone = Synth.generate { p with Profile.name = p.Profile.name ^ "-" ^ name } in
    report name clone
  in
  variant "2x data footprint" double_footprint;
  variant "halved spatial locality" halve_spatial_locality;
  Format.printf
    "@.The architect explores workload futures without touching any source code.@."
