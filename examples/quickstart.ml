(* Quickstart: clone one proprietary-stand-in workload and check that the
   clone behaves like the original on a microarchitecture it has never
   seen.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. Take a "proprietary" workload.  Here it is a benchmark from the
     registry; any SRISC binary works (Pipeline.clone_program). *)
  let pipeline = Perfclone.Pipeline.clone_benchmark "sha" in
  let profile = pipeline.Perfclone.Pipeline.profile in
  Format.printf "%a@." Pc_profile.Profile.pp_summary profile;

  (* 2. The clone is a different program... *)
  Format.printf "original: %4d static instructions@."
    (Pc_isa.Program.length pipeline.Perfclone.Pipeline.original);
  Format.printf "clone:    %4d static instructions (different code)@.@."
    (Pc_isa.Program.length pipeline.Perfclone.Pipeline.clone);

  (* 3. ...with the same performance behaviour.  Compare IPC on the base
     configuration and on a configuration the profile never saw. *)
  let check cfg =
    let ro = Pc_uarch.Sim.run ~max_instrs:1_000_000 cfg pipeline.Perfclone.Pipeline.original in
    let rc = Pc_uarch.Sim.run ~max_instrs:1_000_000 cfg pipeline.Perfclone.Pipeline.clone in
    Format.printf "%-28s IPC original %.3f, clone %.3f (%.1f%% error)@."
      cfg.Pc_uarch.Config.name ro.Pc_uarch.Sim.ipc rc.Pc_uarch.Sim.ipc
      (100.0
      *. Pc_stats.Stats.abs_rel_error ~actual:ro.Pc_uarch.Sim.ipc
           ~predicted:rc.Pc_uarch.Sim.ipc)
  in
  check Pc_uarch.Config.base;
  check (Pc_uarch.Config.with_widths 2 Pc_uarch.Config.base);
  check (Pc_uarch.Config.with_in_order true Pc_uarch.Config.base);

  (* 4. Disseminate: the clone as C-with-asm (what a vendor would ship). *)
  let c = Perfclone.Pipeline.c_source pipeline in
  Format.printf "@.The dissemination artefact starts:@.%s...@."
    (String.sub c 0 (min 240 (String.length c)))
