(* Cache design study: use a clone in lieu of the original application to
   rank 28 L1 D-cache configurations (the paper's Section 5.1 scenario —
   an architect picking a cache without access to the customer code).

     dune exec examples/cache_study.exe [BENCH]
*)

module Study = Pc_caches.Study
module Machine = Pc_funcsim.Machine

let mpi_of program =
  Study.run_trace (fun emit ->
      let m = Machine.load program in
      Machine.run ~max_instrs:2_000_000 m (fun ev ->
          if ev.Machine.mem_addr >= 0 then emit ev.Machine.mem_addr))

let bar width frac =
  let n = int_of_float (frac *. float_of_int width) in
  String.make (min width n) '#'

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "dijkstra" in
  let pipeline = Perfclone.Pipeline.clone_benchmark bench in
  let orig = mpi_of pipeline.Perfclone.Pipeline.original in
  let clone = mpi_of pipeline.Perfclone.Pipeline.clone in
  let peak =
    Array.fold_left (fun acc (r : Study.result) -> max acc r.Study.mpi) 1e-12 orig
  in
  Format.printf "misses per instruction across the 28-cache study (%s)@." bench;
  Format.printf "%-22s %10s %10s@." "configuration" "original" "clone";
  Array.iteri
    (fun i (ro : Study.result) ->
      Format.printf "%-22s %10.5f %10.5f  |%-20s|%-20s@."
        (Pc_caches.Cache.config_name ro.Study.config)
        ro.Study.mpi clone.(i).Study.mpi
        (bar 20 (ro.Study.mpi /. peak))
        (bar 20 (clone.(i).Study.mpi /. peak)))
    orig;
  (* The architect's question: do both agree on the ranking? *)
  let ranks v = Pc_stats.Stats.rankings v in
  let mpi r = Array.map (fun (x : Study.result) -> x.Study.mpi) r in
  let rank_corr = Pc_stats.Stats.spearman (mpi orig) (mpi clone) in
  Format.printf "@.rank correlation between original and clone: %.3f@." rank_corr;
  let ro = ranks (mpi orig) and rc = ranks (mpi clone) in
  let best v =
    let bi = ref 0 in
    Array.iteri (fun i r -> if r < v.(!bi) then bi := i) v;
    !bi
  in
  Format.printf "best configuration by original: %s@."
    (Pc_caches.Cache.config_name Study.configs.(best ro));
  Format.printf "best configuration by clone:    %s@."
    (Pc_caches.Cache.config_name Study.configs.(best rc))
