(* The model's limits, demonstrated honestly (paper Section 6: "the data
   behavior associated with code that applies pointer chasing through a
   linked list cannot be modeled using a stride model as we do in this
   paper").

   This example builds a linked-list workload (randomly permuted next
   pointers, the classic pointer-chasing microbenchmark), clones it, and
   shows where the clone stops tracking: load-to-load address chains and
   non-strided reference sequences.

     dune exec examples/limitations.exe
*)

open Pc_kc.Ast
module Machine = Pc_funcsim.Machine
module Study = Pc_caches.Study

let n_nodes = 2048

(* A random cyclic permutation: node i's next pointer. *)
let next_init =
  let rng = Pc_util.Rng.create 2027 in
  let order = Array.init n_nodes (fun i -> i) in
  Pc_util.Rng.shuffle rng order;
  let next = Array.make n_nodes 0L in
  for k = 0 to n_nodes - 1 do
    next.(order.(k)) <- Int64.of_int order.((k + 1) mod n_nodes)
  done;
  next

let pointer_chase_prog =
  {
    globals = [ garr "next" ~init:next_init n_nodes ];
    funs =
      [
        fn "main" ~locals:[ ("cur", I); ("steps", I); ("acc", I) ]
          [
            for_ "steps" (i 0) (i 60_000)
              [
                set "cur" (ld "next" (v "cur"));
                set "acc" (v "acc" +: v "cur");
              ];
            ret (v "acc" &: i 0xFFFFFFF);
          ];
      ];
  }

let mpi program budget =
  Study.run_trace (fun emit ->
      let m = Machine.load program in
      Machine.run ~max_instrs:budget m (fun ev ->
          if ev.Machine.mem_addr >= 0 then emit ev.Machine.mem_addr))
  |> Array.map (fun (r : Study.result) -> r.Study.mpi)

let () =
  let original = Pc_kc.Compile.compile ~name:"pointer_chase" pointer_chase_prog in
  let pipeline = Perfclone.Pipeline.clone_program ~profile_instrs:600_000 original in
  let profile = pipeline.Perfclone.Pipeline.profile in
  Format.printf "pointer-chase profile: single-stride fraction %.3f (low, as expected)@."
    profile.Pc_profile.Profile.single_stride_fraction;

  (* cache-study correlation *)
  let orig = mpi original 600_000 in
  let clone = mpi pipeline.Perfclone.Pipeline.clone 1_200_000 in
  let rel v =
    let r = v.(0) in
    Array.map (fun x -> if r = 0.0 then x else x /. r) (Array.sub v 1 27)
  in
  Format.printf "cache-study correlation: %.3f@."
    (Pc_stats.Stats.pearson (rel clone) (rel orig));

  (* IPC: the serialised load-load chain is the bigger casualty *)
  let cfg = Pc_uarch.Config.with_rob_lsq ~rob:64 ~lsq:32
      (Pc_uarch.Config.with_widths 4 Pc_uarch.Config.base)
  in
  let ro = Pc_uarch.Sim.run ~max_instrs:600_000 cfg original in
  let rc = Pc_uarch.Sim.run ~max_instrs:600_000 cfg pipeline.Perfclone.Pipeline.clone in
  Format.printf "IPC on a wide machine: original %.3f, clone %.3f@." ro.Pc_uarch.Sim.ipc
    rc.Pc_uarch.Sim.ipc;
  Format.printf
    "@.The chase serialises on the load->address dependence; the clone's@.";
  Format.printf
    "streams have no such chain, so it overlaps its loads and runs faster.@.";
  Format.printf
    "This is the boundary the paper draws for the first-order stride model@.";
  Format.printf "(Section 6), reproduced here as a built-in counter-example.@."
