(* Tests for pc_branch: static, bimodal and GAp predictors. *)

module P = Pc_branch.Predictor

let observe_sequence pred outcomes =
  List.fold_left
    (fun wrong (pc, taken) -> if P.observe pred ~pc ~taken then wrong else wrong + 1)
    0 outcomes

let repeat n x = List.init n (fun _ -> x)

(* --- static predictors --- *)

let test_taken_static () =
  let p = P.create P.Taken in
  let wrong = observe_sequence p (repeat 100 (0, true) @ repeat 50 (0, false)) in
  Alcotest.(check int) "mispredicts exactly the not-taken" 50 wrong;
  Alcotest.(check int) "lookups" 150 (P.lookups p)

let test_not_taken_static () =
  let p = P.create P.Not_taken in
  let wrong = observe_sequence p (repeat 100 (0, true) @ repeat 50 (0, false)) in
  Alcotest.(check int) "mispredicts exactly the taken" 100 wrong

let test_perfect () =
  let p = P.create P.Perfect in
  let wrong =
    observe_sequence p (List.init 100 (fun i -> (i mod 7, i mod 3 = 0)))
  in
  Alcotest.(check int) "never wrong" 0 wrong;
  Alcotest.(check (float 0.0)) "rate 0" 0.0 (P.misprediction_rate p)

(* --- bimodal --- *)

let test_bimodal_learns_bias () =
  let p = P.create (P.Bimodal 1024) in
  (* strongly biased taken branch: after warmup, always predicted *)
  let _ = observe_sequence p (repeat 10 (0x40, true)) in
  Alcotest.(check bool) "predicts taken" true (P.predict p ~pc:0x40);
  let wrong = observe_sequence p (repeat 100 (0x40, true)) in
  Alcotest.(check int) "no mispredictions once trained" 0 wrong

let test_bimodal_hysteresis () =
  let p = P.create (P.Bimodal 1024) in
  let _ = observe_sequence p (repeat 10 (0, true)) in
  (* one not-taken outcome must not flip a saturated counter *)
  let _ = observe_sequence p [ (0, false) ] in
  Alcotest.(check bool) "still predicts taken" true (P.predict p ~pc:0)

let test_bimodal_alternating_is_hard () =
  let p = P.create (P.Bimodal 1024) in
  let outcomes = List.init 200 (fun i -> (0, i mod 2 = 0)) in
  let wrong = observe_sequence p outcomes in
  (* weakly-biased counters mispredict alternation about half the time *)
  Alcotest.(check bool) "roughly half wrong" true (wrong > 60 && wrong < 140)

let test_bimodal_aliasing () =
  (* two branches mapping to the same entry interfere *)
  let p = P.create (P.Bimodal 16) in
  let a = 0x10 and b = 0x20 in
  (* same index (16-entry table): 0x10 land 15 = 0 = 0x20 land 15 *)
  let _ = observe_sequence p (repeat 8 (a, true)) in
  let _ = observe_sequence p (repeat 8 (b, false)) in
  Alcotest.(check bool) "b pushed the shared counter to not-taken" false
    (P.predict p ~pc:a)

let test_bimodal_validation () =
  Alcotest.(check bool) "non-power-of-two rejected" true
    (match P.create (P.Bimodal 100) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- GAp --- *)

let test_gap_learns_alternation () =
  (* Global history lets GAp predict a strict alternation perfectly. *)
  let p = P.create (P.Gap { history_bits = 4; tables = 16 }) in
  let outcomes = List.init 400 (fun i -> (0x8, i mod 2 = 0)) in
  let warmup = observe_sequence p outcomes in
  let wrong = observe_sequence p outcomes in
  Alcotest.(check bool) "no worse after training" true (wrong <= warmup);
  Alcotest.(check bool) "few errors" true (wrong < 10)

let test_gap_learns_period4 () =
  let p = P.create P.base_gap in
  let outcomes = List.init 800 (fun i -> (0x8, i mod 4 < 3)) in
  let _warmup = observe_sequence p outcomes in
  let wrong = observe_sequence p outcomes in
  Alcotest.(check bool) "period-4 pattern learned" true (wrong < 20)

let test_gap_random_is_hard () =
  let p = P.create P.base_gap in
  let rng = Pc_util.Rng.create 5 in
  let outcomes = List.init 2000 (fun _ -> (0x8, Pc_util.Rng.bool rng)) in
  let wrong = observe_sequence p outcomes in
  (* unpredictable: close to 50% *)
  Alcotest.(check bool) "near half wrong" true (wrong > 700 && wrong < 1300)

let test_gap_separate_tables () =
  (* Different pcs use different pattern tables: training one branch
     must not disturb another with a different pc. *)
  let p = P.create (P.Gap { history_bits = 2; tables = 256 }) in
  let _ = observe_sequence p (repeat 50 (1, true)) in
  let _ = observe_sequence p (repeat 50 (2, false)) in
  (* both stay correct *)
  let w1 = observe_sequence p (repeat 20 (1, true)) in
  let w2 = observe_sequence p (repeat 20 (2, false)) in
  Alcotest.(check int) "branch 1 stable" 0 w1;
  Alcotest.(check int) "branch 2 stable" 0 w2

let test_gap_validation () =
  Alcotest.(check bool) "bad history bits" true
    (match P.create (P.Gap { history_bits = 0; tables = 16 }) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad table count" true
    (match P.create (P.Gap { history_bits = 4; tables = 100 }) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- gshare / PAp / tournament --- *)

let test_gshare_learns_global_patterns () =
  let p = P.create (P.Gshare { history_bits = 8; entries = 4096 }) in
  (* two correlated branches: the second repeats the first's direction *)
  let outcomes =
    List.concat
      (List.init 300 (fun i ->
           let d = i mod 3 = 0 in
           [ (0x10, d); (0x24, d) ]))
  in
  let _warm = observe_sequence p outcomes in
  let wrong = observe_sequence p outcomes in
  Alcotest.(check bool) "correlated branches learned" true (wrong < 30)

let test_gshare_validation () =
  Alcotest.(check bool) "bad entries" true
    (match P.create (P.Gshare { history_bits = 8; entries = 100 }) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_pap_learns_local_period () =
  (* A period-3 local pattern with an interleaved noisy branch: PAp's
     per-address history isolates the periodic one. *)
  let p = P.create (P.Pap { history_bits = 6; tables = 64 }) in
  let rng = Pc_util.Rng.create 3 in
  let outcomes =
    List.concat
      (List.init 500 (fun i ->
           [ (0x8, i mod 3 = 0); (0x9, Pc_util.Rng.bool rng) ]))
  in
  let _warm = observe_sequence p outcomes in
  (* measure only the periodic branch *)
  let periodic = List.init 300 (fun i -> (0x8, i mod 3 = 0)) in
  let wrong = observe_sequence p periodic in
  Alcotest.(check bool) "local period learned despite noise" true (wrong < 30)

let test_tournament_picks_better_component () =
  (* alternation: gshare learns it, bimodal cannot — the tournament must
     converge to gshare-level accuracy *)
  let mk () = P.Tournament
      { meta_entries = 256; a = P.Bimodal 1024;
        b = P.Gshare { history_bits = 8; entries = 4096 } }
  in
  let p = P.create (mk ()) in
  let outcomes = List.init 600 (fun i -> (0x8, i mod 2 = 0)) in
  let _warm = observe_sequence p outcomes in
  let wrong = observe_sequence p outcomes in
  Alcotest.(check bool) "tournament reaches the good component" true (wrong < 30)

let test_tournament_validation () =
  Alcotest.(check bool) "bad meta entries" true
    (match P.create (P.Tournament { meta_entries = 3; a = P.Taken; b = P.Not_taken }) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_config_names () =
  Alcotest.(check string) "taken" "taken" (P.config_name P.Taken);
  Alcotest.(check string) "gap" "gap-h8-t256" (P.config_name P.base_gap);
  Alcotest.(check string) "gshare" "gshare-h8-e4096"
    (P.config_name (P.Gshare { history_bits = 8; entries = 4096 }));
  Alcotest.(check string) "tournament" "tournament(taken,not-taken)"
    (P.config_name (P.Tournament { meta_entries = 4; a = P.Taken; b = P.Not_taken }))

let test_rate_accounting () =
  let p = P.create P.Not_taken in
  let _ = observe_sequence p [ (0, true); (0, false); (0, true); (0, true) ] in
  Alcotest.(check int) "mispredictions" 3 (P.mispredictions p);
  Alcotest.(check (float 1e-9)) "rate" 0.75 (P.misprediction_rate p)

let qcheck_biased_branches_are_predictable =
  QCheck.Test.make ~name:"heavily biased branches mispredict rarely (bimodal)"
    ~count:50
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Pc_util.Rng.create seed in
      let p = P.create (P.Bimodal 256) in
      let wrong = ref 0 in
      for _ = 1 to 500 do
        (* 95% taken *)
        let taken = Pc_util.Rng.int rng 100 < 95 in
        if not (P.observe p ~pc:0x7 ~taken) then incr wrong
      done;
      !wrong < 75)

let qcheck_mispredict_rate_bounds =
  QCheck.Test.make ~name:"misprediction rate within [0,1] for any stream" ~count:100
    QCheck.(pair (int_range 0 7) (list_of_size Gen.(int_range 1 300) bool))
    (fun (which, outcomes) ->
      let cfg =
        match which with
        | 0 -> P.Taken
        | 1 -> P.Not_taken
        | 2 -> P.Bimodal 64
        | 3 -> P.base_gap
        | 4 -> P.Gshare { history_bits = 6; entries = 256 }
        | 5 -> P.Pap { history_bits = 4; tables = 32 }
        | 6 ->
          P.Tournament { meta_entries = 64; a = P.Bimodal 64; b = P.base_gap }
        | _ -> P.Perfect
      in
      let p = P.create cfg in
      List.iteri (fun i taken -> ignore (P.observe p ~pc:(i mod 13) ~taken)) outcomes;
      let r = P.misprediction_rate p in
      r >= 0.0 && r <= 1.0)

let () =
  Alcotest.run "pc_branch"
    [
      ( "static",
        [
          Alcotest.test_case "always taken" `Quick test_taken_static;
          Alcotest.test_case "always not-taken" `Quick test_not_taken_static;
          Alcotest.test_case "perfect oracle" `Quick test_perfect;
        ] );
      ( "bimodal",
        [
          Alcotest.test_case "learns bias" `Quick test_bimodal_learns_bias;
          Alcotest.test_case "two-bit hysteresis" `Quick test_bimodal_hysteresis;
          Alcotest.test_case "alternation is hard" `Quick test_bimodal_alternating_is_hard;
          Alcotest.test_case "aliasing interference" `Quick test_bimodal_aliasing;
          Alcotest.test_case "validation" `Quick test_bimodal_validation;
          QCheck_alcotest.to_alcotest qcheck_biased_branches_are_predictable;
        ] );
      ( "gap",
        [
          Alcotest.test_case "learns alternation" `Quick test_gap_learns_alternation;
          Alcotest.test_case "learns period-4 patterns" `Quick test_gap_learns_period4;
          Alcotest.test_case "random is hard" `Quick test_gap_random_is_hard;
          Alcotest.test_case "per-address tables" `Quick test_gap_separate_tables;
          Alcotest.test_case "validation" `Quick test_gap_validation;
        ] );
      ( "advanced",
        [
          Alcotest.test_case "gshare learns correlated branches" `Quick
            test_gshare_learns_global_patterns;
          Alcotest.test_case "gshare validation" `Quick test_gshare_validation;
          Alcotest.test_case "PAp learns local periods" `Quick test_pap_learns_local_period;
          Alcotest.test_case "tournament picks the better component" `Quick
            test_tournament_picks_better_component;
          Alcotest.test_case "tournament validation" `Quick test_tournament_validation;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "config names" `Quick test_config_names;
          Alcotest.test_case "rates" `Quick test_rate_accounting;
          QCheck_alcotest.to_alcotest qcheck_mispredict_rate_bounds;
        ] );
    ]
