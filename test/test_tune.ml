(* Tests for pc_tune: the closed-loop knob search.

   The load-bearing properties: the tuned result can never be worse
   than the default knobs (the default is always candidate 0);
   per-generation best fitness is monotone; winners are byte-identical
   at every pool width; the on-disk store replays a search without
   changing its outcome; knob sampling is modulo-bias free; and stress
   mode converges onto a reachable envelope. *)

module Synth = Pc_synth.Synth
module Profile = Pc_profile.Profile
module Collector = Pc_profile.Collector
module Fidelity = Pc_trace.Fidelity
module Fitness = Pc_tune.Fitness
module Search = Pc_tune.Search
module Tune_store = Pc_tune.Tune_store
module Report = Pc_tune.Report
module Pool = Pc_exec.Pool
module Rng = Pc_util.Rng
module Json = Pc_util.Json

let profile_store : (string, Profile.t) Pc_exec.Store.t = Pc_exec.Store.create ()

let profile name =
  Pc_exec.Store.find_or_compute profile_store name (fun () ->
      Collector.profile ~max_instrs:60_000
        (Pc_workloads.Registry.compile (Pc_workloads.Registry.find name)))

let mimic = Fitness.Mimic Fitness.default_weights

let run_search ?pool ?store ?(budget = 10) ?(seed = 1) ?(mode = mimic) name =
  Search.run ?pool ?store ~budget ~bench:name ~seed ~profile_instrs:60_000
    ~target_dynamic:20_000 ~mode (profile name)

let tmpdir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

(* --- knob sampling: validity and modulo-bias freedom --- *)

let check_valid_knobs (k : Search.knobs) =
  let is_pow2 n = n > 0 && n land (n - 1) = 0 in
  k.Search.k_max_streams >= 1
  && k.Search.k_max_streams <= 12
  && k.Search.k_block_scale > 0.0
  && k.Search.k_dep_jitter >= 0.0
  && k.Search.k_dep_jitter <= 1.0
  && Float.is_finite k.Search.k_stride_bias
  && is_pow2 k.Search.k_period_min
  && is_pow2 k.Search.k_period_max
  && k.Search.k_period_min >= 2
  && k.Search.k_period_min <= k.Search.k_period_max
  && k.Search.k_period_max <= 256

let test_random_knobs_distribution () =
  (* 12 stream counts is not a power of two: a [bits mod 12] draw would
     visibly over-sample the low counts (bias ~ 2^-31 is fine, 1/12 of
     the range is not).  12k rejection-sampled draws keep every count
     within a generous band around the expected 1000. *)
  let rng = Rng.create 42 in
  let counts = Array.make 13 0 in
  for _ = 1 to 12_000 do
    let k = Search.random_knobs rng in
    if not (check_valid_knobs k) then Alcotest.fail "invalid random knobs";
    counts.(k.Search.k_max_streams) <- counts.(k.Search.k_max_streams) + 1
  done;
  for s = 1 to 12 do
    if counts.(s) < 800 || counts.(s) > 1200 then
      Alcotest.failf "max_streams=%d drawn %d times (expected ~1000)" s
        counts.(s)
  done

let qcheck_mutate_preserves_validity =
  QCheck.Test.make ~name:"mutation stays on the knob grids" ~count:200
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let k = ref (Search.random_knobs rng) in
      for _ = 1 to 20 do
        k := Search.mutate rng !k;
        if not (check_valid_knobs !k) then
          QCheck.Test.fail_reportf "invalid mutated knobs (seed %d)" seed
      done;
      true)

let test_default_knobs_neutral () =
  let o = Search.options_of_knobs ~seed:7 ~target_dynamic:123 Search.default_knobs in
  Alcotest.(check bool) "default knobs denote default options" true
    (o = { Synth.default_options with Synth.seed = 7; target_dynamic = 123 })

(* --- fitness --- *)

let perfect =
  {
    Fidelity.instr_mix_l1 = 0.0;
    dep_dist_l1 = 0.0;
    stride_agreement = 1.0;
    single_stride_err = 0.0;
    taken_rate_err = 0.0;
    transition_rate_err = 0.0;
    sfg_block_ratio = 1.0;
    avg_block_size_ratio = 1.0;
  }

let report ?(phases = []) c =
  { Fidelity.bench = "x"; orig_instrs = 1; clone_instrs = 1; c; phases }

let phase_row idx c =
  {
    Fidelity.p_index = idx;
    p_orig_start = 0;
    p_orig_instrs = 1;
    p_clone_start = 0;
    p_clone_instrs = 1;
    p_c = c;
  }

let test_fitness_of_report () =
  let e = Fitness.of_report (report perfect) in
  Alcotest.(check (float 1e-9)) "perfect clone scores 0" 0.0 e.Fitness.fitness;
  let e =
    Fitness.of_report (report { perfect with Fidelity.instr_mix_l1 = 0.3 })
  in
  Alcotest.(check (float 1e-9)) "worst weighted error wins" 0.3
    e.Fitness.fitness;
  (* the 0.5-weighted size ratio loses against an equal raw error *)
  let e =
    Fitness.of_report
      (report
         {
           perfect with
           Fidelity.instr_mix_l1 = 0.3;
           sfg_block_ratio = Float.exp 0.4;
         })
  in
  Alcotest.(check (float 1e-9)) "ratio errors are |ln r| * 0.5" 0.3
    e.Fitness.fitness;
  (* a bad phase dominates a good global row *)
  let bad_phase = { perfect with Fidelity.dep_dist_l1 = 0.9 } in
  let e =
    Fitness.of_report (report ~phases:[ phase_row 0 bad_phase ] perfect)
  in
  Alcotest.(check (float 1e-9)) "phase rows participate" 0.9 e.Fitness.fitness;
  (* null (empty-slice) phase rows are skipped, not scored as 1e9 *)
  let null =
    {
      Fidelity.instr_mix_l1 = Float.nan;
      dep_dist_l1 = Float.nan;
      stride_agreement = Float.nan;
      single_stride_err = Float.nan;
      taken_rate_err = Float.nan;
      transition_rate_err = Float.nan;
      sfg_block_ratio = Float.nan;
      avg_block_size_ratio = Float.nan;
    }
  in
  let e = Fitness.of_report (report ~phases:[ phase_row 0 null ] perfect) in
  Alcotest.(check (float 1e-9)) "null phase rows skipped" 0.0
    e.Fitness.fitness;
  (* degenerate values clamp to a large finite loss, never NaN *)
  let e =
    Fitness.of_report (report { perfect with Fidelity.sfg_block_ratio = 0.0 })
  in
  Alcotest.(check bool) "degenerate ratio clamps finite" true
    (Float.is_finite e.Fitness.fitness && e.Fitness.fitness >= 1e8)

let test_envelope_parsing () =
  (match Fitness.envelope_of_string "ipc=1.2,mpki=25" with
  | Ok env ->
    Alcotest.(check (option (float 1e-9))) "ipc" (Some 1.2) env.Fitness.e_ipc;
    Alcotest.(check (option (float 1e-9))) "mpki" (Some 25.0)
      env.Fitness.e_mpki;
    Alcotest.(check (option (float 1e-9))) "power unset" None
      env.Fitness.e_power
  | Error msg -> Alcotest.failf "spec rejected: %s" msg);
  List.iter
    (fun spec ->
      match Fitness.envelope_of_string spec with
      | Ok _ -> Alcotest.failf "bad spec %S accepted" spec
      | Error _ -> ())
    [ ""; "ipc"; "ipc=-1"; "ipc=nan"; "watts=3"; "ipc=0" ]

(* --- the search loop --- *)

let test_search_never_worse_than_default () =
  let r = run_search "crc32" in
  Alcotest.(check bool) "best <= default" true
    (r.Search.r_best.Fitness.fitness <= r.Search.r_default.Fitness.fitness);
  Alcotest.(check bool) "budget respected" true
    (r.Search.r_evals <= r.Search.r_budget);
  Alcotest.(check bool) "generations recorded" true
    (List.length r.Search.r_generations >= 1)

let qcheck_best_fitness_monotone =
  QCheck.Test.make ~name:"successive halving is fitness-monotone" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let r = run_search ~seed "qsort" in
      let rec monotone = function
        | a :: (b :: _ as tl) ->
          if b.Search.g_best > a.Search.g_best +. 1e-12 then
            QCheck.Test.fail_reportf
              "best fitness rose between generations (seed %d)" seed
          else monotone tl
        | _ -> true
      in
      ignore (monotone r.Search.r_generations);
      (match List.rev r.Search.r_generations with
      | last :: _ ->
        if
          Float.abs (last.Search.g_best -. r.Search.r_best.Fitness.fitness)
          > 1e-12
        then
          QCheck.Test.fail_reportf "final generation best <> overall best"
      | [] -> ());
      r.Search.r_best.Fitness.fitness <= r.Search.r_default.Fitness.fitness)

let strip_results (r : Search.result) =
  (* everything except the store hit/miss split, which legitimately
     differs between cold and warm runs *)
  ( r.Search.r_bench,
    r.Search.r_evals,
    r.Search.r_memo_hits,
    r.Search.r_generations,
    r.Search.r_default,
    r.Search.r_best,
    r.Search.r_best_knobs )

let test_search_pool_width_identity () =
  let serial = run_search ~pool:Pool.serial "crc32" in
  let parallel = run_search ~pool:(Pool.create ~num_domains:4) "crc32" in
  Alcotest.(check bool) "identical winners at -j1 and -j4" true
    (serial = parallel)

let test_search_store_cold_warm () =
  let dir = tmpdir "pc-tune-test" in
  let store = Tune_store.create dir in
  let bare = run_search "sha" in
  let cold = run_search ~store "sha" in
  let warm = run_search ~store "sha" in
  Alcotest.(check bool) "store never changes the outcome" true
    (strip_results bare = strip_results cold
    && strip_results cold = strip_results warm);
  Alcotest.(check int) "cold run misses every unique eval"
    cold.Search.r_evals cold.Search.r_store_misses;
  Alcotest.(check int) "warm run hits every unique eval" warm.Search.r_evals
    warm.Search.r_store_hits;
  Alcotest.(check int) "warm run computes nothing" 0
    warm.Search.r_store_misses

let test_store_corruption_recovery () =
  let dir = tmpdir "pc-tune-corrupt" in
  let store = Tune_store.create dir in
  let key =
    Tune_store.key ~profile_id:"p" ~knobs_id:"k" ~mode_id:"m" ~seed:1
      ~profile_instrs:1 ~target_dynamic:1 ()
  in
  let eval = { Fitness.fitness = 0.25; components = [ ("x", 0.25) ] } in
  Tune_store.store store key eval;
  (match Tune_store.find store key with
  | Some e -> Alcotest.(check (float 1e-9)) "roundtrip" 0.25 e.Fitness.fitness
  | None -> Alcotest.fail "stored entry not found");
  (* truncate the entry to garbage: find must drop it and miss, and a
     recompute must repopulate it *)
  let file = Filename.concat dir (key ^ ".eval") in
  let oc = open_out_bin file in
  output_string oc "pc-tune-eval/1\ngarbage";
  close_out oc;
  Alcotest.(check bool) "corrupt entry reads as a miss" true
    (Tune_store.find store key = None);
  Alcotest.(check bool) "corrupt entry removed" false (Sys.file_exists file);
  let recomputed = Tune_store.find_or_compute store key (fun () -> eval) in
  Alcotest.(check (float 1e-9)) "recomputed" 0.25 recomputed.Fitness.fitness;
  Alcotest.(check bool) "repopulated" true (Tune_store.find store key <> None)

let test_store_eviction () =
  let dir = tmpdir "pc-tune-evict" in
  let store = Tune_store.create ~max_entries:3 dir in
  for i = 1 to 6 do
    let key =
      Tune_store.key ~profile_id:(string_of_int i) ~knobs_id:"k" ~mode_id:"m"
        ~seed:1 ~profile_instrs:1 ~target_dynamic:1 ()
    in
    Tune_store.store store key { Fitness.fitness = 0.0; components = [] }
  done;
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".eval")
  in
  Alcotest.(check int) "eviction keeps max_entries" 3 (List.length entries)

(* --- stress mode --- *)

let test_stress_converges_on_reachable_envelope () =
  (* measure the default clone, then ask the tuner to hit exactly that
     envelope: the default candidate scores 0, so the search must too *)
  let p = profile "crc32" in
  let options =
    { Synth.default_options with Synth.seed = 1; target_dynamic = 20_000 }
  in
  let clone = Synth.generate ~options p in
  let probe =
    Fitness.measure_stress ~max_instrs:60_000
      (Fitness.envelope ~ipc:1.0 ~mpki:1.0 ())
      clone
  in
  let measured name = List.assoc name probe.Fitness.components in
  let ipc = measured "ipc" and mpki = measured "mpki" in
  Alcotest.(check bool) "probe measured positive rates" true
    (ipc > 0.0 && mpki > 0.0);
  let mode = Fitness.Stress (Fitness.envelope ~ipc ~mpki ()) in
  let r = run_search ~budget:6 ~mode "crc32" in
  Alcotest.(check (float 1e-9)) "search reaches the reachable envelope" 0.0
    r.Search.r_best.Fitness.fitness

(* --- report + gate --- *)

let json_exn s =
  match Json.parse s with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "JSON did not parse: %s" msg

let test_report_json_roundtrip () =
  let r = run_search "crc32" in
  let doc =
    json_exn
      (Report.json ~seed:1 ~profile_instrs:60_000 ~clone_dynamic:20_000
         ~mode:mimic [ r ])
  in
  Alcotest.(check (option string)) "schema" (Some "pc-tune/1")
    (Option.bind (Json.member "schema" doc) Json.to_string);
  match Option.bind (Json.member "benchmarks" doc) Json.to_list with
  | Some [ row ] ->
    List.iter
      (fun field ->
        if Json.member field row = None then
          Alcotest.failf "field %s missing from row" field)
      [
        "bench"; "budget"; "evals"; "memo_hits"; "default_fitness";
        "best_fitness"; "knobs"; "generations"; "store";
      ]
  | _ -> Alcotest.fail "expected one benchmark row"

let tune_report_doc ~default_fitness ~best_fitness =
  Printf.sprintf
    {|{"schema":"pc-tune/1","seed":1,"profile_instrs":1,"clone_dynamic":1,
       "mode":"mimic","benchmarks":[
         {"bench":"x","budget":8,"evals":8,"memo_hits":0,
          "default_fitness":%s,"best_fitness":%s,
          "knobs":{},"generations":[],"store":{"hits":0,"misses":8}}]}|}
    default_fitness best_fitness

let test_tune_check_gate () =
  let thresholds =
    json_exn
      {|{"schema":"pc-tune-thresholds/1",
         "max_best_fitness":0.8,"min_gain":0.0,"min_improved":1}|}
  in
  let check default best =
    Report.check ~thresholds
      ~report:(json_exn (tune_report_doc ~default_fitness:default ~best_fitness:best))
  in
  Alcotest.(check (list string)) "improving report passes" []
    (check "0.6" "0.5");
  Alcotest.(check bool) "regression (best > default) flagged" true
    (check "0.5" "0.6" <> []);
  Alcotest.(check bool) "no strict improvement flagged" true
    (check "0.5" "0.5" <> []);
  Alcotest.(check bool) "absolute fitness cap enforced" true
    (check "0.95" "0.9" <> []);
  Alcotest.(check bool) "non-finite value flagged" true
    (check "0.6" "null" <> []);
  Alcotest.(check bool) "schema drift flagged" true
    (Report.check ~thresholds
       ~report:(json_exn {|{"schema":"pc-tune/2","benchmarks":[]}|})
    <> [])

let () =
  Alcotest.run "pc_tune"
    [
      ( "knobs",
        [
          Alcotest.test_case "rejection-sampled stream counts" `Quick
            test_random_knobs_distribution;
          QCheck_alcotest.to_alcotest qcheck_mutate_preserves_validity;
          Alcotest.test_case "default knobs are neutral" `Quick
            test_default_knobs_neutral;
        ] );
      ( "fitness",
        [
          Alcotest.test_case "worst weighted error" `Quick
            test_fitness_of_report;
          Alcotest.test_case "envelope parsing" `Quick test_envelope_parsing;
        ] );
      ( "search",
        [
          Alcotest.test_case "never worse than default" `Quick
            test_search_never_worse_than_default;
          QCheck_alcotest.to_alcotest qcheck_best_fitness_monotone;
          Alcotest.test_case "pool-width identity" `Slow
            test_search_pool_width_identity;
        ] );
      ( "store",
        [
          Alcotest.test_case "cold/warm identity" `Slow
            test_search_store_cold_warm;
          Alcotest.test_case "corruption recovery" `Quick
            test_store_corruption_recovery;
          Alcotest.test_case "eviction" `Quick test_store_eviction;
        ] );
      ( "stress",
        [
          Alcotest.test_case "converges on reachable envelope" `Slow
            test_stress_converges_on_reachable_envelope;
        ] );
      ( "report",
        [
          Alcotest.test_case "pc-tune/1 roundtrip" `Quick
            test_report_json_roundtrip;
          Alcotest.test_case "threshold gate" `Quick test_tune_check_gate;
        ] );
    ]
