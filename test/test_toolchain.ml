(* Tests for the SRISC toolchain: assembly-text parser and binary
   encoding, including full round trips over every compiled workload and
   generated clone. *)

module I = Pc_isa.Instr
module Program = Pc_isa.Program
module Parser = Pc_isa.Parser
module Encoding = Pc_isa.Encoding
module Machine = Pc_funcsim.Machine

let program_equal (a : Program.t) (b : Program.t) =
  a.Program.code = b.Program.code
  && List.sort compare a.Program.data = List.sort compare b.Program.data
  && a.Program.data_bytes = b.Program.data_bytes

(* --- parser basics --- *)

let test_parse_simple () =
  let p =
    Parser.parse_string
      {|
        .name smoke
        .data_bytes 64
        .data 1048576 42
        ; compute 42 * 2 by loading and adding
          li r1, 1048576
          ld r2, 0(r1)
          add r3, r2, r2
        loop:
          addi r3, r3, -1
          bgtz r3, loop
          halt
      |}
  in
  Alcotest.(check string) "name" "smoke" p.Program.name;
  Alcotest.(check int) "6 instructions" 6 (Program.length p);
  let m = Machine.load p in
  let _ = Machine.run m (fun _ -> ()) in
  Alcotest.(check bool) "halts" true (Machine.halted m);
  Alcotest.(check int64) "loop counted down" 0L (Machine.ireg m 3)

let test_parse_all_mnemonics () =
  let text =
    {|
      add r1, r2, r3
      subi r4, r5, -7
      li r6, 123456789012345
      mul r1, r2, r3
      div r1, r2, r3
      rem r1, r2, r3
      fadd f1, f2, f3
      fsub f1, f2, f3
      fmul f1, f2, f3
      fdiv f1, f2, f3
      fli f4, 2.5
      fmov f5, f4
      fcmplt r7, f1, f2
      itof f6, r1
      ftoi r8, f6
      ld r9, 16(r10)
      st r9, -8(r10)
      fld f7, 0(r11)
      fst f7, 8(r11)
      target:
      beqz r1, target
      jmp @0
      jr r26
      call target
      halt
    |}
  in
  let p = Parser.parse_string text in
  Alcotest.(check int) "24 instructions" 24 (Program.length p)

let test_parse_errors () =
  let rejects text =
    match Parser.parse_string text with
    | _ -> Alcotest.failf "accepted %S" text
    | exception Parser.Error _ -> ()
  in
  rejects "frobnicate r1, r2";
  rejects "add r1, r2";
  rejects "ld r1, r2, r3";
  rejects "li r99, 4";
  rejects "beqz r1, ";
  rejects "jmp undefined_label";
  rejects "fli f1, notafloat"

let test_parse_comments_and_blank_lines () =
  let p = Parser.parse_string "\n\n# comment only\n  halt ; trailing\n\n" in
  Alcotest.(check int) "one instruction" 1 (Program.length p)

(* --- round trips --- *)

let sample_programs () =
  let workloads =
    List.map
      (fun name -> Pc_workloads.Registry.compile (Pc_workloads.Registry.find name))
      [ "crc32"; "fft"; "sha" ]
  in
  let clone =
    (Perfclone.Pipeline.clone_benchmark ~profile_instrs:200_000 "qsort")
      .Perfclone.Pipeline.clone
  in
  clone :: workloads

let test_text_roundtrip () =
  List.iter
    (fun p ->
      let text = Parser.roundtrip_text p in
      let p2 = Parser.parse_string ~name:p.Program.name text in
      if not (program_equal p p2) then
        Alcotest.failf "%s: text round trip changed the program" p.Program.name)
    (sample_programs ())

let test_binary_roundtrip () =
  List.iter
    (fun p ->
      let p2 = Encoding.of_bytes (Encoding.to_bytes p) in
      if not (program_equal p p2) then
        Alcotest.failf "%s: binary round trip changed the program" p.Program.name;
      Alcotest.(check string) "name kept" p.Program.name p2.Program.name)
    (sample_programs ())

let test_binary_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true
    (match Encoding.of_bytes (Bytes.of_string "NOTSRISC_xxxxxxxx") with
    | _ -> false
    | exception Failure _ -> true);
  Alcotest.(check bool) "truncated" true
    (let p = List.hd (sample_programs ()) in
     let b = Encoding.to_bytes p in
     match Encoding.of_bytes (Bytes.sub b 0 (Bytes.length b / 2)) with
     | _ -> false
     | exception Failure _ -> true)

let test_roundtrip_preserves_behaviour () =
  (* the re-parsed program must execute identically *)
  let p = Pc_workloads.Registry.compile (Pc_workloads.Registry.find "bitcount") in
  let p2 = Parser.parse_string ~name:"bc" (Parser.roundtrip_text p) in
  let result prog =
    let m = Machine.load prog in
    let n = Machine.run ~max_instrs:5_000_000 m (fun _ -> ()) in
    (n, Machine.ireg m Pc_isa.Reg.ret)
  in
  Alcotest.(check (pair int int64)) "same execution" (result p) (result p2)

let test_file_roundtrip () =
  let p = List.hd (sample_programs ()) in
  let path = Filename.temp_file "perfclone" ".bin" in
  let oc = open_out_bin path in
  Encoding.write oc p;
  close_out oc;
  let ic = open_in_bin path in
  let p2 = Encoding.read ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (program_equal p p2)

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"Li immediates of any magnitude survive encoding" ~count:200
    QCheck.(pair int64 (int_bound 31))
    (fun (v, reg) ->
      let reg = max 1 reg in
      let p =
        Program.v ~name:"q" ~code:[| I.Li (reg, v); I.Halt |] ~data:[] ~data_bytes:0
      in
      let p2 = Encoding.of_bytes (Encoding.to_bytes p) in
      p2.Program.code = p.Program.code)

let qcheck_fli_roundtrip =
  QCheck.Test.make ~name:"Fli floats survive the text round trip" ~count:200
    QCheck.(float)
    (fun v ->
      QCheck.assume (Float.is_finite v);
      let p =
        Program.v ~name:"q" ~code:[| I.Fli (1, v); I.Halt |] ~data:[] ~data_bytes:0
      in
      let p2 = Parser.parse_string ~name:"q" (Parser.roundtrip_text p) in
      p2.Program.code = p.Program.code)

let () =
  Alcotest.run "toolchain"
    [
      ( "parser",
        [
          Alcotest.test_case "simple program" `Quick test_parse_simple;
          Alcotest.test_case "all mnemonics" `Quick test_parse_all_mnemonics;
          Alcotest.test_case "errors rejected" `Quick test_parse_errors;
          Alcotest.test_case "comments and blanks" `Quick
            test_parse_comments_and_blank_lines;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "text" `Slow test_text_roundtrip;
          Alcotest.test_case "binary" `Slow test_binary_roundtrip;
          Alcotest.test_case "binary rejects garbage" `Quick test_binary_rejects_garbage;
          Alcotest.test_case "behaviour preserved" `Slow test_roundtrip_preserves_behaviour;
          Alcotest.test_case "file IO" `Quick test_file_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_varint_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_fli_roundtrip;
        ] );
    ]
