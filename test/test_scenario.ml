(* pc_scenario: the multi-tenant co-run engine and its driver.

   The load-bearing properties:
   - a 1-tenant scenario is bit-identical to the standalone Pc_uarch.Sim
     (same cycles, IPC and miss counters) — the shared-L2 machinery with
     tag 0 and fresh L2s must be invisible;
   - a tight-geometry duet shows real shared-L2 interference;
   - the pc-scenario/1 artefact is byte-identical across pool widths and
     across cold re-runs. *)

module Machine = Pc_funcsim.Machine
module Registry = Pc_workloads.Registry
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Spec = Pc_scenario.Spec
module Presets = Pc_scenario.Presets
module Scenario = Pc_scenario.Scenario
module Runner = Pc_scenario.Runner
module Report = Pc_scenario.Report
module Pool = Pc_exec.Pool
module Json = Pc_util.Json

let program name = Registry.compile (Registry.find name)

let solo_input name budget =
  {
    Scenario.label = name;
    budget;
    source = Scenario.From_machine (Machine.load (program name));
  }

(* --- 1 tenant == standalone Sim --- *)

let check_solo_matches_standalone ?quantum name budget =
  let cfg = Config.base in
  let alone = Sim.run cfg ~max_instrs:budget (program name) in
  let co = Scenario.co_run ?quantum cfg [| solo_input name budget |] in
  Alcotest.(check int) "one tenant" 1 (Array.length co);
  let r = co.(0).Scenario.result in
  Alcotest.(check int) "instrs" alone.Sim.instrs r.Sim.instrs;
  Alcotest.(check int) "cycles" alone.Sim.cycles r.Sim.cycles;
  Alcotest.(check (float 0.0)) "ipc" alone.Sim.ipc r.Sim.ipc;
  Alcotest.(check int) "branches" alone.Sim.branches r.Sim.branches;
  Alcotest.(check int) "mispredictions" alone.Sim.mispredictions
    r.Sim.mispredictions;
  Alcotest.(check int) "l1i misses" alone.Sim.l1i_misses r.Sim.l1i_misses;
  Alcotest.(check int) "l1d misses" alone.Sim.l1d_misses r.Sim.l1d_misses;
  Alcotest.(check int) "l2 accesses" alone.Sim.l2_accesses r.Sim.l2_accesses;
  Alcotest.(check int) "l2 misses" alone.Sim.l2_misses r.Sim.l2_misses;
  Alcotest.(check int) "mem accesses" alone.Sim.mem_accesses
    r.Sim.mem_accesses

let test_solo_exact () = check_solo_matches_standalone "crc32" 20_000

let test_solo_exact_small_quantum () =
  (* a quantum far below the batch capacity exercises the budget
     slicing without being able to change a 1-tenant result *)
  check_solo_matches_standalone ~quantum:257 "qsort" 20_000

let test_solo_exact_qcheck =
  let gen =
    QCheck2.Gen.(
      triple (oneofl [ "crc32"; "qsort"; "sha" ]) (int_range 1_000 15_000)
        (int_range 1 4096))
  in
  QCheck2.Test.make ~count:8 ~name:"1-tenant co_run == standalone Sim" gen
    (fun (name, budget, quantum) ->
      check_solo_matches_standalone ~quantum name budget;
      true)

(* --- interference --- *)

let test_tight_duet_interferes () =
  let spec = Option.get (Presets.find "duet-tight") in
  let settings = { Runner.quick_settings with Runner.budget = 150_000 } in
  Runner.clear_caches ();
  let r = Runner.run_spec settings spec in
  Alcotest.(check int) "two tenants" 2 (List.length r.Runner.tenants);
  List.iter
    (fun (t : Runner.tenant_row) ->
      Alcotest.(check bool)
        (t.Runner.label ^ " slowed by co-run")
        true
        (t.Runner.corun_ipc < t.Runner.standalone_ipc);
      Alcotest.(check bool)
        (t.Runner.label ^ " slowdown > 1")
        true (t.Runner.slowdown > 1.0);
      Alcotest.(check bool)
        (t.Runner.label ^ " uses the L2")
        true
        (t.Runner.l2_accesses > 0))
    r.Runner.tenants;
  Alcotest.(check bool) "weighted speedup below N" true
    (r.Runner.weighted_speedup < 2.0);
  Alcotest.(check bool) "fairness in (0, 1]" true
    (r.Runner.fairness > 0.0 && r.Runner.fairness <= 1.0)

(* --- determinism: pool width and cold re-runs --- *)

let scenario_json settings pool specs =
  Runner.clear_caches ();
  Report.json ~settings (Runner.run ~pool settings specs)

let test_pool_width_byte_identity () =
  let specs =
    [ Option.get (Presets.find "duet"); Option.get (Presets.find "priority-duet") ]
  in
  let settings = { Runner.quick_settings with Runner.budget = 60_000 } in
  let serial = scenario_json settings Pool.serial specs in
  let parallel =
    scenario_json settings (Pool.create ~num_domains:4) specs
  in
  Alcotest.(check string) "-j1 == -j4" serial parallel;
  let again = scenario_json settings Pool.serial specs in
  Alcotest.(check string) "cold re-run identical" serial again

(* --- priority arbitration --- *)

let test_priority_weights () =
  let cfg = Config.base in
  let inputs =
    [| solo_input "crc32" 20_000; solo_input "qsort" 20_000 |]
  in
  let rr = Scenario.co_run cfg inputs in
  let inputs =
    [| solo_input "crc32" 20_000; solo_input "qsort" 20_000 |]
  in
  let pri = Scenario.co_run ~quantum:512 ~weights:[| 3; 1 |] cfg inputs in
  Array.iter
    (fun (t : Scenario.tenant_result) ->
      Alcotest.(check int) (t.Scenario.label ^ " ran to budget") 20_000
        t.Scenario.fed)
    rr;
  Array.iter
    (fun (t : Scenario.tenant_result) ->
      Alcotest.(check int) (t.Scenario.label ^ " ran to budget") 20_000
        t.Scenario.fed)
    pri

let test_co_run_validation () =
  let cfg = Config.base in
  Alcotest.check_raises "no tenants"
    (Invalid_argument "Scenario.co_run: no tenants") (fun () ->
      ignore (Scenario.co_run cfg [||]));
  Alcotest.check_raises "bad weights"
    (Invalid_argument "Scenario.co_run: one weight per tenant") (fun () ->
      ignore
        (Scenario.co_run ~weights:[| 1; 2 |] cfg
           [| solo_input "crc32" 1_000 |]))

(* --- spec validation and pc-scenario-config/1 --- *)

let test_spec_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Spec.v: a scenario needs tenants") (fun () ->
      ignore (Spec.v ~name:"x" []));
  Alcotest.check_raises "weights arity"
    (Invalid_argument "Spec.v: one priority weight per tenant slot")
    (fun () ->
      ignore
        (Spec.v ~name:"x" ~policy:(Spec.Priority [ 1 ])
           [ Spec.tenant "crc32"; Spec.tenant "qsort" ]))

let test_spec_slots () =
  let spec =
    Spec.v ~name:"x"
      [ Spec.tenant ~count:2 "crc32"; Spec.tenant ~kind:Spec.Clone "crc32" ]
  in
  let labels =
    Array.to_list (Array.map (fun (l, _, _) -> l) (Spec.slots spec))
  in
  Alcotest.(check (list string)) "labels unique and stable"
    [ "crc32#0"; "crc32#1"; "crc32:clone" ]
    labels;
  Alcotest.(check int) "expanded count" 3 (Spec.n_tenants spec)

let json_exn s =
  match Json.parse s with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "JSON parse: %s" msg

let test_config_of_json () =
  let doc =
    json_exn
      {|{"schema": "pc-scenario-config/1",
         "scenarios": [
           {"name": "mix", "quantum": 1024,
            "policy": {"priority": [2, 1]},
            "l2": {"size_bytes": 2048, "assoc": 4, "line_bytes": 64},
            "tenants": [{"workload": "crc32"},
                        {"workload": "qsort", "kind": "clone"}]}]}|}
  in
  match Spec.of_json doc with
  | Error msg -> Alcotest.failf "of_json: %s" msg
  | Ok [ spec ] ->
    Alcotest.(check string) "name" "mix" spec.Spec.name;
    Alcotest.(check int) "quantum" 1024 spec.Spec.quantum;
    Alcotest.(check bool) "priority" true
      (spec.Spec.policy = Spec.Priority [ 2; 1 ]);
    Alcotest.(check bool) "l2 override" true (spec.Spec.shared_l2 <> None);
    Alcotest.(check int) "tenants" 2 (Spec.n_tenants spec)
  | Ok l -> Alcotest.failf "expected one scenario, got %d" (List.length l)

let test_config_of_json_errors () =
  let bad schema body =
    match
      Spec.of_json
        (json_exn
           (Printf.sprintf {|{"schema": %s, "scenarios": [%s]}|} schema body))
    with
    | Ok _ -> Alcotest.fail "accepted a bad document"
    | Error _ -> ()
  in
  bad {|"nope/1"|} {|{"name": "x", "tenants": [{"workload": "crc32"}]}|};
  bad {|"pc-scenario-config/1"|} {|{"name": "x", "tenants": []}|};
  bad {|"pc-scenario-config/1"|} {|{"name": "x", "tenants": [{}]}|};
  bad {|"pc-scenario-config/1"|}
    {|{"name": "x", "tenants": [{"workload": "crc32", "kind": "weird"}]}|}

(* --- the threshold gate --- *)

let report_doc () =
  let settings = { Runner.quick_settings with Runner.budget = 60_000 } in
  Runner.clear_caches ();
  let results =
    Runner.run settings [ Option.get (Presets.find "duet") ]
  in
  json_exn (Report.json ~settings results)

let test_check_gate () =
  let report = report_doc () in
  let thresholds bound =
    json_exn
      (Printf.sprintf
         {|{"schema": "pc-scenario-thresholds/1",
            "scenarios": {"duet": {"max_slowdown": %s,
                                   "min_fairness": 0.5,
                                   "min_weighted_speedup": 1.0}}}|}
         bound)
  in
  Alcotest.(check (list string)) "passes generous bounds" []
    (Report.check ~thresholds:(thresholds "2.0") ~report);
  Alcotest.(check bool) "fails impossible bound" true
    (Report.check ~thresholds:(thresholds "0.5") ~report <> []);
  let wrong = json_exn {|{"schema": "pc-scenario-thresholds/1"}|} in
  Alcotest.(check (list string)) "no bounds, no issues" []
    (Report.check ~thresholds:wrong ~report);
  let bad_schema = json_exn {|{"schema": "nope/1"}|} in
  Alcotest.(check bool) "schema mismatch flagged" true
    (Report.check ~thresholds:bad_schema ~report <> [])

let () =
  Alcotest.run "pc_scenario"
    [
      ( "exactness",
        [
          Alcotest.test_case "1 tenant == standalone" `Quick test_solo_exact;
          Alcotest.test_case "1 tenant, small quantum" `Quick
            test_solo_exact_small_quantum;
          QCheck_alcotest.to_alcotest test_solo_exact_qcheck;
        ] );
      ( "interference",
        [
          Alcotest.test_case "tight duet interferes" `Quick
            test_tight_duet_interferes;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pool width and re-run byte identity" `Quick
            test_pool_width_byte_identity;
        ] );
      ( "arbitration",
        [
          Alcotest.test_case "priority weights" `Quick test_priority_weights;
          Alcotest.test_case "co_run validation" `Quick test_co_run_validation;
        ] );
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "slot labels" `Quick test_spec_slots;
          Alcotest.test_case "config JSON" `Quick test_config_of_json;
          Alcotest.test_case "config JSON errors" `Quick
            test_config_of_json_errors;
        ] );
      ( "gate",
        [ Alcotest.test_case "thresholds" `Quick test_check_gate ] );
    ]
