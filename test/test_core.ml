(* End-to-end tests of the perfclone library: the pipeline and every
   experiment driver, run at reduced scale, checking the paper's
   qualitative claims (the "shape" of each result). *)

module Pipeline = Perfclone.Pipeline
module E = Perfclone.Experiments
module Stats = Pc_stats.Stats

(* Honours PC_JOBS (the CI parallel job exports PC_JOBS=4), so this
   whole suite doubles as an exercise of the pool's parallel path; by
   the determinism-under-parallelism invariant the assertions cannot
   depend on the width. *)
let pool = Pc_exec.Pool.create ~num_domains:(Pc_exec.Pool.default_jobs ())

let settings =
  {
    E.seed = 1;
    profile_instrs = 400_000;
    sim_instrs = 600_000;
    clone_dynamic = 60_000;
    benchmarks = [ "crc32"; "sha"; "dijkstra"; "qsort" ];
    sample = None;
    plan_cache = None;
    cache_onepass = false;
  }

(* Shared across tests (expensive to build). *)
let pipelines = lazy (E.prepare ~pool settings)

let test_prepare () =
  let ps = Lazy.force pipelines in
  Alcotest.(check int) "4 pipelines" 4 (List.length ps);
  List.iter
    (fun (p : Pipeline.t) ->
      Alcotest.(check bool) "profile nonempty" true
        (Array.length p.Pipeline.profile.Pc_profile.Profile.nodes > 0);
      Alcotest.(check bool) "clone nonempty" true
        (Pc_isa.Program.length p.Pipeline.clone > 10))
    ps

let test_profile_memoized () =
  (* Two drivers sharing prepare's settings must trigger exactly one
     profile collection per benchmark; the second pass is answered
     entirely from Pipeline.profile_store.  A profile budget unused by
     any other test keeps the counter deltas unambiguous. *)
  let s = { settings with E.profile_instrs = 123_456 } in
  let store = Pipeline.profile_store in
  let s0 = Pc_exec.Store.stats store in
  let first = E.prepare ~pool s in
  let s1 = Pc_exec.Store.stats store in
  Alcotest.(check int) "one collection per benchmark"
    (List.length first)
    (s1.Pc_exec.Store.miss_count - s0.Pc_exec.Store.miss_count);
  let second = E.prepare ~pool s in
  let s2 = Pc_exec.Store.stats store in
  Alcotest.(check int) "second driver hits the store"
    (List.length first)
    (s2.Pc_exec.Store.hit_count - s1.Pc_exec.Store.hit_count);
  Alcotest.(check int) "no extra collections" (List.length first)
    (s2.Pc_exec.Store.miss_count - s0.Pc_exec.Store.miss_count);
  List.iter2
    (fun (a : Pipeline.t) (b : Pipeline.t) ->
      Alcotest.(check bool) "memoized profile gives identical clone" true
        (a.Pipeline.clone.Pc_isa.Program.code = b.Pipeline.clone.Pc_isa.Program.code))
    first second

let test_pipeline_determinism () =
  let p1 = Pipeline.clone_benchmark ~seed:7 ~profile_instrs:100_000 "crc32" in
  let p2 = Pipeline.clone_benchmark ~seed:7 ~profile_instrs:100_000 "crc32" in
  Alcotest.(check bool) "same clone" true
    (p1.Pipeline.clone.Pc_isa.Program.code = p2.Pipeline.clone.Pc_isa.Program.code)

let test_fig3 () =
  let rows = E.fig3 (Lazy.force pipelines) in
  Alcotest.(check int) "one row per benchmark" 4 (List.length rows);
  List.iter
    (fun (name, frac) ->
      if frac < 0.0 || frac > 1.0 then Alcotest.failf "%s fraction out of range" name)
    rows;
  (* sha is an almost pure strided workload *)
  Alcotest.(check bool) "sha mostly single-stride" true (List.assoc "sha" rows > 0.9)

let test_fig4_correlations () =
  let studies = E.cache_studies ~pool settings (Lazy.force pipelines) in
  Alcotest.(check int) "one study per benchmark" 4 (List.length studies);
  List.iter
    (fun (s : E.cache_study) ->
      Alcotest.(check int) "28 MPI points" 28 (Array.length s.E.orig_mpi);
      if s.E.correlation < 0.3 then
        Alcotest.failf "%s: correlation %.3f too low" s.E.bench s.E.correlation)
    studies;
  (* the headline claim: high average correlation *)
  Alcotest.(check bool) "average correlation > 0.7" true
    (E.average_correlation studies > 0.7)

let test_fig4_onepass_identical () =
  (* --cache-onepass must not move a single bit of the cache study, and
     the sweep output must stay byte-identical across pool widths. *)
  let onepass_settings = { settings with E.cache_onepass = true } in
  let baseline = E.cache_studies ~pool settings (Lazy.force pipelines) in
  let studies pool = E.cache_studies ~pool onepass_settings (Lazy.force pipelines) in
  let j1 = studies (Pc_exec.Pool.create ~num_domains:1) in
  let j4 = studies (Pc_exec.Pool.create ~num_domains:4) in
  Alcotest.(check bool) "one-pass -j1 = -j4 (byte identity)" true (j1 = j4);
  List.iter2
    (fun (a : E.cache_study) (b : E.cache_study) ->
      Alcotest.(check string) "bench order" a.E.bench b.E.bench;
      Alcotest.(check bool) "orig MPI series identical" true
        (a.E.orig_mpi = b.E.orig_mpi);
      Alcotest.(check bool) "clone MPI series identical" true
        (a.E.clone_mpi = b.E.clone_mpi);
      Alcotest.(check bool) "correlation identical" true
        (a.E.correlation = b.E.correlation))
    baseline j1

let test_fig5_rankings () =
  let studies = E.cache_studies ~pool settings (Lazy.force pipelines) in
  let scatter = E.rankings_scatter studies in
  Alcotest.(check int) "28 points" 28 (Array.length scatter);
  (* points near the diagonal: strong rank correlation *)
  let xs = Array.map fst scatter and ys = Array.map snd scatter in
  Alcotest.(check bool) "rank correlation > 0.8" true (Stats.spearman xs ys > 0.8)

let test_fig6_fig7_errors () =
  let runs = E.base_runs ~pool settings (Lazy.force pipelines) in
  List.iter
    (fun (r : E.base_run) ->
      Alcotest.(check bool) "IPC positive" true (r.E.ipc_orig > 0.0 && r.E.ipc_clone > 0.0);
      Alcotest.(check bool) "power positive" true
        (r.E.power_orig > 0.0 && r.E.power_clone > 0.0))
    runs;
  Alcotest.(check bool) "avg IPC error below 25%" true
    (E.avg_abs_error E.ipc_of runs < 0.25);
  Alcotest.(check bool) "avg power error below 25%" true
    (E.avg_abs_error E.power_of runs < 0.25)

let test_design_changes_structure () =
  let changes = E.design_changes () in
  Alcotest.(check int) "five changes" 5 (List.length changes);
  (* distinct configurations *)
  let names = List.map (fun (c : E.design_change) -> c.E.config.Pc_uarch.Config.name) changes in
  Alcotest.(check int) "distinct configs" 5 (List.length (List.sort_uniq compare names))

let test_table3_relative_errors () =
  let results = E.run_design_changes ~pool settings (Lazy.force pipelines) in
  Alcotest.(check int) "five results" 5 (List.length results);
  List.iter
    (fun (r : E.change_result) ->
      Alcotest.(check int) "per-bench rows" 4 (List.length r.E.per_bench);
      (* the paper's key claim: relative errors are small *)
      if r.E.avg_ipc_error > 0.25 then
        Alcotest.failf "%s: relative IPC error %.1f%%" r.E.change_name
          (100.0 *. r.E.avg_ipc_error);
      if r.E.avg_power_error > 0.25 then
        Alcotest.failf "%s: relative power error %.1f%%" r.E.change_name
          (100.0 *. r.E.avg_power_error))
    results

let test_width_change_speedups_tracked () =
  let results = E.run_design_changes ~pool settings (Lazy.force pipelines) in
  let width = List.nth results 2 in
  (* doubling the width speeds up both real and clone *)
  List.iter
    (fun (name, io, ic, _, _) ->
      if io < 1.0 then Alcotest.failf "%s: real slowdown from width?" name;
      if ic < 1.0 then Alcotest.failf "%s: clone slowdown from width?" name;
      ())
    width.E.per_bench

let test_ablation_indep_beats_dep () =
  let rows = E.ablation ~pool settings (Lazy.force pipelines) in
  Alcotest.(check int) "4 rows" 4 (List.length rows);
  let avg f = Stats.mean (Array.of_list (List.map f rows)) in
  let indep = avg (fun r -> r.E.indep_correlation) in
  let dep = avg (fun r -> r.E.dep_correlation) in
  Alcotest.(check bool)
    "microarchitecture-independent clones track caches better" true (indep > dep)

let test_microdep_baseline_runs () =
  let p = List.hd (Lazy.force pipelines) in
  let baseline = Pipeline.microdep_baseline ~reference:Pc_uarch.Config.base p in
  let m = Pc_funcsim.Machine.load baseline in
  let _ = Pc_funcsim.Machine.run ~max_instrs:3_000_000 m (fun _ -> ()) in
  Alcotest.(check bool) "halts" true (Pc_funcsim.Machine.halted m)

let test_c_source () =
  let p = List.hd (Lazy.force pipelines) in
  let c = Pipeline.c_source p in
  Alcotest.(check bool) "non-trivial C artefact" true (String.length c > 1000)

let () =
  Alcotest.run "perfclone"
    [
      ( "pipeline",
        [
          Alcotest.test_case "prepare" `Slow test_prepare;
          Alcotest.test_case "profile memoization" `Slow test_profile_memoized;
          Alcotest.test_case "determinism" `Slow test_pipeline_determinism;
          Alcotest.test_case "C dissemination artefact" `Slow test_c_source;
          Alcotest.test_case "microdep baseline runs" `Slow test_microdep_baseline_runs;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "figure 3" `Slow test_fig3;
          Alcotest.test_case "figure 4 correlations" `Slow test_fig4_correlations;
          Alcotest.test_case "figure 4 one-pass byte identity" `Slow
            test_fig4_onepass_identical;
          Alcotest.test_case "figure 5 rankings" `Slow test_fig5_rankings;
          Alcotest.test_case "figures 6/7 errors" `Slow test_fig6_fig7_errors;
          Alcotest.test_case "design change list" `Quick test_design_changes_structure;
          Alcotest.test_case "table 3 relative errors" `Slow test_table3_relative_errors;
          Alcotest.test_case "figure 8 speedups" `Slow test_width_change_speedups_tracked;
          Alcotest.test_case "ablation" `Slow test_ablation_indep_beats_dep;
        ] );
    ]
