(* pc_report: run ledger, schema-aware drift diffing, trace round-trip.

   The load-bearing properties:
   - ledger ids are content-addressed over the deterministic slice of a
     run, so repeated equivalent invocations (any -j, any output paths)
     digest identically and perturbed runs do not;
   - the pc-trace/1 parser is exactly inverse to the Chrome renderer
     (emit -> parse -> re-emit is byte-identical), so trace diffing
     works on what the tracer actually wrote;
   - the pc-obs/1 span aligner is sound (a tree diffed with itself is
     empty) and complete for single perturbations (exactly the
     perturbed group surfaces). *)

module Json = Pc_util.Json
module Rng = Pc_util.Rng
module Diff = Pc_report.Diff
module Ledger = Pc_report.Ledger
module Trace = Pc_report.Trace
module M = Pc_obs.Metrics
module Event = Pc_obs.Event

let tmpdir () = Filename.temp_file "pc-report-test" ""

let fresh_dir () =
  let d = tmpdir () in
  Sys.remove d;
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- argv normalisation --- *)

let test_args_digest_normalisation () =
  let base = Ledger.args_digest [ "--quick"; "fig3"; "--seed"; "2" ] in
  List.iter
    (fun argv ->
      Alcotest.(check string)
        (String.concat " " argv)
        base (Ledger.args_digest argv))
    [
      [ "--quick"; "fig3"; "--seed"; "2"; "-j"; "4" ];
      [ "--quick"; "fig3"; "--seed"; "2"; "-j8" ];
      [ "--quick"; "fig3"; "--seed"; "2"; "--jobs=2" ];
      [ "--quick"; "fig3"; "--seed"; "2"; "--ledger" ];
      [ "--quick"; "fig3"; "--seed"; "2"; "--ledger=/tmp/elsewhere" ];
    ];
  (* output destinations are elided, but the flag itself is kept *)
  Alcotest.(check string)
    "trace path elided"
    (Ledger.args_digest [ "fig3"; "--trace"; "/tmp/a.json" ])
    (Ledger.args_digest [ "fig3"; "--trace"; "/tmp/b.json" ]);
  Alcotest.(check bool)
    "trace flag still distinguishes" false
    (Ledger.args_digest [ "fig3"; "--trace"; "/tmp/a.json" ]
    = Ledger.args_digest [ "fig3" ]);
  Alcotest.(check string)
    "short -o glued and split agree"
    (Ledger.args_digest [ "-o"; "x.json"; "fig3" ])
    (Ledger.args_digest [ "-ofront.json"; "fig3" ]);
  Alcotest.(check bool)
    "a real setting still matters" false
    (Ledger.args_digest [ "--seed"; "2" ] = Ledger.args_digest [ "--seed"; "3" ])

(* --- record determinism --- *)

let record l ?(argv = [ "--quick"; "fig3" ]) ?(seed = 1) ?(jobs = 1) () =
  Ledger.record l ~tool:"test" ~argv ~seed ~jobs ~artifacts:[]

let id_of path =
  match Json.parse_file path with
  | Ok doc ->
    Option.value ~default:"?" (Option.bind (Json.member "id" doc) Json.to_string)
  | Error e -> Alcotest.failf "%s: %s" path e

let test_record_ids_deterministic () =
  let l = Ledger.create (fresh_dir ()) in
  let r1 = record l () in
  let r2 = record l ~argv:[ "--quick"; "fig3"; "-j"; "7" ] ~jobs:7 () in
  let r3 = record l ~seed:2 () in
  Alcotest.(check string) "same run, any -j: same id" (id_of r1) (id_of r2);
  Alcotest.(check bool) "perturbed seed: new id" false (id_of r1 = id_of r3);
  Alcotest.(check (list string))
    "entries oldest first" [ r1; r2; r3 ]
    (Ledger.entries l);
  Alcotest.(check (list string)) "last 2" [ r2; r3 ] (Ledger.last l 2)

let test_record_id_ignores_store_counters () =
  let l = Ledger.create (fresh_dir ()) in
  M.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      M.reset ();
      M.set_enabled false)
    (fun () ->
      let r1 = record l () in
      (* same-key misses can double under -j races; the id must not see
         them (nor the ledger's own bookkeeping counter) *)
      M.incr (M.counter "exec.store.test.misses");
      let r2 = record l () in
      Alcotest.(check string) "store counters elided" (id_of r1) (id_of r2);
      M.incr (M.counter "funcsim.test.retired");
      let r3 = record l () in
      Alcotest.(check bool)
        "deterministic counters digested" false
        (id_of r1 = id_of r3))

(* --- trace round-trip --- *)

let test_trace_round_trip () =
  let path = Filename.temp_file "pc-report-trace" ".json" in
  (Pc_trace.Chrome.with_trace ~period_s:0.0 (Some path) @@ fun () ->
   let pool = Pc_exec.Pool.create ~num_domains:2 in
   let store = Pc_exec.Store.create ~name:"rt" () in
   (* spans + flow hand-off arrows from the pool, store put/get flows,
      instants with int/float/string args, and a counter track *)
   let c = M.counter "report.test.events" in
   ignore
     (Pc_exec.Pool.map pool
        (fun i ->
          M.incr c;
          Pc_exec.Store.find_or_compute store i (fun () -> i * i))
        [ 1; 2; 3; 4 ]);
   Event.instant "mark"
     [ ("i", Event.Int 42); ("f", Event.Float 0.125); ("s", Event.Str "x\"y") ];
   Event.instant "ratio" [ ("v", Event.Float 1.5e-7) ]);
  let original = read_file path in
  let t =
    match Trace.parse_file path with
    | Ok t -> t
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Alcotest.(check bool)
    "parsed a non-trivial stream" true
    (List.length t.Trace.events > 8);
  Alcotest.(check string) "re-render byte-identical" original
    (Trace.render t ^ "\n");
  Sys.remove path

(* --- diff engine --- *)

let obs_doc spans =
  Json.Obj
    [
      ("schema", Json.Str "pc-obs/1");
      ("counters", Json.Obj []);
      ("gauges", Json.Obj []);
      ("histograms", Json.Obj []);
      ("spans", Json.List spans);
    ]

let diff_docs a b =
  match Diff.diff ~a_label:"a" ~b_label:"b" a b with
  | Ok r -> r
  | Error e -> Alcotest.failf "diff: %s" e

let bench_doc entries =
  Json.Obj
    [
      ("schema", Json.Str "pc-bench/1");
      ( "results",
        Json.List
          (List.map
             (fun (name, ms) ->
               Json.Obj
                 [ ("name", Json.Str name); ("ms_per_run", Json.Num ms) ])
             entries) );
    ]

let test_diff_tolerance_and_keys () =
  let a = bench_doc [ ("x", 10.0); ("y", 2.0) ] in
  (* reordered and within 20%: notes only *)
  let b = bench_doc [ ("y", 2.2); ("x", 10.0) ] in
  let r = diff_docs a b in
  Alcotest.(check int) "within tolerance: no drift" 0
    (List.length (Diff.drift r));
  (* beyond 20%: drift *)
  let c = bench_doc [ ("x", 14.0); ("y", 2.0) ] in
  let r = diff_docs a c in
  Alcotest.(check int) "beyond tolerance: drift" 1 (List.length (Diff.drift r));
  (* a vanished row is structural *)
  let d = bench_doc [ ("x", 10.0) ] in
  let r = diff_docs a d in
  Alcotest.(check int) "removed row: drift" 1 (List.length (Diff.drift r))

let run_doc ~seed ~host =
  Json.Obj
    [
      ("schema", Json.Str "pc-run/1");
      ("id", Json.Str (string_of_int seed));
      ( "run",
        Json.Obj
          [
            ("tool", Json.Str "test");
            ("seed", Json.Num (float_of_int seed));
            ("artifacts", Json.List []);
          ] );
      ( "env",
        Json.Obj
          [ ("host", Json.Str host); ("argv", Json.List [ Json.Str host ]) ] );
    ]

let test_diff_run_env_skipped () =
  let r = diff_docs (run_doc ~seed:1 ~host:"a") (run_doc ~seed:1 ~host:"bb") in
  Alcotest.(check int) "env differences invisible" 0 (List.length r.Diff.items);
  let r = diff_docs (run_doc ~seed:1 ~host:"a") (run_doc ~seed:2 ~host:"a") in
  Alcotest.(check int) "seed drift caught" 1 (List.length (Diff.drift r))

let test_thresholds_gate () =
  let a = bench_doc [ ("x", 10.0) ] and b = bench_doc [ ("x", 20.0) ] in
  let r = diff_docs a b in
  Alcotest.(check int) "drifts unguarded" 1 (List.length (Diff.drift r));
  let th =
    match
      Diff.thresholds_of_json
        (Json.Obj
           [
             ("schema", Json.Str "pc-diff-thresholds/1");
             ("max_drift", Json.Num 0.0);
             ("ignore", Json.List [ Json.Str "results[*]/ms_per_run" ]);
           ])
    with
    | Ok th -> th
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "ignore glob tolerates it" true (Diff.gate th r);
  let th_tol =
    match
      Diff.thresholds_of_json
        (Json.Obj
           [
             ("schema", Json.Str "pc-diff-thresholds/1");
             ( "tolerances",
               Json.Obj [ ("results[*]/ms_per_run", Json.Num 2.0) ] );
           ])
    with
    | Ok th -> th
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "widened tolerance passes" true (Diff.gate th_tol r);
  Alcotest.(check bool)
    "default gate fails" false
    (Diff.gate Diff.default_thresholds r)

(* --- random span trees through the aligner --- *)

let names = [| "prepare"; "profile"; "synth"; "sim"; "fidelity"; "pool" |]

let rec gen_span rng depth =
  let n_children = if depth <= 0 then 0 else Rng.int rng 3 in
  let children = List.init n_children (fun _ -> gen_span rng (depth - 1)) in
  let d =
    0.001 +. Rng.float rng 0.5
    +. List.fold_left
         (fun acc c ->
           match Json.member "duration_s" c with
           | Some (Json.Num f) -> acc +. f
           | _ -> acc)
         0.0 children
  in
  Json.Obj
    [
      ("name", Json.Str (Rng.pick rng names));
      ("duration_s", Json.Num d);
      ("self_s", Json.Num 0.001);
      ("children", Json.List children);
    ]

let gen_roots rng = List.init (1 + Rng.int rng 3) (fun _ -> gen_span rng 3)

(* Graft one extra child with a name the generator never uses at a
   random (existing) node, returning the perturbed tree. *)
let rec perturb rng spans =
  let i = Rng.int rng (List.length spans) in
  List.mapi
    (fun j s ->
      if j <> i then s
      else
        match s with
        | Json.Obj fields ->
          let children =
            match List.assoc_opt "children" fields with
            | Some (Json.List l) -> l
            | _ -> []
          in
          let children =
            if children <> [] && Rng.bool rng then perturb rng children
            else
              children
              @ [
                  Json.Obj
                    [
                      ("name", Json.Str "__perturbed__");
                      ("duration_s", Json.Num 0.001);
                      ("self_s", Json.Num 0.001);
                      ("children", Json.List []);
                    ];
                ]
          in
          Json.Obj
            (List.map
               (fun (k, v) ->
                 if k = "children" then (k, Json.List children) else (k, v))
               fields)
        | other -> other)
    spans

let qcheck_span_aligner =
  QCheck.Test.make ~count:100 ~name:"span aligner: self-empty, perturb-exact"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let spans = gen_roots rng in
      let self = diff_docs (obs_doc spans) (obs_doc spans) in
      if self.Diff.items <> [] then
        QCheck.Test.fail_reportf "self-diff not empty (seed %d)" seed;
      let perturbed = perturb (Rng.split rng) spans in
      let r = diff_docs (obs_doc spans) (obs_doc perturbed) in
      match Diff.drift r with
      | [ it ] ->
        (* exactly the grafted group, nothing else *)
        String.length it.Diff.path >= 15
        && String.sub it.Diff.path
             (String.length it.Diff.path - 15)
             15
           = "[__perturbed__]"
      | items ->
        QCheck.Test.fail_reportf "expected 1 drift, got %d (seed %d)"
          (List.length items) seed)

let () =
  Alcotest.run "pc_report"
    [
      ( "ledger",
        [
          Alcotest.test_case "args_digest normalisation" `Quick
            test_args_digest_normalisation;
          Alcotest.test_case "record ids deterministic" `Quick
            test_record_ids_deterministic;
          Alcotest.test_case "id ignores store counters" `Quick
            test_record_id_ignores_store_counters;
        ] );
      ( "trace",
        [ Alcotest.test_case "round-trip byte-identical" `Quick
            test_trace_round_trip ] );
      ( "diff",
        [
          Alcotest.test_case "tolerance + keyed lists" `Quick
            test_diff_tolerance_and_keys;
          Alcotest.test_case "run env skipped" `Quick test_diff_run_env_skipped;
          Alcotest.test_case "thresholds gate" `Quick test_thresholds_gate;
        ] );
      ( "aligner",
        [ QCheck_alcotest.to_alcotest ~long:false qcheck_span_aligner ] );
    ]
