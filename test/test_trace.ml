(* pc_trace: Chrome trace export and clone-fidelity reports.

   The load-bearing property is the determinism contract: the set of
   (phase, name, args) events a run emits is identical at every pool
   width — only timestamps and lane assignment may differ — and tracing
   never changes experiment output (covered byte-for-byte in
   test_obs.ml). *)

module M = Pc_obs.Metrics
module Event = Pc_obs.Event
module Span = Pc_obs.Span
module Chrome = Pc_trace.Chrome
module Fidelity = Pc_trace.Fidelity
module Json = Pc_util.Json
module Pool = Pc_exec.Pool
module E = Perfclone.Experiments

let small_settings =
  {
    E.seed = 1;
    profile_instrs = 100_000;
    sim_instrs = 150_000;
    clone_dynamic = 30_000;
    benchmarks = [ "crc32"; "sha" ];
    sample = None;
    plan_cache = None;
    cache_onepass = false;
  }

let with_collection f =
  M.set_enabled true;
  Event.set_collecting true;
  Fun.protect
    ~finally:(fun () ->
      Event.set_collecting false;
      Event.reset ();
      Span.reset ();
      M.set_enabled false)
    f

(* --- event layer --- *)

let test_event_off_by_default () =
  Event.reset ();
  Event.instant "ghost" [];
  Alcotest.(check int) "nothing collected while off" 0
    (List.length (Event.drain ()))

let test_event_collection_and_args () =
  with_collection @@ fun () ->
  Event.emit Event.Begin "work" [ ("n", Event.Int 3) ];
  Event.emit Event.End "work" [];
  Event.instant "mark" [ ("which", Event.Str "x") ];
  let evs = Event.drain () in
  Alcotest.(check int) "three events" 3 (List.length evs);
  (match evs with
  | [ b; e; i ] ->
    Alcotest.(check bool) "begin phase" true (b.Event.phase = Event.Begin);
    Alcotest.(check string) "begin name" "work" b.Event.name;
    Alcotest.(check bool) "begin arg" true (b.Event.args = [ ("n", Event.Int 3) ]);
    Alcotest.(check bool) "end phase" true (e.Event.phase = Event.End);
    Alcotest.(check bool) "instant phase" true (i.Event.phase = Event.Instant);
    Alcotest.(check bool) "monotonic within a domain" true
      (b.Event.ts <= e.Event.ts && e.Event.ts <= i.Event.ts)
  | _ -> Alcotest.fail "unexpected event shapes");
  Alcotest.(check int) "drain empties the stream" 0
    (List.length (Event.drain ()))

(* The comparable projection of an event stream: everything but
   timestamps and lane assignment, sorted. *)
let event_set evs =
  List.sort compare
    (List.map (fun (e : Event.t) -> (e.Event.phase, e.Event.name, e.Event.args)) evs)

let run_prepare jobs =
  E.clear_caches ();
  Event.reset ();
  Span.reset ();
  let pool = Pool.create ~num_domains:jobs in
  ignore (E.prepare ~pool small_settings);
  Event.drain ()

let test_event_set_deterministic_across_jobs () =
  with_collection @@ fun () ->
  let serial = run_prepare 1 in
  let parallel = run_prepare 4 in
  Alcotest.(check bool) "events were collected" true (serial <> []);
  Alcotest.(check bool) "span begin events present" true
    (List.exists
       (fun (e : Event.t) ->
         e.Event.phase = Event.Begin && e.Event.name = "pipeline:crc32")
       serial);
  Alcotest.(check bool) "pipeline instants carry deterministic args" true
    (List.exists
       (fun (e : Event.t) ->
         e.Event.phase = Event.Instant
         && e.Event.name = "pipeline:done:crc32"
         && List.mem_assoc "sfg_nodes" e.Event.args)
       serial);
  Alcotest.(check bool) "event set identical at -j1 and -j4" true
    (event_set serial = event_set parallel)

let test_worker_tracks_cover_pool () =
  with_collection @@ fun () ->
  Event.reset ();
  let pool = Pool.create ~num_domains:2 in
  ignore
    (Pool.map pool
       (fun i -> Event.instant "task" [ ("i", Event.Int i) ])
       [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  let evs = Event.drain () in
  let instants =
    List.filter (fun (e : Event.t) -> e.Event.phase = Event.Instant) evs
  in
  Alcotest.(check int) "all tasks emitted" 8 (List.length instants);
  (* every hand-off draws one arrow: a Flow_start on the spawning domain
     matched by a Flow_end at the claim *)
  let count ph = List.length (List.filter (fun (e : Event.t) -> e.Event.phase = ph) evs) in
  Alcotest.(check int) "one flow start per task" 8 (count Event.Flow_start);
  Alcotest.(check int) "one flow end per task" 8 (count Event.Flow_end);
  List.iter
    (fun (e : Event.t) ->
      if e.Event.track < 0 || e.Event.track > 1 then
        Alcotest.failf "track %d outside pool slots" e.Event.track)
    evs

(* --- Chrome export --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let json_exn src =
  match Json.parse src with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "trace JSON failed to parse: %s" msg

let test_chrome_trace_file () =
  let path = Filename.temp_file "pc_trace_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let c = M.counter "trace.test.counter" in
  (* period 0: no sampler domain; the final sample still yields counter
     events, so short runs get their counter tracks. *)
  Chrome.with_trace ~period_s:0.0 (Some path) (fun () ->
      M.incr c;
      Span.with_ "outer" (fun () ->
          Span.with_ ~args:[ ("k", Event.Str "v") ] "inner" (fun () -> ());
          Event.instant "marker" [ ("n", Event.Int 7) ]));
  Event.reset ();
  Span.reset ();
  let doc = json_exn (read_file path) in
  let schema =
    Option.bind (Json.member "otherData" doc) (fun o ->
        Option.bind (Json.member "schema" o) Json.to_string)
  in
  Alcotest.(check (option string)) "schema" (Some "pc-trace/1") schema;
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents missing"
  in
  let phase e = Option.bind (Json.member "ph" e) Json.to_string in
  let name e = Option.bind (Json.member "name" e) Json.to_string in
  let with_phase p = List.filter (fun e -> phase e = Some p) events in
  let names p = List.filter_map name (with_phase p) in
  Alcotest.(check bool) "begin events for both spans" true
    (List.mem "outer" (names "B") && List.mem "inner" (names "B"));
  Alcotest.(check bool) "balanced begin/end" true
    (List.length (with_phase "B") = List.length (with_phase "E"));
  Alcotest.(check bool) "instant present" true (List.mem "marker" (names "i"));
  Alcotest.(check bool) "counter sampled at stop" true
    (List.mem "trace.test.counter" (names "C"));
  Alcotest.(check bool) "thread metadata present" true
    (List.mem "thread_name" (names "M"));
  (* Timestamps are non-negative microseconds from the trace epoch. *)
  List.iter
    (fun e ->
      match Option.bind (Json.member "ts" e) Json.to_float with
      | Some ts when ts >= 0.0 -> ()
      | Some ts -> Alcotest.failf "negative ts %f" ts
      | None -> ())
    events;
  (* Collection state is restored: nothing accumulates after the trace. *)
  Event.instant "after" [];
  Alcotest.(check int) "collection off after with_trace" 0
    (List.length (Event.drain ()))

let test_chrome_trace_none_is_identity () =
  Alcotest.(check int) "with_trace None runs the thunk" 41
    (Chrome.with_trace None (fun () -> 41))

(* --- sampler shutdown race --- *)

let trace_events_of path =
  match Option.bind (Json.member "traceEvents" (json_exn (read_file path))) Json.to_list with
  | Some l -> l
  | None -> Alcotest.fail "traceEvents missing"

let traced_prepare ~jobs ~period_s path =
  E.clear_caches ();
  Event.reset ();
  Span.reset ();
  Chrome.with_trace ~period_s (Some path) (fun () ->
      let pool = Pool.create ~num_domains:jobs in
      ignore (E.prepare ~pool small_settings));
  trace_events_of path

let test_trace_deterministic_with_fast_sampler () =
  (* Regression for the sampler-domain shutdown race: a sample emitted
     between the stop flag and the join could duplicate the final
     sample's rendered timestamp.  At a 1 ms period under -j4 the trace
     must still carry no duplicate (name, ts) counter points — the final
     sample is authoritative — and the span/instant event set must stay
     identical to -j1 (the determinism contract; counter sample *values*
     are timing-dependent and exempt). *)
  let path = Filename.temp_file "pc_trace_race" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let field name conv e = Option.bind (Json.member name e) conv in
  let signature events =
    List.filter_map
      (fun e ->
        match field "ph" Json.to_string e with
        | Some (("B" | "E" | "i") as ph) ->
          Some (ph, field "name" Json.to_string e)
        | _ -> None)
      events
    |> List.sort compare
  in
  let counter_keys events =
    List.filter_map
      (fun e ->
        match field "ph" Json.to_string e with
        | Some "C" ->
          Some (field "name" Json.to_string e, field "ts" Json.to_float e)
        | _ -> None)
      events
  in
  let parallel = traced_prepare ~jobs:4 ~period_s:0.001 path in
  let keys = counter_keys parallel in
  Alcotest.(check bool) "counter samples present" true (keys <> []);
  let sorted = List.sort compare keys in
  let rec dup = function
    | a :: (b :: _ as rest) -> a = b || dup rest
    | _ -> false
  in
  Alcotest.(check bool) "no duplicate (name, ts) counter samples" false
    (dup sorted);
  let serial = traced_prepare ~jobs:1 ~period_s:0.001 path in
  Alcotest.(check bool) "serial counter samples unique too" false
    (dup (List.sort compare (counter_keys serial)));
  Alcotest.(check bool) "event set identical at -j1 and -j4" true
    (signature serial = signature parallel)

(* --- fidelity --- *)

let profile_of name budget =
  let entry = Pc_workloads.Registry.find name in
  let program = Pc_workloads.Registry.compile entry in
  (program, Pc_profile.Collector.profile ~max_instrs:budget program)

let test_fidelity_self_comparison () =
  let _, p = profile_of "crc32" 50_000 in
  let c = Fidelity.compare_profiles ~original:p ~clone:p in
  Alcotest.(check (float 1e-9)) "mix l1" 0.0 c.Fidelity.instr_mix_l1;
  Alcotest.(check (float 1e-9)) "dep l1" 0.0 c.Fidelity.dep_dist_l1;
  Alcotest.(check (float 1e-9)) "stride agreement" 1.0 c.Fidelity.stride_agreement;
  Alcotest.(check (float 1e-9)) "taken err" 0.0 c.Fidelity.taken_rate_err;
  Alcotest.(check (float 1e-9)) "block ratio" 1.0 c.Fidelity.sfg_block_ratio;
  Alcotest.(check (float 1e-9)) "block size ratio" 1.0
    c.Fidelity.avg_block_size_ratio

let test_fidelity_measure_and_json () =
  let program, p = profile_of "crc32" 50_000 in
  let clone =
    Perfclone.Pipeline.clone_program ~seed:1 ~profile_instrs:50_000
      ~target_dynamic:20_000 program
  in
  let r =
    Fidelity.measure ~max_instrs:50_000 ~bench:"crc32" ~original:p
      clone.Perfclone.Pipeline.clone
  in
  Alcotest.(check string) "bench" "crc32" r.Fidelity.bench;
  Alcotest.(check bool) "clone ran" true (r.Fidelity.clone_instrs > 0);
  let finite v = Float.is_finite v in
  let c = r.Fidelity.c in
  Alcotest.(check bool) "all characteristics finite" true
    (List.for_all finite
       [
         c.Fidelity.instr_mix_l1; c.Fidelity.dep_dist_l1;
         c.Fidelity.stride_agreement; c.Fidelity.single_stride_err;
         c.Fidelity.taken_rate_err; c.Fidelity.transition_rate_err;
         c.Fidelity.sfg_block_ratio; c.Fidelity.avg_block_size_ratio;
       ]);
  Alcotest.(check bool) "stride agreement in [0,1]" true
    (c.Fidelity.stride_agreement >= 0.0 && c.Fidelity.stride_agreement <= 1.0);
  let json =
    Fidelity.json ~seed:1 ~profile_instrs:50_000 ~clone_dynamic:20_000 [ r ]
  in
  let doc = json_exn json in
  Alcotest.(check (option string)) "schema" (Some "pc-fidelity/1")
    (Option.bind (Json.member "schema" doc) Json.to_string);
  (match Option.bind (Json.member "benchmarks" doc) Json.to_list with
  | Some [ row ] ->
    Alcotest.(check (option string)) "row bench" (Some "crc32")
      (Option.bind (Json.member "bench" row) Json.to_string);
    List.iter
      (fun field ->
        match Option.bind (Json.member field row) Json.to_float with
        | Some _ -> ()
        | None -> Alcotest.failf "characteristic %s missing from row" field)
      Fidelity.characteristic_names
  | _ -> Alcotest.fail "expected one benchmark row")

let test_fidelity_per_phase () =
  let program, p = profile_of "crc32" 40_000 in
  let r =
    (* self-clone: the per-phase machinery sliced over identical runs *)
    Fidelity.measure ~max_instrs:40_000 ~bench:"crc32" ~original:p program
  in
  Alcotest.(check int) "no phases before measure_phases" 0
    (List.length r.Fidelity.phases);
  let r =
    Fidelity.measure_phases ~interval:10_000 ~original:program ~clone:program r
  in
  Alcotest.(check int) "ceil(orig/interval) phases" 4
    (List.length r.Fidelity.phases);
  List.iteri
    (fun i (ph : Fidelity.phase) ->
      Alcotest.(check int) "indexed in order" i ph.Fidelity.p_index;
      Alcotest.(check int) "original cut at interval boundaries"
        (i * 10_000) ph.Fidelity.p_orig_start;
      Alcotest.(check bool) "phase profiled instructions" true
        (ph.Fidelity.p_orig_instrs > 0 && ph.Fidelity.p_clone_instrs > 0);
      (* clone == original here, and both are sliced identically, so
         every phase-local comparison is perfect *)
      Alcotest.(check (float 1e-9)) "phase mix l1" 0.0
        ph.Fidelity.p_c.Fidelity.instr_mix_l1;
      Alcotest.(check (float 1e-9)) "phase stride agreement" 1.0
        ph.Fidelity.p_c.Fidelity.stride_agreement)
    r.Fidelity.phases;
  let with_phases =
    Fidelity.json ~seed:1 ~profile_instrs:40_000 ~clone_dynamic:40_000 [ r ]
  in
  let doc = json_exn with_phases in
  (match Option.bind (Json.member "benchmarks" doc) Json.to_list with
  | Some [ row ] -> (
    match Option.bind (Json.member "phases" row) Json.to_list with
    | Some rows -> Alcotest.(check int) "phases serialised" 4 (List.length rows)
    | None -> Alcotest.fail "phases array missing")
  | _ -> Alcotest.fail "expected one benchmark row");
  (* the plain report stays byte-identical: no phases key at all *)
  let without =
    Fidelity.json ~seed:1 ~profile_instrs:40_000 ~clone_dynamic:40_000
      [ { r with Fidelity.phases = [] } ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no phases key without measure_phases" false
    (contains without "phases")

(* Boundary regression: when the clone re-profiles to fewer dynamic
   instructions than there are phases, the exact partition must leave
   some phases empty (p_clone_instrs = 0, all-NaN characteristics →
   null in JSON) rather than re-measuring a neighbour's slice.  The old
   [max 1] slice clamp made adjacent phases overlap on the same clone
   instruction. *)
let test_fidelity_phase_boundaries () =
  let _, p = profile_of "crc32" 40_000 in
  let tiny =
    Pc_isa.Parser.parse_string ~name:"tiny" "li r1, 1\nhalt\n"
  in
  let r = Fidelity.measure ~max_instrs:40_000 ~bench:"crc32" ~original:p tiny in
  Alcotest.(check int) "tiny clone re-profile" 2 r.Fidelity.clone_instrs;
  let r = Fidelity.measure_phases ~interval:10_000 ~original:tiny ~clone:tiny r in
  Alcotest.(check int) "ceil(orig/interval) phases" 4
    (List.length r.Fidelity.phases);
  let covered = ref 0 in
  List.fold_left
    (fun prev_end (ph : Fidelity.phase) ->
      Alcotest.(check int) "slices never overlap" prev_end
        ph.Fidelity.p_clone_start;
      covered := !covered + ph.Fidelity.p_clone_instrs;
      if ph.Fidelity.p_clone_instrs = 0 then
        Alcotest.(check bool) "empty slice reports NaN characteristics" true
          (Float.is_nan ph.Fidelity.p_c.Fidelity.instr_mix_l1
          && Float.is_nan ph.Fidelity.p_c.Fidelity.stride_agreement);
      ph.Fidelity.p_clone_start + ph.Fidelity.p_clone_instrs)
    0 r.Fidelity.phases
  |> Alcotest.(check int) "partition ends at clone length" 2;
  Alcotest.(check int) "every clone instruction measured exactly once" 2
    !covered;
  Alcotest.(check bool) "some phases are empty" true
    (List.exists
       (fun (ph : Fidelity.phase) -> ph.Fidelity.p_clone_instrs = 0)
       r.Fidelity.phases);
  (* empty slices serialise as null, and the document still parses *)
  let doc =
    json_exn
      (Fidelity.json ~seed:1 ~profile_instrs:40_000 ~clone_dynamic:2 [ r ])
  in
  match Option.bind (Json.member "benchmarks" doc) Json.to_list with
  | Some [ row ] -> (
    match Option.bind (Json.member "phases" row) Json.to_list with
    | Some rows ->
      let nulls =
        List.filter
          (fun ph -> Json.member "instr_mix_l1" ph = Some Json.Null)
          rows
      in
      Alcotest.(check bool) "null rows serialised" true (nulls <> [])
    | None -> Alcotest.fail "phases array missing")
  | _ -> Alcotest.fail "expected one benchmark row"

let thresholds_doc =
  {|{"schema":"pc-fidelity-thresholds/1",
     "max":{"instr_mix_l1":0.5},
     "min":{"stride_agreement":0.1},
     "range":{"sfg_block_ratio":[0.1,5.0]}}|}

let report_doc mix =
  Printf.sprintf
    {|{"schema":"pc-fidelity/1","seed":1,"profile_instrs":1,"clone_dynamic":1,
       "benchmarks":[{"bench":"x","orig_instrs":1,"clone_instrs":1,
         "instr_mix_l1":%s,"dep_dist_l1":0.1,"stride_agreement":0.9,
         "single_stride_err":0.1,"taken_rate_err":0.1,"transition_rate_err":0.1,
         "sfg_block_ratio":1.5,"avg_block_size_ratio":1.0}]}|}
    mix

let test_fidelity_check_gate () =
  let thresholds = json_exn thresholds_doc in
  Alcotest.(check (list string)) "in-bounds report passes" []
    (Fidelity.check ~thresholds ~report:(json_exn (report_doc "0.2")));
  Alcotest.(check bool) "max violation flagged" true
    (Fidelity.check ~thresholds ~report:(json_exn (report_doc "0.9")) <> []);
  Alcotest.(check bool) "non-finite value flagged" true
    (Fidelity.check ~thresholds ~report:(json_exn (report_doc "null")) <> []);
  Alcotest.(check bool) "infinite value flagged" true
    (Fidelity.check ~thresholds ~report:(json_exn (report_doc "1e999")) <> []);
  let wrong_schema =
    json_exn {|{"schema":"pc-fidelity/2","benchmarks":[]}|}
  in
  Alcotest.(check bool) "schema drift flagged" true
    (Fidelity.check ~thresholds ~report:wrong_schema <> []);
  let unknown =
    json_exn
      {|{"schema":"pc-fidelity-thresholds/1","max":{"no_such_metric":1.0}}|}
  in
  Alcotest.(check bool) "unknown characteristic in thresholds flagged" true
    (Fidelity.check ~thresholds:unknown ~report:(json_exn (report_doc "0.2"))
    <> [])

let () =
  Alcotest.run "pc_trace"
    [
      ( "events",
        [
          Alcotest.test_case "off by default" `Quick test_event_off_by_default;
          Alcotest.test_case "collection and args" `Quick
            test_event_collection_and_args;
          Alcotest.test_case "worker tracks cover pool slots" `Quick
            test_worker_tracks_cover_pool;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "event set identical at -j1 and -j4" `Slow
            test_event_set_deterministic_across_jobs;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "trace file well-formed" `Quick
            test_chrome_trace_file;
          Alcotest.test_case "no path is identity" `Quick
            test_chrome_trace_none_is_identity;
          Alcotest.test_case "fast sampler: unique counter samples, \
                              deterministic events"
            `Slow test_trace_deterministic_with_fast_sampler;
        ] );
      ( "fidelity",
        [
          Alcotest.test_case "self-comparison is perfect" `Quick
            test_fidelity_self_comparison;
          Alcotest.test_case "measure + pc-fidelity/1 json" `Slow
            test_fidelity_measure_and_json;
          Alcotest.test_case "per-phase rows" `Slow test_fidelity_per_phase;
          Alcotest.test_case "phase boundaries with short clones" `Quick
            test_fidelity_phase_boundaries;
          Alcotest.test_case "threshold gate" `Quick test_fidelity_check_gate;
        ] );
    ]
