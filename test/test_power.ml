(* Tests for pc_power: the Wattch-style model must scale with structure
   sizes and activity — that is all the paper's relative-power results
   rely on. *)

module I = Pc_isa.Instr
module Asm = Pc_isa.Asm
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Power = Pc_power.Power

let loop_program ~name ~iters body =
  Asm.assemble ~name
    ([ Asm.Ins (I.Li (20, Int64.of_int iters)); Asm.Label "top" ]
    @ List.map (fun i -> Asm.Ins i) body
    @ [
        Asm.Ins (I.Alui (I.Add, 20, 20, -1));
        Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
        Asm.Ins I.Halt;
      ])

let alu_loop = loop_program ~name:"alu" ~iters:2000 (List.init 8 (fun i -> I.Alu (I.Add, 1 + (i mod 8), 10, 11)))

let run cfg p = Sim.run ~max_instrs:100_000 cfg p

let test_total_positive () =
  let r = run Config.base alu_loop in
  let report = Power.estimate Config.base r in
  Alcotest.(check bool) "positive" true (report.Power.total > 0.0);
  let b = report.Power.per_structure in
  List.iter
    (fun (name, v) ->
      if v < 0.0 then Alcotest.failf "negative component %s" name)
    [
      ("icache", b.Power.icache); ("dcache", b.Power.dcache); ("l2", b.Power.l2);
      ("bpred", b.Power.bpred); ("rob", b.Power.rename_rob); ("lsq", b.Power.lsq);
      ("regfile", b.Power.regfile); ("window", b.Power.window); ("alu", b.Power.alu);
      ("clock", b.Power.clock); ("idle", b.Power.idle);
    ]

let test_total_is_sum_of_parts () =
  let r = run Config.base alu_loop in
  let report = Power.estimate Config.base r in
  let b = report.Power.per_structure in
  let sum =
    b.Power.icache +. b.Power.dcache +. b.Power.l2 +. b.Power.bpred
    +. b.Power.rename_rob +. b.Power.lsq +. b.Power.regfile +. b.Power.window
    +. b.Power.alu +. b.Power.clock +. b.Power.idle
  in
  Alcotest.(check (float 1e-9)) "sum" report.Power.total sum

let test_wider_machine_uses_more_power () =
  let wide = Config.with_widths 4 Config.base in
  let r_base = run Config.base alu_loop in
  let r_wide = run wide alu_loop in
  Alcotest.(check bool) "width costs power" true
    (Power.total wide r_wide > Power.total Config.base r_base)

let test_bigger_structures_cost_idle_power () =
  (* Same activity, larger ROB: clock/idle components must grow. *)
  let big = Config.with_rob_lsq ~rob:128 ~lsq:64 Config.base in
  let r_base = run Config.base alu_loop in
  let r_big = run big alu_loop in
  Alcotest.(check bool) "bigger ROB costs more" true
    (Power.total big r_big > Power.total Config.base r_base)

let test_memory_traffic_costs_power () =
  (* Same instruction count; one loop hammers the D-cache. *)
  let mem_loop =
    loop_program ~name:"mem" ~iters:2000
      (List.init 8 (fun i ->
           if i mod 2 = 0 then I.Load (1 + (i mod 8), 29, 8 * i)
           else I.Alu (I.Add, 1 + (i mod 8), 10, 11)))
  in
  let r_alu = run Config.base alu_loop in
  let r_mem = run Config.base mem_loop in
  let p_alu = Power.estimate Config.base r_alu in
  let p_mem = Power.estimate Config.base r_mem in
  Alcotest.(check bool) "loads light up the D-cache" true
    (p_mem.Power.per_structure.Power.dcache
    > 2.0 *. p_alu.Power.per_structure.Power.dcache)

let test_fp_ops_cost_more_than_int () =
  let fp_loop =
    loop_program ~name:"fp" ~iters:2000 (List.init 8 (fun i -> I.Fmul (1 + (i mod 8), 10, 11)))
  in
  let r_int = run Config.base alu_loop in
  let r_fp = run Config.base fp_loop in
  let alu_of r = (Power.estimate Config.base r).Power.per_structure.Power.alu in
  (* per-op FP multiply energy is higher, though the FP loop runs longer
     (fewer ops/cycle); compare per-op energies via totals * cycles *)
  let per_op r =
    alu_of r *. float_of_int r.Sim.cycles /. float_of_int r.Sim.instrs
  in
  Alcotest.(check bool) "FP op energy higher" true (per_op r_fp > per_op r_int)

let test_bigger_cache_higher_access_energy () =
  let small = Config.with_l1d_size 1024 Config.base in
  let r_small = run small alu_loop in
  let r_large = run Config.base alu_loop in
  let d r cfg = (Power.estimate cfg r).Power.per_structure.Power.dcache in
  (* same (tiny) D-cache activity; the 16KB array costs more per access —
     compare with a memory-touching loop for a robust signal *)
  let mem_loop =
    loop_program ~name:"mem" ~iters:2000 (List.init 4 (fun i -> I.Load (1 + i, 29, 8 * i)))
  in
  let rs = run small mem_loop and rl = run Config.base mem_loop in
  ignore (d r_small small);
  ignore (d r_large Config.base);
  Alcotest.(check bool) "bigger cache costs more per access" true
    (d rl Config.base > d rs small)

let test_deterministic () =
  let r1 = run Config.base alu_loop and r2 = run Config.base alu_loop in
  Alcotest.(check (float 0.0)) "same power" (Power.total Config.base r1)
    (Power.total Config.base r2)

let qcheck_power_positive =
  QCheck.Test.make ~name:"power positive for random loops" ~count:25
    QCheck.(int_range 1 30)
    (fun n ->
      let body = List.init n (fun i -> I.Alu (I.Xor, 1 + (i mod 12), 10, 11)) in
      let p = loop_program ~name:"q" ~iters:300 body in
      let r = run Config.base p in
      Power.total Config.base r > 0.0)

let () =
  Alcotest.run "pc_power"
    [
      ( "model",
        [
          Alcotest.test_case "total positive, components non-negative" `Quick
            test_total_positive;
          Alcotest.test_case "total is the sum of parts" `Quick test_total_is_sum_of_parts;
          Alcotest.test_case "wider machine uses more power" `Quick
            test_wider_machine_uses_more_power;
          Alcotest.test_case "bigger structures cost idle power" `Quick
            test_bigger_structures_cost_idle_power;
          Alcotest.test_case "memory traffic costs power" `Quick
            test_memory_traffic_costs_power;
          Alcotest.test_case "FP ops cost more than int" `Quick
            test_fp_ops_cost_more_than_int;
          Alcotest.test_case "bigger cache, higher access energy" `Quick
            test_bigger_cache_higher_access_energy;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          QCheck_alcotest.to_alcotest qcheck_power_positive;
        ] );
    ]
