(* Tests for pc_caches: set-associative LRU behaviour, hierarchy
   latencies, and the 28-configuration study set. *)

module Cache = Pc_caches.Cache
module Hierarchy = Pc_caches.Hierarchy
module Study = Pc_caches.Study

let cfg ?(assoc = 1) ?(size = 256) ?(line = 32) () =
  Cache.config ~size_bytes:size ~assoc ~line_bytes:line ()

(* --- configuration validation --- *)

let expect_invalid f =
  Alcotest.(check bool) "rejected" true
    (match f () with _ -> false | exception Invalid_argument _ -> true)

let test_config_validation () =
  expect_invalid (fun () -> Cache.config ~size_bytes:300 ~assoc:1 ~line_bytes:32 ());
  expect_invalid (fun () -> Cache.config ~size_bytes:256 ~assoc:1 ~line_bytes:33 ());
  expect_invalid (fun () -> Cache.config ~size_bytes:256 ~assoc:3 ~line_bytes:32 ());
  expect_invalid (fun () -> Cache.config ~size_bytes:256 ~assoc:(-1) ~line_bytes:32 ());
  ignore (cfg ())

let test_config_names () =
  Alcotest.(check string) "direct" "256B/direct/32B" (Cache.config_name (cfg ()));
  Alcotest.(check string) "2-way" "4KB/2-way/32B"
    (Cache.config_name (cfg ~size:4096 ~assoc:2 ()));
  Alcotest.(check string) "full" "1KB/full/32B"
    (Cache.config_name (cfg ~size:1024 ~assoc:0 ()))

let test_ways () =
  Alcotest.(check int) "direct" 1 (Cache.ways (cfg ()));
  Alcotest.(check int) "fully assoc = lines" 8 (Cache.ways (cfg ~assoc:0 ()))

(* --- hit/miss behaviour --- *)

let test_cold_miss_then_hit () =
  let c = Cache.create (cfg ()) in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x1000);
  Alcotest.(check bool) "hit" true (Cache.access c 0x1000);
  Alcotest.(check bool) "same line hit" true (Cache.access c 0x101F);
  Alcotest.(check bool) "next line miss" false (Cache.access c 0x1020)

let test_direct_mapped_conflict () =
  (* 256B direct with 32B lines: addresses 256 bytes apart conflict. *)
  let c = Cache.create (cfg ()) in
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  Alcotest.(check bool) "conflict evicted the first line" false (Cache.access c 0)

let test_two_way_no_conflict () =
  let c = Cache.create (cfg ~assoc:2 ()) in
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  Alcotest.(check bool) "2-way holds both" true (Cache.access c 0);
  Alcotest.(check bool) "and the second" true (Cache.access c 256)

let test_lru_replacement () =
  (* 2-way set: touch A, B, re-touch A, insert C -> B must be evicted. *)
  let c = Cache.create (cfg ~assoc:2 ()) in
  ignore (Cache.access c 0) (* A *);
  ignore (Cache.access c 256) (* B *);
  ignore (Cache.access c 0) (* A again: B is now LRU *);
  ignore (Cache.access c 512) (* C evicts B *);
  Alcotest.(check bool) "A still resident" true (Cache.access c 0);
  Alcotest.(check bool) "B evicted" false (Cache.access c 256)

let test_fully_associative_capacity () =
  (* 256B fully associative = 8 lines: 8 distinct lines all fit. *)
  let c = Cache.create (cfg ~assoc:0 ()) in
  for i = 0 to 7 do
    ignore (Cache.access c (i * 32))
  done;
  for i = 0 to 7 do
    if not (Cache.access c (i * 32)) then Alcotest.failf "line %d not resident" i
  done;
  (* a ninth line evicts the LRU (line 0) *)
  ignore (Cache.access c (8 * 32));
  Alcotest.(check bool) "line 0 evicted" false (Cache.access c 0)

let test_counters_and_reset () =
  let c = Cache.create (cfg ()) in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 32);
  Alcotest.(check int) "accesses" 3 (Cache.accesses c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Alcotest.(check (float 1e-9)) "miss rate" (2.0 /. 3.0) (Cache.miss_rate c);
  Cache.reset_stats c;
  Alcotest.(check int) "reset accesses" 0 (Cache.accesses c);
  Alcotest.(check bool) "tags kept warm" true (Cache.access c 0)

let test_bigger_cache_never_worse () =
  (* Sequential + re-walk workload: larger caches of the same shape must
     not miss more (LRU inclusion property holds per set count only when
     shapes nest, so compare direct-mapped sizes on a sequential walk). *)
  let walk c =
    for _ = 1 to 3 do
      for i = 0 to 63 do
        ignore (Cache.access c (i * 32))
      done
    done;
    Cache.misses c
  in
  let small = walk (Cache.create (cfg ~size:512 ())) in
  let large = walk (Cache.create (cfg ~size:4096 ())) in
  Alcotest.(check bool) "monotone" true (large <= small)

(* --- replacement policies --- *)

let test_fifo_differs_from_lru () =
  (* A,B, re-touch A, insert C: LRU evicts B, FIFO evicts A (oldest). *)
  let run policy =
    let c = Cache.create (Cache.config ~replacement:policy ~size_bytes:256 ~assoc:2 ~line_bytes:32 ()) in
    ignore (Cache.access c 0);
    ignore (Cache.access c 256);
    ignore (Cache.access c 0);
    ignore (Cache.access c 512);
    let a = Cache.access c 0 in
    let b = Cache.access c 256 in
    (a, b)
  in
  Alcotest.(check (pair bool bool)) "LRU keeps A" (true, false) (run Cache.Lru);
  (* FIFO: insertion order A,B; C evicts A.  The B probe afterwards sees
     B still resident only if the A probe's refill evicted C, not B —
     FIFO evicts the oldest insertion, which is B after A was refilled.
     Check just the A eviction, which is the policy-distinguishing bit. *)
  Alcotest.(check bool) "FIFO evicted A" true (fst (run Cache.Fifo) = false)

let test_random_replacement_deterministic () =
  let run seed =
    let c = Cache.create (Cache.config ~replacement:(Cache.Random seed) ~size_bytes:256 ~assoc:4 ~line_bytes:32 ()) in
    for i = 0 to 499 do
      ignore (Cache.access c ((i * 37 mod 64) * 32))
    done;
    Cache.misses c
  in
  Alcotest.(check int) "same seed, same misses" (run 7) (run 7);
  Alcotest.(check bool) "random fills invalid ways first" true
    (let c = Cache.create (Cache.config ~replacement:(Cache.Random 1) ~size_bytes:256 ~assoc:0 ~line_bytes:32 ()) in
     for i = 0 to 7 do
       ignore (Cache.access c (i * 32))
     done;
     (* all 8 lines must be resident: cold fill never evicts *)
     let all = ref true in
     for i = 0 to 7 do
       if not (Cache.access c (i * 32)) then all := false
     done;
     !all)

let test_policy_names () =
  Alcotest.(check string) "fifo name" "256B/direct/32B/fifo"
    (Cache.config_name (Cache.config ~replacement:Cache.Fifo ~size_bytes:256 ~assoc:1 ~line_bytes:32 ()));
  Alcotest.(check string) "random name" "256B/direct/32B/rand"
    (Cache.config_name (Cache.config ~replacement:(Cache.Random 3) ~size_bytes:256 ~assoc:1 ~line_bytes:32 ()))

(* --- hierarchy --- *)

let hcfg =
  {
    Hierarchy.l1 = cfg ~size:256 ();
    l1_latency = 1;
    l2 = Some (cfg ~size:1024 ~assoc:2 ());
    l2_latency = 6;
    mem_latency = 40;
  }

let test_hierarchy_latencies () =
  let h = Hierarchy.create hcfg in
  Alcotest.(check int) "cold: full path" 47 (Hierarchy.access h 0x2000);
  Alcotest.(check int) "L1 hit" 1 (Hierarchy.access h 0x2000);
  (* evict from L1 (256B direct) but not from L2 *)
  ignore (Hierarchy.access h 0x2100);
  Alcotest.(check int) "L2 hit" 7 (Hierarchy.access h 0x2000)

let test_hierarchy_counters () =
  let h = Hierarchy.create hcfg in
  ignore (Hierarchy.access h 0);
  ignore (Hierarchy.access h 0);
  ignore (Hierarchy.access h 4096);
  Alcotest.(check int) "l1 accesses" 3 (Hierarchy.l1_accesses h);
  Alcotest.(check int) "l1 misses" 2 (Hierarchy.l1_misses h);
  Alcotest.(check int) "l2 accesses" 2 (Hierarchy.l2_accesses h);
  Alcotest.(check int) "memory accesses" 2 (Hierarchy.mem_accesses h);
  Alcotest.(check (float 1e-9)) "mpi" 0.2 (Hierarchy.l1_mpi h ~instrs:10)

let test_hierarchy_no_l2 () =
  let h = Hierarchy.create { hcfg with Hierarchy.l2 = None } in
  Alcotest.(check int) "miss to memory" 41 (Hierarchy.access h 0);
  Alcotest.(check int) "no l2 accesses" 0 (Hierarchy.l2_accesses h)

(* Shared-L2 reuse: resetting the shared instance once plus every
   hierarchy that drains into it must reproduce a freshly-built
   ensemble exactly — the regression guard for reusing hierarchies
   across scenario runs (pc_scenario builds a new ensemble per run, but
   the reset path must stay equivalent). *)
let test_shared_l2_reset_reuse () =
  let l2_cfg = Option.get hcfg.Hierarchy.l2 in
  (* per-tenant footprint: 4 distinct lines in sets 0..3 of the 256B
     direct-mapped L1 — the first pass cold-misses then hits, so a
     second pass over warm caches is observably different *)
  let stream = List.init 64 (fun i -> (i mod 2, i / 2 mod 4 * 32)) in
  let run hs =
    List.map (fun (tenant, addr) -> Hierarchy.access hs.(tenant) addr) stream
  in
  let build () =
    let l2 = Cache.create l2_cfg in
    Array.init 2 (fun i ->
        Hierarchy.create_shared ~tag:(i lsl 26) ~l2:(Some l2) hcfg)
  in
  let counters h =
    ( Hierarchy.l1_accesses h,
      Hierarchy.l1_misses h,
      Hierarchy.l2_accesses h,
      Hierarchy.l2_misses h,
      Hierarchy.mem_accesses h )
  in
  let l2 = Cache.create l2_cfg in
  let hs =
    Array.init 2 (fun i ->
        Hierarchy.create_shared ~tag:(i lsl 26) ~l2:(Some l2) hcfg)
  in
  let first = run hs in
  let first_counters = Array.map counters hs in
  (* a second pass over warm caches differs — proves reset has work to do *)
  Alcotest.(check bool) "warm pass differs" true (run hs <> first);
  Cache.reset l2;
  Array.iter Hierarchy.reset hs;
  Alcotest.(check (list int)) "reset ensemble replays exactly" first (run hs);
  Alcotest.(check bool) "reset counters replay" true
    (Array.map counters hs = first_counters);
  (* and both match a freshly-built ensemble *)
  let fresh = build () in
  Alcotest.(check (list int)) "fresh ensemble matches" first (run fresh);
  (* tags keep tenants' lines distinct: tenant 1 alone behaves the same
     whatever its tag, but the two tenants never hit each other's lines *)
  Alcotest.(check bool) "fresh counters match" true
    (Array.map counters fresh = first_counters)

(* --- the 28-config study --- *)

let test_study_configs () =
  Alcotest.(check int) "28 configurations" 28 (Array.length Study.configs);
  Alcotest.(check string) "reference config" "256B/direct/32B"
    (Pc_caches.Cache.config_name Study.configs.(Study.reference_index));
  (* all lines are 32B, sizes span 256B..16KB *)
  Array.iter
    (fun (c : Cache.config) ->
      Alcotest.(check int) "line" 32 c.Cache.line_bytes;
      if c.Cache.size_bytes < 256 || c.Cache.size_bytes > 16384 then
        Alcotest.fail "size out of the study range")
    Study.configs

let test_study_run_trace () =
  (* A 512-byte circular walk: small caches miss, 1KB+ caches hit. *)
  let results =
    Study.run_trace (fun emit ->
        for _ = 1 to 50 do
          for i = 0 to 15 do
            emit (i * 32)
          done
        done;
        8000)
  in
  Alcotest.(check int) "28 results" 28 (Array.length results);
  let find name =
    Array.to_list results
    |> List.find (fun (r : Study.result) ->
           Pc_caches.Cache.config_name r.Study.config = name)
  in
  let small = find "256B/direct/32B" and large = find "16KB/direct/32B" in
  Alcotest.(check bool) "small cache misses a lot" true (small.Study.misses > 400);
  Alcotest.(check bool) "16KB only compulsory" true (large.Study.misses <= 16);
  Alcotest.(check int) "accesses counted" 800 small.Study.accesses;
  Alcotest.(check (float 1e-9)) "mpi denominator"
    (float_of_int small.Study.misses /. 8000.0) small.Study.mpi

let test_relative_mpi () =
  let results =
    Study.run_trace (fun emit ->
        for i = 0 to 999 do
          emit (i * 32)
        done;
        1000)
  in
  let rel = Study.relative_mpi results in
  Alcotest.(check int) "27 relative values" 27 (Array.length rel);
  (* a pure cold-miss walk has equal MPI everywhere: all relatives are 1 *)
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "flat" 1.0 v) rel

let test_relative_mpi_degenerate () =
  (* No memory references at all: every MPI is 0, the reference included,
     so the ratios are undefined.  The series must be all-NaN sentinels
     (rendered as null by the JSON writers), never absolute MPIs. *)
  let results = Study.run_trace (fun _emit -> 100) in
  let rel = Study.relative_mpi results in
  Alcotest.(check int) "27 values" 27 (Array.length rel);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "NaN sentinel, not absolute MPI" true
        (Float.is_nan v))
    rel

(* --- the one-pass stack-distance sweep --- *)

let check_results_equal what (simulated : Study.result array)
    (onepass : Study.result array) =
  Alcotest.(check int)
    (what ^ ": config count")
    (Array.length simulated) (Array.length onepass);
  Array.iteri
    (fun i (s : Study.result) ->
      let o = onepass.(i) in
      let name = Pc_caches.Cache.config_name s.Study.config in
      if
        s.Study.misses <> o.Study.misses
        || s.Study.accesses <> o.Study.accesses
        || s.Study.mpi <> o.Study.mpi
      then
        Alcotest.failf
          "%s: %s: simulated misses=%d accesses=%d mpi=%.9f, one-pass \
           misses=%d accesses=%d mpi=%.9f"
          what name s.Study.misses s.Study.accesses s.Study.mpi o.Study.misses
          o.Study.accesses o.Study.mpi)
    simulated

(* Feed a recorded address array, optionally split at [cut] into a
   warmup prefix and a measured suffix. *)
let run_both ?cut addrs instrs =
  let feed_range from until emit =
    for i = from to until - 1 do
      emit addrs.(i)
    done
  in
  let n = Array.length addrs in
  match cut with
  | None ->
    let feed emit = feed_range 0 n emit; instrs in
    (Study.run_trace feed, Study.run_trace_onepass feed)
  | Some cut ->
    let warmup emit = feed_range 0 cut emit in
    let feed emit = feed_range cut n emit; instrs in
    ( Study.run_trace ~warmup feed,
      Study.run_trace_onepass ~warmup feed )

let test_onepass_matches_oracle () =
  (* A mixed trace that exercises every tracker: tight reuse (small
     stack distances), a sequential walk wider than the largest cache
     (deep/cold misses), and strided conflicts. *)
  let addrs =
    Array.init 30_000 (fun i ->
        match i mod 3 with
        | 0 -> i * 7919 mod 1024 * 32 (* hot 32KB-ish working set *)
        | 1 -> i * 4 land 0x7FFFF (* long sequential walk *)
        | _ -> i mod 64 * 2048 (* set conflicts across sizes *))
  in
  let sim, one = run_both addrs 60_000 in
  check_results_equal "no warmup" sim one;
  let sim, one = run_both ~cut:10_000 addrs 40_000 in
  check_results_equal "with warmup" sim one

let test_onepass_warmup_boundary () =
  (* Warmup refs prime state but never count: measured accesses must be
     exactly the post-cut refs, and a measured re-touch of a warmed line
     must hit in a large cache on both paths. *)
  let addrs = Array.init 2_000 (fun i -> i mod 400 * 32) in
  let cut = 1_200 in
  let sim, one = run_both ~cut addrs 1_000 in
  check_results_equal "boundary" sim one;
  Array.iter
    (fun (r : Study.result) ->
      Alcotest.(check int) "measured refs only" (Array.length addrs - cut)
        r.Study.accesses)
    one;
  let find name =
    Array.to_list one
    |> List.find (fun (r : Study.result) ->
           Pc_caches.Cache.config_name r.Study.config = name)
  in
  (* 400 lines = 12.5KB working set: warmed 16KB-full sees no measured
     misses at all, while the cold 256B reference keeps missing. *)
  Alcotest.(check int) "16KB full warmed: no measured misses" 0
    (find "16KB/full/32B").Study.misses;
  Alcotest.(check bool) "256B direct still misses" true
    ((find "256B/direct/32B").Study.misses > 0)

let test_onepass_all_workloads () =
  (* The acceptance bar: byte-identical to the simulated sweep on every
     registry workload, with and without a warmup split. *)
  let max_instrs = 30_000 in
  List.iter
    (fun name ->
      let p = Pc_workloads.Registry.(compile (find name)) in
      let buf = ref [] and count = ref 0 in
      let m = Pc_funcsim.Machine.load p in
      let instrs =
        Pc_funcsim.Machine.run ~max_instrs m (fun ev ->
            if ev.Pc_funcsim.Machine.mem_addr >= 0 then begin
              buf := ev.Pc_funcsim.Machine.mem_addr :: !buf;
              incr count
            end)
      in
      let addrs = Array.of_list (List.rev !buf) in
      let sim, one = run_both addrs instrs in
      check_results_equal (name ^ " (no warmup)") sim one;
      if Array.length addrs > 1 then begin
        let cut = Array.length addrs / 2 in
        let sim, one = run_both ~cut addrs instrs in
        check_results_equal (name ^ " (warmup split)") sim one
      end)
    Pc_workloads.Registry.names

let test_onepass_rejects_non_lru () =
  expect_invalid (fun () -> Pc_caches.Stack_dist.create [||]);
  expect_invalid (fun () ->
      Pc_caches.Stack_dist.create
        [| Cache.config ~replacement:Cache.Fifo ~size_bytes:256 ~assoc:1 ~line_bytes:32 () |]);
  expect_invalid (fun () ->
      Pc_caches.Stack_dist.create
        [| Cache.config ~replacement:(Cache.Random 1) ~size_bytes:256 ~assoc:2 ~line_bytes:32 () |])

let qcheck_onepass_oracle =
  QCheck.Test.make
    ~name:"one-pass sweep equals the simulated oracle (random traces)"
    ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 400) (int_bound 100_000))
        (int_bound 100))
    (fun (addrs, cut_pct) ->
      let addrs = Array.of_list (List.map (fun a -> a * 8) addrs) in
      let cut = Array.length addrs * cut_pct / 100 in
      let sim, one = run_both ~cut addrs (Array.length addrs) in
      Array.for_all2
        (fun (s : Study.result) (o : Study.result) ->
          s.Study.misses = o.Study.misses
          && s.Study.accesses = o.Study.accesses
          && s.Study.mpi = o.Study.mpi)
        sim one)

(* --- Random-replacement victim distribution --- *)

let test_random_victim_distribution () =
  (* Fill a 4-way set, then force one eviction and identify the victim:
     probing the four original lines in fill order, the first miss is
     the evicted way (earlier probes hit and evict nothing).  Over many
     seeds the victim draw must be uniform — the regression guard for
     the modulo-bias fix (mask/rejection instead of [mod nways]). *)
  let trials = 4000 in
  let counts = Array.make 4 0 in
  for seed = 0 to trials - 1 do
    let c =
      Cache.create
        (Cache.config ~replacement:(Cache.Random seed) ~size_bytes:256
           ~assoc:4 ~line_bytes:32 ())
    in
    (* 2 sets; lines i*2 land in set 0, filling ways 0..3 in order *)
    for i = 0 to 3 do
      ignore (Cache.access c (i * 64))
    done;
    ignore (Cache.access c (4 * 64));
    let victim = ref (-1) in
    (try
       for i = 0 to 3 do
         if not (Cache.access c (i * 64)) then begin
           victim := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !victim < 0 then Alcotest.fail "eviction produced no missing way";
    counts.(!victim) <- counts.(!victim) + 1
  done;
  let expect = trials / 4 in
  Array.iteri
    (fun w n ->
      (* ±15% of the expected quarter: far wider than sampling noise
         (sigma ~= 27 here), far tighter than any modulo-bias skew *)
      if abs (n - expect) > expect * 15 / 100 then
        Alcotest.failf "way %d drawn %d times (expected ~%d)" w n expect)
    counts

let qcheck_miss_rate_bounds =
  QCheck.Test.make ~name:"miss rate stays within [0,1]" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 500) (int_bound 10_000))
    (fun addrs ->
      let c = Cache.create (cfg ~size:512 ~assoc:2 ()) in
      List.iter (fun a -> ignore (Cache.access c (a * 8))) addrs;
      let r = Cache.miss_rate c in
      r >= 0.0 && r <= 1.0)

let qcheck_repeat_hits =
  QCheck.Test.make ~name:"immediately repeated accesses always hit" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 100_000))
    (fun addrs ->
      let c = Cache.create (cfg ~size:1024 ~assoc:4 ()) in
      List.for_all
        (fun a ->
          ignore (Cache.access c (a * 8));
          Cache.access c (a * 8))
        addrs)

let qcheck_fully_assoc_beats_direct =
  QCheck.Test.make ~name:"fully associative never misses more than direct (LRU, same size)"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 50 300) (int_bound 64))
    (fun lines ->
      (* Sequential-reuse patterns: compare misses. Note: this is not a
         theorem for arbitrary patterns (Belady anomalies exist across
         organisations), so restrict to small line universes where LRU
         full associativity dominates in practice. *)
      let direct = Cache.create (cfg ~size:512 ~assoc:1 ()) in
      let full = Cache.create (cfg ~size:512 ~assoc:0 ()) in
      List.iter
        (fun l ->
          ignore (Cache.access direct (l * 32));
          ignore (Cache.access full (l * 32)))
        lines;
      (* loose check: full-assoc within 2x of direct's misses *)
      Cache.misses full <= (2 * Cache.misses direct) + 16)

let () =
  Alcotest.run "pc_caches"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "names" `Quick test_config_names;
          Alcotest.test_case "ways" `Quick test_ways;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
          Alcotest.test_case "direct-mapped conflicts" `Quick test_direct_mapped_conflict;
          Alcotest.test_case "2-way avoids the conflict" `Quick test_two_way_no_conflict;
          Alcotest.test_case "LRU replacement" `Quick test_lru_replacement;
          Alcotest.test_case "fully associative capacity" `Quick
            test_fully_associative_capacity;
          Alcotest.test_case "counters and reset" `Quick test_counters_and_reset;
          Alcotest.test_case "bigger cache never worse (seq walk)" `Quick
            test_bigger_cache_never_worse;
          QCheck_alcotest.to_alcotest qcheck_miss_rate_bounds;
          QCheck_alcotest.to_alcotest qcheck_repeat_hits;
          QCheck_alcotest.to_alcotest qcheck_fully_assoc_beats_direct;
        ] );
      ( "replacement",
        [
          Alcotest.test_case "FIFO differs from LRU" `Quick test_fifo_differs_from_lru;
          Alcotest.test_case "random replacement deterministic" `Quick
            test_random_replacement_deterministic;
          Alcotest.test_case "policy names" `Quick test_policy_names;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "counters" `Quick test_hierarchy_counters;
          Alcotest.test_case "without L2" `Quick test_hierarchy_no_l2;
          Alcotest.test_case "shared L2 reset reuse" `Quick
            test_shared_l2_reset_reuse;
        ] );
      ( "study",
        [
          Alcotest.test_case "the 28 configurations" `Quick test_study_configs;
          Alcotest.test_case "trace run" `Quick test_study_run_trace;
          Alcotest.test_case "relative MPI" `Quick test_relative_mpi;
          Alcotest.test_case "relative MPI degenerate reference" `Quick
            test_relative_mpi_degenerate;
        ] );
      ( "onepass",
        [
          Alcotest.test_case "matches the simulated oracle" `Quick
            test_onepass_matches_oracle;
          Alcotest.test_case "warmup boundary exactness" `Quick
            test_onepass_warmup_boundary;
          Alcotest.test_case "all registry workloads" `Slow
            test_onepass_all_workloads;
          Alcotest.test_case "rejects non-LRU grids" `Quick
            test_onepass_rejects_non_lru;
          QCheck_alcotest.to_alcotest qcheck_onepass_oracle;
        ] );
      ( "victim-distribution",
        [
          Alcotest.test_case "random replacement is unbiased" `Quick
            test_random_victim_distribution;
        ] );
    ]
