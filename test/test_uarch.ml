(* Tests for pc_uarch: the trace-driven out-of-order timing model must
   respond correctly to every resource the paper's experiments vary. *)

module I = Pc_isa.Instr
module Asm = Pc_isa.Asm
module Config = Pc_uarch.Config
module Sim = Pc_uarch.Sim
module Predictor = Pc_branch.Predictor

let loop_program ~name ~iters body =
  (* r20 = counter; body must not touch r20/r21 *)
  Asm.assemble ~name
    ([ Asm.Ins (I.Li (20, Int64.of_int iters)); Asm.Label "top" ]
    @ List.map (fun i -> Asm.Ins i) body
    @ [
        Asm.Ins (I.Alui (I.Add, 20, 20, -1));
        Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
        Asm.Ins I.Halt;
      ])

let independent_alu_body n =
  List.init n (fun i -> I.Alu (I.Add, 1 + (i mod 8), 10, 11))

let dependent_alu_body n = List.init n (fun _ -> I.Alu (I.Add, 1, 1, 10))

let ipc ?(max_instrs = 200_000) cfg program = (Sim.run ~max_instrs cfg program).Sim.ipc

let wide_config =
  (* widths alone do not add functional units; scale those too *)
  let c = Config.with_rob_lsq ~rob:64 ~lsq:32 (Config.with_widths 4 Config.base) in
  { c with Config.int_alu_units = 8; int_mul_units = 2; mem_ports = 4 }

let test_ipc_bounded_by_width () =
  let p = loop_program ~name:"ind" ~iters:2000 (independent_alu_body 16) in
  let r1 = ipc Config.base p in
  Alcotest.(check bool) "width-1 IPC <= 1" true (r1 <= 1.0);
  Alcotest.(check bool) "width-1 IPC sane" true (r1 > 0.5)

let test_dependencies_limit_ilp () =
  let ind = loop_program ~name:"ind" ~iters:2000 (independent_alu_body 16) in
  let dep = loop_program ~name:"dep" ~iters:2000 (dependent_alu_body 16) in
  let ipc_ind = ipc wide_config ind and ipc_dep = ipc wide_config dep in
  Alcotest.(check bool) "independent code much faster on a wide machine" true
    (ipc_ind > 1.8 *. ipc_dep);
  (* serial chain of 1-cycle adds: IPC close to 1 *)
  Alcotest.(check bool) "dependent chain near 1 IPC" true
    (ipc_dep > 0.7 && ipc_dep < 1.3)

let test_width_scales_independent_code () =
  let p = loop_program ~name:"ind" ~iters:2000 (independent_alu_body 16) in
  let narrow = ipc Config.base p in
  let wide = ipc wide_config p in
  Alcotest.(check bool) "wider machine speeds up" true (wide > 1.5 *. narrow)

let test_in_order_never_faster () =
  List.iter
    (fun body ->
      let p = loop_program ~name:"t" ~iters:1000 body in
      let ooo = ipc wide_config p in
      let ino = ipc (Config.with_in_order true wide_config) p in
      Alcotest.(check bool) "in-order <= out-of-order (tolerance)" true
        (ino <= ooo +. 0.05))
    [
      independent_alu_body 12;
      dependent_alu_body 12;
      [ I.Mul (1, 10, 11); I.Alu (I.Add, 2, 12, 13); I.Alu (I.Add, 3, 12, 13) ];
    ]

let test_ooo_hides_load_latency () =
  (* A load miss followed by independent work: OoO overlaps, in-order
     stalls.  Use a big-stride walk so loads miss. *)
  let body =
    [ I.Load (1, 21, 0); I.Alu (I.Add, 2, 1, 1); I.Alui (I.Add, 21, 21, 2048) ]
    @ independent_alu_body 10
  in
  let prog =
    Asm.assemble ~name:"missy"
      ([
         Asm.Ins (I.Li (20, 2000L));
         Asm.Ins (I.Li (21, Int64.of_int Pc_isa.Program.data_base));
         Asm.Label "top";
       ]
      @ List.map (fun i -> Asm.Ins i) body
      @ [
          Asm.Ins (I.Alui (I.Add, 20, 20, -1));
          Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
          Asm.Ins I.Halt;
        ])
  in
  let ooo = ipc wide_config prog in
  let ino = ipc (Config.with_in_order true wide_config) prog in
  Alcotest.(check bool) "OoO hides some miss latency" true (ooo > ino *. 1.15)

let test_bigger_rob_helps_memory_parallelism () =
  let body =
    [ I.Load (1, 21, 0); I.Alui (I.Add, 21, 21, 2048) ] @ independent_alu_body 12
  in
  let prog =
    Asm.assemble ~name:"rob"
      ([
         Asm.Ins (I.Li (20, 2000L));
         Asm.Ins (I.Li (21, Int64.of_int Pc_isa.Program.data_base));
         Asm.Label "top";
       ]
      @ List.map (fun i -> Asm.Ins i) body
      @ [
          Asm.Ins (I.Alui (I.Add, 20, 20, -1));
          Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
          Asm.Ins I.Halt;
        ])
  in
  let small =
    ipc (Config.with_rob_lsq ~rob:8 ~lsq:4 (Config.with_widths 4 Config.base)) prog
  in
  let large =
    ipc (Config.with_rob_lsq ~rob:128 ~lsq:64 (Config.with_widths 4 Config.base)) prog
  in
  Alcotest.(check bool) "larger window is faster" true (large > small *. 1.1)

let test_mispredictions_cost_cycles () =
  (* data-dependent unpredictable branch driven by an LCG *)
  let body =
    [
      I.Li (9, 6364136223846793005L);
      I.Mul (8, 8, 9);
      I.Alui (I.Add, 8, 8, 1442695040888963407);
      I.Alui (I.Srl, 1, 8, 40);
      I.Alui (I.And, 1, 1, 1);
      I.Br (I.Ne_z, 1, I.Label "skip");
    ]
  in
  let prog =
    Asm.assemble ~name:"br"
      ([ Asm.Ins (I.Li (20, 3000L)); Asm.Ins (I.Li (8, 12345L)); Asm.Label "top" ]
      @ List.map (fun i -> Asm.Ins i) body
      @ [
          Asm.Label "skip";
          Asm.Ins (I.Alui (I.Add, 20, 20, -1));
          Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
          Asm.Ins I.Halt;
        ])
  in
  let real = Sim.run (Config.with_widths 2 Config.base) prog in
  let oracle =
    Sim.run
      (Config.with_bpred Predictor.Perfect (Config.with_widths 2 Config.base))
      prog
  in
  Alcotest.(check bool) "random branch mispredicts a lot" true
    (Sim.mispredict_rate real > 0.2);
  Alcotest.(check bool) "perfect prediction is faster" true
    (oracle.Sim.ipc > real.Sim.ipc *. 1.1)

let test_dcache_size_matters () =
  (* L1 sensitivity on a ring that fits the L2: misses per instruction
     must differ; then a >L2 ring must also cost cycles *)
  let prog =
    Asm.assemble ~name:"walk"
      [
        Asm.Ins (I.Li (20, 40_000L));
        Asm.Ins (I.Li (21, Int64.of_int Pc_isa.Program.data_base));
        Asm.Ins (I.Li (22, Int64.of_int (Pc_isa.Program.data_base + 131072)));
        Asm.Label "top";
        Asm.Ins (I.Load (1, 21, 0));
        Asm.Ins (I.Alui (I.Add, 21, 21, 32));
        Asm.Ins (I.Alu (I.Cmp_lt, 2, 21, 22));
        Asm.Ins (I.Br (I.Ne_z, 2, I.Label "keep"));
        Asm.Ins (I.Li (21, Int64.of_int Pc_isa.Program.data_base));
        Asm.Label "keep";
        Asm.Ins (I.Alui (I.Add, 20, 20, -1));
        Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
        Asm.Ins I.Halt;
      ]
  in
  (* the 128KB ring misses every level in any L1 size; compare against a
     small ring that stays resident *)
  let resident =
    Asm.assemble ~name:"resident"
      [
        Asm.Ins (I.Li (20, 40_000L));
        Asm.Ins (I.Li (21, Int64.of_int Pc_isa.Program.data_base));
        Asm.Ins (I.Li (22, Int64.of_int (Pc_isa.Program.data_base + 2048)));
        Asm.Label "top";
        Asm.Ins (I.Load (1, 21, 0));
        Asm.Ins (I.Alu (I.Add, 2, 1, 1));
        Asm.Ins (I.Alui (I.Add, 21, 21, 32));
        Asm.Ins (I.Alu (I.Cmp_lt, 2, 21, 22));
        Asm.Ins (I.Br (I.Ne_z, 2, I.Label "keep"));
        Asm.Ins (I.Li (21, Int64.of_int Pc_isa.Program.data_base));
        Asm.Label "keep";
        Asm.Ins (I.Alui (I.Add, 20, 20, -1));
        Asm.Ins (I.Br (I.Gt_z, 20, I.Label "top"));
        Asm.Ins I.Halt;
      ]
  in
  let missing = Sim.run Config.base prog in
  let fitting = Sim.run Config.base resident in
  Alcotest.(check bool) "big ring misses" true (Sim.l1d_mpi missing > 0.05);
  Alcotest.(check bool) "small ring hits" true (Sim.l1d_mpi fitting < 0.01);
  Alcotest.(check bool) "memory misses cost cycles" true
    (fitting.Sim.ipc > missing.Sim.ipc *. 1.5)

let test_lsq_limits_memory_throughput () =
  (* a loop of independent loads: a tiny LSQ throttles it *)
  let body = List.init 8 (fun k -> I.Load (1 + k, 29, 8 * k)) in
  let p = loop_program ~name:"lsq" ~iters:2000 body in
  let wide k = Config.with_rob_lsq ~rob:64 ~lsq:k (Config.with_widths 4 Config.base) in
  let small = ipc { (wide 2) with Config.mem_ports = 4 } p in
  let large = ipc { (wide 32) with Config.mem_ports = 4 } p in
  Alcotest.(check bool) "bigger LSQ is at least as fast" true (large >= small)

let test_mem_ports_limit_loads () =
  let body = List.init 8 (fun k -> I.Load (1 + k, 29, 8 * k)) in
  let p = loop_program ~name:"ports" ~iters:2000 body in
  let cfg ports =
    { (Config.with_rob_lsq ~rob:64 ~lsq:32 (Config.with_widths 4 Config.base)) with
      Config.mem_ports = ports }
  in
  let one = ipc (cfg 1) p and four = ipc (cfg 4) p in
  Alcotest.(check bool) "more ports, more load throughput" true (four > one *. 1.3)

let test_commit_width_bounds_ipc () =
  let body = List.init 16 (fun k -> I.Alu (I.Add, 1 + (k mod 12), 10, 11)) in
  let p = loop_program ~name:"commit" ~iters:2000 body in
  let base = Config.with_rob_lsq ~rob:64 ~lsq:32 (Config.with_widths 4 Config.base) in
  let base = { base with Config.int_alu_units = 8 } in
  let narrow = ipc { base with Config.commit_width = 1 } p in
  Alcotest.(check bool) "commit width 1 caps IPC at 1" true (narrow <= 1.0 +. 1e-6);
  let wide = ipc { base with Config.commit_width = 8 } p in
  Alcotest.(check bool) "wider commit lifts the cap" true (wide > 1.5)

let test_div_occupies_unit () =
  let divs = loop_program ~name:"divs" ~iters:500 (List.init 8 (fun _ -> I.Div (1, 10, 11))) in
  let adds = loop_program ~name:"adds" ~iters:500 (List.init 8 (fun _ -> I.Alu (I.Add, 1, 10, 11))) in
  let r_div = ipc wide_config divs and r_add = ipc wide_config adds in
  Alcotest.(check bool) "divides throttle issue" true (r_add > 3.0 *. r_div)

let test_stats_accounting () =
  let p = loop_program ~name:"acct" ~iters:100 [ I.Load (1, 29, 0); I.Store (2, 29, 8) ] in
  let r = Sim.run Config.base p in
  Alcotest.(check int) "instrs" (1 + (100 * 4) + 1) r.Sim.instrs;
  Alcotest.(check int) "branches" 100 r.Sim.branches;
  Alcotest.(check int) "loads counted"
    100
    r.Sim.class_counts.(I.class_index I.C_load);
  Alcotest.(check int) "stores counted" 100 r.Sim.class_counts.(I.class_index I.C_store);
  Alcotest.(check int) "l1d accesses = loads + stores" 200 r.Sim.l1d_accesses;
  Alcotest.(check bool) "cycles positive" true (r.Sim.cycles > 0);
  Alcotest.(check (float 1e-9)) "ipc consistent"
    (float_of_int r.Sim.instrs /. float_of_int r.Sim.cycles)
    r.Sim.ipc

let test_icache_misses_slow_fetch () =
  (* a huge straight-line program misses a tiny I-cache every line *)
  let body = List.init 6000 (fun i -> Asm.Ins (I.Alu (I.Add, 1 + (i mod 8), 10, 11))) in
  let prog = Asm.assemble ~name:"bigcode" (body @ [ Asm.Ins I.Halt ]) in
  let tiny_icache =
    let c = Config.base in
    {
      c with
      Config.icache =
        {
          c.Config.icache with
          Pc_caches.Hierarchy.l1 =
            Pc_caches.Cache.config ~size_bytes:256 ~assoc:1 ~line_bytes:32 ();
          l2 = None;
        };
      name = "tiny-icache";
    }
  in
  let slow = ipc tiny_icache prog in
  let fast = ipc Config.base prog in
  Alcotest.(check bool) "i-cache misses hurt" true (fast > slow *. 1.3)

let qcheck_ipc_positive_and_bounded =
  QCheck.Test.make ~name:"IPC positive and below total width for any program" ~count:30
    QCheck.(pair (int_range 1 60) (int_range 2 2000))
    (fun (nbody, iters) ->
      let body = List.init nbody (fun i -> I.Alu (I.Add, 1 + (i mod 12), 10, 11)) in
      let p = loop_program ~name:"q" ~iters body in
      let r = Sim.run ~max_instrs:100_000 Config.base p in
      r.Sim.ipc > 0.0 && r.Sim.ipc <= float_of_int Config.base.Config.issue_width +. 0.001)

let qcheck_deterministic =
  QCheck.Test.make ~name:"timing simulation is deterministic" ~count:20
    QCheck.(int_range 1 40)
    (fun nbody ->
      let body = List.init nbody (fun i -> I.Alu (I.Add, 1 + (i mod 12), 10, 11)) in
      let p = loop_program ~name:"q" ~iters:500 body in
      let r1 = Sim.run Config.base p and r2 = Sim.run Config.base p in
      r1.Sim.cycles = r2.Sim.cycles && r1.Sim.instrs = r2.Sim.instrs)

let () =
  Alcotest.run "pc_uarch"
    [
      ( "resources",
        [
          Alcotest.test_case "IPC bounded by width" `Quick test_ipc_bounded_by_width;
          Alcotest.test_case "dependencies limit ILP" `Quick test_dependencies_limit_ilp;
          Alcotest.test_case "width scales independent code" `Quick
            test_width_scales_independent_code;
          Alcotest.test_case "in-order never faster" `Quick test_in_order_never_faster;
          Alcotest.test_case "OoO hides load latency" `Quick test_ooo_hides_load_latency;
          Alcotest.test_case "bigger ROB exposes memory parallelism" `Quick
            test_bigger_rob_helps_memory_parallelism;
          Alcotest.test_case "divides occupy their unit" `Quick test_div_occupies_unit;
          Alcotest.test_case "LSQ limits memory throughput" `Quick
            test_lsq_limits_memory_throughput;
          Alcotest.test_case "memory ports limit loads" `Quick test_mem_ports_limit_loads;
          Alcotest.test_case "commit width bounds IPC" `Quick test_commit_width_bounds_ipc;
        ] );
      ( "memory+branch",
        [
          Alcotest.test_case "mispredictions cost cycles" `Quick
            test_mispredictions_cost_cycles;
          Alcotest.test_case "D-cache size matters" `Quick test_dcache_size_matters;
          Alcotest.test_case "I-cache misses slow fetch" `Quick
            test_icache_misses_slow_fetch;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "statistics" `Quick test_stats_accounting;
          QCheck_alcotest.to_alcotest qcheck_ipc_positive_and_bounded;
          QCheck_alcotest.to_alcotest qcheck_deterministic;
        ] );
    ]
